package repro

// Public-API boundary test: repro/sofa is the one supported entry point to
// the index. Nothing under cmd/ or examples/ may reach around it into the
// engine packages (internal/core, internal/index) — those are unstable
// internals whose contracts (pooled searcher-owned slices, shard query
// phases) the public package exists to encapsulate. Harness-level internals
// (internal/dataset, internal/bench, internal/stats, the baseline scans and
// summarization packages the ablation walkthroughs compare against) remain
// importable from the demo programs: they are not the query API.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// forbiddenFromPrograms are the engine packages cmd/ and examples/ must
// reach only through repro/sofa.
var forbiddenFromPrograms = map[string]bool{
	"repro/internal/core":  true,
	"repro/internal/index": true,
}

// mustImportSofa lists the programs whose whole purpose is the query API;
// they must demonstrate the public package (guarding against a future
// "temporary" rewire back onto the internals).
var mustImportSofa = map[string]bool{
	"cmd/sofa-query":      true,
	"examples/quickstart": true,
	"examples/vectors":    true,
	"examples/seismic":    true,
}

func TestProgramsUseOnlyPublicAPI(t *testing.T) {
	fset := token.NewFileSet()
	importsSofa := map[string]bool{}
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			dir := filepath.ToSlash(filepath.Dir(path))
			for _, imp := range file.Imports {
				ipath := strings.Trim(imp.Path.Value, `"`)
				if forbiddenFromPrograms[ipath] {
					t.Errorf("%s imports %s: cmd/ and examples/ must use the public repro/sofa API", path, ipath)
				}
				if ipath == "repro/sofa" {
					importsSofa[dir] = true
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for dir := range mustImportSofa {
		if !importsSofa[dir] {
			t.Errorf("%s does not import repro/sofa — the query-API demos must use the public package", dir)
		}
	}
}
