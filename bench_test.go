// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation at a reduced (laptop) scale: one testing.B
// benchmark per experiment, each measuring a cold end-to-end run of the
// corresponding harness entry point. Run the full-size experiments with
// cmd/sofa-bench.
package repro

import (
	"io"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
)

// benchCfg is the reduced suite configuration shared by all experiment
// benchmarks: 5 representative datasets at quarter scale, two core counts.
func benchCfg() bench.SuiteConfig {
	cfg := bench.Quick()
	p := runtime.GOMAXPROCS(0)
	half := p / 2
	if half < 1 {
		half = 1
	}
	cfg.CoreCounts = []int{half, p}
	cfg.Queries = 6
	return cfg
}

// runExperiment measures cold end-to-end runs of one experiment.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := bench.RunByID(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Summarization(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig2Words(b *testing.B)               { runExperiment(b, "fig2") }
func BenchmarkFig7IndexCreation(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig8IndexStructure(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkTable2QueryTimes(b *testing.B)        { runExperiment(b, "table2") }
func BenchmarkTable3KNN(b *testing.B)               { runExperiment(b, "table3") }
func BenchmarkFig10QueryDistribution(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11LeafSize(b *testing.B)           { runExperiment(b, "fig11") }
func BenchmarkFig12RelativeQueryTime(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkTable4SamplingRate(b *testing.B)      { runExperiment(b, "table4") }
func BenchmarkFig13CoefficientSpeedup(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkTable5TLBUCR(b *testing.B)            { runExperiment(b, "table5") }
func BenchmarkTable6TLBSOFA(b *testing.B)           { runExperiment(b, "table6") }
func BenchmarkFig15CriticalDifference(b *testing.B) { runExperiment(b, "fig15") }

// Component-level benchmarks: the operations the tables are made of.

func loadBench(b *testing.B, name string, count int) *dataset.Spec {
	b.Helper()
	spec, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	spec.Count = count
	return &spec
}

func BenchmarkSOFABuild20k(b *testing.B) {
	spec := loadBench(b, "LenDB", 20000)
	data, err := dataset.Generate(*spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(data, core.Config{Method: core.SOFA, LeafCapacity: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMESSIBuild20k(b *testing.B) {
	spec := loadBench(b, "LenDB", 20000)
	data, err := dataset.Generate(*spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(data, core.Config{Method: core.MESSI, LeafCapacity: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQuery(b *testing.B, method core.Method, name string) {
	spec := loadBench(b, name, 20000)
	data, err := dataset.Generate(*spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := dataset.GenerateQueries(*spec, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.Build(data, core.Config{Method: method, LeafCapacity: 256})
	if err != nil {
		b.Fatal(err)
	}
	s := ix.NewSearcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search1(queries.Row(i % queries.Len())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSOFAQueryHighFreq(b *testing.B)  { benchQuery(b, core.SOFA, "LenDB") }
func BenchmarkMESSIQueryHighFreq(b *testing.B) { benchQuery(b, core.MESSI, "LenDB") }
func BenchmarkSOFAQuerySmooth(b *testing.B)    { benchQuery(b, core.SOFA, "SALD") }
func BenchmarkMESSIQuerySmooth(b *testing.B)   { benchQuery(b, core.MESSI, "SALD") }

func BenchmarkApproxTradeoff(b *testing.B) { runExperiment(b, "approx") }
func BenchmarkShardedQPS(b *testing.B)     { runExperiment(b, "qps") }
