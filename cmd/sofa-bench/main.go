// Command sofa-bench regenerates the paper's tables and figures over the
// synthetic benchmark.
//
// Usage:
//
//	sofa-bench -exp table2            # one experiment
//	sofa-bench -exp all               # the whole suite, paper order
//	sofa-bench -list                  # list experiment IDs
//	sofa-bench -exp fig12 -quick      # reduced datasets/scale for a fast look
//	sofa-bench -exp table2 -queries 100 -cores 6,12,24 -scale 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		queries = flag.Int("queries", 0, "queries per dataset (default 20)")
		scale   = flag.Float64("scale", 0, "dataset size multiplier (default 1.0)")
		cores   = flag.String("cores", "", "comma-separated worker sweep, e.g. 6,12,24")
		leaf    = flag.Int("leaf", 0, "tree leaf capacity (default 256)")
		seed    = flag.Int64("seed", 0, "generator seed (default 1)")
		quick   = flag.Bool("quick", false, "reduced 5-dataset suite at 1/4 scale")
		shards  = flag.Int("shards", 0, "shard count for the sharded-throughput experiment (default 4)")
		jsonOut = flag.String("json", "", "write the 'report' experiment's perf snapshot to this JSON file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.SuiteConfig{}
	if *quick {
		cfg = bench.Quick()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *leaf > 0 {
		cfg.LeafCapacity = *leaf
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *jsonOut != "" {
		cfg.JSONPath = *jsonOut
	}
	if *cores != "" {
		var cc []int
		for _, part := range strings.Split(*cores, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "sofa-bench: bad -cores value %q\n", part)
				os.Exit(2)
			}
			cc = append(cc, v)
		}
		cfg.CoreCounts = cc
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(cfg, os.Stdout)
	} else {
		err = bench.RunByID(*exp, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sofa-bench: %v\n", err)
		os.Exit(1)
	}
}
