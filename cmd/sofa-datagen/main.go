// Command sofa-datagen writes the synthetic benchmark datasets to disk in
// the binary dataset format, for use with sofa-query or external tools.
//
// Usage:
//
//	sofa-datagen -out /data/sofa                  # all 17 datasets + queries
//	sofa-datagen -out /data/sofa -dataset LenDB   # one dataset
//	sofa-datagen -out /data/sofa -count 50000     # override series count
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
)

func main() {
	var (
		out     = flag.String("out", ".", "output directory")
		name    = flag.String("dataset", "", "dataset name (default: all 17)")
		count   = flag.Int("count", 0, "override series count")
		queries = flag.Int("queries", 100, "queries per dataset")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	specs := dataset.Catalog()
	if *name != "" {
		s, err := dataset.ByName(*name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sofa-datagen: %v\n", err)
			os.Exit(2)
		}
		specs = []dataset.Spec{s}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "sofa-datagen: %v\n", err)
		os.Exit(1)
	}
	for _, spec := range specs {
		if *count > 0 {
			spec.Count = *count
		}
		data, err := dataset.Generate(spec, *seed)
		if err != nil {
			fatal(err)
		}
		dataPath := filepath.Join(*out, spec.Name+".sofads")
		if err := dataset.Save(dataPath, data); err != nil {
			fatal(err)
		}
		qs, err := dataset.GenerateQueries(spec, *queries, *seed)
		if err != nil {
			fatal(err)
		}
		queryPath := filepath.Join(*out, spec.Name+".queries.sofads")
		if err := dataset.Save(queryPath, qs); err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s %7d series x %3d  -> %s (+ %d queries)\n",
			spec.Name, data.Len(), data.Stride, dataPath, qs.Len())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sofa-datagen: %v\n", err)
	os.Exit(1)
}
