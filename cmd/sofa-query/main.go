// Command sofa-query builds a SOFA (or MESSI) index over a binary dataset
// file and answers exact k-NN queries from a query file, printing per-query
// results and timing. It is written entirely against the public repro/sofa
// API.
//
// Usage:
//
//	sofa-query -data LenDB.sofads -queries LenDB.queries.sofads -k 10
//	sofa-query -data LenDB.sofads -queries LenDB.queries.sofads -method messi
//	sofa-query -data LenDB.sofads -queries LenDB.queries.sofads -shards 4 -stream 8
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/sofa"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file (required)")
		queryPath = flag.String("queries", "", "query file (required)")
		k         = flag.Int("k", 1, "nearest neighbors per query")
		method    = flag.String("method", "sofa", "index method: sofa or messi")
		leaf      = flag.Int("leaf", 1024, "tree leaf capacity")
		workers   = flag.Int("workers", 0, "parallelism (default GOMAXPROCS)")
		shards    = flag.Int("shards", 1, "index shards (independent trees; merged k-NN)")
		stream    = flag.Int("stream", 0, "answer queries through the streaming engine with this many workers (0: per-query latency loop)")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0: none)")
		verbose   = flag.Bool("v", false, "print every result")
		savePath  = flag.String("save", "", "write the built index to this file")
		loadPath  = flag.String("load", "", "load a previously saved index instead of building")
		durable   = flag.String("durable", "", "open a durable index directory (checkpoint + insert WAL); initialized from -data when empty")
	)
	flag.Parse()
	if (*dataPath == "" && *loadPath == "" && *durable == "") || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := []sofa.Option{sofa.LeafSize(*leaf), sofa.Workers(*workers), sofa.Shards(*shards)}
	switch *method {
	case "sofa":
		opts = append(opts, sofa.SFA())
	case "messi":
		opts = append(opts, sofa.MESSI())
	default:
		fatal(fmt.Errorf("unknown method %q (want sofa or messi)", *method))
	}

	queries, err := dataset.Load(*queryPath)
	if err != nil {
		fatal(err)
	}
	var ix *sofa.Index
	if *durable != "" {
		if *loadPath != "" || *savePath != "" {
			fatal(fmt.Errorf("-durable replaces -load/-save: the directory is the persistence"))
		}
		openOpts := []sofa.OpenOption{}
		if *dataPath != "" {
			data, err := dataset.Load(*dataPath)
			if err != nil {
				fatal(err)
			}
			data.ZNormalizeAll()
			// Consulted only when the directory holds no index yet.
			openOpts = append(openOpts, sofa.CreateFrom(data, opts...))
		}
		var rec sofa.RecoveryStats
		openOpts = append(openOpts, sofa.WithRecoveryStats(&rec))
		start := time.Now()
		dix, err := sofa.Open(*durable, openOpts...)
		if err != nil {
			fatal(err)
		}
		defer dix.Close()
		fmt.Printf("%s durable index opened from %s in %.2fs (%d series x %d, %d shard(s))\n",
			dix.Method(), *durable, time.Since(start).Seconds(), dix.Len(), dix.SeriesLen(), dix.Shards())
		fmt.Printf("recovery: checkpoint v%d (%d series), %d WAL records replayed, %d skipped\n",
			rec.CheckpointVersion, rec.CheckpointLen, rec.Replayed, rec.Skipped)
		if rec.TailError != nil {
			fmt.Fprintf(os.Stderr, "sofa-query: warning: discarded %d bytes of damaged WAL tail: %v\n",
				rec.DiscardedBytes, rec.TailError)
		}
		ix = dix.Index
	} else if *loadPath != "" {
		if *shards != 1 {
			fmt.Fprintln(os.Stderr, "sofa-query: -shards is ignored with -load (the shard count is part of the saved index)")
		}
		start := time.Now()
		ix, err = sofa.LoadFile(*loadPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s index loaded from %s in %.2fs (%d series x %d, %d shard(s))\n",
			ix.Method(), *loadPath, time.Since(start).Seconds(), ix.Len(), ix.SeriesLen(), ix.Shards())
	} else {
		data, err := dataset.Load(*dataPath)
		if err != nil {
			fatal(err)
		}
		data.ZNormalizeAll()
		fmt.Printf("loaded %d series x %d, %d queries\n", data.Len(), data.Stride, queries.Len())
		start := time.Now()
		ix, err = sofa.Build(data, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s index built in %.2fs (%d shard(s))\n",
			ix.Method(), time.Since(start).Seconds(), ix.Shards())
	}
	if *savePath != "" {
		if err := sofa.SaveFile(ix, *savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("index saved to %s\n", *savePath)
	}
	st := ix.Stats()
	fmt.Printf("tree: %d subtrees, %d leaves, avg depth %.1f, avg leaf size %.0f\n",
		st.Subtrees, st.Leaves, st.AvgDepth, st.AvgLeafSize)

	if *stream > 0 {
		runStream(ix, queries, *k, *stream, *timeout, *verbose)
		return
	}
	ctx := context.Background()
	times := make([]float64, queries.Len())
	var buf []sofa.Result
	for qi := 0; qi < queries.Len(); qi++ {
		q := sofa.Query{Series: queries.Row(qi), K: *k}
		if *timeout > 0 {
			q = q.With(sofa.Deadline(time.Now().Add(*timeout)))
		}
		qStart := time.Now()
		buf, err = ix.SearchInto(ctx, q, buf)
		if err != nil {
			fatal(err)
		}
		times[qi] = time.Since(qStart).Seconds()
		if *verbose {
			printResults(qi, times[qi], buf)
		}
	}
	fmt.Printf("%d-NN over %d queries: mean %.2fms, median %.2fms\n",
		*k, queries.Len(), stats.Mean(times)*1000, stats.Median(times)*1000)
}

// runStream answers the query file through the streaming engine and reports
// aggregate throughput. Verbose lines carry no per-query time: queries
// overlap, so only the aggregate wall clock is meaningful.
func runStream(ix *sofa.Index, queries *sofa.Matrix, k, workers int, timeout time.Duration, verbose bool) {
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	st, err := ix.NewStream(workers, func(qid uint64, res []sofa.Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if verbose && err == nil {
			printResults(int(qid), -1, res)
		}
	})
	if err != nil {
		fatal(err)
	}
	for qi := 0; qi < queries.Len(); qi++ {
		q := sofa.Query{Series: queries.Row(qi), K: k}
		if timeout > 0 {
			q = q.With(sofa.Deadline(time.Now().Add(timeout)))
		}
		if _, err := st.Submit(q); err != nil {
			fatal(err)
		}
	}
	st.Close()
	if firstErr != nil {
		fatal(firstErr)
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("%d-NN over %d queries streamed with %d workers in %.2fs (%.0f queries/s)\n",
		k, queries.Len(), workers, elapsed, float64(queries.Len())/elapsed)
}

// printResults prints one query's answer line; secs < 0 omits the latency
// field (streamed queries overlap, so per-query times would mislead).
func printResults(qi int, secs float64, res []sofa.Result) {
	if secs < 0 {
		fmt.Printf("query %3d:", qi)
	} else {
		fmt.Printf("query %3d (%.2fms):", qi, secs*1000)
	}
	for _, r := range res {
		fmt.Printf(" #%d@%.4f", r.ID, math.Sqrt(r.Dist))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sofa-query: %v\n", err)
	os.Exit(1)
}
