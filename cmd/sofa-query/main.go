// Command sofa-query builds a SOFA (or MESSI) index over a binary dataset
// file and answers exact k-NN queries from a query file, printing per-query
// results and timing.
//
// Usage:
//
//	sofa-query -data LenDB.sofads -queries LenDB.queries.sofads -k 10
//	sofa-query -data LenDB.sofads -queries LenDB.queries.sofads -method messi
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file (required)")
		queryPath = flag.String("queries", "", "query file (required)")
		k         = flag.Int("k", 1, "nearest neighbors per query")
		method    = flag.String("method", "sofa", "index method: sofa or messi")
		leaf      = flag.Int("leaf", 1024, "tree leaf capacity")
		workers   = flag.Int("workers", 0, "parallelism (default GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print every result")
		savePath  = flag.String("save", "", "write the built index to this file")
		loadPath  = flag.String("load", "", "load a previously saved index instead of building")
	)
	flag.Parse()
	if (*dataPath == "" && *loadPath == "") || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var m core.Method
	switch *method {
	case "sofa":
		m = core.SOFA
	case "messi":
		m = core.MESSI
	default:
		fatal(fmt.Errorf("unknown method %q (want sofa or messi)", *method))
	}

	queries, err := dataset.Load(*queryPath)
	if err != nil {
		fatal(err)
	}
	var ix *core.Index
	if *loadPath != "" {
		start := time.Now()
		ix, err = core.LoadFile(*loadPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s index loaded from %s in %.2fs (%d series x %d)\n",
			ix.Method(), *loadPath, time.Since(start).Seconds(), ix.Len(), ix.SeriesLen())
	} else {
		data, err := dataset.Load(*dataPath)
		if err != nil {
			fatal(err)
		}
		data.ZNormalizeAll()
		fmt.Printf("loaded %d series x %d, %d queries\n", data.Len(), data.Stride, queries.Len())
		start := time.Now()
		ix, err = core.Build(data, core.Config{Method: m, LeafCapacity: *leaf, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s index built in %.2fs (learn %.2fs, transform %.2fs, tree %.2fs)\n",
			ix.Method(), time.Since(start).Seconds(),
			ix.LearnSeconds, ix.TransformSeconds, ix.TreeSeconds)
	}
	if *savePath != "" {
		if err := core.SaveFile(ix, *savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("index saved to %s\n", *savePath)
	}
	st := ix.Stats()
	fmt.Printf("tree: %d subtrees, %d leaves, avg depth %.1f, avg leaf size %.0f\n",
		st.Subtrees, st.Leaves, st.AvgDepth, st.AvgLeafSize)

	s := ix.NewSearcher()
	times := make([]float64, queries.Len())
	for qi := 0; qi < queries.Len(); qi++ {
		qStart := time.Now()
		res, err := s.Search(queries.Row(qi), *k)
		if err != nil {
			fatal(err)
		}
		times[qi] = time.Since(qStart).Seconds()
		if *verbose {
			fmt.Printf("query %3d (%.2fms):", qi, times[qi]*1000)
			for _, r := range res {
				fmt.Printf(" #%d@%.4f", r.ID, math.Sqrt(r.Dist))
			}
			fmt.Println()
		}
	}
	fmt.Printf("%d-NN over %d queries: mean %.2fms, median %.2fms\n",
		*k, queries.Len(), stats.Mean(times)*1000, stats.Median(times)*1000)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sofa-query: %v\n", err)
	os.Exit(1)
}
