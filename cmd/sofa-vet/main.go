// Command sofa-vet is the repo's static-analysis multichecker: it runs the
// invariant suite in internal/analysis (retainaudit, faultguard,
// importboundary, atomicfield, senterr, noheap) plus the stdlib `go vet`
// passes over the module, and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/sofa-vet ./...                  # full suite, default build
//	go run ./cmd/sofa-vet -tags noasm ./...      # portable-kernel configuration
//	go run ./cmd/sofa-vet -update-escape-budget  # accept current escapes as the budget
//	go run ./cmd/sofa-vet -release-scan BIN      # prove BIN carries no faultinject traces
//	go run ./cmd/sofa-vet -list                  # describe the analyzers
//
// The noheap analyzer gates the escape budget of the query hot path; when an
// allocation is intentional, regenerate the budget with
// -update-escape-budget (for both the default and the noasm configuration)
// and commit the updated internal/analysis/testdata/escape_budget*.txt with
// the change that introduced it.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	var (
		tags         = flag.String("tags", "", "build tags for the analyzed configuration (e.g. noasm, faultinject)")
		list         = flag.Bool("list", false, "describe the registered analyzers and exit")
		noVet        = flag.Bool("novet", false, "skip the stdlib go vet passes")
		updateBudget = flag.Bool("update-escape-budget", false, "regenerate the noheap escape budget for the selected tags and exit")
		releaseScan  = flag.String("release-scan", "", "scan the given release binary for fault-injection residue and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite(*tags) {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}

	if *releaseScan != "" {
		findings, err := analysis.ReleaseScan(*releaseScan)
		if err != nil {
			fatal(err)
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "sofa-vet: release binary %s carries fault-injection residue (%d findings)\n", *releaseScan, len(findings))
			os.Exit(1)
		}
		fmt.Printf("sofa-vet: %s is clean (no faultinject symbols or site names)\n", *releaseScan)
		return
	}

	if *updateBudget {
		cfg := analysis.DefaultNoHeapConfig(*tags)
		report, err := analysis.EscapeReport(moduleDir, cfg.Packages, *tags)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(moduleDir, filepath.FromSlash(cfg.BudgetFile))
		if err := os.WriteFile(path, []byte(analysis.FormatBudget(report, *tags)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("sofa-vet: wrote %d budget entries to %s\n", len(report), cfg.BudgetFile)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := analysis.Run(analysis.Suite(*tags), moduleDir, patterns, *tags)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}

	vetFailed := false
	if !*noVet {
		args := []string{"vet"}
		if *tags != "" {
			args = append(args, "-tags", *tags)
		}
		args = append(args, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleDir
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	if len(diags) > 0 || vetFailed {
		fmt.Fprintf(os.Stderr, "sofa-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to go.mod, so sofa-vet
// works from any subdirectory of the repo.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sofa-vet:", err)
	os.Exit(1)
}
