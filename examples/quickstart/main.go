// Quickstart: build a SOFA index over a small in-memory collection and run
// an exact 10-NN query — the sixty-second tour of the public repro/sofa
// API, which is the only repro import this program needs.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/sofa"
)

func main() {
	// 1. Assemble your data series as equal-length rows. Here: 10,000
	//    synthetic sensor traces of length 128.
	rng := rand.New(rand.NewSource(42))
	const n, count = 128, 10000
	data := sofa.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := data.Row(i)
		freq := 2 + rng.Float64()*10
		phase := rng.Float64() * 2 * math.Pi
		for j := range row {
			row[j] = math.Sin(2*math.Pi*freq*float64(j)/n+phase) + 0.2*rng.NormFloat64()
		}
	}
	// 2. z-normalize: all similarity in this library is z-normalized
	//    Euclidean distance, as in the paper.
	data.ZNormalizeAll()

	// 3. Build the SOFA index. Defaults mirror the paper: word length 16,
	//    alphabet 256, equi-width MCB learned from a sample, variance-based
	//    coefficient selection. Options adjust anything: sofa.MESSI(),
	//    sofa.Shards(4), sofa.LeafSize(512), ...
	ix, err := sofa.Build(data, sofa.SFA())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built SOFA index over %d series in %.0fms\n",
		ix.Len(), ix.BuildSeconds()*1000)

	// 4. Query: exact 10 nearest neighbors of a fresh series. The result
	//    slice is caller-owned — keep it as long as you like.
	query := make([]float64, n)
	for j := range query {
		query[j] = math.Sin(2*math.Pi*5*float64(j)/n) + 0.2*rng.NormFloat64()
	}
	res, err := ix.Search(context.Background(), sofa.Query{Series: query, K: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("10 exact nearest neighbors (z-normalized ED):")
	for rank, r := range res {
		fmt.Printf("  %2d. series #%d at distance %.4f\n", rank+1, r.ID, math.Sqrt(r.Dist))
	}
}
