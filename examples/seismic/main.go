// Seismic: the paper's motivating workload. Index a high-frequency seismic
// collection (LenDB-like) and compare SOFA against MESSI, the parallel scan
// and the flat baseline on the same exact 1-NN queries — the regime where
// SAX's mean-based summarization collapses and SFA shines (paper Fig. 1,
// Fig. 12). The tree indexes go through the public repro/sofa API; the scan
// and flat baselines are internal reference implementations.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/flat"
	"repro/internal/scan"
	"repro/internal/stats"
	"repro/sofa"
)

func main() {
	spec, err := dataset.ByName("LenDB")
	if err != nil {
		log.Fatal(err)
	}
	spec.Count = 30000
	data, err := dataset.Generate(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := dataset.GenerateQueries(spec, 50, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seismic collection: %d series x %d (synthetic %s)\n",
		data.Len(), data.Stride, spec.Name)

	// Tree indexes, both through the one public entry point.
	ctx := context.Background()
	for _, method := range []sofa.Option{sofa.MESSI(), sofa.SFA()} {
		ix, err := sofa.Build(data, method, sofa.LeafSize(512))
		if err != nil {
			log.Fatal(err)
		}
		var buf []sofa.Result
		times, sample := timeQueries(queries, func(q []float64) float64 {
			buf, err = ix.SearchInto(ctx, sofa.Query{Series: q, K: 1}, buf)
			if err != nil {
				log.Fatal(err)
			}
			return buf[0].Dist
		})
		if mean, ok := ix.MeanSelectedCoefficient(); ok {
			fmt.Printf("%-6s build %4.0fms  query mean %6.3fms median %6.3fms  (mean selected coeff %.1f)\n",
				ix.Method(), ix.BuildSeconds()*1000, stats.Mean(times)*1000, stats.Median(times)*1000, mean)
		} else {
			fmt.Printf("%-6s build %4.0fms  query mean %6.3fms median %6.3fms\n",
				ix.Method(), ix.BuildSeconds()*1000, stats.Mean(times)*1000, stats.Median(times)*1000)
		}
		_ = sample
	}

	// Parallel scan (UCR Suite-P).
	sc, err := scan.New(data, 0)
	if err != nil {
		log.Fatal(err)
	}
	times, scanDist := timeQueries(queries, func(q []float64) float64 {
		r, err := sc.Search1(q)
		if err != nil {
			log.Fatal(err)
		}
		return r.Dist
	})
	fmt.Printf("%-6s                query mean %6.3fms median %6.3fms\n",
		"SCAN", stats.Mean(times)*1000, stats.Median(times)*1000)

	// Flat (FAISS-like), batch protocol.
	fl, err := flat.Build(data, 0)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	batch, err := fl.SearchBatch(queries, 1)
	if err != nil {
		log.Fatal(err)
	}
	per := time.Since(start).Seconds() / float64(queries.Len())
	fmt.Printf("%-6s                query amortized %6.3fms (mini-batch)\n", "FLAT", per*1000)

	// All methods must agree: exact means exact.
	for qi := 0; qi < queries.Len(); qi++ {
		if math.Abs(batch[qi][0].Dist-scanDist[qi]) > 1e-6*(scanDist[qi]+1) {
			log.Fatalf("query %d: flat %v != scan %v", qi, batch[qi][0].Dist, scanDist[qi])
		}
	}
	fmt.Println("all methods returned identical exact nearest neighbors ✓")
}

// timeQueries runs fn per query, returning per-query seconds and results.
func timeQueries(queries *distance.Matrix, fn func([]float64) float64) (times, dists []float64) {
	times = make([]float64, queries.Len())
	dists = make([]float64, queries.Len())
	for i := 0; i < queries.Len(); i++ {
		start := time.Now()
		dists[i] = fn(queries.Row(i))
		times[i] = time.Since(start).Seconds()
	}
	return times, dists
}
