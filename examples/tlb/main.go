// TLB: a walk-through of the paper's Section V-E ablation. For one
// high-frequency and one smooth dataset, compute the tightness of lower
// bound of the five summarization variants (SFA EW/ED, with and without
// variance selection, and iSAX) across alphabet sizes, and show how bound
// tightness translates into pruning power.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/sax"
	"repro/internal/sfa"
)

const wordLength = 16

type variant struct {
	name      string
	isSAX     bool
	binning   sfa.Binning
	selection sfa.Selection
}

func variants() []variant {
	return []variant{
		{"SFA EW +VAR", false, sfa.EquiWidth, sfa.HighestVariance},
		{"SFA ED +VAR", false, sfa.EquiDepth, sfa.HighestVariance},
		{"SFA EW", false, sfa.EquiWidth, sfa.FirstCoefficients},
		{"SFA ED", false, sfa.EquiDepth, sfa.FirstCoefficients},
		{"iSAX", true, 0, 0},
	}
}

func main() {
	for _, name := range []string{"LenDB", "SALD"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		spec.Count = 400
		train, err := dataset.Generate(spec, 3)
		if err != nil {
			log.Fatal(err)
		}
		test, err := dataset.GenerateQueries(spec, 25, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%d series x %d) ===\n", name, train.Len(), train.Stride)
		fmt.Printf("%-12s", "alphabet")
		for _, a := range []int{4, 16, 64, 256} {
			fmt.Printf("  a=%-5d", a)
		}
		fmt.Println(" pruning@256")
		for _, v := range variants() {
			fmt.Printf("%-12s", v.name)
			var lastTLB, pruning float64
			for _, alpha := range []int{4, 16, 64, 256} {
				tlb, p, err := evaluate(v, alpha, train, test)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %.3f  ", tlb)
				lastTLB, pruning = tlb, p
			}
			_ = lastTLB
			fmt.Printf(" %5.1f%%\n", pruning*100)
		}
		fmt.Println()
	}
	fmt.Println("TLB = lower bound / true distance (higher is better; 1.0 = perfect).")
	fmt.Println("pruning@256 = fraction of candidates whose word-level bound already")
	fmt.Println("exceeds the true 1-NN distance — the work the index never does.")
}

// evaluate returns the mean TLB and the 1-NN pruning power of a variant.
func evaluate(v variant, alpha int, train, test *distance.Matrix) (tlb, pruning float64, err error) {
	bits := 0
	for 1<<bits < alpha {
		bits++
	}
	n := train.Stride
	var lbs [][]float64 // [query][candidate] squared lower bounds
	if v.isSAX {
		q, err := sax.NewQuantizer(n, wordLength, bits)
		if err != nil {
			return 0, 0, err
		}
		words := make([]byte, train.Len()*wordLength)
		scratch := make([]float64, wordLength)
		for i := 0; i < train.Len(); i++ {
			if _, err := q.Word(train.Row(i), words[i*wordLength:(i+1)*wordLength], scratch); err != nil {
				return 0, 0, err
			}
		}
		qr := make([]float64, wordLength)
		for qi := 0; qi < test.Len(); qi++ {
			if _, err := q.QueryRepr(test.Row(qi), qr); err != nil {
				return 0, 0, err
			}
			row := make([]float64, train.Len())
			for i := range row {
				row[i] = q.MinDist(qr, words[i*wordLength:(i+1)*wordLength])
			}
			lbs = append(lbs, row)
		}
	} else {
		q, err := sfa.Learn(train, sfa.Options{
			WordLength: wordLength, Bits: bits,
			Binning: v.binning, Selection: v.selection, SampleRate: 1,
		})
		if err != nil {
			return 0, 0, err
		}
		tr := q.NewTransformer()
		words := make([]byte, train.Len()*wordLength)
		for i := 0; i < train.Len(); i++ {
			if _, err := tr.Word(train.Row(i), words[i*wordLength:(i+1)*wordLength]); err != nil {
				return 0, 0, err
			}
		}
		qr := make([]float64, wordLength)
		for qi := 0; qi < test.Len(); qi++ {
			if _, err := tr.QueryRepr(test.Row(qi), qr); err != nil {
				return 0, 0, err
			}
			row := make([]float64, train.Len())
			for i := range row {
				row[i] = q.MinDist(qr, words[i*wordLength:(i+1)*wordLength])
			}
			lbs = append(lbs, row)
		}
	}
	// TLB and pruning power against the true distances.
	var tlbSum float64
	var tlbCount, pruned, total int
	for qi := 0; qi < test.Len(); qi++ {
		dists := make([]float64, train.Len())
		best := math.Inf(1)
		for i := 0; i < train.Len(); i++ {
			dists[i] = distance.SquaredED(test.Row(qi), train.Row(i))
			if dists[i] < best {
				best = dists[i]
			}
		}
		for i := 0; i < train.Len(); i++ {
			if dists[i] > 0 {
				tlbSum += math.Sqrt(lbs[qi][i]) / math.Sqrt(dists[i])
				tlbCount++
			}
			total++
			if lbs[qi][i] > best {
				pruned++
			}
		}
	}
	return tlbSum / float64(tlbCount), float64(pruned) / float64(total), nil
}
