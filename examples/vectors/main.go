// Vectors: exact k-NN over SIFT-like descriptor vectors — the unordered,
// heavy-tailed, high-variance data the paper contrasts with classic time
// series (Section III). Shows k-NN scaling (paper Table III / Fig. 9) and
// the pruning counters behind it, through the public repro/sofa API.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/sofa"
)

func main() {
	spec, err := dataset.ByName("SIFT1b")
	if err != nil {
		log.Fatal(err)
	}
	spec.Count = 25000
	data, err := dataset.Generate(spec, 11)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := dataset.GenerateQueries(spec, 40, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vector collection: %d descriptors x %d (synthetic %s)\n",
		data.Len(), data.Stride, spec.Name)

	ix, err := sofa.Build(data, sofa.SFA(), sofa.LeafSize(512))
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("SOFA index: %d subtrees, %d leaves, avg depth %.1f, built in %.0fms\n",
		st.Subtrees, st.Leaves, st.AvgDepth, ix.BuildSeconds()*1000)

	ctx := context.Background()
	fmt.Println("\nk-NN scaling (median per-query time, exact results):")
	var buf []sofa.Result
	for _, k := range []int{1, 3, 5, 10, 20, 50} {
		times := make([]float64, queries.Len())
		var lbd, ed int64
		var qstats sofa.SearchStats
		for qi := 0; qi < queries.Len(); qi++ {
			q := sofa.Query{Series: queries.Row(qi), K: k}.With(sofa.WithStats(&qstats))
			start := time.Now()
			buf, err = ix.SearchInto(ctx, q, buf)
			if err != nil {
				log.Fatal(err)
			}
			times[qi] = time.Since(start).Seconds()
			if len(buf) != k {
				log.Fatalf("expected %d results, got %d", k, len(buf))
			}
			lbd += qstats.SeriesLBD
			ed += qstats.SeriesED
		}
		nq := int64(queries.Len())
		fmt.Printf("  k=%-3d median %6.3fms   word-LBD checks/query %6d, real distances/query %5d (of %d series)\n",
			k, stats.Median(times)*1000, lbd/nq, ed/nq, data.Len())
	}

	// Show one concrete answer.
	res, err := ix.Search(ctx, sofa.Query{Series: queries.Row(0), K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery 0, top 5:")
	for rank, r := range res {
		fmt.Printf("  %d. descriptor #%d at z-ED %.4f\n", rank+1, r.ID, math.Sqrt(r.Dist))
	}
}
