// Package analysis is the repo's static-analysis suite: named, testable
// analyzers that enforce the invariants the compiler cannot see — pooled
// slice ownership at call sites, dead-code-eliminable fault-injection hooks,
// the public API import boundary, atomic field discipline, sentinel error
// wrapping, and the zero-alloc escape budget of the query hot path.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, diagnostics, golden-fixture tests) but is built on
// the standard library alone: packages are enumerated with `go list -export`,
// parsed with go/parser, and type-checked with go/types against the build
// cache's export data, so the module keeps its zero-dependency go.mod. One
// intentional deviation: a Pass sees the whole module, not one package —
// several of the invariants here (stale allowlist entries, cross-package
// import rules, the escape budget) are module-level properties that a
// per-package pass cannot express.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one loaded (and, when requested, type-checked) package: the
// unit the analyzers iterate over. Files holds the non-test sources only —
// the audited invariants are about what ships, not about test scaffolding.
type Package struct {
	// Path is the import path ("repro/internal/index").
	Path string
	// Dir is the absolute package directory.
	Dir string
	// RelDir is the module-root-relative directory, slash-separated
	// ("internal/index"; "" for the module root).
	RelDir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, parallel to FileNames.
	Files []*ast.File
	// FileNames are module-root-relative, slash-separated file paths.
	FileNames []string
	// Types and Info are populated when the load requested type information;
	// nil otherwise. Info carries Types, Defs, Uses and Selections.
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is one finding. Pos may be the zero Position for module-level
// findings (a stale allowlist entry has no call site to point at).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	if d.Pos.Filename == "" {
		return fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
	}
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one run: every loaded package in the
// module, plus the reporting sink.
type Pass struct {
	// ModuleDir is the absolute module root (where go.mod lives). Analyzers
	// that shell out (the escape-budget gate) run the go tool here.
	ModuleDir string
	// Tags is the comma-separated build-tag list the load used ("" for the
	// default build).
	Tags string
	// Packages is every package matched by the load patterns.
	Packages []*Package

	analyzer string
	sink     func(Diagnostic)
}

// Reportf records a finding at a resolved source position.
func (p *Pass) Reportf(pos token.Position, format string, args ...any) {
	p.sink(Diagnostic{Analyzer: p.analyzer, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportNodef records a finding at a node within pkg.
func (p *Pass) ReportNodef(pkg *Package, n ast.Node, format string, args ...any) {
	p.Reportf(pkg.Fset.Position(n.Pos()), format, args...)
}

// ReportModulef records a module-level finding with no source position
// (stale allowlist entries, budget drift).
func (p *Pass) ReportModulef(format string, args ...any) {
	p.sink(Diagnostic{Analyzer: p.analyzer, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph contract the analyzer enforces; sofa-vet
	// prints it for -help.
	Doc string
	// NeedTypes requests type-checked packages (Package.Types/Info set).
	NeedTypes bool
	// Run inspects the whole module and reports findings via the Pass. A
	// returned error is an analyzer failure (could not run), distinct from
	// findings.
	Run func(*Pass) error
}

// Run loads the module's packages matching patterns (with the given build
// tags) once and runs every analyzer over them. Diagnostics come back
// sorted by file, line, then analyzer; module-level diagnostics sort first.
func Run(analyzers []*Analyzer, moduleDir string, patterns []string, tags string) ([]Diagnostic, error) {
	needTypes := false
	for _, a := range analyzers {
		if a.NeedTypes {
			needTypes = true
		}
	}
	pkgs, err := LoadPackages(moduleDir, patterns, tags, needTypes)
	if err != nil {
		return nil, err
	}
	return RunOn(analyzers, moduleDir, tags, pkgs)
}

// RunOn runs the analyzers over an already-loaded package set. The fixture
// harness uses this to drive analyzers over testdata packages.
func RunOn(analyzers []*Analyzer, moduleDir, tags string, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			ModuleDir: moduleDir,
			Tags:      tags,
			Packages:  pkgs,
			analyzer:  a.Name,
			sink:      func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := pass.run(a); err != nil {
			return diags, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// run isolates one analyzer invocation so a panicking analyzer reports as
// its own failure instead of taking down the whole suite run.
func (p *Pass) run(a *Analyzer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panicked: %v", r)
		}
	}()
	return a.Run(p)
}
