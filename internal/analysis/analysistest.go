package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// This file is the golden-fixture harness: the stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest. Fixture packages live under
// testdata/src/<analyzer>/<pkg>/ (testdata keeps the go tool and the module
// build away from the seeded violations), and expectations are written on
// the offending line as `// want "regexp"` comments — one or more quoted
// regexps, each of which must match a diagnostic reported on that line.
// Module-level diagnostics (stale allowlist entries have no source position)
// are asserted via the moduleWants arguments to RunExpect.

// LoadFixture parses every package under root (each directory with .go
// files is one package; its path is the slash-separated directory relative
// to root). When needTypes is set the packages are type-checked against the
// standard library's export data — fixture imports must then resolve to the
// stdlib roots listed (plus their dependencies).
func LoadFixture(t *testing.T, root string, needTypes bool, stdlibRoots ...string) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	byDir := map[string]*Package{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		pkg := byDir[rel]
		if pkg == nil {
			pkg = &Package{Path: rel, Dir: dir, RelDir: rel, Fset: fset}
			byDir[rel] = pkg
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pkg.Files = append(pkg.Files, file)
		pkg.FileNames = append(pkg.FileNames, joinRel(rel, filepath.Base(path)))
		return nil
	})
	if err != nil {
		t.Fatalf("load fixture %s: %v", root, err)
	}
	var pkgs []*Package
	for _, pkg := range byDir {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	if needTypes {
		imp, err := StdlibExportImporter(root, fset, stdlibRoots...)
		if err != nil {
			t.Fatalf("stdlib importer: %v", err)
		}
		for _, pkg := range pkgs {
			conf := types.Config{Importer: imp}
			info := &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			}
			tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
			if err != nil {
				t.Fatalf("type-check fixture %s: %v", pkg.Path, err)
			}
			pkg.Types, pkg.Info = tpkg, info
		}
	}
	return pkgs
}

// wantComment extracts the quoted regexps from a `// want "..." "..."` form.
var wantComment = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantPattern = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` assertion, keyed by file:line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// RunExpect runs the analyzers over the fixture packages and requires an
// exact correspondence between diagnostics and expectations: every `// want`
// regexp matches at least one diagnostic on its line, every positional
// diagnostic is claimed by some want on its line, every moduleWant matches a
// module-level diagnostic, and no unexpected module-level diagnostics
// remain.
func RunExpect(t *testing.T, analyzers []*Analyzer, pkgs []*Package, moduleWants ...string) {
	t.Helper()
	diags, err := RunOn(analyzers, "", "", pkgs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	wants := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for i, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantComment.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					line := pkg.Fset.Position(c.Pos()).Line
					key := fmt.Sprintf("%s:%d", pkg.FileNames[i], line)
					for _, q := range wantPattern.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, q[1], err)
						}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
			}
		}
	}

	var moduleDiags []Diagnostic
	for _, d := range diags {
		if d.Pos.Filename == "" {
			moduleDiags = append(moduleDiags, d)
			continue
		}
		// Positions are absolute file paths; recover the fixture-relative
		// name by matching the package's file list.
		key := fmt.Sprintf("%s:%d", fixtureFileName(pkgs, d.Pos.Filename), d.Pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched, claimed = true, true
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: want %q matched no diagnostic", key, w.re)
			}
		}
	}

	matchedModule := make([]bool, len(moduleDiags))
	for _, want := range moduleWants {
		re, err := regexp.Compile(want)
		if err != nil {
			t.Fatalf("bad module want regexp %q: %v", want, err)
		}
		ok := false
		for i, d := range moduleDiags {
			if re.MatchString(d.Message) {
				matchedModule[i], ok = true, true
			}
		}
		if !ok {
			t.Errorf("module want %q matched no module-level diagnostic (have %d)", want, len(moduleDiags))
		}
	}
	for i, d := range moduleDiags {
		if !matchedModule[i] {
			t.Errorf("unexpected module-level diagnostic: %s", d.Message)
		}
	}
}

// fixtureFileName maps an absolute diagnostic filename back to the
// fixture-relative name used in want keys.
func fixtureFileName(pkgs []*Package, abs string) string {
	for _, pkg := range pkgs {
		for _, name := range pkg.FileNames {
			if filepath.Join(pkg.Dir, filepath.Base(name)) == abs {
				return name
			}
		}
	}
	return filepath.ToSlash(abs)
}
