package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AtomicFieldConfig parameterizes the atomic-access discipline check.
type AtomicFieldConfig struct {
	// DeclaredAtomic pins struct fields that MUST be declared with a
	// sync/atomic wrapper type (atomic.Int64, atomic.Uint64, atomic.Bool,
	// ...): the cross-shard best-so-far, quarantine streaks, split counters.
	// Keyed "importpath.Struct.Field". A wrapper type makes every access
	// atomic by construction and self-aligns on 32-bit targets (align64), so
	// demoting one of these to a plain integer is a data race and, on
	// 32-bit, a runtime fault waiting to happen. Missing fields are flagged
	// as stale entries.
	DeclaredAtomic []string
}

// atomicOps maps the raw sync/atomic functions to the index of their
// address-taken argument.
var atomicOps = map[string]int{
	"AddInt32": 0, "AddInt64": 0, "AddUint32": 0, "AddUint64": 0, "AddUintptr": 0,
	"LoadInt32": 0, "LoadInt64": 0, "LoadUint32": 0, "LoadUint64": 0, "LoadUintptr": 0, "LoadPointer": 0,
	"StoreInt32": 0, "StoreInt64": 0, "StoreUint32": 0, "StoreUint64": 0, "StoreUintptr": 0, "StorePointer": 0,
	"SwapInt32": 0, "SwapInt64": 0, "SwapUint32": 0, "SwapUint64": 0, "SwapUintptr": 0, "SwapPointer": 0,
	"CompareAndSwapInt32": 0, "CompareAndSwapInt64": 0, "CompareAndSwapUint32": 0,
	"CompareAndSwapUint64": 0, "CompareAndSwapUintptr": 0, "CompareAndSwapPointer": 0,
}

// sixtyFourBitOps are the raw ops whose operand must be 64-bit aligned even
// on 32-bit targets (the documented sync/atomic bug contract).
var sixtyFourBitOps = map[string]bool{
	"AddInt64": true, "AddUint64": true, "LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true, "SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// NewAtomicField builds the atomicfield analyzer. Three invariants:
//
//  1. Every struct field whose address reaches a raw sync/atomic function
//     (atomic.AddInt64(&s.f, ...)) must be accessed atomically EVERYWHERE:
//     any plain read or write of the same field elsewhere in the module is
//     a data race the race detector only catches when the schedule
//     cooperates. (The repo convention is atomic.Int64-style wrapper types,
//     which make mixed access inexpressible; raw ops are how regressions
//     sneak in.)
//  2. A 64-bit field used with raw sync/atomic ops must sit at a 64-bit
//     aligned offset under GOARCH=386 struct layout — the wrapper types
//     guarantee this via align64, raw fields only get it by field-order
//     luck.
//  3. The DeclaredAtomic fields must keep their sync/atomic wrapper types.
func NewAtomicField(cfg AtomicFieldConfig) *Analyzer {
	return &Analyzer{
		Name:      "atomicfield",
		NeedTypes: true,
		Doc: "enforce atomic access discipline: fields touched via raw sync/atomic must be accessed " +
			"atomically everywhere and be 64-bit aligned on 32-bit targets; declared hot fields " +
			"(best-so-far, quarantine streaks, split counters) must keep their atomic wrapper types",
		Run: func(pass *Pass) error {
			// Pass 1: collect every field object reaching a raw atomic op,
			// and check 32-bit alignment for the 64-bit ops.
			type fieldUse struct {
				pkg  *Package
				node ast.Node
			}
			atomicFields := map[*types.Var][]fieldUse{}
			for _, pkg := range pass.Packages {
				if pkg.Info == nil {
					continue
				}
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						name, ok := rawAtomicCall(pkg.Info, call)
						if !ok || len(call.Args) <= atomicOps[name] {
							return true
						}
						fv := addressedField(pkg.Info, call.Args[atomicOps[name]])
						if fv == nil {
							return true
						}
						atomicFields[fv] = append(atomicFields[fv], fieldUse{pkg, call})
						if sixtyFourBitOps[name] {
							checkAlign386(pass, pkg, call, fv)
						}
						return true
					})
				}
			}

			// Pass 2: any plain (non-atomic) selector access to one of those
			// fields, anywhere in the module, is a mixed-access hazard.
			for _, pkg := range pass.Packages {
				if pkg.Info == nil {
					continue
				}
				for _, file := range pkg.Files {
					// Mark the selector expressions consumed by atomic calls
					// in this file so they are not re-flagged as plain uses.
					atomicArgs := map[ast.Node]bool{}
					ast.Inspect(file, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if name, ok := rawAtomicCall(pkg.Info, call); ok && len(call.Args) > atomicOps[name] {
							if sel := addressedSelector(call.Args[atomicOps[name]]); sel != nil {
								atomicArgs[sel] = true
							}
						}
						return true
					})
					ast.Inspect(file, func(n ast.Node) bool {
						sel, ok := n.(*ast.SelectorExpr)
						if !ok || atomicArgs[sel] {
							return true
						}
						selection, ok := pkg.Info.Selections[sel]
						if !ok || selection.Kind() != types.FieldVal {
							return true
						}
						fv, ok := selection.Obj().(*types.Var)
						if !ok {
							return true
						}
						if _, isAtomic := atomicFields[fv]; isAtomic {
							pass.ReportNodef(pkg, sel, "plain access to %s.%s, a field accessed via sync/atomic elsewhere — every read and write must go through sync/atomic (prefer migrating the field to an atomic.%s wrapper type)",
								fieldOwner(fv), fv.Name(), wrapperFor(fv.Type()))
						}
						return true
					})
				}
			}

			// Pass 3: declared hot fields keep their wrapper types.
			checkDeclaredAtomic(pass, cfg.DeclaredAtomic)
			return nil
		},
	}
}

// rawAtomicCall reports whether call is a direct sync/atomic function call
// (not a wrapper-type method), returning the function name.
func rawAtomicCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, known := atomicOps[sel.Sel.Name]; !known {
		return "", false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", false
	}
	return sel.Sel.Name, true
}

// addressedSelector unwraps &expr down to a field selector, or nil.
func addressedSelector(e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// addressedField resolves &x.f to the field's types.Var, or nil when the
// operand is not an addressed struct field.
func addressedField(info *types.Info, e ast.Expr) *types.Var {
	sel := addressedSelector(e)
	if sel == nil {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	fv, _ := selection.Obj().(*types.Var)
	return fv
}

// checkAlign386 verifies the field sits at an 8-byte-aligned offset within
// its immediate struct under GOARCH=386 layout. Offset 0 additionally relies
// on the allocation guarantee (the first word of an allocated struct is
// 64-bit aligned), which holds for heap/global structs — the discipline the
// sync/atomic bug note demands.
func checkAlign386(pass *Pass, pkg *Package, at ast.Node, fv *types.Var) {
	owner := owningStruct(fv)
	if owner == nil {
		return
	}
	sizes := types.SizesFor("gc", "386")
	var fields []*types.Var
	idx := -1
	for i := 0; i < owner.NumFields(); i++ {
		fields = append(fields, owner.Field(i))
		if owner.Field(i) == fv {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	off := sizes.Offsetsof(fields)[idx]
	if off%8 != 0 {
		pass.ReportNodef(pkg, at, "64-bit atomic field %s.%s is at offset %d under GOARCH=386 (must be 8-byte aligned): reorder it to the front of the struct or use an atomic.%s wrapper (self-aligning via align64)",
			fieldOwner(fv), fv.Name(), off, wrapperFor(fv.Type()))
	}
}

// owningStruct finds the struct type that declares fv, by scanning the named
// types of fv's package (a types.Var does not link back to its struct).
func owningStruct(fv *types.Var) *types.Struct {
	if fv.Pkg() == nil {
		return nil
	}
	scope := fv.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fv {
				return st
			}
		}
	}
	return nil
}

// fieldOwner names the struct declaring fv, for diagnostics; falls back to
// the package path when the struct is unnamed or local.
func fieldOwner(fv *types.Var) string {
	if fv.Pkg() == nil {
		return "?"
	}
	scope := fv.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fv {
				return tn.Name()
			}
		}
	}
	return fv.Pkg().Path()
}

// wrapperFor suggests the sync/atomic wrapper type for a plain integer type.
func wrapperFor(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	case types.Bool:
		return "Bool"
	}
	return "Value"
}

// checkDeclaredAtomic verifies each "path.Struct.Field" entry names an
// existing field declared with a sync/atomic wrapper type.
func checkDeclaredAtomic(pass *Pass, declared []string) {
	byPath := map[string]*Package{}
	for _, pkg := range pass.Packages {
		byPath[pkg.Path] = pkg
	}
	entries := append([]string(nil), declared...)
	sort.Strings(entries)
	for _, entry := range entries {
		i := strings.LastIndex(entry, ".")
		j := strings.LastIndex(entry[:max(i, 0)], ".")
		if i < 0 || j < 0 {
			pass.ReportModulef("malformed atomicfield DeclaredAtomic entry %q (want importpath.Struct.Field)", entry)
			continue
		}
		pkgPath, structName, fieldName := entry[:j], entry[j+1:i], entry[i+1:]
		pkg := byPath[pkgPath]
		if pkg == nil || pkg.Types == nil {
			pass.ReportModulef("stale atomicfield entry %s: package %s not loaded", entry, pkgPath)
			continue
		}
		obj := pkg.Types.Scope().Lookup(structName)
		if obj == nil {
			pass.ReportModulef("stale atomicfield entry %s: type %s gone from %s", entry, structName, pkgPath)
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.ReportModulef("stale atomicfield entry %s: %s.%s is not a struct", entry, pkgPath, structName)
			continue
		}
		var field *types.Var
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == fieldName {
				field = st.Field(i)
			}
		}
		if field == nil {
			pass.ReportModulef("stale atomicfield entry %s: field %s gone from %s.%s", entry, fieldName, pkgPath, structName)
			continue
		}
		if !isAtomicWrapper(field.Type()) {
			pass.Reportf(pkg.Fset.Position(field.Pos()), "%s.%s.%s must be a sync/atomic wrapper type (got %s): this field is concurrently accessed by searcher goroutines and a plain type makes non-atomic access expressible",
				pkgPath, structName, fieldName, field.Type())
		}
	}
}

func isAtomicWrapper(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// DefaultAtomicFieldConfig pins the repo's concurrently-updated hot fields:
// the cross-shard best-so-far bound, shard quarantine health, the split
// counter the persistence guarantees pin, and the stream engine's
// watchdog/id state.
func DefaultAtomicFieldConfig() AtomicFieldConfig {
	return AtomicFieldConfig{
		DeclaredAtomic: []string{
			"repro/internal/index.KNNCollector.bound",
			"repro/internal/index.Tree.splits",
			"repro/internal/core.shardHealth.panics",
			"repro/internal/core.shardHealth.quarantined",
			"repro/internal/core.shardHealth.untrusted",
			"repro/internal/core.Stream.nextID",
			"repro/internal/core.Stream.watchdog",
		},
	}
}
