package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// FaultGuardConfig parameterizes the fault-injection hook audit.
type FaultGuardConfig struct {
	// HookSites maps module-relative file -> the Site* constants its
	// faultinject.Hook calls are allowed to use. The hook surface is a
	// closed, human-audited set.
	HookSites map[string]map[string]bool
	// ExemptDirs are module-relative package directories whose Hook calls
	// are not audited (the faultinject package itself, which defines Hook).
	ExemptDirs map[string]bool
}

// NewFaultGuard builds the faultguard analyzer: every faultinject.Hook call
// must (1) pass a faultinject.Site* selector constant — never a string
// literal or variable, so the schedule space stays enumerable and Arm's
// validation stays exact — (2) appear at a file/site pair in the audited
// allowlist, and (3) sit lexically inside an `if faultinject.Enabled` guard
// so the release build (where Enabled is a false constant)
// dead-code-eliminates the entire harness. Stale allowlist entries are
// flagged. Migrated from the repo-root TestFaultinjectHookAudit AST walk.
func NewFaultGuard(cfg FaultGuardConfig) *Analyzer {
	return &Analyzer{
		Name: "faultguard",
		Doc: "require every faultinject.Hook call to use a declared Site* constant, inside an " +
			"`if faultinject.Enabled` guard, at a human-audited file/site pair — the contract that lets " +
			"release builds dead-code-eliminate the whole injection harness",
		Run: func(pass *Pass) error {
			found := map[string]map[string]bool{}
			for _, pkg := range pass.Packages {
				if cfg.ExemptDirs[pkg.RelDir] {
					continue
				}
				for i, file := range pkg.Files {
					rel := pkg.FileNames[i]
					// Collect the body ranges of every `if faultinject.Enabled`
					// guard (including `if faultinject.Enabled && ...`), then
					// require each Hook call to fall inside one.
					var guards [][2]token.Pos
					ast.Inspect(file, func(n ast.Node) bool {
						ifs, ok := n.(*ast.IfStmt)
						if !ok {
							return true
						}
						cond := ifs.Cond
						if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LAND {
							cond = b.X
						}
						if isPkgSelector(cond, "faultinject", "Enabled") {
							guards = append(guards, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
						}
						return true
					})
					ast.Inspect(file, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok || !isPkgSelector(call.Fun, "faultinject", "Hook") {
							return true
						}
						site := ""
						if len(call.Args) == 1 {
							if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
								if id, ok := sel.X.(*ast.Ident); ok && id.Name == "faultinject" && strings.HasPrefix(sel.Sel.Name, "Site") {
									site = sel.Sel.Name
								}
							}
						}
						if site == "" {
							pass.ReportNodef(pkg, call, "faultinject.Hook argument must be a faultinject.Site* constant")
							return true
						}
						guarded := false
						for _, g := range guards {
							if call.Pos() >= g[0] && call.End() <= g[1] {
								guarded = true
								break
							}
						}
						if !guarded {
							pass.ReportNodef(pkg, call, "faultinject.Hook(%s) is not inside an `if faultinject.Enabled` guard — the release build would keep the call", site)
						}
						if found[rel] == nil {
							found[rel] = map[string]bool{}
						}
						found[rel][site] = true
						if !cfg.HookSites[rel][site] {
							pass.ReportNodef(pkg, call, "unaudited fault-injection hook: %s fires %s — read the call site and add it to the faultguard allowlist", rel, site)
						}
						return true
					})
				}
			}
			var stale []string
			for file, sites := range cfg.HookSites {
				for s := range sites {
					if !found[file][s] {
						stale = append(stale, file+":"+s)
					}
				}
			}
			sort.Strings(stale)
			for _, s := range stale {
				pass.ReportModulef("stale faultguard hook allowlist entry %s (call site gone); remove it", s)
			}
			return nil
		},
	}
}

// isPkgSelector reports whether e is the selector `pkg.name` with a bare
// package identifier (syntactic: matches how the audited call sites are
// written; the guarded packages all import faultinject unrenamed).
func isPkgSelector(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// DefaultFaultGuardConfig is the repo's audited hook surface, carried over
// from the TestFaultinjectHookAudit allowlist entry for entry.
func DefaultFaultGuardConfig() FaultGuardConfig {
	return FaultGuardConfig{
		HookSites: map[string]map[string]bool{
			"internal/core/collection.go": {"SiteTombstone": true, "SiteCompactSwap": true},
			"internal/core/persist.go":    {"SitePersistRead": true, "SitePersistWrite": true, "SiteCheckpointRename": true},
			"internal/core/stream.go":     {"SiteStreamWorker": true, "SiteStreamSubmit": true},
			"internal/core/wal.go":        {"SiteWALAppend": true, "SiteWALSync": true},
			"internal/index/approx.go":    {"SiteKernel": true},
			"internal/index/batch.go":     {"SiteBatchWorker": true},
			"internal/index/shard.go":     {"SiteShardSeed": true, "SiteShardFinish": true, "SiteKernel": true},
		},
		ExemptDirs: map[string]bool{"internal/faultinject": true},
	}
}
