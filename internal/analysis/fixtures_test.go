package analysis

// Golden-fixture tests: each analyzer runs over seeded violations under
// testdata/src/<analyzer>/ and must report exactly the `// want` comments
// (plus the module-level wants asserted here — the stale-allowlist cases the
// old repo-root AST tests could not express as golden files, because a
// stale entry has no source line to anchor to).

import (
	"path/filepath"
	"testing"
)

func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestRetainAuditFixture(t *testing.T) {
	pkgs := LoadFixture(t, fixtureDir(t, "retainaudit"), false)
	a := NewRetainAudit(RetainConfig{
		OwnedSliceAPIs: map[string]bool{"Search": true, "SearchPlan": true, "NewStream": true},
		AuditedCallers: map[string]map[string]string{
			"a/a.go": {
				"Search":     "fixture: results discarded",
				"SearchPlan": "fixture: STALE — no SearchPlan call site exists",
			},
		},
	})
	RunExpect(t, []*Analyzer{a}, pkgs,
		`stale retainaudit allowlist entry a/a\.go:SearchPlan`)
}

func TestFaultGuardFixture(t *testing.T) {
	pkgs := LoadFixture(t, fixtureDir(t, "faultguard"), false)
	a := NewFaultGuard(FaultGuardConfig{
		HookSites: map[string]map[string]bool{
			"a/a.go": {
				"SiteAudited": true,
				// SiteGone is stale: no call site fires it.
				"SiteGone": true,
			},
		},
		ExemptDirs: map[string]bool{"faultinject": true},
	})
	RunExpect(t, []*Analyzer{a}, pkgs,
		`stale faultguard hook allowlist entry a/a\.go:SiteGone`)
}

func TestImportBoundaryFixture(t *testing.T) {
	pkgs := LoadFixture(t, fixtureDir(t, "importboundary"), false)
	a := NewImportBoundary(ImportBoundaryConfig{
		ProgramDirPrefixes: []string{"cmd/"},
		Forbidden:          map[string]bool{"repro/internal/core": true},
		PublicPath:         "repro/sofa",
		MustImportPublic: map[string]bool{
			"cmd/tool":  true,
			"cmd/other": true,
			// cmd/gone does not exist: the stale-entry case.
			"cmd/gone": true,
		},
	})
	RunExpect(t, []*Analyzer{a}, pkgs,
		`cmd/other does not import repro/sofa`,
		`cmd/gone \(package not found — stale importboundary entry\?\) does not import repro/sofa`)
}

func TestAtomicFieldFixture(t *testing.T) {
	pkgs := LoadFixture(t, fixtureDir(t, "atomicfield"), true, "sync/atomic")
	a := NewAtomicField(AtomicFieldConfig{
		DeclaredAtomic: []string{
			"a.W.ctr",
			"a.V.ctr",
			// a.Gone.ctr is stale: the struct does not exist.
			"a.Gone.ctr",
		},
	})
	RunExpect(t, []*Analyzer{a}, pkgs,
		`stale atomicfield entry a\.Gone\.ctr: type Gone gone from a`)
}

func TestSentErrFixture(t *testing.T) {
	pkgs := LoadFixture(t, fixtureDir(t, "senterr"), true, "fmt", "errors")
	a := NewSentErr(SentErrConfig{
		BoundaryPackages: map[string]bool{"a": true},
		Sentinels:        []string{"ErrA", "ErrDead"},
	})
	RunExpect(t, []*Analyzer{a}, pkgs,
		`sentinel a\.ErrDead is declared but never wrapped or returned`)
}
