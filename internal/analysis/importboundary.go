package analysis

import (
	"sort"
	"strings"
)

// ImportBoundaryConfig parameterizes the public-API boundary check.
type ImportBoundaryConfig struct {
	// ProgramDirPrefixes are the module-relative directory prefixes holding
	// demo/tool programs ("cmd/", "examples/").
	ProgramDirPrefixes []string
	// Forbidden are the engine import paths those programs must reach only
	// through the public package.
	Forbidden map[string]bool
	// PublicPath is the one supported API package ("repro/sofa").
	PublicPath string
	// MustImportPublic lists program directories (module-relative) whose
	// whole purpose is the query API; they must demonstrate the public
	// package, guarding against a "temporary" rewire back onto internals.
	MustImportPublic map[string]bool
}

// NewImportBoundary builds the importboundary analyzer: nothing under the
// program directories may import the engine internals — those are unstable
// contracts (pooled searcher-owned slices, shard query phases) the public
// package exists to encapsulate — and the designated demo programs must
// actually import the public package. Migrated from the repo-root
// TestProgramsUseOnlyPublicAPI.
func NewImportBoundary(cfg ImportBoundaryConfig) *Analyzer {
	return &Analyzer{
		Name: "importboundary",
		Doc: "keep cmd/ and examples/ on the public API: forbid imports of the engine internals from " +
			"program directories and require the designated demos to import the public package",
		Run: func(pass *Pass) error {
			importsPublic := map[string]bool{}
			seenDirs := map[string]bool{}
			for _, pkg := range pass.Packages {
				inPrograms := false
				for _, prefix := range cfg.ProgramDirPrefixes {
					if strings.HasPrefix(pkg.RelDir+"/", prefix) {
						inPrograms = true
					}
				}
				if !inPrograms {
					continue
				}
				seenDirs[pkg.RelDir] = true
				for i, file := range pkg.Files {
					for _, imp := range file.Imports {
						ipath := strings.Trim(imp.Path.Value, `"`)
						if cfg.Forbidden[ipath] {
							pass.ReportNodef(pkg, imp, "%s imports %s: program directories must use the public %s API",
								pkg.FileNames[i], ipath, cfg.PublicPath)
						}
						if ipath == cfg.PublicPath {
							importsPublic[pkg.RelDir] = true
						}
					}
				}
			}
			var missing []string
			for dir := range cfg.MustImportPublic {
				if !importsPublic[dir] {
					if !seenDirs[dir] {
						missing = append(missing, dir+" (package not found — stale importboundary entry?)")
					} else {
						missing = append(missing, dir)
					}
				}
			}
			sort.Strings(missing)
			for _, dir := range missing {
				pass.ReportModulef("%s does not import %s — the query-API demos must use the public package", dir, cfg.PublicPath)
			}
			return nil
		},
	}
}

// DefaultImportBoundaryConfig is the repo's boundary, carried over from
// api_boundary_test.go.
func DefaultImportBoundaryConfig() ImportBoundaryConfig {
	return ImportBoundaryConfig{
		ProgramDirPrefixes: []string{"cmd/", "examples/"},
		Forbidden: map[string]bool{
			"repro/internal/core":  true,
			"repro/internal/index": true,
		},
		PublicPath: "repro/sofa",
		MustImportPublic: map[string]bool{
			"cmd/sofa-query":      true,
			"examples/quickstart": true,
			"examples/vectors":    true,
			"examples/seismic":    true,
		},
	}
}
