package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages enumerates the module packages matching patterns with
// `go list -export -deps`, parses their non-test sources, and (when
// withTypes is set) type-checks them with go/types using the build cache's
// export data for every import — the standard library included, which since
// Go 1.21 ships no pre-compiled archives and therefore defeats
// importer.Default. Dependencies between target packages also resolve
// through export data, so no topological source ordering is needed.
func LoadPackages(moduleDir string, patterns []string, tags string, withTypes bool) ([]*Package, error) {
	args := []string{"list", "-e", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}
	if withTypes {
		args = append(args, "-export")
	}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		q := p
		targets = append(targets, &q)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	absModule, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var imp types.Importer
	if withTypes {
		// One shared importer: its internal cache gives every target the
		// same types.Package for a given import path.
		imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			e, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(e)
		})
	}

	var pkgs []*Package
	for _, t := range targets {
		pkg := &Package{
			Path: t.ImportPath,
			Dir:  t.Dir,
			Fset: fset,
		}
		if rel, err := filepath.Rel(absModule, t.Dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				rel = ""
			}
			pkg.RelDir = filepath.ToSlash(rel)
		}
		for _, name := range t.GoFiles {
			file, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", filepath.Join(t.Dir, name), err)
			}
			pkg.Files = append(pkg.Files, file)
			pkg.FileNames = append(pkg.FileNames, joinRel(pkg.RelDir, name))
		}
		if withTypes && len(pkg.Files) > 0 {
			conf := types.Config{Importer: imp}
			info := &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			}
			tpkg, err := conf.Check(t.ImportPath, fset, pkg.Files, info)
			if err != nil {
				return nil, fmt.Errorf("type-check %s: %w", t.ImportPath, err)
			}
			pkg.Types, pkg.Info = tpkg, info
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func joinRel(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}

// StdlibExportImporter builds a types.Importer over the standard library's
// export data, for type-checking fixture packages that live outside any
// module (the analysistest harness). roots are the stdlib import paths the
// fixtures may reach ("sync/atomic", "fmt", ...); their transitive
// dependencies come along automatically. moduleDir is any directory inside
// a module, used only as the working directory for the go tool.
func StdlibExportImporter(moduleDir string, fset *token.FileSet, roots ...string) (types.Importer, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Export"}, roots...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", roots, err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}), nil
}
