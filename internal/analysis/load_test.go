package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoadPackagesTypes exercises the stdlib-only loader against the real
// module: packages enumerate, parse, and type-check with export data for
// every import (including targets importing other targets), and module-
// relative paths come out slash-separated.
func TestLoadPackagesTypes(t *testing.T) {
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPackages(moduleDir, []string{"./internal/index", "./sofa"}, "", true)
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	ix := byPath["repro/internal/index"]
	if ix == nil || ix.Types == nil {
		t.Fatal("repro/internal/index not loaded with types")
	}
	if ix.RelDir != "internal/index" {
		t.Fatalf("RelDir = %q, want internal/index", ix.RelDir)
	}
	if ix.Types.Scope().Lookup("Tree") == nil {
		t.Fatal("index.Tree not in type-checked scope")
	}
	sofa := byPath["repro/sofa"]
	if sofa == nil || sofa.Types == nil {
		t.Fatal("repro/sofa (which imports other module packages) not type-checked")
	}
	if len(sofa.Info.Uses) == 0 {
		t.Fatal("type info carries no uses")
	}
}
