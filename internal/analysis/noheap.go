package analysis

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// NoHeapConfig parameterizes the compile-time zero-alloc budget gate.
type NoHeapConfig struct {
	// Packages are the import paths whose escape-analysis output is gated
	// (the query hot path: simd, index, core).
	Packages []string
	// BudgetFile is the module-relative path of the checked-in budget. When
	// the build-tag configuration has its own budget (asm vs noasm compile
	// different files), Suite derives the name from the tags.
	BudgetFile string
}

// NewNoHeap builds the noheap analyzer: it compiles the gated packages with
// `go build -gcflags=-m`, keeps every "escapes to heap" / "moved to heap"
// line, normalizes away line/column numbers, and diffs the result against
// the checked-in budget. A change that makes a hot-path value — drainScratch,
// the per-query distTable — escape to the heap therefore fails static
// analysis before any benchmark run can notice the allocation. Escapes that
// disappear are flagged too (a stale budget claims allocations that no
// longer exist). Intentional new allocations are accepted by regenerating
// the budget: `go run ./cmd/sofa-vet -update-escape-budget`.
func NewNoHeap(cfg NoHeapConfig) *Analyzer {
	return &Analyzer{
		Name: "noheap",
		Doc: "compile-time zero-alloc budget: diff `go build -gcflags=-m` heap-escape output for the " +
			"hot-path packages against the checked-in escape budget, so a new heap escape fails CI " +
			"before any benchmark runs",
		Run: func(pass *Pass) error {
			got, err := EscapeReport(pass.ModuleDir, cfg.Packages, pass.Tags)
			if err != nil {
				return err
			}
			budgetPath := filepath.Join(pass.ModuleDir, filepath.FromSlash(cfg.BudgetFile))
			raw, err := os.ReadFile(budgetPath)
			if err != nil {
				pass.ReportModulef("escape budget %s unreadable (%v): generate it with `go run ./cmd/sofa-vet -update-escape-budget`", cfg.BudgetFile, err)
				return nil
			}
			want := parseBudget(string(raw))
			for _, line := range diffKeys(got, want) {
				pass.ReportModulef("new heap escape not in %s: %q (×%d) — eliminate the allocation or, if intentional, regenerate the budget with `go run ./cmd/sofa-vet -update-escape-budget`",
					cfg.BudgetFile, line, got[line])
			}
			for _, line := range diffKeys(want, got) {
				pass.ReportModulef("stale escape budget entry in %s: %q no longer escapes — regenerate the budget with `go run ./cmd/sofa-vet -update-escape-budget`",
					cfg.BudgetFile, line)
			}
			for _, line := range sortedKeys(got) {
				if want[line] > 0 && got[line] > want[line] {
					pass.ReportModulef("heap escape %q multiplied: ×%d now vs ×%d budgeted in %s — a new instance of a budgeted escape appeared",
						line, got[line], want[line], cfg.BudgetFile)
				}
				if want[line] > got[line] {
					pass.ReportModulef("escape budget overcounts %q (×%d budgeted, ×%d now) — regenerate the budget with `go run ./cmd/sofa-vet -update-escape-budget`",
						line, want[line], got[line])
				}
			}
			return nil
		},
	}
}

// escapeLine matches compiler -m diagnostics: "file.go:line:col: message".
var escapeLine = regexp.MustCompile(`^(.+\.go):\d+:\d+: (.*(?:escapes to heap|moved to heap).*)$`)

// EscapeReport compiles pkgs with -gcflags=-m (forcing the compile step out
// of — or replayed from — the build cache; the go tool replays cached
// compiler diagnostics, so repeated runs are cheap and identical) and
// returns the normalized multiset of heap-escape lines: "file.go: message"
// with line/column stripped, mapped to occurrence count. Counts make a
// second identical escape in the same file visible even though the
// normalized text matches an existing budget line.
func EscapeReport(moduleDir string, pkgs []string, tags string) (map[string]int, error) {
	args := []string{"build"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	for _, p := range pkgs {
		args = append(args, "-gcflags="+p+"=-m")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, out.String())
	}
	report := map[string]int{}
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		report[filepath.ToSlash(m[1])+": "+m[2]]++
	}
	return report, nil
}

// FormatBudget renders a report in the checked-in budget format: a header
// comment, then sorted "count<TAB>line" entries.
func FormatBudget(report map[string]int, tags string) string {
	var b strings.Builder
	b.WriteString("# Escape-analysis budget for the query hot path")
	if tags != "" {
		b.WriteString(" (tags: " + tags + ")")
	}
	b.WriteString(".\n")
	b.WriteString("# Every line is one normalized `go build -gcflags=-m` heap-escape diagnostic\n")
	b.WriteString("# (count, file, message; line numbers stripped). The noheap analyzer fails\n")
	b.WriteString("# when compilation produces an escape not listed here — or stops producing\n")
	b.WriteString("# a listed one. Regenerate: go run ./cmd/sofa-vet -update-escape-budget\n")
	for _, k := range sortedKeys(report) {
		fmt.Fprintf(&b, "%d\t%s\n", report[k], k)
	}
	return b.String()
}

// parseBudget reads the FormatBudget format back into a report.
func parseBudget(s string) map[string]int {
	report := map[string]int{}
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		count := 1
		if tab := strings.IndexByte(line, '\t'); tab > 0 {
			if n, err := fmt.Sscanf(line[:tab], "%d", &count); n != 1 || err != nil {
				count = 1
			}
			line = line[tab+1:]
		}
		report[line] += count
	}
	return report
}

// diffKeys returns the keys of a that are absent from b, sorted.
func diffKeys(a, b map[string]int) []string {
	var out []string
	for k := range a {
		if _, ok := b[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NoHeapBudgetFile derives the budget filename for a build-tag
// configuration: the asm (default) and noasm builds compile different
// kernel sources and therefore carry separate budgets.
func NoHeapBudgetFile(tags string) string {
	if strings.Contains(tags, "noasm") {
		return "internal/analysis/testdata/escape_budget_noasm.txt"
	}
	return "internal/analysis/testdata/escape_budget.txt"
}

// DefaultNoHeapConfig gates the PR 1/3/7 hot-path packages.
func DefaultNoHeapConfig(tags string) NoHeapConfig {
	return NoHeapConfig{
		Packages:   []string{"repro/internal/simd", "repro/internal/index", "repro/internal/core"},
		BudgetFile: NoHeapBudgetFile(tags),
	}
}
