package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the escape gate to compile.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const escClean = `package esc

// Sum keeps everything on the stack.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
`

const escLeaky = escClean + `
// Leak deliberately heap-escapes its local.
func Leak() *int {
	x := 7
	return &x
}
`

func runNoHeap(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	a := NewNoHeap(NoHeapConfig{Packages: []string{"escfix/esc"}, BudgetFile: "budget.txt"})
	diags, err := RunOn([]*Analyzer{a}, dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestNoHeapGate proves the acceptance property end to end: a budget
// matching the compiled escapes is clean, and a diff that introduces a heap
// escape fails the gate before any benchmark could notice the allocation —
// likewise a budget entry whose escape disappeared.
func TestNoHeapGate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module escfix\n\ngo 1.24\n",
		"esc/esc.go": escClean,
	})

	// An absent budget is itself a finding, with regeneration instructions.
	if diags := runNoHeap(t, dir); len(diags) != 1 || !strings.Contains(diags[0].Message, "unreadable") {
		t.Fatalf("missing budget: got %v", diags)
	}

	// Budget generated from the clean state: the gate passes.
	report, err := EscapeReport(dir, []string{"escfix/esc"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "budget.txt"), []byte(FormatBudget(report, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if diags := runNoHeap(t, dir); len(diags) != 0 {
		t.Fatalf("clean module vs matching budget: unexpected diagnostics %v", diags)
	}

	// The deliberate heap escape: the gate must fail with the new escape
	// named and the regeneration command in the message.
	if err := os.WriteFile(filepath.Join(dir, "esc", "esc.go"), []byte(escLeaky), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runNoHeap(t, dir)
	if len(diags) == 0 {
		t.Fatal("heap-escaping diff passed the gate")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "new heap escape") && strings.Contains(d.Message, "moved to heap: x") {
			found = true
		}
		if !strings.Contains(d.Message, "sofa-vet -update-escape-budget") {
			t.Errorf("diagnostic lacks regeneration instructions: %s", d.Message)
		}
	}
	if !found {
		t.Fatalf("no diagnostic names the escaped variable: %v", diags)
	}

	// Symmetry: with the leak budgeted, removing it flags the stale entry.
	report, err = EscapeReport(dir, []string{"escfix/esc"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "budget.txt"), []byte(FormatBudget(report, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "esc", "esc.go"), []byte(escClean), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := runNoHeap(t, dir)
	if len(stale) == 0 {
		t.Fatal("stale budget entry not flagged")
	}
	for _, d := range stale {
		if !strings.Contains(d.Message, "stale escape budget entry") {
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
}

// TestBudgetRoundTrip pins the budget file format: parse(format(r)) == r.
func TestBudgetRoundTrip(t *testing.T) {
	report := map[string]int{
		"esc/esc.go: moved to heap: x":       2,
		"esc/esc.go: new(T) escapes to heap": 1,
	}
	back := parseBudget(FormatBudget(report, "noasm"))
	if len(back) != len(report) {
		t.Fatalf("round trip changed entry count: %v vs %v", back, report)
	}
	for k, v := range report {
		if back[k] != v {
			t.Errorf("round trip %q: got %d want %d", k, back[k], v)
		}
	}
}
