package analysis

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strings"

	"repro/internal/faultinject"
)

// releaseSymbolPattern matches the faultinject runtime symbols that must be
// dead-code-eliminated out of every release build — the same contract the
// chaos CI job used to enforce with an nm|grep shell pipeline.
var releaseSymbolPattern = regexp.MustCompile(`faultinject\.(Arm|Hook|triggers)`)

// ReleaseScan proves a release binary carries no fault-injection residue:
// no faultinject runtime symbols in its symbol table (`go tool nm`), and no
// injection-site name strings in its bytes. Both leaks break the release
// contract — the harness must compile to nothing without the faultinject
// build tag — and the string check catches the subtler failure where the
// code is eliminated but a site constant is still referenced from live data.
// Returns one human-readable finding per violation; empty means clean.
func ReleaseScan(binary string) ([]string, error) {
	var findings []string

	cmd := exec.Command("go", "tool", "nm", binary)
	var out, errOut bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errOut
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go tool nm %s: %v\n%s", binary, err, errOut.String())
	}
	for _, line := range strings.Split(out.String(), "\n") {
		if releaseSymbolPattern.MatchString(line) {
			findings = append(findings, fmt.Sprintf("%s: faultinject runtime symbol survives in release binary: %s",
				binary, strings.TrimSpace(line)))
		}
	}

	data, err := os.ReadFile(binary)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", binary, err)
	}
	for _, site := range faultinject.Sites() {
		if siteStringPresent(data, site) {
			findings = append(findings, fmt.Sprintf("%s: faultinject site name %q survives in release binary bytes",
				binary, site))
		}
	}
	return findings, nil
}

// siteStringPresent reports whether site occurs in the binary as string
// data, discounting incidental matches inside embedded source paths: every
// release binary legitimately contains "index/kernel" as a substring of the
// internal/index/kernel.go file path the runtime embeds for stack traces.
// A match is incidental when the surrounding path-character token contains
// ".go"; genuine site constants live in the packed string-literal data,
// whose neighbors are other literals, not file paths. (The old CI shell
// pipeline dodged this by grepping only the six sites that collide with no
// path — this scan covers all of them.)
func siteStringPresent(data []byte, site string) bool {
	for idx := 0; ; {
		i := bytes.Index(data[idx:], []byte(site))
		if i < 0 {
			return false
		}
		i += idx
		idx = i + len(site)
		lo, hi := i, i+len(site)
		for lo > 0 && i-lo < 256 && isPathByte(data[lo-1]) {
			lo--
		}
		for hi < len(data) && hi-i < 256 && isPathByte(data[hi]) {
			hi++
		}
		if !bytes.Contains(data[lo:hi], []byte(".go")) {
			return true
		}
	}
}

func isPathByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' ||
		b == '_' || b == '/' || b == '.' || b == '-'
}
