package analysis

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestReleaseScan builds sofa-query in both personalities and pins the scan
// both ways: the release build must come back clean, and the
// faultinject-tagged build must trip on symbols and site strings — proving
// the scanner actually detects what the CI release gate exists to forbid.
func TestReleaseScan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two binaries")
	}
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	build := func(out string, tags ...string) string {
		t.Helper()
		args := []string{"build", "-o", out}
		args = append(args, tags...)
		args = append(args, "./cmd/sofa-query")
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleDir
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", out, err, b)
		}
		return out
	}

	tmp := t.TempDir()
	release := build(filepath.Join(tmp, "sofa-query-release"))
	findings, err := ReleaseScan(release)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("release build has faultinject residue:\n%s", strings.Join(findings, "\n"))
	}

	tagged := build(filepath.Join(tmp, "sofa-query-chaos"), "-tags", "faultinject")
	findings, err = ReleaseScan(tagged)
	if err != nil {
		t.Fatal(err)
	}
	var symbol, site bool
	for _, f := range findings {
		if strings.Contains(f, "runtime symbol") {
			symbol = true
		}
		if strings.Contains(f, "site name") {
			site = true
		}
	}
	if !symbol || !site {
		t.Fatalf("tagged build should trip both symbol and site-name checks, got:\n%s", strings.Join(findings, "\n"))
	}
}
