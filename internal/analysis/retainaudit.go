package analysis

import (
	"go/ast"
	"sort"
)

// RetainConfig parameterizes the pooled-slice retention audit.
type RetainConfig struct {
	// OwnedSliceAPIs are the method names whose results alias
	// caller-invisible pooled buffers (or, for NewStream, register callbacks
	// that receive them). Matching is by selector name — deliberately
	// over-inclusive: auditing a fresh-slice Search costs one allowlist line
	// and catches contract drift.
	OwnedSliceAPIs map[string]bool
	// AuditedCallers maps module-relative file -> method -> justification.
	// Every entry has been read by a human; the justification records why
	// that call site cannot retain a searcher-owned slice across queries.
	AuditedCallers map[string]map[string]string
}

// NewRetainAudit builds the retainaudit analyzer: every call site of an
// owned-slice API must appear in the audited allowlist, and every allowlist
// entry must still have a live call site (a stale entry claims coverage of
// code that no longer exists). Migrated from the repo-root
// TestPooledSliceRetentionAudit AST walk.
func NewRetainAudit(cfg RetainConfig) *Analyzer {
	return &Analyzer{
		Name: "retainaudit",
		Doc: "flag unaudited callers of pooled-slice APIs (Search*/SearchPlan/SearchInto/NewStream): " +
			"their results alias buffers overwritten by the next query, so each call site is read by a " +
			"human once and pinned in the allowlist with a justification; stale entries are flagged too",
		Run: func(pass *Pass) error {
			found := map[string]map[string]bool{}
			for _, pkg := range pass.Packages {
				for i, file := range pkg.Files {
					rel := pkg.FileNames[i]
					ast.Inspect(file, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						sel, ok := call.Fun.(*ast.SelectorExpr)
						if !ok || !cfg.OwnedSliceAPIs[sel.Sel.Name] {
							return true
						}
						if found[rel] == nil {
							found[rel] = map[string]bool{}
						}
						found[rel][sel.Sel.Name] = true
						if cfg.AuditedCallers[rel][sel.Sel.Name] == "" {
							pass.ReportNodef(pkg, call, "unaudited caller of %s: searcher-owned/callback-scoped slices must not be retained across queries; audit the call site and add %s:%s to the retainaudit allowlist with a justification",
								sel.Sel.Name, rel, sel.Sel.Name)
						}
						return true
					})
				}
			}
			var stale []string
			for file, methods := range cfg.AuditedCallers {
				for m := range methods {
					if !found[file][m] {
						stale = append(stale, file+":"+m)
					}
				}
			}
			sort.Strings(stale)
			for _, s := range stale {
				pass.ReportModulef("stale retainaudit allowlist entry %s (call site gone); remove it", s)
			}
			return nil
		},
	}
}

// DefaultRetainConfig is the repo's audited allowlist, carried over from
// retention_audit_test.go entry for entry.
func DefaultRetainConfig() RetainConfig {
	return RetainConfig{
		OwnedSliceAPIs: map[string]bool{
			"Search":            true,
			"Search1":           true, // returns a value, but callers often switch to Search
			"SearchApproximate": true,
			"SearchEpsilon":     true,
			"SearchPlan":        true, // appends into caller dst — worker-owned when dst is pooled scratch
			"SearchInto":        true, // public escape hatch: results overwritten by the next call with the same buf
			"NewStream":         true, // callback res slices are worker-owned
		},
		AuditedCallers: map[string]map[string]string{
			"cmd/sofa-query/main.go": {
				"SearchInto": "public sofa API; prints each result batch before the next call reuses buf",
				"NewStream":  "public sofa API; callback prints res inline, nothing escapes the callback",
			},
			"examples/quickstart/main.go": {
				"Search": "public sofa.Search: results are caller-owned copies",
			},
			"examples/seismic/main.go": {
				"Search1":    "scan baseline value result (index.Result), no slice to retain",
				"SearchInto": "public sofa API; buf[0].Dist scalar extracted before the next call",
			},
			"examples/vectors/main.go": {
				"Search":     "public sofa.Search: results are caller-owned copies",
				"SearchInto": "public sofa API; printed/validated inside the loop before the next call reuses buf",
			},
			"internal/bench/approx_experiment.go": {
				"Search":            "extracts r[0].Dist scalar only",
				"SearchApproximate": "extracts r[0].Dist scalar only",
				"SearchEpsilon":     "extracts r[0].Dist scalar only",
			},
			"internal/bench/bench.go": {
				"Search": "timeTreeQueries/timeScanQueries discard results (latency only)",
			},
			"internal/bench/churn_experiment.go": {
				"Search": "churnQPS discards results (throughput only)",
			},
			"internal/bench/chaos_experiment.go": {
				"SearchPlan": "dst=nil (fresh slice per query); ids are counted into coverage before the searcher's next query",
			},
			"internal/bench/qps_experiment.go": {
				"NewStream": "callback only counts completions; res never escapes",
			},
			"internal/bench/report.go": {
				"Search": "searchSteadyStateAllocs discards results (alloc count only)",
			},
			"internal/core/collection.go": {
				"Search":            "SearchBatch copies (append(nil, res...)) before the pooled searcher is reused; Search1 extracts res[0]; single-shard Search forwards the documented owned-slice contract",
				"SearchApproximate": "forwards the owned-slice contract (documented)",
				"SearchEpsilon":     "forwards the owned-slice contract (documented)",
				"SearchPlan":        "SearchBatchPlan passes dst=nil, so each query's results are freshly allocated and caller-owned",
			},
			"internal/core/core.go": {
				"NewStream": "doc example in package comment context; Index.NewStream forwards the callback-scoped contract",
			},
			"internal/core/stream.go": {
				"SearchPlan": "worker appends into its own pooled resBuf and passes it straight to the callback; contract documents callback scope",
			},
			"sofa/query.go": {
				"SearchPlan": "dst is nil (Search: fresh caller-owned slice) or the caller's own buf (SearchInto) — never searcher scratch; see TestSofaPublicOwnership",
			},
			"sofa/stream.go": {
				"NewStream": "public wrapper forwarding the documented callback-scoped contract",
			},
			"internal/index/batch.go": {
				"Search": "BatchSearchInto copies results into the caller buffer before the pooled searcher is reused",
			},
			"internal/index/search.go": {
				"Search": "Search1 extracts res[0] before returning",
			},
			"internal/scan/scan.go": {
				"Search": "Search1 extracts res[0]; scanner results are freshly collected per call",
			},
		},
	}
}
