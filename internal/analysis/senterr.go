package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// SentErrConfig parameterizes the boundary-error discipline check.
type SentErrConfig struct {
	// BoundaryPackages are the import paths whose errors cross the public
	// API: every error constructed there must stay errors.Is-testable.
	BoundaryPackages map[string]bool
	// Sentinels are the declared sentinel variable names (ErrBadK, ...) in
	// those packages. Each must actually be wrapped or returned somewhere —
	// a sentinel nothing produces is dead API surface — and every
	// fmt.Errorf must wrap one of them (or another error) with %w.
	Sentinels []string
}

// NewSentErr builds the senterr analyzer. In the boundary packages:
//
//  1. Every fmt.Errorf call must carry %w in its constant format string:
//     an Errorf without %w mints a fresh error tree that errors.Is cannot
//     match against the documented sentinels.
//  2. An error-typed argument formatted with %v or %s (instead of %w)
//     flattens the wrapped chain — callers lose errors.Is on the cause.
//  3. errors.New inside a function body (not a package-level sentinel
//     declaration) creates an undeclared, untestable error.
//  4. Every declared sentinel must still be used (wrapped/returned) in its
//     package; unused sentinels are stale API surface.
func NewSentErr(cfg SentErrConfig) *Analyzer {
	return &Analyzer{
		Name:      "senterr",
		NeedTypes: true,
		Doc: "require errors crossing the public boundary to wrap a declared sentinel with %w so " +
			"errors.Is works: no naked fmt.Errorf, no %v-flattened error causes, no function-local " +
			"errors.New, no dead sentinels",
		Run: func(pass *Pass) error {
			for _, pkg := range pass.Packages {
				if !cfg.BoundaryPackages[pkg.Path] || pkg.Info == nil {
					continue
				}
				sentinelUsed := map[string]bool{}
				for _, file := range pkg.Files {
					var funcDepth int
					var inspect func(n ast.Node) bool
					inspect = func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.FuncDecl, *ast.FuncLit:
							funcDepth++
							// Walk the body manually so we can restore depth.
							ast.Inspect(children(n), inspect)
							funcDepth--
							return false
						case *ast.Ident:
							for _, s := range cfg.Sentinels {
								if n.Name == s {
									if _, isUse := pkg.Info.Uses[n]; isUse {
										sentinelUsed[s] = true
									}
								}
							}
						case *ast.CallExpr:
							checkErrorCall(pass, pkg, n, funcDepth > 0)
						}
						return true
					}
					ast.Inspect(file, inspect)
				}
				var stale []string
				for _, s := range cfg.Sentinels {
					if !sentinelUsed[s] {
						stale = append(stale, s)
					}
				}
				sort.Strings(stale)
				for _, s := range stale {
					pass.ReportModulef("sentinel %s.%s is declared but never wrapped or returned — dead error surface; wire it up or remove it from the senterr sentinel list", pkg.Path, s)
				}
			}
			return nil
		},
	}
}

// children returns the traversable body of a func declaration or literal.
func children(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			return n.Body
		}
	case *ast.FuncLit:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// checkErrorCall applies rules 1–3 to one call expression.
func checkErrorCall(pass *Pass, pkg *Package, call *ast.CallExpr, inFunc bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch {
	case obj.Pkg().Path() == "errors" && sel.Sel.Name == "New":
		if inFunc {
			pass.ReportNodef(pkg, call, "function-local errors.New mints an undeclared error: return a declared sentinel (wrapped with fmt.Errorf and %%w) so callers can errors.Is it")
		}
	case obj.Pkg().Path() == "fmt" && sel.Sel.Name == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		format, isConst := constString(pkg.Info, call.Args[0])
		if !isConst {
			pass.ReportNodef(pkg, call, "fmt.Errorf with a non-constant format string: the %%w discipline cannot be audited; use a constant format wrapping a sentinel")
			return
		}
		verbs := formatVerbs(format)
		wCount := 0
		for _, v := range verbs {
			if v == 'w' {
				wCount++
			}
		}
		if wCount == 0 {
			pass.ReportNodef(pkg, call, "fmt.Errorf without %%w: errors crossing the sofa boundary must wrap a declared sentinel so errors.Is works")
			return
		}
		// Rule 2: error-typed arguments must use %w, not %v/%s.
		for i, v := range verbs {
			argIdx := 1 + i
			if v == 'w' || argIdx >= len(call.Args) {
				continue
			}
			if t := pkg.Info.Types[call.Args[argIdx]]; t.Type != nil && implementsError(t.Type) {
				pass.ReportNodef(pkg, call, "error value formatted with %%%c flattens its chain — use %%w (Go 1.20+ allows multiple %%w verbs) so errors.Is still sees the cause", v)
			}
		}
	}
}

// constString evaluates e as a constant string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the verb letters from a format string, in argument
// order, skipping %% and flags/width (a pragmatic parser: the boundary
// formats are simple).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] != '%' {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// DefaultSentErrConfig covers the public sofa package and its documented
// sentinels.
func DefaultSentErrConfig() SentErrConfig {
	return SentErrConfig{
		BoundaryPackages: map[string]bool{"repro/sofa": true},
		Sentinels: []string{
			"ErrEmptyData", "ErrBadSeriesLength", "ErrBadK", "ErrBadEpsilon",
			"ErrBadConfig", "ErrStreamClosed", "ErrNotFound", "ErrTombstoned",
		},
	}
}
