package analysis

// Suite returns the repo's full analyzer suite with its default
// (human-audited) configurations. tags is the build-tag configuration the
// run targets — it selects the matching escape budget, since the asm and
// noasm builds compile different kernel sources.
func Suite(tags string) []*Analyzer {
	return []*Analyzer{
		NewRetainAudit(DefaultRetainConfig()),
		NewFaultGuard(DefaultFaultGuardConfig()),
		NewImportBoundary(DefaultImportBoundaryConfig()),
		NewAtomicField(DefaultAtomicFieldConfig()),
		NewSentErr(DefaultSentErrConfig()),
		NewNoHeap(DefaultNoHeapConfig(tags)),
	}
}
