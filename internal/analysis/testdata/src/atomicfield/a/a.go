// Package a seeds atomicfield violations: a misaligned raw 64-bit atomic
// field, a mixed atomic/plain access, a declared-atomic field demoted to a
// plain integer, and clean counter-examples.
package a

import "sync/atomic"

// S holds a raw 64-bit atomic counter at offset 4 under GOARCH=386 layout —
// a runtime fault on 32-bit targets.
type S struct {
	pad int32
	n   int64
}

// T keeps its raw atomic counter first, which is 64-bit aligned as long as
// the struct itself is allocated (the sync/atomic bug-note discipline).
type T struct {
	n   int64
	pad int32
}

// W is pinned by the fixture config as DeclaredAtomic ("a.W.ctr") but
// declares a plain integer.
type W struct {
	ctr int64 // want "must be a sync/atomic wrapper type"
}

// V is pinned as DeclaredAtomic ("a.V.ctr") and complies.
type V struct {
	ctr atomic.Int64
}

func bump(s *S, t *T) {
	atomic.AddInt64(&s.n, 1) // want "64-bit atomic field S.n is at offset 4 under GOARCH=386"
	atomic.AddInt64(&t.n, 1)
}

func mixed(s *S) int64 {
	return s.n // want "plain access to S.n, a field accessed via sync/atomic elsewhere"
}

func cleanReads(t *T, v *V) int64 {
	return atomic.LoadInt64(&t.n) + v.ctr.Load()
}
