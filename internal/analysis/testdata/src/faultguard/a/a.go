// Package a seeds faultguard violations around a stand-in faultinject
// package: a clean guarded hook, a hook missing its Enabled guard (the case
// the old AST test could not express as a golden file), a non-constant
// site, and an unaudited site.
package a

import "faultguard/faultinject"

func guardedOK() {
	if faultinject.Enabled {
		faultinject.Hook(faultinject.SiteAudited)
	}
}

func guardedAnd(x bool) {
	if faultinject.Enabled && x {
		faultinject.Hook(faultinject.SiteAudited)
	}
}

func missingGuard() {
	faultinject.Hook(faultinject.SiteAudited) // want "not inside an `if faultinject.Enabled` guard"
}

func nonConstantSite(site string) {
	if faultinject.Enabled {
		faultinject.Hook(site) // want "must be a faultinject.Site\* constant"
	}
}

func unauditedSite() {
	if faultinject.Enabled {
		faultinject.Hook(faultinject.SiteRogue) // want "unaudited fault-injection hook"
	}
}
