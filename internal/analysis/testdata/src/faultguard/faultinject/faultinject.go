// Package faultinject is the fixture stand-in for the real harness: the
// analyzer is syntactic (it keys on the faultinject identifier), so only the
// names matter. Hook calls inside this package are exempt from the audit.
package faultinject

const Enabled = false

const (
	SiteAudited = "site/audited"
	SiteRogue   = "site/rogue"
)

func Hook(site string) {}

func internalUse() {
	Hook(SiteAudited)
}
