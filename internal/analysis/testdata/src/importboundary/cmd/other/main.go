// Command other is a designated query-API demo that fails to import the
// public package (module-level finding).
package main

import "fmt"

func main() {
	fmt.Println("no sofa here")
}
