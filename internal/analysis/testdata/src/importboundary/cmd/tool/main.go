// Command tool seeds an importboundary violation: a program directory
// reaching around the public API into the engine internals.
package main

import (
	"repro/internal/core" // want "program directories must use the public repro/sofa API"
	"repro/sofa"
)

func main() {
	_ = core.Plan{}
	_ = sofa.Query{}
}
