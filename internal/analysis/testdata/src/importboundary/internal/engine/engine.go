// Package engine is outside the program directories: its imports are not
// subject to the boundary.
package engine

import "fmt"

func Use() { fmt.Println("engine") }
