// Package a seeds retainaudit violations: one audited call, one unaudited
// call, and (via the test's config) one stale allowlist entry.
package a

type searcher struct{}

func (searcher) Search(q []float64) []int    { return nil }
func (searcher) SearchPlan(dst []int) []int  { return dst }
func (searcher) NewStream(f func(res []int)) {}

func audited() {
	var s searcher
	_ = s.Search(nil) // allowlisted by the fixture config
}

func unaudited() {
	var s searcher
	s.NewStream(func(res []int) {}) // want "unaudited caller of NewStream"
}
