// Package a seeds senterr violations at a stand-in public boundary: a naked
// fmt.Errorf, a %v-flattened error cause, a function-local errors.New, and
// (via the fixture config) a dead sentinel.
package a

import (
	"errors"
	"fmt"
)

var (
	ErrA    = errors.New("a: bad input")
	ErrDead = errors.New("a: never produced")
)

func wrapped(n int) error {
	return fmt.Errorf("%w: got %d", ErrA, n)
}

func doubleWrapped(err error) error {
	return fmt.Errorf("%w: %w", ErrA, err)
}

func naked(n int) error {
	return fmt.Errorf("boom %d", n) // want "fmt.Errorf without %w"
}

func flattened(err error) error {
	return fmt.Errorf("%w: %v", ErrA, err) // want "error value formatted with %v flattens its chain"
}

func local() error {
	return errors.New("a: undeclared") // want "function-local errors.New mints an undeclared error"
}
