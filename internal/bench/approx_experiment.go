package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// RunApprox is an extension experiment beyond the paper's evaluation: the
// paper's conclusion names approximate SFA search as future work
// (Section VI). This experiment measures the quality/time trade-off of the
// two approximate modes implemented here against exact search:
//
//   - "approx" — probe only the best-matching leaf (iSAX-family heuristic);
//   - ε-search — exact machinery, pruning against bound/(1+ε)², with the
//     guarantee dist ≤ (1+ε)·exact.
//
// Reported per mode: mean query time, recall@1 (how often the true 1-NN is
// returned) and mean distance error vs exact.
func RunApprox(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	cores := c.CoreCounts[len(c.CoreCounts)-1]
	type mode struct {
		name string
		run  func(s *core.Searcher, q []float64) (float64, error)
	}
	modes := []mode{
		{"exact", func(s *core.Searcher, q []float64) (float64, error) {
			r, err := s.Search(q, 1)
			if err != nil {
				return 0, err
			}
			return r[0].Dist, nil
		}},
		{"eps=0.1", epsMode(0.1)},
		{"eps=0.5", epsMode(0.5)},
		{"eps=1.0", epsMode(1.0)},
		{"approx-leaf", func(s *core.Searcher, q []float64) (float64, error) {
			r, err := s.SearchApproximate(q, 1)
			if err != nil {
				return 0, err
			}
			return r[0].Dist, nil
		}},
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "mode\tmean ms\trecall@1\tmean dist error")
	results := make(map[string][]float64) // mode -> per-query times
	distsByMode := make(map[string][]float64)
	var exactDists []float64
	for _, spec := range c.Datasets {
		b, err := c.loadBundle(spec)
		if err != nil {
			return err
		}
		ix, err := c.buildTree(b, core.SOFA, cores)
		if err != nil {
			return err
		}
		s := ix.NewSearcher()
		for qi := 0; qi < b.Queries.Len(); qi++ {
			q := b.Queries.Row(qi)
			for _, m := range modes {
				start := time.Now()
				d, err := m.run(s, q)
				if err != nil {
					return err
				}
				results[m.name] = append(results[m.name], time.Since(start).Seconds())
				distsByMode[m.name] = append(distsByMode[m.name], d)
				if m.name == "exact" {
					exactDists = append(exactDists, d)
				}
			}
		}
	}
	for _, m := range modes {
		times := results[m.name]
		dists := distsByMode[m.name]
		var hits int
		var errSum float64
		for i := range dists {
			exact := exactDists[i]
			if math.Abs(dists[i]-exact) <= 1e-9*(exact+1) {
				hits++
			}
			if exact > 0 {
				errSum += math.Sqrt(dists[i])/math.Sqrt(exact) - 1
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.3f\n",
			m.name, ms(stats.Mean(times)),
			float64(hits)/float64(len(dists)), errSum/float64(len(dists)))
	}
	return tw.Flush()
}

func epsMode(eps float64) func(s *core.Searcher, q []float64) (float64, error) {
	return func(s *core.Searcher, q []float64) (float64, error) {
		r, err := s.SearchEpsilon(q, 1, eps)
		if err != nil {
			return 0, err
		}
		return r[0].Dist, nil
	}
}
