// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section V) over the synthetic benchmark
// of internal/dataset. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records how the measured shapes compare.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/flat"
	"repro/internal/scan"
	"repro/internal/sfa"
	"repro/internal/stats"
)

// SuiteConfig controls the scale of the experiment suite.
type SuiteConfig struct {
	// Datasets is the benchmark catalog; nil selects dataset.Catalog().
	Datasets []dataset.Spec
	// Queries per dataset (paper: 100; default 20 to keep the laptop suite
	// fast — raise it for tighter medians).
	Queries int
	// Scale multiplies every dataset's series count (default 1.0); use
	// <1 for smoke runs.
	Scale float64
	// CoreCounts is the worker sweep (paper: 9/18/36). Default: quarter,
	// half and full GOMAXPROCS.
	CoreCounts []int
	// LeafCapacity for tree indexes (default 256, scaled to the reduced
	// dataset sizes; the paper's 20k targets 100M-series datasets).
	LeafCapacity int
	// Seed drives all generators.
	Seed int64
	// Shards is the shard count the sharded-throughput experiment (qps)
	// compares against the single tree (default 4).
	Shards int
	// JSONPath, when set, makes the "report" experiment write its
	// machine-readable performance snapshot (PerfReport) to this file.
	JSONPath string
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.Datasets == nil {
		c.Datasets = dataset.Catalog()
	}
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if len(c.CoreCounts) == 0 {
		p := runtime.GOMAXPROCS(0)
		quarter := p / 4
		if quarter < 1 {
			quarter = 1
		}
		half := p / 2
		if half <= quarter {
			half = quarter + 1
		}
		if p <= half {
			p = half + 1
		}
		c.CoreCounts = []int{quarter, half, p}
	}
	if c.LeafCapacity == 0 {
		c.LeafCapacity = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	return c
}

// snapshotData generates the benchmark snapshot dataset — the catalog's
// first entry at the configured scale — shared by the qps and load
// experiments and generated once per perf report. c must already be
// defaulted (withDefaults).
func snapshotData(c SuiteConfig) (dataset.Spec, *distance.Matrix, error) {
	scaled := c.Datasets[0]
	scaled.Count = int(float64(scaled.Count) * c.Scale)
	if scaled.Count < 200 {
		scaled.Count = 200
	}
	data, err := dataset.Generate(scaled, c.Seed)
	if err != nil {
		return scaled, nil, fmt.Errorf("generating %s: %w", scaled.Name, err)
	}
	return scaled, data, nil
}

// Quick returns a reduced configuration for smoke tests and testing.B
// benchmarks: 5 representative datasets at 1/4 scale, 8 queries.
func Quick() SuiteConfig {
	var specs []dataset.Spec
	for _, name := range []string{"LenDB", "SCEDC", "SIFT1b", "Astro", "SALD"} {
		s, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		specs = append(specs, s)
	}
	return SuiteConfig{Datasets: specs, Queries: 8, Scale: 0.25}.withDefaults()
}

// Bundle is one generated dataset plus its query set.
type Bundle struct {
	Spec    dataset.Spec
	Data    *distance.Matrix
	Queries *distance.Matrix
}

// loadBundle generates one dataset and its queries at the configured scale.
func (c SuiteConfig) loadBundle(spec dataset.Spec) (*Bundle, error) {
	scaled := spec
	scaled.Count = int(float64(spec.Count) * c.Scale)
	if scaled.Count < 200 {
		scaled.Count = 200
	}
	data, err := dataset.Generate(scaled, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("generating %s: %w", spec.Name, err)
	}
	queries, err := dataset.GenerateQueries(scaled, c.Queries, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("generating %s queries: %w", spec.Name, err)
	}
	return &Bundle{Spec: scaled, Data: data, Queries: queries}, nil
}

// buildTree builds a SOFA or MESSI index with suite defaults.
func (c SuiteConfig) buildTree(b *Bundle, method core.Method, workers int) (*core.Index, error) {
	return core.Build(b.Data, core.Config{
		Method:       method,
		LeafCapacity: c.LeafCapacity,
		Workers:      workers,
		SampleRate:   0.01,
		Seed:         c.Seed,
	})
}

// timeTreeQueries runs every query sequentially (the paper's exploratory
// protocol) and returns per-query seconds.
func timeTreeQueries(ix *core.Index, queries *distance.Matrix, k int) ([]float64, error) {
	s := ix.NewSearcher()
	out := make([]float64, queries.Len())
	for i := 0; i < queries.Len(); i++ {
		start := time.Now()
		if _, err := s.Search(queries.Row(i), k); err != nil {
			return nil, err
		}
		out[i] = time.Since(start).Seconds()
	}
	return out, nil
}

// timeScanQueries times the UCR Suite-P baseline.
func timeScanQueries(sc *scan.Scanner, queries *distance.Matrix, k int) ([]float64, error) {
	out := make([]float64, queries.Len())
	for i := 0; i < queries.Len(); i++ {
		start := time.Now()
		if _, err := sc.Search(queries.Row(i), k); err != nil {
			return nil, err
		}
		out[i] = time.Since(start).Seconds()
	}
	return out, nil
}

// timeFlatQueries times the FAISS-like baseline under its mini-batch
// protocol: the whole batch is timed and the per-query cost is amortized.
func timeFlatQueries(ix *flat.Index, queries *distance.Matrix, k int) ([]float64, error) {
	start := time.Now()
	if _, err := ix.SearchBatch(queries, k); err != nil {
		return nil, err
	}
	per := time.Since(start).Seconds() / float64(queries.Len())
	out := make([]float64, queries.Len())
	for i := range out {
		out[i] = per
	}
	return out, nil
}

// ms formats seconds as milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.1f", sec*1000) }

// newTable returns a tabwriter over w.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// meanMedian returns mean and median of samples.
func meanMedian(samples []float64) (mean, median float64) {
	return stats.Mean(samples), stats.Median(samples)
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg SuiteConfig, w io.Writer) error
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Fig 1: PAA vs FFT approximation quality and value distributions", RunFig1},
		{"fig2", "Fig 2/3: SAX vs SFA words and summarization walkthrough", RunFig2},
		{"fig7", "Fig 7: index creation time by method and cores", RunFig7},
		{"fig8", "Fig 8: index structure (depth, leaf size, subtrees)", RunFig8},
		{"table2", "Table II: 1-NN query times (mean/median) by method and cores", RunTable2},
		{"table3", "Table III / Fig 9: k-NN query times", RunTable3},
		{"fig10", "Fig 10: query time distribution by cores", RunFig10},
		{"fig11", "Fig 11: query time by leaf size", RunFig11},
		{"fig12", "Fig 12: relative query time SOFA vs MESSI per dataset", RunFig12},
		{"table4", "Table IV: effect of MCB sampling rate", RunTable4},
		{"fig13", "Fig 13: selected coefficient index vs speedup", RunFig13},
		{"table5", "Table V / Fig 14 left: TLB on UCR-like datasets", RunTable5},
		{"table6", "Table VI / Fig 14 right: TLB on the 17 SOFA datasets", RunTable6},
		{"fig15", "Fig 15: critical-difference ranks (Wilcoxon-Holm)", RunFig15},
		{"approx", "Extension: approximate and \u03b5-bounded search trade-offs (paper Sec VI future work)", RunApprox},
		{"qps", "Extension: sharded and streaming batched-query throughput", RunQPS},
		{"qblock", "Extension: block-vs-per-series refinement kernel A/B by workload and k", RunQBlock},
		{"load", "Extension: index load time by container version (v2 rebuild vs v3 decode)", RunLoad},
		{"chaos", "Extension: degraded-mode throughput, top-k coverage and ε certificates with one shard quarantined", RunChaos},
		{"wal", "Extension: durable insert throughput by WAL sync policy", RunWAL},
		{"churn", "Extension: search throughput under tombstone load, compaction pauses, SFA re-learns", RunChurn},
		{"report", "Extension: kernel + end-to-end perf snapshot (JSON via -json)", RunReport},
	}
}

// RunByID runs one experiment by its ID.
func RunByID(id string, cfg SuiteConfig, w io.Writer) error {
	for _, e := range Experiments() {
		if e.ID == id {
			fmt.Fprintf(w, "== %s ==\n", e.Title)
			return e.Run(cfg, w)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (known: %s)", id, knownIDs())
}

// RunAll runs the full suite in paper order.
func RunAll(cfg SuiteConfig, w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "\n== %s ==\n", e.Title)
		start := time.Now()
		if err := e.Run(cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "[%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}

func knownIDs() string {
	ids := make([]string, 0, len(Experiments()))
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ", "
		}
		out += id
	}
	return out
}

// sfaTLBConfig enumerates the five methods of the TLB ablation.
type tlbMethod struct {
	Name      string
	IsSAX     bool
	Binning   sfa.Binning
	Selection sfa.Selection
}

func tlbMethods() []tlbMethod {
	return []tlbMethod{
		{Name: "SFA ED +VAR", Binning: sfa.EquiDepth, Selection: sfa.HighestVariance},
		{Name: "SFA EW +VAR", Binning: sfa.EquiWidth, Selection: sfa.HighestVariance},
		{Name: "SFA ED", Binning: sfa.EquiDepth, Selection: sfa.FirstCoefficients},
		{Name: "SFA EW", Binning: sfa.EquiWidth, Selection: sfa.FirstCoefficients},
		{Name: "iSAX", IsSAX: true},
	}
}
