package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/fft"
	"repro/internal/stats"
)

// tiny returns a minimal configuration that exercises every code path in
// seconds, not minutes.
func tiny() SuiteConfig {
	var specs []dataset.Spec
	for _, name := range []string{"LenDB", "SALD"} {
		s, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		s.Count = 400
		specs = append(specs, s)
	}
	return SuiteConfig{
		Datasets:     specs,
		Queries:      4,
		Scale:        1, // counts already shrunk above
		CoreCounts:   []int{1, 2},
		LeafCapacity: 64,
		Seed:         3,
	}
}

func TestWithDefaults(t *testing.T) {
	c := SuiteConfig{}.withDefaults()
	if len(c.Datasets) != 17 {
		t.Errorf("default datasets: %d", len(c.Datasets))
	}
	if c.Queries != 20 || c.Scale != 1 || c.LeafCapacity != 256 || c.Seed != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.CoreCounts) != 3 {
		t.Errorf("core counts: %v", c.CoreCounts)
	}
	for i := 1; i < len(c.CoreCounts); i++ {
		if c.CoreCounts[i] <= c.CoreCounts[i-1] {
			t.Errorf("core counts not increasing: %v", c.CoreCounts)
		}
	}
}

func TestQuickConfig(t *testing.T) {
	c := Quick()
	if len(c.Datasets) != 5 || c.Scale != 0.25 {
		t.Errorf("quick config: %+v", c)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 22 {
		t.Fatalf("%d experiments, want 22", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	var buf bytes.Buffer
	if err := RunByID("definitely-not-an-experiment", tiny(), &buf); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func TestRunQPS(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Shards = 2
	if err := RunQPS(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SOFA stream") || !strings.Contains(out, "flat batch") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunLoad(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Shards = 2
	if err := RunLoad(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"v2", "v3", "re-splits", "v3 vs v2"} {
		if !strings.Contains(out, want) {
			t.Errorf("load output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWAL(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Shards = 2
	if err := RunWAL(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sync policy", "none", "interval", "always", "replay ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("wal output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChaos(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Shards = 2
	if err := RunChaos(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"degraded (AllowPartial)", "top-k coverage", "ε certificates"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChurn(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Shards = 2
	if err := RunChurn(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"baseline", "churn 30%", "compacted", "compaction pauses", "re-learns"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReport(t *testing.T) {
	// Shrink testing.Benchmark's target time so the ten kernel
	// microbenchmarks don't dominate the test suite; restore whatever the
	// invocation had (a user's -benchtime must survive into the package's
	// real benchmarks).
	prev := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "5ms"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", prev)
	cfg := tiny()
	cfg.Shards = 2
	cfg.JSONPath = filepath.Join(t.TempDir(), "perf.json")
	var buf bytes.Buffer
	if err := RunReport(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ed_ea_", "lbd_gather_emulated", "table_lookup_seq", "SOFA stream"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(cfg.JSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep PerfReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if rep.PR != 10 || len(rep.Kernels) == 0 || len(rep.EndToEnd) == 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	if len(rep.KernelAB) != 4 {
		t.Errorf("kernel A/B rows: %+v", rep.KernelAB)
	}
	for _, r := range rep.KernelAB {
		if r.BlockQPS <= 0 || r.PerSeriesQPS <= 0 || r.Speedup <= 0 {
			t.Errorf("degenerate kernel A/B row: %+v", r)
		}
	}
	if rep.SIMDBlock != "avx512" && rep.SIMDBlock != "avx2" && rep.SIMDBlock != "portable" {
		t.Errorf("bad simd_block field %q", rep.SIMDBlock)
	}
	if rep.Chaos == nil || rep.Chaos.Queries == 0 || rep.Chaos.HealthyQPS <= 0 || rep.Chaos.DegradedQPS <= 0 {
		t.Errorf("report chaos section incomplete: %+v", rep.Chaos)
	} else if got := rep.Chaos.EpsilonZero + rep.Chaos.EpsilonFinite + rep.Chaos.EpsilonInf; got != rep.Chaos.Queries {
		t.Errorf("chaos ε counts sum to %d, want %d", got, rep.Chaos.Queries)
	}
	if len(rep.Load) != 2 || rep.Load[0].Version != 2 || rep.Load[1].Version != 3 {
		t.Fatalf("report load rows incomplete: %+v", rep.Load)
	}
	if rep.Load[1].Splits != 0 {
		t.Errorf("v3 load re-split %d leaves, want 0", rep.Load[1].Splits)
	}
	if len(rep.WAL) != 3 {
		t.Fatalf("report wal rows incomplete: %+v", rep.WAL)
	}
	for i, want := range []string{"none", "interval", "always"} {
		r := rep.WAL[i]
		if r.Policy != want || r.InsertsPerSec <= 0 || r.WALBytes <= 0 || r.ReplaySeconds <= 0 {
			t.Errorf("degenerate wal row: %+v (want policy %q)", r, want)
		}
	}
	if rep.SIMD != "avx2" && rep.SIMD != "portable" {
		t.Errorf("bad simd field %q", rep.SIMD)
	}
	for _, k := range rep.Kernels {
		if k.NsPerOp <= 0 {
			t.Errorf("kernel %s has non-positive ns/op %v", k.Name, k.NsPerOp)
		}
	}
	if !raceEnabled && rep.SearchSteadyStateAllocs != 0 {
		t.Errorf("steady-state Search allocates %v allocs/op, want 0", rep.SearchSteadyStateAllocs)
	}
	if rep.Churn == nil || len(rep.Churn.Rows) != 4 {
		t.Fatalf("report churn section incomplete: %+v", rep.Churn)
	}
	for i, want := range []string{"baseline", "churn 10%", "churn 30%", "compacted"} {
		r := rep.Churn.Rows[i]
		if r.Phase != want || r.QPS <= 0 || r.Live <= 0 {
			t.Errorf("degenerate churn row: %+v (want phase %q)", r, want)
		}
	}
	if last := rep.Churn.Rows[3]; last.Tombstoned != 0 {
		t.Errorf("compacted churn row still carries %d tombstones", last.Tombstoned)
	}
	if rep.Churn.Compactions < int64(rep.Churn.Shards) || rep.Churn.CompactMaxMs <= 0 {
		t.Errorf("churn compaction accounting: %+v", rep.Churn)
	}
}

func TestRunFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig1(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LenDB") || !strings.Contains(out, "PAA MSE") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunFig2(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig2(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SAX word") || !strings.Contains(out, "SFA word") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunFig7AndFig8(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig7(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SOFA") {
		t.Errorf("fig7 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := RunFig8(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "avg depth") {
		t.Errorf("fig8 output:\n%s", buf.String())
	}
}

func TestRunTable2AndFig10(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable2(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range table2Methods {
		if !strings.Contains(out, m) {
			t.Errorf("table2 missing method %q:\n%s", m, out)
		}
	}
	buf.Reset()
	if err := RunFig10(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "median ms") {
		t.Errorf("fig10 output:\n%s", buf.String())
	}
}

func TestRunTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable3(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "50-NN") {
		t.Errorf("table3 output:\n%s", out)
	}
	// UCR suite must have a dash for k>1.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "UCR") && !strings.Contains(line, "-") {
			t.Errorf("UCR row should skip k>1: %q", line)
		}
	}
}

func TestRunFig11(t *testing.T) {
	cfg := tiny()
	var buf bytes.Buffer
	if err := RunFig11(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, v := range []string{"MESSI", "SOFA + ED", "SOFA + EW"} {
		if !strings.Contains(out, v) {
			t.Errorf("fig11 missing %q:\n%s", v, out)
		}
	}
}

func TestRunFig12AndFig13(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig12(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%") {
		t.Errorf("fig12 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := RunFig13(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pearson") {
		t.Errorf("fig13 output:\n%s", buf.String())
	}
}

func TestRunTable4(t *testing.T) {
	cfg := tiny()
	var buf bytes.Buffer
	if err := RunTable4(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sampling") {
		t.Errorf("table4 output:\n%s", buf.String())
	}
}

func TestTLBForMethodProperties(t *testing.T) {
	// TLB must lie in [0, 1] (it is a ratio of a lower bound to the true
	// distance) and EW+VAR should beat iSAX on a high-frequency dataset.
	spec, _ := dataset.ByName("LenDB")
	spec.Count = 150
	train, err := dataset.Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.GenerateQueries(spec, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sfaEWVar, isax float64
	for _, m := range tlbMethods() {
		v, err := tlbForMethod(m, 8, train, test)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
			t.Errorf("%s: TLB %v out of [0,1]", m.Name, v)
		}
		switch m.Name {
		case "SFA EW +VAR":
			sfaEWVar = v
		case "iSAX":
			isax = v
		}
	}
	if sfaEWVar <= isax {
		t.Errorf("on high-frequency data SFA EW+VAR TLB (%v) should beat iSAX (%v)", sfaEWVar, isax)
	}
}

func TestRunTable5SmallSweep(t *testing.T) {
	// A reduced UCR sweep through the real entry point would be slow; test
	// the shared table runner over two synthetic splits directly.
	spec := dataset.UCRCatalog()[0]
	spec.TrainSize, spec.TestSize = 60, 10
	train, test, err := dataset.GenerateUCR(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	splits := []tlbSplit{{spec.Name, train, test}, {"again", train, test}}
	var buf bytes.Buffer
	if err := runTLBTable(splits, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range tlbMethods() {
		if !strings.Contains(out, m.Name) {
			t.Errorf("missing method %q:\n%s", m.Name, out)
		}
	}
	if !strings.Contains(out, "a=256") {
		t.Errorf("missing alphabet column:\n%s", out)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{4: 2, 8: 3, 16: 4, 32: 5, 64: 6, 128: 7, 256: 8}
	for alpha, want := range cases {
		if got := bitsFor(alpha); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", alpha, got, want)
		}
	}
}

func TestFig15Ranks(t *testing.T) {
	// Run fig15's core path over a tiny synthetic benchmark by checking
	// tlbSweep + MeanRanks wiring end to end via the public entry point on
	// reduced splits is covered above; here verify the rank direction: the
	// method with the highest TLB gets the lowest (best) mean rank.
	scores := [][]float64{
		{0.5, 0.9, 0.3, 0.8, 0.2},
		{0.55, 0.92, 0.31, 0.81, 0.25},
	}
	ranks, err := statsMeanRanksHigherBetter(scores)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range ranks {
		if ranks[i] < ranks[best] {
			best = i
		}
	}
	if best != 1 {
		t.Errorf("method 1 has highest TLB but rank winner is %d (%v)", best, ranks)
	}
}

func TestFFTReconstructionBeatsPAAOnHighFreq(t *testing.T) {
	// The Fig. 1 claim in miniature: on a pure high-frequency signal the
	// PAA reconstruction error dwarfs the FFT one.
	rng := rand.New(rand.NewSource(9))
	n := 128
	row := make([]float64, n)
	for j := range row {
		row[j] = math.Sin(2*math.Pi*40*float64(j)/float64(n)) + 0.05*rng.NormFloat64()
	}
	distance.ZNormalize(row)
	paaErr := paaReconstructionMSE(row, 8)
	plan := mustPlan(t, n)
	fftErr, err := fftReconstructionMSE(plan, row, 8)
	if err != nil {
		t.Fatal(err)
	}
	if paaErr < 5*fftErr {
		t.Errorf("PAA MSE %v should dwarf FFT MSE %v on high-frequency data", paaErr, fftErr)
	}
}

// test helpers

func mustPlan(t *testing.T, n int) *fft.Plan {
	t.Helper()
	p, err := fft.NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func statsMeanRanksHigherBetter(scores [][]float64) ([]float64, error) {
	return stats.MeanRanks(scores, false)
}
