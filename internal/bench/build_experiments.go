package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/stats"
)

// RunFig7 reproduces Fig. 7: mean index-creation time for FAISS, MESSI and
// SOFA across the core sweep, with SOFA's phase breakdown (bin learning /
// transformation / tree construction).
func RunFig7(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	tw := newTable(w)
	fmt.Fprintln(tw, "cores\tmethod\tmean total s\tlearn s\ttransform s\ttree s")
	for _, cores := range c.CoreCounts {
		var faiss, messiTotal, sofaTotal []float64
		var sofaLearn, sofaTransform, sofaTree []float64
		var messiTransform, messiTree []float64
		for _, spec := range c.Datasets {
			b, err := c.loadBundle(spec)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := flat.Build(b.Data, cores); err != nil {
				return err
			}
			faiss = append(faiss, time.Since(start).Seconds())

			mi, err := c.buildTree(b, core.MESSI, cores)
			if err != nil {
				return err
			}
			messiTotal = append(messiTotal, mi.BuildSeconds())
			messiTransform = append(messiTransform, mi.TransformSeconds)
			messiTree = append(messiTree, mi.TreeSeconds)

			si, err := c.buildTree(b, core.SOFA, cores)
			if err != nil {
				return err
			}
			sofaTotal = append(sofaTotal, si.BuildSeconds())
			sofaLearn = append(sofaLearn, si.LearnSeconds)
			sofaTransform = append(sofaTransform, si.TransformSeconds)
			sofaTree = append(sofaTree, si.TreeSeconds)
		}
		fmt.Fprintf(tw, "%d\tFAISS\t%.3f\t-\t-\t-\n", cores, stats.Mean(faiss))
		fmt.Fprintf(tw, "%d\tMESSI\t%.3f\t-\t%.3f\t%.3f\n",
			cores, stats.Mean(messiTotal), stats.Mean(messiTransform), stats.Mean(messiTree))
		fmt.Fprintf(tw, "%d\tSOFA\t%.3f\t%.3f\t%.3f\t%.3f\n",
			cores, stats.Mean(sofaTotal), stats.Mean(sofaLearn), stats.Mean(sofaTransform), stats.Mean(sofaTree))
	}
	return tw.Flush()
}

// RunFig8 reproduces Fig. 8: average tree depth, average leaf size, and
// number of root subtrees for MESSI vs SOFA across the core sweep.
func RunFig8(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	tw := newTable(w)
	fmt.Fprintln(tw, "cores\tmethod\tavg depth\tavg leaf size\tsubtrees\tleaves")
	for _, cores := range c.CoreCounts {
		for _, method := range []core.Method{core.MESSI, core.SOFA} {
			var depth, leafSize, subtrees, leaves []float64
			for _, spec := range c.Datasets {
				b, err := c.loadBundle(spec)
				if err != nil {
					return err
				}
				ix, err := c.buildTree(b, method, cores)
				if err != nil {
					return err
				}
				st := ix.Stats()
				depth = append(depth, st.AvgDepth)
				leafSize = append(leafSize, st.AvgLeafSize)
				subtrees = append(subtrees, float64(st.Subtrees))
				leaves = append(leaves, float64(st.Leaves))
			}
			fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.0f\t%.0f\t%.0f\n",
				cores, method, stats.Mean(depth), stats.Mean(leafSize),
				stats.Mean(subtrees), stats.Mean(leaves))
		}
	}
	return tw.Flush()
}
