package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/index"
)

// ChaosReport quantifies degraded-mode operation: the same snapshot index
// answering the same query set healthy and with one shard quarantined
// (the operational stand-in for a shard lost to repeated faults — the
// fault-injection harness itself is a build-tag-gated test facility and
// never ships in this binary). Degraded queries run under AllowPartial, so
// the interesting columns are what that costs: throughput of the surviving
// shards, how much of the true top-k the partial answers retain, and the
// distribution of the live ε certificates they come with.
type ChaosReport struct {
	Shards           int `json:"shards"`
	QuarantinedShard int `json:"quarantined_shard"`
	Queries          int `json:"queries"`
	K                int `json:"k"`

	// Sustained batch throughput, healthy vs one shard down (AllowPartial).
	HealthyQPS  float64 `json:"healthy_qps"`
	DegradedQPS float64 `json:"degraded_qps"`

	// Coverage is the fraction of the healthy top-k ids each partial answer
	// retains (1.0 = the lost shard held none of this query's neighbors).
	CoverageMean float64 `json:"coverage_mean"`
	CoverageMin  float64 `json:"coverage_min"`

	// The ε certificate distribution across the degraded queries: exact
	// (ε = 0: the lost shard provably held no closer neighbor), finitely
	// bounded, and unbounded (ε = +Inf: the lost shard's root bound cannot
	// exclude a better neighbor). Mean/max cover the finite non-zero tail.
	EpsilonZero       int     `json:"epsilon_zero"`
	EpsilonFinite     int     `json:"epsilon_finite"`
	EpsilonInf        int     `json:"epsilon_inf"`
	EpsilonMeanFinite float64 `json:"epsilon_mean_finite"`
	EpsilonMaxFinite  float64 `json:"epsilon_max_finite"`
}

// RunChaos measures the degraded-mode extension: quarantine one shard of
// the snapshot index and compare AllowPartial operation against healthy
// operation on identical queries.
func RunChaos(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	_, data, err := snapshotData(c)
	if err != nil {
		return err
	}
	rep, err := chaosReport(c, data)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintf(tw, "shards\t%d\tquarantined\tshard %d\tqueries\t%d\tk\t%d\n",
		rep.Shards, rep.QuarantinedShard, rep.Queries, rep.K)
	fmt.Fprintf(tw, "batch queries/s\thealthy\t%.0f\tdegraded (AllowPartial)\t%.0f\t(%.2fx)\n",
		rep.HealthyQPS, rep.DegradedQPS, rep.DegradedQPS/math.Max(rep.HealthyQPS, 1e-9))
	fmt.Fprintf(tw, "top-k coverage\tmean\t%.3f\tmin\t%.3f\n", rep.CoverageMean, rep.CoverageMin)
	fmt.Fprintf(tw, "ε certificates\texact (ε=0)\t%d\tfinite\t%d\tunbounded (+Inf)\t%d\n",
		rep.EpsilonZero, rep.EpsilonFinite, rep.EpsilonInf)
	if rep.EpsilonFinite > 0 {
		fmt.Fprintf(tw, "finite ε\tmean\t%.4f\tmax\t%.4f\n", rep.EpsilonMeanFinite, rep.EpsilonMaxFinite)
	}
	return tw.Flush()
}

// chaosReport runs the measurement over pre-generated snapshot data; c must
// already be defaulted. Shared by RunChaos and the perf report.
func chaosReport(c SuiteConfig, data *distance.Matrix) (*ChaosReport, error) {
	cores := c.CoreCounts[len(c.CoreCounts)-1]
	const k = 10
	shards := c.Shards
	if shards < 2 {
		// Degraded mode needs survivors; a single-shard index has none.
		shards = 4
	}
	spec := c.Datasets[0]
	spec.Count = data.Len()
	nq := 4 * cores
	if nq < 16 {
		nq = 16
	}
	queries, err := dataset.GenerateQueries(spec, nq, c.Seed)
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(data, core.Config{
		Method:       core.SOFA,
		LeafCapacity: c.LeafCapacity,
		Workers:      cores,
		Shards:       shards,
		SampleRate:   0.01,
		Seed:         c.Seed,
	})
	if err != nil {
		return nil, err
	}
	const reps = 3
	rep := &ChaosReport{Shards: shards, Queries: queries.Len(), K: k}

	// Healthy baseline: batch throughput plus each query's true top-k ids
	// (SearchBatch results are caller-owned copies).
	healthy, err := ix.SearchBatch(queries, k, cores)
	if err != nil {
		return nil, err
	}
	rep.HealthyQPS, err = timeBatchQPS(ix, queries, k, cores, reps)
	if err != nil {
		return nil, err
	}

	// Lose one shard. Shard 0 always exists; which shard goes down does not
	// change what the experiment measures.
	col := ix.Collection()
	if err := col.Quarantine(0); err != nil {
		return nil, err
	}

	pqs := make([]core.PlanQuery, queries.Len())
	for i := range pqs {
		pqs[i] = core.PlanQuery{Series: queries.Row(i), Plan: core.Plan{K: k, AllowPartial: true}}
	}
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := col.SearchBatchPlan(context.Background(), pqs, cores); err != nil {
			return nil, err
		}
	}
	rep.DegradedQPS = float64(reps*queries.Len()) / time.Since(start).Seconds()

	// Per-query certificates and coverage need the searcher's query meta,
	// so this pass runs serially on one searcher.
	s := col.NewSearcher()
	var covSum float64
	rep.CoverageMin = 1
	var epsSum float64
	for i := 0; i < queries.Len(); i++ {
		res, err := s.SearchPlan(context.Background(), queries.Row(i), core.Plan{K: k, AllowPartial: true}, nil)
		if err != nil {
			return nil, fmt.Errorf("degraded query %d: %w", i, err)
		}
		truth := map[index.ID]bool{}
		for _, r := range healthy[i] {
			truth[r.ID] = true
		}
		kept := 0
		for _, r := range res {
			if truth[r.ID] {
				kept++
			}
		}
		cov := float64(kept) / float64(len(healthy[i]))
		covSum += cov
		rep.CoverageMin = math.Min(rep.CoverageMin, cov)
		switch eps := s.LastMeta().EpsilonBound; {
		case eps == 0:
			rep.EpsilonZero++
		case math.IsInf(eps, 1):
			rep.EpsilonInf++
		default:
			rep.EpsilonFinite++
			epsSum += eps
			rep.EpsilonMaxFinite = math.Max(rep.EpsilonMaxFinite, eps)
		}
	}
	rep.CoverageMean = covSum / float64(queries.Len())
	if rep.EpsilonFinite > 0 {
		rep.EpsilonMeanFinite = epsSum / float64(rep.EpsilonFinite)
	}
	return rep, nil
}
