package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/index"
)

// ChurnRow is one phase of the mutation experiment: sustained exact-search
// throughput at a given tombstone load. The tombstoned rows still sit in the
// leaves (refinement skips them in the fused survivor pass), so comparing the
// churned rows against the baseline prices the tombstone checks, and the
// compacted row shows how much of the baseline a rebuild buys back.
type ChurnRow struct {
	Phase          string  `json:"phase"`
	Live           int     `json:"live"`
	Tombstoned     int     `json:"tombstoned"`
	QPS            float64 `json:"qps"`
	MicrosPerQuery float64 `json:"micros_per_query"`
}

// ChurnReport is the mutation/compaction experiment's machine-readable
// result: QPS under deletion load, the per-shard compaction pause
// distribution, and the SFA re-learn triggers the churn caused.
type ChurnReport struct {
	Series  int `json:"series"`
	Length  int `json:"length"`
	Shards  int `json:"shards"`
	Queries int `json:"queries"`
	K       int `json:"k"`

	Rows []ChurnRow `json:"rows"`

	// Per-shard compaction pause distribution (wall seconds per CompactShard
	// call; queries never block on the rebuild — the pause bounds writer
	// stalls, not reader stalls).
	CompactPausesMs []float64 `json:"compact_pauses_ms"`
	CompactMeanMs   float64   `json:"compact_mean_ms"`
	CompactMaxMs    float64   `json:"compact_max_ms"`

	// Lifetime compactions and churn-triggered SFA re-learns across the run
	// (RelearnChurnFraction is set low enough that the deletion load trips
	// it, so re-learn cost is included in the pause distribution).
	Compactions int64 `json:"compactions"`
	Relearns    int64 `json:"relearns"`
}

// RunChurn measures the mutable-index surface: exact-search throughput at
// increasing tombstone fractions (deletes plus upserts against the snapshot
// index), the per-shard compaction pause distribution, and the number of
// churn-triggered SFA re-learns.
func RunChurn(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	spec, data, err := snapshotData(c)
	if err != nil {
		return err
	}
	rep, err := churnReport(c, spec, data)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintf(tw, "dataset\t%s\tseries\t%d\tlength\t%d\tshards\t%d\tk\t%d\n",
		spec.Name, rep.Series, rep.Length, rep.Shards, rep.K)
	fmt.Fprintln(tw, "phase\tlive\ttombstoned\tqueries/s\tµs/query")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.1f\n",
			r.Phase, r.Live, r.Tombstoned, r.QPS, r.MicrosPerQuery)
	}
	fmt.Fprintf(tw, "compaction pauses (ms/shard)\tmean %.1f\tmax %.1f\t%v\n",
		rep.CompactMeanMs, rep.CompactMaxMs, fmtPauses(rep.CompactPausesMs))
	fmt.Fprintf(tw, "compactions\t%d\tre-learns\t%d\n", rep.Compactions, rep.Relearns)
	return tw.Flush()
}

func fmtPauses(ms []float64) string {
	out := "["
	for i, v := range ms {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", v)
	}
	return out + "]"
}

// churnReport builds the snapshot index with a churn-sensitive compaction
// policy, measures baseline QPS, applies two rounds of deletes/upserts
// (~10% then ~30% tombstoned) measuring QPS at each, then compacts every
// shard (timed individually) and measures the recovered throughput.
func churnReport(c SuiteConfig, spec dataset.Spec, data *distance.Matrix) (*ChurnReport, error) {
	const k = 10
	ix, err := core.Build(data, core.Config{
		Method:       core.SOFA,
		LeafCapacity: c.LeafCapacity,
		Shards:       c.Shards,
		SampleRate:   0.01,
		Seed:         c.Seed,
		// Low re-learn threshold so the experiment's churn trips it and the
		// pause distribution includes re-learn cost; MaxTombstoneFraction is
		// irrelevant here because the shards are compacted explicitly.
		Compaction: core.CompactionPolicy{RelearnChurnFraction: 0.1},
	})
	if err != nil {
		return nil, err
	}
	queries, err := dataset.GenerateQueries(spec, c.Queries, c.Seed)
	if err != nil {
		return nil, err
	}
	rep := &ChurnReport{
		Series:  data.Len(),
		Length:  spec.Length,
		Shards:  c.Shards,
		Queries: queries.Len(),
		K:       k,
	}
	s := ix.NewSearcher()
	measure := func(phase string) error {
		row, err := churnQPS(s, queries, k)
		if err != nil {
			return err
		}
		row.Phase = phase
		row.Live = ix.Len()
		row.Tombstoned = ix.Collection().Tombstoned()
		rep.Rows = append(rep.Rows, row)
		return nil
	}
	if err := measure("baseline"); err != nil {
		return nil, err
	}

	// Churn rounds: delete to a target tombstone fraction, upserting one row
	// for every four deletes so the id-remap path is exercised too. Ids are
	// never reused, so each round draws from the still-live prefix.
	rng := rand.New(rand.NewSource(c.Seed + 31))
	live := make([]index.ID, data.Len())
	for i := range live {
		live[i] = index.ID(i)
	}
	churnTo := func(frac float64) error {
		target := int(frac * float64(data.Len()))
		for ix.Collection().Tombstoned() < target && len(live) > 0 {
			j := rng.Intn(len(live))
			id := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if rng.Intn(5) == 0 {
				if err := ix.Upsert(id, data.Row(rng.Intn(data.Len()))); err != nil {
					return err
				}
				live = append(live, id) // still live under the same id
			} else if err := ix.Delete(id); err != nil {
				return err
			}
		}
		return nil
	}
	for _, round := range []struct {
		frac  float64
		phase string
	}{{0.10, "churn 10%"}, {0.30, "churn 30%"}} {
		if err := churnTo(round.frac); err != nil {
			return nil, err
		}
		if err := measure(round.phase); err != nil {
			return nil, err
		}
	}

	// Compact every shard, timing each swap as one pause sample.
	for i := 0; i < c.Shards; i++ {
		start := time.Now()
		if err := ix.CompactShard(i); err != nil {
			return nil, err
		}
		rep.CompactPausesMs = append(rep.CompactPausesMs, time.Since(start).Seconds()*1e3)
	}
	sort.Float64s(rep.CompactPausesMs)
	for _, p := range rep.CompactPausesMs {
		rep.CompactMeanMs += p
	}
	rep.CompactMeanMs /= float64(len(rep.CompactPausesMs))
	rep.CompactMaxMs = rep.CompactPausesMs[len(rep.CompactPausesMs)-1]
	col := ix.Collection()
	rep.Compactions = col.Compactions()
	rep.Relearns = col.Relearns()
	if err := measure("compacted"); err != nil {
		return nil, err
	}
	return rep, nil
}

// churnQPS runs the query set sequentially until at least minWall has
// elapsed and returns the sustained rate.
func churnQPS(s *core.Searcher, queries *distance.Matrix, k int) (ChurnRow, error) {
	const minWall = 250 * time.Millisecond
	n := 0
	start := time.Now()
	for time.Since(start) < minWall {
		for i := 0; i < queries.Len(); i++ {
			if _, err := s.Search(queries.Row(i), k); err != nil {
				return ChurnRow{}, err
			}
			n++
		}
	}
	elapsed := time.Since(start).Seconds()
	return ChurnRow{
		QPS:            float64(n) / elapsed,
		MicrosPerQuery: elapsed / float64(n) * 1e6,
	}, nil
}
