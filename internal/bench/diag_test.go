package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// TestDiagnoseSALD is a diagnostic harness (run with -run Diagnose -v) that
// prints per-method pruning counters on a smooth dataset; it always passes.
func TestDiagnoseSALD(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	spec, _ := dataset.ByName("SALD")
	data, err := dataset.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := dataset.GenerateQueries(spec, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []core.Method{core.MESSI, core.SOFA} {
		ix, err := core.Build(data, core.Config{Method: method, LeafCapacity: 256, Workers: 12})
		if err != nil {
			t.Fatal(err)
		}
		st := ix.Stats()
		s := ix.NewSearcher()
		var ts []float64
		var lbd, ed int64
		for qi := 0; qi < queries.Len(); qi++ {
			start := time.Now()
			if _, err := s.Search(queries.Row(qi), 1); err != nil {
				t.Fatal(err)
			}
			ts = append(ts, time.Since(start).Seconds())
			st := s.LastStats()
			lbd += st.SeriesLBD
			ed += st.SeriesED
		}
		t.Logf("%s: subtrees=%d leaves=%d depth=%.1f | query mean %.3fms median %.3fms | LBD/query %d, ED/query %d",
			method, st.Subtrees, st.Leaves, st.AvgDepth, stats.Mean(ts)*1000, stats.Median(ts)*1000,
			lbd/int64(queries.Len()), ed/int64(queries.Len()))
	}
}
