package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/fft"
	"repro/internal/paa"
	"repro/internal/sax"
	"repro/internal/sfa"
	"repro/internal/stats"
)

// RunFig1 reproduces Fig. 1: it quantifies, per dataset, how well an
// 8-value PAA versus an 8-value Fourier approximation reconstructs the
// series (mean squared reconstruction error — the figure's visual flat-line
// failure becomes a large PAA error), and summarizes the value distribution
// (skewness/excess kurtosis; N(0,1) would give 0/0, the iSAX assumption).
func RunFig1(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tPAA MSE\tFFT MSE\tPAA/FFT\tskew\tex.kurtosis")
	const values = 8 // both summarizations get 8 values, as in the figure
	for _, spec := range c.Datasets {
		small := spec
		small.Count = 200
		m, err := dataset.Generate(small, c.Seed)
		if err != nil {
			return err
		}
		plan := fft.MustPlan(m.Stride)
		var paaMSE, fftMSE float64
		var allValues []float64
		for i := 0; i < m.Len(); i++ {
			row := m.Row(i)
			allValues = append(allValues, row...)
			paaMSE += paaReconstructionMSE(row, values)
			e, err := fftReconstructionMSE(plan, row, values)
			if err != nil {
				return err
			}
			fftMSE += e
		}
		paaMSE /= float64(m.Len())
		fftMSE /= float64(m.Len())
		ratio := math.Inf(1)
		if fftMSE > 0 {
			ratio = paaMSE / fftMSE
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.1fx\t%+.2f\t%+.2f\n",
			spec.Name, paaMSE, fftMSE, ratio,
			stats.Skewness(allValues), stats.Kurtosis(allValues))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(large PAA/FFT ratios are the paper's 'flat line' failure cases;")
	fmt.Fprintln(w, " skew/kurtosis far from 0 break the N(0,1) assumption of iSAX)")
	return nil
}

// paaReconstructionMSE reconstructs the series from l segment means
// (repeating each mean across its segment) and returns the MSE.
func paaReconstructionMSE(row []float64, l int) float64 {
	n := len(row)
	means := make([]float64, l)
	paa.MustTransform(row, l, means)
	var mse float64
	segLen := float64(n) / float64(l)
	for j := 0; j < n; j++ {
		seg := int(float64(j) / segLen)
		if seg >= l {
			seg = l - 1
		}
		d := row[j] - means[seg]
		mse += d * d
	}
	return mse / float64(n)
}

// fftReconstructionMSE keeps the l/2 complex coefficients with the largest
// magnitude (the adaptive choice that mirrors SFA's variance selection at
// dataset level) and measures the inverse-transform error.
func fftReconstructionMSE(plan *fft.Plan, row []float64, values int) (float64, error) {
	n := len(row)
	spec, err := plan.FullSpectrumReal(row)
	if err != nil {
		return 0, err
	}
	nc := n/2 + 1
	type mag struct {
		k int
		m float64
	}
	mags := make([]mag, 0, nc-1)
	for k := 1; k < nc; k++ {
		mags = append(mags, mag{k, spec[2*k]*spec[2*k] + spec[2*k+1]*spec[2*k+1]})
	}
	sort.Slice(mags, func(a, b int) bool { return mags[a].m > mags[b].m })
	keep := values / 2
	if keep > len(mags) {
		keep = len(mags)
	}
	// Build the truncated spectrum (unnormalized complex form) and invert.
	buf := make([]complex128, n)
	scale := math.Sqrt(float64(n)) // undo the 1/sqrt(n) ForwardReal scaling
	for i := 0; i < keep; i++ {
		k := mags[i].k
		re, im := spec[2*k]*scale, spec[2*k+1]*scale
		buf[k] = complex(re, im)
		if k != 0 && k != n/2 {
			buf[n-k] = complex(re, -im)
		}
	}
	if err := plan.InverseNormalized(buf); err != nil {
		return 0, err
	}
	var mse float64
	for j := 0; j < n; j++ {
		d := row[j] - real(buf[j])
		mse += d * d
	}
	return mse / float64(n), nil
}

// RunFig2 reproduces Fig. 2/3: the SAX and SFA words of one example series
// for word lengths 4, 8 and 12 over an 8-symbol alphabet, printed with the
// paper's letter notation.
func RunFig2(_ SuiteConfig, w io.Writer) error {
	// The paper's example series: a smooth multi-harmonic signal.
	n := 160
	series := make([]float64, n)
	for j := 0; j < n; j++ {
		x := float64(j) / float64(n)
		series[j] = math.Sin(2*math.Pi*2*x) + 0.6*math.Sin(2*math.Pi*5*x+1) + 0.3*math.Sin(2*math.Pi*9*x)
	}
	distance.ZNormalize(series)
	// A small training collection from the same process for MCB.
	train := distance.NewMatrix(256, n)
	for i := 0; i < train.Len(); i++ {
		row := train.Row(i)
		ph := float64(i) * 0.13
		for j := 0; j < n; j++ {
			x := float64(j) / float64(n)
			row[j] = math.Sin(2*math.Pi*2*x+ph) + 0.6*math.Sin(2*math.Pi*5*x+1+ph) + 0.3*math.Sin(2*math.Pi*9*x+2*ph)
		}
	}
	train.ZNormalizeAll()

	tw := newTable(w)
	fmt.Fprintln(tw, "l\tSAX word\tSFA word")
	for _, l := range []int{4, 8, 12} {
		sq, err := sax.NewQuantizer(n, l, 3) // 8 symbols
		if err != nil {
			return err
		}
		saxWord, err := sq.Word(series, make([]byte, l), nil)
		if err != nil {
			return err
		}
		fq, err := sfa.Learn(train, sfa.Options{WordLength: l, Bits: 3, SampleRate: 1, MaxCoeffs: n / 2})
		if err != nil {
			return err
		}
		sfaWord, err := fq.NewTransformer().Word(series, make([]byte, l))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\n", l, letters(saxWord), letters(sfaWord))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(SAX symbols quantize PAA means with fixed N(0,1) bins; SFA symbols")
	fmt.Fprintln(w, " quantize selected Fourier values with per-value learned bins)")
	return nil
}

// letters renders a word with the paper's 'a'..'h' notation.
func letters(word []byte) string {
	out := make([]byte, len(word))
	for i, s := range word {
		out[i] = 'a' + s
	}
	return string(out)
}
