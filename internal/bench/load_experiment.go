package bench

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/distance"
)

// LoadRow is one container version's load-time measurement over the
// benchmark snapshot (best of reps, to isolate the format cost from noise).
type LoadRow struct {
	Version       int     `json:"version"`
	Bytes         int64   `json:"bytes"`
	DecodeSeconds float64 `json:"decode_seconds"`
	TreeSeconds   float64 `json:"tree_seconds"`
	TotalSeconds  float64 `json:"total_seconds"`
	// Splits is the number of leaf re-splits the load performed: the v2
	// rebuild pays the full tree construction, the v3 direct decode none.
	Splits int64 `json:"splits"`
}

// RunLoad measures cold-start cost by container version — the persistence
// v3 experiment: the same built index (the qps snapshot's dataset at the
// configured shard count) is saved as version 2 (words only; Load rebuilds
// every shard tree) and version 3 (tree shape + leaf blocks; Load decodes),
// and each container is loaded repeatedly from memory. With the file cached
// in memory the comparison isolates what the format itself costs. Read the
// columns honestly: at this reduced scale the total is dominated by data
// decode (v3's raw-byte packing vs v2's gob per-element floats), while the
// re-split column is the structural guarantee — pass a small -leaf to see
// the v2 rebuild's split work grow the tree phase.
func RunLoad(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	spec, data, err := snapshotData(c)
	if err != nil {
		return err
	}
	rows, buildSeconds, err := loadRows(c, data)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintf(tw, "dataset\t%s\tseries\t%d\tlength\t%d\tshards\t%d\n",
		spec.Name, spec.Count, spec.Length, c.Shards)
	fmt.Fprintf(tw, "fresh build\t%.2fs\n", buildSeconds)
	fmt.Fprintln(tw, "version\tMB\tdecode ms\ttree ms\ttotal ms\tre-splits")
	for _, r := range rows {
		fmt.Fprintf(tw, "v%d\t%.1f\t%.1f\t%.1f\t%.1f\t%d\n",
			r.Version, float64(r.Bytes)/(1<<20), r.DecodeSeconds*1e3, r.TreeSeconds*1e3,
			r.TotalSeconds*1e3, r.Splits)
	}
	if len(rows) == 2 && rows[1].TotalSeconds > 0 {
		fmt.Fprintf(tw, "v3 vs v2\ttotal %.2fx\ttree phase %.1fx\n",
			rows[0].TotalSeconds/rows[1].TotalSeconds,
			rows[0].TreeSeconds/max(rows[1].TreeSeconds, 1e-9))
	}
	return tw.Flush()
}

// loadRows builds the snapshot index once over the pre-generated data (see
// snapshotData), serializes it as v2 and v3, and measures loading each
// container (best of 3). The index is built with the default worker budget
// — a deliberate mismatch with the qps experiment's core-swept build, since
// load measures what a cold start on this machine would pay. c must already
// be defaulted.
func loadRows(c SuiteConfig, data *distance.Matrix) ([]LoadRow, float64, error) {
	ix, err := core.Build(data, core.Config{
		Method:       core.SOFA,
		LeafCapacity: c.LeafCapacity,
		Shards:       c.Shards,
		SampleRate:   0.01,
		Seed:         c.Seed,
	})
	if err != nil {
		return nil, 0, err
	}
	buildSeconds := ix.BuildSeconds()

	versions := []int{2, 3}
	bufs := make([]bytes.Buffer, len(versions))
	for i, version := range versions {
		if err := core.SaveVersion(ix, &bufs[i], version); err != nil {
			return nil, 0, err
		}
	}
	// Interleave the repetitions (warmup + best-of-3 per version, v2 and v3
	// alternating) so heap and allocator state do not systematically favor
	// whichever version is measured later.
	const reps = 4
	rows := make([]LoadRow, len(versions))
	for r := 0; r < reps; r++ {
		for i, version := range versions {
			var st core.LoadStats
			loaded, err := core.LoadWithStats(bytes.NewReader(bufs[i].Bytes()), &st)
			if err != nil {
				return nil, 0, err
			}
			if loaded.Len() != ix.Len() {
				return nil, 0, fmt.Errorf("bench: v%d load returned %d series, want %d",
					version, loaded.Len(), ix.Len())
			}
			if r == 0 {
				continue // warmup round
			}
			row := LoadRow{
				Version:       st.Version,
				Bytes:         st.Bytes,
				DecodeSeconds: st.DecodeSeconds,
				TreeSeconds:   st.TreeSeconds,
				TotalSeconds:  st.TotalSeconds,
				Splits:        st.Splits,
			}
			if r == 1 || row.TotalSeconds < rows[i].TotalSeconds {
				rows[i] = row
			}
		}
	}
	return rows, buildSeconds, nil
}
