package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
)

// QBlockRow is one cell of the block-vs-per-series refinement kernel A/B:
// the same queries answered by two same-session builds of the same tree,
// one refining leaves with the block kernels (the default), one with the
// per-series kernel path (core.Config.PerSeriesLBD). Reps are interleaved
// A/B/A/B so thermal drift and clock changes hit both sides equally, which
// makes Speedup an honest same-session number.
type QBlockRow struct {
	// Workload is "distinct" (every query unique) or "hot" (4 distinct
	// queries cycled — the skewed repeat-query shape whose table builds the
	// qr-cache absorbs, leaving refinement as the dominant cost).
	Workload     string  `json:"workload"`
	K            int     `json:"k"`
	BlockQPS     float64 `json:"block_qps"`
	PerSeriesQPS float64 `json:"per_series_qps"`
	Speedup      float64 `json:"speedup"`
}

// RunQBlock is the multi-query leaf-blocking experiment (sofa-bench -exp
// qblock): it quantifies what block-granularity refinement is worth on
// end-to-end batched throughput, per workload shape and k.
func RunQBlock(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	_, data, err := snapshotData(c)
	if err != nil {
		return err
	}
	rows, err := qblockRows(c, data)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "workload\tk\tblock q/s\tper-series q/s\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.2fx\n", r.Workload, r.K, r.BlockQPS, r.PerSeriesQPS, r.Speedup)
	}
	return tw.Flush()
}

// hotQueries builds the skewed workload: `distinct` rows of qs cycled to
// total rows, modelling a cache/dashboard pattern where a few queries
// dominate.
func hotQueries(qs *distance.Matrix, distinct, total int) *distance.Matrix {
	if distinct > qs.Len() {
		distinct = qs.Len()
	}
	out := distance.NewMatrix(total, qs.Stride)
	for i := 0; i < total; i++ {
		copy(out.Row(i), qs.Row(i%distinct))
	}
	return out
}

// qblockRows builds the block and per-series indexes over the snapshot data
// once and measures every (workload, k) cell with interleaved reps. c must
// already be defaulted.
func qblockRows(c SuiteConfig, data *distance.Matrix) ([]QBlockRow, error) {
	cores := c.CoreCounts[len(c.CoreCounts)-1]
	base := core.Config{
		Method:       core.SOFA,
		LeafCapacity: c.LeafCapacity,
		Workers:      cores,
		SampleRate:   0.01,
		Seed:         c.Seed,
	}
	blockIx, err := core.Build(data, base)
	if err != nil {
		return nil, err
	}
	psCfg := base
	psCfg.PerSeriesLBD = true
	psIx, err := core.Build(data, psCfg)
	if err != nil {
		return nil, err
	}

	spec := c.Datasets[0]
	spec.Count = data.Len()
	nq := 4 * cores
	if nq < 16 {
		nq = 16
	}
	distinct, err := dataset.GenerateQueries(spec, nq, c.Seed)
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name    string
		queries *distance.Matrix
	}{
		{"distinct", distinct},
		{"hot", hotQueries(distinct, 4, nq)},
	}

	const reps = 3
	var rows []QBlockRow
	for _, wl := range workloads {
		for _, k := range []int{1, 10} {
			// One untimed warmup per side grows pooled buffers and faults
			// pages in before any timed rep.
			if _, err := blockIx.SearchBatch(wl.queries, k, cores); err != nil {
				return nil, err
			}
			if _, err := psIx.SearchBatch(wl.queries, k, cores); err != nil {
				return nil, err
			}
			var tBlock, tPer time.Duration
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				if _, err := blockIx.SearchBatch(wl.queries, k, cores); err != nil {
					return nil, err
				}
				tBlock += time.Since(start)
				start = time.Now()
				if _, err := psIx.SearchBatch(wl.queries, k, cores); err != nil {
					return nil, err
				}
				tPer += time.Since(start)
			}
			n := float64(reps * wl.queries.Len())
			row := QBlockRow{
				Workload:     wl.name,
				K:            k,
				BlockQPS:     n / tBlock.Seconds(),
				PerSeriesQPS: n / tPer.Seconds(),
			}
			row.Speedup = row.BlockQPS / row.PerSeriesQPS
			rows = append(rows, row)
		}
	}
	return rows, nil
}
