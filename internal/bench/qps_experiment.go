package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/flat"
	"repro/internal/index"
)

// QPSRow is one engine's sustained-throughput measurement.
type QPSRow struct {
	Engine  string  `json:"engine"`
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	QPS     float64 `json:"qps"`
}

// RunQPS measures sustained batched-query throughput (queries per second) —
// the system extension beyond the paper's one-query-at-a-time protocol. It
// compares, at the maximum core count and k=10:
//
//   - the single tree's pooled BatchSearch,
//   - the sharded collection's BatchSearch (S shards, merged k-NN),
//   - the streaming engine over both (persistent workers, bounded channel),
//   - the flat baseline, unsharded and sharded the same way.
//
// All engines answer the identical query set exactly, so the column is a
// like-for-like throughput comparison.
func RunQPS(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	_, data, err := snapshotData(c)
	if err != nil {
		return err
	}
	rows, err := qpsRows(c, data)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "engine\tshards\tworkers\tqueries/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\n", r.Engine, r.Shards, r.Workers, r.QPS)
	}
	return tw.Flush()
}

// qpsRows runs the throughput comparison over the pre-generated snapshot
// data (see snapshotData) and returns the raw rows; RunQPS renders them as
// a table and the perf report serializes them to JSON. c must already be
// defaulted.
func qpsRows(c SuiteConfig, data *distance.Matrix) ([]QPSRow, error) {
	cores := c.CoreCounts[len(c.CoreCounts)-1]
	const k = 10
	spec := c.Datasets[0]
	scaled := spec
	scaled.Count = data.Len()
	// Throughput needs enough in-flight queries to saturate the workers.
	nq := 4 * cores
	if nq < 16 {
		nq = 16
	}
	queries, err := dataset.GenerateQueries(scaled, nq, c.Seed)
	if err != nil {
		return nil, err
	}
	const reps = 3

	var rows []QPSRow
	shardCounts := []int{1}
	if c.Shards > 1 {
		shardCounts = append(shardCounts, c.Shards)
	}
	for _, shards := range shardCounts {
		ix, err := core.Build(data, core.Config{
			Method:       core.SOFA,
			LeafCapacity: c.LeafCapacity,
			Workers:      cores,
			Shards:       shards,
			SampleRate:   0.01,
			Seed:         c.Seed,
		})
		if err != nil {
			return nil, err
		}
		qps, err := timeBatchQPS(ix, queries, k, cores, reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, QPSRow{Engine: ix.Method().String() + " batch", Shards: shards, Workers: cores, QPS: qps})
		qps, err = timeStreamQPS(ix, queries, k, cores, reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, QPSRow{Engine: ix.Method().String() + " stream", Shards: shards, Workers: cores, QPS: qps})

		// Skewed repeat-query workload: 4 distinct queries cycled over the
		// same in-flight count. Repeats hit the per-query distance-table
		// qr-cache, so this row isolates the refinement loop itself — the
		// shape dashboards and alerting replays actually produce.
		qps, err = timeBatchQPS(ix, hotQueries(queries, 4, queries.Len()), k, cores, reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, QPSRow{Engine: ix.Method().String() + " batch hot-query", Shards: shards, Workers: cores, QPS: qps})

		fl, err := flat.BuildSharded(data, shards, cores)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := fl.SearchBatch(queries, k); err != nil {
				return nil, err
			}
		}
		rows = append(rows, QPSRow{Engine: "flat batch", Shards: shards, Workers: cores,
			QPS: float64(reps*queries.Len()) / time.Since(start).Seconds()})
	}
	return rows, nil
}

// timeBatchQPS measures repeated SearchBatch calls.
func timeBatchQPS(ix *core.Index, queries *distance.Matrix, k, workers, reps int) (float64, error) {
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := ix.SearchBatch(queries, k, workers); err != nil {
			return 0, err
		}
	}
	return float64(reps*queries.Len()) / time.Since(start).Seconds(), nil
}

// timeStreamQPS measures the streaming engine: one stream for all reps, a
// WaitGroup tracking completions.
func timeStreamQPS(ix *core.Index, queries *distance.Matrix, k, workers, reps int) (float64, error) {
	var pending sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	st, err := ix.NewStream(k, workers, func(qid uint64, res []index.Result, err error) {
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		pending.Done()
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for r := 0; r < reps; r++ {
		for i := 0; i < queries.Len(); i++ {
			pending.Add(1)
			if _, err := st.Submit(queries.Row(i)); err != nil {
				pending.Done()
				st.Close()
				return 0, err
			}
		}
		pending.Wait()
	}
	elapsed := time.Since(start).Seconds()
	st.Close()
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(reps*queries.Len()) / elapsed, nil
}
