package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/scan"
	"repro/internal/sfa"
	"repro/internal/stats"
)

// mixedWorkload runs 1-NN queries for the four methods over every dataset
// at the given core count and returns the pooled per-query times in seconds
// ("mixed workload" in the paper's terminology).
func mixedWorkload(c SuiteConfig, cores, k int) (map[string][]float64, error) {
	out := map[string][]float64{}
	for _, spec := range c.Datasets {
		b, err := c.loadBundle(spec)
		if err != nil {
			return nil, err
		}
		// UCR Suite-P.
		sc, err := scan.New(b.Data, cores)
		if err != nil {
			return nil, err
		}
		ts, err := timeScanQueries(sc, b.Queries, k)
		if err != nil {
			return nil, err
		}
		out["UCR SUITE-P"] = append(out["UCR SUITE-P"], ts...)
		// FAISS-like flat (mini-batch protocol).
		fl, err := flat.Build(b.Data, cores)
		if err != nil {
			return nil, err
		}
		ts, err = timeFlatQueries(fl, b.Queries, k)
		if err != nil {
			return nil, err
		}
		out["FAISS IndexFlatL2"] = append(out["FAISS IndexFlatL2"], ts...)
		// MESSI and SOFA.
		for _, method := range []core.Method{core.MESSI, core.SOFA} {
			ix, err := c.buildTree(b, method, cores)
			if err != nil {
				return nil, err
			}
			ts, err := timeTreeQueries(ix, b.Queries, k)
			if err != nil {
				return nil, err
			}
			out[method.String()] = append(out[method.String()], ts...)
		}
	}
	return out, nil
}

var table2Methods = []string{"FAISS IndexFlatL2", "MESSI", "SOFA", "UCR SUITE-P"}

// RunTable2 reproduces Table II: mean and median 1-NN query times (ms) for
// the mixed workload, per method and core count.
func RunTable2(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	tw := newTable(w)
	fmt.Fprintln(tw, "method\tcores\tmedian ms\tmean ms")
	for _, method := range table2Methods {
		for _, cores := range c.CoreCounts {
			times, err := mixedWorkloadCached(c, cores, 1)
			if err != nil {
				return err
			}
			mean, median := meanMedian(times[method])
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", method, cores, ms(median), ms(mean))
		}
	}
	return tw.Flush()
}

// mixedWorkloadCached memoizes mixedWorkload per (config fingerprint, cores,
// k) so Table II and Fig. 10 don't pay twice within one process.
var workloadCache = map[string]map[string][]float64{}

func mixedWorkloadCached(c SuiteConfig, cores, k int) (map[string][]float64, error) {
	key := fmt.Sprintf("%d|%d|%d|%v|%d|%d", len(c.Datasets), c.Queries, cores, c.Scale, k, c.Seed)
	if got, ok := workloadCache[key]; ok {
		return got, nil
	}
	got, err := mixedWorkload(c, cores, k)
	if err != nil {
		return nil, err
	}
	workloadCache[key] = got
	return got, nil
}

// RunTable3 reproduces Table III / Fig. 9: median k-NN query times at the
// maximum core count for k in {1,3,5,10,20,50}. The UCR suite is reported
// for k=1 only, as in the paper.
func RunTable3(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	cores := c.CoreCounts[len(c.CoreCounts)-1]
	ks := []int{1, 3, 5, 10, 20, 50}
	medians := map[string]map[int]float64{}
	for _, k := range ks {
		times, err := mixedWorkloadCached(c, cores, k)
		if err != nil {
			return err
		}
		for method, ts := range times {
			if method == "UCR SUITE-P" && k > 1 {
				continue
			}
			if medians[method] == nil {
				medians[method] = map[int]float64{}
			}
			medians[method][k] = stats.Median(ts)
		}
	}
	tw := newTable(w)
	fmt.Fprint(tw, "method")
	for _, k := range ks {
		fmt.Fprintf(tw, "\t%d-NN ms", k)
	}
	fmt.Fprintln(tw)
	for _, method := range []string{"UCR SUITE-P", "FAISS IndexFlatL2", "MESSI", "SOFA"} {
		fmt.Fprint(tw, method)
		for _, k := range ks {
			if v, ok := medians[method][k]; ok {
				fmt.Fprintf(tw, "\t%s", ms(v))
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RunFig10 reproduces Fig. 10: the distribution (five-number summary) of
// 1-NN query times per method and core count.
func RunFig10(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	tw := newTable(w)
	fmt.Fprintln(tw, "method\tcores\tmin ms\tq25 ms\tmedian ms\tq75 ms\tmax ms")
	for _, method := range table2Methods {
		for _, cores := range c.CoreCounts {
			times, err := mixedWorkloadCached(c, cores, 1)
			if err != nil {
				return err
			}
			s := stats.Summarize(times[method])
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
				method, cores, ms(s.Min), ms(s.Q25), ms(s.Median), ms(s.Q75), ms(s.Max))
		}
	}
	return tw.Flush()
}

// RunFig11 reproduces Fig. 11: median 1-NN query time as the leaf size
// grows, for MESSI, SOFA with equi-depth binning, and SOFA with equi-width
// binning. Leaf sizes are scaled to the reduced datasets (the paper sweeps
// up to 20000 on 100M-series collections).
func RunFig11(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	cores := c.CoreCounts[len(c.CoreCounts)-1]
	leafSizes := []int{32, 64, 128, 256, 512, 1024, 2048}
	type variant struct {
		name string
		cfg  core.Config
	}
	variants := []variant{
		{"MESSI", core.Config{Method: core.MESSI}},
		{"SOFA + ED", core.Config{Method: core.SOFA, Binning: sfa.EquiDepth, SampleRate: 0.01}},
		{"SOFA + EW", core.Config{Method: core.SOFA, SampleRate: 0.01}},
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "leaf size\tmethod\tmedian ms\tmean ms")
	for _, leaf := range leafSizes {
		for _, v := range variants {
			var all []float64
			for _, spec := range c.Datasets {
				b, err := c.loadBundle(spec)
				if err != nil {
					return err
				}
				vc := v.cfg
				vc.LeafCapacity = leaf
				vc.Workers = cores
				vc.Seed = c.Seed
				ix, err := core.Build(b.Data, vc)
				if err != nil {
					return err
				}
				ts, err := timeTreeQueries(ix, b.Queries, 1)
				if err != nil {
					return err
				}
				all = append(all, ts...)
			}
			mean, median := meanMedian(all)
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", leaf, v.name, ms(median), ms(mean))
		}
	}
	return tw.Flush()
}

// datasetRatio holds one dataset's SOFA-vs-MESSI comparison.
type datasetRatio struct {
	Name          string
	Relative      float64 // SOFA mean time / MESSI mean time
	MeanCoeffIdx  float64 // mean selected complex coefficient index
	SpeedupFactor float64 // MESSI / SOFA
}

// sofaVsMESSI measures per-dataset mean 1-NN query times for both methods.
func sofaVsMESSI(c SuiteConfig, cores int) ([]datasetRatio, error) {
	var out []datasetRatio
	for _, spec := range c.Datasets {
		b, err := c.loadBundle(spec)
		if err != nil {
			return nil, err
		}
		mi, err := c.buildTree(b, core.MESSI, cores)
		if err != nil {
			return nil, err
		}
		mt, err := timeTreeQueries(mi, b.Queries, 1)
		if err != nil {
			return nil, err
		}
		si, err := c.buildTree(b, core.SOFA, cores)
		if err != nil {
			return nil, err
		}
		st, err := timeTreeQueries(si, b.Queries, 1)
		if err != nil {
			return nil, err
		}
		messiMean := stats.Mean(mt)
		sofaMean := stats.Mean(st)
		r := datasetRatio{Name: spec.Name, MeanCoeffIdx: si.SFAQuantizer().MeanCoefficientIndex()}
		if messiMean > 0 {
			r.Relative = sofaMean / messiMean
		}
		if sofaMean > 0 {
			r.SpeedupFactor = messiMean / sofaMean
		}
		out = append(out, r)
	}
	return out, nil
}

var ratioCache = map[string][]datasetRatio{}

func sofaVsMESSICached(c SuiteConfig, cores int) ([]datasetRatio, error) {
	key := fmt.Sprintf("%d|%d|%d|%v|%d", len(c.Datasets), c.Queries, cores, c.Scale, c.Seed)
	if got, ok := ratioCache[key]; ok {
		return got, nil
	}
	got, err := sofaVsMESSI(c, cores)
	if err != nil {
		return nil, err
	}
	ratioCache[key] = got
	return got, nil
}

// RunFig12 reproduces Fig. 12: the per-dataset query time of SOFA relative
// to MESSI (=100%), sorted ascending, at the middle core count.
func RunFig12(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	cores := c.CoreCounts[len(c.CoreCounts)/2]
	ratios, err := sofaVsMESSICached(c, cores)
	if err != nil {
		return err
	}
	sorted := append([]datasetRatio(nil), ratios...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Relative < sorted[b].Relative })
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tSOFA relative time (MESSI=100%)\tspeedup")
	for _, r := range sorted {
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.1fx\n", r.Name, r.Relative*100, r.SpeedupFactor)
	}
	return tw.Flush()
}

// RunTable4 reproduces Table IV: mean and median 1-NN query times of SOFA
// as the MCB sampling rate varies.
func RunTable4(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	cores := c.CoreCounts[len(c.CoreCounts)-1]
	rates := []float64{0.001, 0.005, 0.01, 0.05, 0.10, 0.15, 0.20}
	tw := newTable(w)
	fmt.Fprintln(tw, "sampling\tmean ms\tmedian ms")
	for _, rate := range rates {
		var all []float64
		for _, spec := range c.Datasets {
			b, err := c.loadBundle(spec)
			if err != nil {
				return err
			}
			ix, err := core.Build(b.Data, core.Config{
				Method:       core.SOFA,
				LeafCapacity: c.LeafCapacity,
				Workers:      cores,
				SampleRate:   rate,
				Seed:         c.Seed,
			})
			if err != nil {
				return err
			}
			ts, err := timeTreeQueries(ix, b.Queries, 1)
			if err != nil {
				return err
			}
			all = append(all, ts...)
		}
		mean, median := meanMedian(all)
		fmt.Fprintf(tw, "%.1f%%\t%s\t%s\n", rate*100, ms(mean), ms(median))
	}
	return tw.Flush()
}

// RunFig13 reproduces Fig. 13: per dataset, the mean index of the Fourier
// coefficients SOFA selected versus its speedup over MESSI, with the
// Pearson correlation (the paper reports 0.51).
func RunFig13(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	cores := c.CoreCounts[len(c.CoreCounts)/2]
	ratios, err := sofaVsMESSICached(c, cores)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tmean DFT coeff selected\tspeedup over MESSI")
	xs := make([]float64, 0, len(ratios))
	ys := make([]float64, 0, len(ratios))
	for _, r := range ratios {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2fx\n", r.Name, r.MeanCoeffIdx, r.SpeedupFactor)
		xs = append(xs, r.MeanCoeffIdx)
		ys = append(ys, r.SpeedupFactor)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	rho, err := stats.Pearson(xs, ys)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Pearson correlation (coeff index vs speedup): %.2f (paper: 0.51)\n", rho)
	return nil
}

// ResetCaches clears the memoized workload results; benchmarks call it so
// every iteration measures a cold run.
func ResetCaches() {
	workloadCache = map[string]map[string][]float64{}
	ratioCache = map[string][]datasetRatio{}
}
