package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/simd"
)

// PerfReport is the machine-readable performance snapshot the "report"
// experiment emits (see SuiteConfig.JSONPath / sofa-bench -json): kernel
// ns/op for every LBD and distance kernel variant, end-to-end sustained
// QPS per engine, and the steady-state allocation count of the query hot
// path. Checked-in snapshots (BENCH_pr3.json, ...) give the repo a perf
// trajectory future PRs are compared against.
type PerfReport struct {
	PR        int    `json:"pr"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	MaxProcs  int    `json:"maxprocs"`
	// SIMD is the dispatched per-series kernel implementation: "avx2" or
	// "portable". SIMDBlock is the tier serving the block-granularity
	// kernels, which additionally know an "avx512" tier.
	SIMD      string `json:"simd"`
	SIMDBlock string `json:"simd_block"`

	// Kernels: nanoseconds per single kernel invocation (series length 256
	// for ED/dot; l=16 words over a 256-symbol alphabet for LBD kernels).
	Kernels []KernelRow `json:"kernels"`

	// EndToEnd: sustained queries/s per engine (the qps experiment's rows),
	// measured on Dataset (DataSeries series of length DataLength, k=10).
	Dataset    string   `json:"dataset"`
	DataSeries int      `json:"data_series"`
	DataLength int      `json:"data_length"`
	EndToEnd   []QPSRow `json:"end_to_end"`

	// KernelAB is the same-session interleaved block-vs-per-series
	// refinement A/B on the snapshot dataset (the qblock experiment's
	// rows): reps alternate between the two builds, so the speedups are
	// immune to run-to-run machine drift.
	KernelAB []QBlockRow `json:"kernel_ab"`

	// SearchSteadyStateAllocs is allocations per exact Search call on a
	// warmed pooled searcher (the PR-1 zero-allocation invariant).
	SearchSteadyStateAllocs float64 `json:"search_steady_state_allocs"`

	// Load: cold-start cost by container version on the same snapshot
	// (Shards shards) — v2 rebuilds every shard tree from its words, v3
	// decodes the serialized shape (zero re-splits).
	LoadShards int       `json:"load_shards"`
	Load       []LoadRow `json:"load"`

	// Chaos: degraded-mode operation on the same snapshot with one shard
	// quarantined — AllowPartial throughput, top-k coverage and the ε
	// certificate distribution.
	Chaos *ChaosReport `json:"chaos"`

	// WAL: durable insert throughput by write-ahead-log sync policy on the
	// same snapshot (the wal experiment's rows) — the per-insert price of
	// the fsync ladder, plus the replay cost the log imposes on the next
	// open.
	WAL []WALRow `json:"wal"`

	// Churn: search throughput under tombstone load, per-shard compaction
	// pause distribution and churn-triggered SFA re-learns on the same
	// snapshot (the churn experiment).
	Churn *ChurnReport `json:"churn"`
}

// KernelRow is one kernel variant's microbenchmark result.
type KernelRow struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// RunReport measures the PR-3 performance report, prints it as text and, if
// cfg.JSONPath is set, writes the JSON snapshot there.
func RunReport(cfg SuiteConfig, w io.Writer) error {
	rep, err := BuildReport(cfg)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintf(tw, "go\t%s %s/%s\tsimd\t%s (block: %s)\tmaxprocs\t%d\n",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.SIMD, rep.SIMDBlock, rep.MaxProcs)
	fmt.Fprintln(tw, "kernel\tns/op")
	for _, k := range rep.Kernels {
		fmt.Fprintf(tw, "%s\t%.1f\n", k.Name, k.NsPerOp)
	}
	fmt.Fprintln(tw, "engine\tshards\tworkers\tqueries/s")
	for _, r := range rep.EndToEnd {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\n", r.Engine, r.Shards, r.Workers, r.QPS)
	}
	fmt.Fprintln(tw, "kernel A/B (interleaved)\tk\tblock q/s\tper-series q/s\tspeedup")
	for _, r := range rep.KernelAB {
		fmt.Fprintf(tw, "\t%s k=%d\t%.0f\t%.0f\t%.2fx\n", r.Workload, r.K, r.BlockQPS, r.PerSeriesQPS, r.Speedup)
	}
	fmt.Fprintf(tw, "search steady-state allocs\t%.1f\n", rep.SearchSteadyStateAllocs)
	fmt.Fprintf(tw, "load (S=%d)\tversion\tdecode ms\ttree ms\ttotal ms\tre-splits\n", rep.LoadShards)
	for _, r := range rep.Load {
		fmt.Fprintf(tw, "\tv%d\t%.1f\t%.1f\t%.1f\t%d\n",
			r.Version, r.DecodeSeconds*1e3, r.TreeSeconds*1e3, r.TotalSeconds*1e3, r.Splits)
	}
	fmt.Fprintln(tw, "wal sync policy\tinserts/s\tµs/insert\treplay ms")
	for _, r := range rep.WAL {
		fmt.Fprintf(tw, "\t%s\t%.0f\t%.1f\t%.1f\n", r.Policy, r.InsertsPerSec, r.MicrosPerInsert, r.ReplaySeconds*1e3)
	}
	if ch := rep.Chaos; ch != nil {
		fmt.Fprintf(tw, "chaos (S=%d, shard %d down)\tqps %.0f → %.0f\tcoverage mean %.3f\tε: %d exact / %d finite / %d unbounded\n",
			ch.Shards, ch.QuarantinedShard, ch.HealthyQPS, ch.DegradedQPS,
			ch.CoverageMean, ch.EpsilonZero, ch.EpsilonFinite, ch.EpsilonInf)
	}
	if cr := rep.Churn; cr != nil {
		fmt.Fprintln(tw, "churn phase\tlive\ttombstoned\tqueries/s")
		for _, r := range cr.Rows {
			fmt.Fprintf(tw, "\t%s\t%d\t%d\t%.0f\n", r.Phase, r.Live, r.Tombstoned, r.QPS)
		}
		fmt.Fprintf(tw, "compaction pause ms (per shard)\tmean %.1f\tmax %.1f\tre-learns %d\n",
			cr.CompactMeanMs, cr.CompactMaxMs, cr.Relearns)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if cfg.JSONPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "[wrote %s]\n", cfg.JSONPath)
	}
	return nil
}

// BuildReport runs every measurement of the report.
func BuildReport(cfg SuiteConfig) (*PerfReport, error) {
	rep := &PerfReport{
		PR:        10,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		SIMD:      simd.Impl(),
		SIMDBlock: simd.BlockImpl(),
	}
	rep.Kernels = kernelRows()
	// The qps and load measurements share one generated snapshot dataset.
	c := cfg.withDefaults()
	spec, data, err := snapshotData(c)
	if err != nil {
		return nil, err
	}
	rows, err := qpsRows(c, data)
	if err != nil {
		return nil, err
	}
	rep.EndToEnd = rows
	rep.Dataset = spec.Name
	rep.DataSeries = spec.Count
	rep.DataLength = spec.Length
	rep.KernelAB, err = qblockRows(c, data)
	if err != nil {
		return nil, err
	}
	allocs, err := searchSteadyStateAllocs(cfg)
	if err != nil {
		return nil, err
	}
	rep.SearchSteadyStateAllocs = allocs
	loads, _, err := loadRows(c, data)
	if err != nil {
		return nil, err
	}
	rep.Load = loads
	rep.LoadShards = c.Shards
	rep.Chaos, err = chaosReport(c, data)
	if err != nil {
		return nil, err
	}
	rep.WAL, err = walRows(c, data)
	if err != nil {
		return nil, err
	}
	rep.Churn, err = churnReport(c, spec, data)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// kernelRows microbenchmarks every kernel variant via testing.Benchmark on
// fixed synthetic inputs: 256-element series, l=16 words, 256 symbols.
func kernelRows() []KernelRow {
	rng := rand.New(rand.NewSource(9))
	const n, l, alpha = 256, 16, 256
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	word, qr, lower, upper, weights := lbdFixtureSynthetic(rng, l, alpha)
	table := make([]float64, l*alpha)
	for i := range table {
		table[i] = rng.Float64()
	}
	// A leaf-sized SoA block (256 series of l symbols) for the block kernels.
	const blockN = 256
	blockWords := make([]byte, blockN*l)
	for i := range blockWords {
		blockWords[i] = byte(rng.Intn(alpha))
	}
	blockOut := make([]float64, blockN)
	inf := math.Inf(1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"ed_ea_" + simd.Impl(), func() { simd.SquaredEDEA(a, b, inf) }},
		{"ed_ea_portable", func() { simd.SquaredEDEAPortable(a, b, inf) }},
		{"dot_" + simd.Impl(), func() { simd.Dot(a, b) }},
		{"dot_portable", func() { simd.DotPortable(a, b) }},
		{"lbd_gather_" + simd.Impl(), func() { simd.LBDGatherEA(word, qr, lower, upper, weights, alpha, inf) }},
		{"lbd_gather_portable", func() { simd.LBDGatherEAPortable(word, qr, lower, upper, weights, alpha, inf) }},
		{"lbd_gather_emulated", func() { simd.LBDGatherEAEmulated(word, qr, lower, upper, weights, alpha, inf) }},
		{"table_lookup_seq", func() { simd.LookupAccumEASeq(word, table, alpha, inf) }},
		{"table_lookup_vec_" + simd.Impl(), func() { simd.LookupAccumEA(word, table, alpha, inf) }},
		{"table_lookup_portable", func() { simd.LookupAccumEAPortable(word, table, alpha, inf) }},
		// Block-granularity kernels: one call bounds a whole 256-series leaf
		// block, so ns/op here is per LEAF, not per series (divide by 256 to
		// compare against the per-series rows above).
		{"block_table_lookup_" + simd.BlockImpl(), func() { simd.LookupAccumBlockEA(blockWords, blockN, table, alpha, blockOut, inf) }},
		{"block_table_lookup_portable", func() { simd.LookupAccumBlockEAPortable(blockWords, blockN, table, alpha, blockOut, inf) }},
		{"block_lbd_gather_" + simd.BlockImpl(), func() {
			simd.LBDGatherBlockEA(blockWords, blockN, qr, lower, upper, weights, alpha, blockOut, inf)
		}},
		{"block_lbd_gather_portable", func() {
			simd.LBDGatherBlockEAPortable(blockWords, blockN, qr, lower, upper, weights, alpha, blockOut, inf)
		}},
	}
	rows := make([]KernelRow, 0, len(cases))
	for _, c := range cases {
		fn := c.fn
		res := testing.Benchmark(func(tb *testing.B) {
			for i := 0; i < tb.N; i++ {
				fn()
			}
		})
		rows = append(rows, KernelRow{Name: c.name, NsPerOp: float64(res.NsPerOp())})
	}
	return rows
}

// lbdFixtureSynthetic builds a structurally valid LBD problem (sorted
// per-position breakpoints, -Inf/+Inf edge intervals) without needing a
// learned summarization.
func lbdFixtureSynthetic(rng *rand.Rand, l, alpha int) (word []byte, qr, lower, upper, weights []float64) {
	word = make([]byte, l)
	qr = make([]float64, l)
	weights = make([]float64, l)
	lower = make([]float64, l*alpha)
	upper = make([]float64, l*alpha)
	for j := 0; j < l; j++ {
		word[j] = byte(rng.Intn(alpha))
		qr[j] = rng.NormFloat64()
		weights[j] = 1
		step := 6.0 / float64(alpha)
		for sym := 0; sym < alpha; sym++ {
			lower[j*alpha+sym] = -3 + float64(sym)*step
			upper[j*alpha+sym] = -3 + float64(sym+1)*step
		}
		lower[j*alpha+0] = math.Inf(-1)
		upper[j*alpha+alpha-1] = math.Inf(1)
	}
	return
}

// searchSteadyStateAllocs verifies the zero-allocation hot path end to end:
// allocations per Search on a warmed searcher over a small index.
func searchSteadyStateAllocs(cfg SuiteConfig) (float64, error) {
	c := cfg.withDefaults()
	spec := c.Datasets[0]
	spec.Count = 2000
	data, err := dataset.Generate(spec, c.Seed)
	if err != nil {
		return 0, err
	}
	queries, err := dataset.GenerateQueries(spec, 4, c.Seed)
	if err != nil {
		return 0, err
	}
	ix, err := core.Build(data, core.Config{
		Method: core.SOFA, LeafCapacity: 64, Workers: 1, SampleRate: 0.05, Seed: c.Seed,
	})
	if err != nil {
		return 0, err
	}
	s := ix.NewSearcher()
	var searchErr error
	run := func(q []float64) {
		if _, err := s.Search(q, 10); err != nil && searchErr == nil {
			searchErr = err
		}
	}
	for i := 0; i < 3; i++ { // warm every pooled buffer
		run(queries.Row(i % queries.Len()))
	}
	allocs := testing.AllocsPerRun(20, func() { run(queries.Row(0)) })
	if searchErr != nil {
		return 0, searchErr
	}
	return allocs, nil
}
