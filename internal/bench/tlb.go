package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/sax"
	"repro/internal/sfa"
	"repro/internal/stats"
)

// tlbAlphabets is the alphabet sweep of the paper's Table V/VI.
var tlbAlphabets = []int{4, 8, 16, 32, 64, 128, 256}

const tlbWordLength = 16 // the paper fixes l = 16 for the ablation

// tlbForMethod computes the mean tightness of lower bound —
// sqrt(LBD)/trueED averaged over all (query, collection series) pairs —
// for one method at one alphabet size. train is the collection (and the
// MCB learning set), test the queries, following the paper's protocol.
func tlbForMethod(m tlbMethod, bits int, train, test *distance.Matrix) (float64, error) {
	n := train.Stride
	l := tlbWordLength
	var sum float64
	var count int
	if m.IsSAX {
		q, err := sax.NewQuantizer(n, l, bits)
		if err != nil {
			return 0, err
		}
		words := make([]byte, train.Len()*l)
		scratch := make([]float64, l)
		for i := 0; i < train.Len(); i++ {
			if _, err := q.Word(train.Row(i), words[i*l:(i+1)*l], scratch); err != nil {
				return 0, err
			}
		}
		qr := make([]float64, l)
		for qi := 0; qi < test.Len(); qi++ {
			if _, err := q.QueryRepr(test.Row(qi), qr); err != nil {
				return 0, err
			}
			for i := 0; i < train.Len(); i++ {
				ed := math.Sqrt(distance.SquaredED(test.Row(qi), train.Row(i)))
				if ed == 0 {
					continue
				}
				lb := math.Sqrt(q.MinDist(qr, words[i*l:(i+1)*l]))
				sum += lb / ed
				count++
			}
		}
	} else {
		q, err := sfa.Learn(train, sfa.Options{
			WordLength: l,
			Bits:       bits,
			Binning:    m.Binning,
			Selection:  m.Selection,
			SampleRate: 1, // the whole train split, as in the paper's protocol
		})
		if err != nil {
			return 0, err
		}
		tr := q.NewTransformer()
		words := make([]byte, train.Len()*l)
		for i := 0; i < train.Len(); i++ {
			if _, err := tr.Word(train.Row(i), words[i*l:(i+1)*l]); err != nil {
				return 0, err
			}
		}
		qr := make([]float64, l)
		for qi := 0; qi < test.Len(); qi++ {
			if _, err := tr.QueryRepr(test.Row(qi), qr); err != nil {
				return 0, err
			}
			for i := 0; i < train.Len(); i++ {
				ed := math.Sqrt(distance.SquaredED(test.Row(qi), train.Row(i)))
				if ed == 0 {
					continue
				}
				lb := math.Sqrt(q.MinDist(qr, words[i*l:(i+1)*l]))
				sum += lb / ed
				count++
			}
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("bench: no valid TLB pairs")
	}
	return sum / float64(count), nil
}

// tlbSplits abstracts "a list of (train, test) dataset pairs" so the UCR
// and SOFA benchmarks share the sweep code.
type tlbSplit struct {
	Name  string
	Train *distance.Matrix
	Test  *distance.Matrix
}

func ucrSplits(c SuiteConfig) ([]tlbSplit, error) {
	var out []tlbSplit
	for _, spec := range dataset.UCRCatalog() {
		train, test, err := dataset.GenerateUCR(spec, c.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, tlbSplit{spec.Name, train, test})
	}
	return out, nil
}

func sofaSplits(c SuiteConfig) ([]tlbSplit, error) {
	var out []tlbSplit
	for _, spec := range c.Datasets {
		small := spec
		small.Count = 300 // TLB is O(train x test); keep the pair count sane
		train, err := dataset.Generate(small, c.Seed)
		if err != nil {
			return nil, err
		}
		test, err := dataset.GenerateQueries(small, 30, c.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, tlbSplit{spec.Name, train, test})
	}
	return out, nil
}

// tlbSweep computes scores[split][method] at the given alphabet.
func tlbSweep(splits []tlbSplit, bits int) ([][]float64, error) {
	methods := tlbMethods()
	scores := make([][]float64, len(splits))
	for si, sp := range splits {
		scores[si] = make([]float64, len(methods))
		for mi, m := range methods {
			v, err := tlbForMethod(m, bits, sp.Train, sp.Test)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sp.Name, m.Name, err)
			}
			scores[si][mi] = v
		}
	}
	return scores, nil
}

// runTLBTable prints mean TLB per method across the alphabet sweep.
func runTLBTable(splits []tlbSplit, w io.Writer) error {
	methods := tlbMethods()
	tw := newTable(w)
	fmt.Fprint(tw, "method")
	for _, a := range tlbAlphabets {
		fmt.Fprintf(tw, "\ta=%d", a)
	}
	fmt.Fprintln(tw)
	rows := make([][]float64, len(methods))
	for ai, alpha := range tlbAlphabets {
		bits := bitsFor(alpha)
		scores, err := tlbSweep(splits, bits)
		if err != nil {
			return err
		}
		for mi := range methods {
			col := make([]float64, len(splits))
			for si := range splits {
				col[si] = scores[si][mi]
			}
			if rows[mi] == nil {
				rows[mi] = make([]float64, len(tlbAlphabets))
			}
			rows[mi][ai] = stats.Mean(col)
		}
	}
	for mi, m := range methods {
		fmt.Fprint(tw, m.Name)
		for ai := range tlbAlphabets {
			fmt.Fprintf(tw, "\t%.2f", rows[mi][ai])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func bitsFor(alpha int) int {
	bits := 0
	for 1<<bits < alpha {
		bits++
	}
	return bits
}

// RunTable5 reproduces Table V / Fig. 14 left: mean TLB on the UCR-like
// datasets for increasing alphabet sizes.
func RunTable5(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	splits, err := ucrSplits(c)
	if err != nil {
		return err
	}
	return runTLBTable(splits, w)
}

// RunTable6 reproduces Table VI / Fig. 14 right: mean TLB on the 17 SOFA
// datasets for increasing alphabet sizes.
func RunTable6(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	splits, err := sofaSplits(c)
	if err != nil {
		return err
	}
	return runTLBTable(splits, w)
}

// RunFig15 reproduces Fig. 15: mean TLB ranks per method at alphabet 256
// with Wilcoxon-Holm cliques, on both benchmarks (lower rank is better in
// the paper's diagram; we rank higher TLB as better, i.e. rank 1).
func RunFig15(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	for _, bench := range []struct {
		name   string
		splits func(SuiteConfig) ([]tlbSplit, error)
	}{
		{"UCR-like datasets", ucrSplits},
		{"SOFA datasets", sofaSplits},
	} {
		splits, err := bench.splits(c)
		if err != nil {
			return err
		}
		scores, err := tlbSweep(splits, 8) // alphabet 256
		if err != nil {
			return err
		}
		ranks, err := stats.MeanRanks(scores, false) // higher TLB is better
		if err != nil {
			return err
		}
		cliques, err := stats.HolmCliques(scores, 0.05)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (alphabet 256):\n", bench.name)
		tw := newTable(w)
		fmt.Fprintln(tw, "method\tmean rank")
		for mi, m := range tlbMethods() {
			fmt.Fprintf(tw, "%s\t%.4f\n", m.Name, ranks[mi])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if len(cliques) == 0 {
			fmt.Fprintln(w, "cliques: none (all methods pairwise distinguishable)")
		} else {
			fmt.Fprint(w, "indistinguishable pairs (p>=0.05 Wilcoxon-Holm):")
			ms := tlbMethods()
			for _, p := range cliques {
				fmt.Fprintf(w, " [%s ~ %s]", ms[p[0]].Name, ms[p[1]].Name)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
