package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/distance"
)

// WALRow is one sync policy's durable-insert measurement: sustained insert
// throughput with the write-ahead log under that policy (the explicit Sync
// barrier is inside the timed region, so "none" and "interval" pay their
// deferred fsync too), plus the cost of replaying the log on the next open.
type WALRow struct {
	Policy          string  `json:"policy"`
	Inserts         int     `json:"inserts"`
	Seconds         float64 `json:"seconds"`
	InsertsPerSec   float64 `json:"inserts_per_sec"`
	MicrosPerInsert float64 `json:"micros_per_insert"`
	WALBytes        int64   `json:"wal_bytes"`
	// ReplaySeconds is what the next Recover pays to re-apply this log
	// (container load excluded: measured as recover-with-log minus
	// recover-with-empty-log is not worth the noise at this scale, so this
	// is the full Recover wall time — compare across rows, not to zero).
	ReplaySeconds float64 `json:"replay_seconds"`
}

// RunWAL measures durable insert throughput by WAL sync policy — the
// durability experiment: the same snapshot index is opened as a Store under
// each policy and a stream of inserts is appended through the WAL. The
// spread between "none" and "always" is the per-insert price of an fsync on
// this machine's storage; "interval" buys back most of it at a bounded
// data-loss window (see the README's durability table).
func RunWAL(cfg SuiteConfig, w io.Writer) error {
	c := cfg.withDefaults()
	spec, data, err := snapshotData(c)
	if err != nil {
		return err
	}
	rows, err := walRows(c, data)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintf(tw, "dataset\t%s\tseries\t%d\tlength\t%d\tshards\t%d\n",
		spec.Name, spec.Count, spec.Length, c.Shards)
	fmt.Fprintln(tw, "sync policy\tinserts\tinserts/s\tµs/insert\tWAL MB\treplay ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\t%.2f\t%.1f\n",
			r.Policy, r.Inserts, r.InsertsPerSec, r.MicrosPerInsert,
			float64(r.WALBytes)/(1<<20), r.ReplaySeconds*1e3)
	}
	return tw.Flush()
}

// walRows builds the snapshot index once, then measures each sync policy
// against a fresh copy of it (loaded from an in-memory container, so the
// base index is byte-identical across policies and insert ids line up). c
// must already be defaulted.
func walRows(c SuiteConfig, data *distance.Matrix) ([]WALRow, error) {
	ix, err := core.Build(data, core.Config{
		Method:       core.SOFA,
		LeafCapacity: c.LeafCapacity,
		Shards:       c.Shards,
		SampleRate:   0.01,
		Seed:         c.Seed,
	})
	if err != nil {
		return nil, err
	}
	var container bytes.Buffer
	if err := core.Save(ix, &container); err != nil {
		return nil, err
	}
	n := data.Stride
	policies := []struct {
		cfg     core.DurableConfig
		inserts int
	}{
		// SyncAlways pays one fsync per insert; keep its batch small enough
		// that slow storage does not stall the suite.
		{core.DurableConfig{Sync: core.SyncNone}, 2048},
		{core.DurableConfig{Sync: core.SyncInterval, SyncInterval: 10 * time.Millisecond}, 2048},
		{core.DurableConfig{Sync: core.SyncAlways}, 256},
	}
	rows := make([]WALRow, 0, len(policies))
	for _, p := range policies {
		fresh, err := core.Load(bytes.NewReader(container.Bytes()))
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "sofa-bench-wal")
		if err != nil {
			return nil, err
		}
		row, err := walRow(fresh, dir, p.cfg, p.inserts, n, c.Seed)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func walRow(ix *core.Index, dir string, cfg core.DurableConfig, inserts, n int, seed int64) (WALRow, error) {
	st, err := core.CreateStore(dir, ix, cfg)
	if err != nil {
		return WALRow{}, err
	}
	// Pre-generate the insert stream (random walks) so the timed region is
	// the durable write path alone.
	rng := rand.New(rand.NewSource(seed + 7))
	batch := make([][]float64, inserts)
	for i := range batch {
		s := make([]float64, n)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		batch[i] = s
	}
	start := time.Now()
	for _, s := range batch {
		if _, err := st.Insert(s); err != nil {
			st.Close()
			return WALRow{}, err
		}
	}
	// The durability barrier belongs inside the timed region: without it the
	// deferred-sync policies would be credited for work they haven't done.
	if err := st.Sync(); err != nil {
		st.Close()
		return WALRow{}, err
	}
	elapsed := time.Since(start).Seconds()
	walBytes := st.WALSize()
	if err := st.Close(); err != nil {
		return WALRow{}, err
	}
	replayStart := time.Now()
	re, err := core.Recover(dir, cfg)
	if err != nil {
		return WALRow{}, err
	}
	replay := time.Since(replayStart).Seconds()
	if got := re.RecoveryStats().Replayed; got != inserts {
		re.Close()
		return WALRow{}, fmt.Errorf("bench: wal recover replayed %d records, want %d", got, inserts)
	}
	if err := re.Close(); err != nil {
		return WALRow{}, err
	}
	return WALRow{
		Policy:          cfg.Sync.String(),
		Inserts:         inserts,
		Seconds:         elapsed,
		InsertsPerSec:   float64(inserts) / elapsed,
		MicrosPerInsert: elapsed / float64(inserts) * 1e6,
		WALBytes:        walBytes,
		ReplaySeconds:   replay,
	}, nil
}
