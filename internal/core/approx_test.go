package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
)

func approxFixture(t testing.TB, count int) (*Index, *distance.Matrix, *distance.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	data := mixedMatrix(rng, count, 96)
	queries := mixedMatrix(rng, 20, 96)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return ix, data, queries
}

func TestSearchApproximateUpperBoundsExact(t *testing.T) {
	ix, data, queries := approxFixture(t, 600)
	s := ix.NewSearcher()
	rng := rand.New(rand.NewSource(99))
	var approxSum, randomSum float64
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.Row(qi)
		approx, err := s.SearchApproximate(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) != 1 {
			t.Fatalf("query %d: %d approximate results", qi, len(approx))
		}
		exact := bruteKNN(data, q, 1)[0]
		if approx[0].Dist < exact-1e-9 {
			t.Fatalf("query %d: approximate distance %v below exact %v (impossible)",
				qi, approx[0].Dist, exact)
		}
		approxSum += math.Sqrt(approx[0].Dist) / math.Sqrt(exact)
		randomSum += math.Sqrt(distance.SquaredED(distance.ZNormalized(q), data.Row(rng.Intn(data.Len())))) /
			math.Sqrt(exact)
	}
	// The approximate leaf is the tree's best guess; it must be distinctly
	// better than picking a random series from the collection.
	approxMean := approxSum / float64(queries.Len())
	randomMean := randomSum / float64(queries.Len())
	if approxMean > 0.8*randomMean {
		t.Errorf("approximate ratio %.2f not clearly better than random candidate %.2f",
			approxMean, randomMean)
	}
}

func TestSearchApproximateValidation(t *testing.T) {
	ix, _, _ := approxFixture(t, 100)
	s := ix.NewSearcher()
	if _, err := s.SearchApproximate(make([]float64, 10), 1); err == nil {
		t.Error("expected query length error")
	}
	if _, err := s.SearchApproximate(make([]float64, 96), 0); err == nil {
		t.Error("expected k error")
	}
}

func TestSearchEpsilonZeroIsExact(t *testing.T) {
	ix, data, queries := approxFixture(t, 500)
	s := ix.NewSearcher()
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.Row(qi)
		res, err := s.SearchEpsilon(q, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(data, q, 3)
		for i := range want {
			if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
				t.Fatalf("epsilon=0 inexact: rank %d got %v want %v", i, res[i].Dist, want[i])
			}
		}
	}
}

func TestSearchEpsilonValidation(t *testing.T) {
	ix, _, _ := approxFixture(t, 100)
	s := ix.NewSearcher()
	if _, err := s.SearchEpsilon(make([]float64, 96), 1, -0.5); err == nil {
		t.Error("expected negative-epsilon error")
	}
}

// The ε guarantee: every returned squared distance is within (1+ε)² of the
// corresponding exact squared k-NN distance, for random ε and workloads.
func TestSearchEpsilonGuaranteeProperty(t *testing.T) {
	ix, data, _ := approxFixture(t, 400)
	s := ix.NewSearcher()
	f := func(seed int64, epsRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := math.Mod(math.Abs(epsRaw), 2) // ε in [0, 2)
		if math.IsNaN(eps) {
			eps = 0.5
		}
		q := make([]float64, 96)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(5)
		res, err := s.SearchEpsilon(q, k, eps)
		if err != nil {
			return false
		}
		exact := bruteKNN(data, q, k)
		factor := (1 + eps) * (1 + eps)
		for i := range res {
			if res[i].Dist > exact[i]*factor+1e-9 {
				return false
			}
			// Results can never beat the exact optimum at the same rank.
			if res[i].Dist < exact[i]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Larger ε must not do more refinement work than exact search.
func TestSearchEpsilonPrunesMore(t *testing.T) {
	ix, _, queries := approxFixture(t, 2000)
	s := ix.NewSearcher()
	var workExact, workLoose int64
	for qi := 0; qi < queries.Len(); qi++ {
		if _, err := s.SearchEpsilon(queries.Row(qi), 1, 0); err != nil {
			t.Fatal(err)
		}
		workExact += s.LastStats().SeriesLBD
		if _, err := s.SearchEpsilon(queries.Row(qi), 1, 1.0); err != nil {
			t.Fatal(err)
		}
		workLoose += s.LastStats().SeriesLBD
	}
	if workLoose > workExact {
		t.Errorf("ε=1 did more LBD work (%d) than exact (%d)", workLoose, workExact)
	}
}

func TestSearchBatch(t *testing.T) {
	ix, data, queries := approxFixture(t, 400)
	batch, err := ix.SearchBatch(queries, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != queries.Len() {
		t.Fatalf("batch size %d", len(batch))
	}
	for qi := range batch {
		want := bruteKNN(data, queries.Row(qi), 5)
		if len(batch[qi]) != 5 {
			t.Fatalf("query %d: %d results", qi, len(batch[qi]))
		}
		for i := range want {
			if math.Abs(batch[qi][i].Dist-want[i]) > 1e-7*(want[i]+1) {
				t.Fatalf("query %d rank %d: got %v want %v", qi, i, batch[qi][i].Dist, want[i])
			}
		}
	}
}

func TestSearchBatchValidation(t *testing.T) {
	ix, _, _ := approxFixture(t, 100)
	if _, err := ix.SearchBatch(nil, 1, 0); err == nil {
		t.Error("expected empty batch error")
	}
	if _, err := ix.SearchBatch(distance.NewMatrix(2, 10), 1, 0); err == nil {
		t.Error("expected stride error")
	}
	if _, err := ix.SearchBatch(distance.NewMatrix(2, 96), 0, 0); err == nil {
		t.Error("expected k error")
	}
}
