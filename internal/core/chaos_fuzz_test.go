//go:build faultinject

package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// FuzzFaultSchedule fuzzes the space of injection plans against the query
// path: any seeded schedule (site × mode × trigger shape) must never let a
// panic escape the containment layer, must never mislabel a degraded answer
// as complete, and — whenever the plan happens not to fire — must leave the
// results bit-identical to the fault-free baseline. Wired into the chaos CI
// job for a continuous short pass (~20s with -fuzztime).

var (
	fuzzOnce     sync.Once
	fuzzIx       *Index
	fuzzQueries  [][]float64
	fuzzBaseline [][]Result
)

func fuzzCollection(tb testing.TB) (*Index, [][]float64, [][]Result) {
	fuzzOnce.Do(func() {
		rng := rand.New(rand.NewSource(851))
		data := mixedMatrix(rng, 400, 48)
		ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Shards: 4})
		if err != nil {
			tb.Fatal(err)
		}
		qm := mixedMatrix(rng, 3, 48)
		queries := make([][]float64, qm.Len())
		baseline := make([][]Result, qm.Len())
		s := ix.NewSearcher()
		for i := range queries {
			queries[i] = qm.Row(i)
			res, err := s.Search(queries[i], 5)
			if err != nil {
				tb.Fatal(err)
			}
			baseline[i] = append([]Result(nil), res...)
		}
		fuzzIx, fuzzQueries, fuzzBaseline = ix, queries, baseline
	})
	return fuzzIx, fuzzQueries, fuzzBaseline
}

func FuzzFaultSchedule(f *testing.F) {
	// Representative corners: each mode at each query-path site, nth-call and
	// probabilistic schedules, serial and parallel searchers.
	f.Add(uint8(0), uint8(2), uint8(0), uint8(1), uint16(0), uint64(1), true)
	f.Add(uint8(1), uint8(2), uint8(1), uint8(2), uint16(0), uint64(2), false)
	f.Add(uint8(2), uint8(0), uint8(2), uint8(0), uint16(30000), uint64(3), true)
	f.Add(uint8(0), uint8(1), uint8(2), uint8(0), uint16(65535), uint64(4), false)
	f.Add(uint8(2), uint8(2), uint8(1), uint8(1), uint16(0), uint64(5), true)

	f.Fuzz(func(t *testing.T, siteSel, modeSel, schedSel, n uint8, prob uint16, seed uint64, parallel bool) {
		ix, queries, baseline := fuzzCollection(t)
		col := ix.Collection()
		sites := faultinject.Sites()
		site := sites[int(siteSel)%len(sites)]
		trig := faultinject.Trigger{Mode: faultinject.Mode(int(modeSel) % 3)}
		switch int(schedSel) % 3 {
		case 0:
			trig.OnCall = uint64(n%16) + 1
		case 1:
			trig.EveryN = uint64(n%8) + 1
		default:
			trig.Prob = float64(prob) / 65536
			trig.Seed = seed
		}
		trig.Count = uint64(n % 4) // 0 = unbounded

		faultinject.Reset()
		for i := 0; i < col.Shards(); i++ {
			if err := col.Reinstate(i); err != nil {
				t.Fatal(err)
			}
		}
		defer faultinject.Reset()
		faultinject.Arm(site, trig)

		var s *Searcher
		if parallel {
			s = ix.NewSearcher()
		} else {
			s = col.newSerialSearcher()
		}
		for qi, q := range queries {
			res, err := s.SearchPlan(context.Background(), q, Plan{K: 5, AllowPartial: true}, nil)
			m := s.LastMeta()
			switch {
			case err != nil:
				// The only acceptable failure is a degraded query with no
				// survivors (or an all-shard fault): always ErrDegraded.
				if !errors.Is(err, ErrDegraded) {
					t.Fatalf("site=%s trig=%+v q=%d: err %v does not wrap ErrDegraded", site, trig, qi, err)
				}
			case m.ShardsFailed == 0:
				// Claimed complete: must be bit-identical to the baseline.
				if len(res) != len(baseline[qi]) {
					t.Fatalf("site=%s trig=%+v q=%d: %d results, baseline %d", site, trig, qi, len(res), len(baseline[qi]))
				}
				for r := range res {
					if res[r] != baseline[qi][r] {
						t.Fatalf("site=%s trig=%+v q=%d rank %d: non-degraded %+v != baseline %+v",
							site, trig, qi, r, res[r], baseline[qi][r])
					}
				}
				if m.EpsilonBound != 0 {
					t.Fatalf("site=%s trig=%+v q=%d: complete answer with ε=%v", site, trig, qi, m.EpsilonBound)
				}
			default:
				// Degraded but answered: non-empty with a non-negative bound.
				if len(res) == 0 {
					t.Fatalf("site=%s trig=%+v q=%d: degraded nil-error answer is empty", site, trig, qi)
				}
				if m.EpsilonBound < 0 {
					t.Fatalf("site=%s trig=%+v q=%d: negative ε %v", site, trig, qi, m.EpsilonBound)
				}
				if m.ShardsSearched+m.ShardsFailed != col.Shards() {
					t.Fatalf("site=%s trig=%+v q=%d: meta %+v does not partition %d shards",
						site, trig, qi, m, col.Shards())
				}
			}
		}
	})
}
