//go:build faultinject

package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
)

// The chaos suite: deterministic fault injection (panics, errors, transient
// read failures) against the collection's containment layer. Build with
// -tags faultinject; the CI chaos job runs it under -race as well.

// chaosIndex builds a small sharded index and a disjoint query set.
func chaosIndex(tb testing.TB, shards int) (*Index, [][]float64) {
	tb.Helper()
	faultinject.Reset()
	rng := rand.New(rand.NewSource(831))
	data := mixedMatrix(rng, 600, 48)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Shards: shards})
	if err != nil {
		tb.Fatal(err)
	}
	qm := mixedMatrix(rng, 4, 48)
	queries := make([][]float64, qm.Len())
	for i := range queries {
		queries[i] = qm.Row(i)
	}
	return ix, queries
}

// TestChaosKillOneShardMidQuery is the acceptance matrix: for S ∈ {2,4,8}
// and every instrumented query-path site, killing one shard mid-query with
// an injected panic yields — under AllowPartial — non-empty results, an
// accurate failed-shard count, a sound ε certificate, and never a process
// panic; after the fault clears, the respawned searcher answers the complete
// query bit-identically again.
func TestChaosKillOneShardMidQuery(t *testing.T) {
	const k = 5
	for _, shards := range []int{2, 4, 8} {
		ix, queries := chaosIndex(t, shards)
		s := ix.NewSearcher()
		full := make([][]Result, len(queries))
		for qi, q := range queries {
			res, err := s.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			full[qi] = append([]Result(nil), res...)
		}
		for _, site := range []string{
			faultinject.SiteShardSeed,
			faultinject.SiteShardFinish,
			faultinject.SiteKernel,
		} {
			faultinject.Arm(site, faultinject.Trigger{Mode: faultinject.ModePanic, OnCall: 1})
			res, err := s.SearchPlan(context.Background(), queries[0], Plan{K: k, AllowPartial: true}, nil)
			if err != nil {
				t.Fatalf("S=%d site=%s: partial query failed: %v", shards, site, err)
			}
			if len(res) == 0 {
				t.Fatalf("S=%d site=%s: partial query returned nothing", shards, site)
			}
			m := s.LastMeta()
			if m.ShardsFailed != 1 || m.ShardsSearched != shards-1 {
				t.Fatalf("S=%d site=%s: meta %+v, want exactly one failed shard", shards, site, m)
			}
			if m.EpsilonBound < 0 {
				t.Fatalf("S=%d site=%s: negative ε %v", shards, site, m.EpsilonBound)
			}
			if !math.IsInf(m.EpsilonBound, 1) {
				for r := range res {
					got, want := math.Sqrt(res[r].Dist), math.Sqrt(full[0][r].Dist)
					if got > (1+m.EpsilonBound)*want*(1+1e-9) {
						t.Fatalf("S=%d site=%s rank %d: %v exceeds (1+%v)·%v — certificate unsound",
							shards, site, r, got, m.EpsilonBound, want)
					}
				}
			}
			if fired := faultinject.Fired(site); fired != 1 {
				t.Fatalf("S=%d site=%s: %d faults fired, want 1", shards, site, fired)
			}
			faultinject.Disarm(site)
			// One panic never quarantines; the respawned shard searcher
			// answers the complete query again, bit for bit.
			if got := ix.Collection().Quarantined(); got != nil {
				t.Fatalf("S=%d site=%s: quarantined %v after a single panic", shards, site, got)
			}
			for qi, q := range queries {
				res, err := s.Search(q, k)
				if err != nil {
					t.Fatalf("S=%d site=%s: post-fault query: %v", shards, site, err)
				}
				for r := range res {
					if res[r] != full[qi][r] {
						t.Fatalf("S=%d site=%s q=%d rank %d: post-fault %+v != %+v",
							shards, site, qi, r, res[r], full[qi][r])
					}
				}
			}
		}
	}
}

// TestChaosFailFastDefault: without AllowPartial an injected shard panic
// fails the query with an error chain exposing both the sentinel and the
// recovered panic.
func TestChaosFailFastDefault(t *testing.T) {
	ix, queries := chaosIndex(t, 4)
	defer faultinject.Reset()
	s := ix.NewSearcher()
	faultinject.Arm(faultinject.SiteShardFinish, faultinject.Trigger{Mode: faultinject.ModePanic, OnCall: 1})
	_, err := s.Search(queries[0], 5)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("fail-fast err = %v, want ErrDegraded", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("fail-fast err = %v, want *PanicError in the chain", err)
	}
	if _, ok := pe.Value.(faultinject.Panic); !ok {
		t.Fatalf("recovered panic value %T, want faultinject.Panic", pe.Value)
	}
	if pe.Shard < 0 || pe.Shard >= 4 {
		t.Fatalf("panic attributed to shard %d", pe.Shard)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("recovered panic carries no stack")
	}
}

// TestChaosErrorModeShardFault: injected (non-panic) engine errors are shard
// faults too — attributed, degradable, and visible through errors.Is/As.
func TestChaosErrorModeShardFault(t *testing.T) {
	ix, queries := chaosIndex(t, 4)
	defer faultinject.Reset()
	s := ix.NewSearcher()
	faultinject.Arm(faultinject.SiteShardSeed, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	_, err := s.Search(queries[0], 5)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
	if !faultinject.IsInjected(se.Err) {
		t.Fatalf("shard error cause %v is not the injected error", se.Err)
	}
	faultinject.Reset()
	faultinject.Arm(faultinject.SiteShardSeed, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	res, err := s.SearchPlan(context.Background(), queries[0], Plan{K: 5, AllowPartial: true}, nil)
	if err != nil || len(res) == 0 {
		t.Fatalf("partial with injected error: %v (%d results)", err, len(res))
	}
	if m := s.LastMeta(); m.ShardsFailed != 1 {
		t.Fatalf("meta %+v", m)
	}
}

// TestChaosQuarantineAfterConsecutivePanics drives one shard to the
// quarantine threshold with a deterministic schedule: on a serial searcher
// over 2 shards, an every-2nd-call seed panic hits shard 1 on every query
// until the third strike quarantines it, after which the hook is no longer
// reached and the degraded answers keep flowing.
func TestChaosQuarantineAfterConsecutivePanics(t *testing.T) {
	ix, queries := chaosIndex(t, 2)
	defer faultinject.Reset()
	col := ix.Collection()
	s := col.newSerialSearcher()
	faultinject.Arm(faultinject.SiteShardSeed, faultinject.Trigger{Mode: faultinject.ModePanic, EveryN: 2})
	for strike := 1; strike <= 3; strike++ {
		res, err := s.SearchPlan(context.Background(), queries[0], Plan{K: 5, AllowPartial: true}, nil)
		if err != nil || len(res) == 0 {
			t.Fatalf("strike %d: %v (%d results)", strike, err, len(res))
		}
		if m := s.LastMeta(); m.ShardsFailed != 1 {
			t.Fatalf("strike %d: meta %+v", strike, m)
		}
		want := []int(nil)
		if strike >= 3 {
			want = []int{1}
		}
		got := col.Quarantined()
		if len(got) != len(want) || (len(got) == 1 && got[0] != want[0]) {
			t.Fatalf("strike %d: quarantined %v, want %v", strike, got, want)
		}
	}
	// The quarantined shard is gated before its hook site: the armed trigger
	// stops firing, and queries stay degraded-but-answered.
	calls := faultinject.Calls(faultinject.SiteShardSeed)
	res, err := s.SearchPlan(context.Background(), queries[1], Plan{K: 5, AllowPartial: true}, nil)
	if err != nil || len(res) == 0 {
		t.Fatalf("post-quarantine query: %v", err)
	}
	if got := faultinject.Calls(faultinject.SiteShardSeed); got != calls+1 {
		t.Fatalf("seed hook reached %d times post-quarantine, want %d (healthy shard only)", got-calls, 1)
	}
	// Reinstate + disarm restores complete answers.
	faultinject.Reset()
	if err := col.Reinstate(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SearchPlan(context.Background(), queries[0], Plan{K: 5}, nil); err != nil {
		t.Fatalf("post-reinstate: %v", err)
	}
	if m := s.LastMeta(); m.ShardsFailed != 0 || m.ShardsSearched != 2 {
		t.Fatalf("post-reinstate meta %+v", m)
	}
}

// TestChaosPanicCounterResetsOnSuccess: the quarantine policy counts
// consecutive faulting queries — a fully successful search of the shard
// resets its strike count, so intermittent faults never accumulate to
// quarantine.
func TestChaosPanicCounterResetsOnSuccess(t *testing.T) {
	ix, queries := chaosIndex(t, 2)
	defer faultinject.Reset()
	col := ix.Collection()
	s := col.newSerialSearcher()
	for round := 0; round < 4; round++ {
		faultinject.Arm(faultinject.SiteShardSeed, faultinject.Trigger{Mode: faultinject.ModePanic, OnCall: 1})
		if _, err := s.SearchPlan(context.Background(), queries[0], Plan{K: 5, AllowPartial: true}, nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		faultinject.Disarm(faultinject.SiteShardSeed)
		// A clean query in between resets every shard's strikes.
		if _, err := s.SearchPlan(context.Background(), queries[1], Plan{K: 5}, nil); err != nil {
			t.Fatalf("round %d healthy query: %v", round, err)
		}
	}
	if got := col.Quarantined(); got != nil {
		t.Fatalf("intermittent faults quarantined %v", got)
	}
	for i := range col.health {
		if n := col.health[i].panics.Load(); n != 0 {
			t.Fatalf("shard %d strike count %d after healthy query", i, n)
		}
	}
}

// TestChaosStreamWorkerPanic: an injected panic in a stream worker costs that
// query (answered with a *PanicError) and nothing else — the worker survives,
// respawns its searcher, and answers the next query exactly.
func TestChaosStreamWorkerPanic(t *testing.T) {
	ix, queries := chaosIndex(t, 2)
	defer faultinject.Reset()
	want, err := ix.NewSearcher().Search(queries[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	wantCopy := append([]Result(nil), want...)

	type answer struct {
		res []Result
		err error
	}
	got := make(chan answer, 2)
	st, err := ix.NewStream(5, 1, func(qid uint64, res []Result, err error) {
		got <- answer{append([]Result(nil), res...), err}
	})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SiteStreamWorker, faultinject.Trigger{Mode: faultinject.ModePanic, OnCall: 1})
	if _, err := st.Submit(queries[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(queries[1]); err != nil {
		t.Fatal(err)
	}
	a1, a2 := <-got, <-got
	var pe *PanicError
	if !errors.As(a1.err, &pe) || pe.Shard != -1 {
		t.Fatalf("injected worker panic answered with %v, want *PanicError (shard -1)", a1.err)
	}
	if a2.err != nil {
		t.Fatalf("query after worker panic: %v", a2.err)
	}
	if len(a2.res) != len(wantCopy) {
		t.Fatalf("%d results after respawn, want %d", len(a2.res), len(wantCopy))
	}
	for i := range wantCopy {
		if a2.res[i] != wantCopy[i] {
			t.Fatalf("rank %d after respawn: %+v != %+v", i, a2.res[i], wantCopy[i])
		}
	}
	st.Close()
}

// TestChaosStreamSubmitError: injected submit-side faults surface to the
// submitter, not the handler, and do not poison the stream.
func TestChaosStreamSubmitError(t *testing.T) {
	ix, queries := chaosIndex(t, 2)
	defer faultinject.Reset()
	got := make(chan error, 1)
	st, err := ix.NewStream(5, 1, func(qid uint64, res []Result, err error) { got <- err })
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SiteStreamSubmit, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	if _, err := st.Submit(queries[0]); !faultinject.IsInjected(err) {
		t.Fatalf("submit err = %v, want injected", err)
	}
	if _, err := st.Submit(queries[0]); err != nil {
		t.Fatalf("submit after injected fault: %v", err)
	}
	if err := <-got; err != nil {
		t.Fatalf("handler err: %v", err)
	}
	st.Close()
}

// TestChaosPersistReadFaults covers the loader's retry ladder: a bounded
// transient fault is retried through; a persistent transient fault exhausts
// the budget and fails; a hard fault fails immediately.
func TestChaosPersistReadFaults(t *testing.T) {
	ix, queries := chaosIndex(t, 2)
	defer faultinject.Reset()
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	want, err := ix.NewSearcher().Search(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	wantCopy := append([]Result(nil), want...)

	// One transient fault mid-stream: the retry clears it and the load
	// succeeds, answering identically (f32 round trip aside, the loaded
	// index matches a clean load, which matches the build within tolerance —
	// compare against a clean load for exactness).
	faultinject.Arm(faultinject.SitePersistRead, faultinject.Trigger{Mode: faultinject.ModeTransient, OnCall: 1, Count: 1})
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load with one transient read fault: %v", err)
	}
	if fired := faultinject.Fired(faultinject.SitePersistRead); fired != 1 {
		t.Fatalf("%d transient faults fired, want 1", fired)
	}
	faultinject.Reset()
	res, err := loaded.NewSearcher().Search(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(wantCopy) {
		t.Fatalf("loaded index answered %d results, want %d", len(res), len(wantCopy))
	}

	// Persistent transient faults exhaust the bounded retry budget.
	faultinject.Arm(faultinject.SitePersistRead, faultinject.Trigger{Mode: faultinject.ModeTransient, EveryN: 1})
	if _, err := Load(bytes.NewReader(buf.Bytes())); !faultinject.IsTransient(err) {
		t.Fatalf("persistent transient load err = %v, want exhausted injected transient", err)
	}
	faultinject.Reset()

	// Hard faults are not retried.
	faultinject.Arm(faultinject.SitePersistRead, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	if _, err := Load(bytes.NewReader(buf.Bytes())); !faultinject.IsInjected(err) {
		t.Fatalf("hard read fault load err = %v, want injected", err)
	}
	if calls := faultinject.Calls(faultinject.SitePersistRead); calls != 1 {
		t.Fatalf("hard fault retried: %d hook calls, want 1", calls)
	}
}

// TestChaosDisarmedIsClean: with the harness compiled in but nothing armed,
// queries are bit-identical to the armed-then-disarmed state — the hooks
// observe, never perturb.
func TestChaosDisarmedIsClean(t *testing.T) {
	ix, queries := chaosIndex(t, 4)
	defer faultinject.Reset()
	s := ix.NewSearcher()
	base := make([][]Result, len(queries))
	for qi, q := range queries {
		res, err := s.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		base[qi] = append([]Result(nil), res...)
	}
	faultinject.Arm(faultinject.SiteShardFinish, faultinject.Trigger{Mode: faultinject.ModePanic, OnCall: 1})
	if _, err := s.SearchPlan(context.Background(), queries[0], Plan{K: 5, AllowPartial: true}, nil); err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	for qi, q := range queries {
		res, err := s.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for r := range res {
			if res[r] != base[qi][r] {
				t.Fatalf("q=%d rank %d: %+v != %+v after disarm", qi, r, res[r], base[qi][r])
			}
		}
	}
}

// TestChaosMutationFaults covers the two mutation-path injection sites: a
// fault at SiteTombstone fails Delete/Upsert cleanly with the row still
// live and search results untouched, and a fault at SiteCompactSwap fails
// CompactShard with the old state standing — tombstones unreclaimed,
// results unchanged — until a clean retry reclaims them.
func TestChaosMutationFaults(t *testing.T) {
	const k = 5
	ix, queries := chaosIndex(t, 2)
	defer faultinject.Reset()
	s := ix.NewSearcher()
	res, err := s.Search(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	baseline := append([]Result(nil), res...)
	victim := baseline[0].ID

	check := func(stage string, want []Result, wantTomb int) {
		t.Helper()
		if got := ix.Collection().Tombstoned(); got != wantTomb {
			t.Fatalf("%s: %d tombstoned rows, want %d", stage, got, wantTomb)
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants: %v", stage, err)
		}
		res, err := s.Search(queries[0], k)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		for r := range res {
			if res[r] != want[r] {
				t.Fatalf("%s rank %d: %+v != %+v", stage, r, res[r], want[r])
			}
		}
	}

	// A faulted delete surfaces the injected error and changes nothing.
	faultinject.Arm(faultinject.SiteTombstone, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	var inj *faultinject.InjectedError
	if err := ix.Delete(victim); !errors.As(err, &inj) {
		t.Fatalf("faulted delete: %v, want injected error", err)
	}
	check("after faulted delete", baseline, 0)

	// A faulted upsert fires the same site and keeps the old value.
	faultinject.Arm(faultinject.SiteTombstone, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	if err := ix.Upsert(victim, queries[1]); !errors.As(err, &inj) {
		t.Fatalf("faulted upsert: %v, want injected error", err)
	}
	check("after faulted upsert", baseline, 0)

	// Disarmed, the delete goes through; the victim leaves the results.
	faultinject.Disarm(faultinject.SiteTombstone)
	if err := ix.Delete(victim); err != nil {
		t.Fatal(err)
	}
	res, err = s.Search(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	deleted := append([]Result(nil), res...)
	for _, r := range deleted {
		if r.ID == victim {
			t.Fatalf("deleted id %d still in results", victim)
		}
	}

	// A faulted compaction swap leaves the tombstone unreclaimed and the
	// answers unchanged (the rebuilt shard is discarded, never published).
	shard := int(victim) % ix.Shards()
	faultinject.Arm(faultinject.SiteCompactSwap, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	if err := ix.CompactShard(shard); !errors.As(err, &inj) {
		t.Fatalf("faulted compaction: %v, want injected error", err)
	}
	check("after faulted compaction", deleted, 1)

	// A clean retry reclaims the row and answers identically.
	faultinject.Disarm(faultinject.SiteCompactSwap)
	if err := ix.CompactShard(shard); err != nil {
		t.Fatal(err)
	}
	check("after clean compaction", deleted, 0)
}
