package core

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/distance"
	"repro/internal/index"
)

// The churn property suite: randomized interleaves of Insert, Delete, Upsert,
// and Search are differentially checked against a brute-force oracle over the
// set of surviving series, across compaction (which must not change a single
// result bit — public ids are stable and exact search refines with true
// distances) and across crash-and-recover points that replay the typed WAL
// records. Run with -race to additionally prove the mutation/compaction
// concurrency contract.

// churnModel mirrors the collection's visible state: the stored (normalized)
// series of every live public id, plus every id ever retired by Delete.
type churnModel struct {
	live    map[index.ID][]float64
	ids     []index.ID // live ids in arbitrary but deterministic order
	pos     map[index.ID]int
	retired []index.ID
}

func newChurnModel(data *distance.Matrix) *churnModel {
	m := &churnModel{live: map[index.ID][]float64{}, pos: map[index.ID]int{}}
	for i := 0; i < data.Len(); i++ {
		m.add(index.ID(i), append([]float64(nil), data.Row(i)...))
	}
	return m
}

func (m *churnModel) add(id index.ID, stored []float64) {
	m.live[id] = stored
	m.pos[id] = len(m.ids)
	m.ids = append(m.ids, id)
}

func (m *churnModel) delete(id index.ID) {
	p := m.pos[id]
	last := len(m.ids) - 1
	m.ids[p] = m.ids[last]
	m.pos[m.ids[p]] = p
	m.ids = m.ids[:last]
	delete(m.pos, id)
	delete(m.live, id)
	m.retired = append(m.retired, id)
}

func (m *churnModel) pick(rng *rand.Rand) index.ID { return m.ids[rng.Intn(len(m.ids))] }

// modelKNN is the brute-force oracle: exact k-NN over the model's live
// series, sorted by (distance, id).
func (m *churnModel) modelKNN(query []float64, k int) []index.Result {
	q := distance.ZNormalized(query)
	res := make([]index.Result, 0, len(m.ids))
	for _, id := range m.ids {
		res = append(res, index.Result{ID: id, Dist: distance.SquaredED(m.live[id], q)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].ID < res[j].ID
	})
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

// checkAgainstModel compares one search against the oracle: the distance at
// every rank within kernel tolerance, and the returned id set exactly the
// oracle's (both sides sort ascending; ties are broken arbitrarily but the
// fixed seeds make any divergence deterministic).
func checkAgainstModel(t *testing.T, m *churnModel, got []index.Result, query []float64, k int) {
	t.Helper()
	want := m.modelKNN(query, k)
	if len(got) != len(want) {
		t.Fatalf("%d results, oracle has %d", len(got), len(want))
	}
	gotIDs := map[index.ID]bool{}
	for r := range got {
		if d := math.Abs(got[r].Dist - want[r].Dist); d > 1e-7*(1+want[r].Dist) {
			t.Fatalf("rank %d: dist %v, oracle %v", r, got[r].Dist, want[r].Dist)
		}
		gotIDs[got[r].ID] = true
	}
	for _, w := range want {
		if !gotIDs[w.ID] {
			t.Fatalf("oracle id %d missing from results %v", w.ID, got)
		}
	}
}

func churnSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := 0.0
	for j := range s {
		v += rng.NormFloat64()
		s[j] = v
	}
	return s
}

// churnStep applies one random mutation to ix and the model in lockstep,
// including the negative paths: mutations against retired ids must fail with
// ErrTombstoned, mutations against never-assigned ids with ErrNotFound.
func churnStep(t *testing.T, rng *rand.Rand, ix *Index, m *churnModel, n int) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 4: // insert
		raw := churnSeries(rng, n)
		id, err := ix.Insert(raw)
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		if _, dup := m.live[id]; dup {
			t.Fatalf("insert reused live id %d", id)
		}
		m.add(id, distance.ZNormalized(raw))
	case op < 7: // delete
		if len(m.ids) < 8 {
			return
		}
		id := m.pick(rng)
		if err := ix.Delete(id); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
		m.delete(id)
	case op < 9: // upsert
		if len(m.ids) < 8 {
			return
		}
		id := m.pick(rng)
		raw := churnSeries(rng, n)
		if err := ix.Upsert(id, raw); err != nil {
			t.Fatalf("upsert %d: %v", id, err)
		}
		m.live[id] = distance.ZNormalized(raw)
	default: // negative paths
		if len(m.retired) > 0 {
			id := m.retired[rng.Intn(len(m.retired))]
			if err := ix.Delete(id); !errors.Is(err, ErrTombstoned) {
				t.Fatalf("delete of retired id %d: %v, want ErrTombstoned", id, err)
			}
			if err := ix.Upsert(id, churnSeries(rng, n)); !errors.Is(err, ErrTombstoned) {
				t.Fatalf("upsert of retired id %d: %v, want ErrTombstoned", id, err)
			}
		}
		bogus := index.ID(1 << 40)
		if err := ix.Delete(bogus); !errors.Is(err, ErrNotFound) {
			t.Fatalf("delete of unassigned id: %v, want ErrNotFound", err)
		}
	}
}

func checkChurnCounters(t *testing.T, ix *Index, m *churnModel) {
	t.Helper()
	if got := ix.Len(); got != len(m.ids) {
		t.Fatalf("Len() = %d, model has %d live", got, len(m.ids))
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChurnOracle is the central differential property test: a long
// randomized mutation history, searches checked against the brute-force
// oracle throughout, then compaction of every shard (bit-identical results
// required) and a from-scratch rebuild of the surviving series (bit-identical
// distance profile required).
func TestChurnOracle(t *testing.T) {
	const n, k = 48, 7
	rng := rand.New(rand.NewSource(4101))
	data := mixedMatrix(rng, 240, n)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := newChurnModel(data)
	s := ix.NewSearcher()

	for step := 0; step < 400; step++ {
		churnStep(t, rng, ix, m, n)
		if step%40 == 13 {
			checkChurnCounters(t, ix, m)
			for qi := 0; qi < 3; qi++ {
				q := churnSeries(rng, n)
				res, err := s.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstModel(t, m, res, q, k)
			}
		}
	}
	checkChurnCounters(t, ix, m)

	// Snapshot a query panel, compact every shard, and require the exact
	// same bits: compaction reclaims tombstoned rows and renumbers physical
	// slots, but public ids and true distances are untouchable.
	queries := make([][]float64, 10)
	before := make([][]index.Result, len(queries))
	for qi := range queries {
		queries[qi] = churnSeries(rng, n)
		res, err := s.Search(queries[qi], k)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstModel(t, m, res, queries[qi], k)
		before[qi] = append([]index.Result(nil), res...)
	}
	tombBefore := ix.Collection().Tombstoned()
	if tombBefore == 0 {
		t.Fatal("churn script produced no tombstones — the test lost its subject")
	}
	for i := 0; i < ix.Shards(); i++ {
		if err := ix.CompactShard(i); err != nil {
			t.Fatalf("compact shard %d: %v", i, err)
		}
	}
	if got := ix.Collection().Tombstoned(); got >= tombBefore {
		t.Fatalf("compaction left %d tombstones of %d", got, tombBefore)
	}
	if got := ix.Collection().Compactions(); got == 0 {
		t.Fatal("compaction counter did not advance")
	}
	checkChurnCounters(t, ix, m)
	for qi, q := range queries {
		res, err := s.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		for r := range res {
			if res[r] != before[qi][r] {
				t.Fatalf("q=%d rank %d: post-compaction %+v, pre-compaction %+v", qi, r, res[r], before[qi][r])
			}
		}
	}

	// From-scratch rebuild of exactly the surviving series (the churned
	// collection's own stored rows, so both hold bit-identical data): the
	// distance profile of every query must match bit for bit, and each
	// result id must name the same series.
	liveIDs := append([]index.ID(nil), m.ids...)
	sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
	rebuilt := distance.NewMatrix(len(liveIDs), n)
	for j, id := range liveIDs {
		row := ix.Collection().Row(int(id))
		if row == nil {
			t.Fatalf("live id %d has no row", id)
		}
		copy(rebuilt.Row(j), row)
	}
	rix, err := Build(rebuilt, Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs := rix.NewSearcher()
	for qi, q := range queries {
		res, err := rs.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(before[qi]) {
			t.Fatalf("q=%d: rebuild returned %d results, churned %d", qi, len(res), len(before[qi]))
		}
		for r := range res {
			if math.Float64bits(res[r].Dist) != math.Float64bits(before[qi][r].Dist) {
				t.Fatalf("q=%d rank %d: rebuild dist %v, churned %v", qi, r, res[r].Dist, before[qi][r].Dist)
			}
			if mapped := liveIDs[res[r].ID]; mapped != before[qi][r].ID {
				t.Fatalf("q=%d rank %d: rebuild id %d maps to %d, churned %d",
					qi, r, res[r].ID, mapped, before[qi][r].ID)
			}
		}
	}
}

// TestChurnDurable drives the same randomized interleave through a durable
// Store, closing and recovering at several points — each reopen replays the
// typed insert/delete/upsert records — plus a checkpoint and a torn garbage
// tail. After every recovery the index must agree with the model exactly.
func TestChurnDurable(t *testing.T) {
	const n, k = 32, 5
	rng := rand.New(rand.NewSource(4102))
	data := mixedMatrix(rng, 120, n)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.5, Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := newChurnModel(data)
	dir := t.TempDir()
	st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}

	reopen := func() {
		t.Helper()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st, err = Recover(dir, DurableConfig{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
	}
	verify := func() {
		t.Helper()
		checkChurnCounters(t, st.Index(), m)
		s := st.Index().NewSearcher()
		for qi := 0; qi < 3; qi++ {
			q := churnSeries(rng, n)
			res, err := s.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstModel(t, m, res, q, k)
		}
	}

	mutate := func(steps int) {
		for i := 0; i < steps; i++ {
			switch op := rng.Intn(10); {
			case op < 4:
				raw := churnSeries(rng, n)
				id, err := st.Insert(raw)
				if err != nil {
					t.Fatalf("insert: %v", err)
				}
				m.add(id, distance.ZNormalized(raw))
			case op < 7:
				if len(m.ids) < 8 {
					continue
				}
				id := m.pick(rng)
				if err := st.Delete(id); err != nil {
					t.Fatalf("delete %d: %v", id, err)
				}
				m.delete(id)
			default:
				if len(m.ids) < 8 {
					continue
				}
				id := m.pick(rng)
				raw := churnSeries(rng, n)
				if err := st.Upsert(id, raw); err != nil {
					t.Fatalf("upsert %d: %v", id, err)
				}
				m.live[id] = distance.ZNormalized(raw)
			}
		}
	}

	mutate(40)
	reopen() // replay from the initial checkpoint
	if got := st.RecoveryStats(); got.Replayed == 0 || got.TailError != nil {
		t.Fatalf("first recovery stats %+v: want replayed records, clean tail", got)
	}
	verify()

	mutate(40)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mutate(20)
	reopen() // checkpoint plus a short replay suffix
	verify()

	// A torn tail of garbage after the acknowledged records: lenient
	// recovery discards exactly the garbage and keeps every mutation.
	mutate(20)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(WALPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Recover(dir, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RecoveryStats(); got.TailError == nil || got.DiscardedBytes != 6 {
		t.Fatalf("garbage-tail recovery stats %+v: want a 6-byte discarded tail", got)
	}
	verify()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChurnConcurrentCompaction exercises the concurrency contract —
// mutations may run concurrently with background compaction — under the race
// detector, then checks the surviving state against the oracle.
func TestChurnConcurrentCompaction(t *testing.T) {
	const n, k = 32, 5
	rng := rand.New(rand.NewSource(4103))
	data := mixedMatrix(rng, 160, n)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.5, Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := newChurnModel(data)

	done := make(chan struct{})
	compacted := make(chan error, 1)
	go func() {
		var firstErr error
		for i := 0; ; i++ {
			select {
			case <-done:
				compacted <- firstErr
				return
			default:
			}
			if err := ix.CompactShard(i % 2); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}()
	for step := 0; step < 300; step++ {
		churnStep(t, rng, ix, m, n)
	}
	close(done)
	if err := <-compacted; err != nil {
		t.Fatalf("concurrent compaction: %v", err)
	}
	checkChurnCounters(t, ix, m)
	s := ix.NewSearcher()
	for qi := 0; qi < 10; qi++ {
		q := churnSeries(rng, n)
		res, err := s.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstModel(t, m, res, q, k)
	}
}

// TestSearchZeroAllocTombstones: the tombstone skip is fused into the block
// kernel's survivor pass, so a collection carrying deletes and upserts keeps
// the steady-state search at zero allocations (single shard, the engine's
// serial zero-alloc path).
func TestSearchZeroAllocTombstones(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool allocation counts")
	}
	const n = 32
	rng := rand.New(rand.NewSource(4104))
	data := mixedMatrix(rng, 400, n)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.5, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := ix.Delete(index.ID(rng.Intn(400))); err != nil && !errors.Is(err, ErrTombstoned) {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ { // materialize the explicit id tables too
		id := index.ID(rng.Intn(400))
		if err := ix.Upsert(id, churnSeries(rng, n)); err != nil && !errors.Is(err, ErrTombstoned) {
			t.Fatal(err)
		}
	}
	if ix.Collection().Tombstoned() == 0 {
		t.Fatal("no tombstones — the test lost its subject")
	}
	query := churnSeries(rng, n)
	s := ix.NewSearcher()
	for i := 0; i < 3; i++ {
		if _, err := s.Search(query, 10); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := s.Search(query, 10); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Search with tombstones allocates %v allocs/op, want 0", avg)
	}
}
