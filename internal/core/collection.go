package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/sax"
	"repro/internal/sfa"
)

// Collection is the sharded index: S independent index.Tree shards, each
// built over a disjoint round-robin slice of the series, sharing one learned
// summarization. It is the scale-out layer MESSI-style systems put in front
// of the tree — partition the collection, query every partition, merge — and
// the abstraction every core entry point (Build, Search, SearchBatch,
// Insert, Save/Load, NewStream) routes through. Shards == 1 degenerates to
// the single-tree index with no overhead on the query hot path.
//
// Series ids are global: the series at global id g lives in shard g % S at
// shard-local row g / S, and shard searchers map local ids back to global
// ids at offer time (global = local*S + shard). Exact k-NN runs all shards
// against one shared KNNCollector whose atomic bound is the cross-shard
// best-so-far, so shards prune each other and the collector holds the global
// top-k with no post-merge.
//
// A Collection is immutable and safe for concurrent searches after Build
// (one Searcher per goroutine); Insert requires external synchronization,
// as with the single tree.
type Collection struct {
	method Method
	cfg    Config // effective (defaulted) configuration; cfg.Shards == len(shards)
	sum    index.Summarization
	sfaQ   *sfa.Quantizer // nil for MESSI

	shards []*index.Tree
	sdata  []*distance.Matrix // per-shard matrices (shard s holds global ids ≡ s mod S)
	total  int                // series across all shards
	stride int

	// health tracks per-shard fault state (panic counts, quarantine); see
	// fault.go. len(health) == len(shards) always. A shard may have a nil
	// tree when it was quarantined at load time (corrupt payload under
	// LoadOptions.QuarantineCorruptShards); such shards are permanently
	// quarantined and untrusted.
	health []shardHealth

	insertEnc index.Encoder

	// searchers pools serial collection searchers for SearchBatch and the
	// streaming engine, so repeated batches and stream workers reuse
	// per-shard scratch instead of rebuilding it.
	searchers sync.Pool

	// Phase timings for the Fig. 7 breakdown, in seconds. Transform and tree
	// times are the wall-clock maximum across shards (shards build in
	// parallel).
	LearnSeconds     float64
	TransformSeconds float64
	TreeSeconds      float64
}

// BuildCollection constructs a sharded index over data (which must contain
// z-normalized series, as for Build). cfg.Shards selects the shard count
// (default 1; clamped to the number of series). The summarization is learned
// once over the full collection and shared by every shard, so a sharded and
// an unsharded build answer queries identically.
func BuildCollection(data *distance.Matrix, cfg Config) (*Collection, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("core: cannot build over empty data")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: shard count must be >= 1, got %d", cfg.Shards)
	}
	if cfg.WordLength == 0 {
		cfg.WordLength = 16
	}
	if cfg.Bits == 0 {
		cfg.Bits = 8
	}
	if cfg.LeafCapacity == 0 {
		cfg.LeafCapacity = 1024
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > data.Len() {
		cfg.Shards = data.Len()
	}

	c := &Collection{method: cfg.Method, total: data.Len(), stride: data.Stride}
	var err error
	c.sum, c.sfaQ, c.LearnSeconds, err = newSummarization(data, cfg)
	if err != nil {
		return nil, err
	}
	c.cfg = cfg

	c.sdata = data.PartitionRoundRobin(cfg.Shards)
	opts := c.shardOptions()
	if err := c.buildShardTrees(func(i int) (*index.Tree, error) {
		return index.Build(c.sdata[i], c.sum, opts)
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// newSummarization creates the configured summarization: a fixed iSAX
// quantizer for MESSI, a learned SFA quantizer (with learn time) for SOFA.
func newSummarization(data *distance.Matrix, cfg Config) (index.Summarization, *sfa.Quantizer, float64, error) {
	switch cfg.Method {
	case MESSI:
		q, err := sax.NewQuantizer(data.Stride, cfg.WordLength, cfg.Bits)
		if err != nil {
			return nil, nil, 0, err
		}
		return saxSummarization{q}, nil, 0, nil
	case SOFA:
		start := time.Now()
		q, err := sfa.Learn(data, sfa.Options{
			WordLength: cfg.WordLength,
			Bits:       cfg.Bits,
			Binning:    cfg.Binning,
			Selection:  cfg.Selection,
			SampleRate: cfg.SampleRate,
			MaxCoeffs:  cfg.MaxCoeffs,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		return sfaSummarization{q}, q, time.Since(start).Seconds(), nil
	default:
		return nil, nil, 0, fmt.Errorf("core: unknown method %v", cfg.Method)
	}
}

// shardOptions derives each shard tree's index.Options from the collection
// config: the configured worker budget is divided across shards so a
// collection-level query (or build) keeps total parallelism at the budget.
func (c *Collection) shardOptions() index.Options {
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perShard := workers / c.cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	queues := 0
	if c.cfg.Queues > 0 {
		queues = c.cfg.Queues / c.cfg.Shards
		if queues < 1 {
			queues = 1
		}
	}
	return index.Options{
		LeafCapacity: c.cfg.LeafCapacity,
		Workers:      perShard,
		Queues:       queues,
		NoLeafBlocks: c.cfg.NoLeafBlocks,
		PerSeriesLBD: c.cfg.PerSeriesLBD,
	}
}

// buildShardTrees constructs every shard tree in parallel — one goroutine
// per shard running build(i), each tree with the per-shard worker budget —
// and folds the per-shard phase timings into the collection's (wall-clock
// maxima, since shards build concurrently). Shared by Build (full build)
// and Load (rebuild from saved words).
func (c *Collection) buildShardTrees(build func(i int) (*index.Tree, error)) error {
	c.shards = make([]*index.Tree, len(c.sdata))
	c.health = make([]shardHealth, len(c.sdata))
	errs := make([]error, len(c.sdata))
	var wg sync.WaitGroup
	for i := range c.sdata {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.shards[i], errs[i] = build(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, t := range c.shards {
		if t == nil {
			// The build callback quarantined this shard (corrupt payload
			// under LoadOptions.QuarantineCorruptShards): no tree, no
			// certificate, permanently skipped.
			c.health[i].quarantined.Store(true)
			c.health[i].untrusted.Store(true)
			continue
		}
		if t.TransformSeconds > c.TransformSeconds {
			c.TransformSeconds = t.TransformSeconds
		}
		if t.TreeSeconds > c.TreeSeconds {
			c.TreeSeconds = t.TreeSeconds
		}
	}
	return nil
}

// Method reports whether this is a SOFA or MESSI collection.
func (c *Collection) Method() Method { return c.method }

// Len returns the number of indexed series across all shards.
func (c *Collection) Len() int { return c.total }

// SeriesLen returns the length of the indexed series.
func (c *Collection) SeriesLen() int { return c.stride }

// Shards returns the shard count.
func (c *Collection) Shards() int { return len(c.shards) }

// Row returns the series stored under global id g (aliasing shard memory;
// do not modify).
func (c *Collection) Row(g int) []float64 {
	s := len(c.shards)
	return c.sdata[g%s].Row(g / s)
}

// BuildSeconds returns the total build time across all phases.
func (c *Collection) BuildSeconds() float64 {
	return c.LearnSeconds + c.TransformSeconds + c.TreeSeconds
}

// SFAQuantizer returns the shared learned SFA summarization (nil for MESSI).
func (c *Collection) SFAQuantizer() *sfa.Quantizer { return c.sfaQ }

// Stats aggregates the per-shard tree statistics: sums for counts, weighted
// means for depth and leaf size, the maximum for depth.
func (c *Collection) Stats() index.Stats {
	var agg index.Stats
	var depthSum, sizeSum float64
	for _, t := range c.shards {
		if t == nil {
			continue
		}
		st := t.Stats()
		agg.Series += st.Series
		agg.Subtrees += st.Subtrees
		agg.Leaves += st.Leaves
		depthSum += st.AvgDepth * float64(st.Leaves)
		sizeSum += st.AvgLeafSize * float64(st.Leaves)
		if st.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = st.MaxDepth
		}
	}
	if agg.Leaves > 0 {
		agg.AvgDepth = depthSum / float64(agg.Leaves)
		agg.AvgLeafSize = sizeSum / float64(agg.Leaves)
	}
	return agg
}

// SplitCount sums the leaf splits every shard tree has performed — zero for
// a collection decoded from a version-3 container, the full build's count
// otherwise. Surfaced through LoadStats as the no-re-split proof.
func (c *Collection) SplitCount() int64 {
	var n int64
	for _, t := range c.shards {
		if t == nil {
			continue
		}
		n += t.SplitCount()
	}
	return n
}

// CheckInvariants verifies every shard tree's structural invariants.
// Shards quarantined at load time have no tree and are skipped: the
// collection is valid as the degraded collection it declared itself to be.
func (c *Collection) CheckInvariants() error {
	for i, t := range c.shards {
		if t == nil {
			continue
		}
		if err := t.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Insert adds one series (z-normalized internally) and returns its global
// id. The series goes to shard total % S, which preserves the round-robin
// id mapping the searchers invert. Not safe to run concurrently with
// searches or other inserts.
func (c *Collection) Insert(series []float64) (int32, error) {
	s := len(c.shards)
	shard := c.total % s
	// Inserting into a quarantined shard would strand the series in a tree
	// searches skip (silent data loss); refuse instead. The round-robin id
	// mapping cannot redirect the series elsewhere.
	if err := c.shardGate(shard); err != nil {
		return 0, err
	}
	if c.insertEnc == nil {
		c.insertEnc = c.shards[shard].Encoder()
	}
	local, err := c.shards[shard].Insert(distance.ZNormalized(series), c.insertEnc)
	if err != nil {
		return 0, err
	}
	global := int32(local)*int32(s) + int32(shard)
	c.total++
	return global, nil
}

// Searcher answers similarity queries against the collection. Create one
// per querying goroutine. Result slices returned by Search and its variants
// are owned by the Searcher and reused by its next call — copy them if they
// must survive.
type Searcher struct {
	c  *Collection
	ss []*index.Searcher

	// kn is the shared cross-shard collector (unused when the collection has
	// a single shard, where searches delegate to the tree engine directly).
	kn     index.KNNCollector
	resBuf []index.Result
	errs   []error // per-shard fault scratch: errs[i] != nil when shard i failed
	seeded []bool  // per-shard scratch: shard i's seed phase completed

	// meta describes the last query's execution (see LastMeta).
	meta QueryMeta

	// Certificate scratch for degraded queries, lazily allocated on the
	// first fault so healthy steady-state searches stay allocation-free. The
	// representation is recomputed here rather than borrowed from a shard
	// searcher, whose scratch a panic may have corrupted.
	certEnc index.Encoder
	certBuf []float64
	certQR  []float64

	// serial runs the shards sequentially on the calling goroutine (each
	// shard searcher is single-threaded too); used by SearchBatch workers
	// and the streaming engine so inter-query parallelism is not multiplied
	// by intra-query parallelism.
	serial bool
}

// NewSearcher creates a searcher over the collection; a single Search call
// fans out across shards and, within each shard, across the tree's
// configured workers.
func (c *Collection) NewSearcher() *Searcher {
	s := &Searcher{
		c:      c,
		ss:     make([]*index.Searcher, len(c.shards)),
		errs:   make([]error, len(c.shards)),
		seeded: make([]bool, len(c.shards)),
	}
	for i, t := range c.shards {
		if t == nil {
			continue // quarantined at load: no tree to search
		}
		s.ss[i] = t.NewSearcher()
	}
	return s
}

// newSerialSearcher creates a fully single-threaded collection searcher.
func (c *Collection) newSerialSearcher() *Searcher {
	s := &Searcher{
		c:      c,
		ss:     make([]*index.Searcher, len(c.shards)),
		errs:   make([]error, len(c.shards)),
		seeded: make([]bool, len(c.shards)),
		serial: true,
	}
	for i, t := range c.shards {
		if t == nil {
			continue
		}
		s.ss[i] = t.NewSerialSearcher()
	}
	return s
}

// respawnShard replaces shard i's searcher after a panic: the old one's
// scratch (queues, collector registration, tables) is in an undefined state,
// so it is discarded rather than reused — the price of a fault, not of the
// steady state.
func (s *Searcher) respawnShard(i int) {
	t := s.c.shards[i]
	if t == nil {
		s.ss[i] = nil
		return
	}
	if s.serial {
		s.ss[i] = t.NewSerialSearcher()
	} else {
		s.ss[i] = t.NewSearcher()
	}
}

// serialSearcher checks a serial searcher out of the collection's pool.
func (c *Collection) serialSearcher() *Searcher {
	if s, ok := c.searchers.Get().(*Searcher); ok {
		return s
	}
	return c.newSerialSearcher()
}

// shardQuery builds shard i's ShardQuery for the current collector.
func (s *Searcher) shardQuery(i int, epsilon float64) index.ShardQuery {
	return index.ShardQuery{
		KN:      &s.kn,
		IDMul:   int32(len(s.ss)),
		IDAdd:   int32(i),
		Epsilon: epsilon,
	}
}

// Plan describes one query's execution for the unified, context-aware query
// path: exact (the zero value apart from K), ε-approximate, or best-leaf
// approximate, with an optional per-query deadline. It is the single
// internal representation every public query variant lowers to.
type Plan struct {
	// K is the number of neighbors to return (required, >= 1).
	K int
	// Epsilon relaxes pruning for (1+Epsilon)-approximate answers; 0 is
	// exact. Ignored when Approximate is set.
	Epsilon float64
	// Approximate answers from each shard's best-matching leaf only (the
	// classical iSAX approximate probe; stage 1 of the exact engine).
	Approximate bool
	// Deadline, when nonzero, aborts the query with context.DeadlineExceeded
	// once passed. Checked at shard granularity, so an expired query stops
	// between shard stages instead of running to completion.
	Deadline time.Time
	// AllowPartial accepts degraded answers: when one or more shards fail
	// (panic, fault, or quarantine), the query returns the merged results of
	// the surviving shards with nil error instead of failing, and
	// Searcher.LastMeta carries the shard counts plus the ε certificate
	// bounding the degradation. A degraded query that would return zero
	// results still fails (with an error wrapping ErrDegraded): an empty
	// answer certifies nothing. Cancellation and deadline expiry remain
	// errors regardless — the caller asked the query to stop.
	AllowPartial bool
}

// queryErr reports why in-flight query work must stop: context cancellation
// (or context deadline) first, then plan-deadline expiry. The ctx.Err check
// is skipped for non-cancellable contexts (Done() == nil), keeping the
// common Background case free.
func queryErr(ctx context.Context, deadline time.Time) error {
	if ctx != nil && ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// SearchPlan is the unified query entry point: it executes p against all
// shards, honoring ctx cancellation and p.Deadline at shard granularity, and
// appends the answers (ascending distance) to dst, returning the extended
// slice. Ownership of the result memory is therefore the caller's: passing a
// reused buffer gives an allocation-free steady state, passing nil returns a
// fresh slice. Exact, ε-approximate and best-leaf-approximate search are all
// the same path here, selected by the plan.
func (s *Searcher) SearchPlan(ctx context.Context, query []float64, p Plan, dst []index.Result) ([]index.Result, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", p.K)
	}
	if p.Epsilon < 0 {
		return nil, fmt.Errorf("core: epsilon must be >= 0, got %v", p.Epsilon)
	}
	if len(query) != s.c.stride {
		return nil, fmt.Errorf("core: query length %d, want %d", len(query), s.c.stride)
	}
	if err := queryErr(ctx, p.Deadline); err != nil {
		return nil, err
	}
	epsilon := p.Epsilon
	if p.Approximate {
		epsilon = 0
	}
	if err := s.searchShardsCtx(ctx, p.Deadline, query, p.K, epsilon, p.Approximate, p.AllowPartial); err != nil {
		return nil, err
	}
	return s.kn.ResultsAppend(dst), nil
}

// searchShards runs one query across every shard with no cancellation
// point — the legacy entry kept for the context-free Search* wrappers, which
// predate partial results and stay fail-fast.
func (s *Searcher) searchShards(query []float64, k int, epsilon float64, seedOnly bool) error {
	return s.searchShardsCtx(context.Background(), time.Time{}, query, k, epsilon, seedOnly, false)
}

// searchShardsCtx runs one query across every shard: a seeding phase first
// (every shard's approximate stage feeds the shared collector, so each
// shard's exact stage starts from the best bound any shard established),
// then the exact phase. With serial searchers both phases run inline on the
// calling goroutine; otherwise shards run concurrently, and within each
// shard the tree applies its own worker fan-out. Cancellation (ctx or
// deadline) is checked before every per-shard stage, so a cancelled query
// stops between shards rather than running every stage to completion.
//
// Faults are contained at shard granularity: a panic or engine error inside
// one shard's stage is recorded in s.errs[i] (and fed to the health policy —
// see fault.go) without touching the other shards, and resolveFaults decides
// afterwards whether the query fails (the default) or returns the
// survivors' partial answer with an ε certificate (allowPartial).
// Cancellation errors are never shard faults; they abort the query as
// before.
func (s *Searcher) searchShardsCtx(ctx context.Context, deadline time.Time, query []float64, k int, epsilon float64, seedOnly, allowPartial bool) error {
	if len(query) != s.c.stride {
		return fmt.Errorf("core: query length %d, want %d", len(query), s.c.stride)
	}
	s.kn.Reset(k)
	s.meta = QueryMeta{}
	if s.serial || len(s.ss) == 1 {
		for i, sub := range s.ss {
			s.seeded[i] = false
			if s.errs[i] = s.c.shardGate(i); s.errs[i] != nil {
				continue
			}
			if err := queryErr(ctx, deadline); err != nil {
				return err
			}
			s.errs[i] = s.seedShardSafe(i, sub, query, k, epsilon)
			s.seeded[i] = s.errs[i] == nil
		}
		if !seedOnly {
			for i, sub := range s.ss {
				if !s.seeded[i] {
					continue
				}
				if err := queryErr(ctx, deadline); err != nil {
					return err
				}
				s.errs[i] = s.finishShardSafe(i, sub)
			}
		}
		return s.resolveFaults(query, allowPartial)
	}
	errs := s.errs
	var wg sync.WaitGroup
	for i, sub := range s.ss {
		s.seeded[i] = false
		if errs[i] = s.c.shardGate(i); errs[i] != nil {
			continue
		}
		wg.Add(1)
		go func(i int, sub *index.Searcher) {
			defer wg.Done()
			if err := queryErr(ctx, deadline); err != nil {
				errs[i] = err
				return
			}
			errs[i] = s.seedShardSafe(i, sub, query, k, epsilon)
			s.seeded[i] = errs[i] == nil
		}(i, sub)
	}
	wg.Wait()
	if !seedOnly {
		var wg2 sync.WaitGroup
		for i, sub := range s.ss {
			if !s.seeded[i] {
				continue
			}
			wg2.Add(1)
			go func(i int, sub *index.Searcher) {
				defer wg2.Done()
				if err := queryErr(ctx, deadline); err != nil {
					errs[i] = err
					return
				}
				errs[i] = s.finishShardSafe(i, sub)
			}(i, sub)
		}
		wg2.Wait()
	}
	return s.resolveFaults(query, allowPartial)
}

// seedShardSafe runs shard i's seeding stage with panic containment: a
// panic in the engine (or one of its internal worker goroutines, which
// forward theirs) comes back as a *PanicError, feeds the quarantine policy,
// and costs this searcher's shard-i searcher (respawned fresh — its scratch
// is unsafe to reuse). Engine errors are attributed to the shard. The
// deferred recover is open-coded by the compiler, preserving the
// allocation-free healthy path.
func (s *Searcher) seedShardSafe(i int, sub *index.Searcher, query []float64, k int, epsilon float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = s.c.recordShardPanic(i, r)
			s.respawnShard(i)
		}
	}()
	if err := sub.SeedShard(query, k, s.shardQuery(i, epsilon)); err != nil {
		return &ShardError{Shard: i, Err: err}
	}
	return nil
}

// finishShardSafe runs shard i's exact stage under the same containment
// contract as seedShardSafe; a fully completed shard resets its
// consecutive-panic count.
func (s *Searcher) finishShardSafe(i int, sub *index.Searcher) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = s.c.recordShardPanic(i, r)
			s.respawnShard(i)
		}
	}()
	if err := sub.FinishShard(); err != nil {
		return &ShardError{Shard: i, Err: err}
	}
	s.c.health[i].panics.Store(0)
	return nil
}

// resolveFaults inspects the per-shard outcomes recorded by searchShardsCtx
// and settles the query: cancellation errors abort it unchanged; shard
// faults either fail it (fail-fast, the default) or are absorbed into a
// degraded answer with meta and certificate (allowPartial) — unless nothing
// survived, in which case the partial answer would be empty and the query
// fails even under allowPartial.
func (s *Searcher) resolveFaults(query []float64, allowPartial bool) error {
	var firstFault error
	failed := 0
	for i := range s.ss {
		err := s.errs[i]
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		failed++
		if firstFault == nil {
			firstFault = err
		}
	}
	s.meta.ShardsSearched = len(s.ss) - failed
	s.meta.ShardsFailed = failed
	if failed == 0 {
		return nil
	}
	if !allowPartial {
		return firstFault
	}
	if s.kn.Len() == 0 {
		return firstFault
	}
	s.meta.EpsilonBound = s.certificate(query)
	return nil
}

// finishResults snapshots the shared collector into the searcher-owned
// result buffer (sorted ascending) and returns it.
func (s *Searcher) finishResults() []index.Result {
	s.resBuf = s.kn.ResultsAppend(s.resBuf[:0])
	return s.resBuf
}

// Search returns the exact k nearest neighbors of query (any scale; it is
// z-normalized internally) under squared z-normalized Euclidean distance,
// in ascending order. With a single shard this is exactly the PR-1 tree
// engine (zero allocations in steady state); with S shards the shards share
// one collector and prune against each other's best-so-far.
func (s *Searcher) Search(query []float64, k int) ([]index.Result, error) {
	if len(s.ss) == 1 {
		return s.searchSingleSafe(query, k, 0, false)
	}
	if err := s.searchShards(query, k, 0, false); err != nil {
		return nil, err
	}
	return s.finishResults(), nil
}

// searchSingleSafe is the single-shard legacy fast path — a direct
// delegation to the tree engine, skipping the cross-shard collector — under
// the same containment contract as the sharded path: quarantine is checked
// up front, a panic comes back as a *PanicError (feeding the health policy
// and respawning the shard searcher), and LastMeta reflects the outcome.
// With one shard there are no survivors to return, so every fault is an
// error regardless of AllowPartial. The deferred recover is open-coded,
// preserving the zero-allocation steady state.
func (s *Searcher) searchSingleSafe(query []float64, k int, epsilon float64, approx bool) (res []index.Result, err error) {
	if err := s.c.shardGate(0); err != nil {
		s.meta = QueryMeta{ShardsFailed: 1, EpsilonBound: math.Inf(1)}
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = s.c.recordShardPanic(0, r)
			s.respawnShard(0)
			s.meta = QueryMeta{ShardsFailed: 1, EpsilonBound: math.Inf(1)}
		}
	}()
	s.meta = QueryMeta{ShardsSearched: 1}
	switch {
	case approx:
		return s.ss[0].SearchApproximate(query, k)
	case epsilon > 0:
		return s.ss[0].SearchEpsilon(query, k, epsilon)
	default:
		res, err = s.ss[0].Search(query, k)
		if err == nil {
			s.c.health[0].panics.Store(0)
		}
		return res, err
	}
}

// Search1 returns the exact nearest neighbor.
func (s *Searcher) Search1(query []float64) (index.Result, error) {
	res, err := s.Search(query, 1)
	if err != nil {
		return index.Result{}, err
	}
	return res[0], nil
}

// SearchApproximate returns up to k approximate nearest neighbors by probing
// only the best-matching leaf of every shard — the classical iSAX-family
// approximate search, run per shard and merged. The returned distances
// upper-bound the true k-NN distances.
func (s *Searcher) SearchApproximate(query []float64, k int) ([]index.Result, error) {
	if len(s.ss) == 1 {
		return s.searchSingleSafe(query, k, 0, true)
	}
	if err := s.searchShards(query, k, 0, true); err != nil {
		return nil, err
	}
	return s.finishResults(), nil
}

// SearchEpsilon returns k neighbors guaranteed within a (1+epsilon) factor
// of the exact k-NN distances. epsilon = 0 is exact search.
func (s *Searcher) SearchEpsilon(query []float64, k int, epsilon float64) ([]index.Result, error) {
	if epsilon < 0 {
		return nil, fmt.Errorf("core: epsilon must be >= 0, got %v", epsilon)
	}
	if len(s.ss) == 1 {
		return s.searchSingleSafe(query, k, epsilon, false)
	}
	if err := s.searchShards(query, k, epsilon, false); err != nil {
		return nil, err
	}
	return s.finishResults(), nil
}

// LastStats sums the pruning counters of the most recent Search call across
// shards.
func (s *Searcher) LastStats() index.SearchStats {
	var agg index.SearchStats
	for _, sub := range s.ss {
		if sub == nil {
			continue
		}
		st := sub.LastStats()
		agg.NodesVisited += st.NodesVisited
		agg.LeavesRefined += st.LeavesRefined
		agg.SeriesLBD += st.SeriesLBD
		agg.SeriesED += st.SeriesED
	}
	return agg
}

// SearchBatch answers a batch of queries with inter-query parallelism: up to
// workers queries run concurrently, each handled end-to-end (all shards) by
// a pooled serial searcher. workers <= 0 selects GOMAXPROCS. Results are in
// query order and safe to retain — which is why the output is freshly
// allocated per call; sustained traffic that wants allocation-free
// steady state should use NewStream (callback-scoped results) or, on a
// single-shard collection, Tree.BatchSearchInto.
//
// SearchBatch is the fixed-k convenience over SearchBatchPlan, the unified
// context-aware batch path.
func (c *Collection) SearchBatch(queries *distance.Matrix, k, workers int) ([][]index.Result, error) {
	if queries == nil || queries.Len() == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	if queries.Stride != c.stride {
		return nil, fmt.Errorf("core: query length %d, want %d", queries.Stride, c.stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	qs := make([]PlanQuery, queries.Len())
	for i := range qs {
		qs[i] = PlanQuery{Series: queries.Row(i), Plan: Plan{K: k}}
	}
	return c.SearchBatchPlan(context.Background(), qs, workers)
}

// PlanQuery pairs one query series with its execution plan for the batch
// path, so a single batch can mix k values, approximation modes and
// per-query deadlines.
type PlanQuery struct {
	Series []float64
	Plan   Plan
}

// SearchBatchPlan answers a heterogeneous batch of planned queries with
// inter-query parallelism: up to workers queries run concurrently, each
// handled end-to-end (all shards) by a pooled serial searcher. workers <= 0
// selects GOMAXPROCS. Results are in query order and caller-owned (freshly
// allocated per query). Per-query validation (length, k, epsilon) happens
// when each query executes, via SearchPlan.
//
// Cancellation is checked at batch granularity (before every query is
// started) and, through SearchPlan, at shard granularity inside each query,
// so cancelling ctx stops a large batch mid-flight. Any error — a ctx
// error, an invalid query, or an individual query's expired plan deadline —
// aborts the whole batch: every worker stops before its next query, and one
// of the observed errors is returned.
func (c *Collection) SearchBatchPlan(ctx context.Context, qs []PlanQuery, workers int) ([][]index.Result, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	out := make([][]index.Result, len(qs))
	if workers == 1 {
		s := c.serialSearcher()
		defer c.searchers.Put(s)
		for i, q := range qs {
			if err := queryErr(ctx, time.Time{}); err != nil {
				return nil, err
			}
			res, err := s.SearchPlan(ctx, q.Series, q.Plan, nil)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	errs := make([]error, workers)
	var abort atomic.Bool // any worker's error stops the whole batch
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.serialSearcher()
			defer c.searchers.Put(s)
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(qs) || abort.Load() {
					return
				}
				if err := queryErr(ctx, time.Time{}); err != nil {
					errs[w] = err
					abort.Store(true)
					return
				}
				res, err := s.SearchPlan(ctx, qs[i].Series, qs[i].Plan, nil)
				if err != nil {
					errs[w] = err
					abort.Store(true)
					return
				}
				out[i] = res
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
