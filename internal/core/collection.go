package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distance"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/sax"
	"repro/internal/sfa"
)

// Collection is the sharded index: S independent index.Tree shards, each
// built over a disjoint round-robin slice of the series, sharing one learned
// summarization. It is the scale-out layer MESSI-style systems put in front
// of the tree — partition the collection, query every partition, merge — and
// the abstraction every core entry point (Build, Search, SearchBatch,
// Insert, Save/Load, NewStream) routes through. Shards == 1 degenerates to
// the single-tree index with no overhead on the query hot path.
//
// Series ids are public and stable: Insert assigns them sequentially and
// Delete/Upsert/compaction never renumber. While the collection is
// append-only the id layout is the round-robin identity (id g lives in
// shard g % S at shard-local row g / S) and shard searchers invert it
// arithmetically at offer time; the first upsert or compaction materializes
// explicit id tables (pub2loc and per-shard pubOf) that take over. Exact
// k-NN runs all shards against one shared KNNCollector whose atomic bound
// is the cross-shard best-so-far, so shards prune each other and the
// collector holds the global top-k with no post-merge.
//
// Mutation contract: Delete and Upsert join Insert behind one internal
// mutex, so writers may be concurrent with each other and with compaction;
// searches remain lock-free and require external synchronization against
// mutations (the original Insert contract). CompactShard is the exception
// on both sides: it is safe to run concurrently with searches AND with
// mutations — it rebuilds a shard off-line from a snapshot and publishes
// the result RCU-style through the shard's atomic state pointer, so
// in-flight queries keep the consistent shard they started on and never
// block on the rebuild.
type Collection struct {
	method Method
	cfg    Config // effective (defaulted) configuration; cfg.Shards == len(states)
	sum    index.Summarization
	sfaQ   *sfa.Quantizer // nil for MESSI

	// states holds one atomic pointer per shard. Searchers snapshot a
	// shard's state at query time and keep it for the whole query;
	// compaction swaps in a rebuilt state without ever touching the old one
	// (RCU). Everything a query needs from a shard — tree, data, public-id
	// table — lives in the shardState so a snapshot is always internally
	// consistent.
	states []atomic.Pointer[shardState]
	total  int // physical series across all shards (live + tombstoned)
	stride int

	// Mutation state. mu serializes Insert/Delete/Upsert and compaction's
	// snapshot/swap sections against each other; searches never take it.
	mu sync.Mutex
	// pubCount is the number of public ids ever assigned (Insert returns
	// pubCount++). pub2loc maps a public id to its physical slot packed as
	// local*S + shard, with -1 marking a deleted id; nil means the identity
	// layout still holds (pub == local*S + shard), which stays true until
	// the first upsert or compaction diverges physical from public ids.
	pubCount int64
	pub2loc  []int64
	// epochs[i] counts mutations touching shard i; compaction validates its
	// snapshot against it before an optimistic (unlocked-build) swap.
	// relearnChurn[i] counts mutations since shard i's quantization was
	// learned — the signal that decides an SFA re-learn at compaction.
	epochs       []atomic.Uint64
	relearnChurn []atomic.Int64
	// live/tomb/compactions/relearns are collection-wide counters searches
	// read lock-free into QueryMeta.
	live        atomic.Int64
	tomb        atomic.Int64
	compactions atomic.Int64
	relearns    atomic.Int64
	// mutSeq numbers every applied mutation; the WAL stamps records with it
	// and recovery resumes from the checkpointed value.
	mutSeq atomic.Uint64
	// compactingBG guards the single background compaction goroutine the
	// Auto policy may spawn after a mutation.
	compactingBG atomic.Bool

	// health tracks per-shard fault state (panic counts, quarantine); see
	// fault.go. len(health) == len(states) always. A shard may have a nil
	// tree when it was quarantined at load time (corrupt payload under
	// LoadOptions.QuarantineCorruptShards); such shards are permanently
	// quarantined and untrusted.
	health []shardHealth

	// searchers pools serial collection searchers for SearchBatch and the
	// streaming engine, so repeated batches and stream workers reuse
	// per-shard scratch instead of rebuilding it.
	searchers sync.Pool

	// Phase timings for the Fig. 7 breakdown, in seconds. Transform and tree
	// times are the wall-clock maximum across shards (shards build in
	// parallel).
	LearnSeconds     float64
	TransformSeconds float64
	TreeSeconds      float64
}

// shardState is the immutable-by-swap unit of one shard: the tree, its data
// matrix, and the local→public id table. Mutations edit the current state
// in place under the collection mutex (tombstones, appends); compaction
// never edits — it builds a replacement and swaps the pointer.
type shardState struct {
	tree *index.Tree
	data *distance.Matrix // tree's matrix; kept even when tree == nil (load quarantine)
	// pubOf maps tree-local ids to stable public ids; nil while the shard
	// still has the round-robin identity layout (pub = local*S + shard).
	pubOf []int32
	// relearned marks a shard whose quantization was re-learned from its
	// survivors at compaction; its tree carries its own summarization, so
	// certificate representations must use the tree's encoder.
	relearned bool
	// enc is the lazily created encoder mutations use to word new series
	// (guarded by the collection mutex).
	enc index.Encoder
}

// state returns shard i's current state (never nil once built/loaded).
func (c *Collection) state(i int) *shardState { return c.states[i].Load() }

// tree returns shard i's current tree (nil for load-quarantined shards).
func (c *Collection) tree(i int) *index.Tree { return c.state(i).tree }

// BuildCollection constructs a sharded index over data (which must contain
// z-normalized series, as for Build). cfg.Shards selects the shard count
// (default 1; clamped to the number of series). The summarization is learned
// once over the full collection and shared by every shard, so a sharded and
// an unsharded build answer queries identically.
func BuildCollection(data *distance.Matrix, cfg Config) (*Collection, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("core: cannot build over empty data")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: shard count must be >= 1, got %d", cfg.Shards)
	}
	if cfg.WordLength == 0 {
		cfg.WordLength = 16
	}
	if cfg.Bits == 0 {
		cfg.Bits = 8
	}
	if cfg.LeafCapacity == 0 {
		cfg.LeafCapacity = 1024
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > data.Len() {
		cfg.Shards = data.Len()
	}

	c := &Collection{method: cfg.Method, total: data.Len(), stride: data.Stride}
	var err error
	c.sum, c.sfaQ, c.LearnSeconds, err = newSummarization(data, cfg)
	if err != nil {
		return nil, err
	}
	c.cfg = cfg

	sdata := data.PartitionRoundRobin(cfg.Shards)
	opts := c.shardOptions()
	if err := c.buildShardTrees(sdata, func(i int) (*index.Tree, error) {
		return index.Build(sdata[i], c.sum, opts)
	}); err != nil {
		return nil, err
	}
	c.initMutationState(int64(c.total), 0)
	return c, nil
}

// initMutationState seeds the mutation counters of a freshly built or loaded
// collection: pubCount public ids assigned so far, dead tombstoned rows
// among the physical total. The identity id layout (pub == local*S + shard)
// is assumed; loaders with explicit id tables overwrite pub2loc afterwards.
func (c *Collection) initMutationState(pubCount int64, dead int) {
	c.pubCount = pubCount
	c.live.Store(int64(c.total - dead))
	c.tomb.Store(int64(dead))
}

// newSummarization creates the configured summarization: a fixed iSAX
// quantizer for MESSI, a learned SFA quantizer (with learn time) for SOFA.
func newSummarization(data *distance.Matrix, cfg Config) (index.Summarization, *sfa.Quantizer, float64, error) {
	switch cfg.Method {
	case MESSI:
		q, err := sax.NewQuantizer(data.Stride, cfg.WordLength, cfg.Bits)
		if err != nil {
			return nil, nil, 0, err
		}
		return saxSummarization{q}, nil, 0, nil
	case SOFA:
		start := time.Now()
		q, err := sfa.Learn(data, sfa.Options{
			WordLength: cfg.WordLength,
			Bits:       cfg.Bits,
			Binning:    cfg.Binning,
			Selection:  cfg.Selection,
			SampleRate: cfg.SampleRate,
			MaxCoeffs:  cfg.MaxCoeffs,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		return sfaSummarization{q}, q, time.Since(start).Seconds(), nil
	default:
		return nil, nil, 0, fmt.Errorf("core: unknown method %v", cfg.Method)
	}
}

// shardOptions derives each shard tree's index.Options from the collection
// config: the configured worker budget is divided across shards so a
// collection-level query (or build) keeps total parallelism at the budget.
func (c *Collection) shardOptions() index.Options {
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perShard := workers / c.cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	queues := 0
	if c.cfg.Queues > 0 {
		queues = c.cfg.Queues / c.cfg.Shards
		if queues < 1 {
			queues = 1
		}
	}
	return index.Options{
		LeafCapacity: c.cfg.LeafCapacity,
		Workers:      perShard,
		Queues:       queues,
		NoLeafBlocks: c.cfg.NoLeafBlocks,
		PerSeriesLBD: c.cfg.PerSeriesLBD,
	}
}

// buildShardTrees constructs every shard tree in parallel — one goroutine
// per shard running build(i), each tree with the per-shard worker budget —
// and folds the per-shard phase timings into the collection's (wall-clock
// maxima, since shards build concurrently). Shared by Build (full build)
// and Load (rebuild from saved words).
func (c *Collection) buildShardTrees(sdata []*distance.Matrix, build func(i int) (*index.Tree, error)) error {
	c.states = make([]atomic.Pointer[shardState], len(sdata))
	c.health = make([]shardHealth, len(sdata))
	c.epochs = make([]atomic.Uint64, len(sdata))
	c.relearnChurn = make([]atomic.Int64, len(sdata))
	trees := make([]*index.Tree, len(sdata))
	errs := make([]error, len(sdata))
	var wg sync.WaitGroup
	for i := range sdata {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trees[i], errs[i] = build(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, t := range trees {
		c.states[i].Store(&shardState{tree: t, data: sdata[i]})
		if t == nil {
			// The build callback quarantined this shard (corrupt payload
			// under LoadOptions.QuarantineCorruptShards): no tree, no
			// certificate, permanently skipped.
			c.health[i].quarantined.Store(true)
			c.health[i].untrusted.Store(true)
			continue
		}
		if t.TransformSeconds > c.TransformSeconds {
			c.TransformSeconds = t.TransformSeconds
		}
		if t.TreeSeconds > c.TreeSeconds {
			c.TreeSeconds = t.TreeSeconds
		}
	}
	return nil
}

// Method reports whether this is a SOFA or MESSI collection.
func (c *Collection) Method() Method { return c.method }

// Len returns the number of live (non-tombstoned) series. For a collection
// that was never mutated this equals the physical row count.
func (c *Collection) Len() int { return int(c.live.Load()) }

// PhysLen returns the physical row count across all shards, live plus
// tombstoned. Compaction shrinks it back toward Len.
func (c *Collection) PhysLen() int { return c.total }

// Tombstoned returns the number of tombstoned (deleted but not yet
// compacted) rows.
func (c *Collection) Tombstoned() int { return int(c.tomb.Load()) }

// MutSeq returns the number of mutations (inserts, deletes, upserts)
// applied to the collection over its lifetime; the WAL stamps records with
// this sequence.
func (c *Collection) MutSeq() uint64 { return c.mutSeq.Load() }

// Compactions and Relearns return the lifetime counts of shard compactions
// and of compactions that re-learned a shard's SFA quantization.
func (c *Collection) Compactions() int64 { return c.compactions.Load() }
func (c *Collection) Relearns() int64    { return c.relearns.Load() }

// SeriesLen returns the length of the indexed series.
func (c *Collection) SeriesLen() int { return c.stride }

// Shards returns the shard count.
func (c *Collection) Shards() int { return len(c.states) }

// Row returns the series stored under public id g (aliasing shard memory;
// do not modify), or nil when g is tombstoned. Like searches, Row must not
// run concurrently with mutations.
func (c *Collection) Row(g int) []float64 {
	s := len(c.states)
	shard, local := g%s, g/s
	if c.pub2loc != nil {
		v := c.pub2loc[g]
		if v < 0 {
			return nil
		}
		shard, local = int(v%int64(s)), int(v/int64(s))
	}
	st := c.state(shard)
	if st.tree != nil && st.tree.Tombstoned(int32(local)) {
		return nil
	}
	return st.data.Row(local)
}

// BuildSeconds returns the total build time across all phases.
func (c *Collection) BuildSeconds() float64 {
	return c.LearnSeconds + c.TransformSeconds + c.TreeSeconds
}

// SFAQuantizer returns the shared learned SFA summarization (nil for MESSI).
func (c *Collection) SFAQuantizer() *sfa.Quantizer { return c.sfaQ }

// Stats aggregates the per-shard tree statistics: sums for counts, weighted
// means for depth and leaf size, the maximum for depth.
func (c *Collection) Stats() index.Stats {
	var agg index.Stats
	var depthSum, sizeSum float64
	for i := range c.states {
		t := c.tree(i)
		if t == nil {
			continue
		}
		st := t.Stats()
		agg.Series += st.Series
		agg.Live += st.Live
		agg.Tombstoned += st.Tombstoned
		agg.Subtrees += st.Subtrees
		agg.Leaves += st.Leaves
		depthSum += st.AvgDepth * float64(st.Leaves)
		sizeSum += st.AvgLeafSize * float64(st.Leaves)
		if st.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = st.MaxDepth
		}
	}
	if agg.Leaves > 0 {
		agg.AvgDepth = depthSum / float64(agg.Leaves)
		agg.AvgLeafSize = sizeSum / float64(agg.Leaves)
	}
	return agg
}

// SplitCount sums the leaf splits every shard tree has performed — zero for
// a collection decoded from a version-3 container, the full build's count
// otherwise. Surfaced through LoadStats as the no-re-split proof.
func (c *Collection) SplitCount() int64 {
	var n int64
	for i := range c.states {
		t := c.tree(i)
		if t == nil {
			continue
		}
		n += t.SplitCount()
	}
	return n
}

// CheckInvariants verifies every shard tree's structural invariants, then
// the collection-level id-mapping invariants (pub2loc and the per-shard
// pubOf tables are mutually consistent bijections over the live series).
// Shards quarantined at load time have no tree and are skipped: the
// collection is valid as the degraded collection it declared itself to be.
func (c *Collection) CheckInvariants() error {
	for i := range c.states {
		t := c.tree(i)
		if t == nil {
			continue
		}
		if err := t.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return c.checkMappingInvariants()
}

// checkMappingInvariants verifies the public-id layer: counters add up, and
// when the explicit tables exist they form a bijection between non-deleted
// public ids and live physical rows.
func (c *Collection) checkMappingInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	phys, dead := 0, 0
	treeless := false // load-quarantined shards hold rows no tree accounts for
	for i := range c.states {
		st := c.state(i)
		if st.tree == nil {
			treeless = true
			continue
		}
		phys += st.tree.Len()
		dead += st.tree.TombstoneCount()
		if st.pubOf != nil && len(st.pubOf) != st.tree.Len() {
			return fmt.Errorf("core: shard %d pubOf has %d entries for %d rows", i, len(st.pubOf), st.tree.Len())
		}
	}
	if treeless {
		if phys > c.total {
			return fmt.Errorf("core: physical rows %d > recorded total %d", phys, c.total)
		}
	} else if phys != c.total {
		return fmt.Errorf("core: physical rows %d != recorded total %d", phys, c.total)
	}
	if got := int(c.live.Load() + c.tomb.Load()); got != c.total {
		return fmt.Errorf("core: live %d + tombstoned %d != total %d", c.live.Load(), c.tomb.Load(), c.total)
	}
	if td := int(c.tomb.Load()); td != dead && (!treeless || td < dead) {
		return fmt.Errorf("core: tombstone counter %d != bitmap total %d", td, dead)
	}
	if c.pub2loc == nil {
		if c.pubCount != int64(c.total) {
			return fmt.Errorf("core: identity id layout with %d public ids over %d rows", c.pubCount, c.total)
		}
		return nil
	}
	if int64(len(c.pub2loc)) != c.pubCount {
		return fmt.Errorf("core: pub2loc has %d entries for %d public ids", len(c.pub2loc), c.pubCount)
	}
	liveMapped := 0
	s := int64(len(c.states))
	for pub, v := range c.pub2loc {
		if v < 0 {
			continue
		}
		liveMapped++
		shard, local := int(v%s), int32(v/s)
		st := c.state(shard)
		if st.tree == nil {
			continue
		}
		if int(local) >= st.tree.Len() {
			return fmt.Errorf("core: id %d maps past shard %d (%d >= %d)", pub, shard, local, st.tree.Len())
		}
		if st.tree.Tombstoned(local) {
			return fmt.Errorf("core: id %d maps to tombstoned row %d of shard %d", pub, local, shard)
		}
		if st.pubOf != nil && st.pubOf[local] != int32(pub) {
			return fmt.Errorf("core: id %d maps to shard %d row %d, which claims id %d", pub, shard, local, st.pubOf[local])
		}
	}
	if liveMapped != int(c.live.Load()) {
		return fmt.Errorf("core: %d mapped live ids != live counter %d", liveMapped, c.live.Load())
	}
	return nil
}

// Insert adds one series (z-normalized internally) and returns its public
// id. Ids are assigned sequentially and remain stable for the series'
// lifetime, across upserts and compactions. The series lands in the shard
// with the fewest physical rows (lowest index on ties), which reproduces
// the historical round-robin placement for append-only workloads and steers
// new series toward reclaimed space after compaction. Mutations (Insert,
// Delete, Upsert) may run concurrently with each other and with compaction,
// but not with searches.
func (c *Collection) Insert(series []float64) (index.ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(series)
}

func (c *Collection) insertLocked(series []float64) (index.ID, error) {
	shard := c.insertTargetLocked()
	// Inserting into a quarantined shard would strand the series in a tree
	// searches skip (silent data loss); refuse instead.
	if err := c.shardGate(shard); err != nil {
		return 0, err
	}
	st := c.state(shard)
	if st.enc == nil {
		st.enc = st.tree.Encoder()
	}
	local, err := st.tree.Insert(distance.ZNormalized(series), st.enc)
	if err != nil {
		return 0, err
	}
	pub := index.ID(c.pubCount)
	if c.pub2loc != nil {
		c.pub2loc = append(c.pub2loc, int64(local)*int64(len(c.states))+int64(shard))
		st.pubOf = append(st.pubOf, int32(pub))
	}
	c.pubCount++
	c.total++
	c.live.Add(1)
	c.mutSeq.Add(1)
	c.epochs[shard].Add(1)
	return pub, nil
}

// insertGate reports whether the next Insert would be refused at the shard
// gate — the durable store preflights with it so a doomed insert never
// reaches the write-ahead log.
func (c *Collection) insertGate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shardGate(c.insertTargetLocked())
}

// mutationGate reports whether a Delete or Upsert of pub would be refused —
// unknown or tombstoned id, or quarantined home shard — without applying
// anything. The durable store's WAL-before-apply discipline preflights with
// it.
func (c *Collection) mutationGate(pub index.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	shard, _, err := c.lookupLocked(pub)
	if err != nil {
		return err
	}
	return c.shardGate(shard)
}

// nextPubID returns the public id the next Insert will assign.
func (c *Collection) nextPubID() index.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return index.ID(c.pubCount)
}

// insertTargetLocked picks the shard for the next insert: fewest physical
// rows, lowest index on ties. For append-only histories this reproduces the
// round-robin placement exactly, preserving the identity id layout. A
// load-quarantined shard has no tree and counts zero rows, so it is always
// the pick — and the shard gate then refuses the insert, exactly like the
// historical placement refusing to skip the hole.
func (c *Collection) insertTargetLocked() int {
	best, bestLen := 0, math.MaxInt
	for i := range c.states {
		n := 0
		if t := c.tree(i); t != nil {
			n = t.Len()
		}
		if n < bestLen {
			best, bestLen = i, n
		}
	}
	return best
}

// Delete tombstones the series with public id pub: it stops appearing in
// search results immediately (refinement skips it before the collector),
// its physical row lingers until compaction reclaims it, and its id is
// never reused. Deleting an unknown id returns ErrNotFound; deleting twice
// returns ErrTombstoned.
func (c *Collection) Delete(pub index.ID) error {
	c.mu.Lock()
	err := c.deleteLocked(pub)
	c.mu.Unlock()
	if err == nil {
		c.maybeAutoCompact()
	}
	return err
}

func (c *Collection) deleteLocked(pub index.ID) error {
	shard, local, err := c.lookupLocked(pub)
	if err != nil {
		return err
	}
	if err := c.shardGate(shard); err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteTombstone); err != nil {
			return err
		}
	}
	if err := c.tree(shard).Delete(local); err != nil {
		return err
	}
	if c.pub2loc != nil {
		c.pub2loc[pub] = -1
	}
	c.live.Add(-1)
	c.tomb.Add(1)
	c.mutSeq.Add(1)
	c.epochs[shard].Add(1)
	c.relearnChurn[shard].Add(1)
	return nil
}

// Upsert replaces the series stored under pub (z-normalized internally),
// keeping the public id stable: logically a delete of the old row plus an
// insert of the new one under a single mutation. The replacement may land
// in a different shard; searches observe the id with its new series and
// never both. Upserting an unknown id returns ErrNotFound, a deleted one
// ErrTombstoned (an upsert is a replacement, not a resurrection).
func (c *Collection) Upsert(pub index.ID, series []float64) error {
	c.mu.Lock()
	err := c.upsertLocked(pub, series)
	c.mu.Unlock()
	if err == nil {
		c.maybeAutoCompact()
	}
	return err
}

func (c *Collection) upsertLocked(pub index.ID, series []float64) error {
	oldShard, oldLocal, err := c.lookupLocked(pub)
	if err != nil {
		return err
	}
	if err := c.shardGate(oldShard); err != nil {
		return err
	}
	target := c.insertTargetLocked()
	if err := c.shardGate(target); err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteTombstone); err != nil {
			return err
		}
	}
	// The replacement row's local id no longer equals pub's round-robin
	// slot, so the explicit id tables take over from the identity layout.
	c.materializeLocked()
	st := c.state(target)
	if st.enc == nil {
		st.enc = st.tree.Encoder()
	}
	local, err := st.tree.Insert(distance.ZNormalized(series), st.enc)
	if err != nil {
		return err
	}
	// Tombstone the old row only after the insert succeeded, so a failed
	// upsert leaves the previous value intact.
	if err := c.tree(oldShard).Delete(oldLocal); err != nil {
		return fmt.Errorf("core: upsert of id %d: %w", pub, err)
	}
	st.pubOf = append(st.pubOf, int32(pub))
	c.pub2loc[pub] = int64(local)*int64(len(c.states)) + int64(target)
	c.total++
	c.tomb.Add(1) // old row tombstoned, new row live: the live count is unchanged
	c.mutSeq.Add(1)
	c.epochs[oldShard].Add(1)
	c.relearnChurn[oldShard].Add(1)
	if target != oldShard {
		c.epochs[target].Add(1)
		c.relearnChurn[target].Add(1)
	}
	return nil
}

// lookupLocked resolves a public id to its physical slot.
func (c *Collection) lookupLocked(pub index.ID) (shard int, local int32, err error) {
	if pub < 0 || int64(pub) >= c.pubCount {
		return 0, 0, fmt.Errorf("core: id %d: %w", pub, ErrNotFound)
	}
	s := int64(len(c.states))
	if c.pub2loc != nil {
		v := c.pub2loc[pub]
		if v < 0 {
			return 0, 0, fmt.Errorf("core: id %d: %w", pub, ErrTombstoned)
		}
		return int(v % s), int32(v / s), nil
	}
	shard, local = int(int64(pub)%s), int32(int64(pub)/s)
	if t := c.tree(shard); t != nil && t.Tombstoned(local) {
		return 0, 0, fmt.Errorf("core: id %d: %w", pub, ErrTombstoned)
	}
	return shard, local, nil
}

// materializeLocked switches the collection from the implicit identity id
// layout to explicit tables: pub2loc for public→physical and each shard's
// pubOf for physical→public. Until the first upsert or compaction both
// directions are pure arithmetic and the tables stay nil; afterwards the
// tables are authoritative. Tombstoned rows keep their public id in pubOf
// (refinement skips them before ids matter) while pub2loc marks the id
// deleted.
func (c *Collection) materializeLocked() {
	if c.pub2loc != nil {
		return
	}
	s := int64(len(c.states))
	c.pub2loc = make([]int64, c.pubCount)
	for p := range c.pub2loc {
		c.pub2loc[p] = int64(p) // identity: pub p packs to (p/S)*S + p%S == p
	}
	for i := range c.states {
		st := c.state(i)
		if st.tree == nil {
			continue
		}
		n := st.tree.Len()
		pubOf := make([]int32, n)
		for local := 0; local < n; local++ {
			pubOf[local] = int32(local)*int32(s) + int32(i)
			if st.tree.Tombstoned(int32(local)) {
				c.pub2loc[int64(local)*s+int64(i)] = -1
			}
		}
		st.pubOf = pubOf
	}
}

// CompactionPolicy governs shard compaction: when MaybeCompact selects a
// shard for rebuilding, and when a rebuild also re-learns the shard's SFA
// quantization from its surviving series.
type CompactionPolicy struct {
	// MaxTombstoneFraction is the tombstoned fraction (dead rows / physical
	// rows) at which MaybeCompact rebuilds a shard. <= 0 disables automatic
	// selection; CompactShard always compacts regardless.
	MaxTombstoneFraction float64
	// RelearnChurnFraction is the accumulated churn (mutations since the
	// shard's quantization was learned) as a fraction of its live series at
	// which a compaction re-learns the SFA bins from the survivors instead
	// of reusing a quantization the churned distribution may have drifted
	// away from. <= 0 never re-learns. Ignored for MESSI, whose quantizer is
	// data-independent. Re-learning changes only pruning power, never
	// results: exactness comes from the lower-bounding frame, not the bins.
	RelearnChurnFraction float64
	// Auto compacts in the background: after a mutation, a single background
	// goroutine runs MaybeCompact if none is already running. Queries never
	// block on it (the swap is RCU), and mutations only contend on the
	// mutation lock during snapshot and swap.
	Auto bool
}

// compactRetries is how many optimistic (build outside the lock) compaction
// attempts are made before the final attempt holds the mutation lock across
// the rebuild to guarantee progress.
const compactRetries = 2

// CompactShard rebuilds shard i from its surviving (non-tombstoned) series
// and atomically swaps the rebuilt shard in, reclaiming tombstone space.
// In-flight queries keep the state they started with (RCU: the old tree is
// never modified, only unpublished); mutations serialize against the
// snapshot and swap sections only, not the rebuild, which runs outside the
// lock and revalidates the shard's mutation epoch before swapping —
// retrying if writers raced it, and holding the lock for the final attempt.
//
// On a SOFA collection whose shard churn has reached
// CompactionPolicy.RelearnChurnFraction, the rebuild re-learns the shard's
// SFA quantization from the survivors; the shard then carries its own
// summarization and queries adapt transparently.
func (c *Collection) CompactShard(i int) error {
	if i < 0 || i >= len(c.states) {
		return fmt.Errorf("core: shard %d out of range [0,%d)", i, len(c.states))
	}
	for attempt := 0; ; attempt++ {
		done, err := c.compactOnce(i, attempt >= compactRetries)
		if done {
			return err
		}
	}
}

// compactOnce runs one compaction attempt on shard i: snapshot under the
// lock, build (outside the lock unless final), revalidate the epoch, swap.
// done == false requests an optimistic retry after losing a race with
// writers.
func (c *Collection) compactOnce(i int, final bool) (done bool, err error) {
	c.mu.Lock()
	st := c.state(i)
	if st.tree == nil {
		c.mu.Unlock()
		return true, &ShardError{Shard: i, Err: ErrShardQuarantined}
	}
	tree := st.tree
	n := tree.Len()
	deadCount := tree.TombstoneCount()
	if deadCount == 0 {
		c.mu.Unlock()
		return true, nil // nothing to reclaim
	}
	live := n - deadCount
	if live == 0 {
		// An index cannot be built over zero series; keep the fully
		// tombstoned shard as is (refinement already skips every row) until
		// inserts repopulate it.
		c.mu.Unlock()
		return true, nil
	}
	epoch := c.epochs[i].Load()
	churn := c.relearnChurn[i].Load()
	s := int32(len(c.states))
	data := distance.NewMatrix(live, c.stride)
	pubs := make([]int32, live)
	j := 0
	for local := int32(0); int(local) < n; local++ {
		if tree.Tombstoned(local) {
			continue
		}
		copy(data.Row(j), st.data.Row(int(local)))
		if st.pubOf != nil {
			pubs[j] = st.pubOf[local]
		} else {
			pubs[j] = local*s + int32(i)
		}
		j++
	}
	relearn := c.method == SOFA && c.cfg.Compaction.RelearnChurnFraction > 0 &&
		float64(churn) >= c.cfg.Compaction.RelearnChurnFraction*float64(live)
	if !final {
		c.mu.Unlock()
	}

	// The rebuild: survivors only, dense local ids, fresh tree. A shard that
	// was already re-learned keeps its own summarization unless this
	// compaction re-learns again.
	sum := tree.Sum()
	if relearn {
		q, lerr := sfa.Learn(data, sfa.Options{
			WordLength: c.cfg.WordLength,
			Bits:       c.cfg.Bits,
			Binning:    c.cfg.Binning,
			Selection:  c.cfg.Selection,
			SampleRate: c.cfg.SampleRate,
			MaxCoeffs:  c.cfg.MaxCoeffs,
			Seed:       c.cfg.Seed,
		})
		if lerr != nil {
			if final {
				c.mu.Unlock()
			}
			return true, fmt.Errorf("core: compaction re-learn of shard %d: %w", i, lerr)
		}
		sum = sfaSummarization{q}
	}
	newTree, berr := index.Build(data, sum, c.shardOptions())
	if berr != nil {
		if final {
			c.mu.Unlock()
		}
		return true, fmt.Errorf("core: compaction rebuild of shard %d: %w", i, berr)
	}

	if !final {
		c.mu.Lock()
		if c.epochs[i].Load() != epoch {
			c.mu.Unlock()
			return false, nil // writers raced the rebuild; retry with a fresh snapshot
		}
	}
	if faultinject.Enabled {
		if ferr := faultinject.Hook(faultinject.SiteCompactSwap); ferr != nil {
			c.mu.Unlock()
			return true, ferr // fault before the swap: the old state stands untouched
		}
	}
	c.materializeLocked()
	c.states[i].Store(&shardState{
		tree:      newTree,
		data:      data,
		pubOf:     pubs,
		relearned: relearn || st.relearned,
	})
	for jj, pub := range pubs {
		c.pub2loc[pub] = int64(jj)*int64(s) + int64(i)
	}
	c.total -= deadCount
	c.tomb.Add(int64(-deadCount))
	c.compactions.Add(1)
	c.epochs[i].Add(1) // invalidate any concurrent compaction's snapshot of this shard
	if relearn {
		c.relearns.Add(1)
		// The epoch held from snapshot to swap, so no churn accrued since.
		c.relearnChurn[i].Store(0)
	}
	c.mu.Unlock()
	return true, nil
}

// MaybeCompact compacts every shard whose tombstoned fraction has reached
// CompactionPolicy.MaxTombstoneFraction — the policy-driven entry point the
// Auto mode runs in the background and callers can invoke directly after a
// deletion burst. Returns the first compaction error.
func (c *Collection) MaybeCompact() error {
	p := c.cfg.Compaction
	if p.MaxTombstoneFraction <= 0 {
		return nil
	}
	for i := range c.states {
		c.mu.Lock()
		t := c.tree(i)
		due := t != nil && t.Len() > 0 &&
			float64(t.TombstoneCount()) >= p.MaxTombstoneFraction*float64(t.Len())
		c.mu.Unlock()
		if !due {
			continue
		}
		if err := c.CompactShard(i); err != nil {
			return err
		}
	}
	return nil
}

// maybeAutoCompact spawns the single background MaybeCompact pass the Auto
// policy allows, if none is already running.
func (c *Collection) maybeAutoCompact() {
	if !c.cfg.Compaction.Auto {
		return
	}
	if !c.compactingBG.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.compactingBG.Store(false)
		// Best-effort background pass: an error leaves the tombstones in
		// place and the next mutation retriggers the policy.
		_ = c.MaybeCompact()
	}()
}

// Searcher answers similarity queries against the collection. Create one
// per querying goroutine. Result slices returned by Search and its variants
// are owned by the Searcher and reused by its next call — copy them if they
// must survive.
type Searcher struct {
	c  *Collection
	ss []*index.Searcher

	// states pins each shard's state for the duration of a query (RCU read
	// side): refreshShards adopts the current pointers at query start, and
	// recreates a shard's tree searcher only when compaction swapped the
	// shard since the last query.
	states []*shardState

	// kn is the shared cross-shard collector (unused when the collection has
	// a single shard, where searches delegate to the tree engine directly).
	kn     index.KNNCollector
	resBuf []index.Result
	errs   []error // per-shard fault scratch: errs[i] != nil when shard i failed
	seeded []bool  // per-shard scratch: shard i's seed phase completed

	// meta describes the last query's execution (see LastMeta).
	meta QueryMeta

	// Certificate scratch for degraded queries, lazily allocated on the
	// first fault so healthy steady-state searches stay allocation-free. The
	// representation is recomputed here rather than borrowed from a shard
	// searcher, whose scratch a panic may have corrupted.
	certEnc index.Encoder
	certBuf []float64
	certQR  []float64

	// serial runs the shards sequentially on the calling goroutine (each
	// shard searcher is single-threaded too); used by SearchBatch workers
	// and the streaming engine so inter-query parallelism is not multiplied
	// by intra-query parallelism.
	serial bool
}

// NewSearcher creates a searcher over the collection; a single Search call
// fans out across shards and, within each shard, across the tree's
// configured workers.
func (c *Collection) NewSearcher() *Searcher {
	s := &Searcher{
		c:      c,
		ss:     make([]*index.Searcher, len(c.states)),
		states: make([]*shardState, len(c.states)),
		errs:   make([]error, len(c.states)),
		seeded: make([]bool, len(c.states)),
	}
	s.refreshShards()
	return s
}

// newSerialSearcher creates a fully single-threaded collection searcher.
func (c *Collection) newSerialSearcher() *Searcher {
	s := &Searcher{
		c:      c,
		ss:     make([]*index.Searcher, len(c.states)),
		states: make([]*shardState, len(c.states)),
		errs:   make([]error, len(c.states)),
		seeded: make([]bool, len(c.states)),
		serial: true,
	}
	s.refreshShards()
	return s
}

// refreshShards adopts each shard's current state at query start, creating
// a fresh tree searcher only for shards compaction swapped since this
// searcher's previous query. The steady state without compaction is one
// pointer compare per shard — no allocation on the query hot path.
func (s *Searcher) refreshShards() {
	for i := range s.ss {
		cur := s.c.state(i)
		if cur == s.states[i] {
			continue
		}
		s.states[i] = cur
		if cur.tree == nil {
			s.ss[i] = nil // quarantined at load: no tree to search
			continue
		}
		if s.serial {
			s.ss[i] = cur.tree.NewSerialSearcher()
		} else {
			s.ss[i] = cur.tree.NewSearcher()
		}
	}
}

// respawnShard replaces shard i's searcher after a panic: the old one's
// scratch (queues, collector registration, tables) is in an undefined state,
// so it is discarded rather than reused — the price of a fault, not of the
// steady state.
func (s *Searcher) respawnShard(i int) {
	cur := s.c.state(i)
	s.states[i] = cur
	if cur.tree == nil {
		s.ss[i] = nil
		return
	}
	if s.serial {
		s.ss[i] = cur.tree.NewSerialSearcher()
	} else {
		s.ss[i] = cur.tree.NewSearcher()
	}
}

// serialSearcher checks a serial searcher out of the collection's pool.
func (c *Collection) serialSearcher() *Searcher {
	if s, ok := c.searchers.Get().(*Searcher); ok {
		return s
	}
	return c.newSerialSearcher()
}

// shardQuery builds shard i's ShardQuery for the current collector. The
// public-id table of the pinned shard state (nil while the identity layout
// holds) rides along, so offers map tree-local ids to stable public ids
// against exactly the tree snapshot being searched.
func (s *Searcher) shardQuery(i int, epsilon float64) index.ShardQuery {
	return index.ShardQuery{
		KN:      &s.kn,
		PubIDs:  s.states[i].pubOf,
		IDMul:   index.ID(len(s.ss)),
		IDAdd:   index.ID(i),
		Epsilon: epsilon,
	}
}

// baseMeta seeds a query's meta with the collection-wide mutation counters.
func (s *Searcher) baseMeta() QueryMeta {
	return QueryMeta{
		Live:                 int(s.c.live.Load()),
		Tombstoned:           int(s.c.tomb.Load()),
		Compactions:          s.c.compactions.Load(),
		Relearns:             s.c.relearns.Load(),
		RelearnChurnFraction: s.c.cfg.Compaction.RelearnChurnFraction,
	}
}

// Plan describes one query's execution for the unified, context-aware query
// path: exact (the zero value apart from K), ε-approximate, or best-leaf
// approximate, with an optional per-query deadline. It is the single
// internal representation every public query variant lowers to.
type Plan struct {
	// K is the number of neighbors to return (required, >= 1).
	K int
	// Epsilon relaxes pruning for (1+Epsilon)-approximate answers; 0 is
	// exact. Ignored when Approximate is set.
	Epsilon float64
	// Approximate answers from each shard's best-matching leaf only (the
	// classical iSAX approximate probe; stage 1 of the exact engine).
	Approximate bool
	// Deadline, when nonzero, aborts the query with context.DeadlineExceeded
	// once passed. Checked at shard granularity, so an expired query stops
	// between shard stages instead of running to completion.
	Deadline time.Time
	// AllowPartial accepts degraded answers: when one or more shards fail
	// (panic, fault, or quarantine), the query returns the merged results of
	// the surviving shards with nil error instead of failing, and
	// Searcher.LastMeta carries the shard counts plus the ε certificate
	// bounding the degradation. A degraded query that would return zero
	// results still fails (with an error wrapping ErrDegraded): an empty
	// answer certifies nothing. Cancellation and deadline expiry remain
	// errors regardless — the caller asked the query to stop.
	AllowPartial bool
}

// queryErr reports why in-flight query work must stop: context cancellation
// (or context deadline) first, then plan-deadline expiry. The ctx.Err check
// is skipped for non-cancellable contexts (Done() == nil), keeping the
// common Background case free.
func queryErr(ctx context.Context, deadline time.Time) error {
	if ctx != nil && ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// SearchPlan is the unified query entry point: it executes p against all
// shards, honoring ctx cancellation and p.Deadline at shard granularity, and
// appends the answers (ascending distance) to dst, returning the extended
// slice. Ownership of the result memory is therefore the caller's: passing a
// reused buffer gives an allocation-free steady state, passing nil returns a
// fresh slice. Exact, ε-approximate and best-leaf-approximate search are all
// the same path here, selected by the plan.
func (s *Searcher) SearchPlan(ctx context.Context, query []float64, p Plan, dst []index.Result) ([]index.Result, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", p.K)
	}
	if p.Epsilon < 0 {
		return nil, fmt.Errorf("core: epsilon must be >= 0, got %v", p.Epsilon)
	}
	if len(query) != s.c.stride {
		return nil, fmt.Errorf("core: query length %d, want %d", len(query), s.c.stride)
	}
	if err := queryErr(ctx, p.Deadline); err != nil {
		return nil, err
	}
	epsilon := p.Epsilon
	if p.Approximate {
		epsilon = 0
	}
	if err := s.searchShardsCtx(ctx, p.Deadline, query, p.K, epsilon, p.Approximate, p.AllowPartial); err != nil {
		return nil, err
	}
	return s.kn.ResultsAppend(dst), nil
}

// searchShards runs one query across every shard with no cancellation
// point — the legacy entry kept for the context-free Search* wrappers, which
// predate partial results and stay fail-fast.
func (s *Searcher) searchShards(query []float64, k int, epsilon float64, seedOnly bool) error {
	return s.searchShardsCtx(context.Background(), time.Time{}, query, k, epsilon, seedOnly, false)
}

// searchShardsCtx runs one query across every shard: a seeding phase first
// (every shard's approximate stage feeds the shared collector, so each
// shard's exact stage starts from the best bound any shard established),
// then the exact phase. With serial searchers both phases run inline on the
// calling goroutine; otherwise shards run concurrently, and within each
// shard the tree applies its own worker fan-out. Cancellation (ctx or
// deadline) is checked before every per-shard stage, so a cancelled query
// stops between shards rather than running every stage to completion.
//
// Faults are contained at shard granularity: a panic or engine error inside
// one shard's stage is recorded in s.errs[i] (and fed to the health policy —
// see fault.go) without touching the other shards, and resolveFaults decides
// afterwards whether the query fails (the default) or returns the
// survivors' partial answer with an ε certificate (allowPartial).
// Cancellation errors are never shard faults; they abort the query as
// before.
func (s *Searcher) searchShardsCtx(ctx context.Context, deadline time.Time, query []float64, k int, epsilon float64, seedOnly, allowPartial bool) error {
	if len(query) != s.c.stride {
		return fmt.Errorf("core: query length %d, want %d", len(query), s.c.stride)
	}
	s.kn.Reset(k)
	s.refreshShards()
	s.meta = s.baseMeta()
	if s.serial || len(s.ss) == 1 {
		for i, sub := range s.ss {
			s.seeded[i] = false
			if s.errs[i] = s.c.shardGate(i); s.errs[i] != nil {
				continue
			}
			if err := queryErr(ctx, deadline); err != nil {
				return err
			}
			s.errs[i] = s.seedShardSafe(i, sub, query, k, epsilon)
			s.seeded[i] = s.errs[i] == nil
		}
		if !seedOnly {
			for i, sub := range s.ss {
				if !s.seeded[i] {
					continue
				}
				if err := queryErr(ctx, deadline); err != nil {
					return err
				}
				s.errs[i] = s.finishShardSafe(i, sub)
			}
		}
		return s.resolveFaults(query, allowPartial)
	}
	errs := s.errs
	var wg sync.WaitGroup
	for i, sub := range s.ss {
		s.seeded[i] = false
		if errs[i] = s.c.shardGate(i); errs[i] != nil {
			continue
		}
		wg.Add(1)
		go func(i int, sub *index.Searcher) {
			defer wg.Done()
			if err := queryErr(ctx, deadline); err != nil {
				errs[i] = err
				return
			}
			errs[i] = s.seedShardSafe(i, sub, query, k, epsilon)
			s.seeded[i] = errs[i] == nil
		}(i, sub)
	}
	wg.Wait()
	if !seedOnly {
		var wg2 sync.WaitGroup
		for i, sub := range s.ss {
			if !s.seeded[i] {
				continue
			}
			wg2.Add(1)
			go func(i int, sub *index.Searcher) {
				defer wg2.Done()
				if err := queryErr(ctx, deadline); err != nil {
					errs[i] = err
					return
				}
				errs[i] = s.finishShardSafe(i, sub)
			}(i, sub)
		}
		wg2.Wait()
	}
	return s.resolveFaults(query, allowPartial)
}

// seedShardSafe runs shard i's seeding stage with panic containment: a
// panic in the engine (or one of its internal worker goroutines, which
// forward theirs) comes back as a *PanicError, feeds the quarantine policy,
// and costs this searcher's shard-i searcher (respawned fresh — its scratch
// is unsafe to reuse). Engine errors are attributed to the shard. The
// deferred recover is open-coded by the compiler, preserving the
// allocation-free healthy path.
func (s *Searcher) seedShardSafe(i int, sub *index.Searcher, query []float64, k int, epsilon float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = s.c.recordShardPanic(i, r)
			s.respawnShard(i)
		}
	}()
	if err := sub.SeedShard(query, k, s.shardQuery(i, epsilon)); err != nil {
		return &ShardError{Shard: i, Err: err}
	}
	return nil
}

// finishShardSafe runs shard i's exact stage under the same containment
// contract as seedShardSafe; a fully completed shard resets its
// consecutive-panic count.
func (s *Searcher) finishShardSafe(i int, sub *index.Searcher) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = s.c.recordShardPanic(i, r)
			s.respawnShard(i)
		}
	}()
	if err := sub.FinishShard(); err != nil {
		return &ShardError{Shard: i, Err: err}
	}
	s.c.health[i].panics.Store(0)
	return nil
}

// resolveFaults inspects the per-shard outcomes recorded by searchShardsCtx
// and settles the query: cancellation errors abort it unchanged; shard
// faults either fail it (fail-fast, the default) or are absorbed into a
// degraded answer with meta and certificate (allowPartial) — unless nothing
// survived, in which case the partial answer would be empty and the query
// fails even under allowPartial.
func (s *Searcher) resolveFaults(query []float64, allowPartial bool) error {
	var firstFault error
	failed := 0
	for i := range s.ss {
		err := s.errs[i]
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		failed++
		if firstFault == nil {
			firstFault = err
		}
	}
	s.meta.ShardsSearched = len(s.ss) - failed
	s.meta.ShardsFailed = failed
	if failed == 0 {
		return nil
	}
	if !allowPartial {
		return firstFault
	}
	if s.kn.Len() == 0 {
		return firstFault
	}
	s.meta.EpsilonBound = s.certificate(query)
	return nil
}

// finishResults snapshots the shared collector into the searcher-owned
// result buffer (sorted ascending) and returns it.
func (s *Searcher) finishResults() []index.Result {
	s.resBuf = s.kn.ResultsAppend(s.resBuf[:0])
	return s.resBuf
}

// Search returns the exact k nearest neighbors of query (any scale; it is
// z-normalized internally) under squared z-normalized Euclidean distance,
// in ascending order. With a single shard this is exactly the PR-1 tree
// engine (zero allocations in steady state); with S shards the shards share
// one collector and prune against each other's best-so-far.
func (s *Searcher) Search(query []float64, k int) ([]index.Result, error) {
	if s.singleFast() {
		return s.searchSingleSafe(query, k, 0, false)
	}
	if err := s.searchShards(query, k, 0, false); err != nil {
		return nil, err
	}
	return s.finishResults(), nil
}

// singleFast reports whether the single-shard direct-delegation fast path
// applies: one shard whose pinned state still uses the identity id layout,
// so the tree's local ids ARE the public ids. A mutated single-shard
// collection with an id table routes through the shard path instead, which
// applies PubIDs at offer time. Refreshes the shard pin as a side effect.
func (s *Searcher) singleFast() bool {
	if len(s.ss) != 1 {
		return false
	}
	s.refreshShards()
	return s.states[0].pubOf == nil
}

// searchSingleSafe is the single-shard legacy fast path — a direct
// delegation to the tree engine, skipping the cross-shard collector — under
// the same containment contract as the sharded path: quarantine is checked
// up front, a panic comes back as a *PanicError (feeding the health policy
// and respawning the shard searcher), and LastMeta reflects the outcome.
// With one shard there are no survivors to return, so every fault is an
// error regardless of AllowPartial. The deferred recover is open-coded,
// preserving the zero-allocation steady state.
func (s *Searcher) searchSingleSafe(query []float64, k int, epsilon float64, approx bool) (res []index.Result, err error) {
	if err := s.c.shardGate(0); err != nil {
		s.meta = s.baseMeta()
		s.meta.ShardsFailed = 1
		s.meta.EpsilonBound = math.Inf(1)
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = s.c.recordShardPanic(0, r)
			s.respawnShard(0)
			s.meta = s.baseMeta()
			s.meta.ShardsFailed = 1
			s.meta.EpsilonBound = math.Inf(1)
		}
	}()
	s.meta = s.baseMeta()
	s.meta.ShardsSearched = 1
	switch {
	case approx:
		return s.ss[0].SearchApproximate(query, k)
	case epsilon > 0:
		return s.ss[0].SearchEpsilon(query, k, epsilon)
	default:
		res, err = s.ss[0].Search(query, k)
		if err == nil {
			s.c.health[0].panics.Store(0)
		}
		return res, err
	}
}

// Search1 returns the exact nearest neighbor.
func (s *Searcher) Search1(query []float64) (index.Result, error) {
	res, err := s.Search(query, 1)
	if err != nil {
		return index.Result{}, err
	}
	return res[0], nil
}

// SearchApproximate returns up to k approximate nearest neighbors by probing
// only the best-matching leaf of every shard — the classical iSAX-family
// approximate search, run per shard and merged. The returned distances
// upper-bound the true k-NN distances.
func (s *Searcher) SearchApproximate(query []float64, k int) ([]index.Result, error) {
	if s.singleFast() {
		return s.searchSingleSafe(query, k, 0, true)
	}
	if err := s.searchShards(query, k, 0, true); err != nil {
		return nil, err
	}
	return s.finishResults(), nil
}

// SearchEpsilon returns k neighbors guaranteed within a (1+epsilon) factor
// of the exact k-NN distances. epsilon = 0 is exact search.
func (s *Searcher) SearchEpsilon(query []float64, k int, epsilon float64) ([]index.Result, error) {
	if epsilon < 0 {
		return nil, fmt.Errorf("core: epsilon must be >= 0, got %v", epsilon)
	}
	if s.singleFast() {
		return s.searchSingleSafe(query, k, epsilon, false)
	}
	if err := s.searchShards(query, k, epsilon, false); err != nil {
		return nil, err
	}
	return s.finishResults(), nil
}

// LastStats sums the pruning counters of the most recent Search call across
// shards.
func (s *Searcher) LastStats() index.SearchStats {
	var agg index.SearchStats
	for _, sub := range s.ss {
		if sub == nil {
			continue
		}
		st := sub.LastStats()
		agg.NodesVisited += st.NodesVisited
		agg.LeavesRefined += st.LeavesRefined
		agg.SeriesLBD += st.SeriesLBD
		agg.SeriesED += st.SeriesED
	}
	return agg
}

// SearchBatch answers a batch of queries with inter-query parallelism: up to
// workers queries run concurrently, each handled end-to-end (all shards) by
// a pooled serial searcher. workers <= 0 selects GOMAXPROCS. Results are in
// query order and safe to retain — which is why the output is freshly
// allocated per call; sustained traffic that wants allocation-free
// steady state should use NewStream (callback-scoped results) or, on a
// single-shard collection, Tree.BatchSearchInto.
//
// SearchBatch is the fixed-k convenience over SearchBatchPlan, the unified
// context-aware batch path.
func (c *Collection) SearchBatch(queries *distance.Matrix, k, workers int) ([][]index.Result, error) {
	if queries == nil || queries.Len() == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	if queries.Stride != c.stride {
		return nil, fmt.Errorf("core: query length %d, want %d", queries.Stride, c.stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	qs := make([]PlanQuery, queries.Len())
	for i := range qs {
		qs[i] = PlanQuery{Series: queries.Row(i), Plan: Plan{K: k}}
	}
	return c.SearchBatchPlan(context.Background(), qs, workers)
}

// PlanQuery pairs one query series with its execution plan for the batch
// path, so a single batch can mix k values, approximation modes and
// per-query deadlines.
type PlanQuery struct {
	Series []float64
	Plan   Plan
}

// SearchBatchPlan answers a heterogeneous batch of planned queries with
// inter-query parallelism: up to workers queries run concurrently, each
// handled end-to-end (all shards) by a pooled serial searcher. workers <= 0
// selects GOMAXPROCS. Results are in query order and caller-owned (freshly
// allocated per query). Per-query validation (length, k, epsilon) happens
// when each query executes, via SearchPlan.
//
// Cancellation is checked at batch granularity (before every query is
// started) and, through SearchPlan, at shard granularity inside each query,
// so cancelling ctx stops a large batch mid-flight. Any error — a ctx
// error, an invalid query, or an individual query's expired plan deadline —
// aborts the whole batch: every worker stops before its next query, and one
// of the observed errors is returned.
func (c *Collection) SearchBatchPlan(ctx context.Context, qs []PlanQuery, workers int) ([][]index.Result, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	out := make([][]index.Result, len(qs))
	if workers == 1 {
		s := c.serialSearcher()
		defer c.searchers.Put(s)
		for i, q := range qs {
			if err := queryErr(ctx, time.Time{}); err != nil {
				return nil, err
			}
			res, err := s.SearchPlan(ctx, q.Series, q.Plan, nil)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	errs := make([]error, workers)
	var abort atomic.Bool // any worker's error stops the whole batch
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.serialSearcher()
			defer c.searchers.Put(s)
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(qs) || abort.Load() {
					return
				}
				if err := queryErr(ctx, time.Time{}); err != nil {
					errs[w] = err
					abort.Store(true)
					return
				}
				res, err := s.SearchPlan(ctx, qs[i].Series, qs[i].Plan, nil)
				if err != nil {
					errs[w] = err
					abort.Store(true)
					return
				}
				out[i] = res
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
