package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/distance"
)

// The throughput benchmarks mirror internal/index's BenchmarkBatchSearchQPS
// exactly — same generator seed, dataset shape (20000 x 128), leaf capacity,
// SFA sampling rate, k and query count — so the sharded and streaming paths
// are directly comparable against the PR-1 single-tree batched numbers at
// equal total workers.

func qpsFixture(b *testing.B, shards int) (*Index, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(53))
	m := mixedMatrix(rng, 20000, 128)
	ix, err := Build(m, Config{
		Method:       SOFA,
		LeafCapacity: 256,
		SampleRate:   0.05,
		Shards:       shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 4*runtime.GOMAXPROCS(0))
	for i := range queries {
		qv := make([]float64, 128)
		for j := range qv {
			qv[j] = rng.NormFloat64()
		}
		queries[i] = qv
	}
	return ix, queries
}

func benchCollectionBatchQPS(b *testing.B, shards int) {
	ix, queries := qpsFixture(b, shards)
	qm, err := distance.FromRows(queries)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchBatch(qm, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(queries))/secs, "queries/s")
	}
}

func benchCollectionStreamQPS(b *testing.B, shards int) {
	ix, queries := qpsFixture(b, shards)
	var pending sync.WaitGroup
	st, err := ix.NewStream(10, 0, func(qid uint64, res []Result, err error) {
		if err != nil {
			b.Error(err)
		}
		pending.Done()
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pending.Add(len(queries))
		for _, q := range queries {
			if _, err := st.Submit(q); err != nil {
				b.Fatal(err)
			}
		}
		pending.Wait()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(queries))/secs, "queries/s")
	}
}

func BenchmarkCollectionBatchQPS1(b *testing.B)  { benchCollectionBatchQPS(b, 1) }
func BenchmarkCollectionBatchQPS4(b *testing.B)  { benchCollectionBatchQPS(b, 4) }
func BenchmarkCollectionStreamQPS1(b *testing.B) { benchCollectionStreamQPS(b, 1) }
func BenchmarkCollectionStreamQPS4(b *testing.B) { benchCollectionStreamQPS(b, 4) }
