package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distance"
)

// The sharded-identity regression: on a fixed-seed 5k-series dataset, a
// sharded collection must return exactly — same ids, same distances — what
// the single-tree index returns, for every shard count and k. The result
// sets are compared bit-for-bit: shards hold copies of the same rows, the
// engines accept only fully-computed (never abandoned) distances, and the
// sort is (dist, id)-total, so any divergence is a sharding bug, not noise.
func TestShardedSearchMatchesSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := 64
	data := mixedMatrix(rng, 5000, n)
	queries := distance.NewMatrix(20, n)
	for i := 0; i < queries.Len(); i++ {
		row := queries.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	single, err := Build(data, Config{Method: SOFA, LeafCapacity: 64, SampleRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ k, q int }
	expected := map[key][]Result{}
	ss := single.NewSearcher()
	for _, k := range []int{1, 10} {
		for qi := 0; qi < queries.Len(); qi++ {
			res, err := ss.Search(queries.Row(qi), k)
			if err != nil {
				t.Fatal(err)
			}
			expected[key{k, qi}] = append([]Result(nil), res...)
		}
	}

	for _, shards := range []int{1, 2, 8} {
		ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 64, SampleRate: 0.05, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if ix.Shards() != shards {
			t.Fatalf("built %d shards, want %d", ix.Shards(), shards)
		}
		if ix.Len() != 5000 {
			t.Fatalf("shards=%d: Len=%d", shards, ix.Len())
		}
		s := ix.NewSearcher()
		for _, k := range []int{1, 10} {
			for qi := 0; qi < queries.Len(); qi++ {
				got, err := s.Search(queries.Row(qi), k)
				if err != nil {
					t.Fatal(err)
				}
				want := expected[key{k, qi}]
				if len(got) != len(want) {
					t.Fatalf("shards=%d k=%d query %d: %d results, want %d",
						shards, k, qi, len(got), len(want))
				}
				for r := range want {
					if got[r] != want[r] {
						t.Fatalf("shards=%d k=%d query %d rank %d: got %+v want %+v",
							shards, k, qi, r, got[r], want[r])
					}
				}
			}
		}
		// SearchBatch over the same queries must agree too (pooled serial
		// collection searchers; workers == 1 exercises the inline path).
		for _, k := range []int{1, 10} {
			for _, workers := range []int{1, 4} {
				batch, err := ix.SearchBatch(queries, k, workers)
				if err != nil {
					t.Fatal(err)
				}
				for qi := range batch {
					want := expected[key{k, qi}]
					for r := range want {
						if batch[qi][r] != want[r] {
							t.Fatalf("shards=%d k=%d workers=%d batch query %d rank %d: got %+v want %+v",
								shards, k, workers, qi, r, batch[qi][r], want[r])
						}
					}
				}
			}
		}
	}
}

// Global ids must be recoverable from sharded searches: each series found
// under the id of the row of the original matrix.
func TestShardedGlobalIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	data := mixedMatrix(rng, 600, 64)
	ix, err := Build(data, Config{Method: MESSI, LeafCapacity: 32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	for _, g := range []int{0, 1, 17, 599} {
		r, err := s.Search1(data.Row(g))
		if err != nil {
			t.Fatal(err)
		}
		if int(r.ID) != g || r.Dist > 1e-9 {
			t.Errorf("self query for global id %d returned %+v", g, r)
		}
		// Row inverts the partitioning: the row under a global id is the
		// original matrix row.
		row := ix.Row(g)
		orig := data.Row(g)
		for j := range orig {
			if row[j] != orig[j] {
				t.Fatalf("Row(%d) diverges from the original matrix at %d", g, j)
			}
		}
	}
}

// Insert must preserve the round-robin id mapping and stay exact.
func TestShardedInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	base := mixedMatrix(rng, 300, 64)
	extra := mixedMatrix(rng, 100, 64)
	all := distance.NewMatrix(400, 64)
	copy(all.Data, base.Data)
	ix, err := Build(base, Config{Method: MESSI, LeafCapacity: 24, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < extra.Len(); i++ {
		id, err := ix.Insert(extra.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != 300+i {
			t.Fatalf("insert %d assigned global id %d, want %d", i, id, 300+i)
		}
		copy(all.Row(300+i), extra.Row(i))
	}
	if ix.Len() != 400 {
		t.Fatalf("Len=%d after inserts", ix.Len())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	for qi := 0; qi < 10; qi++ {
		query := make([]float64, 64)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		res, err := s.Search(query, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(all, query, 5)
		for i := range want {
			if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
				t.Fatalf("query %d rank %d: got %v want %v", qi, i, res[i].Dist, want[i])
			}
		}
	}
	// Inserted series findable under their global ids.
	r, err := s.Search1(extra.Row(42))
	if err != nil {
		t.Fatal(err)
	}
	if int(r.ID) != 342 || r.Dist > 1e-9 {
		t.Errorf("inserted series lookup returned %+v, want id 342", r)
	}
}

// The approximate and epsilon modes must behave on shards as on the single
// tree: approximate distances upper-bound the exact ones; epsilon answers
// are within the (1+eps)^2 factor in squared space.
func TestShardedApproximateAndEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	data := mixedMatrix(rng, 1000, 64)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	const k = 5
	const eps = 0.5
	for qi := 0; qi < 10; qi++ {
		query := make([]float64, 64)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		exact := bruteKNN(data, query, k)
		approx, err := s.SearchApproximate(query, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) == 0 {
			t.Fatal("approximate search returned nothing")
		}
		for i, r := range approx {
			if i < len(exact) && r.Dist < exact[i]-1e-12 {
				t.Fatalf("approximate rank %d below exact: %v < %v", i, r.Dist, exact[i])
			}
		}
		res, err := s.SearchEpsilon(query, k, eps)
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 + eps) * (1 + eps)
		for i := range res {
			if res[i].Dist > exact[i]*bound+1e-9 {
				t.Fatalf("epsilon rank %d: %v exceeds %v*(1+eps)^2", i, res[i].Dist, exact[i])
			}
		}
	}
	if _, err := s.SearchEpsilon(make([]float64, 64), 1, -1); err == nil {
		t.Error("expected error on negative epsilon")
	}
}

// Shard-count validation and clamping.
func TestShardConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	data := mixedMatrix(rng, 10, 32)
	if _, err := Build(data, Config{Method: MESSI, Shards: -1}); err == nil {
		t.Error("expected error on negative shard count")
	}
	ix, err := Build(data, Config{Method: MESSI, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Shards() != 10 {
		t.Errorf("shards not clamped to collection size: %d", ix.Shards())
	}
	s := ix.NewSearcher()
	r, err := s.Search1(data.Row(7))
	if err != nil {
		t.Fatal(err)
	}
	if int(r.ID) != 7 || r.Dist > 1e-9 {
		t.Errorf("clamped-shard self query returned %+v", r)
	}
}
