// Package core is the public face of the reproduction: the SOFA index
// (SymbOlic Fourier Approximation — the paper's contribution) and its
// baseline twin MESSI. Both are the same MESSI-style parallel tree
// (internal/index); they differ only in the summarization plugged in:
//
//   - SOFA uses SFA — DFT values selected by variance with learned
//     (equi-width) per-value quantization (internal/sfa);
//   - MESSI uses iSAX — PAA means under fixed Normal-distribution
//     quantization (internal/sax).
//
// Every entry point routes through the Collection layer: an index made of S
// shards (Config.Shards; default 1), each an independent tree over a
// disjoint round-robin slice of the series, sharing one learned
// summarization. Exact k-NN runs the shards against one shared collector
// whose atomic bound is the cross-shard best-so-far, so a sharded index
// returns exactly what the single tree returns while build, memory and
// NUMA placement scale per shard. See Collection for the id mapping and
// the merge contract, and Collection.NewStream for the sustained-traffic
// streaming engine.
//
// Typical usage:
//
//	data, _ := distance.FromRows(rows) // N series of equal length
//	data.ZNormalizeAll()
//	ix, _ := core.Build(data, core.Config{Method: core.SOFA})
//	res, _ := ix.NewSearcher().Search(query, 10)
package core

import (
	"fmt"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/sax"
	"repro/internal/sfa"
)

// Method selects the summarization behind the index.
type Method int

const (
	// SOFA is the paper's index: SFA summarization over the MESSI tree.
	SOFA Method = iota
	// MESSI is the state-of-the-art baseline: iSAX summarization over the
	// same tree.
	MESSI
)

// Result is one answer of a similarity query (re-exported from the index
// layer so core callers need not import it).
type Result = index.Result

func (m Method) String() string {
	switch m {
	case SOFA:
		return "SOFA"
	case MESSI:
		return "MESSI"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config configures Build. Zero values select the paper's defaults
// (word length 16, alphabet 256, SFA with equi-width binning and variance
// selection learned from a 1% sample, one shard).
type Config struct {
	Method       Method
	WordLength   int // symbols per word (default 16)
	Bits         int // bits per symbol (default 8; alphabet 256)
	LeafCapacity int // tree leaf size (default 1024)
	Workers      int // build/query parallelism budget across shards (default GOMAXPROCS)
	Queues       int // query priority queues across shards (default Workers)

	// Shards is the number of index shards (default 1). Each shard is an
	// independent tree over 1/S of the series; searches merge per-shard
	// results through a shared best-so-far, so results are identical to a
	// single-shard build. See the README for how to pick S.
	Shards int

	// NoLeafBlocks disables the per-leaf contiguous word blocks, roughly
	// halving word memory at a refinement-locality cost — for
	// memory-constrained builds (e.g. many shards per machine).
	NoLeafBlocks bool

	// PerSeriesLBD reverts query refinement to one lower-bound kernel call
	// per series instead of one block call per leaf. Results are identical;
	// the knob exists for the same-binary kernel A/B benchmarks. It is a
	// query-time setting, not a structural one — it is not persisted.
	PerSeriesLBD bool

	// QuarantineAfter is how many consecutive panicking queries quarantine a
	// shard (default 3). A shard whose tree fails its invariant check after
	// a panic is quarantined immediately regardless. See Collection's fault
	// isolation contract (fault.go) and Plan.AllowPartial.
	QuarantineAfter int

	// Compaction governs tombstone reclamation and SFA re-learning for
	// mutable workloads; the zero value disables automatic compaction
	// (CompactShard remains available). See CompactionPolicy.
	Compaction CompactionPolicy

	// SFA-only knobs (ignored for MESSI).
	Binning    sfa.Binning   // default EquiWidth
	Selection  sfa.Selection // default HighestVariance
	SampleRate float64       // MCB sample ratio (default 0.01)
	MaxCoeffs  int           // candidate complex coefficients (default 16)
	Seed       int64         // sampling seed (default 1)
}

// Index is a built SOFA or MESSI index: a thin handle over a Collection of
// one or more shard trees. It is safe for concurrent searches (one Searcher
// per goroutine); mutations (Insert, Delete, Upsert) are safe with each
// other and with compaction but must be synchronized against searches.
type Index struct {
	col *Collection

	// Phase timings for the Fig. 7 breakdown, in seconds.
	LearnSeconds     float64 // SFA bin learning (0 for MESSI)
	TransformSeconds float64 // summarization of all series
	TreeSeconds      float64 // tree construction
}

// saxSummarization and sfaSummarization adapt the two quantizers to the
// index.Summarization interface.
type saxSummarization struct{ *sax.Quantizer }

func (s saxSummarization) NewIndexEncoder() index.Encoder { return s.Quantizer.NewEncoder() }

type sfaSummarization struct{ *sfa.Quantizer }

func (s sfaSummarization) NewIndexEncoder() index.Encoder { return s.Quantizer.NewTransformer() }

// Build constructs an index over data, which must contain z-normalized
// series (use Matrix.ZNormalizeAll; Build returns the paper's z-normalized
// Euclidean distances only under that contract). With cfg.Shards > 1 the
// series are partitioned round-robin across that many independent trees —
// see Collection.
func Build(data *distance.Matrix, cfg Config) (*Index, error) {
	col, err := BuildCollection(data, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{
		col:              col,
		LearnSeconds:     col.LearnSeconds,
		TransformSeconds: col.TransformSeconds,
		TreeSeconds:      col.TreeSeconds,
	}, nil
}

// Collection returns the underlying sharded collection.
func (ix *Index) Collection() *Collection { return ix.col }

// Method reports whether this is a SOFA or MESSI index.
func (ix *Index) Method() Method { return ix.col.Method() }

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.col.Len() }

// SeriesLen returns the length of the indexed series.
func (ix *Index) SeriesLen() int { return ix.col.SeriesLen() }

// Shards returns the number of index shards.
func (ix *Index) Shards() int { return ix.col.Shards() }

// Row returns the series stored under global id g (aliasing index memory;
// do not modify).
func (ix *Index) Row(g int) []float64 { return ix.col.Row(g) }

// Stats returns the tree-structure statistics (Fig. 8), aggregated across
// shards.
func (ix *Index) Stats() index.Stats { return ix.col.Stats() }

// BuildSeconds returns the total build time across all phases.
func (ix *Index) BuildSeconds() float64 { return ix.col.BuildSeconds() }

// SFAQuantizer returns the learned SFA summarization (nil for MESSI);
// exposed for the ablation experiments (Fig. 13 reads the selected
// coefficient indices). All shards share this one quantizer.
func (ix *Index) SFAQuantizer() *sfa.Quantizer { return ix.col.SFAQuantizer() }

// NewSearcher creates a searcher; see Collection.NewSearcher.
func (ix *Index) NewSearcher() *Searcher { return ix.col.NewSearcher() }

// SearchBatch answers a batch of queries with inter-query parallelism: up
// to workers queries run concurrently, each on a pooled single-threaded
// searcher (the FAISS protocol from the paper's Section V). workers <= 0
// selects GOMAXPROCS. Results are in query order and safe to retain.
func (ix *Index) SearchBatch(queries *distance.Matrix, k, workers int) ([][]index.Result, error) {
	return ix.col.SearchBatch(queries, k, workers)
}

// NewStream starts the streaming query engine; see Collection.NewStream.
func (ix *Index) NewStream(k, workers int, handle func(qid uint64, res []index.Result, err error)) (*Stream, error) {
	return ix.col.NewStream(k, workers, handle)
}

// Insert adds one series to the index (z-normalized internally) and returns
// its stable public id. Mutations (Insert, Delete, Upsert, compaction) may
// run concurrently with each other but not with searches — synchronize
// externally for mixed workloads. Inserted series are summarized with the
// index's existing learned quantization; re-learning happens only at a
// compaction that crosses CompactionPolicy.RelearnChurnFraction.
func (ix *Index) Insert(series []float64) (index.ID, error) {
	return ix.col.Insert(series)
}

// Delete tombstones the series with the given id; see Collection.Delete.
func (ix *Index) Delete(id index.ID) error { return ix.col.Delete(id) }

// Upsert replaces the series stored under id while keeping the id stable;
// see Collection.Upsert.
func (ix *Index) Upsert(id index.ID, series []float64) error {
	return ix.col.Upsert(id, series)
}

// CompactShard rebuilds one shard without its tombstoned rows and swaps it
// in RCU-style; see Collection.CompactShard.
func (ix *Index) CompactShard(i int) error { return ix.col.CompactShard(i) }

// MaybeCompact applies the configured CompactionPolicy across all shards;
// see Collection.MaybeCompact.
func (ix *Index) MaybeCompact() error { return ix.col.MaybeCompact() }

// CheckInvariants verifies every shard tree's structural invariants (mainly
// useful after Insert-heavy workloads and in tests).
func (ix *Index) CheckInvariants() error { return ix.col.CheckInvariants() }
