// Package core is the public face of the reproduction: the SOFA index
// (SymbOlic Fourier Approximation — the paper's contribution) and its
// baseline twin MESSI. Both are the same MESSI-style parallel tree
// (internal/index); they differ only in the summarization plugged in:
//
//   - SOFA uses SFA — DFT values selected by variance with learned
//     (equi-width) per-value quantization (internal/sfa);
//   - MESSI uses iSAX — PAA means under fixed Normal-distribution
//     quantization (internal/sax).
//
// Typical usage:
//
//	data, _ := distance.FromRows(rows) // N series of equal length
//	data.ZNormalizeAll()
//	ix, _ := core.Build(data, core.Config{Method: core.SOFA})
//	res, _ := ix.NewSearcher().Search(query, 10)
package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/sax"
	"repro/internal/sfa"
)

// Method selects the summarization behind the index.
type Method int

const (
	// SOFA is the paper's index: SFA summarization over the MESSI tree.
	SOFA Method = iota
	// MESSI is the state-of-the-art baseline: iSAX summarization over the
	// same tree.
	MESSI
)

func (m Method) String() string {
	switch m {
	case SOFA:
		return "SOFA"
	case MESSI:
		return "MESSI"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config configures Build. Zero values select the paper's defaults
// (word length 16, alphabet 256, SFA with equi-width binning and variance
// selection learned from a 1% sample).
type Config struct {
	Method       Method
	WordLength   int // symbols per word (default 16)
	Bits         int // bits per symbol (default 8; alphabet 256)
	LeafCapacity int // tree leaf size (default 1024)
	Workers      int // build/query parallelism (default GOMAXPROCS)
	Queues       int // query priority queues (default Workers)

	// SFA-only knobs (ignored for MESSI).
	Binning    sfa.Binning   // default EquiWidth
	Selection  sfa.Selection // default HighestVariance
	SampleRate float64       // MCB sample ratio (default 0.01)
	MaxCoeffs  int           // candidate complex coefficients (default 16)
	Seed       int64         // sampling seed (default 1)
}

// Index is a built SOFA or MESSI index. It is immutable and safe for
// concurrent searches (one Searcher per goroutine).
type Index struct {
	tree      *index.Tree
	method    Method
	cfg       Config           // effective (defaulted) configuration
	data      *distance.Matrix // the indexed series
	insertEnc index.Encoder    // lazily created encoder for Insert

	// Phase timings for the Fig. 7 breakdown, in seconds.
	LearnSeconds     float64 // SFA bin learning (0 for MESSI)
	TransformSeconds float64 // summarization of all series
	TreeSeconds      float64 // tree construction

	sfaQ *sfa.Quantizer // nil for MESSI
}

// saxSummarization and sfaSummarization adapt the two quantizers to the
// index.Summarization interface.
type saxSummarization struct{ *sax.Quantizer }

func (s saxSummarization) NewIndexEncoder() index.Encoder { return s.Quantizer.NewEncoder() }

type sfaSummarization struct{ *sfa.Quantizer }

func (s sfaSummarization) NewIndexEncoder() index.Encoder { return s.Quantizer.NewTransformer() }

// Build constructs an index over data, which must contain z-normalized
// series (use Matrix.ZNormalizeAll; Build returns the paper's z-normalized
// Euclidean distances only under that contract).
func Build(data *distance.Matrix, cfg Config) (*Index, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("core: cannot build over empty data")
	}
	if cfg.WordLength == 0 {
		cfg.WordLength = 16
	}
	if cfg.Bits == 0 {
		cfg.Bits = 8
	}
	if cfg.LeafCapacity == 0 {
		cfg.LeafCapacity = 1024
	}
	ix := &Index{method: cfg.Method, cfg: cfg, data: data}
	var sum index.Summarization
	switch cfg.Method {
	case MESSI:
		q, err := sax.NewQuantizer(data.Stride, cfg.WordLength, cfg.Bits)
		if err != nil {
			return nil, err
		}
		sum = saxSummarization{q}
	case SOFA:
		start := time.Now()
		q, err := sfa.Learn(data, sfa.Options{
			WordLength: cfg.WordLength,
			Bits:       cfg.Bits,
			Binning:    cfg.Binning,
			Selection:  cfg.Selection,
			SampleRate: cfg.SampleRate,
			MaxCoeffs:  cfg.MaxCoeffs,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		ix.LearnSeconds = time.Since(start).Seconds()
		ix.sfaQ = q
		sum = sfaSummarization{q}
	default:
		return nil, fmt.Errorf("core: unknown method %v", cfg.Method)
	}
	tree, err := index.Build(data, sum, index.Options{
		LeafCapacity: cfg.LeafCapacity,
		Workers:      cfg.Workers,
		Queues:       cfg.Queues,
	})
	if err != nil {
		return nil, err
	}
	ix.tree = tree
	ix.TransformSeconds = tree.TransformSeconds
	ix.TreeSeconds = tree.TreeSeconds
	return ix, nil
}

// Method reports whether this is a SOFA or MESSI index.
func (ix *Index) Method() Method { return ix.method }

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.tree.Len() }

// SeriesLen returns the length of the indexed series.
func (ix *Index) SeriesLen() int { return ix.tree.SeriesLen() }

// Stats returns the tree-structure statistics (Fig. 8).
func (ix *Index) Stats() index.Stats { return ix.tree.Stats() }

// BuildSeconds returns the total build time across all phases.
func (ix *Index) BuildSeconds() float64 {
	return ix.LearnSeconds + ix.TransformSeconds + ix.TreeSeconds
}

// SFAQuantizer returns the learned SFA summarization (nil for MESSI);
// exposed for the ablation experiments (Fig. 13 reads the selected
// coefficient indices).
func (ix *Index) SFAQuantizer() *sfa.Quantizer { return ix.sfaQ }

// Searcher answers exact similarity queries against the index. Create one
// per querying goroutine; a single Search parallelizes internally.
//
// Result slices returned by Search/SearchApproximate/SearchEpsilon are owned
// by the Searcher and reused by its next call — copy them if they must
// survive. SearchBatch returns freshly allocated slices.
type Searcher struct{ s *index.Searcher }

// NewSearcher creates a searcher.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{s: ix.tree.NewSearcher()}
}

// Search returns the exact k nearest neighbors of query (any scale; it is
// z-normalized internally) under squared z-normalized Euclidean distance,
// in ascending order.
func (s *Searcher) Search(query []float64, k int) ([]index.Result, error) {
	return s.s.Search(query, k)
}

// Search1 returns the exact nearest neighbor.
func (s *Searcher) Search1(query []float64) (index.Result, error) {
	return s.s.Search1(query)
}

// LastStats returns the pruning counters of the most recent Search call.
func (s *Searcher) LastStats() index.SearchStats { return s.s.LastStats() }

// SearchApproximate returns up to k approximate nearest neighbors by
// probing only the query's best-matching leaf — the classical iSAX-family
// approximate search, and stage 1 of the exact algorithm. It is the
// approximate mode the paper lists as future work (Section VI). The
// returned distances upper-bound the true k-NN distances.
func (s *Searcher) SearchApproximate(query []float64, k int) ([]index.Result, error) {
	return s.s.SearchApproximate(query, k)
}

// SearchEpsilon returns k neighbors guaranteed within a (1+epsilon) factor
// of the exact k-NN distances. epsilon = 0 is exact search; larger values
// prune more aggressively and run faster.
func (s *Searcher) SearchEpsilon(query []float64, k int, epsilon float64) ([]index.Result, error) {
	return s.s.SearchEpsilon(query, k, epsilon)
}

// SearchBatch answers a batch of queries with inter-query parallelism: up
// to workers queries run concurrently, each on a pooled single-threaded
// searcher (the FAISS protocol from the paper's Section V). workers <= 0
// selects GOMAXPROCS. Results are in query order and safe to retain.
func (ix *Index) SearchBatch(queries *distance.Matrix, k, workers int) ([][]index.Result, error) {
	if queries == nil || queries.Len() == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	if queries.Stride != ix.SeriesLen() {
		return nil, fmt.Errorf("core: query length %d, want %d", queries.Stride, ix.SeriesLen())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := make([][]float64, queries.Len())
	for i := range rows {
		rows[i] = queries.Row(i)
	}
	return ix.tree.BatchSearchWorkers(rows, k, workers)
}

// Insert adds one series to the index (z-normalized internally) and returns
// its id. Not safe to run concurrently with searches or other inserts —
// synchronize externally for mixed workloads. Inserted series are
// summarized with the index's existing learned quantization (SFA bins are
// not re-learned, matching MESSI's incremental behaviour).
func (ix *Index) Insert(series []float64) (int32, error) {
	if ix.insertEnc == nil {
		ix.insertEnc = ix.tree.Encoder()
	}
	return ix.tree.Insert(distance.ZNormalized(series), ix.insertEnc)
}

// CheckInvariants verifies the tree's structural invariants (mainly useful
// after Insert-heavy workloads and in tests).
func (ix *Index) CheckInvariants() error { return ix.tree.CheckInvariants() }
