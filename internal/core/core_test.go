package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/distance"
	"repro/internal/sfa"
)

func mixedMatrix(rng *rand.Rand, count, n int) *distance.Matrix {
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		switch i % 3 {
		case 0:
			v := 0.0
			for j := range row {
				v += rng.NormFloat64()
				row[j] = v
			}
		case 1:
			f := 3 + rng.Float64()*float64(n/2-4)
			for j := range row {
				row[j] = math.Sin(2*math.Pi*f*float64(j)/float64(n)) + 0.2*rng.NormFloat64()
			}
		default:
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
	}
	m.ZNormalizeAll()
	return m
}

func bruteKNN(data *distance.Matrix, query []float64, k int) []float64 {
	q := distance.ZNormalized(query)
	dists := make([]float64, data.Len())
	for i := range dists {
		dists[i] = distance.SquaredED(data.Row(i), q)
	}
	sort.Float64s(dists)
	if k > len(dists) {
		k = len(dists)
	}
	return dists[:k]
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("expected error on nil data")
	}
	if _, err := Build(distance.NewMatrix(0, 16), Config{}); err == nil {
		t.Error("expected error on empty data")
	}
	rng := rand.New(rand.NewSource(1))
	m := mixedMatrix(rng, 50, 64)
	if _, err := Build(m, Config{Method: Method(99)}); err == nil {
		t.Error("expected error on unknown method")
	}
}

func TestMethodString(t *testing.T) {
	if SOFA.String() != "SOFA" || MESSI.String() != "MESSI" {
		t.Error("method strings")
	}
	if Method(5).String() == "" {
		t.Error("unknown method should still print")
	}
}

func TestBuildBothMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := mixedMatrix(rng, 300, 96)
	for _, method := range []Method{SOFA, MESSI} {
		ix, err := Build(m, Config{Method: method, LeafCapacity: 32, SampleRate: 0.2})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if ix.Method() != method || ix.Len() != 300 || ix.SeriesLen() != 96 {
			t.Errorf("%v: accessor mismatch", method)
		}
		if ix.BuildSeconds() < 0 {
			t.Errorf("%v: negative build time", method)
		}
		st := ix.Stats()
		if st.Series != 300 || st.Leaves < 1 {
			t.Errorf("%v: bad stats %+v", method, st)
		}
		if method == SOFA {
			if ix.SFAQuantizer() == nil {
				t.Error("SOFA should expose its quantizer")
			}
			if ix.LearnSeconds <= 0 {
				t.Error("SOFA should record learn time")
			}
		} else if ix.SFAQuantizer() != nil {
			t.Error("MESSI should not have an SFA quantizer")
		}
	}
}

// Both methods return exactly the brute-force result.
func TestExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 96
	m := mixedMatrix(rng, 500, n)
	for _, method := range []Method{SOFA, MESSI} {
		ix, err := Build(m, Config{Method: method, LeafCapacity: 24, SampleRate: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		s := ix.NewSearcher()
		for _, k := range []int{1, 5, 20} {
			for qi := 0; qi < 10; qi++ {
				query := make([]float64, n)
				for j := range query {
					query[j] = rng.NormFloat64()
				}
				res, err := s.Search(query, k)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteKNN(m, query, k)
				for i := range want {
					if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
						t.Fatalf("%v k=%d rank %d: got %v want %v", method, k, i, res[i].Dist, want[i])
					}
				}
			}
		}
		r, err := s.Search1(m.Row(0))
		if err != nil {
			t.Fatal(err)
		}
		if r.Dist > 1e-9 {
			t.Errorf("%v: self query dist %v", method, r.Dist)
		}
	}
}

// Config knobs must reach the underlying layers.
func TestConfigPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := mixedMatrix(rng, 200, 64)
	ix, err := Build(m, Config{
		Method:       SOFA,
		WordLength:   8,
		Bits:         4,
		LeafCapacity: 16,
		Workers:      2,
		Binning:      sfa.EquiDepth,
		Selection:    sfa.FirstCoefficients,
		SampleRate:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := ix.SFAQuantizer()
	if q.Segments() != 8 || q.MaxBits() != 4 {
		t.Errorf("word config not propagated: l=%d bits=%d", q.Segments(), q.MaxBits())
	}
	// FirstCoefficients ordering is ascending spectral order.
	idx := q.Indices()
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Errorf("FirstCoefficients selection not in order: %v", idx)
		}
	}
}

// Property: SOFA and MESSI agree with each other (both exact) on random
// workloads.
func TestMethodsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		count := 100 + rng.Intn(200)
		m := mixedMatrix(rng, count, n)
		sofa, err := Build(m, Config{Method: SOFA, LeafCapacity: 1 + rng.Intn(40), SampleRate: 0.3, WordLength: 8})
		if err != nil {
			return false
		}
		messi, err := Build(m, Config{Method: MESSI, LeafCapacity: 1 + rng.Intn(40), WordLength: 8})
		if err != nil {
			return false
		}
		ss, ms := sofa.NewSearcher(), messi.NewSearcher()
		for qi := 0; qi < 3; qi++ {
			query := make([]float64, n)
			for j := range query {
				query[j] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(4)
			a, err := ss.Search(query, k)
			if err != nil {
				return false
			}
			b, err := ms.Search(query, k)
			if err != nil {
				return false
			}
			for i := range a {
				if math.Abs(a[i].Dist-b[i].Dist) > 1e-7*(a[i].Dist+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSearchers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	m := mixedMatrix(rng, 400, n)
	ix, err := Build(m, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			s := ix.NewSearcher()
			for i := 0; i < 10; i++ {
				query := make([]float64, n)
				for j := range query {
					query[j] = r.NormFloat64()
				}
				res, err := s.Search(query, 3)
				if err != nil {
					errc <- err
					return
				}
				want := bruteKNN(m, query, 3)
				for i := range want {
					if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
						errc <- err
						return
					}
				}
			}
			errc <- nil
		}(int64(g))
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
