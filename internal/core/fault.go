package core

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/index"
)

// This file is the collection's fault-isolation layer: the error taxonomy of
// degraded queries, per-shard health tracking with quarantine, and the live
// ε certificate partial results carry.
//
// The failure model is shard-granular. A shard fault — a panic inside one
// shard's search, or a non-cancellation error from its engine — costs that
// shard's contribution to the current query, never the process and never the
// other shards. What happens next depends on the plan:
//
//   - Fail-fast (the default): the query returns an error wrapping
//     ErrDegraded identifying the first failed shard.
//   - Plan.AllowPartial: the query returns the merged results of the
//     surviving shards with nil error, and LastMeta reports how many shards
//     failed plus an ε certificate bounding how far the partial answer can
//     be from the complete one.
//
// Cancellation (ctx or plan deadline) is never a shard fault: the caller
// asked the query to stop, so it stops with the context's error exactly as
// before, partial or not.
//
// Health: every shard carries a consecutive-panic counter. A panic triggers
// an immediate invariant check of the shard tree — structural corruption
// quarantines the shard on the spot (and marks it untrusted, voiding its
// certificate contribution); repeated panics on an intact tree quarantine it
// after Config.QuarantineAfter strikes (a fault that recurs per-query is a
// deterministic bug, and retrying it on every query just fails every query).
// Quarantined shards are skipped by searches, counted as failed in the meta,
// and refused by Insert; Reinstate clears the state after an operator fixed
// the cause.

// ErrDegraded reports that one or more shards did not contribute to a query
// (or, at load time, to a collection). Every shard-fault error wraps it, so
// errors.Is(err, ErrDegraded) identifies any partial-failure condition.
var ErrDegraded = errors.New("core: degraded: one or more shards unavailable")

// ErrShardQuarantined reports an operation against a quarantined shard. It
// wraps ErrDegraded: quarantine is one cause of degradation.
var ErrShardQuarantined = fmt.Errorf("shard quarantined: %w", ErrDegraded)

// ErrStreamStalled is returned by Stream.SubmitPlan when every worker has
// been stuck past the stream's watchdog deadline — the failure mode where a
// hung shard would otherwise hang the submitter too.
var ErrStreamStalled = errors.New("core: stream stalled: no worker accepted the query within the watchdog deadline")

// ErrNotFound reports a mutation against a public id that was never
// assigned by Insert.
var ErrNotFound = errors.New("core: id not found")

// ErrTombstoned reports a mutation against a public id that has been
// deleted: the id is permanently retired — deletion is not reversible and
// upsert does not resurrect.
var ErrTombstoned = errors.New("core: id tombstoned")

// PanicError is a recovered query panic converted to an error: the original
// panic value plus the stack of the panicking goroutine. Shard is the shard
// whose search panicked, or -1 when the panic was outside any shard (e.g. in
// a stream worker before shard dispatch). It wraps ErrDegraded.
type PanicError struct {
	Shard int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Shard < 0 {
		return fmt.Sprintf("core: recovered panic: %v", e.Value)
	}
	return fmt.Sprintf("core: recovered panic in shard %d: %v", e.Shard, e.Value)
}

func (e *PanicError) Unwrap() error { return ErrDegraded }

// ShardError attributes a fault to one shard. It wraps both ErrDegraded and
// the underlying cause, so errors.Is works against the sentinel and
// errors.As against the cause.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("core: shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() []error { return []error{ErrDegraded, e.Err} }

// QueryMeta describes how the most recent query on a Searcher executed —
// the partial-result contract's observable half.
type QueryMeta struct {
	// ShardsSearched and ShardsFailed partition the collection's shards for
	// the last query. ShardsFailed counts quarantined (skipped) shards as
	// well as shards that faulted mid-query.
	ShardsSearched int
	ShardsFailed   int
	// EpsilonBound is the live certificate of a degraded answer: the
	// returned distances are each within a (1+EpsilonBound) factor of what
	// the complete search (relative to the plan's own guarantee) would have
	// returned. 0 when the partial answer is provably identical to the
	// complete one — including every non-degraded query — and +Inf when the
	// failed shards cannot be bounded (no usable tree, or fewer than k
	// results survived). It is computed from the surviving best-so-far and
	// the failed shards' root lower bounds, so it is query-specific, not a
	// static worst case.
	EpsilonBound float64
	// Live and Tombstoned snapshot the collection's mutation state as the
	// query started: live series searched and deleted-but-unreclaimed rows
	// the refinement stage skipped over.
	Live       int
	Tombstoned int
	// Compactions and Relearns are the collection's lifetime counts of shard
	// compactions and of compactions that re-learned a shard's SFA
	// quantization; RelearnChurnFraction echoes the configured re-learn
	// threshold (0 when re-learning is disabled), so a query's answer
	// records the adaptation policy it ran under.
	Compactions          int64
	Relearns             int64
	RelearnChurnFraction float64
}

// shardHealth is one shard's fault-tracking state. All fields are atomics:
// searchers on different goroutines observe and update health concurrently.
type shardHealth struct {
	// panics counts consecutive panicking queries; any fully successful
	// search of the shard resets it.
	panics atomic.Int32
	// quarantined shards are skipped by searches and refused by Insert.
	quarantined atomic.Bool
	// untrusted marks a shard whose tree failed its invariant check (or was
	// never built, for load-time quarantine): its root bounds are
	// meaningless, so it contributes +Inf degradation to certificates.
	untrusted atomic.Bool
}

// defaultQuarantineAfter is how many consecutive panicking queries
// quarantine a shard when Config.QuarantineAfter is zero.
const defaultQuarantineAfter = 3

func (c *Collection) quarantineAfter() int32 {
	if c.cfg.QuarantineAfter > 0 {
		return int32(c.cfg.QuarantineAfter)
	}
	return defaultQuarantineAfter
}

// shardUsable reports whether shard i should participate in queries.
func (c *Collection) shardUsable(i int) bool {
	return c.tree(i) != nil && !c.health[i].quarantined.Load()
}

// shardGate returns the error a direct operation against shard i must fail
// with, or nil when the shard is usable.
func (c *Collection) shardGate(i int) error {
	if c.shardUsable(i) {
		return nil
	}
	return &ShardError{Shard: i, Err: ErrShardQuarantined}
}

// Quarantine manually quarantines shard i: subsequent searches skip it (and
// degrade accordingly) and Insert refuses it. It is the operational handle
// behind the automatic policy, and what the chaos suite and the sofa
// examples use to create deterministic degradation.
func (c *Collection) Quarantine(i int) error {
	if i < 0 || i >= len(c.states) {
		return fmt.Errorf("core: shard %d out of range [0,%d)", i, len(c.states))
	}
	c.health[i].quarantined.Store(true)
	return nil
}

// Reinstate clears shard i's quarantine and panic history. Reinstating a
// shard that has no tree (it was quarantined at load time) fails: there is
// nothing to reinstate.
func (c *Collection) Reinstate(i int) error {
	if i < 0 || i >= len(c.states) {
		return fmt.Errorf("core: shard %d out of range [0,%d)", i, len(c.states))
	}
	if c.tree(i) == nil {
		return fmt.Errorf("core: shard %d has no tree (quarantined at load); rebuild the collection to restore it", i)
	}
	c.health[i].quarantined.Store(false)
	c.health[i].untrusted.Store(false)
	c.health[i].panics.Store(0)
	return nil
}

// Quarantined returns the indices of the currently quarantined shards, in
// ascending order (nil when the collection is fully healthy).
func (c *Collection) Quarantined() []int {
	var out []int
	for i := range c.health {
		if !c.shardUsable(i) {
			out = append(out, i)
		}
	}
	return out
}

// recordShardPanic converts a recovered panic in shard i's search into a
// *PanicError and applies the health policy: an invariant check of the tree
// right now (corruption quarantines immediately and voids the shard's
// certificate), otherwise quarantine after quarantineAfter consecutive
// panicking queries.
func (c *Collection) recordShardPanic(i int, r any) error {
	var pe *PanicError
	if wp, ok := r.(index.WorkerPanic); ok {
		pe = &PanicError{Shard: i, Value: wp.Value, Stack: wp.Stack}
	} else {
		pe = &PanicError{Shard: i, Value: r, Stack: debug.Stack()}
	}
	h := &c.health[i]
	n := h.panics.Add(1)
	if t := c.tree(i); t != nil {
		if err := t.CheckInvariants(); err != nil {
			h.untrusted.Store(true)
			h.quarantined.Store(true)
			return pe
		}
	}
	if n >= c.quarantineAfter() {
		h.quarantined.Store(true)
	}
	return pe
}

// certificate computes the degraded query's ε bound. The argument: every
// series in a failed shard has true squared distance >= that shard's
// MinRootBound against this query (the GEMINI lower-bound framework's node
// bound, evaluated at the root). With d_k the k-th best squared distance
// among the survivors and L the minimum bound over the failed shards, any
// answer the failed shards could have contributed at rank <= k has distance
// >= sqrt(L), so each reported distance is within sqrt(d_k/L) = 1+ε of the
// complete answer's. d_k <= L certifies the partial answer exact (ε = 0);
// an unusable tree (L = 0) or fewer than k survivors (d_k = +Inf) yields
// +Inf. The certificate is relative to the plan's own guarantee: an
// ε-approximate or best-leaf-approximate plan bounds its degradation against
// the non-degraded run of that same plan.
//
// The query representation is recomputed here with searcher-owned scratch
// (lazily allocated on the first degraded query) rather than borrowed from a
// shard searcher: the searcher that faulted owns the scratch a panic may
// have corrupted.
func (s *Searcher) certificate(query []float64) float64 {
	if s.certEnc == nil {
		s.certEnc = s.c.sum.NewIndexEncoder()
		s.certBuf = make([]float64, s.c.stride)
		s.certQR = make([]float64, s.c.sum.Segments())
	}
	if err := index.QueryRepr(s.certEnc, query, s.certBuf, s.certQR); err != nil {
		return math.Inf(1)
	}
	minLB := math.Inf(1)
	for i := range s.ss {
		if s.errs[i] == nil {
			continue
		}
		lb := 0.0
		if st := s.states[i]; st != nil && st.tree != nil && !s.c.health[i].untrusted.Load() {
			if st.relearned {
				// The shard's quantization diverged from the collection's at
				// a re-learning compaction, so its root bound needs a query
				// representation in the shard's own space. Allocating here is
				// fine: this is the degraded path, not the steady state.
				sum := st.tree.Sum()
				qr := make([]float64, sum.Segments())
				if err := index.QueryRepr(sum.NewIndexEncoder(), query, s.certBuf, qr); err == nil {
					lb = st.tree.MinRootBound(qr)
				}
			} else {
				lb = st.tree.MinRootBound(s.certQR)
			}
		}
		if lb < minLB {
			minLB = lb
		}
	}
	dk := s.kn.Bound()
	switch {
	case dk <= minLB:
		return 0
	case minLB <= 0 || math.IsInf(dk, 1):
		return math.Inf(1)
	default:
		// Distances are squared throughout the engine; the certificate is
		// quoted in the true (unsquared) domain, like Plan.Epsilon.
		return math.Sqrt(dk/minLB) - 1
	}
}

// LastMeta returns the execution metadata of the most recent SearchPlan (or
// legacy Search*) call on this searcher: shard participation and, for
// degraded answers, the ε certificate.
func (s *Searcher) LastMeta() QueryMeta { return s.meta }
