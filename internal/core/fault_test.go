package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// The quarantine/partial-result contract without fault injection: shards are
// degraded through the public Quarantine handle, so these tests run in every
// build (the chaos suite under -tags faultinject exercises the same paths
// with injected panics and errors).

// TestQuarantinePartialResults is the degradation matrix: for S ∈ {2,4,8},
// quarantine each shard in turn and verify fail-fast queries error with
// ErrDegraded while AllowPartial queries return the survivors' answer with
// accurate meta and a sound ε certificate.
func TestQuarantinePartialResults(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	data := mixedMatrix(rng, 800, 64)
	queries := mixedMatrix(rng, 6, 64)
	const k = 10
	for _, shards := range []int{2, 4, 8} {
		ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		col := ix.Collection()
		// Baseline: the complete answers, and healthy-query meta.
		full := make([][]Result, queries.Len())
		ref := ix.NewSearcher()
		for qi := range full {
			res, err := ref.Search(queries.Row(qi), k)
			if err != nil {
				t.Fatal(err)
			}
			full[qi] = append([]Result(nil), res...)
			if m := ref.LastMeta(); m.ShardsSearched != shards || m.ShardsFailed != 0 || m.EpsilonBound != 0 {
				t.Fatalf("S=%d: healthy meta %+v", shards, m)
			}
		}
		for fail := 0; fail < shards; fail++ {
			if err := col.Quarantine(fail); err != nil {
				t.Fatal(err)
			}
			s := ix.NewSearcher()
			// Fail-fast (the default): the query errors, identifying the
			// degradation and the quarantine.
			if _, err := s.Search(queries.Row(0), k); !errors.Is(err, ErrDegraded) {
				t.Fatalf("S=%d fail=%d: fail-fast err = %v, want ErrDegraded", shards, fail, err)
			} else if !errors.Is(err, ErrShardQuarantined) {
				t.Fatalf("S=%d fail=%d: fail-fast err = %v, want ErrShardQuarantined", shards, fail, err)
			}
			if m := s.LastMeta(); m.ShardsFailed != 1 || m.ShardsSearched != shards-1 {
				t.Fatalf("S=%d fail=%d: fail-fast meta %+v", shards, fail, m)
			}
			// AllowPartial: survivors answer, meta counts, certificate bounds.
			for qi := 0; qi < queries.Len(); qi++ {
				res, err := s.SearchPlan(context.Background(), queries.Row(qi), Plan{K: k, AllowPartial: true}, nil)
				if err != nil {
					t.Fatalf("S=%d fail=%d q=%d: partial query failed: %v", shards, fail, qi, err)
				}
				if len(res) == 0 {
					t.Fatalf("S=%d fail=%d q=%d: partial query returned nothing", shards, fail, qi)
				}
				for _, r := range res {
					if int(r.ID)%shards == fail {
						t.Fatalf("S=%d fail=%d q=%d: result id %d belongs to the quarantined shard", shards, fail, qi, r.ID)
					}
				}
				m := s.LastMeta()
				if m.ShardsFailed != 1 || m.ShardsSearched != shards-1 {
					t.Fatalf("S=%d fail=%d q=%d: partial meta %+v", shards, fail, qi, m)
				}
				if m.EpsilonBound < 0 {
					t.Fatalf("S=%d fail=%d q=%d: negative ε %v", shards, fail, qi, m.EpsilonBound)
				}
				// Soundness: every reported distance is within (1+ε) of the
				// complete answer's at the same rank (unsquared domain).
				if !math.IsInf(m.EpsilonBound, 1) {
					for r := range res {
						got := math.Sqrt(res[r].Dist)
						want := math.Sqrt(full[qi][r].Dist)
						if got > (1+m.EpsilonBound)*want*(1+1e-9) {
							t.Fatalf("S=%d fail=%d q=%d rank %d: distance %v exceeds (1+%v)·%v — certificate unsound",
								shards, fail, qi, r, got, m.EpsilonBound, want)
						}
					}
				}
				// ε = 0 certifies the partial answer identical to the complete
				// one.
				if m.EpsilonBound == 0 {
					for r := range res {
						if res[r] != full[qi][r] {
							t.Fatalf("S=%d fail=%d q=%d rank %d: ε=0 but %+v != %+v",
								shards, fail, qi, r, res[r], full[qi][r])
						}
					}
				}
			}
			if got := col.Quarantined(); len(got) != 1 || got[0] != fail {
				t.Fatalf("S=%d fail=%d: Quarantined() = %v", shards, fail, got)
			}
			// Reinstate restores the complete answer.
			if err := col.Reinstate(fail); err != nil {
				t.Fatal(err)
			}
			res, err := s.Search(queries.Row(0), k)
			if err != nil {
				t.Fatalf("S=%d fail=%d: post-reinstate search: %v", shards, fail, err)
			}
			for r := range res {
				if res[r] != full[0][r] {
					t.Fatalf("S=%d fail=%d rank %d: post-reinstate %+v != %+v", shards, fail, r, res[r], full[0][r])
				}
			}
			if m := s.LastMeta(); m.ShardsFailed != 0 || m.ShardsSearched != shards {
				t.Fatalf("S=%d fail=%d: post-reinstate meta %+v", shards, fail, m)
			}
		}
	}
}

// TestQuarantineSingleShard pins the single-shard fast path's containment:
// with no surviving shards a fault is an error even under AllowPartial.
func TestQuarantineSingleShard(t *testing.T) {
	rng := rand.New(rand.NewSource(812))
	ix, err := Build(mixedMatrix(rng, 200, 32), Config{Method: MESSI, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Collection().Quarantine(0); err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	q := mixedMatrix(rng, 1, 32).Row(0)
	if _, err := s.Search(q, 3); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("Search on quarantined single shard: %v", err)
	}
	if m := s.LastMeta(); m.ShardsFailed != 1 || !math.IsInf(m.EpsilonBound, 1) {
		t.Fatalf("meta %+v", m)
	}
	if _, err := s.SearchPlan(context.Background(), q, Plan{K: 3, AllowPartial: true}, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("AllowPartial with zero survivors: %v, want ErrDegraded", err)
	}
	// The other single-shard variants hit the same gate.
	if _, err := s.SearchApproximate(q, 3); !errors.Is(err, ErrDegraded) {
		t.Fatalf("SearchApproximate: %v", err)
	}
	if _, err := s.SearchEpsilon(q, 3, 0.5); !errors.Is(err, ErrDegraded) {
		t.Fatalf("SearchEpsilon: %v", err)
	}
}

// TestQuarantineAllShardsFails: a degraded query that would return zero
// results fails even with AllowPartial — an empty answer certifies nothing.
func TestQuarantineAllShardsFails(t *testing.T) {
	rng := rand.New(rand.NewSource(813))
	ix, err := Build(mixedMatrix(rng, 200, 32), Config{Method: MESSI, LeafCapacity: 16, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	col := ix.Collection()
	for i := 0; i < 3; i++ {
		if err := col.Quarantine(i); err != nil {
			t.Fatal(err)
		}
	}
	s := ix.NewSearcher()
	q := mixedMatrix(rng, 1, 32).Row(0)
	if _, err := s.SearchPlan(context.Background(), q, Plan{K: 3, AllowPartial: true}, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("all-quarantined AllowPartial: %v, want ErrDegraded", err)
	}
	if got := col.Quarantined(); len(got) != 3 {
		t.Fatalf("Quarantined() = %v", got)
	}
}

// TestQuarantineValidation covers the operational handle's edges: range
// checks and reinstating shards that never lost their tree.
func TestQuarantineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(814))
	ix, err := Build(mixedMatrix(rng, 100, 32), Config{Method: MESSI, LeafCapacity: 16, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	col := ix.Collection()
	if err := col.Quarantine(-1); err == nil {
		t.Error("Quarantine(-1) accepted")
	}
	if err := col.Quarantine(2); err == nil {
		t.Error("Quarantine(2) accepted on a 2-shard collection")
	}
	if err := col.Reinstate(5); err == nil {
		t.Error("Reinstate(5) accepted")
	}
	if got := col.Quarantined(); got != nil {
		t.Errorf("healthy collection reports quarantined shards %v", got)
	}
	// Reinstate on a healthy shard is a no-op, not an error.
	if err := col.Reinstate(0); err != nil {
		t.Errorf("Reinstate on healthy shard: %v", err)
	}
}

// TestInsertRefusesQuarantinedShard: inserting into a quarantined shard would
// strand the series in a tree searches skip, so the round-robin target being
// quarantined refuses the insert.
func TestInsertRefusesQuarantinedShard(t *testing.T) {
	rng := rand.New(rand.NewSource(815))
	ix, err := Build(mixedMatrix(rng, 100, 32), Config{Method: MESSI, LeafCapacity: 16, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	col := ix.Collection()
	target := ix.Len() % 4
	if err := col.Quarantine(target); err != nil {
		t.Fatal(err)
	}
	series := mixedMatrix(rng, 1, 32).Row(0)
	if _, err := ix.Insert(series); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("Insert into quarantined shard: %v, want ErrShardQuarantined", err)
	}
	// The id mapping did not advance: reinstating makes the same insert land
	// in the same shard successfully.
	if err := col.Reinstate(target); err != nil {
		t.Fatal(err)
	}
	id, err := ix.Insert(series)
	if err != nil {
		t.Fatal(err)
	}
	if int(id)%4 != target {
		t.Fatalf("insert landed in shard %d, want %d", int(id)%4, target)
	}
}

// TestPartialBatchAndStream: AllowPartial flows through the batch and stream
// engines — a quarantined shard degrades every query without failing any.
func TestPartialBatchAndStream(t *testing.T) {
	rng := rand.New(rand.NewSource(816))
	data := mixedMatrix(rng, 400, 48)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Collection().Quarantine(2); err != nil {
		t.Fatal(err)
	}
	queries := mixedMatrix(rng, 8, 48)
	qs := make([]PlanQuery, queries.Len())
	for i := range qs {
		qs[i] = PlanQuery{Series: queries.Row(i), Plan: Plan{K: 5, AllowPartial: true}}
	}
	out, err := ix.Collection().SearchBatchPlan(context.Background(), qs, 3)
	if err != nil {
		t.Fatalf("partial batch: %v", err)
	}
	for i, res := range out {
		if len(res) == 0 {
			t.Fatalf("batch query %d returned nothing", i)
		}
		for _, r := range res {
			if int(r.ID)%4 == 2 {
				t.Fatalf("batch query %d returned id %d from the quarantined shard", i, r.ID)
			}
		}
	}
	// Without AllowPartial the same batch fails.
	for i := range qs {
		qs[i].Plan.AllowPartial = false
	}
	if _, err := ix.Collection().SearchBatchPlan(context.Background(), qs, 3); !errors.Is(err, ErrDegraded) {
		t.Fatalf("fail-fast batch: %v, want ErrDegraded", err)
	}

	// Stream: partial plans are answered, fail-fast plans error through the
	// callback.
	type answer struct {
		res []Result
		err error
	}
	got := make(chan answer, 2)
	st, err := ix.NewStream(5, 1, func(qid uint64, res []Result, err error) {
		got <- answer{append([]Result(nil), res...), err}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SubmitPlan(queries.Row(0), Plan{K: 5, AllowPartial: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SubmitPlan(queries.Row(0), Plan{K: 5}); err != nil {
		t.Fatal(err)
	}
	a1, a2 := <-got, <-got
	// Stream answers arrive in completion order; with one worker that is
	// submission order.
	if a1.err != nil || len(a1.res) == 0 {
		t.Fatalf("partial stream answer: %v (%d results)", a1.err, len(a1.res))
	}
	if !errors.Is(a2.err, ErrDegraded) {
		t.Fatalf("fail-fast stream answer: %v, want ErrDegraded", a2.err)
	}
	st.Close()
}
