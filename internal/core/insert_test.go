package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
)

func TestInsertThenSearchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, method := range []Method{SOFA, MESSI} {
		// Fresh matrices per method: Insert appends to the matrix the index
		// was built over.
		base := mixedMatrix(rng, 300, 64)
		extra := mixedMatrix(rng, 150, 64)
		ix, err := Build(base, Config{Method: method, LeafCapacity: 24, SampleRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < extra.Len(); i++ {
			if _, err := ix.Insert(extra.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		if ix.Len() != 450 {
			t.Fatalf("%v: Len=%d after inserts", method, ix.Len())
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("%v: invariants violated after inserts: %v", method, err)
		}
		// Search must be exact over the combined collection. Insert appends
		// to the matrix the index was built over, so after the loop `base`
		// IS the combined collection.
		all := base
		s := ix.NewSearcher()
		for qi := 0; qi < 10; qi++ {
			query := make([]float64, 64)
			for j := range query {
				query[j] = rng.NormFloat64()
			}
			res, err := s.Search(query, 3)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(all, query, 3)
			for i := range want {
				if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
					t.Fatalf("%v query %d rank %d: got %v want %v", method, qi, i, res[i].Dist, want[i])
				}
			}
		}
		// Inserted series are findable by identity.
		r, err := s.Search1(extra.Row(7))
		if err != nil {
			t.Fatal(err)
		}
		if r.Dist > 1e-9 {
			t.Errorf("%v: inserted series not found exactly: %v", method, r.Dist)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	ix, err := Build(mixedMatrix(rng, 100, 32), Config{Method: MESSI, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(make([]float64, 16)); err == nil {
		t.Error("expected length error")
	}
}

// Property: building over the full set and building over a prefix plus
// inserting the remainder answer queries identically (distances equal; the
// tree shapes may differ).
func TestInsertEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		total := 150 + rng.Intn(150)
		cut := 50 + rng.Intn(total-100)
		all := mixedMatrix(rng, total, n)

		full, err := Build(all, Config{Method: MESSI, LeafCapacity: 1 + rng.Intn(32)})
		if err != nil {
			return false
		}
		prefix := distance.NewMatrix(cut, n)
		copy(prefix.Data, all.Data[:cut*n])
		incr, err := Build(prefix, Config{Method: MESSI, LeafCapacity: 1 + rng.Intn(32)})
		if err != nil {
			return false
		}
		for i := cut; i < total; i++ {
			if _, err := incr.Insert(all.Row(i)); err != nil {
				return false
			}
		}
		if err := incr.CheckInvariants(); err != nil {
			return false
		}
		fs, is := full.NewSearcher(), incr.NewSearcher()
		for qi := 0; qi < 3; qi++ {
			query := make([]float64, n)
			for j := range query {
				query[j] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(4)
			a, err := fs.Search(query, k)
			if err != nil {
				return false
			}
			b, err := is.Search(query, k)
			if err != nil {
				return false
			}
			for i := range a {
				if math.Abs(a[i].Dist-b[i].Dist) > 1e-7*(a[i].Dist+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Inserts into a duplicate-heavy collection must not loop forever on
// unsplittable leaves.
func TestInsertDuplicates(t *testing.T) {
	n := 32
	row := make([]float64, n)
	for j := range row {
		row[j] = math.Sin(float64(j))
	}
	base := distance.NewMatrix(20, n)
	for i := 0; i < 20; i++ {
		copy(base.Row(i), row)
	}
	base.ZNormalizeAll()
	ix, err := Build(base, Config{Method: MESSI, LeafCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := ix.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res, err := ix.NewSearcher().Search(row, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Dist > 1e-9 {
			t.Errorf("duplicate search distance %v", r.Dist)
		}
	}
}
