//go:build !race

package core

// raceEnabled gates allocation-count assertions: the race detector
// instruments sync.Pool and makes them spuriously nonzero.
const raceEnabled = false
