package core

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/distance"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/sfa"
)

// savedIndex is the gob-serialized container format. Data values are stored
// as float32 (the paper's on-disk precision) in global id order and
// re-z-normalized on load, so the exactness guarantee is preserved against
// the loaded data.
//
// Version 1 stored a single word buffer (Words); version 2 stores the shard
// count plus one word buffer per shard in shard-local row order, which lets
// Load rebuild every shard tree in parallel; version 3 additionally stores
// each shard's finalized tree shape and leaf refinement blocks, so Load
// reconstructs every tree by direct decode — no re-bucketing, no
// re-splitting — and re-encodes the bulk payloads (series data, shape
// streams) as raw little-endian bytes, which gob transfers as single block
// copies instead of per-element decodes. Version 4 restructures the
// checksums for shard-granular fault isolation: the global checksum covers
// only the header, the SFA tables and the series data, while each shard's
// words + shape stream carries its own CRC — so one corrupt shard payload is
// attributable to that shard, and LoadOptions.QuarantineCorruptShards can
// load the healthy rest as a degraded collection instead of losing the whole
// container. Version 5 adds the mutable-index state: per-shard tombstone
// bitmaps, the stable public-id tables (when upserts or compaction diverged
// them from the identity layout), per-shard re-learned SFA quantizations,
// and the mutation sequence the WAL resumes from. A version-5 container
// stores its data shard-major (shard 0's rows, then shard 1's, in local id
// order) because compaction makes per-shard row counts diverge from the
// round-robin interleave, and Count becomes the physical row count (live +
// tombstoned). Version-1 files load as a single-shard collection; version-2
// files re-split from their words. All five versions remain loadable (the
// compatibility promise the persist-compat CI job enforces).
type savedIndex struct {
	Version      int
	Method       Method
	WordLength   int
	Bits         int
	LeafCapacity int
	SeriesLen    int
	Count        int
	Data         []float32 // versions 1-2; version 3 packs DataBytes instead
	Words        []byte    // version 1 only
	SFA          *sfa.State

	// Version 2 fields.
	Shards       int
	ShardWords   [][]byte
	NoLeafBlocks bool

	// Version 3 fields.
	DataBytes   []byte // raw little-endian float32, global id order
	ShardShapes []packedShape
	// Checksum is CRC-32C over the payloads. gob framing only detects
	// corruption that breaks its structure; the checksum catches bit flips
	// inside the payloads, which would otherwise load cleanly and silently
	// change query answers. Version 3 hashes every payload buffer (data,
	// shard words, shape streams); version 4 hashes the header, SFA tables
	// and data only — the per-shard payloads move to ShardChecksums so a
	// flipped bit indicts one shard, not the container.
	Checksum uint32

	// Version 4 fields.
	// ShardChecksums[i] is CRC-32C over shard i's words and packed shape
	// stream, enabling shard-granular corruption attribution (and optional
	// quarantine) at load.
	ShardChecksums []uint32

	// Version 5 fields (mutable index). All are covered by the global
	// checksum: they are small relative to the payloads, so shard-granular
	// attribution is not worth splitting them.
	// MutSeq is the collection's mutation sequence at save time; recovery
	// replays only WAL records past it.
	MutSeq uint64
	// PubCount is the number of public ids ever assigned.
	PubCount int64
	// ShardCounts[i] is shard i's physical row count (the shard-major data
	// layout and per-shard streams are sized by it).
	ShardCounts []int32
	// ShardDead[i] / ShardDeadCounts[i] is shard i's tombstone bitmap and
	// its population (nil / 0 for a shard without tombstones).
	ShardDead       [][]uint64
	ShardDeadCounts []int32
	// ShardPubs[i] maps shard i's local ids to public ids; nil when every
	// shard still has the identity layout (pub = local*S + shard).
	ShardPubs [][]int32
	// ShardSFA[i] is shard i's own quantization, re-learned at a compaction;
	// nil entries (and a nil slice) mean the shard uses the collection's.
	ShardSFA []*sfa.State
}

// payloadChecksum hashes everything the container stores except the
// checksum itself, in fixed order: the header scalars (a flipped Method or
// WordLength is as answer-corrupting as flipped data), the SFA learned
// tables, and the payload buffers.
func payloadChecksum(s *savedIndex) uint32 {
	h := crc32.New(castagnoli)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(s.Version))
	put(uint64(s.Method))
	put(uint64(s.WordLength))
	put(uint64(s.Bits))
	put(uint64(s.LeafCapacity))
	put(uint64(s.SeriesLen))
	put(uint64(s.Count))
	put(uint64(s.Shards))
	if s.NoLeafBlocks {
		put(1)
	} else {
		put(0)
	}
	if s.SFA != nil {
		hashSFAState(put, s.SFA)
	}
	if s.Version >= 5 {
		put(s.MutSeq)
		put(uint64(s.PubCount))
		for _, v := range s.ShardCounts {
			put(uint64(uint32(v)))
		}
		for _, dead := range s.ShardDead {
			put(uint64(len(dead)))
			for _, w := range dead {
				put(w)
			}
		}
		for _, v := range s.ShardDeadCounts {
			put(uint64(uint32(v)))
		}
		put(uint64(len(s.ShardPubs)))
		for _, pubs := range s.ShardPubs {
			put(uint64(len(pubs)))
			for _, v := range pubs {
				put(uint64(uint32(v)))
			}
		}
		put(uint64(len(s.ShardSFA)))
		for _, st := range s.ShardSFA {
			if st == nil {
				put(0)
				continue
			}
			put(1)
			hashSFAState(put, st)
		}
	}
	h.Write(s.DataBytes)
	// Version 4 moves the per-shard payloads out of the global hash and into
	// ShardChecksums: a flipped bit in one shard's words must fail that
	// shard's checksum, not the container's.
	if s.Version < 4 {
		for _, w := range s.ShardWords {
			h.Write(w)
		}
		for _, p := range s.ShardShapes {
			writeShapeHash(h, p)
		}
	}
	return h.Sum32()
}

// hashSFAState feeds one SFA quantizer state into the running header hash
// in fixed order (shared by the collection quantizer and the per-shard
// re-learned ones a version-5 container may carry).
func hashSFAState(put func(uint64), st *sfa.State) {
	put(uint64(st.N))
	put(uint64(st.L))
	put(uint64(st.Bits))
	put(uint64(st.NCoeffs))
	for _, v := range st.Indices {
		put(uint64(v))
	}
	for _, v := range st.Variances {
		put(math.Float64bits(v))
	}
	for _, v := range st.Weights {
		put(math.Float64bits(v))
	}
	for _, bps := range st.Breakpoints {
		put(uint64(len(bps)))
		for _, v := range bps {
			put(math.Float64bits(v))
		}
	}
}

// writeShapeHash feeds one packed shape's streams into a running hash in
// fixed order (shared by the v3 global checksum and the v4 per-shard ones).
func writeShapeHash(h io.Writer, p packedShape) {
	h.Write([]byte{p.RootBits})
	h.Write(p.RootKeys)
	h.Write(p.Splits)
	h.Write(p.LeafCounts)
	h.Write(p.LeafNoSplit)
	h.Write(p.IDs)
	h.Write(p.LeafBlocks)
}

// shardChecksum is the version-4 per-shard CRC: shard i's word buffer plus
// its packed shape stream.
func shardChecksum(words []byte, p packedShape) uint32 {
	h := crc32.New(castagnoli)
	h.Write(words)
	writeShapeHash(h, p)
	return h.Sum32()
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// packedShape is an index.TreeShape with every stream packed into raw
// little-endian bytes. gob decodes []byte with one block copy but pays a
// per-element decode for typed slices — on a 20k-series container the
// difference is what keeps the v3 load I/O-bound rather than gob-bound.
type packedShape struct {
	RootBits    uint8  // root fan-out width of the saved tree
	RootKeys    []byte // 8 bytes per key
	Splits      []byte // 2 bytes per node (int16)
	LeafCounts  []byte // 4 bytes per leaf (int32)
	LeafNoSplit []byte // 1 byte per leaf
	IDs         []byte // 4 bytes per series (int32)
	LeafBlocks  []byte // as in TreeShape; empty means no blocks
}

func packShape(s index.TreeShape) packedShape {
	p := packedShape{
		RootBits:    uint8(s.RootBits),
		RootKeys:    make([]byte, 8*len(s.RootKeys)),
		Splits:      make([]byte, 2*len(s.Splits)),
		LeafCounts:  make([]byte, 4*len(s.LeafCounts)),
		LeafNoSplit: make([]byte, len(s.LeafNoSplit)),
		IDs:         make([]byte, 4*len(s.IDs)),
		LeafBlocks:  s.LeafBlocks,
	}
	for i, k := range s.RootKeys {
		binary.LittleEndian.PutUint64(p.RootKeys[8*i:], k)
	}
	for i, v := range s.Splits {
		binary.LittleEndian.PutUint16(p.Splits[2*i:], uint16(v))
	}
	for i, v := range s.LeafCounts {
		binary.LittleEndian.PutUint32(p.LeafCounts[4*i:], uint32(v))
	}
	for i, b := range s.LeafNoSplit {
		if b {
			p.LeafNoSplit[i] = 1
		}
	}
	for i, v := range s.IDs {
		binary.LittleEndian.PutUint32(p.IDs[4*i:], uint32(v))
	}
	return p
}

func unpackShape(p packedShape) (index.TreeShape, error) {
	if len(p.RootKeys)%8 != 0 || len(p.Splits)%2 != 0 || len(p.LeafCounts)%4 != 0 || len(p.IDs)%4 != 0 {
		return index.TreeShape{}, fmt.Errorf("core: misaligned packed tree shape")
	}
	s := index.TreeShape{
		RootBits:    int(p.RootBits),
		RootKeys:    make([]uint64, len(p.RootKeys)/8),
		Splits:      make([]int16, len(p.Splits)/2),
		LeafCounts:  make([]int32, len(p.LeafCounts)/4),
		LeafNoSplit: make([]bool, len(p.LeafNoSplit)),
		IDs:         make([]int32, len(p.IDs)/4),
	}
	if len(p.LeafBlocks) > 0 {
		s.LeafBlocks = p.LeafBlocks
	}
	for i := range s.RootKeys {
		s.RootKeys[i] = binary.LittleEndian.Uint64(p.RootKeys[8*i:])
	}
	for i := range s.Splits {
		s.Splits[i] = int16(binary.LittleEndian.Uint16(p.Splits[2*i:]))
	}
	for i := range s.LeafCounts {
		s.LeafCounts[i] = int32(binary.LittleEndian.Uint32(p.LeafCounts[4*i:]))
	}
	for i, b := range p.LeafNoSplit {
		s.LeafNoSplit[i] = b != 0
	}
	for i := range s.IDs {
		s.IDs[i] = int32(binary.LittleEndian.Uint32(p.IDs[4*i:]))
	}
	return s, nil
}

const savedIndexVersion = 5

// Save serializes the index to w in the current container version (5):
// summarization tables, per-shard words and data, each shard's finalized
// tree shape and leaf blocks so Load is a direct decode, per-shard payload
// checksums so load-time corruption is attributable to (and optionally
// quarantined at) shard granularity, and the mutable-index state (tombstone
// bitmaps, public-id tables, re-learned shard quantizations, mutation
// sequence).
func Save(ix *Index, w io.Writer) error {
	return SaveVersion(ix, w, savedIndexVersion)
}

// SaveVersion serializes the index in an explicit container version — 5
// (the default: adds the mutable-index state), 4 (tree shapes and per-shard
// checksums), 3 (tree shapes, one global checksum) or 2 (words only, Load
// re-splits every shard tree). Writing old versions exists for the
// compatibility fixtures and the load benchmark; new snapshots should use
// Save. A collection that carries mutation state older versions cannot
// express — tombstones, remapped ids, re-learned shards — refuses to write
// them: silently dropping that state would resurrect deleted series on
// load.
func SaveVersion(ix *Index, w io.Writer, version int) error {
	if version != 2 && version != 3 && version != 4 && version != savedIndexVersion {
		return fmt.Errorf("core: cannot write container version %d (supported: 2, 3, 4, %d)", version, savedIndexVersion)
	}
	col := ix.col
	if version < savedIndexVersion {
		if err := col.requireLegacySavable(version); err != nil {
			return err
		}
	}
	for i := range col.states {
		if col.tree(i) == nil {
			// A load-quarantined shard has no tree (and its saved words were
			// corrupt): a container written without it would silently drop
			// 1/S of the collection under healthy-looking checksums.
			return fmt.Errorf("core: cannot save: %w", &ShardError{Shard: i, Err: ErrShardQuarantined})
		}
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	s := savedIndex{
		Version:      version,
		Method:       col.method,
		WordLength:   col.cfg.WordLength,
		Bits:         col.cfg.Bits,
		LeafCapacity: col.cfg.LeafCapacity,
		SeriesLen:    col.SeriesLen(),
		Count:        col.PhysLen(),
		Shards:       col.Shards(),
		NoLeafBlocks: col.cfg.NoLeafBlocks,
		ShardWords:   make([][]byte, col.Shards()),
	}
	for i := range col.states {
		s.ShardWords[i] = col.tree(i).Words()
	}
	if version >= 3 {
		s.ShardShapes = make([]packedShape, col.Shards())
		for i := range col.states {
			s.ShardShapes[i] = packShape(col.tree(i).Shape())
		}
		s.DataBytes = make([]byte, s.Count*col.SeriesLen()*4)
		if version >= 5 {
			// Shard-major: shard 0's rows then shard 1's, local id order.
			base := 0
			for i := range col.states {
				st := col.state(i)
				for local := 0; local < st.tree.Len(); local++ {
					for j, v := range st.data.Row(local) {
						binary.LittleEndian.PutUint32(s.DataBytes[base+4*j:], math.Float32bits(float32(v)))
					}
					base += col.SeriesLen() * 4
				}
			}
		} else {
			for g := 0; g < s.Count; g++ {
				base := g * col.SeriesLen() * 4
				for j, v := range col.Row(g) {
					binary.LittleEndian.PutUint32(s.DataBytes[base+4*j:], math.Float32bits(float32(v)))
				}
			}
		}
	} else {
		s.Data = make([]float32, s.Count*col.SeriesLen())
		for g := 0; g < s.Count; g++ {
			row := col.Row(g)
			for j, v := range row {
				s.Data[g*col.SeriesLen()+j] = float32(v)
			}
		}
	}
	if col.sfaQ != nil {
		st := col.sfaQ.State()
		s.SFA = &st
	}
	if version >= 4 {
		s.ShardChecksums = make([]uint32, col.Shards())
		for i := range s.ShardChecksums {
			s.ShardChecksums[i] = shardChecksum(s.ShardWords[i], s.ShardShapes[i])
		}
	}
	if version >= 5 {
		col.fillSavedMutationState(&s)
	}
	if version >= 3 {
		s.Checksum = payloadChecksum(&s)
	}
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		return fmt.Errorf("core: encoding index: %w", err)
	}
	return bw.Flush()
}

// requireLegacySavable refuses a pre-v5 container for a collection whose
// mutation state those versions cannot express.
func (c *Collection) requireLegacySavable(version int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tomb.Load() != 0 || c.pub2loc != nil {
		return fmt.Errorf("core: cannot write container version %d: collection has tombstones or remapped ids (version %d required)",
			version, savedIndexVersion)
	}
	for i := range c.states {
		if c.state(i).relearned {
			return fmt.Errorf("core: cannot write container version %d: shard %d carries a re-learned quantization (version %d required)",
				version, i, savedIndexVersion)
		}
	}
	return nil
}

// fillSavedMutationState copies the collection's mutable-index state into a
// version-5 container under the mutation lock (bitmaps and id tables alias
// live mutation state, so they are deep-copied).
func (c *Collection) fillSavedMutationState(s *savedIndex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.MutSeq = c.mutSeq.Load()
	s.PubCount = c.pubCount
	s.ShardCounts = make([]int32, len(c.states))
	s.ShardDead = make([][]uint64, len(c.states))
	s.ShardDeadCounts = make([]int32, len(c.states))
	hasPubs := false
	hasSFA := false
	for i := range c.states {
		st := c.state(i)
		s.ShardCounts[i] = int32(st.tree.Len())
		if dead, n := st.tree.Tombstones(); n > 0 {
			s.ShardDead[i] = append([]uint64(nil), dead...)
			s.ShardDeadCounts[i] = int32(n)
		}
		hasPubs = hasPubs || st.pubOf != nil
		hasSFA = hasSFA || st.relearned
	}
	if hasPubs {
		s.ShardPubs = make([][]int32, len(c.states))
		for i := range c.states {
			s.ShardPubs[i] = append([]int32(nil), c.state(i).pubOf...)
		}
	}
	if hasSFA {
		s.ShardSFA = make([]*sfa.State, len(c.states))
		for i := range c.states {
			st := c.state(i)
			if !st.relearned {
				continue
			}
			if q, ok := st.tree.Sum().(sfaSummarization); ok {
				sq := q.Quantizer.State()
				s.ShardSFA[i] = &sq
			}
		}
	}
}

// applySavedMutationState installs a version-5 container's mutation state
// into a freshly built collection: per-shard tombstone bitmaps, the public
// id tables, the mutation sequence number, and the re-learned markers. It
// validates the id tables as a bijection over the live rows before trusting
// them — a corrupted table must fail the load, not return wrong ids.
func (c *Collection) applySavedMutationState(s *savedIndex) error {
	shards := int64(len(c.states))
	dead := 0
	for i := range c.states {
		st := c.state(i)
		n := int(s.ShardDeadCounts[i])
		if n < 0 {
			return fmt.Errorf("core: shard %d tombstone count %d negative", i, n)
		}
		dead += n
		if st.tree == nil {
			// Load-quarantined shard: no tree to install the bitmap into; the
			// counters still account for its saved tombstones.
			continue
		}
		if n == 0 && s.ShardDead[i] == nil {
			continue
		}
		if err := st.tree.SetTombstones(append([]uint64(nil), s.ShardDead[i]...), n); err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	c.initMutationState(s.PubCount, dead)
	c.mutSeq.Store(s.MutSeq)

	if s.ShardSFA != nil {
		for i := range c.states {
			if s.ShardSFA[i] != nil {
				c.state(i).relearned = true
			}
		}
	}

	if s.ShardPubs == nil {
		// Identity layout: pub = local*S + shard, which requires every public
		// id to name a physical row and vice versa.
		if s.PubCount != int64(s.Count) {
			return fmt.Errorf("core: container has %d public ids for %d rows but no id table", s.PubCount, s.Count)
		}
		return nil
	}
	pub2loc := make([]int64, s.PubCount)
	for p := range pub2loc {
		pub2loc[p] = -1
	}
	for i := range c.states {
		pubs := s.ShardPubs[i]
		if len(pubs) != int(s.ShardCounts[i]) {
			return fmt.Errorf("core: shard %d id table has %d entries for %d rows", i, len(pubs), s.ShardCounts[i])
		}
		st := c.state(i)
		for local, pub := range pubs {
			if int64(pub) < 0 || int64(pub) >= s.PubCount {
				return fmt.Errorf("core: shard %d row %d claims public id %d outside [0,%d)", i, local, pub, s.PubCount)
			}
			if st.tree != nil && st.tree.Tombstoned(int32(local)) {
				// Tombstoned rows keep their (retired or superseded) id in
				// pubOf; only live rows claim pub2loc entries.
				continue
			}
			if pub2loc[pub] != -1 {
				return fmt.Errorf("core: public id %d claimed by two live rows", pub)
			}
			pub2loc[pub] = int64(local)*shards + int64(i)
		}
		st.pubOf = append([]int32(nil), pubs...)
	}
	c.pub2loc = pub2loc
	return nil
}

// SaveFile writes the index to a file atomically: the container is written
// to a temp file in the same directory, fsynced, renamed over path, and the
// directory fsynced. A crash at any point leaves either the old file or the
// new one — never a truncated hybrid (os.Create in place, the previous
// behaviour, destroyed the last good container the moment the save began).
func SaveFile(ix *Index, path string) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		return Save(ix, w)
	})
}

// atomicWriteFile publishes the output of write at path with
// temp+fsync+rename+dir-fsync crash atomicity. The temp file is created in
// path's directory (rename must not cross filesystems) and removed on any
// failure. In chaos builds the temp file's writes run through faultWriter
// (SitePersistWrite) and the commit point is guarded by SiteCheckpointRename.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var w io.Writer = f
	if faultinject.Enabled {
		w = &faultWriter{w: f}
	}
	if err := write(w); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteCheckpointRename); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("core: atomic save of %s: %w", filepath.Base(path), err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Filesystems that refuse directory fsync (some network mounts) are
// tolerated: the rename itself is still atomic there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	return d.Close()
}

// faultWriter threads SitePersistWrite through every chunk the container
// saver writes to the temp file. A fatal injected fault tears the chunk —
// half its bytes reach the file — before surfacing, modelling a crash
// mid-save; transient faults retry under the read path's bounded backoff.
// Only chaos builds construct one.
type faultWriter struct {
	w io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if faultinject.Enabled {
		for attempt := 0; ; attempt++ {
			err := faultinject.Hook(faultinject.SitePersistWrite)
			if err == nil {
				break
			}
			if faultinject.IsTransient(err) && attempt < maxReadRetries {
				continue
			}
			n, _ := fw.w.Write(p[:len(p)/2])
			return n, err
		}
	}
	return fw.w.Write(p)
}

// LoadStats reports where a Load spent its time — the introspection behind
// the v3 "load is I/O + decode" contract.
type LoadStats struct {
	// Version is the container version of the loaded file.
	Version int
	// Bytes is the number of bytes read from the container.
	Bytes int64
	// DecodeSeconds covers gob decode, validation, and re-normalizing the
	// float32 data into the per-shard matrices.
	DecodeSeconds float64
	// TreeSeconds is the wall-clock time of the parallel per-shard tree
	// phase: shape decode for v3, full re-bucket + re-split for v1/v2.
	TreeSeconds float64
	// TotalSeconds is the whole Load call.
	TotalSeconds float64
	// Splits counts leaf splits performed while reconstructing the shard
	// trees: zero for a v3+ container (direct decode), the full build's
	// split count for v1/v2 (re-split from words).
	Splits int64
	// QuarantinedShards lists the shards whose payloads failed their
	// checksums and were quarantined under
	// LoadOptions.QuarantineCorruptShards (nil for a clean load).
	QuarantinedShards []int
}

// LoadOptions controls degraded-mode loading.
type LoadOptions struct {
	// QuarantineCorruptShards accepts a version-4 container with corrupt
	// per-shard payloads as a degraded collection: shards whose checksum
	// fails load with no tree, permanently quarantined (searches skip them,
	// partial-result queries report them failed with an unbounded ε, Insert
	// and Save refuse them), while every healthy shard loads normally. The
	// default (false) fails the whole load on any corruption, like version 3.
	// A container whose every shard is corrupt fails to load regardless.
	QuarantineCorruptShards bool
}

// countingReader counts bytes consumed from the underlying reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// maxReadRetries bounds the retry budget of retryReader: transient storage
// hiccups clear within a few attempts; anything that survives the budget is
// a real failure and must surface.
const maxReadRetries = 3

// retryReader retries reads that fail with a transient error (the net-style
// Temporary contract, or an injected transient fault in chaos builds) under
// a bounded exponential backoff — 1ms, 2ms, 4ms — then gives up. Reads that
// return data alongside an error pass through untouched: io.Reader
// semantics deliver the bytes first and the error on the next call.
type retryReader struct {
	r io.Reader
}

func (rr *retryReader) Read(p []byte) (int, error) {
	delay := time.Millisecond
	for attempt := 0; ; attempt++ {
		if faultinject.Enabled {
			if err := faultinject.Hook(faultinject.SitePersistRead); err != nil {
				if faultinject.IsTransient(err) && attempt < maxReadRetries {
					time.Sleep(delay)
					delay *= 2
					continue
				}
				return 0, err
			}
		}
		n, err := rr.r.Read(p)
		if n > 0 || err == nil || err == io.EOF {
			return n, err
		}
		if !isTransientRead(err) || attempt >= maxReadRetries {
			return n, err
		}
		time.Sleep(delay)
		delay *= 2
	}
}

// isTransientRead reports whether a read error advertises itself as worth
// retrying.
func isTransientRead(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// Load deserializes an index previously written by Save (any container
// version). The returned index answers queries identically to the one saved
// (up to float32 round-trip of the underlying data, against which results
// remain exact). Version-3+ containers decode their shard trees directly;
// older versions rebuild them from the saved words. Shard reconstruction is
// parallel across shards either way. Transient read errors from r (the
// net-style Temporary contract) are retried under a bounded backoff before
// the load fails.
func Load(r io.Reader) (*Index, error) {
	return LoadWithStats(r, nil)
}

// LoadWithStats is Load with phase timings: when st is non-nil it is filled
// with the container version, byte count, decode/tree split and the number
// of leaf re-splits the load performed (zero for v3+).
func LoadWithStats(r io.Reader, st *LoadStats) (*Index, error) {
	return LoadWithOptions(r, LoadOptions{}, st)
}

// LoadWithOptions is LoadWithStats with degraded-mode control: see
// LoadOptions.QuarantineCorruptShards for loading a partially corrupt
// version-4 container as a degraded collection. st may be nil.
func LoadWithOptions(r io.Reader, opts LoadOptions, st *LoadStats) (*Index, error) {
	start := time.Now()
	cr := &countingReader{r: r}
	br := bufio.NewReaderSize(&retryReader{r: cr}, 1<<20)
	var s savedIndex
	if err := gob.NewDecoder(br).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding index: %w", err)
	}
	// Container size = bytes pulled from r minus bufio's unread read-ahead,
	// so Bytes stays exact even when r carries trailing data (concatenated
	// containers, network streams). gob itself consumes whole length-
	// prefixed messages and reads no further.
	containerBytes := cr.n - int64(br.Buffered())
	// corrupt marks version-4 shards whose payload checksum failed and that
	// LoadOptions.QuarantineCorruptShards converts into load-time quarantine
	// instead of load failure. nil for clean loads and older versions.
	var corrupt []bool
	switch s.Version {
	case 1:
		s.Shards = 1
		s.ShardWords = [][]byte{s.Words}
	case 2, 3, 4, savedIndexVersion:
		if s.Shards < 1 || len(s.ShardWords) != s.Shards {
			return nil, fmt.Errorf("core: corrupt shard table (%d shards, %d word buffers)",
				s.Shards, len(s.ShardWords))
		}
		if s.Version >= 3 && len(s.ShardShapes) != s.Shards {
			return nil, fmt.Errorf("core: version %d container with %d tree shapes for %d shards",
				s.Version, len(s.ShardShapes), s.Shards)
		}
		if s.Version >= 4 && len(s.ShardChecksums) != s.Shards {
			return nil, fmt.Errorf("core: version %d container with %d shard checksums for %d shards",
				s.Version, len(s.ShardChecksums), s.Shards)
		}
		if s.Version >= 3 {
			// For v3 this covers every payload; for v4 the header, SFA tables
			// and data — the per-shard payloads are checked shard by shard
			// below, which is what makes quarantine attributable.
			if got := payloadChecksum(&s); got != s.Checksum {
				return nil, fmt.Errorf("core: payload checksum mismatch (%08x, header says %08x)", got, s.Checksum)
			}
		}
		if s.Version >= 4 {
			nCorrupt := 0
			for i := range s.ShardChecksums {
				if shardChecksum(s.ShardWords[i], s.ShardShapes[i]) == s.ShardChecksums[i] {
					continue
				}
				if !opts.QuarantineCorruptShards {
					return nil, fmt.Errorf("core: shard %d payload checksum mismatch (load with QuarantineCorruptShards to keep the healthy shards)", i)
				}
				if corrupt == nil {
					corrupt = make([]bool, s.Shards)
				}
				corrupt[i] = true
				nCorrupt++
			}
			if nCorrupt == s.Shards {
				return nil, fmt.Errorf("core: every shard payload failed its checksum; nothing to load")
			}
		}
	default:
		return nil, fmt.Errorf("core: unsupported index version %d", s.Version)
	}
	// Header sanity, before any size computation depends on it: each bound
	// also keeps Count*SeriesLen and Count*WordLength inside int range, so a
	// forged header cannot wrap a length check around integer overflow.
	if s.Count < 1 || s.Count > math.MaxInt32 {
		return nil, fmt.Errorf("core: corrupt series count %d", s.Count)
	}
	if s.SeriesLen < 1 {
		return nil, fmt.Errorf("core: corrupt series length %d", s.SeriesLen)
	}
	if int64(s.Count)*int64(s.SeriesLen) > 1<<40 {
		// Far beyond any container Save can produce in practice, yet small
		// enough that every downstream size computation (x8 for float64,
		// x4 for the packed bytes) stays inside int64.
		return nil, fmt.Errorf("core: index dimensions %d x %d overflow", s.Count, s.SeriesLen)
	}
	if s.WordLength < 1 || s.WordLength > 64 {
		return nil, fmt.Errorf("core: corrupt word length %d", s.WordLength)
	}
	if s.Bits < 1 || s.Bits > 8 {
		return nil, fmt.Errorf("core: corrupt symbol bits %d", s.Bits)
	}
	if s.LeafCapacity < 1 {
		return nil, fmt.Errorf("core: corrupt leaf capacity %d", s.LeafCapacity)
	}
	if s.Shards > s.Count {
		return nil, fmt.Errorf("core: %d shards for %d series", s.Shards, s.Count)
	}
	if s.Version >= 5 {
		if len(s.ShardCounts) != s.Shards || len(s.ShardDead) != s.Shards || len(s.ShardDeadCounts) != s.Shards {
			return nil, fmt.Errorf("core: corrupt version-5 shard tables (%d/%d/%d entries for %d shards)",
				len(s.ShardCounts), len(s.ShardDead), len(s.ShardDeadCounts), s.Shards)
		}
		if s.ShardPubs != nil && len(s.ShardPubs) != s.Shards {
			return nil, fmt.Errorf("core: corrupt id tables (%d for %d shards)", len(s.ShardPubs), s.Shards)
		}
		if s.ShardSFA != nil && len(s.ShardSFA) != s.Shards {
			return nil, fmt.Errorf("core: corrupt per-shard SFA tables (%d for %d shards)", len(s.ShardSFA), s.Shards)
		}
		if s.Method != SOFA && s.ShardSFA != nil {
			return nil, fmt.Errorf("core: non-SOFA container carries per-shard SFA state")
		}
		// Upserts add physical rows without assigning ids, so PubCount and
		// Count are ordered either way; only the id-table bijection below
		// ties them together.
		if s.PubCount < 1 || s.PubCount > math.MaxInt32 {
			return nil, fmt.Errorf("core: corrupt public id count %d", s.PubCount)
		}
		rows := 0
		for i, n := range s.ShardCounts {
			if n < 1 {
				return nil, fmt.Errorf("core: corrupt shard %d row count %d", i, n)
			}
			rows += int(n)
		}
		if rows != s.Count {
			return nil, fmt.Errorf("core: shard row counts sum to %d, header says %d", rows, s.Count)
		}
	}
	if s.Version >= 3 {
		if int64(len(s.DataBytes)) != int64(s.Count)*int64(s.SeriesLen)*4 {
			return nil, fmt.Errorf("core: data length %d bytes, want %d", len(s.DataBytes), s.Count*s.SeriesLen*4)
		}
	} else if int64(len(s.Data)) != int64(s.Count)*int64(s.SeriesLen) {
		return nil, fmt.Errorf("core: data length %d, want %d", len(s.Data), s.Count*s.SeriesLen)
	}
	// shardRows is shard sh's physical row count: explicit in a version-5
	// container (compaction diverges the shards), the round-robin share
	// before that.
	shardRows := func(sh int) int {
		if s.Version >= 5 {
			return int(s.ShardCounts[sh])
		}
		return (s.Count - sh + s.Shards - 1) / s.Shards
	}
	for sh, words := range s.ShardWords {
		if corrupt != nil && corrupt[sh] {
			continue // quarantined payload: its bytes are not trusted enough to validate
		}
		if len(words) != shardRows(sh)*s.WordLength {
			return nil, fmt.Errorf("core: shard %d words length %d, want %d",
				sh, len(words), shardRows(sh)*s.WordLength)
		}
		for _, w := range words {
			if s.Bits < 8 && int(w) >= 1<<s.Bits {
				return nil, fmt.Errorf("core: word symbol %d exceeds alphabet %d", w, 1<<s.Bits)
			}
		}
	}
	// Decode the float32 data (stored in global id order) straight into the
	// per-shard matrices — an intermediate full matrix would transiently
	// double series memory, the dominant cost on the memory-constrained
	// many-shard deployments sharding targets. Rows are re-z-normalized to
	// restore exactness after the f32 round-trip.
	sdata := make([]*distance.Matrix, s.Shards)
	for sh := range sdata {
		sdata[sh] = distance.NewMatrix(shardRows(sh), s.SeriesLen)
	}
	decodeRow := func(row []float64, g int) error {
		base := g * s.SeriesLen * 4
		for j := 0; j < s.SeriesLen; j++ {
			f := float64(math.Float32frombits(binary.LittleEndian.Uint32(s.DataBytes[base+4*j:])))
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("core: non-finite data value at offset %d", g*s.SeriesLen+j)
			}
			row[j] = f
		}
		distance.ZNormalize(row)
		return nil
	}
	if s.Version >= 5 {
		// Shard-major layout: shard 0's rows, then shard 1's, local id order.
		g := 0
		for sh := 0; sh < s.Shards; sh++ {
			for local := 0; local < shardRows(sh); local++ {
				if err := decodeRow(sdata[sh].Row(local), g); err != nil {
					return nil, err
				}
				g++
			}
		}
	} else {
		for g := 0; g < s.Count; g++ {
			row := sdata[g%s.Shards].Row(g / s.Shards)
			if s.Version >= 3 {
				if err := decodeRow(row, g); err != nil {
					return nil, err
				}
			} else {
				src := s.Data[g*s.SeriesLen : (g+1)*s.SeriesLen]
				for j, v := range src {
					if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
						return nil, fmt.Errorf("core: non-finite data value at offset %d", g*s.SeriesLen+j)
					}
					row[j] = float64(v)
				}
				distance.ZNormalize(row)
			}
		}
	}

	cfg := Config{
		Method: s.Method, WordLength: s.WordLength, Bits: s.Bits,
		LeafCapacity: s.LeafCapacity, Shards: s.Shards, NoLeafBlocks: s.NoLeafBlocks,
	}
	col := &Collection{method: s.Method, cfg: cfg, total: s.Count, stride: s.SeriesLen}
	var sum index.Summarization
	switch s.Method {
	case MESSI:
		var err error
		sum, _, _, err = newSummarization(sdata[0], cfg)
		if err != nil {
			return nil, err
		}
	case SOFA:
		if s.SFA == nil {
			return nil, fmt.Errorf("core: SOFA index missing SFA state")
		}
		q, err := sfa.FromState(*s.SFA)
		if err != nil {
			return nil, err
		}
		col.sfaQ = q
		sum = sfaSummarization{q}
	default:
		return nil, fmt.Errorf("core: unknown method %v in saved index", s.Method)
	}
	col.sum = sum
	decodeSeconds := time.Since(start).Seconds()

	// Per-shard tree phase, parallel across shards: version 3 decodes the
	// serialized shape directly (no splitting; the decoder re-verifies every
	// structural invariant against the word buffer), older versions
	// re-bucket and re-split from the saved words.
	treeOpts := col.shardOptions()
	treeStart := time.Now()
	var err error
	if s.Version >= 3 {
		err = col.buildShardTrees(sdata, func(i int) (*index.Tree, error) {
			if corrupt != nil && corrupt[i] {
				// Quarantined at load: no tree. buildShardTrees marks the
				// shard quarantined and untrusted.
				return nil, nil
			}
			shape, err := unpackShape(s.ShardShapes[i])
			if err != nil {
				return nil, err
			}
			shardSum := sum
			if s.Version >= 5 && s.ShardSFA != nil && s.ShardSFA[i] != nil {
				// The shard re-learned its SFA quantization at a compaction;
				// its tree bounds only hold in the shard's own space.
				q, err := sfa.FromState(*s.ShardSFA[i])
				if err != nil {
					return nil, fmt.Errorf("core: shard %d SFA state: %w", i, err)
				}
				shardSum = sfaSummarization{q}
			}
			return index.FromShape(sdata[i], shardSum, treeOpts, s.ShardWords[i], shape)
		})
	} else {
		err = col.buildShardTrees(sdata, func(i int) (*index.Tree, error) {
			return index.BuildFromWords(sdata[i], sum, treeOpts, s.ShardWords[i])
		})
	}
	if err != nil {
		return nil, err
	}
	if s.Version >= 5 {
		if err := col.applySavedMutationState(&s); err != nil {
			return nil, err
		}
	} else {
		col.initMutationState(int64(col.total), 0)
	}
	if st != nil {
		st.Version = s.Version
		st.Bytes = containerBytes
		st.DecodeSeconds = decodeSeconds
		st.TreeSeconds = time.Since(treeStart).Seconds()
		st.TotalSeconds = time.Since(start).Seconds()
		st.Splits = col.SplitCount()
		st.QuarantinedShards = col.Quarantined()
	}
	return &Index{col: col, TreeSeconds: col.TreeSeconds}, nil
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
