package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/sfa"
)

// savedIndex is the gob-serialized container format. Data values are stored
// as float32 (the paper's on-disk precision) in global id order and
// re-z-normalized on load, so the exactness guarantee is preserved against
// the loaded data.
//
// Version 1 stored a single word buffer (Words); version 2 stores the shard
// count plus one word buffer per shard in shard-local row order, which lets
// Load rebuild every shard tree in parallel. Version-1 files load as a
// single-shard collection.
type savedIndex struct {
	Version      int
	Method       Method
	WordLength   int
	Bits         int
	LeafCapacity int
	SeriesLen    int
	Count        int
	Data         []float32
	Words        []byte // version 1 only
	SFA          *sfa.State

	// Version 2 fields.
	Shards       int
	ShardWords   [][]byte
	NoLeafBlocks bool
}

const savedIndexVersion = 2

// Save serializes the index (summarization tables, per-shard words and
// data) to w. The tree structures themselves are not stored: each shard is
// rebuilt deterministically from its words on Load, in parallel across
// shards, which is cheap relative to the transform.
func Save(ix *Index, w io.Writer) error {
	col := ix.col
	bw := bufio.NewWriterSize(w, 1<<20)
	s := savedIndex{
		Version:      savedIndexVersion,
		Method:       col.method,
		WordLength:   col.cfg.WordLength,
		Bits:         col.cfg.Bits,
		LeafCapacity: col.cfg.LeafCapacity,
		SeriesLen:    col.SeriesLen(),
		Count:        col.Len(),
		Shards:       col.Shards(),
		NoLeafBlocks: col.cfg.NoLeafBlocks,
		ShardWords:   make([][]byte, col.Shards()),
	}
	for i, t := range col.shards {
		s.ShardWords[i] = t.Words()
	}
	s.Data = make([]float32, col.Len()*col.SeriesLen())
	for g := 0; g < col.Len(); g++ {
		row := col.Row(g)
		for j, v := range row {
			s.Data[g*col.SeriesLen()+j] = float32(v)
		}
	}
	if col.sfaQ != nil {
		st := col.sfaQ.State()
		s.SFA = &st
	}
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		return fmt.Errorf("core: encoding index: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes the index to a file.
func SaveFile(ix *Index, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(ix, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load deserializes an index previously written by Save (either format
// version). The returned index answers queries identically to the one saved
// (up to float32 round-trip of the underlying data, against which results
// remain exact). Shard trees are rebuilt in parallel.
func Load(r io.Reader) (*Index, error) {
	var s savedIndex
	if err := gob.NewDecoder(bufio.NewReaderSize(r, 1<<20)).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding index: %w", err)
	}
	switch s.Version {
	case 1:
		s.Shards = 1
		s.ShardWords = [][]byte{s.Words}
	case savedIndexVersion:
		if s.Shards < 1 || len(s.ShardWords) != s.Shards {
			return nil, fmt.Errorf("core: corrupt shard table (%d shards, %d word buffers)",
				s.Shards, len(s.ShardWords))
		}
	default:
		return nil, fmt.Errorf("core: unsupported index version %d", s.Version)
	}
	if s.Count < 1 || s.SeriesLen < 1 {
		return nil, fmt.Errorf("core: corrupt index header (%d series x %d)", s.Count, s.SeriesLen)
	}
	if s.Shards > s.Count {
		return nil, fmt.Errorf("core: %d shards for %d series", s.Shards, s.Count)
	}
	if len(s.Data) != s.Count*s.SeriesLen {
		return nil, fmt.Errorf("core: data length %d, want %d", len(s.Data), s.Count*s.SeriesLen)
	}
	for sh, words := range s.ShardWords {
		shardCount := (s.Count - sh + s.Shards - 1) / s.Shards
		if len(words) != shardCount*s.WordLength {
			return nil, fmt.Errorf("core: shard %d words length %d, want %d",
				sh, len(words), shardCount*s.WordLength)
		}
		for _, w := range words {
			if s.Bits < 8 && int(w) >= 1<<s.Bits {
				return nil, fmt.Errorf("core: word symbol %d exceeds alphabet %d", w, 1<<s.Bits)
			}
		}
	}
	// Decode the float32 data (stored in global id order) straight into the
	// per-shard matrices — an intermediate full matrix would transiently
	// double series memory, the dominant cost on the memory-constrained
	// many-shard deployments sharding targets. Rows are re-z-normalized to
	// restore exactness after the f32 round-trip.
	sdata := make([]*distance.Matrix, s.Shards)
	for sh := range sdata {
		sdata[sh] = distance.NewMatrix((s.Count-sh+s.Shards-1)/s.Shards, s.SeriesLen)
	}
	for g := 0; g < s.Count; g++ {
		row := sdata[g%s.Shards].Row(g / s.Shards)
		src := s.Data[g*s.SeriesLen : (g+1)*s.SeriesLen]
		for j, v := range src {
			if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("core: non-finite data value at offset %d", g*s.SeriesLen+j)
			}
			row[j] = float64(v)
		}
		distance.ZNormalize(row)
	}

	cfg := Config{
		Method: s.Method, WordLength: s.WordLength, Bits: s.Bits,
		LeafCapacity: s.LeafCapacity, Shards: s.Shards, NoLeafBlocks: s.NoLeafBlocks,
	}
	col := &Collection{method: s.Method, cfg: cfg, total: s.Count, stride: s.SeriesLen}
	var sum index.Summarization
	switch s.Method {
	case MESSI:
		var err error
		sum, _, _, err = newSummarization(sdata[0], cfg)
		if err != nil {
			return nil, err
		}
	case SOFA:
		if s.SFA == nil {
			return nil, fmt.Errorf("core: SOFA index missing SFA state")
		}
		q, err := sfa.FromState(*s.SFA)
		if err != nil {
			return nil, err
		}
		col.sfaQ = q
		sum = sfaSummarization{q}
	default:
		return nil, fmt.Errorf("core: unknown method %v in saved index", s.Method)
	}
	col.sum = sum

	// Rebuild every shard in parallel: re-bucket and re-split from the saved
	// words, skipping the (expensive) summarization transform.
	col.sdata = sdata
	opts := col.shardOptions()
	if err := col.buildShardTrees(func(i int) (*index.Tree, error) {
		return index.BuildFromWords(col.sdata[i], sum, opts, s.ShardWords[i])
	}); err != nil {
		return nil, err
	}
	return &Index{col: col, TreeSeconds: col.TreeSeconds}, nil
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
