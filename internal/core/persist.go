package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/sax"
	"repro/internal/sfa"
)

// savedIndex is the gob-serialized form of an Index. Data values are stored
// as float32 (the paper's on-disk precision) and re-z-normalized on load,
// so the exactness guarantee is preserved against the loaded data.
type savedIndex struct {
	Version      int
	Method       Method
	WordLength   int
	Bits         int
	LeafCapacity int
	SeriesLen    int
	Count        int
	Data         []float32
	Words        []byte
	SFA          *sfa.State // nil for MESSI
}

const savedIndexVersion = 1

// Save serializes the index (summarization tables, words and data) to w.
// The tree structure itself is not stored: it is rebuilt deterministically
// from the words on Load, which is cheap relative to the transform.
func Save(ix *Index, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	s := savedIndex{
		Version:      savedIndexVersion,
		Method:       ix.method,
		WordLength:   ix.cfg.WordLength,
		Bits:         ix.cfg.Bits,
		LeafCapacity: ix.cfg.LeafCapacity,
		SeriesLen:    ix.SeriesLen(),
		Count:        ix.Len(),
		Words:        ix.tree.Words(),
	}
	data := ix.data
	s.Data = make([]float32, len(data.Data))
	for i, v := range data.Data {
		s.Data[i] = float32(v)
	}
	if ix.sfaQ != nil {
		st := ix.sfaQ.State()
		s.SFA = &st
	}
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		return fmt.Errorf("core: encoding index: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes the index to a file.
func SaveFile(ix *Index, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(ix, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load deserializes an index previously written by Save. The returned
// index answers queries identically to the one saved (up to float32
// round-trip of the underlying data, against which results remain exact).
func Load(r io.Reader) (*Index, error) {
	var s savedIndex
	if err := gob.NewDecoder(bufio.NewReaderSize(r, 1<<20)).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding index: %w", err)
	}
	if s.Version != savedIndexVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", s.Version)
	}
	if s.Count < 1 || s.SeriesLen < 1 {
		return nil, fmt.Errorf("core: corrupt index header (%d series x %d)", s.Count, s.SeriesLen)
	}
	if len(s.Data) != s.Count*s.SeriesLen {
		return nil, fmt.Errorf("core: data length %d, want %d", len(s.Data), s.Count*s.SeriesLen)
	}
	if len(s.Words) != s.Count*s.WordLength {
		return nil, fmt.Errorf("core: words length %d, want %d", len(s.Words), s.Count*s.WordLength)
	}
	for _, w := range s.Words {
		if s.Bits < 8 && int(w) >= 1<<s.Bits {
			return nil, fmt.Errorf("core: word symbol %d exceeds alphabet %d", w, 1<<s.Bits)
		}
	}
	data := distance.NewMatrix(s.Count, s.SeriesLen)
	for i, v := range s.Data {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("core: non-finite data value at offset %d", i)
		}
		data.Data[i] = float64(v)
	}
	data.ZNormalizeAll() // restore exact z-normalization after f32 rounding

	ix := &Index{method: s.Method, data: data, cfg: Config{
		Method: s.Method, WordLength: s.WordLength, Bits: s.Bits, LeafCapacity: s.LeafCapacity,
	}}
	var sum index.Summarization
	switch s.Method {
	case MESSI:
		q, err := sax.NewQuantizer(s.SeriesLen, s.WordLength, s.Bits)
		if err != nil {
			return nil, err
		}
		sum = saxSummarization{q}
	case SOFA:
		if s.SFA == nil {
			return nil, fmt.Errorf("core: SOFA index missing SFA state")
		}
		q, err := sfa.FromState(*s.SFA)
		if err != nil {
			return nil, err
		}
		ix.sfaQ = q
		sum = sfaSummarization{q}
	default:
		return nil, fmt.Errorf("core: unknown method %v in saved index", s.Method)
	}
	tree, err := index.BuildFromWords(data, sum, index.Options{LeafCapacity: s.LeafCapacity}, s.Words)
	if err != nil {
		return nil, err
	}
	ix.tree = tree
	ix.TreeSeconds = tree.TreeSeconds
	return ix, nil
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
