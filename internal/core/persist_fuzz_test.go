package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSeedContainers builds small valid containers (v2 and v3, sharded and
// not, blocks on and off) to seed the corpus with structurally meaningful
// bytes the mutator can corrupt.
func fuzzSeedContainers(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(91))
	data := mixedMatrix(rng, 120, 32)
	var out [][]byte
	for _, c := range []Config{
		{Method: MESSI, LeafCapacity: 16},
		{Method: SOFA, LeafCapacity: 16, SampleRate: 0.3, Shards: 3},
		{Method: SOFA, LeafCapacity: 16, SampleRate: 0.3, Shards: 2, NoLeafBlocks: true},
	} {
		ix, err := Build(data, c)
		if err != nil {
			tb.Fatal(err)
		}
		for _, v := range []int{2, 3, 4} {
			var buf bytes.Buffer
			if err := SaveVersion(ix, &buf, v); err != nil {
				tb.Fatal(err)
			}
			out = append(out, buf.Bytes())
		}
	}
	return out
}

// FuzzLoadCorrupt feeds Load arbitrary (mostly corrupted-container) bytes:
// every input must either load into a coherent index or return an error —
// never panic, and never allocate from forged header sizes (the header
// bounds in Load cap every size computation before it is trusted). Wired
// into the kernel-parity CI job's fuzz block for a continuous short pass.
func FuzzLoadCorrupt(f *testing.F) {
	seeds := fuzzSeedContainers(f)
	for _, s := range seeds {
		f.Add(s)
		// Classic corruptions as explicit seeds: truncations and bit flips
		// at a few offsets.
		f.Add(s[:len(s)/2])
		f.Add(s[:len(s)-7])
		for _, off := range []int{10, len(s) / 3, len(s) - 20} {
			flipped := append([]byte(nil), s...)
			flipped[off] ^= 0x41
			f.Add(flipped)
		}
	}
	f.Add([]byte("not a gob stream"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		if len(blob) > 1<<20 {
			t.Skip("corrupting small containers; large inputs only slow the mutator")
		}
		ix, err := Load(bytes.NewReader(blob))
		if err != nil {
			return // rejected cleanly: the only acceptable failure mode
		}
		// The rare mutation that still decodes must yield a coherent index.
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("loaded container violates invariants: %v", err)
		}
		q := make([]float64, ix.SeriesLen())
		for i := range q {
			q[i] = float64(i%7) - 3
		}
		if _, err := ix.NewSearcher().Search(q, 3); err != nil {
			t.Fatalf("loaded container cannot answer queries: %v", err)
		}
	})
}
