package core

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/distance"
	"repro/internal/index"
)

// The persist-compat golden suite: small v1–v4 containers checked
// in under testdata/ together with the query answers they must keep
// producing. TestPersistCompatGolden is the CI gate — it fails on any
// format drift (a fixture stops loading) or result drift (a fixture loads
// but answers differently). Regenerate fixtures ONLY for an intentional,
// documented format change:
//
//	go test ./internal/core/ -run TestRegenPersistGolden -regen-golden
var regenGolden = flag.Bool("regen-golden", false, "rewrite the golden persistence fixtures under testdata/")

// goldenMatrix is the frozen fixture generator. It must never change: the
// checked-in expected results were computed over exactly these series.
// (mixedMatrix is similar but test-local and free to evolve; this one is
// part of the compatibility contract.)
func goldenMatrix(seed int64, count, n int) *distance.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		switch i % 3 {
		case 0:
			v := 0.0
			for j := range row {
				v += rng.NormFloat64()
				row[j] = v
			}
		case 1:
			f := 2 + rng.Float64()*float64(n/4)
			for j := range row {
				row[j] = math.Sin(2*math.Pi*f*float64(j)/float64(n)) + 0.3*rng.NormFloat64()
			}
		default:
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
	}
	m.ZNormalizeAll()
	return m
}

const (
	goldenSeries    = 256
	goldenLength    = 48
	goldenDataSeed  = 1001
	goldenQuerySeed = 1002
	goldenQueries   = 8
	goldenK         = 5
)

func goldenQuerySet() *distance.Matrix {
	return goldenMatrix(goldenQuerySeed, goldenQueries, goldenLength)
}

// goldenFixtureSpec describes one checked-in container. Mutate applies the
// frozen mutation script before saving, so the fixture carries tombstones
// and remapped ids (v5+ only — earlier containers cannot express them).
type goldenFixtureSpec struct {
	File    string
	Version int
	Build   Config
	Mutate  bool
}

func goldenFixtureSpecs() []goldenFixtureSpec {
	return []goldenFixtureSpec{
		{File: "golden_v1.sofa", Version: 1, Build: Config{Method: MESSI, LeafCapacity: 16}},
		{File: "golden_v2.sofa", Version: 2, Build: Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, Shards: 2}},
		{File: "golden_v3.sofa", Version: 3, Build: Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, Shards: 2}},
		{File: "golden_v3_noblocks.sofa", Version: 3, Build: Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, NoLeafBlocks: true}},
		{File: "golden_v4.sofa", Version: 4, Build: Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, Shards: 2}},
		{File: "golden_v5.sofa", Version: 5, Build: Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, Shards: 2}},
		{File: "golden_v5_churn.sofa", Version: 5, Build: Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.25, Shards: 2}, Mutate: true},
	}
}

// goldenMutate is the frozen mutation script of the churned v5 fixture: a
// fixed interleave of inserts, deletes, and upserts. Like goldenMatrix it
// must never change — the checked-in answers were computed after exactly
// this history.
func goldenMutate(tb testing.TB, ix *Index) {
	tb.Helper()
	extra := goldenMatrix(1003, 12, goldenLength)
	for i := 0; i < 4; i++ {
		if _, err := ix.Insert(extra.Row(i)); err != nil {
			tb.Fatal(err)
		}
	}
	for _, id := range []int64{3, 17, 100, 101, 200, 257} {
		if err := ix.Delete(index.ID(id)); err != nil {
			tb.Fatal(err)
		}
	}
	for i, id := range []int64{5, 50, 150, 258} {
		if err := ix.Upsert(index.ID(id), extra.Row(4+i)); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 8; i < 12; i++ {
		if _, err := ix.Insert(extra.Row(i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := ix.Delete(index.ID(261)); err != nil {
		tb.Fatal(err)
	}
}

// goldenResult / goldenExpected mirror testdata/golden_expected.json.
type goldenResult struct {
	ID   int32   `json:"id"`
	Dist float64 `json:"dist"`
}

type goldenFixtureExpected struct {
	File    string           `json:"file"`
	Version int              `json:"version"`
	Method  string           `json:"method"`
	Shards  int              `json:"shards"`
	Results [][]goldenResult `json:"results"` // [query][rank]
}

type goldenExpected struct {
	Series   int                     `json:"series"`
	Length   int                     `json:"length"`
	Queries  int                     `json:"queries"`
	K        int                     `json:"k"`
	Fixtures []goldenFixtureExpected `json:"fixtures"`
}

// saveV1 writes the pre-shard container format: one global word buffer, no
// shard table. Only the fixture generator writes v1; Load keeps reading it.
func saveV1(ix *Index, path string) error {
	col := ix.col
	if col.Shards() != 1 {
		return fmt.Errorf("v1 containers are single-shard")
	}
	s := savedIndex{
		Version:      1,
		Method:       col.method,
		WordLength:   col.cfg.WordLength,
		Bits:         col.cfg.Bits,
		LeafCapacity: col.cfg.LeafCapacity,
		SeriesLen:    col.SeriesLen(),
		Count:        col.Len(),
		Words:        col.tree(0).Words(),
	}
	s.Data = make([]float32, col.Len()*col.SeriesLen())
	for g := 0; g < col.Len(); g++ {
		for j, v := range col.Row(g) {
			s.Data[g*col.SeriesLen()+j] = float32(v)
		}
	}
	if col.sfaQ != nil {
		st := col.sfaQ.State()
		s.SFA = &st
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// goldenAnswers runs the fixed query set against a loaded fixture.
func goldenAnswers(tb testing.TB, ix *Index) [][]goldenResult {
	tb.Helper()
	queries := goldenQuerySet()
	s := ix.NewSearcher()
	out := make([][]goldenResult, queries.Len())
	for qi := 0; qi < queries.Len(); qi++ {
		res, err := s.Search(queries.Row(qi), goldenK)
		if err != nil {
			tb.Fatal(err)
		}
		for _, r := range res {
			out[qi] = append(out[qi], goldenResult{ID: int32(r.ID), Dist: r.Dist})
		}
	}
	return out
}

func TestRegenPersistGolden(t *testing.T) {
	if !*regenGolden {
		t.Skip("pass -regen-golden to rewrite the golden fixtures")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	data := goldenMatrix(goldenDataSeed, goldenSeries, goldenLength)
	exp := goldenExpected{Series: goldenSeries, Length: goldenLength, Queries: goldenQueries, K: goldenK}
	for _, spec := range goldenFixtureSpecs() {
		cfg := spec.Build
		cfg.Seed = 1
		ix, err := Build(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Mutate {
			goldenMutate(t, ix)
		}
		path := filepath.Join("testdata", spec.File)
		switch spec.Version {
		case 1:
			if err := saveV1(ix, path); err != nil {
				t.Fatal(err)
			}
		default:
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := SaveVersion(ix, f, spec.Version); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		// Expected answers come from the loaded fixture, not the in-memory
		// build: loading is what CI replays, and the f32 round trip shifts
		// distances slightly.
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		exp.Fixtures = append(exp.Fixtures, goldenFixtureExpected{
			File:    spec.File,
			Version: spec.Version,
			Method:  loaded.Method().String(),
			Shards:  loaded.Shards(),
			Results: goldenAnswers(t, loaded),
		})
	}
	blob, err := json.MarshalIndent(exp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "golden_expected.json"), append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("golden fixtures regenerated; commit testdata/ and document the format change")
}

// TestPersistCompatGolden is the compatibility gate: every checked-in
// container version must keep loading and keep answering the fixed-seed
// queries exactly as recorded. It runs under both build variants (the
// persist-compat CI job repeats it with -tags noasm).
func TestPersistCompatGolden(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "golden_expected.json"))
	if err != nil {
		t.Fatalf("golden fixtures missing (regenerate with -regen-golden): %v", err)
	}
	var exp goldenExpected
	if err := json.Unmarshal(blob, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Series != goldenSeries || exp.Length != goldenLength || exp.Queries != goldenQueries || exp.K != goldenK {
		t.Fatalf("golden_expected.json header %+v does not match the frozen generator constants", exp)
	}
	if len(exp.Fixtures) != len(goldenFixtureSpecs()) {
		t.Fatalf("%d fixtures recorded, %d specified", len(exp.Fixtures), len(goldenFixtureSpecs()))
	}
	for _, fx := range exp.Fixtures {
		t.Run(fx.File, func(t *testing.T) {
			var st LoadStats
			f, err := os.Open(filepath.Join("testdata", fx.File))
			if err != nil {
				t.Fatalf("fixture unreadable: %v", err)
			}
			defer f.Close()
			ix, err := LoadWithStats(f, &st)
			if err != nil {
				t.Fatalf("format drift: %v", err)
			}
			if st.Version != fx.Version {
				t.Fatalf("loaded container version %d, recorded %d", st.Version, fx.Version)
			}
			if ix.Shards() != fx.Shards || ix.Method().String() != fx.Method {
				t.Fatalf("loaded %s/%d shards, recorded %s/%d", ix.Method(), ix.Shards(), fx.Method, fx.Shards)
			}
			// The version contract: v3 decodes its trees, earlier versions
			// re-split them.
			if fx.Version >= 3 && st.Splits != 0 {
				t.Errorf("v%d fixture load performed %d splits, want 0", fx.Version, st.Splits)
			}
			if fx.Version < 3 && st.Splits == 0 {
				t.Errorf("v%d fixture load performed no splits; rebuild path broken", fx.Version)
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("loaded fixture violates invariants: %v", err)
			}
			got := goldenAnswers(t, ix)
			for qi, want := range fx.Results {
				if len(got[qi]) != len(want) {
					t.Fatalf("query %d: %d results, recorded %d", qi, len(got[qi]), len(want))
				}
				for rank, w := range want {
					g := got[qi][rank]
					if g.ID != w.ID {
						t.Errorf("result drift: query %d rank %d id %d, recorded %d", qi, rank, g.ID, w.ID)
					}
					if math.Abs(g.Dist-w.Dist) > 1e-9*(math.Abs(w.Dist)+1) {
						t.Errorf("result drift: query %d rank %d dist %v, recorded %v", qi, rank, g.Dist, w.Dist)
					}
				}
			}
		})
	}
}
