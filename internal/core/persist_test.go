package core

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := mixedMatrix(rng, 500, 96)
	queries := mixedMatrix(rng, 15, 96)
	for _, method := range []Method{SOFA, MESSI} {
		orig, err := Build(data, Config{Method: method, LeafCapacity: 32, SampleRate: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(orig, &buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Method() != method || loaded.Len() != 500 || loaded.SeriesLen() != 96 {
			t.Fatalf("%v: loaded header mismatch", method)
		}
		// Tree structure is rebuilt deterministically.
		so, sl := orig.Stats(), loaded.Stats()
		if so.Subtrees != sl.Subtrees || so.Leaves != sl.Leaves {
			t.Errorf("%v: structure changed: %+v vs %+v", method, so, sl)
		}
		// Queries agree (tolerance: data round-trips through float32).
		os, ls := orig.NewSearcher(), loaded.NewSearcher()
		for qi := 0; qi < queries.Len(); qi++ {
			a, err := os.Search(queries.Row(qi), 5)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ls.Search(queries.Row(qi), 5)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if math.Abs(a[i].Dist-b[i].Dist) > 1e-4*(a[i].Dist+1) {
					t.Fatalf("%v query %d rank %d: %+v vs %+v", method, qi, i, a[i], b[i])
				}
			}
		}
		// Loaded index remains exact against its own (f32-rounded) data.
		r, err := ls.Search1(loaded.Row(3))
		if err != nil {
			t.Fatal(err)
		}
		if r.Dist > 1e-9 {
			t.Errorf("%v: self query on loaded index: %v", method, r.Dist)
		}
	}
}

// A sharded collection must survive the v2 container round-trip: shard
// count preserved, per-shard trees rebuilt (in parallel) from the per-shard
// word buffers, answers identical to the saved index.
func TestSaveLoadSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	data := mixedMatrix(rng, 600, 96)
	queries := mixedMatrix(rng, 10, 96)
	for _, method := range []Method{SOFA, MESSI} {
		orig, err := Build(data, Config{Method: method, LeafCapacity: 32, SampleRate: 0.2, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(orig, &buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Shards() != 4 {
			t.Fatalf("%v: loaded %d shards, want 4", method, loaded.Shards())
		}
		if loaded.Len() != 600 || loaded.SeriesLen() != 96 {
			t.Fatalf("%v: loaded header mismatch", method)
		}
		so, sl := orig.Stats(), loaded.Stats()
		if so.Subtrees != sl.Subtrees || so.Leaves != sl.Leaves {
			t.Errorf("%v: structure changed: %+v vs %+v", method, so, sl)
		}
		os, ls := orig.NewSearcher(), loaded.NewSearcher()
		for qi := 0; qi < queries.Len(); qi++ {
			a, err := os.Search(queries.Row(qi), 5)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ls.Search(queries.Row(qi), 5)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if math.Abs(a[i].Dist-b[i].Dist) > 1e-4*(a[i].Dist+1) {
					t.Fatalf("%v query %d rank %d: %+v vs %+v", method, qi, i, a[i], b[i])
				}
			}
		}
		// Global-id round trip: a loaded shard answers self-queries under the
		// original global ids.
		r, err := ls.Search1(loaded.Row(17))
		if err != nil {
			t.Fatal(err)
		}
		if int(r.ID) != 17 || r.Dist > 1e-9 {
			t.Errorf("%v: self query on loaded shard returned %+v", method, r)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	data := mixedMatrix(rng, 200, 64)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.sofa")
	if err := SaveFile(ix, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 200 {
		t.Errorf("loaded %d series", loaded.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadRejectsCorruptStreams(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("expected EOF error")
	}
	// A structurally valid gob with inconsistent lengths must be rejected.
	rng := rand.New(rand.NewSource(63))
	data := mixedMatrix(rng, 50, 32)
	ix, err := Build(data, Config{Method: MESSI, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	// Truncate: gob decode fails cleanly.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("expected truncation error")
	}
}
