package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestLoadV3DirectDecode pins the version-3 contract: loading a v3
// container performs zero leaf splits (direct shape decode), while the same
// index saved as v2 re-splits every shard tree — and both loads answer
// every query bit-identically, across shard counts and with leaf blocks
// disabled.
func TestLoadV3DirectDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := mixedMatrix(rng, 700, 96)
	queries := mixedMatrix(rng, 12, 96)
	for _, shards := range []int{1, 2, 8} {
		for _, noBlocks := range []bool{false, true} {
			orig, err := Build(data, Config{
				Method: SOFA, LeafCapacity: 32, SampleRate: 0.2,
				Shards: shards, NoLeafBlocks: noBlocks,
			})
			if err != nil {
				t.Fatal(err)
			}
			var v2buf, v3buf bytes.Buffer
			if err := SaveVersion(orig, &v2buf, 2); err != nil {
				t.Fatal(err)
			}
			if err := SaveVersion(orig, &v3buf, 3); err != nil {
				t.Fatal(err)
			}
			// v3 packs the series data as raw float32 bytes, which undercuts
			// gob's per-element float encoding by enough to pay for the tree
			// shapes; the container should not balloon.
			if v3buf.Len() > 2*v2buf.Len() {
				t.Errorf("S=%d noBlocks=%v: v3 container %d B vs v2 %d B", shards, noBlocks, v3buf.Len(), v2buf.Len())
			}

			var st2, st3 LoadStats
			l2, err := LoadWithStats(bytes.NewReader(v2buf.Bytes()), &st2)
			if err != nil {
				t.Fatal(err)
			}
			l3, err := LoadWithStats(bytes.NewReader(v3buf.Bytes()), &st3)
			if err != nil {
				t.Fatal(err)
			}
			if st2.Version != 2 || st3.Version != 3 {
				t.Fatalf("S=%d: stats versions %d/%d, want 2/3", shards, st2.Version, st3.Version)
			}
			if st3.Splits != 0 {
				t.Errorf("S=%d noBlocks=%v: v3 load performed %d splits, want 0", shards, noBlocks, st3.Splits)
			}
			if got := l3.Collection().SplitCount(); got != 0 {
				t.Errorf("S=%d noBlocks=%v: v3-loaded collection reports %d splits", shards, noBlocks, got)
			}
			if st2.Splits == 0 {
				t.Errorf("S=%d noBlocks=%v: v2 load reports zero splits; counter hook broken", shards, noBlocks)
			}
			if st3.Bytes != int64(v3buf.Len()) {
				t.Errorf("S=%d: stats read %d bytes of a %d-byte container", shards, st3.Bytes, v3buf.Len())
			}
			if err := l3.CheckInvariants(); err != nil {
				t.Fatalf("S=%d noBlocks=%v: v3-loaded invariants: %v", shards, noBlocks, err)
			}

			// Both loads see the identical f32-rounded data and identical tree
			// membership, so their answers must agree bit for bit.
			s2, s3 := l2.NewSearcher(), l3.NewSearcher()
			for qi := 0; qi < queries.Len(); qi++ {
				for _, k := range []int{1, 10} {
					a, err := s2.Search(queries.Row(qi), k)
					if err != nil {
						t.Fatal(err)
					}
					b, err := s3.Search(queries.Row(qi), k)
					if err != nil {
						t.Fatal(err)
					}
					if len(a) != len(b) {
						t.Fatalf("S=%d q=%d k=%d: %d vs %d results", shards, qi, k, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("S=%d noBlocks=%v q=%d k=%d rank %d: v2 %+v vs v3 %+v",
								shards, noBlocks, qi, k, i, a[i], b[i])
						}
					}
				}
			}

			// A v3-loaded index keeps accepting inserts and stays coherent.
			if _, err := l3.Insert(queries.Row(0)); err != nil {
				t.Fatal(err)
			}
			if err := l3.CheckInvariants(); err != nil {
				t.Errorf("S=%d noBlocks=%v: invariants after post-load insert: %v", shards, noBlocks, err)
			}
		}
	}
}

// TestLoadV3MatchesFreshBuild is the tentpole regression: a v3 round trip
// answers like the index it was saved from (S ∈ {1,4}, k ∈ {1,10}; data
// round-trips through float32, so distances carry the usual tolerance).
func TestLoadV3MatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	data := mixedMatrix(rng, 600, 96)
	queries := mixedMatrix(rng, 10, 96)
	for _, method := range []Method{SOFA, MESSI} {
		for _, shards := range []int{1, 4} {
			orig, err := Build(data, Config{Method: method, LeafCapacity: 32, SampleRate: 0.2, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Save(orig, &buf); err != nil {
				t.Fatal(err)
			}
			var st LoadStats
			loaded, err := LoadWithStats(&buf, &st)
			if err != nil {
				t.Fatal(err)
			}
			if st.Splits != 0 {
				t.Errorf("%v S=%d: v3 load split %d leaves", method, shards, st.Splits)
			}
			so, sl := orig.Stats(), loaded.Stats()
			if so != sl {
				t.Errorf("%v S=%d: structure changed across v3 round trip: %+v vs %+v", method, shards, so, sl)
			}
			os, ls := orig.NewSearcher(), loaded.NewSearcher()
			for qi := 0; qi < queries.Len(); qi++ {
				for _, k := range []int{1, 10} {
					a, err := os.Search(queries.Row(qi), k)
					if err != nil {
						t.Fatal(err)
					}
					b, err := ls.Search(queries.Row(qi), k)
					if err != nil {
						t.Fatal(err)
					}
					for i := range a {
						if math.Abs(a[i].Dist-b[i].Dist) > 1e-4*(a[i].Dist+1) {
							t.Fatalf("%v S=%d q=%d k=%d rank %d: %+v vs %+v", method, shards, qi, k, i, a[i], b[i])
						}
					}
				}
			}
		}
	}
}

// TestSaveLoadAfterFanoutGrowth saves an index whose collection grew across
// a root-fanout boundary via Insert after the original build: the v3
// container must still load (the shape carries the build-time fan-out) and
// answer exactly like the in-memory index.
func TestSaveLoadAfterFanoutGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	ix, err := Build(mixedMatrix(rng, 100, 64), Config{Method: MESSI, LeafCapacity: 16, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	extra := mixedMatrix(rng, 400, 64)
	for i := 0; i < extra.Len(); i++ {
		if _, err := ix.Insert(extra.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	var st LoadStats
	loaded, err := LoadWithStats(&buf, &st)
	if err != nil {
		t.Fatalf("loading post-insert v3 container: %v", err)
	}
	if st.Splits != 0 {
		t.Errorf("v3 load re-split %d leaves", st.Splits)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	a, err := ix.NewSearcher().Search(extra.Row(7), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.NewSearcher().Search(extra.Row(7), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-4*(a[i].Dist+1) {
			t.Fatalf("rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLoadV3DetectsPayloadBitFlips flips single bytes across a valid v3
// container: every flip must fail the load — gob framing catches structural
// damage, the CRC-32C payload checksum catches flips inside the data, word
// and shape buffers, which would otherwise load cleanly and silently change
// answers.
func TestLoadV3DetectsPayloadBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	ix, err := Build(mixedMatrix(rng, 120, 32), Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// A spread of offsets across the container, hitting header, data, words
	// and shape regions.
	for _, off := range []int{50, len(blob) / 4, len(blob) / 2, 3 * len(blob) / 4, len(blob) - 50} {
		flipped := append([]byte(nil), blob...)
		flipped[off] ^= 0x10
		if _, err := Load(bytes.NewReader(flipped)); err == nil {
			t.Errorf("bit flip at offset %d/%d loaded without error", off, len(blob))
		}
	}
	// The unflipped container still loads.
	if _, err := Load(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
}

// TestLoadStatsBytesWithTrailingData pins LoadStats.Bytes to the container
// size even when the reader carries more data after it (concatenated
// containers, network streams): bufio read-ahead must not be counted.
func TestLoadStatsBytesWithTrailingData(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	ix, err := Build(mixedMatrix(rng, 80, 32), Config{Method: MESSI, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	buf.WriteString("trailing payload beyond the container")
	var st LoadStats
	if _, err := LoadWithStats(bytes.NewReader(buf.Bytes()), &st); err != nil {
		t.Fatal(err)
	}
	if st.Bytes != int64(n) {
		t.Errorf("stats counted %d bytes for a %d-byte container with trailing data", st.Bytes, n)
	}
}

// TestSaveVersionValidation rejects unknown container versions at write
// time.
func TestSaveVersionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ix, err := Build(mixedMatrix(rng, 60, 32), Config{Method: MESSI, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 6} {
		if err := SaveVersion(ix, &bytes.Buffer{}, v); err == nil {
			t.Errorf("SaveVersion accepted version %d", v)
		}
	}
}
