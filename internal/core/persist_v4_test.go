package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// corruptShardPayload flips one byte inside shard i's word buffer within a
// saved container. Gob encodes byte slices as contiguous raw bytes, so the
// shard's words appear verbatim in the blob; flipping inside that run damages
// exactly one shard's payload (covered by its per-shard checksum, outside the
// v4 global checksum).
func corruptShardPayload(tb testing.TB, blob []byte, ix *Index, shard int) []byte {
	tb.Helper()
	words := ix.Collection().tree(shard).Words()
	off := bytes.Index(blob, words)
	if off < 0 {
		tb.Fatalf("shard %d word bytes not found in container", shard)
	}
	out := append([]byte(nil), blob...)
	out[off+len(words)/2] ^= 0x20
	return out
}

// TestLoadV4QuarantineCorruptShard is the degraded-load contract: a v4
// container with one corrupt shard payload fails to load by default, but
// loads as a degraded collection under QuarantineCorruptShards — the corrupt
// shard permanently quarantined, the healthy shards answering partial
// queries, and Save/Insert/Reinstate refusing the hole.
func TestLoadV4QuarantineCorruptShard(t *testing.T) {
	rng := rand.New(rand.NewSource(821))
	data := mixedMatrix(rng, 600, 64)
	queries := mixedMatrix(rng, 5, 64)
	const shards, k = 4, 5
	orig, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveVersion(orig, &buf, 4); err != nil {
		t.Fatal(err)
	}
	// The clean container is v4 and loads normally.
	var st LoadStats
	if _, err := LoadWithStats(bytes.NewReader(buf.Bytes()), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != 4 || st.Splits != 0 || st.QuarantinedShards != nil {
		t.Fatalf("clean v4 load stats %+v", st)
	}

	const bad = 1
	corrupted := corruptShardPayload(t, buf.Bytes(), orig, bad)

	// Default: the load fails, attributing the corruption.
	if _, err := Load(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupt shard payload loaded without error")
	}

	// Degraded mode: the healthy shards load, the corrupt one is quarantined.
	st = LoadStats{}
	ix, err := LoadWithOptions(bytes.NewReader(corrupted), LoadOptions{QuarantineCorruptShards: true}, &st)
	if err != nil {
		t.Fatalf("degraded load: %v", err)
	}
	if len(st.QuarantinedShards) != 1 || st.QuarantinedShards[0] != bad {
		t.Fatalf("stats quarantined %v, want [%d]", st.QuarantinedShards, bad)
	}
	col := ix.Collection()
	if got := col.Quarantined(); len(got) != 1 || got[0] != bad {
		t.Fatalf("Quarantined() = %v", got)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("degraded collection invariants: %v", err)
	}

	// Reference: the clean container with the same shard manually
	// quarantined. Both see identical f32-rounded data, so the degraded
	// load's partial answers must match bit for bit.
	refIx, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := refIx.Collection().Quarantine(bad); err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	refs := refIx.NewSearcher()
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.Row(qi)
		// Fail-fast still fails.
		if _, err := s.Search(q, k); !errors.Is(err, ErrShardQuarantined) {
			t.Fatalf("q=%d: fail-fast on degraded load: %v", qi, err)
		}
		// AllowPartial answers from the healthy shards only; a load-time
		// quarantined shard has no tree, so its degradation is unbounded.
		res, err := s.SearchPlan(context.Background(), q, Plan{K: k, AllowPartial: true}, nil)
		if err != nil {
			t.Fatalf("q=%d: partial query on degraded load: %v", qi, err)
		}
		if len(res) == 0 {
			t.Fatalf("q=%d: degraded load answered nothing", qi)
		}
		for _, r := range res {
			if int(r.ID)%shards == bad {
				t.Fatalf("q=%d: result id %d from the quarantined shard", qi, r.ID)
			}
		}
		m := s.LastMeta()
		if m.ShardsFailed != 1 || m.ShardsSearched != shards-1 || !math.IsInf(m.EpsilonBound, 1) {
			t.Fatalf("q=%d: degraded-load meta %+v (want 1 failed, +Inf ε)", qi, m)
		}
		// The surviving shards answer exactly as the clean load does with the
		// same shard quarantined.
		want, err := refs.SearchPlan(context.Background(), q, Plan{K: k, AllowPartial: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want) {
			t.Fatalf("q=%d: %d partial results, reference %d", qi, len(res), len(want))
		}
		for r := range res {
			if res[r] != want[r] {
				t.Fatalf("q=%d rank %d: degraded load %+v, reference %+v", qi, r, res[r], want[r])
			}
		}
	}

	// The degraded collection refuses to persist itself: a container written
	// without the quarantined shard would silently drop 1/S of the data.
	if err := Save(ix, &bytes.Buffer{}); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("Save of degraded collection: %v, want ErrShardQuarantined", err)
	}
	// Reinstate cannot resurrect a shard with no tree.
	if err := col.Reinstate(bad); err == nil {
		t.Fatal("Reinstate of a load-quarantined (treeless) shard succeeded")
	}
	// Inserts destined for the hole are refused; the mapping does not skip it.
	for tries := 0; tries < shards+1; tries++ {
		_, err := ix.Insert(data.Row(0))
		if err != nil {
			if !errors.Is(err, ErrShardQuarantined) {
				t.Fatalf("insert refusal: %v", err)
			}
			break
		}
		if tries == shards {
			t.Fatal("inserts never reached the quarantined shard")
		}
	}
}

// TestLoadV4AllCorruptFails: a container whose every shard is corrupt fails
// to load even in degraded mode — there is nothing to answer from.
func TestLoadV4AllCorruptFails(t *testing.T) {
	rng := rand.New(rand.NewSource(822))
	ix, err := Build(mixedMatrix(rng, 200, 32), Config{Method: MESSI, LeafCapacity: 16, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveVersion(ix, &buf, 4); err != nil {
		t.Fatal(err)
	}
	blob := corruptShardPayload(t, buf.Bytes(), ix, 0)
	blob = corruptShardPayload(t, blob, ix, 1)
	if _, err := LoadWithOptions(bytes.NewReader(blob), LoadOptions{QuarantineCorruptShards: true}, nil); err == nil {
		t.Fatal("all-corrupt container loaded in degraded mode")
	}
}

// TestLoadV4GlobalCorruptionStillFails: QuarantineCorruptShards only absorbs
// per-shard payload damage; corruption in the global region (header, SFA
// tables, series data) fails the load regardless.
func TestLoadV4GlobalCorruptionStillFails(t *testing.T) {
	rng := rand.New(rand.NewSource(823))
	ix, err := Build(mixedMatrix(rng, 200, 32), Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveVersion(ix, &buf, 4); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// The series data region: locate a run of the f32-encoded data bytes.
	// Flipping there breaks the global checksum, not a shard checksum.
	sawFailure := false
	for _, off := range []int{64, 96, 128} {
		flipped := append([]byte(nil), blob...)
		flipped[off] ^= 0x08
		if _, err := LoadWithOptions(bytes.NewReader(flipped), LoadOptions{QuarantineCorruptShards: true}, nil); err != nil {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("early-container corruption never failed a degraded-mode load")
	}
}
