package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// SearchPlan with a pre-cancelled context must return before seeding any
// shard. The proof uses the work counters: they are reset only when a shard
// query begins, so after a cancelled call they still hold the previous
// query's values.
func TestSearchPlanPreCancelledRunsNoShardWork(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := mixedMatrix(rng, 400, 32)
	col, err := BuildCollection(m, Config{Method: SOFA, SampleRate: 0.2, LeafCapacity: 32, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := col.NewSearcher()
	query := make([]float64, 32)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	if _, err := s.SearchPlan(context.Background(), query, Plan{K: 3}, nil); err != nil {
		t.Fatal(err)
	}
	before := s.LastStats()
	if before.SeriesED == 0 {
		t.Fatal("fixture query did no work; the counter comparison below would be vacuous")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SearchPlan(ctx, query, Plan{K: 3}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if after := s.LastStats(); after != before {
		t.Errorf("cancelled SearchPlan ran shard work: counters %+v -> %+v", before, after)
	}
}

// An already-expired plan deadline behaves like a cancelled context, with
// context.DeadlineExceeded as the error.
func TestSearchPlanExpiredDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	m := mixedMatrix(rng, 200, 32)
	col, err := BuildCollection(m, Config{Method: SOFA, SampleRate: 0.2, LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := col.NewSearcher()
	p := Plan{K: 1, Deadline: time.Now().Add(-time.Minute)}
	if _, err := s.SearchPlan(context.Background(), m.Row(0), p, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// SearchPlan is the unified path: its exact answers must be identical to
// the legacy Search wrapper, and plan validation must reject bad k and
// epsilon.
func TestSearchPlanMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	m := mixedMatrix(rng, 500, 32)
	for _, shards := range []int{1, 3} {
		col, err := BuildCollection(m, Config{Method: SOFA, SampleRate: 0.2, LeafCapacity: 32, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		s := col.NewSearcher()
		for qi := 0; qi < 5; qi++ {
			query := make([]float64, 32)
			for j := range query {
				query[j] = rng.NormFloat64()
			}
			want, err := s.Search(query, 4)
			if err != nil {
				t.Fatal(err)
			}
			wantCopy := append([]Result(nil), want...)
			got, err := s.SearchPlan(context.Background(), query, Plan{K: 4}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(wantCopy) {
				t.Fatalf("shards=%d: %d results, want %d", shards, len(got), len(wantCopy))
			}
			for i := range wantCopy {
				if got[i] != wantCopy[i] {
					t.Fatalf("shards=%d rank %d: %v != %v", shards, i, got[i], wantCopy[i])
				}
			}
		}
		if _, err := s.SearchPlan(context.Background(), m.Row(0), Plan{K: 0}, nil); err == nil {
			t.Error("k=0 plan accepted")
		}
		if _, err := s.SearchPlan(context.Background(), m.Row(0), Plan{K: 1, Epsilon: -1}, nil); err == nil {
			t.Error("negative epsilon plan accepted")
		}
	}
}

// The stream must shed queued work whose deadline expired and honor
// per-query plans (mixed k in flight).
func TestStreamSubmitPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	m := mixedMatrix(rng, 400, 32)
	col, err := BuildCollection(m, Config{Method: SOFA, SampleRate: 0.2, LeafCapacity: 32, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	type answer struct {
		n   int
		err error
	}
	var mu sync.Mutex
	got := map[uint64]answer{}
	st, err := col.NewStream(1, 2, func(qid uint64, res []Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		got[qid] = answer{n: len(res), err: err}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]int{}
	for i := 0; i < 20; i++ {
		k := 2 + i%4
		qid, err := st.SubmitPlan(m.Row(i), Plan{K: k})
		if err != nil {
			t.Fatal(err)
		}
		want[qid] = k
	}
	expired, err := st.SubmitPlan(m.Row(0), Plan{K: 5, Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for qid, k := range want {
		if got[qid].err != nil || got[qid].n != k {
			t.Errorf("qid %d: got (%d, %v), want %d results", qid, got[qid].n, got[qid].err, k)
		}
	}
	if !errors.Is(got[expired].err, context.DeadlineExceeded) {
		t.Errorf("expired query: got %v, want context.DeadlineExceeded", got[expired].err)
	}
	if _, err := st.SubmitPlan(m.Row(0), Plan{K: 0}); err == nil {
		t.Error("k=0 SubmitPlan accepted")
	}
	if _, err := st.Submit(m.Row(0)); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("submit after close: got %v, want ErrStreamClosed", err)
	}
}
