package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/index"
)

// Store is the crash-safe durability layer over an Index: a directory
// holding one atomic checkpoint (the container) plus a write-ahead log of
// every mutation — Insert, Delete, Upsert — since that checkpoint. The
// invariant is that at every instant — including mid-crash — the directory
// holds exactly one valid (container, WAL-suffix) pair:
//
//   - the container is only ever replaced by atomic rename (SaveFile), so it
//     is always a complete checkpoint of some prefix of the mutation
//     history;
//   - each WAL record carries the mutation sequence number it was applied
//     under, so a log that overlaps the checkpoint (a crash landed between
//     the checkpoint's rename and the WAL truncation) replays idempotently —
//     records the checkpoint already covers are skipped by sequence number.
//
// Recovery (Recover) therefore needs no ordering metadata beyond what the
// files themselves carry. Like the mutation API itself, a Store's write
// methods are single-writer: not safe for concurrent use with each other
// (searches against Index() follow the Collection's usual read contract).
type Store struct {
	dir   string
	ix    *Index
	wal   *WAL
	cfg   DurableConfig
	stats RecoveryStats
}

// DurableConfig configures a Store's write-ahead log.
type DurableConfig struct {
	// Sync is the WAL sync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the maximum fsync spacing under the SyncInterval
	// policy (default 100ms; ignored otherwise).
	SyncInterval time.Duration
	// StrictWAL makes Recover fail on a torn or corrupt WAL tail instead of
	// recovering the valid prefix and discarding the rest. The default
	// (false) matches crash reality: a torn tail is the expected residue of
	// a crash mid-append, not an anomaly worth refusing the whole index
	// over; what was discarded is reported in RecoveryStats.
	StrictWAL bool
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	return c
}

// RecoveryStats reports what Recover found and did.
type RecoveryStats struct {
	// CheckpointVersion is the container format version of the loaded
	// checkpoint (see persist.go's version history).
	CheckpointVersion int
	// CheckpointLen is the number of series the checkpoint held.
	CheckpointLen int
	// Replayed is the number of WAL records re-applied through the mutation
	// API (Insert, Delete, Upsert).
	Replayed int
	// MigratedWAL reports that the log was a version-1 (insert-only) file:
	// after replay the store checkpointed and replaced it with a fresh
	// version-2 log.
	MigratedWAL bool
	// Skipped is the number of valid WAL records already covered by the
	// checkpoint (non-zero when a crash landed between a checkpoint's
	// publication and its WAL truncation).
	Skipped int
	// DiscardedBytes is the size of the invalid WAL tail that was cut off
	// (zero for a clean log).
	DiscardedBytes int64
	// TailError classifies why the tail was discarded: it wraps
	// ErrRecoveryTruncated for a torn record (the residue of a crash
	// mid-append) or ErrWALCorrupt for bytes that fail validation, and is
	// nil when the whole log was valid. Under DurableConfig.StrictWAL this
	// error fails Recover instead.
	TailError error
}

const (
	containerFileName = "container.sofa"
	walFileName       = "wal.log"
)

// ContainerPath returns the checkpoint container's path inside dir.
func ContainerPath(dir string) string { return filepath.Join(dir, containerFileName) }

// WALPath returns the write-ahead log's path inside dir.
func WALPath(dir string) string { return filepath.Join(dir, walFileName) }

// CreateStore initializes dir as a durability directory for ix: an initial
// checkpoint is published and an empty WAL created. dir is created if
// missing; an existing container in dir is an error (use Recover to open an
// existing store — refusing here prevents two writers from silently
// clobbering one directory).
func CreateStore(dir string, ix *Index, cfg DurableConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(ContainerPath(dir)); err == nil {
		return nil, fmt.Errorf("core: durable store already exists in %s (use Recover)", dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if err := SaveFile(ix, ContainerPath(dir)); err != nil {
		return nil, err
	}
	w, err := createWAL(WALPath(dir), ix.SeriesLen(), ix.col.MutSeq(), cfg.Sync, cfg.SyncInterval)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir: dir, ix: ix, wal: w, cfg: cfg,
		stats: RecoveryStats{CheckpointVersion: savedIndexVersion, CheckpointLen: ix.Len()},
	}, nil
}

// Recover opens the durability directory at dir: it loads the checkpoint
// container, replays the WAL suffix through the ordinary Insert path, and
// returns a Store ready for further inserts. A torn or corrupt WAL tail is
// cut off and the valid prefix recovered (never a panic, never a wrong id)
// unless cfg.StrictWAL is set; RecoveryStats on the returned Store reports
// exactly what was replayed, skipped, and discarded.
func Recover(dir string, cfg DurableConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	var lst LoadStats
	f, err := os.Open(ContainerPath(dir))
	if err != nil {
		return nil, fmt.Errorf("core: recover %s: %w", dir, err)
	}
	ix, err := LoadWithStats(f, &lst)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("core: recover %s: %w", dir, err)
	}
	st := &Store{
		dir: dir, ix: ix, cfg: cfg,
		stats: RecoveryStats{CheckpointVersion: lst.Version, CheckpointLen: ix.Len()},
	}
	if err := st.recoverWAL(); err != nil {
		return nil, err
	}
	return st, nil
}

// recoverWAL replays and then reopens dir's write-ahead log for appending,
// filling st.stats. A missing WAL (a crash between the initial checkpoint
// and the log's creation) and a log whose header is unusable are both
// replaced by a fresh empty log — in the latter case only after classifying
// and counting the discarded bytes. A version-1 (insert-only) log is
// replayed under its own sequence semantics and then migrated: the recovered
// index is checkpointed and the old log replaced by a fresh version-2 one.
func (st *Store) recoverWAL() error {
	path := WALPath(st.dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return st.freshWAL()
	}
	if err != nil {
		return fmt.Errorf("core: recover %s: %w", st.dir, err)
	}
	col := st.ix.col
	// v2 records are sequenced by the collection's mutation counter; v1
	// records (insert-only) by the assigned global id, which for the
	// append-only histories v1 containers hold equals the collection length.
	have := col.MutSeq()
	haveLen := uint64(st.ix.Len())
	var prev uint64
	seen := false
	version, validEnd, tailErr, err := scanWAL(f, st.ix.SeriesLen(), func(e walEntry) error {
		if seen && e.seq != prev+1 {
			return fmt.Errorf("core: wal record seq %d after %d (want %d): %w",
				e.seq, prev, prev+1, ErrWALCorrupt)
		}
		seen, prev = true, e.seq
		if e.version == 1 {
			switch {
			case e.seq < haveLen:
				st.stats.Skipped++
				return nil
			case e.seq > haveLen:
				return fmt.Errorf("core: wal record seq %d skips ahead of index length %d: %w",
					e.seq, haveLen, ErrWALCorrupt)
			}
			id, err := st.ix.Insert(e.series)
			if err != nil {
				return fmt.Errorf("core: wal replay of record seq %d: %w", e.seq, err)
			}
			if uint64(id) != e.seq {
				// v1 ids are structural (collection length), so a mismatch
				// means the log and container disagree about history.
				return fmt.Errorf("core: wal replay: record seq %d inserted as id %d: %w",
					e.seq, id, ErrWALCorrupt)
			}
			st.stats.Replayed++
			haveLen++
			return nil
		}
		switch {
		case e.seq < have:
			// Already covered by the checkpoint: a crash landed between the
			// checkpoint's rename and the WAL truncation. Idempotent skip.
			st.stats.Skipped++
			return nil
		case e.seq > have:
			return fmt.Errorf("core: wal record seq %d skips ahead of mutation seq %d: %w",
				e.seq, have, ErrWALCorrupt)
		}
		switch e.op {
		case walOpInsert:
			id, err := st.ix.Insert(e.series)
			if err != nil {
				return fmt.Errorf("core: wal replay of insert seq %d: %w", e.seq, err)
			}
			if uint64(id) != e.id {
				// Public ids are assigned sequentially, so a mismatch means
				// the log and container disagree about history.
				return fmt.Errorf("core: wal replay: insert seq %d assigned id %d, record says %d: %w",
					e.seq, id, e.id, ErrWALCorrupt)
			}
		case walOpDelete:
			if err := st.ix.Delete(index.ID(e.id)); err != nil {
				return fmt.Errorf("core: wal replay of delete seq %d (id %d): %v: %w",
					e.seq, e.id, err, ErrWALCorrupt)
			}
		case walOpUpsert:
			if err := st.ix.Upsert(index.ID(e.id), e.series); err != nil {
				return fmt.Errorf("core: wal replay of upsert seq %d (id %d): %v: %w",
					e.seq, e.id, err, ErrWALCorrupt)
			}
		}
		st.stats.Replayed++
		have++
		return nil
	})
	if err != nil {
		f.Close()
		return fmt.Errorf("core: recover %s: %w", st.dir, err)
	}
	if tailErr != nil {
		info, serr := f.Stat()
		if serr != nil {
			f.Close()
			return fmt.Errorf("core: recover %s: %w", st.dir, serr)
		}
		st.stats.DiscardedBytes = info.Size() - validEnd
		st.stats.TailError = tailErr
		if st.cfg.StrictWAL {
			f.Close()
			return fmt.Errorf("core: recover %s: strict: %w", st.dir, tailErr)
		}
		if validEnd < walHeaderSize {
			// Not even the header is usable — replace the whole file.
			f.Close()
			return st.freshWAL()
		}
	}
	if version == 1 {
		// Migrate: the replayed state becomes the new checkpoint and the v1
		// log is retired for a fresh v2 one. A crash mid-migration leaves
		// either the old pair (before the rename) or the new checkpoint with
		// a stale-but-skippable v1 log.
		f.Close()
		if err := SaveFile(st.ix, ContainerPath(st.dir)); err != nil {
			return fmt.Errorf("core: recover %s: migrating v1 wal: %w", st.dir, err)
		}
		st.stats.MigratedWAL = true
		return st.freshWAL()
	}
	if tailErr != nil {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return fmt.Errorf("core: recover %s: %w", st.dir, err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("core: recover %s: %w", st.dir, err)
	}
	st.wal = &WAL{
		f: f, path: path, seriesLen: st.ix.SeriesLen(), next: col.MutSeq(),
		size: validEnd, policy: st.cfg.Sync, interval: st.cfg.SyncInterval,
		lastSync: time.Now(), dirty: st.stats.TailError != nil,
	}
	return nil
}

// freshWAL replaces the store's log with a new empty one.
func (st *Store) freshWAL() error {
	w, err := createWAL(WALPath(st.dir), st.ix.SeriesLen(), st.ix.col.MutSeq(), st.cfg.Sync, st.cfg.SyncInterval)
	if err != nil {
		return fmt.Errorf("core: recover %s: %w", st.dir, err)
	}
	st.wal = w
	return nil
}

// Index returns the underlying index for searches. The usual read contract
// applies: searches and Store writes must not run concurrently.
func (st *Store) Index() *Index { return st.ix }

// RecoveryStats reports what the Recover (or CreateStore) that produced this
// store found and did.
func (st *Store) RecoveryStats() RecoveryStats { return st.stats }

// WALSize returns the write-ahead log's current size in bytes (header
// included) — a checkpoint-scheduling signal for callers.
func (st *Store) WALSize() int64 { return st.wal.Size() }

// Insert durably adds one series: the raw series is appended to the WAL
// (synced per the configured policy) before it is applied to the index, so
// an acknowledged insert survives a crash. Returns the assigned public id.
// A failed append or sync wedges the log — the file's tail state is unknown,
// so every later write refuses with the original failure; Close and Recover
// to resume (recovery truncates whatever the failure left behind).
func (st *Store) Insert(series []float64) (index.ID, error) {
	// Preflight the shard gate so a doomed insert (quarantined target shard)
	// is refused before it reaches the log — otherwise the WAL would hold a
	// record recovery replays into an index that rejected it.
	c := st.ix.col
	if err := c.insertGate(); err != nil {
		return 0, err
	}
	prevSize, prevNext := st.wal.size, st.wal.next
	if err := st.wal.AppendInsert(uint64(c.nextPubID()), series); err != nil {
		return 0, err
	}
	id, err := st.ix.Insert(series)
	if err != nil {
		return 0, st.rollback(err, prevSize, prevNext)
	}
	return id, nil
}

// Delete durably tombstones the series with the given public id: the delete
// record is appended to the WAL before the tombstone is applied, so an
// acknowledged delete survives a crash. See Collection.Delete for the
// mutation semantics (ErrNotFound, ErrTombstoned, id retirement).
func (st *Store) Delete(id index.ID) error {
	if err := st.ix.col.mutationGate(id); err != nil {
		return err
	}
	prevSize, prevNext := st.wal.size, st.wal.next
	if err := st.wal.AppendDelete(uint64(id)); err != nil {
		return err
	}
	if err := st.ix.Delete(id); err != nil {
		return st.rollback(err, prevSize, prevNext)
	}
	return nil
}

// Upsert durably replaces the series stored under id, keeping the id
// stable: the upsert record is appended to the WAL before the replacement
// is applied. See Collection.Upsert for the mutation semantics.
func (st *Store) Upsert(id index.ID, series []float64) error {
	c := st.ix.col
	if err := c.mutationGate(id); err != nil {
		return err
	}
	if err := c.insertGate(); err != nil {
		return err
	}
	prevSize, prevNext := st.wal.size, st.wal.next
	if err := st.wal.AppendUpsert(uint64(id), series); err != nil {
		return err
	}
	if err := st.ix.Upsert(id, series); err != nil {
		return st.rollback(err, prevSize, prevNext)
	}
	return nil
}

// rollback undoes a logged-but-unapplied record: the in-memory mutation
// failed after its record reached the WAL, so the log is rolled back to the
// prior acknowledged size — otherwise recovery would replay a mutation the
// running index never acknowledged. A rollback failure leaves the WAL ahead
// of the index; both errors surface and the caller must treat the store as
// wedged.
func (st *Store) rollback(err error, prevSize int64, prevNext uint64) error {
	if rerr := st.wal.truncateTo(prevSize, prevNext); rerr != nil {
		return errors.Join(err, rerr)
	}
	return err
}

// Sync forces the WAL to stable storage regardless of the sync policy — the
// durability barrier for SyncInterval/SyncNone callers.
func (st *Store) Sync() error { return st.wal.Sync() }

// Checkpoint publishes the current index as the new container (atomic
// rename) and truncates the WAL to empty. A crash anywhere inside leaves a
// recoverable directory: before the rename the old (container, WAL) pair is
// untouched; between the rename and the truncation the WAL's records are all
// covered by the new checkpoint and skip on replay.
func (st *Store) Checkpoint() error {
	if err := SaveFile(st.ix, ContainerPath(st.dir)); err != nil {
		return err
	}
	if err := st.wal.truncateTo(walHeaderSize, st.ix.col.MutSeq()); err != nil {
		return err
	}
	return st.wal.Sync()
}

// Close syncs outstanding WAL records and releases the store's file handle.
// It does not checkpoint; reopening replays the log.
func (st *Store) Close() error { return st.wal.Close() }
