package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/index"
)

// ErrStreamClosed is returned by Submit variants after Close. It is a
// sentinel so layered APIs (the public sofa package) can translate it with
// errors.Is instead of string matching.
var ErrStreamClosed = errors.New("core: stream is closed")

// Stream is the sustained-traffic query engine: a fixed pool of worker
// goroutines, each owning a pooled serial searcher, consuming queries from a
// bounded channel and delivering answers through a result callback. Unlike
// SearchBatch — which rebuilds its fan-out and output scaffolding per call —
// a Stream is created once and re-used for the life of the workload: the
// goroutines, searchers, query buffers and result buffers all persist, so
// steady-state traffic performs no per-query setup allocations.
//
// Every submission carries its own Plan (SubmitPlan), so in-flight queries
// may mix k values, approximation modes and deadlines; Submit is the
// fixed-k convenience over the stream's default k. A query whose deadline
// has passed by the time a worker picks it up (or between its shard stages)
// is answered with context.DeadlineExceeded instead of doing the work.
//
// Lifecycle: NewStream starts the workers; Submit/SubmitPlan enqueue queries
// (blocking for backpressure when the channel is full); Close drains
// in-flight queries and stops the workers. Submitting is safe from many
// goroutines at once.
type Stream struct {
	c      *Collection
	k      int
	handle func(qid uint64, res []index.Result, err error)

	jobs chan streamJob
	wg   sync.WaitGroup

	// bufs pools query copies so Submit's handoff to the workers is
	// allocation-free in steady state.
	bufs sync.Pool

	nextID atomic.Uint64

	// watchdog bounds how long a Submit may wait on a full channel before
	// concluding the workers are stuck (nanoseconds; 0 blocks forever). See
	// SetWatchdog.
	watchdog atomic.Int64

	// mu guards the closed transition: Submit holds it shared while sending
	// so Close cannot close the channel under an in-flight send.
	mu     sync.RWMutex
	closed bool
}

// defaultWatchdog is the submit-side stall deadline streams start with:
// long enough that no healthy query path ever trips it, short enough that a
// deadlocked worker pool surfaces as ErrStreamStalled rather than a hung
// submitter.
const defaultWatchdog = 30 * time.Second

// SetWatchdog sets how long Submit/SubmitPlan may wait for a worker to
// accept a query once the bounded channel is full before failing with
// ErrStreamStalled. d = 0 disables the watchdog (block indefinitely — the
// pre-fault-isolation behaviour). Safe to call concurrently with submits;
// in-flight waits keep the deadline they started with.
func (st *Stream) SetWatchdog(d time.Duration) {
	if d < 0 {
		d = 0
	}
	st.watchdog.Store(int64(d))
}

// streamJob is one enqueued query: the id returned by Submit, a pooled copy
// of the query values, and the query's execution plan. The pool pointer
// itself travels in the job so the worker returns the identical cell —
// re-boxing the slice header on either side would allocate per query.
type streamJob struct {
	id   uint64
	q    *[]float64
	plan Plan
}

// NewStream starts a streaming query engine over the collection. Every
// submitted query is answered by one of `workers` persistent worker
// goroutines (workers <= 0 selects GOMAXPROCS); the bounded submit channel
// holds up to two queries per worker, so submitters are backpressured
// instead of queueing unboundedly. k is the default plan for Submit;
// SubmitPlan overrides it per query.
//
// handle is invoked once per submitted query, possibly concurrently from
// different workers and in completion (not submission) order. The res slice
// is owned by the worker and reused for its next query: it is valid only
// for the duration of the callback — copy it to retain. Callbacks must not
// call Submit or Close on the same stream (Submit may block on a full
// channel that only the callback's worker can drain).
func (c *Collection) NewStream(k, workers int, handle func(qid uint64, res []index.Result, err error)) (*Stream, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if handle == nil {
		return nil, fmt.Errorf("core: stream handler must not be nil")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := &Stream{
		c:      c,
		k:      k,
		handle: handle,
		jobs:   make(chan streamJob, 2*workers),
	}
	st.watchdog.Store(int64(defaultWatchdog))
	st.bufs.New = func() any {
		buf := make([]float64, c.stride)
		return &buf
	}
	st.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go st.worker()
	}
	return st, nil
}

// worker consumes queries until the stream closes, answering each on a
// pooled serial searcher shared with SearchBatch. Results are appended into
// the searcher's own buffer, so the callback-scoped slice costs no per-query
// allocation in steady state.
func (st *Stream) worker() {
	defer st.wg.Done()
	s := st.c.serialSearcher()
	// Deferred closure rather than a direct Put: answer replaces s after a
	// recovered panic, and the pool must receive the replacement, never the
	// searcher whose scratch the panic corrupted.
	defer func() { st.c.searchers.Put(s) }()
	for job := range st.jobs {
		res, err := st.answer(&s, job)
		st.handle(job.id, res, err)
		st.bufs.Put(job.q)
	}
}

// answer executes one stream job with panic containment: shard-level faults
// are already absorbed inside SearchPlan, and anything that still escapes —
// a fault outside any shard stage — is converted to a *PanicError delivered
// through the stream's normal error callback, with the worker's searcher
// respawned fresh. The worker itself never dies: a panicking query costs
// that query, not the stream. Panics in the user's handle callback are
// outside this contract and remain fatal (they are caller bugs, and
// swallowing them would hide them).
func (st *Stream) answer(s **Searcher, job streamJob) (res []index.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Shard: -1, Value: r, Stack: debug.Stack()}
			*s = st.c.newSerialSearcher()
		}
	}()
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteStreamWorker); err != nil {
			return nil, err
		}
	}
	sr := *s
	res, err = sr.SearchPlan(context.Background(), *job.q, job.plan, sr.resBuf[:0])
	if err == nil {
		sr.resBuf = res
	}
	return res, err
}

// Submit enqueues one query under the stream's default k. The query is
// copied before Submit returns, so the caller may reuse its slice
// immediately. Submit blocks while the bounded channel is full — that
// backpressure is the flow control of the engine.
func (st *Stream) Submit(query []float64) (uint64, error) {
	return st.SubmitPlan(query, Plan{K: st.k})
}

// SubmitPlan enqueues one query with its own execution plan (k, epsilon or
// approximate mode, deadline), returning the id later passed to the handler.
// Like Submit, the query values are copied before SubmitPlan returns and
// the call blocks for backpressure while the bounded channel is full.
func (st *Stream) SubmitPlan(query []float64, p Plan) (uint64, error) {
	if len(query) != st.c.stride {
		return 0, fmt.Errorf("core: query length %d, want %d", len(query), st.c.stride)
	}
	if p.K < 1 {
		return 0, fmt.Errorf("core: k must be >= 1, got %d", p.K)
	}
	if p.Epsilon < 0 {
		return 0, fmt.Errorf("core: epsilon must be >= 0, got %v", p.Epsilon)
	}
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteStreamSubmit); err != nil {
			return 0, err
		}
	}
	buf := st.bufs.Get().(*[]float64)
	copy(*buf, query)
	id := st.nextID.Add(1) - 1

	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		st.bufs.Put(buf)
		return 0, ErrStreamClosed
	}
	job := streamJob{id: id, q: buf, plan: p}
	// Fast path: channel has room — no timer, no allocations, nothing new on
	// the steady-state submit path.
	select {
	case st.jobs <- job:
		return id, nil
	default:
	}
	wd := time.Duration(st.watchdog.Load())
	if wd == 0 {
		st.jobs <- job
		return id, nil
	}
	// Slow path: the channel is full, meaning every worker is busy and the
	// backlog is at capacity. Healthy backpressure clears in the time of one
	// query; a stalled worker pool (hung shard, livelocked callback) never
	// clears, and without a deadline the stall would propagate to the
	// submitter. The timer costs an allocation only on this path.
	timer := time.NewTimer(wd)
	defer timer.Stop()
	select {
	case st.jobs <- job:
		return id, nil
	case <-timer.C:
		st.bufs.Put(buf)
		return 0, ErrStreamStalled
	}
}

// Close stops accepting submissions, waits for every in-flight query's
// callback to complete, and releases the workers. Close is idempotent;
// Submit calls racing with Close either enqueue (and are answered) or
// return ErrStreamClosed.
func (st *Stream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	close(st.jobs)
	st.mu.Unlock()
	st.wg.Wait()
}
