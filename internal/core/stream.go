package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// Stream is the sustained-traffic query engine: a fixed pool of worker
// goroutines, each owning a pooled serial searcher, consuming queries from a
// bounded channel and delivering answers through a result callback. Unlike
// SearchBatch — which rebuilds its fan-out and output scaffolding per call —
// a Stream is created once and re-used for the life of the workload: the
// goroutines, searchers, query buffers and result buffers all persist, so
// steady-state traffic performs no per-query setup allocations.
//
// Lifecycle: NewStream starts the workers; Submit enqueues queries (blocking
// for backpressure when the channel is full); Close drains in-flight queries
// and stops the workers. Submitting is safe from many goroutines at once.
type Stream struct {
	c      *Collection
	k      int
	handle func(qid uint64, res []index.Result, err error)

	jobs chan streamJob
	wg   sync.WaitGroup

	// bufs pools query copies so Submit's handoff to the workers is
	// allocation-free in steady state.
	bufs sync.Pool

	nextID atomic.Uint64

	// mu guards the closed transition: Submit holds it shared while sending
	// so Close cannot close the channel under an in-flight send.
	mu     sync.RWMutex
	closed bool
}

// streamJob is one enqueued query: the id returned by Submit plus a pooled
// copy of the query values. The pool pointer itself travels in the job so
// the worker returns the identical cell — re-boxing the slice header on
// either side would allocate per query.
type streamJob struct {
	id uint64
	q  *[]float64
}

// NewStream starts a streaming query engine over the collection. Every
// submitted query is answered with its exact k nearest neighbors by one of
// `workers` persistent worker goroutines (workers <= 0 selects GOMAXPROCS);
// the bounded submit channel holds up to two queries per worker, so
// submitters are backpressured instead of queueing unboundedly.
//
// handle is invoked once per submitted query, possibly concurrently from
// different workers and in completion (not submission) order. The res slice
// is owned by the worker and reused for its next query: it is valid only
// for the duration of the callback — copy it to retain. Callbacks must not
// call Submit or Close on the same stream (Submit may block on a full
// channel that only the callback's worker can drain).
func (c *Collection) NewStream(k, workers int, handle func(qid uint64, res []index.Result, err error)) (*Stream, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if handle == nil {
		return nil, fmt.Errorf("core: stream handler must not be nil")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := &Stream{
		c:      c,
		k:      k,
		handle: handle,
		jobs:   make(chan streamJob, 2*workers),
	}
	st.bufs.New = func() any {
		buf := make([]float64, c.stride)
		return &buf
	}
	st.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go st.worker()
	}
	return st, nil
}

// worker consumes queries until the stream closes, answering each on a
// pooled serial searcher shared with SearchBatch.
func (st *Stream) worker() {
	defer st.wg.Done()
	s := st.c.serialSearcher()
	defer st.c.searchers.Put(s)
	for job := range st.jobs {
		res, err := s.Search(*job.q, st.k)
		st.handle(job.id, res, err)
		st.bufs.Put(job.q)
	}
}

// Submit enqueues one query and returns its id (the value later passed to
// the handler). The query is copied before Submit returns, so the caller may
// reuse its slice immediately. Submit blocks while the bounded channel is
// full — that backpressure is the flow control of the engine.
func (st *Stream) Submit(query []float64) (uint64, error) {
	if len(query) != st.c.stride {
		return 0, fmt.Errorf("core: query length %d, want %d", len(query), st.c.stride)
	}
	buf := st.bufs.Get().(*[]float64)
	copy(*buf, query)
	id := st.nextID.Add(1) - 1

	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		st.bufs.Put(buf)
		return 0, fmt.Errorf("core: Submit on a closed Stream")
	}
	st.jobs <- streamJob{id: id, q: buf}
	return id, nil
}

// Close stops accepting submissions, waits for every in-flight query's
// callback to complete, and releases the workers. Close is idempotent;
// Submit calls racing with Close either enqueue (and are answered) or
// return an error.
func (st *Stream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	close(st.jobs)
	st.mu.Unlock()
	st.wg.Wait()
}
