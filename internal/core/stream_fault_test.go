package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Stream lifecycle under adversarial timing (run with -race in CI): Close
// racing Submit, concurrent double Close, and the submit-side watchdog that
// turns a stalled worker pool into ErrStreamStalled instead of a hung
// submitter.

// TestStreamCloseSubmitRace races many submitters against Close: every
// Submit must either enqueue (and be answered exactly once) or fail with
// ErrStreamClosed — no lost queries, no double answers, no panics — and
// concurrent Close calls are idempotent.
func TestStreamCloseSubmitRace(t *testing.T) {
	rng := rand.New(rand.NewSource(861))
	data := mixedMatrix(rng, 300, 32)
	ix, err := Build(data, Config{Method: MESSI, LeafCapacity: 16, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		var answered atomic.Int64
		var mu sync.Mutex
		seen := map[uint64]bool{}
		st, err := ix.NewStream(3, 2, func(qid uint64, res []Result, err error) {
			if err != nil {
				t.Errorf("round %d: query %d answered with %v", round, qid, err)
				return
			}
			mu.Lock()
			if seen[qid] {
				t.Errorf("round %d: query %d answered twice", round, qid)
			}
			seen[qid] = true
			mu.Unlock()
			answered.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		var accepted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					_, err := st.Submit(data.Row((g*20 + i) % data.Len()))
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrStreamClosed):
						return // closed under us: every later submit fails too
					default:
						t.Errorf("round %d: submit error %v", round, err)
						return
					}
				}
			}(g)
		}
		// Two goroutines race Close against the submitters and each other.
		var cwg sync.WaitGroup
		for c := 0; c < 2; c++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				time.Sleep(time.Duration(round) * 100 * time.Microsecond)
				st.Close()
			}()
		}
		wg.Wait()
		cwg.Wait()
		if _, err := st.Submit(data.Row(0)); !errors.Is(err, ErrStreamClosed) {
			t.Fatalf("round %d: post-close submit err = %v, want ErrStreamClosed", round, err)
		}
		if got, want := answered.Load(), accepted.Load(); got != want {
			t.Fatalf("round %d: %d accepted submits, %d answers", round, want, got)
		}
	}
}

// TestStreamWatchdogStall: when every worker is stuck and the backlog is
// full, Submit fails with ErrStreamStalled after the watchdog deadline
// instead of blocking forever — and the stream recovers once the stall
// clears.
func TestStreamWatchdogStall(t *testing.T) {
	rng := rand.New(rand.NewSource(862))
	data := mixedMatrix(rng, 200, 32)
	ix, err := Build(data, Config{Method: MESSI, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var answered atomic.Int64
	st, err := ix.NewStream(3, 1, func(qid uint64, res []Result, err error) {
		if err != nil {
			t.Errorf("query %d: %v", qid, err)
		}
		answered.Add(1)
		<-release // the worker stalls inside the callback
	})
	if err != nil {
		t.Fatal(err)
	}
	st.SetWatchdog(30 * time.Millisecond)
	// One query occupies the worker; two more fill the bounded channel
	// (capacity 2 per worker). The exact split depends on scheduling; keep
	// submitting until a submit fails, which must be ErrStreamStalled and
	// must take at least roughly the watchdog deadline.
	stalled := false
	for i := 0; i < 5; i++ {
		start := time.Now()
		_, err := st.Submit(data.Row(i))
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrStreamStalled) {
			t.Fatalf("submit %d err = %v, want ErrStreamStalled", i, err)
		}
		if el := time.Since(start); el < 20*time.Millisecond {
			t.Fatalf("submit %d stalled after %v, before the watchdog deadline", i, el)
		}
		stalled = true
		break
	}
	if !stalled {
		t.Fatal("no submit tripped the watchdog despite a stalled worker")
	}
	// Clearing the stall restores the stream: the backlog drains and new
	// submits are accepted and answered.
	close(release)
	deadline := time.After(5 * time.Second)
	for {
		if _, err := st.Submit(data.Row(0)); err == nil {
			break
		} else if !errors.Is(err, ErrStreamStalled) {
			t.Fatalf("post-recovery submit: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("stream never recovered after the stall cleared")
		default:
		}
	}
	st.Close()
	if answered.Load() == 0 {
		t.Fatal("no queries were answered")
	}
}

// TestStreamWatchdogConfig pins SetWatchdog's clamping: negative durations
// disable the watchdog like zero does (block-forever semantics), and the
// setting is safe to flip concurrently with submits.
func TestStreamWatchdogConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(863))
	data := mixedMatrix(rng, 100, 32)
	ix, err := Build(data, Config{Method: MESSI, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ix.NewStream(3, 1, func(uint64, []Result, error) {})
	if err != nil {
		t.Fatal(err)
	}
	st.SetWatchdog(-time.Second)
	if got := st.watchdog.Load(); got != 0 {
		t.Fatalf("negative watchdog stored as %d, want 0 (disabled)", got)
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st.SetWatchdog(time.Duration(g+1) * time.Second)
				if _, err := st.Submit(data.Row(i % data.Len())); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st.Close()
}
