package core

import (
	"math/rand"
	"sync"
	"testing"
)

// The streaming engine under concurrent submitters (run with -race in CI):
// many goroutines submit against one stream; every query must be answered
// exactly once, with exactly the single-tree searcher's answer, regardless
// of which worker handled it.
func TestStreamConcurrentSubmitters(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := 64
	data := mixedMatrix(rng, 2000, n)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 64, SampleRate: 0.1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const (
		submitters = 4
		perSub     = 25
		k          = 5
	)
	queries := make([][]float64, submitters*perSub)
	expected := make([][]Result, len(queries))
	ref := ix.NewSearcher()
	for i := range queries {
		q := make([]float64, n)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
		res, err := ref.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = append([]Result(nil), res...)
	}

	var mu sync.Mutex
	got := map[uint64][]Result{}
	st, err := ix.NewStream(k, 3, func(qid uint64, res []Result, err error) {
		if err != nil {
			t.Errorf("query %d: %v", qid, err)
			return
		}
		// The res slice is callback-scoped: copy to retain.
		cp := append([]Result(nil), res...)
		mu.Lock()
		if _, dup := got[qid]; dup {
			t.Errorf("query id %d answered twice", qid)
		}
		got[qid] = cp
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// qid -> query index, filled by the submitters.
	var idmu sync.Mutex
	qidToQuery := map[uint64]int{}
	var wg sync.WaitGroup
	for sub := 0; sub < submitters; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				qi := sub*perSub + i
				qid, err := st.Submit(queries[qi])
				if err != nil {
					t.Errorf("submit %d: %v", qi, err)
					return
				}
				idmu.Lock()
				qidToQuery[qid] = qi
				idmu.Unlock()
			}
		}(sub)
	}
	wg.Wait()
	st.Close()

	if len(got) != len(queries) {
		t.Fatalf("%d answers for %d queries", len(got), len(queries))
	}
	for qid, res := range got {
		want := expected[qidToQuery[qid]]
		if len(res) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qid, len(res), len(want))
		}
		for r := range want {
			if res[r] != want[r] {
				t.Fatalf("query %d rank %d: got %+v want %+v", qid, r, res[r], want[r])
			}
		}
	}
}

func TestStreamValidationAndClose(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	data := mixedMatrix(rng, 200, 32)
	ix, err := Build(data, Config{Method: MESSI, LeafCapacity: 16, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.NewStream(0, 1, func(uint64, []Result, error) {}); err == nil {
		t.Error("expected error on k=0")
	}
	if _, err := ix.NewStream(1, 1, nil); err == nil {
		t.Error("expected error on nil handler")
	}
	st, err := ix.NewStream(1, 2, func(uint64, []Result, error) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(make([]float64, 7)); err == nil {
		t.Error("expected error on wrong query length")
	}
	if _, err := st.Submit(data.Row(0)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st.Close() // idempotent
	if _, err := st.Submit(data.Row(1)); err == nil {
		t.Error("expected error on Submit after Close")
	}
}
