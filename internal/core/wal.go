package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"time"

	"repro/internal/faultinject"
)

// This file is the write-ahead log half of the durability subsystem (see
// store.go for checkpoints and recovery). The WAL makes the mutation API
// crash-safe: each Insert, Delete, and Upsert is appended to the log as one
// checksummed typed record before it is applied to the in-memory collection,
// so a process that dies between checkpoints can replay the suffix of
// acknowledged mutations on restart.
//
// On-disk format, version 2 — all integers little-endian, checksums CRC-32C
// (the container's checksum discipline):
//
//	header:  magic "SOFAWAL\x02" (8) | u32 seriesLen | u32 crc(magic+seriesLen)
//	record:  u32 payloadLen | u32 crc(payload) | payload
//	payload: u8 op | u64 seq | u64 id | [f64 × seriesLen]
//
// op is 1 (insert), 2 (delete), or 3 (upsert); the series block is present
// for insert and upsert and absent for delete, so payloadLen takes exactly
// two legal values per log — anything else is a forged length and classifies
// the tail as corrupt without being trusted for an allocation. id is the
// public id the mutation targets (for insert, the id it was assigned). seq
// is the collection's mutation sequence number at apply time, which is what
// makes recovery idempotent: a record whose seq is already covered by the
// loaded checkpoint (savedIndex.MutSeq) is skipped, not re-applied, so the
// crash window between a checkpoint's rename and its WAL truncation cannot
// duplicate mutations.
//
// Version 1 ("SOFAWAL\x01") logs are still read: they carry insert-only
// records (payload u64 seq | f64 × seriesLen, seq = the assigned global id).
// Recovery replays them and migrates the store to a fresh v2 log behind a
// new checkpoint — see Store.recoverWAL.

// SyncPolicy selects when the WAL fsyncs appended records. See the README's
// durability table for what each policy guarantees after kill -9.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged Insert is
	// durable. The default, and the only policy under which acknowledged
	// data cannot be lost to a power failure.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per configured interval (plus at
	// checkpoint and Close): a crash loses at most the last interval's
	// acknowledged inserts.
	SyncInterval
	// SyncNone never fsyncs outside checkpoint and Close: the OS decides
	// when appended records reach the disk. A process crash (the kernel
	// survives) loses nothing; a power failure can lose everything since
	// the last checkpoint.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ErrWALCorrupt reports a write-ahead log whose bytes fail validation — a
// checksum mismatch, a forged record length, or a sequence break. Recovery
// never trusts anything at or past the first corrupt record; by default the
// valid prefix is recovered and the tail discarded (reported via
// RecoveryStats), while DurableConfig.StrictWAL surfaces it as an error.
var ErrWALCorrupt = errors.New("core: write-ahead log corrupt")

// ErrRecoveryTruncated reports a write-ahead log that ends mid-record — the
// torn tail a crash during an append leaves behind. Like ErrWALCorrupt it is
// absorbed into RecoveryStats by default and surfaced only under
// DurableConfig.StrictWAL.
var ErrRecoveryTruncated = errors.New("core: write-ahead log truncated mid-record")

const (
	walMagic            = "SOFAWAL\x02"
	walMagicV1          = "SOFAWAL\x01"
	walHeaderSize       = 16
	walRecordHeaderSize = 8
	// The record type codes of the v2 format.
	walOpInsert byte = 1
	walOpDelete byte = 2
	walOpUpsert byte = 3
	// maxWriteRetries bounds the transient-write retry budget, mirroring the
	// read path's maxReadRetries: storage hiccups clear within a few
	// attempts; anything that survives the budget surfaces.
	maxWriteRetries = 3
)

// WAL is an append-only mutation log. It is not safe for concurrent use —
// like the Store write methods, which are the only writers — and is managed
// by Store; tests exercise it directly.
type WAL struct {
	f         *os.File
	path      string
	seriesLen int
	next      uint64 // seq the next appended record will carry
	size      int64  // file offset after the last fully acknowledged write
	policy    SyncPolicy
	interval  time.Duration
	lastSync  time.Time
	dirty     bool
	buf       []byte

	// failed latches the first surfaced append/sync error. Once a write
	// failed, the file's tail state is unknown (a torn record may sit past
	// size, and the file offset with it) — appending more would splice valid
	// records behind garbage, silently un-durable. Every later Append/Sync
	// refuses with this error; the owner must close and Recover.
	failed error
}

// walRecordSize is the full on-disk size of one v2 series-carrying record
// (insert or upsert) for the given series length — the larger of the two
// legal record sizes, and what crash tests size their tears against.
func walRecordSize(seriesLen int) int {
	return walRecordHeaderSize + 17 + 8*seriesLen
}

// walDeleteRecordSize is the full on-disk size of one v2 delete record
// (series-free).
const walDeleteRecordSize = walRecordHeaderSize + 17

// walRecordSizeV1 is the full on-disk size of one version-1 record.
func walRecordSizeV1(seriesLen int) int {
	return walRecordHeaderSize + 8 + 8*seriesLen
}

// encodeWALHeader fills a 16-byte WAL file header with the given magic.
func encodeWALHeader(dst []byte, magic string, seriesLen int) {
	copy(dst[:8], magic)
	binary.LittleEndian.PutUint32(dst[8:], uint32(seriesLen))
	binary.LittleEndian.PutUint32(dst[12:], crc32.Checksum(dst[:12], castagnoli))
}

// createWAL writes a fresh v2 log at path (truncating any previous file)
// whose first record will carry sequence number next. The header is synced
// before returning, so a crash right after createWAL leaves a valid empty
// log.
func createWAL(path string, seriesLen int, next uint64, policy SyncPolicy, interval time.Duration) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderSize]byte
	encodeWALHeader(hdr[:], walMagic, seriesLen)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{
		f: f, path: path, seriesLen: seriesLen, next: next,
		size: walHeaderSize, policy: policy, interval: interval,
		lastSync: time.Now(),
	}, nil
}

// NextSeq returns the sequence number the next appended record will carry.
func (w *WAL) NextSeq() uint64 { return w.next }

// Size returns the log's acknowledged byte size (header included).
func (w *WAL) Size() int64 { return w.size }

// AppendInsert logs one insert: the raw (pre-normalization) series and the
// public id it was assigned.
func (w *WAL) AppendInsert(id uint64, series []float64) error {
	if len(series) != w.seriesLen {
		return fmt.Errorf("core: wal append: series length %d, want %d", len(series), w.seriesLen)
	}
	return w.append(walOpInsert, id, series)
}

// AppendDelete logs one delete of the given public id.
func (w *WAL) AppendDelete(id uint64) error {
	return w.append(walOpDelete, id, nil)
}

// AppendUpsert logs one upsert: the raw replacement series for the given
// public id.
func (w *WAL) AppendUpsert(id uint64, series []float64) error {
	if len(series) != w.seriesLen {
		return fmt.Errorf("core: wal append: series length %d, want %d", len(series), w.seriesLen)
	}
	return w.append(walOpUpsert, id, series)
}

// append logs one mutation record under the next sequence number. The record
// is fully buffered before any byte reaches the file, then written in one
// call and fsynced per the sync policy. Transient write and sync errors (the
// net-style Temporary contract, or injected transient faults in chaos
// builds) are retried under a bounded jittered backoff before surfacing.
func (w *WAL) append(op byte, id uint64, series []float64) error {
	if w.failed != nil {
		return fmt.Errorf("core: wal wedged by earlier failure: %w", w.failed)
	}
	need := walDeleteRecordSize
	if series != nil {
		need = walRecordSize(w.seriesLen)
	}
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	rec := w.buf[:need]
	payload := rec[walRecordHeaderSize:]
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	payload[0] = op
	binary.LittleEndian.PutUint64(payload[1:], w.next)
	binary.LittleEndian.PutUint64(payload[9:], id)
	for i, v := range series {
		binary.LittleEndian.PutUint64(payload[17+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, castagnoli))
	if err := w.write(rec); err != nil {
		return err
	}
	w.next++
	w.size += int64(need)
	w.dirty = true
	return w.maybeSync()
}

// write issues one record write with the transient-retry contract. A fatal
// injected append fault tears the record — half its bytes reach the file —
// before surfacing, modelling the torn tail a crash mid-append leaves; a
// transient one is retried without touching the file. Any surfaced error
// wedges the log (see WAL.failed).
func (w *WAL) write(rec []byte) error {
	delay := time.Millisecond
	for attempt := 0; ; attempt++ {
		if faultinject.Enabled {
			if err := faultinject.Hook(faultinject.SiteWALAppend); err != nil {
				if faultinject.IsTransient(err) && attempt < maxWriteRetries {
					sleepJittered(&delay)
					continue
				}
				w.f.Write(rec[:len(rec)/2])
				w.failed = err
				return fmt.Errorf("core: wal append: %w", err)
			}
		}
		n, err := w.f.Write(rec)
		if err == nil {
			return nil
		}
		// A partial write already tore the file; retrying would splice a
		// fresh record after garbage, corrupting the log past the tear.
		if n > 0 || !isTransientRead(err) || attempt >= maxWriteRetries {
			w.failed = err
			return fmt.Errorf("core: wal append: %w", err)
		}
		sleepJittered(&delay)
	}
}

// Sync flushes appended records to stable storage, retrying transient fsync
// errors under the same bounded jittered backoff as writes. A no-op when
// nothing was appended since the last sync.
func (w *WAL) Sync() error {
	if w.failed != nil {
		return fmt.Errorf("core: wal wedged by earlier failure: %w", w.failed)
	}
	if !w.dirty {
		return nil
	}
	delay := time.Millisecond
	for attempt := 0; ; attempt++ {
		if faultinject.Enabled {
			if err := faultinject.Hook(faultinject.SiteWALSync); err != nil {
				if faultinject.IsTransient(err) && attempt < maxWriteRetries {
					sleepJittered(&delay)
					continue
				}
				// A failed fsync poisons too: the kernel may have dropped the
				// dirty pages, so "retry the fsync later" silently lies.
				w.failed = err
				return fmt.Errorf("core: wal sync: %w", err)
			}
		}
		err := w.f.Sync()
		if err == nil {
			w.dirty = false
			w.lastSync = time.Now()
			return nil
		}
		if !isTransientRead(err) || attempt >= maxWriteRetries {
			w.failed = err
			return fmt.Errorf("core: wal sync: %w", err)
		}
		sleepJittered(&delay)
	}
}

// maybeSync applies the sync policy after an append.
func (w *WAL) maybeSync() error {
	switch w.policy {
	case SyncAlways:
		return w.Sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.interval {
			return w.Sync()
		}
	}
	return nil
}

// truncateTo rolls the log back to a prior acknowledged size — the repair
// path when an append succeeded but the in-memory mutation behind it failed,
// which would otherwise leave a record recovery replays but the running
// index never held.
func (w *WAL) truncateTo(size int64, next uint64) error {
	if err := w.f.Truncate(size); err != nil {
		return fmt.Errorf("core: wal rollback: %w", err)
	}
	if _, err := w.f.Seek(size, io.SeekStart); err != nil {
		return fmt.Errorf("core: wal rollback: %w", err)
	}
	w.size = size
	w.next = next
	w.dirty = true
	return nil
}

// Close syncs outstanding records and closes the file.
func (w *WAL) Close() error {
	syncErr := w.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// sleepJittered sleeps the current backoff delay plus up to 50% random
// jitter (so parallel retriers do not stampede in phase), then doubles the
// delay for the next attempt.
func sleepJittered(delay *time.Duration) {
	d := *delay
	time.Sleep(d + time.Duration(rand.Int64N(int64(d)/2+1)))
	*delay = d * 2
}

// walEntry is one decoded record during recovery. version is the log format
// it was read from; for version 1 records op is walOpInsert and id echoes
// seq (v1 sequence numbers are the assigned global ids).
type walEntry struct {
	version int
	op      byte
	seq     uint64
	id      uint64
	series  []float64 // nil for delete records
}

// scanWAL validates and decodes the log at f front to back, invoking apply
// for every intact record. It returns the log's format version, the byte
// offset just past the last valid record (validEnd), and classifies how the
// scan ended: tailErr is nil for a log that ends exactly on a record
// boundary, wraps ErrRecoveryTruncated for a torn tail, and wraps
// ErrWALCorrupt for a checksum mismatch, forged length, unknown record type,
// bad header, or an apply rejection — everything from the offending record
// on is untrusted. Errors returned by apply that do not wrap ErrWALCorrupt
// abort the scan as real failures (err non-nil); I/O errors from f do the
// same.
func scanWAL(f *os.File, seriesLen int, apply func(walEntry) error) (version int, validEnd int64, tailErr, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, 0, nil, err
	}
	fileSize := info.Size()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, nil, err
	}
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Shorter than a header: nothing in this file is usable, not
			// even the header — the whole file is the discarded tail.
			return 0, 0, fmt.Errorf("core: wal header short (%d bytes): %w", fileSize, ErrRecoveryTruncated), nil
		}
		return 0, 0, nil, err
	}
	var want [walHeaderSize]byte
	encodeWALHeader(want[:], walMagic, seriesLen)
	version = 2
	if hdr != want {
		encodeWALHeader(want[:], walMagicV1, seriesLen)
		if hdr != want {
			return 0, 0, fmt.Errorf("core: wal header mismatch: %w", ErrWALCorrupt), nil
		}
		version = 1
	}
	validEnd = walHeaderSize
	if version == 1 {
		tailErr, err = scanRecordsV1(f, seriesLen, &validEnd, apply)
		return version, validEnd, tailErr, err
	}
	tailErr, err = scanRecordsV2(f, seriesLen, &validEnd, apply)
	return version, validEnd, tailErr, err
}

// scanRecordsV2 decodes version-2 typed records: a fixed 8-byte record
// header declaring one of the two legal payload lengths, then the payload.
func scanRecordsV2(f *os.File, seriesLen int, validEnd *int64, apply func(walEntry) error) (tailErr, err error) {
	fullPayload := 17 + 8*seriesLen
	payload := make([]byte, fullPayload)
	series := make([]float64, seriesLen)
	var rh [walRecordHeaderSize]byte
	for {
		n, rerr := io.ReadFull(f, rh[:])
		if rerr == io.EOF {
			return nil, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			return fmt.Errorf("core: wal record header at offset %d short (%d of %d bytes): %w",
				*validEnd, n, walRecordHeaderSize, ErrRecoveryTruncated), nil
		}
		if rerr != nil {
			return nil, rerr
		}
		plen := binary.LittleEndian.Uint32(rh[0:])
		if plen != 17 && plen != uint32(fullPayload) {
			return fmt.Errorf("core: wal record at offset %d: forged length %d (want 17 or %d): %w",
				*validEnd, plen, fullPayload, ErrWALCorrupt), nil
		}
		p := payload[:plen]
		if n, rerr := io.ReadFull(f, p); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return fmt.Errorf("core: wal record at offset %d short (%d of %d payload bytes): %w",
					*validEnd, n, plen, ErrRecoveryTruncated), nil
			}
			return nil, rerr
		}
		if got, want := binary.LittleEndian.Uint32(rh[4:]), crc32.Checksum(p, castagnoli); got != want {
			return fmt.Errorf("core: wal record at offset %d: checksum %08x, want %08x: %w",
				*validEnd, got, want, ErrWALCorrupt), nil
		}
		e := walEntry{
			version: 2,
			op:      p[0],
			seq:     binary.LittleEndian.Uint64(p[1:]),
			id:      binary.LittleEndian.Uint64(p[9:]),
		}
		switch e.op {
		case walOpInsert, walOpUpsert:
			if int(plen) != fullPayload {
				return fmt.Errorf("core: wal record at offset %d: series-free %s record: %w",
					*validEnd, walOpName(e.op), ErrWALCorrupt), nil
			}
			for i := range series {
				series[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[17+8*i:]))
			}
			e.series = series
		case walOpDelete:
			if plen != 17 {
				return fmt.Errorf("core: wal record at offset %d: delete record carries a series: %w",
					*validEnd, ErrWALCorrupt), nil
			}
		default:
			return fmt.Errorf("core: wal record at offset %d: unknown record type %d: %w",
				*validEnd, e.op, ErrWALCorrupt), nil
		}
		if aerr := apply(e); aerr != nil {
			if errors.Is(aerr, ErrWALCorrupt) {
				return aerr, nil
			}
			return nil, aerr
		}
		*validEnd += int64(walRecordHeaderSize) + int64(plen)
	}
}

// scanRecordsV1 decodes version-1 records: fixed-size, insert-only, seq is
// the assigned global id.
func scanRecordsV1(f *os.File, seriesLen int, validEnd *int64, apply func(walEntry) error) (tailErr, err error) {
	recSize := walRecordSizeV1(seriesLen)
	rec := make([]byte, recSize)
	series := make([]float64, seriesLen)
	for {
		n, rerr := io.ReadFull(f, rec)
		if rerr == io.EOF {
			return nil, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			return fmt.Errorf("core: wal record at offset %d short (%d of %d bytes): %w",
				*validEnd, n, recSize, ErrRecoveryTruncated), nil
		}
		if rerr != nil {
			return nil, rerr
		}
		payload := rec[walRecordHeaderSize:]
		if got := binary.LittleEndian.Uint32(rec[0:]); got != uint32(len(payload)) {
			return fmt.Errorf("core: wal record at offset %d: forged length %d (want %d): %w",
				*validEnd, got, len(payload), ErrWALCorrupt), nil
		}
		if got, want := binary.LittleEndian.Uint32(rec[4:]), crc32.Checksum(payload, castagnoli); got != want {
			return fmt.Errorf("core: wal record at offset %d: checksum %08x, want %08x: %w",
				*validEnd, got, want, ErrWALCorrupt), nil
		}
		seq := binary.LittleEndian.Uint64(payload[0:])
		for i := range series {
			series[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+8*i:]))
		}
		if aerr := apply(walEntry{version: 1, op: walOpInsert, seq: seq, id: seq, series: series}); aerr != nil {
			if errors.Is(aerr, ErrWALCorrupt) {
				return aerr, nil
			}
			return nil, aerr
		}
		*validEnd += int64(recSize)
	}
}

// walOpName names a record type for error messages.
func walOpName(op byte) string {
	switch op {
	case walOpInsert:
		return "insert"
	case walOpDelete:
		return "delete"
	case walOpUpsert:
		return "upsert"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}
