//go:build faultinject

package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// The crash-point matrix: the write path is killed at every durability hook
// site, the directory reopened, and the recovered index's answers compared
// bit for bit against a store that never crashed but holds the identical
// durable history. Build with -tags faultinject; the CI chaos job runs this
// under -race.

// crashFixture is a pair of durability directories initialized from
// byte-identical checkpoints of the same base index, so a crashed store and
// its clean reference recover through the exact same container bytes.
type crashFixture struct {
	queries [][]float64
	extras  [][]float64
	base    []byte // saved container of the base index
}

func newCrashFixture(tb testing.TB, shards int) *crashFixture {
	tb.Helper()
	faultinject.Reset()
	rng := rand.New(rand.NewSource(152))
	data := mixedMatrix(rng, 300, 32)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Shards: shards, Workers: 1})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		tb.Fatal(err)
	}
	qm := mixedMatrix(rng, 4, 32)
	queries := make([][]float64, qm.Len())
	for i := range queries {
		queries[i] = qm.Row(i)
	}
	return &crashFixture{queries: queries, extras: extraSeries(31, 5, 32), base: buf.Bytes()}
}

// newStore loads a fresh copy of the base index and initializes dir with it.
func (fx *crashFixture) newStore(tb testing.TB, dir string, cfg DurableConfig) *Store {
	tb.Helper()
	ix, err := Load(bytes.NewReader(fx.base))
	if err != nil {
		tb.Fatal(err)
	}
	st, err := CreateStore(dir, ix, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// reference recovers a clean store holding exactly m post-checkpoint inserts
// — the durable history a crashed run must match.
func (fx *crashFixture) reference(tb testing.TB, m int, cfg DurableConfig) *Store {
	tb.Helper()
	dir := tb.(*testing.T).TempDir()
	st := fx.newStore(tb, dir, cfg)
	for _, s := range fx.extras[:m] {
		if _, err := st.Insert(s); err != nil {
			tb.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		tb.Fatal(err)
	}
	abandonStore(st)
	rec, err := Recover(dir, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return rec
}

// assertIdentical compares the two stores' answers to the fixture queries
// bit for bit.
func (fx *crashFixture) assertIdentical(t *testing.T, label string, got, want *Store) {
	t.Helper()
	gs, ws := got.Index().NewSearcher(), want.Index().NewSearcher()
	for qi, q := range fx.queries {
		wres, err := ws.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		wcopy := append([]Result(nil), wres...)
		gres, err := gs.Search(q, 10)
		if err != nil {
			t.Fatalf("%s q=%d: %v", label, qi, err)
		}
		if len(gres) != len(wcopy) {
			t.Fatalf("%s q=%d: %d results, want %d", label, qi, len(gres), len(wcopy))
		}
		for r := range gres {
			if gres[r] != wcopy[r] {
				t.Fatalf("%s q=%d rank %d: %+v != %+v (recovered index diverges from never-crashed)",
					label, qi, r, gres[r], wcopy[r])
			}
		}
	}
}

// TestCrashMatrixWALAppend kills the append at each insert position: the
// record tears mid-write, recovery cuts the torn tail, and the reopened
// index matches a never-crashed store holding the acknowledged prefix.
func TestCrashMatrixWALAppend(t *testing.T) {
	for _, shards := range []int{1, 2} {
		fx := newCrashFixture(t, shards)
		for _, j := range []int{0, 2, 4} {
			faultinject.Reset()
			dir := t.TempDir()
			st := fx.newStore(t, dir, DurableConfig{Sync: SyncAlways})
			baseLen := st.Index().Len()
			faultinject.Arm(faultinject.SiteWALAppend, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: uint64(j + 1)})
			for i, s := range fx.extras {
				_, err := st.Insert(s)
				if i < j && err != nil {
					t.Fatalf("S=%d j=%d: insert %d failed early: %v", shards, j, i, err)
				}
				if i == j {
					if !faultinject.IsInjected(err) {
						t.Fatalf("S=%d j=%d: crash insert err = %v, want injected", shards, j, err)
					}
					break
				}
			}
			faultinject.Disarm(faultinject.SiteWALAppend)
			abandonStore(st)

			rec, err := Recover(dir, DurableConfig{})
			if err != nil {
				t.Fatalf("S=%d j=%d: recover: %v", shards, j, err)
			}
			stats := rec.RecoveryStats()
			if stats.Replayed != j || stats.Skipped != 0 {
				t.Fatalf("S=%d j=%d: stats %+v, want %d replayed", shards, j, stats, j)
			}
			if !errors.Is(stats.TailError, ErrRecoveryTruncated) {
				t.Fatalf("S=%d j=%d: tail error %v, want ErrRecoveryTruncated", shards, j, stats.TailError)
			}
			if want := int64(walRecordSize(32) / 2); stats.DiscardedBytes != want {
				t.Fatalf("S=%d j=%d: discarded %d bytes, want %d (the torn half-record)", shards, j, stats.DiscardedBytes, want)
			}
			if got := rec.Index().Len(); got != baseLen+j {
				t.Fatalf("S=%d j=%d: recovered %d series, want %d", shards, j, got, baseLen+j)
			}
			ref := fx.reference(t, j, DurableConfig{Sync: SyncAlways})
			fx.assertIdentical(t, "append-crash", rec, ref)
			rec.Close()
			ref.Close()
		}
	}
}

// TestCrashMatrixWALSync kills the fsync after the record reached the file:
// the insert is unacknowledged, but its record is durable — recovery is
// allowed to (and here deterministically does) replay it, so the reopened
// index matches a reference holding j+1 inserts.
func TestCrashMatrixWALSync(t *testing.T) {
	for _, shards := range []int{1, 2} {
		fx := newCrashFixture(t, shards)
		for _, j := range []int{0, 3} {
			faultinject.Reset()
			dir := t.TempDir()
			st := fx.newStore(t, dir, DurableConfig{Sync: SyncAlways})
			baseLen := st.Index().Len()
			faultinject.Arm(faultinject.SiteWALSync, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: uint64(j + 1)})
			for i, s := range fx.extras {
				_, err := st.Insert(s)
				if i < j && err != nil {
					t.Fatalf("S=%d j=%d: insert %d failed early: %v", shards, j, i, err)
				}
				if i == j {
					if !faultinject.IsInjected(err) {
						t.Fatalf("S=%d j=%d: crash insert err = %v, want injected", shards, j, err)
					}
					break
				}
			}
			faultinject.Disarm(faultinject.SiteWALSync)
			abandonStore(st)

			rec, err := Recover(dir, DurableConfig{})
			if err != nil {
				t.Fatalf("S=%d j=%d: recover: %v", shards, j, err)
			}
			stats := rec.RecoveryStats()
			if stats.Replayed != j+1 || stats.TailError != nil || stats.DiscardedBytes != 0 {
				t.Fatalf("S=%d j=%d: stats %+v, want %d replayed (sync-crash record is on disk)", shards, j, stats, j+1)
			}
			if got := rec.Index().Len(); got != baseLen+j+1 {
				t.Fatalf("S=%d j=%d: recovered %d series, want %d", shards, j, got, baseLen+j+1)
			}
			ref := fx.reference(t, j+1, DurableConfig{Sync: SyncAlways})
			fx.assertIdentical(t, "sync-crash", rec, ref)
			rec.Close()
			ref.Close()
		}
	}
}

// TestCrashMatrixCheckpointRename kills the checkpoint at its commit point
// (between the temp file's fsync and the rename): the old container and the
// full WAL survive, so nothing is lost and the failed checkpoint is
// invisible after recovery.
func TestCrashMatrixCheckpointRename(t *testing.T) {
	for _, shards := range []int{1, 2} {
		fx := newCrashFixture(t, shards)
		faultinject.Reset()
		dir := t.TempDir()
		st := fx.newStore(t, dir, DurableConfig{Sync: SyncAlways})
		baseLen := st.Index().Len()
		const j = 3
		for _, s := range fx.extras[:j] {
			if _, err := st.Insert(s); err != nil {
				t.Fatal(err)
			}
		}
		faultinject.Arm(faultinject.SiteCheckpointRename, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
		if err := st.Checkpoint(); !faultinject.IsInjected(err) {
			t.Fatalf("S=%d: checkpoint err = %v, want injected", shards, err)
		}
		faultinject.Disarm(faultinject.SiteCheckpointRename)
		abandonStore(st)
		assertNoTempFiles(t, dir)

		rec, err := Recover(dir, DurableConfig{})
		if err != nil {
			t.Fatalf("S=%d: recover: %v", shards, err)
		}
		stats := rec.RecoveryStats()
		if stats.CheckpointLen != baseLen || stats.Replayed != j || stats.TailError != nil {
			t.Fatalf("S=%d: stats %+v, want old checkpoint %d + %d replayed", shards, stats, baseLen, j)
		}
		ref := fx.reference(t, j, DurableConfig{Sync: SyncAlways})
		fx.assertIdentical(t, "rename-crash", rec, ref)
		rec.Close()
		ref.Close()
	}
}

// TestCrashMatrixPersistWrite kills the container save mid-stream (a torn
// chunk inside the temp file). This is the satellite regression for the old
// os.Create SaveFile: the previous container must survive a crash mid-save.
func TestCrashMatrixPersistWrite(t *testing.T) {
	for _, shards := range []int{1, 2} {
		fx := newCrashFixture(t, shards)
		faultinject.Reset()
		dir := t.TempDir()
		st := fx.newStore(t, dir, DurableConfig{Sync: SyncAlways})
		baseLen := st.Index().Len()
		const j = 2
		for _, s := range fx.extras[:j] {
			if _, err := st.Insert(s); err != nil {
				t.Fatal(err)
			}
		}
		before, err := os.ReadFile(ContainerPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		// Tear the first chunk the saver writes to the temp file (the saver
		// buffers internally, so the container may arrive in one big write).
		faultinject.Arm(faultinject.SitePersistWrite, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
		if err := st.Checkpoint(); !faultinject.IsInjected(err) {
			t.Fatalf("S=%d: checkpoint err = %v, want injected", shards, err)
		}
		faultinject.Disarm(faultinject.SitePersistWrite)
		abandonStore(st)
		assertNoTempFiles(t, dir)

		// The old container is untouched, byte for byte.
		after, err := os.ReadFile(ContainerPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("S=%d: container changed across a failed save", shards)
		}
		rec, err := Recover(dir, DurableConfig{})
		if err != nil {
			t.Fatalf("S=%d: recover: %v", shards, err)
		}
		stats := rec.RecoveryStats()
		if stats.CheckpointLen != baseLen || stats.Replayed != j {
			t.Fatalf("S=%d: stats %+v, want old checkpoint %d + %d replayed", shards, stats, baseLen, j)
		}
		ref := fx.reference(t, j, DurableConfig{Sync: SyncAlways})
		fx.assertIdentical(t, "persist-write-crash", rec, ref)
		rec.Close()
		ref.Close()
	}
}

// assertNoTempFiles verifies a failed atomic save cleaned up its temp file.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestChaosWALTransientWriteRetry: transient append and sync faults are
// retried under the bounded backoff — the insert succeeds, nothing tears —
// while persistent transients exhaust the budget, surface, and wedge the
// log until reopen.
func TestChaosWALTransientWriteRetry(t *testing.T) {
	fx := newCrashFixture(t, 2)
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	st := fx.newStore(t, dir, DurableConfig{Sync: SyncAlways})
	baseLen := st.Index().Len()

	// One transient append fault: retried through, insert acknowledged.
	faultinject.Arm(faultinject.SiteWALAppend, faultinject.Trigger{Mode: faultinject.ModeTransient, OnCall: 1, Count: 1})
	if _, err := st.Insert(fx.extras[0]); err != nil {
		t.Fatalf("insert with one transient append fault: %v", err)
	}
	if fired := faultinject.Fired(faultinject.SiteWALAppend); fired != 1 {
		t.Fatalf("%d transient append faults fired, want 1", fired)
	}
	faultinject.Reset()

	// One transient sync fault: same.
	faultinject.Arm(faultinject.SiteWALSync, faultinject.Trigger{Mode: faultinject.ModeTransient, OnCall: 1, Count: 1})
	if _, err := st.Insert(fx.extras[1]); err != nil {
		t.Fatalf("insert with one transient sync fault: %v", err)
	}
	faultinject.Reset()

	// Persistent transient append faults exhaust the bounded budget and
	// wedge the log: the next insert refuses with the original failure.
	faultinject.Arm(faultinject.SiteWALAppend, faultinject.Trigger{Mode: faultinject.ModeTransient, EveryN: 1})
	_, err := st.Insert(fx.extras[2])
	if !faultinject.IsTransient(err) {
		t.Fatalf("persistent transient insert err = %v, want exhausted injected transient", err)
	}
	faultinject.Reset()
	if _, err := st.Insert(fx.extras[2]); err == nil {
		t.Fatal("insert on a wedged WAL succeeded")
	}
	abandonStore(st)

	// Recovery sees the two acknowledged inserts and cuts the wedge residue.
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	stats := rec.RecoveryStats()
	if stats.Replayed != 2 {
		t.Fatalf("stats %+v, want the 2 acknowledged inserts replayed", stats)
	}
	if got := rec.Index().Len(); got != baseLen+2 {
		t.Fatalf("recovered %d series, want %d", got, baseLen+2)
	}
	ref := fx.reference(t, 2, DurableConfig{Sync: SyncAlways})
	defer ref.Close()
	fx.assertIdentical(t, "transient-retry", rec, ref)
}

// TestChaosPersistWriteTransientRetry: transient faults on the container
// saver's temp-file writes retry through — the checkpoint lands.
func TestChaosPersistWriteTransientRetry(t *testing.T) {
	fx := newCrashFixture(t, 2)
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	st := fx.newStore(t, dir, DurableConfig{Sync: SyncAlways})
	if _, err := st.Insert(fx.extras[0]); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SitePersistWrite, faultinject.Trigger{Mode: faultinject.ModeTransient, OnCall: 1, Count: 1})
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with one transient write fault: %v", err)
	}
	if fired := faultinject.Fired(faultinject.SitePersistWrite); fired != 1 {
		t.Fatalf("%d transient write faults fired, want 1", fired)
	}
	faultinject.Reset()
	abandonStore(st)
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	stats := rec.RecoveryStats()
	if stats.CheckpointLen != st.Index().Len() || stats.Replayed != 0 {
		t.Fatalf("stats %+v, want checkpoint %d with empty WAL", stats, st.Index().Len())
	}
}
