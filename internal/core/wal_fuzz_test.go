package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/distance"
)

// FuzzWALReplay throws arbitrary bytes at the recovery path as the on-disk
// WAL: truncations, bit flips, forged lengths, duplicated and out-of-order
// records, and pure garbage. Recovery must either fail with an error or
// recover exactly the valid prefix — never panic, never report stats that
// disagree with the bytes, never insert a row that differs from what a valid
// record encodes. The oracle is refWALParse, an independent bytes-only
// re-implementation of the scan and replay rules.
func FuzzWALReplay(f *testing.F) {
	const seriesLen = 32
	rng := rand.New(rand.NewSource(93))
	data := mixedMatrix(rng, 80, seriesLen)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.5, Shards: 2, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	baseLen := data.Len()
	var container bytes.Buffer
	if err := Save(ix, &container); err != nil {
		f.Fatal(err)
	}

	// A well-formed three-record log to seed the corpus, written through the
	// real append path.
	walPath := WALPath(f.TempDir())
	w, err := createWAL(walPath, seriesLen, uint64(baseLen), SyncNone, 0)
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range extraSeries(7, 3, seriesLen) {
		if err := w.Append(s); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(walPath)
	if err != nil {
		f.Fatal(err)
	}
	recSize := walRecordSize(seriesLen)
	rec := func(i int) []byte {
		return valid[walHeaderSize+i*recSize : walHeaderSize+(i+1)*recSize]
	}
	mutate := func(off int, bit byte) []byte {
		m := bytes.Clone(valid)
		m[off] ^= bit
		return m
	}
	f.Add(bytes.Clone(valid))                                                                    // clean log
	f.Add(valid[:walHeaderSize])                                                                 // empty log
	f.Add(valid[:walHeaderSize-1])                                                               // short header
	f.Add(valid[:walHeaderSize+100])                                                             // torn first record
	f.Add(valid[:walHeaderSize+recSize])                                                         // one clean record
	f.Add(valid[:len(valid)-11])                                                                 // torn last record
	f.Add(mutate(3, 0x40))                                                                       // header bit flip
	f.Add(mutate(walHeaderSize+recSize+40, 0x01))                                                // payload bit flip, record 1
	f.Add(mutate(walHeaderSize+walRecordHeaderSize, 0x80))                                       // seq bit flip, record 0
	f.Add(mutate(walHeaderSize, 0xFF))                                                           // forged length, record 0
	f.Add(append(bytes.Clone(valid), rec(0)...))                                                 // duplicate record
	f.Add(append(bytes.Clone(valid[:walHeaderSize]), append(bytes.Clone(rec(1)), rec(0)...)...)) // out of order
	f.Add(append(bytes.Clone(valid[:walHeaderSize]), rec(2)...))                                 // seq skips ahead
	f.Add([]byte{})
	f.Add([]byte("not a wal at all, just some bytes that happen to be here"))

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(ContainerPath(dir), container.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(dir), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Recover(dir, DurableConfig{Sync: SyncNone})
		if err != nil {
			// Refusing the log with an error is an acceptable outcome for
			// arbitrary bytes; the fuzz engine catches the unacceptable one
			// (a panic) on its own.
			return
		}
		replay, skipped, validEnd, clean := refWALParse(wal, seriesLen, baseLen)
		stats := st.RecoveryStats()
		if stats.CheckpointLen != baseLen {
			t.Fatalf("checkpoint len %d, want %d", stats.CheckpointLen, baseLen)
		}
		if stats.Replayed != len(replay) || stats.Skipped != skipped {
			t.Fatalf("replayed %d skipped %d, oracle says %d/%d",
				stats.Replayed, stats.Skipped, len(replay), skipped)
		}
		if got := st.Index().Len(); got != baseLen+len(replay) {
			t.Fatalf("recovered length %d, want %d", got, baseLen+len(replay))
		}
		if clean {
			if stats.TailError != nil || stats.DiscardedBytes != 0 {
				t.Fatalf("clean log reported tail %v, %d discarded bytes",
					stats.TailError, stats.DiscardedBytes)
			}
		} else {
			if stats.TailError == nil {
				t.Fatalf("dirty log reported no tail error")
			}
			if want := int64(len(wal)) - validEnd; stats.DiscardedBytes != want {
				t.Fatalf("discarded %d bytes, oracle says %d", stats.DiscardedBytes, want)
			}
		}
		for i, s := range replay {
			got, want := st.Index().Row(baseLen+i), distance.ZNormalized(s)
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("replayed row %d[%d] = %v, record encodes %v", baseLen+i, j, got[j], want[j])
				}
			}
		}
		if err := st.Index().CheckInvariants(); err != nil {
			t.Fatalf("invariants after recovery: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		// Lenient recovery repaired the log in place (or replaced it), so a
		// second, strict recovery of the same directory must now be clean and
		// land on the identical index.
		st2, err := Recover(dir, DurableConfig{StrictWAL: true})
		if err != nil {
			t.Fatalf("strict re-recover after repair: %v", err)
		}
		s2 := st2.RecoveryStats()
		if s2.TailError != nil || s2.DiscardedBytes != 0 {
			t.Fatalf("repaired log still dirty: tail %v, %d discarded", s2.TailError, s2.DiscardedBytes)
		}
		if got := st2.Index().Len(); got != baseLen+len(replay) {
			t.Fatalf("re-recovered length %d, want %d", got, baseLen+len(replay))
		}
		st2.Close()
	})
}

// refWALParse is an independent re-implementation of the WAL scan and replay
// rules, operating on raw bytes only — the differential oracle for
// FuzzWALReplay. It returns the raw series of every record recovery must
// replay, the count it must skip as checkpoint-covered, the byte offset just
// past the last valid record, and whether the log ends cleanly on a record
// boundary.
func refWALParse(b []byte, seriesLen, checkpointLen int) (replay [][]float64, skipped int, validEnd int64, clean bool) {
	var want [walHeaderSize]byte
	encodeWALHeader(want[:], seriesLen)
	if len(b) < walHeaderSize || !bytes.Equal(b[:walHeaderSize], want[:]) {
		return nil, 0, 0, false
	}
	validEnd = walHeaderSize
	recSize := walRecordSize(seriesLen)
	have := uint64(checkpointLen)
	var prev uint64
	seen := false
	for off := walHeaderSize; ; off += recSize {
		rem := len(b) - off
		if rem == 0 {
			return replay, skipped, validEnd, true
		}
		if rem < recSize {
			return replay, skipped, validEnd, false
		}
		r := b[off : off+recSize]
		payload := r[walRecordHeaderSize:]
		if binary.LittleEndian.Uint32(r[0:]) != uint32(len(payload)) {
			return replay, skipped, validEnd, false
		}
		if binary.LittleEndian.Uint32(r[4:]) != crc32.Checksum(payload, castagnoli) {
			return replay, skipped, validEnd, false
		}
		seq := binary.LittleEndian.Uint64(payload[0:])
		if seen && seq != prev+1 {
			return replay, skipped, validEnd, false
		}
		seen, prev = true, seq
		switch {
		case seq < have:
			skipped++
		case seq > have:
			return replay, skipped, validEnd, false
		default:
			s := make([]float64, seriesLen)
			for i := range s {
				s[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+8*i:]))
			}
			replay = append(replay, s)
			have++
		}
		validEnd += int64(recSize)
	}
}
