package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/distance"
)

// FuzzWALReplay throws arbitrary bytes at the recovery path as the on-disk
// WAL: truncations, bit flips, forged lengths and record types, duplicated
// and out-of-order records, replays targeting dead ids, and pure garbage.
// Recovery must either fail with an error or recover exactly the valid
// prefix — never panic, never report stats that disagree with the bytes,
// never apply a mutation that differs from what a valid record encodes. The
// oracle is refWALParse, an independent bytes-only re-implementation of the
// scan and replay rules for both the v2 typed format and v1 insert-only
// logs (which recovery additionally migrates to v2).
func FuzzWALReplay(f *testing.F) {
	const seriesLen = 32
	rng := rand.New(rand.NewSource(93))
	data := mixedMatrix(rng, 80, seriesLen)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 16, SampleRate: 0.5, Shards: 2, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	baseLen := data.Len()
	var container bytes.Buffer
	if err := Save(ix, &container); err != nil {
		f.Fatal(err)
	}
	extra := extraSeries(7, 5, seriesLen)

	// A well-formed three-insert log to seed the corpus, written through the
	// real append path. A fresh build checkpoints at mutation seq 0.
	walPath := WALPath(f.TempDir())
	w, err := createWAL(walPath, seriesLen, 0, SyncNone, 0)
	if err != nil {
		f.Fatal(err)
	}
	for i, s := range extra[:3] {
		if err := w.AppendInsert(uint64(baseLen+i), s); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(walPath)
	if err != nil {
		f.Fatal(err)
	}
	recSize := walRecordSize(seriesLen)
	rec := func(i int) []byte {
		return valid[walHeaderSize+i*recSize : walHeaderSize+(i+1)*recSize]
	}
	mutate := func(off int, bit byte) []byte {
		m := bytes.Clone(valid)
		m[off] ^= bit
		return m
	}
	f.Add(bytes.Clone(valid))                                                                    // clean log
	f.Add(valid[:walHeaderSize])                                                                 // empty log
	f.Add(valid[:walHeaderSize-1])                                                               // short header
	f.Add(valid[:walHeaderSize+100])                                                             // torn first record
	f.Add(valid[:walHeaderSize+recSize])                                                         // one clean record
	f.Add(valid[:len(valid)-11])                                                                 // torn last record
	f.Add(mutate(3, 0x40))                                                                       // header bit flip
	f.Add(mutate(walHeaderSize+recSize+40, 0x01))                                                // payload bit flip, record 1
	f.Add(mutate(walHeaderSize+walRecordHeaderSize, 0x02))                                       // op bit flip, record 0
	f.Add(mutate(walHeaderSize+walRecordHeaderSize+1, 0x80))                                     // seq bit flip, record 0
	f.Add(mutate(walHeaderSize+walRecordHeaderSize+9, 0x04))                                     // id bit flip, record 0
	f.Add(mutate(walHeaderSize, 0xFF))                                                           // forged length, record 0
	f.Add(append(bytes.Clone(valid), rec(0)...))                                                 // duplicate record
	f.Add(append(bytes.Clone(valid[:walHeaderSize]), append(bytes.Clone(rec(1)), rec(0)...)...)) // out of order
	f.Add(append(bytes.Clone(valid[:walHeaderSize]), rec(2)...))                                 // seq skips ahead
	f.Add([]byte{})
	f.Add([]byte("not a wal at all, just some bytes that happen to be here"))

	// A mixed-op log: insert, delete of the fresh insert, upsert and delete
	// of checkpoint ids — the typed-record shapes the fuzzer mutates from.
	mixedPath := WALPath(f.TempDir())
	w2, err := createWAL(mixedPath, seriesLen, 0, SyncNone, 0)
	if err != nil {
		f.Fatal(err)
	}
	if err := w2.AppendInsert(uint64(baseLen), extra[3]); err != nil {
		f.Fatal(err)
	}
	if err := w2.AppendDelete(uint64(baseLen)); err != nil {
		f.Fatal(err)
	}
	if err := w2.AppendUpsert(5, extra[4]); err != nil {
		f.Fatal(err)
	}
	if err := w2.AppendDelete(17); err != nil {
		f.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		f.Fatal(err)
	}
	mixed, err := os.ReadFile(mixedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(mixed))
	f.Add(mixed[:len(mixed)-9]) // torn tail inside the trailing delete record

	// A version-1 insert-only log, hand-encoded — the migration path.
	v1RecSize := walRecordSizeV1(seriesLen)
	v1buf := make([]byte, walHeaderSize+2*v1RecSize)
	encodeWALHeader(v1buf[:walHeaderSize], walMagicV1, seriesLen)
	for i, s := range extra[:2] {
		r := v1buf[walHeaderSize+i*v1RecSize : walHeaderSize+(i+1)*v1RecSize]
		payload := r[walRecordHeaderSize:]
		binary.LittleEndian.PutUint32(r[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint64(payload[0:], uint64(baseLen+i))
		for j, v := range s {
			binary.LittleEndian.PutUint64(payload[8+8*j:], math.Float64bits(v))
		}
		binary.LittleEndian.PutUint32(r[4:], crc32.Checksum(payload, castagnoli))
	}
	f.Add(bytes.Clone(v1buf))
	f.Add(bytes.Clone(v1buf[:len(v1buf)-5]))

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(ContainerPath(dir), container.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(dir), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Recover(dir, DurableConfig{Sync: SyncNone})
		if err != nil {
			// Refusing the log with an error is an acceptable outcome for
			// arbitrary bytes; the fuzz engine catches the unacceptable one
			// (a panic) on its own.
			return
		}
		version, muts, skipped, validEnd, clean := refWALParse(wal, seriesLen, baseLen)
		stats := st.RecoveryStats()
		if stats.CheckpointLen != baseLen {
			t.Fatalf("checkpoint len %d, want %d", stats.CheckpointLen, baseLen)
		}
		if stats.Replayed != len(muts) || stats.Skipped != skipped {
			t.Fatalf("replayed %d skipped %d, oracle says %d/%d",
				stats.Replayed, stats.Skipped, len(muts), skipped)
		}
		if stats.MigratedWAL != (version == 1) {
			t.Fatalf("MigratedWAL = %v for a version-%d log", stats.MigratedWAL, version)
		}
		// Replay the oracle's mutation list against a trivial model: which
		// ids are live and, for ids the log touched, the series they hold.
		known := map[uint64][]float64{}
		deleted := map[uint64]bool{}
		liveCount := baseLen
		for _, m := range muts {
			switch m.op {
			case walOpInsert:
				known[m.id] = m.series
				liveCount++
			case walOpDelete:
				delete(known, m.id)
				deleted[m.id] = true
				liveCount--
			case walOpUpsert:
				known[m.id] = m.series
			}
		}
		if got := st.Index().Len(); got != liveCount {
			t.Fatalf("recovered live count %d, want %d", got, liveCount)
		}
		if clean {
			if stats.TailError != nil || stats.DiscardedBytes != 0 {
				t.Fatalf("clean log reported tail %v, %d discarded bytes",
					stats.TailError, stats.DiscardedBytes)
			}
		} else {
			if stats.TailError == nil {
				t.Fatalf("dirty log reported no tail error")
			}
			if want := int64(len(wal)) - validEnd; stats.DiscardedBytes != want {
				t.Fatalf("discarded %d bytes, oracle says %d", stats.DiscardedBytes, want)
			}
		}
		for id, s := range known {
			got, want := st.Index().Row(int(id)), distance.ZNormalized(s)
			if got == nil {
				t.Fatalf("replayed id %d resolves to no row", id)
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("replayed id %d[%d] = %v, record encodes %v", id, j, got[j], want[j])
				}
			}
		}
		for id := range deleted {
			if st.Index().Row(int(id)) != nil {
				t.Fatalf("replayed delete of id %d left it resolvable", id)
			}
		}
		if err := st.Index().CheckInvariants(); err != nil {
			t.Fatalf("invariants after recovery: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		// Lenient recovery repaired the log in place (or replaced it), so a
		// second, strict recovery of the same directory must now be clean and
		// land on the identical index.
		st2, err := Recover(dir, DurableConfig{StrictWAL: true})
		if err != nil {
			t.Fatalf("strict re-recover after repair: %v", err)
		}
		s2 := st2.RecoveryStats()
		if s2.TailError != nil || s2.DiscardedBytes != 0 {
			t.Fatalf("repaired log still dirty: tail %v, %d discarded", s2.TailError, s2.DiscardedBytes)
		}
		if got := st2.Index().Len(); got != liveCount {
			t.Fatalf("re-recovered live count %d, want %d", got, liveCount)
		}
		st2.Close()
	})
}

// refMutation is one mutation the oracle says recovery must apply.
type refMutation struct {
	op     byte
	id     uint64
	series []float64 // raw record series; nil for delete
}

// refWALParse is an independent re-implementation of the WAL scan and replay
// rules, operating on raw bytes only — the differential oracle for
// FuzzWALReplay. It models the collection's mutation state (live ids, the id
// the next insert is assigned, the mutation sequence number) exactly as the
// replay does, and returns the log format version it recognized (0 for an
// unusable header), the mutations recovery must apply in order, the count it
// must skip as checkpoint-covered, the byte offset just past the last valid
// record, and whether the log ends cleanly on a record boundary. The
// checkpoint is a fresh build: checkpointLen live ids 0..checkpointLen-1,
// mutation seq 0.
func refWALParse(b []byte, seriesLen, checkpointLen int) (version int, muts []refMutation, skipped int, validEnd int64, clean bool) {
	var want [walHeaderSize]byte
	encodeWALHeader(want[:], walMagic, seriesLen)
	if len(b) < walHeaderSize {
		return 0, nil, 0, 0, false
	}
	version = 2
	if !bytes.Equal(b[:walHeaderSize], want[:]) {
		encodeWALHeader(want[:], walMagicV1, seriesLen)
		if !bytes.Equal(b[:walHeaderSize], want[:]) {
			return 0, nil, 0, 0, false
		}
		version = 1
	}
	validEnd = walHeaderSize
	off := walHeaderSize
	decodeSeries := func(p []byte) []float64 {
		s := make([]float64, seriesLen)
		for i := range s {
			s[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		return s
	}
	nextPub := uint64(checkpointLen)
	dead := map[uint64]bool{}
	var prev uint64
	seen := false

	if version == 1 {
		// v1 records are fixed-size, insert-only, sequenced by the assigned
		// global id.
		recSize := walRecordSizeV1(seriesLen)
		haveLen := uint64(checkpointLen)
		for {
			rem := len(b) - off
			if rem == 0 {
				return version, muts, skipped, validEnd, true
			}
			if rem < recSize {
				return version, muts, skipped, validEnd, false
			}
			r := b[off : off+recSize]
			payload := r[walRecordHeaderSize:]
			if binary.LittleEndian.Uint32(r[0:]) != uint32(len(payload)) {
				return version, muts, skipped, validEnd, false
			}
			if binary.LittleEndian.Uint32(r[4:]) != crc32.Checksum(payload, castagnoli) {
				return version, muts, skipped, validEnd, false
			}
			seq := binary.LittleEndian.Uint64(payload[0:])
			if seen && seq != prev+1 {
				return version, muts, skipped, validEnd, false
			}
			seen, prev = true, seq
			switch {
			case seq < haveLen:
				skipped++
			case seq > haveLen:
				return version, muts, skipped, validEnd, false
			default:
				if seq != nextPub { // assigned-id mismatch
					return version, muts, skipped, validEnd, false
				}
				muts = append(muts, refMutation{op: walOpInsert, id: seq, series: decodeSeries(payload[8:])})
				nextPub++
				haveLen++
			}
			off += recSize
			validEnd = int64(off)
		}
	}

	// v2: typed variable-size records sequenced by the mutation counter.
	fullPayload := 17 + 8*seriesLen
	var have uint64
	for {
		rem := len(b) - off
		if rem == 0 {
			return version, muts, skipped, validEnd, true
		}
		if rem < walRecordHeaderSize {
			return version, muts, skipped, validEnd, false
		}
		rh := b[off : off+walRecordHeaderSize]
		plen := binary.LittleEndian.Uint32(rh[0:])
		if plen != 17 && plen != uint32(fullPayload) {
			return version, muts, skipped, validEnd, false
		}
		if rem < walRecordHeaderSize+int(plen) {
			return version, muts, skipped, validEnd, false
		}
		p := b[off+walRecordHeaderSize : off+walRecordHeaderSize+int(plen)]
		if binary.LittleEndian.Uint32(rh[4:]) != crc32.Checksum(p, castagnoli) {
			return version, muts, skipped, validEnd, false
		}
		op := p[0]
		seq := binary.LittleEndian.Uint64(p[1:])
		id := binary.LittleEndian.Uint64(p[9:])
		switch op {
		case walOpInsert, walOpUpsert:
			if int(plen) != fullPayload {
				return version, muts, skipped, validEnd, false
			}
		case walOpDelete:
			if plen != 17 {
				return version, muts, skipped, validEnd, false
			}
		default:
			return version, muts, skipped, validEnd, false
		}
		if seen && seq != prev+1 {
			return version, muts, skipped, validEnd, false
		}
		seen, prev = true, seq
		switch {
		case seq < have:
			skipped++
		case seq > have:
			return version, muts, skipped, validEnd, false
		default:
			liveID := id < nextPub && !dead[id]
			switch op {
			case walOpInsert:
				if id != nextPub { // replay assigns ids sequentially
					return version, muts, skipped, validEnd, false
				}
				muts = append(muts, refMutation{op: op, id: id, series: decodeSeries(p[17:])})
				nextPub++
			case walOpDelete:
				if !liveID { // ErrNotFound/ErrTombstoned classify as corrupt
					return version, muts, skipped, validEnd, false
				}
				dead[id] = true
				muts = append(muts, refMutation{op: op, id: id})
			case walOpUpsert:
				if !liveID {
					return version, muts, skipped, validEnd, false
				}
				muts = append(muts, refMutation{op: op, id: id, series: decodeSeries(p[17:])})
			}
			have++
		}
		off += walRecordHeaderSize + int(plen)
		validEnd = int64(off)
	}
}
