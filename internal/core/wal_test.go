package core

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/distance"
)

// The durability suite: WAL encode/scan, atomic checkpointing, and recovery
// semantics that need no fault injection (manual file surgery stands in for
// the crash). The injected-crash matrix lives in wal_crash_test.go under the
// faultinject tag.

// durableIndex builds a small index for store tests, returning the build-time
// series count (Insert grows the collection, so ix.Len() moves).
func durableIndex(tb testing.TB, shards int) (*Index, int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(417))
	data := mixedMatrix(rng, 300, 32)
	ix, err := Build(data, Config{Method: SOFA, LeafCapacity: 32, SampleRate: 0.2, Shards: shards, Workers: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return ix, data.Len()
}

// extraSeries generates deterministic raw (un-normalized) insert payloads.
func extraSeries(seed int64, count, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for i := range out {
		s := make([]float64, n)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		out[i] = s
	}
	return out
}

func TestWALScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := createWAL(path, 8, 5, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	series := extraSeries(1, 4, 8)
	// Mixed mutation types: inserts, a delete, an upsert.
	if err := w.AppendInsert(100, series[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDelete(42); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUpsert(7, series[2]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(101, series[3]); err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 9 {
		t.Fatalf("next seq %d, want 9", w.NextSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []walEntry
	version, validEnd, tailErr, err := scanWAL(f, 8, func(e walEntry) error {
		cp := e
		cp.series = append([]float64(nil), e.series...)
		got = append(got, cp)
		return nil
	})
	if err != nil || tailErr != nil {
		t.Fatalf("scan: err=%v tail=%v", err, tailErr)
	}
	if version != 2 {
		t.Fatalf("version %d, want 2", version)
	}
	if want := int64(walHeaderSize + 3*walRecordSize(8) + walDeleteRecordSize); validEnd != want {
		t.Fatalf("validEnd %d, want %d", validEnd, want)
	}
	if len(got) != 4 {
		t.Fatalf("%d records, want 4", len(got))
	}
	wantOps := []byte{walOpInsert, walOpDelete, walOpUpsert, walOpInsert}
	wantIDs := []uint64{100, 42, 7, 101}
	for i, e := range got {
		if e.seq != uint64(5+i) {
			t.Fatalf("record %d seq %d, want %d", i, e.seq, 5+i)
		}
		if e.op != wantOps[i] || e.id != wantIDs[i] {
			t.Fatalf("record %d op=%d id=%d, want op=%d id=%d", i, e.op, e.id, wantOps[i], wantIDs[i])
		}
		if e.op == walOpDelete {
			if e.series != nil {
				t.Fatalf("delete record %d carries a series", i)
			}
			continue
		}
		for j := range e.series {
			if e.series[j] != series[i][j] {
				t.Fatalf("record %d value %d: %v != %v", i, j, e.series[j], series[i][j])
			}
		}
	}
}

func TestWALAppendLengthMismatch(t *testing.T) {
	w, err := createWAL(filepath.Join(t.TempDir(), "wal.log"), 8, 0, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendInsert(0, make([]float64, 7)); err == nil {
		t.Fatal("append of wrong-length insert succeeded")
	}
	if err := w.AppendUpsert(0, make([]float64, 9)); err == nil {
		t.Fatal("append of wrong-length upsert succeeded")
	}
}

// TestStoreRecoverReplaysWAL is the basic durability path: inserts after the
// initial checkpoint survive Close/Recover via WAL replay, with accurate
// stats, and the recovered index answers correctly.
func TestStoreRecoverReplaysWAL(t *testing.T) {
	for _, shards := range []int{1, 4} {
		ix, baseLen := durableIndex(t, shards)
		dir := t.TempDir()
		st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.RecoveryStats(); got.CheckpointLen != baseLen || got.CheckpointVersion != savedIndexVersion {
			t.Fatalf("S=%d create stats %+v", shards, got)
		}
		extras := extraSeries(2, 7, 32)
		for i, s := range extras {
			id, err := st.Insert(s)
			if err != nil {
				t.Fatal(err)
			}
			if int(id) != baseLen+i {
				t.Fatalf("S=%d insert %d got id %d, want %d", shards, i, id, baseLen+i)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		rec, err := Recover(dir, DurableConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		stats := rec.RecoveryStats()
		if stats.Replayed != len(extras) || stats.Skipped != 0 || stats.TailError != nil || stats.DiscardedBytes != 0 {
			t.Fatalf("S=%d recovery stats %+v, want %d replayed and a clean tail", shards, stats, len(extras))
		}
		if got, want := rec.Index().Len(), baseLen+len(extras); got != want {
			t.Fatalf("S=%d recovered %d series, want %d", shards, got, want)
		}
		// Replayed rows are the z-normalized inserts, bit for bit (replay
		// shares the Insert path, float64 end to end).
		for i, s := range extras {
			want := distance.ZNormalized(s)
			row := rec.Index().Row(baseLen + i)
			for j := range want {
				if row[j] != want[j] {
					t.Fatalf("S=%d replayed row %d diverges at %d", shards, i, j)
				}
			}
		}
		if err := rec.Index().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreCheckpointResetsWAL: a checkpoint publishes the container and
// empties the log, so the next recovery replays nothing.
func TestStoreCheckpointResetsWAL(t *testing.T) {
	ix, baseLen := durableIndex(t, 2)
	dir := t.TempDir()
	st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	extras := extraSeries(3, 5, 32)
	for _, s := range extras {
		if _, err := st.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if st.WALSize() <= walHeaderSize {
		t.Fatalf("WAL size %d after %d inserts", st.WALSize(), len(extras))
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st.WALSize() != walHeaderSize {
		t.Fatalf("WAL size %d after checkpoint, want %d", st.WALSize(), walHeaderSize)
	}
	// Inserts keep flowing after a checkpoint, with ids continuing.
	if id, err := st.Insert(extras[0]); err != nil || int(id) != baseLen+len(extras) {
		t.Fatalf("post-checkpoint insert: id=%d err=%v", id, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	stats := rec.RecoveryStats()
	if stats.CheckpointLen != baseLen+len(extras) || stats.Replayed != 1 || stats.Skipped != 0 {
		t.Fatalf("recovery stats %+v, want checkpoint %d + 1 replayed", stats, baseLen+len(extras))
	}
}

// TestStoreIdempotentReplay models the crash window between a checkpoint's
// rename and its WAL truncation: the container already covers the log's
// records, so recovery must skip them by sequence number, not re-apply them.
func TestStoreIdempotentReplay(t *testing.T) {
	ix, baseLen := durableIndex(t, 2)
	dir := t.TempDir()
	st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	extras := extraSeries(4, 6, 32)
	for _, s := range extras {
		if _, err := st.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint that "crashes" after publishing the container but before
	// truncating the WAL: publish by hand, then abandon the store.
	if err := SaveFile(st.Index(), ContainerPath(dir)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	abandonStore(st)

	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	stats := rec.RecoveryStats()
	if stats.Skipped != len(extras) || stats.Replayed != 0 || stats.TailError != nil {
		t.Fatalf("recovery stats %+v, want all %d records skipped", stats, len(extras))
	}
	if got, want := rec.Index().Len(), baseLen+len(extras); got != want {
		t.Fatalf("recovered %d series, want %d (idempotent replay duplicated inserts?)", got, want)
	}
}

// abandonStore simulates a crash: the store's file handle is closed raw —
// no sync, no checkpoint, no truncation — and the struct dropped.
func abandonStore(st *Store) { st.wal.f.Close() }

// TestRecoverTornTail: a WAL ending mid-record (the residue of a crash
// mid-append) recovers the valid prefix, classifies the tail as truncated,
// and counts the discarded bytes; StrictWAL refuses instead. The repaired
// log accepts further inserts whose ids continue the recovered prefix.
func TestRecoverTornTail(t *testing.T) {
	ix, baseLen := durableIndex(t, 2)
	dir := t.TempDir()
	st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	extras := extraSeries(5, 5, 32)
	for _, s := range extras {
		if _, err := st.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	abandonStore(st)

	// Tear the last record: cut 11 bytes off the file.
	const cut = 11
	path := WALPath(dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-cut); err != nil {
		t.Fatal(err)
	}

	if _, err := Recover(dir, DurableConfig{StrictWAL: true}); !errors.Is(err, ErrRecoveryTruncated) {
		t.Fatalf("strict recover err = %v, want ErrRecoveryTruncated", err)
	}

	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stats := rec.RecoveryStats()
	if stats.Replayed != len(extras)-1 {
		t.Fatalf("replayed %d, want %d", stats.Replayed, len(extras)-1)
	}
	if !errors.Is(stats.TailError, ErrRecoveryTruncated) {
		t.Fatalf("tail error %v, want ErrRecoveryTruncated", stats.TailError)
	}
	if want := int64(walRecordSize(32) - cut); stats.DiscardedBytes != want {
		t.Fatalf("discarded %d bytes, want %d", stats.DiscardedBytes, want)
	}
	if got, want := rec.Index().Len(), baseLen+len(extras)-1; got != want {
		t.Fatalf("recovered %d series, want %d", got, want)
	}
	// The torn tail was cut off: new inserts land where the lost record was.
	id, err := rec.Insert(extras[len(extras)-1])
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != baseLen+len(extras)-1 {
		t.Fatalf("post-repair insert id %d, want %d", id, baseLen+len(extras)-1)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	// And the repaired log replays cleanly.
	rec2, err := Recover(dir, DurableConfig{StrictWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if got, want := rec2.Index().Len(), baseLen+len(extras); got != want {
		t.Fatalf("re-recovered %d series, want %d", got, want)
	}
}

// TestRecoverCorruptRecord: a bit flip inside a record's payload fails its
// checksum; everything before it recovers, everything from it on is
// discarded as corrupt — even records after the flip that would checksum
// fine, because nothing past a corrupt record can be trusted.
func TestRecoverCorruptRecord(t *testing.T) {
	ix, baseLen := durableIndex(t, 2)
	dir := t.TempDir()
	st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	extras := extraSeries(6, 5, 32)
	for _, s := range extras {
		if _, err := st.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	abandonStore(st)

	// Flip one bit in the middle of record 2's payload.
	path := WALPath(dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := walHeaderSize + 2*walRecordSize(32) + walRecordHeaderSize + 20
	raw[off] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Recover(dir, DurableConfig{StrictWAL: true}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("strict recover err = %v, want ErrWALCorrupt", err)
	}
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	stats := rec.RecoveryStats()
	if stats.Replayed != 2 || !errors.Is(stats.TailError, ErrWALCorrupt) {
		t.Fatalf("recovery stats %+v, want 2 replayed and a corrupt tail", stats)
	}
	if want := int64(3 * walRecordSize(32)); stats.DiscardedBytes != want {
		t.Fatalf("discarded %d bytes, want %d (corrupt record and everything after)", stats.DiscardedBytes, want)
	}
	if got, want := rec.Index().Len(), baseLen+2; got != want {
		t.Fatalf("recovered %d series, want %d", got, want)
	}
}

// TestRecoverBadHeader: an unusable WAL header (torn or corrupt before the
// first record boundary) discards the whole log and starts a fresh one; the
// checkpoint alone survives.
func TestRecoverBadHeader(t *testing.T) {
	ix, baseLen := durableIndex(t, 2)
	dir := t.TempDir()
	st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(extraSeries(7, 1, 32)[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	abandonStore(st)

	for name, corrupt := range map[string]func([]byte) []byte{
		"short":   func(raw []byte) []byte { return raw[:walHeaderSize-3] },
		"bitflip": func(raw []byte) []byte { raw[3] ^= 0x01; return raw },
	} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(WALPath(dir))
			if err != nil {
				t.Fatal(err)
			}
			sub := t.TempDir()
			if err := copyFileForTest(ContainerPath(dir), ContainerPath(sub)); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(WALPath(sub), corrupt(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			rec, err := Recover(sub, DurableConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			stats := rec.RecoveryStats()
			if stats.Replayed != 0 || stats.TailError == nil || stats.DiscardedBytes == 0 {
				t.Fatalf("recovery stats %+v, want whole log discarded", stats)
			}
			if got := rec.Index().Len(); got != baseLen {
				t.Fatalf("recovered %d series, want checkpoint's %d", got, baseLen)
			}
			// The fresh log works: insert, close, recover again.
			if _, err := rec.Insert(extraSeries(8, 1, 32)[0]); err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			rec2, err := Recover(sub, DurableConfig{StrictWAL: true})
			if err != nil {
				t.Fatal(err)
			}
			defer rec2.Close()
			if got := rec2.Index().Len(); got != baseLen+1 {
				t.Fatalf("re-recovered %d series, want %d", got, baseLen+1)
			}
		})
	}
}

// TestRecoverMissingWAL: a directory holding only a container (a crash
// between CreateStore's checkpoint and its WAL creation) recovers with a
// fresh empty log.
func TestRecoverMissingWAL(t *testing.T) {
	ix, baseLen := durableIndex(t, 2)
	dir := t.TempDir()
	if err := SaveFile(ix, ContainerPath(dir)); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Index().Len(); got != baseLen {
		t.Fatalf("recovered %d series, want %d", got, baseLen)
	}
	if _, err := os.Stat(WALPath(dir)); err != nil {
		t.Fatalf("fresh WAL not created: %v", err)
	}
}

// TestCreateStoreRefusesExisting: initializing over a live durability
// directory is refused — two writers must not clobber one store.
func TestCreateStoreRefusesExisting(t *testing.T) {
	ix, _ := durableIndex(t, 1)
	dir := t.TempDir()
	st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := CreateStore(dir, ix, DurableConfig{}); err == nil {
		t.Fatal("CreateStore over an existing store succeeded")
	}
}

// TestStoreRoundTripProperty: for S ∈ {1, 4}, a store that interleaves
// inserts with checkpoints and crashes (abandon, no clean shutdown) recovers
// to answer queries with the same ids and distances (1e-6 relative — the
// checkpointed prefix crosses the container's f32 round trip, the reference
// does not) as a reference index holding the identical history.
func TestStoreRoundTripProperty(t *testing.T) {
	for _, shards := range []int{1, 4} {
		ix, baseLen := durableIndex(t, shards)
		dir := t.TempDir()
		st, err := CreateStore(dir, ix, DurableConfig{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		extras := extraSeries(9, 9, 32)
		for i, s := range extras {
			if _, err := st.Insert(s); err != nil {
				t.Fatal(err)
			}
			if i == 2 || i == 5 {
				if err := st.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		abandonStore(st)

		rec, err := Recover(dir, DurableConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		stats := rec.RecoveryStats()
		if stats.Replayed != 3 || stats.CheckpointLen != baseLen+6 {
			t.Fatalf("S=%d recovery stats %+v, want 3 replayed over checkpoint %d", shards, stats, baseLen+6)
		}

		// Reference: the same history applied to a never-persisted index.
		ref, _ := durableIndex(t, shards)
		for _, s := range extras {
			if _, err := ref.Insert(s); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(23))
		queries := mixedMatrix(rng, 5, 32)
		rs, ss := ref.NewSearcher(), rec.Index().NewSearcher()
		for qi := 0; qi < queries.Len(); qi++ {
			want, err := rs.Search(queries.Row(qi), 10)
			if err != nil {
				t.Fatal(err)
			}
			wantCopy := append([]Result(nil), want...)
			got, err := ss.Search(queries.Row(qi), 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(wantCopy) {
				t.Fatalf("S=%d q=%d: %d results, want %d", shards, qi, len(got), len(wantCopy))
			}
			for r := range got {
				if got[r].ID != wantCopy[r].ID {
					t.Fatalf("S=%d q=%d rank %d: id %d, want %d", shards, qi, r, got[r].ID, wantCopy[r].ID)
				}
				if d := math.Abs(got[r].Dist - wantCopy[r].Dist); d > 1e-6*(1+wantCopy[r].Dist) {
					t.Fatalf("S=%d q=%d rank %d: dist %v, want %v", shards, qi, r, got[r].Dist, wantCopy[r].Dist)
				}
			}
		}
	}
}

// TestStoreSearchZeroAlloc: the WAL's presence must not cost the query path
// its zero-allocation steady state — zero allocs on a durable store, and a
// store that has absorbed inserts allocates exactly what the same inserts
// cost without any WAL (the insert path's own per-query overhead, measured
// against a WAL-free twin so a WAL regression cannot hide behind it).
func TestStoreSearchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool allocation counts")
	}
	searchAllocs := func(ix *Index, query []float64) float64 {
		s := ix.NewSearcher()
		for i := 0; i < 3; i++ {
			if _, err := s.Search(query, 10); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := s.Search(query, 10); err != nil {
				t.Fatal(err)
			}
		})
	}
	rng := rand.New(rand.NewSource(77))
	query := mixedMatrix(rng, 1, 32).Row(0)
	extras := extraSeries(10, 3, 32)

	// Single shard is the engine's zero-alloc serial path (multi-shard
	// Search pays a fixed goroutine fan-out, WAL or not): absolute zero.
	ix1, _ := durableIndex(t, 1)
	st1, err := CreateStore(t.TempDir(), ix1, DurableConfig{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	for _, s := range extras {
		if _, err := st1.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if avg := searchAllocs(st1.Index(), query); avg != 0 {
		t.Errorf("steady-state Search on a durable store allocates %v allocs/op, want 0", avg)
	}

	// Sharded: the WAL must cost exactly nothing on top of a WAL-free twin
	// holding the identical history.
	ix2, _ := durableIndex(t, 2)
	st2, err := CreateStore(t.TempDir(), ix2, DurableConfig{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, s := range extras {
		if _, err := st2.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	twin, _ := durableIndex(t, 2)
	for _, s := range extras {
		if _, err := twin.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	withWAL, without := searchAllocs(st2.Index(), query), searchAllocs(twin, query)
	if withWAL != without {
		t.Errorf("steady-state Search allocates %v allocs/op with the WAL vs %v without", withWAL, without)
	}
}

// TestSaveFileAtomic: SaveFile over an existing container replaces it in one
// step and leaves no temp files behind (the injected mid-save crash variant
// lives in wal_crash_test.go).
func TestSaveFileAtomic(t *testing.T) {
	ixA, baseLenA := durableIndex(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.sofa")
	if err := SaveFile(ixA, path); err != nil {
		t.Fatal(err)
	}
	// Grow and re-save over the same path.
	for _, s := range extraSeries(11, 4, 32) {
		if _, err := ixA.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveFile(ixA, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Len(), baseLenA+4; got != want {
		t.Fatalf("reloaded %d series, want %d", got, want)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		for _, e := range entries {
			t.Logf("left behind: %s", e.Name())
		}
		t.Fatalf("%d directory entries after SaveFile, want 1 (temp file leaked?)", len(entries))
	}
}

// copyFileForTest duplicates a file (test fixture plumbing).
func copyFileForTest(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}
