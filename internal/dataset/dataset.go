// Package dataset provides synthetic stand-ins for the paper's benchmark:
// the 17 named datasets of Table I (1 billion series, 1 TB — unavailable
// offline) plus a UCR-archive-like collection for the TLB ablation.
//
// Each named dataset is replaced by a generator that reproduces the two
// properties the paper's analysis depends on:
//
//   - the *spectral profile* — how much Fourier variance sits in high
//     coefficients. This is what makes PAA/SAX collapse to a flat line
//     (paper Fig. 1) and drives SOFA's speedup over MESSI (Fig. 12/13);
//   - the *value distribution* — Gaussian vs heavy-tailed vs non-negative
//     histogram-like (Fig. 1 bottom), which breaks SAX's N(0,1) assumption.
//
// Dataset sizes are scaled from the paper's 0.5M–100M series down to
// laptop-scale defaults while keeping the relative ordering.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/distance"
)

// Family is the broad generator class behind a dataset.
type Family int

const (
	// Seismic series: microseism background plus a damped high-frequency
	// event burst (P-wave onset), as in the SeisBench-derived datasets.
	Seismic Family = iota
	// VectorANN series: unordered descriptor vectors (SIFT1b, BigANN) —
	// effectively white across "positions", heavy-tailed, non-negative.
	VectorANN
	// DeepDescriptor series: L2-normalized deep embeddings (Deep1b) —
	// smooth, low-frequency dominated.
	DeepDescriptor
	// RedNoise series: long-memory random-walk-like signals (Astro AGN
	// variability, smooth biomedical signals like SALD).
	RedNoise
	// PhaseCurve series: smooth monotone-ish arrival curves
	// (ISC-EHB depth phases).
	PhaseCurve
)

func (f Family) String() string {
	switch f {
	case Seismic:
		return "seismic"
	case VectorANN:
		return "vector"
	case DeepDescriptor:
		return "deep"
	case RedNoise:
		return "rednoise"
	case PhaseCurve:
		return "phase"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Spec describes one synthetic dataset.
type Spec struct {
	Name   string
	Count  int // series to generate (scaled from the paper's Table I)
	Length int // series length (the paper's real lengths)
	Family Family

	// HFShare in [0,1] steers the fraction of signal energy placed in the
	// upper half of the spectrum — the knob behind the paper's Fig. 12/13
	// ordering (LenDB ~0.95 ... Deep1B ~0.15).
	HFShare float64
	// Burst enables a seismic event burst.
	Burst bool
	// HeavyTail draws amplitudes from an exponential rather than Gaussian
	// distribution (vector datasets; breaks the N(0,1) assumption).
	HeavyTail bool
	// PaperCount and note document the original dataset for EXPERIMENTS.md.
	PaperCount int64
}

// Catalog returns the 17 datasets of the paper's Table I with scaled
// counts. The scale factor keeps relative sizes while bounding the total
// benchmark below ~1 GB in memory.
func Catalog() []Spec {
	mk := func(name string, paperCount int64, length int, fam Family, hf float64, burst, heavy bool) Spec {
		return Spec{
			Name:       name,
			Count:      scaledCount(paperCount),
			Length:     length,
			Family:     fam,
			HFShare:    hf,
			Burst:      burst,
			HeavyTail:  heavy,
			PaperCount: paperCount,
		}
	}
	return []Spec{
		mk("Astro", 100_000_000, 256, RedNoise, 0.35, false, false),
		mk("BigANN", 100_000_000, 100, VectorANN, 0.65, false, true),
		mk("Deep1b", 100_000_000, 96, DeepDescriptor, 0.15, false, false),
		mk("ETHZ", 4_999_932, 256, Seismic, 0.30, true, false),
		mk("Iquique", 578_853, 256, Seismic, 0.45, true, false),
		mk("ISC-EHBPhases", 100_000_000, 256, PhaseCurve, 0.20, false, false),
		mk("LenDB", 37_345_260, 256, Seismic, 0.95, true, false),
		mk("Meier2019JGR", 6_361_998, 256, Seismic, 0.88, true, false),
		mk("NEIC", 93_473_541, 256, Seismic, 0.33, true, false),
		mk("OBS", 15_508_794, 256, Seismic, 0.70, true, false),
		mk("OBST2024", 4_160_286, 256, Seismic, 0.35, true, false),
		mk("PNW", 31_982_766, 256, Seismic, 0.25, true, false),
		mk("SALD", 100_000_000, 128, RedNoise, 0.18, false, false),
		mk("SCEDC", 100_000_000, 256, Seismic, 0.90, true, false),
		mk("SIFT1b", 100_000_000, 128, VectorANN, 0.80, false, true),
		mk("STEAD", 87_323_433, 256, Seismic, 0.32, true, false),
		mk("TXED", 35_851_641, 256, Seismic, 0.25, true, false),
	}
}

// scaledCount maps the paper's dataset sizes (578k..100M) into a laptop
// range (2k..20k), preserving order.
func scaledCount(paperCount int64) int {
	c := int(paperCount / 5000)
	if c < 2000 {
		c = 2000
	}
	if c > 20000 {
		c = 20000
	}
	return c
}

// ByName returns the catalog spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Generate produces the dataset's series matrix, z-normalized, from a
// deterministic seed.
func Generate(spec Spec, seed int64) (*distance.Matrix, error) {
	return generate(spec, spec.Count, seed)
}

// GenerateQueries produces a query set drawn from the same generator with a
// disjoint seed stream, mirroring the paper's held-out 100-query sets.
func GenerateQueries(spec Spec, count int, seed int64) (*distance.Matrix, error) {
	return generate(spec, count, seed^0x5EED_C0FFEE)
}

func generate(spec Spec, count int, seed int64) (*distance.Matrix, error) {
	if count < 1 {
		return nil, fmt.Errorf("dataset: count must be >= 1, got %d", count)
	}
	if spec.Length < 8 {
		return nil, fmt.Errorf("dataset: length must be >= 8, got %d", spec.Length)
	}
	if spec.HFShare < 0 || spec.HFShare > 1 {
		return nil, fmt.Errorf("dataset: HFShare %v out of [0,1]", spec.HFShare)
	}
	m := distance.NewMatrix(count, spec.Length)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < count; i++ {
		row := m.Row(i)
		switch spec.Family {
		case Seismic:
			genSeismic(rng, row, spec)
		case VectorANN:
			genVector(rng, row, spec)
		case DeepDescriptor:
			genDeep(rng, row)
		case RedNoise:
			genRedNoise(rng, row, spec)
		case PhaseCurve:
			genPhaseCurve(rng, row, spec)
		default:
			return nil, fmt.Errorf("dataset: unknown family %v", spec.Family)
		}
	}
	m.ZNormalizeAll()
	return m, nil
}

// genSeismic builds microseism background (low-frequency noise) plus, for
// Burst specs, a damped oscillatory event whose carrier frequency rises
// with HFShare — the high-frequency content PAA averages away.
//
// Frequencies are integer DFT bins with only small jitter: like a real
// seismic band, the dataset's energy concentrates in a handful of Fourier
// coefficients whose real/imaginary values vary strongly across series
// (random phase and amplitude). That concentrated high variance is what
// SFA's variance selection exploits and PAA destroys.
func genSeismic(rng *rand.Rand, row []float64, spec Spec) {
	n := len(row)
	lowW := 1 - spec.HFShare
	hiW := spec.HFShare
	// Background: integrated noise (red spectrum).
	v := 0.0
	for j := range row {
		v += rng.NormFloat64()
		row[j] = lowW * v * 0.15
	}
	// Ambient band oscillation: sinusoids at the dataset's characteristic
	// integer bins (energy lands exactly in those coefficients). Bins are
	// absolute coefficient indices: the paper's "high frequency" regime is
	// energy above PAA's resolution (~coefficient 8 for l=16 words) but
	// within SFA's candidate pool (first 16 coefficients) — Fig. 13 reports
	// mean selected indices of 6..12.
	base := 2 + int(spec.HFShare*13) // bin in [2, 15]
	if base > n/2-3 {
		base = n/2 - 3
	}
	for h := 0; h < 2; h++ {
		f := float64(base + rng.Intn(3) - 1) // jitter within the band: +-1 bin
		ph := rng.Float64() * 2 * math.Pi
		amp := hiW * (0.4 + rng.Float64()*0.8)
		for j := range row {
			row[j] += amp * math.Sin(2*math.Pi*f*float64(j)/float64(n)+ph)
		}
	}
	// Event burst: damped oscillation at a random onset in the middle half
	// (the P-wave the paper's queries are aligned to). The decay spreads a
	// little energy around the carrier bin, as real wavelets do.
	if spec.Burst {
		onset := n/4 + rng.Intn(n/2)
		carrier := float64(base + rng.Intn(3) - 1)
		decay := 16 + rng.Float64()*32
		amp := 1.5 + rng.Float64()*2
		ph := rng.Float64() * 2 * math.Pi
		for j := onset; j < n; j++ {
			tt := float64(j - onset)
			row[j] += amp * math.Exp(-tt/decay) * math.Sin(2*math.Pi*carrier*float64(j)/float64(n)+ph)
		}
	}
	// Sensor noise.
	for j := range row {
		row[j] += 0.05 * rng.NormFloat64()
	}
}

// genVector builds SIFT/BigANN-like descriptor vectors: non-negative,
// heavy-tailed, spatially clustered magnitudes with no serial smoothness —
// which puts variance everywhere in the spectrum.
func genVector(rng *rand.Rand, row []float64, spec Spec) {
	n := len(row)
	// A few "active" regions of the histogram get large values.
	for j := range row {
		row[j] = rng.ExpFloat64() * 0.3
	}
	actives := 2 + rng.Intn(4)
	for a := 0; a < actives; a++ {
		center := rng.Intn(n)
		width := 1 + rng.Intn(4)
		amp := 2 + rng.ExpFloat64()*3
		for d := -width; d <= width; d++ {
			j := center + d
			if j >= 0 && j < n {
				row[j] += amp * math.Exp(-float64(d*d)/float64(width))
			}
		}
	}
	// HFShare controls position-to-position decorrelation: shuffle-like
	// high-frequency ripple.
	ripple := spec.HFShare
	for j := range row {
		row[j] += ripple * rng.ExpFloat64() * math.Abs(math.Sin(float64(j)*2.39996))
	}
}

// genDeep builds Deep1b-like embeddings: low-frequency smooth profiles (deep
// features are strongly correlated across adjacent dimensions after PCA-like
// training), plus small noise.
func genDeep(rng *rand.Rand, row []float64) {
	n := len(row)
	// Sum of a handful of low-frequency harmonics.
	for h := 1; h <= 4; h++ {
		amp := rng.NormFloat64() / float64(h)
		ph := rng.Float64() * 2 * math.Pi
		for j := range row {
			row[j] += amp * math.Sin(2*math.Pi*float64(h)*float64(j)/float64(n)+ph)
		}
	}
	for j := range row {
		row[j] += 0.08 * rng.NormFloat64()
	}
}

// genRedNoise builds AR(1)-style long-memory signals (Astro hard-X-ray
// variability, SALD biomedical profiles).
func genRedNoise(rng *rand.Rand, row []float64, spec Spec) {
	phi := 0.995 - spec.HFShare*0.25 // higher HFShare -> whiter noise
	v := rng.NormFloat64()
	for j := range row {
		v = phi*v + rng.NormFloat64()*math.Sqrt(1-phi*phi)
		row[j] = v
	}
	// Occasional flare (Astro-like).
	if rng.Float64() < 0.3 {
		onset := rng.Intn(len(row))
		amp := 1 + rng.ExpFloat64()
		decay := 5 + rng.Float64()*20
		for j := onset; j < len(row); j++ {
			row[j] += amp * math.Exp(-float64(j-onset)/decay)
		}
	}
}

// genPhaseCurve builds smooth monotone-trend curves with a knee, like
// travel-time/depth-phase profiles.
func genPhaseCurve(rng *rand.Rand, row []float64, spec Spec) {
	n := len(row)
	slope := rng.NormFloat64()
	knee := n/4 + rng.Intn(n/2)
	bend := rng.NormFloat64() * 2
	for j := range row {
		x := float64(j) / float64(n)
		row[j] = slope * x
		if j > knee {
			row[j] += bend * (float64(j-knee) / float64(n))
		}
	}
	// Light ripple so the series are not exactly collinear.
	f := (0.02 + spec.HFShare*0.1) * float64(n)
	ph := rng.Float64() * 2 * math.Pi
	for j := range row {
		row[j] += 0.1*math.Sin(2*math.Pi*f*float64(j)/float64(n)+ph) + 0.03*rng.NormFloat64()
	}
}
