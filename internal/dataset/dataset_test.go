package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/distance"
	"repro/internal/fft"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 17 {
		t.Fatalf("catalog has %d datasets, want 17", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Errorf("duplicate dataset %q", s.Name)
		}
		seen[s.Name] = true
		if s.Count < 2000 || s.Count > 20000 {
			t.Errorf("%s: scaled count %d out of range", s.Name, s.Count)
		}
		if s.Length < 96 || s.Length > 256 {
			t.Errorf("%s: length %d unexpected", s.Name, s.Length)
		}
		if s.HFShare < 0 || s.HFShare > 1 {
			t.Errorf("%s: HFShare %v", s.Name, s.HFShare)
		}
		if s.PaperCount <= 0 {
			t.Errorf("%s: missing paper count", s.Name)
		}
	}
	// Paper total: 1,017,586,504 series across Table I.
	var total int64
	for _, s := range cat {
		total += s.PaperCount
	}
	if total != 1_017_586_504 {
		t.Errorf("paper counts sum to %d, want 1,017,586,504", total)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("LenDB")
	if err != nil || s.Name != "LenDB" {
		t.Errorf("ByName(LenDB): %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestGenerateDeterministicAndNormalized(t *testing.T) {
	spec, _ := ByName("Iquique")
	spec.Count = 50
	a, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	// Rows are z-normalized.
	for i := 0; i < a.Len(); i++ {
		var sum, sumSq float64
		for _, v := range a.Row(i) {
			sum += v
			sumSq += v * v
		}
		n := float64(spec.Length)
		if math.Abs(sum/n) > 1e-9 || math.Abs(sumSq/n-1) > 1e-9 {
			t.Fatalf("row %d not z-normalized", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	spec, _ := ByName("Astro")
	spec.Count = 0
	if _, err := Generate(spec, 1); err == nil {
		t.Error("expected count error")
	}
	spec.Count = 10
	spec.Length = 4
	if _, err := Generate(spec, 1); err == nil {
		t.Error("expected length error")
	}
	spec.Length = 64
	spec.HFShare = 2
	if _, err := Generate(spec, 1); err == nil {
		t.Error("expected HFShare error")
	}
}

func TestQueriesDifferFromData(t *testing.T) {
	spec, _ := ByName("SCEDC")
	spec.Count = 30
	data, _ := Generate(spec, 1)
	queries, err := GenerateQueries(spec, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if queries.Len() != 10 || queries.Stride != spec.Length {
		t.Fatalf("queries shape %dx%d", queries.Len(), queries.Stride)
	}
	// No query should be byte-identical to a data row.
	for qi := 0; qi < queries.Len(); qi++ {
		for di := 0; di < data.Len(); di++ {
			if distance.SquaredED(queries.Row(qi), data.Row(di)) < 1e-12 {
				t.Fatalf("query %d duplicates data row %d", qi, di)
			}
		}
	}
}

// highFreqEnergyShare computes the fraction of spectral energy above
// coefficient 8 — PAA's resolution limit for 16-segment words, which is the
// property the HFShare knob must control.
func highFreqEnergyShare(t *testing.T, m *distance.Matrix) float64 {
	t.Helper()
	plan := fft.MustPlan(m.Stride)
	var hi, total float64
	cut := 8
	for i := 0; i < m.Len(); i++ {
		spec, err := plan.FullSpectrumReal(m.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < m.Stride/2+1; k++ {
			mag2 := spec[2*k]*spec[2*k] + spec[2*k+1]*spec[2*k+1]
			total += mag2
			if k > cut {
				hi += mag2
			}
		}
	}
	return hi / total
}

// The central substitution claim: high-HFShare datasets really concentrate
// spectral energy in high coefficients, low-HFShare datasets do not.
func TestSpectralProfileOrdering(t *testing.T) {
	high, _ := ByName("LenDB") // HFShare 0.95
	low, _ := ByName("SALD")   // HFShare 0.18
	high.Count, low.Count = 100, 100
	// Use the same length for a fair spectral comparison.
	high.Length, low.Length = 128, 128
	mh, err := Generate(high, 3)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Generate(low, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh := highFreqEnergyShare(t, mh)
	sl := highFreqEnergyShare(t, ml)
	if sh <= 2*sl {
		t.Errorf("LenDB-like high-freq share %v should far exceed SALD-like %v", sh, sl)
	}
	if sh < 0.5 {
		t.Errorf("LenDB-like dataset should be high-frequency dominated, got %v", sh)
	}
}

func TestAllCatalogGeneratorsRun(t *testing.T) {
	for _, spec := range Catalog() {
		spec.Count = 20
		m, err := Generate(spec, 11)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if m.Len() != 20 || m.Stride != spec.Length {
			t.Fatalf("%s: wrong shape", spec.Name)
		}
		for i := 0; i < m.Len(); i++ {
			for _, v := range m.Row(i) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: non-finite value", spec.Name)
				}
			}
		}
	}
}

func TestUCRCatalog(t *testing.T) {
	cat := UCRCatalog()
	if len(cat) != 24 {
		t.Fatalf("UCR catalog has %d datasets, want 24", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Errorf("duplicate %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestGenerateUCR(t *testing.T) {
	for _, spec := range UCRCatalog()[:6] {
		train, test, err := GenerateUCR(spec, 5)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if train.Len() != spec.TrainSize || test.Len() != spec.TestSize {
			t.Fatalf("%s: split sizes %d/%d", spec.Name, train.Len(), test.Len())
		}
		if train.Stride != spec.Length {
			t.Fatalf("%s: length %d", spec.Name, train.Stride)
		}
	}
	bad := UCRSpec{TrainSize: 0, TestSize: 1, Length: 64}
	if _, _, err := GenerateUCR(bad, 1); err == nil {
		t.Error("expected size error")
	}
	bad = UCRSpec{TrainSize: 1, TestSize: 1, Length: 4}
	if _, _, err := GenerateUCR(bad, 1); err == nil {
		t.Error("expected length error")
	}
}

func TestUCRShapeStrings(t *testing.T) {
	for _, s := range []UCRShape{ShapeSine, ShapeWalk, ShapeECG, ShapeStep, ShapeChirp, ShapeNoiseBurst, UCRShape(42)} {
		if s.String() == "" {
			t.Errorf("empty string for shape %d", s)
		}
	}
	for _, f := range []Family{Seismic, VectorANN, DeepDescriptor, RedNoise, PhaseCurve, Family(42)} {
		if f.String() == "" {
			t.Errorf("empty string for family %d", f)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	spec, _ := ByName("OBS")
	spec.Count = 25
	m, err := Generate(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "obs.sofads")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != m.Len() || got.Stride != m.Stride {
		t.Fatalf("shape %dx%d", got.Len(), got.Stride)
	}
	for i := 0; i < m.Len(); i++ {
		a, b := m.Row(i), got.Row(i)
		for j := range a {
			// Round trip through float32 loses precision but must be close.
			if math.Abs(a[j]-b[j]) > 1e-6 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := Save(path, mustMatrix(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for missing file")
	}
}

func mustMatrix(t *testing.T) *distance.Matrix {
	t.Helper()
	m := distance.NewMatrix(2, 8)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	return m
}

func TestLoadRejectsBadMagicAndTruncation(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := osWriteFile(bad, []byte("NOTMAGIC plus some trailing bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("expected bad-magic error")
	}
	// Valid magic but truncated header.
	short := filepath.Join(dir, "short")
	if err := osWriteFile(short, []byte("SOFADS1\n\x01\x00")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(short); err == nil {
		t.Error("expected truncated-header error")
	}
	// Valid header claiming more rows than present.
	m := distance.NewMatrix(4, 8)
	full := filepath.Join(dir, "full")
	if err := Save(full, m); err != nil {
		t.Fatal(err)
	}
	data, err := osReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc")
	if err := osWriteFile(trunc, data[:len(data)-10]); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc); err == nil {
		t.Error("expected truncated-data error")
	}
	// Zero-count header.
	zero := filepath.Join(dir, "zero")
	hdr := append([]byte("SOFADS1\n"), make([]byte, 16)...)
	if err := osWriteFile(zero, hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(zero); err == nil {
		t.Error("expected empty-dataset error")
	}
}

func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
func osReadFile(path string) ([]byte, error)     { return os.ReadFile(path) }
