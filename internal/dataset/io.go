package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/distance"
)

// Binary dataset format (little-endian):
//
//	magic   [8]byte  "SOFADS1\n"
//	count   uint64
//	length  uint64
//	data    count*length float32 values, row-major
//
// float32 on disk matches the paper's datasets (stored as 4-byte floats;
// "1 billion series, 1 TB").
var magic = [8]byte{'S', 'O', 'F', 'A', 'D', 'S', '1', '\n'}

// Save writes the matrix to path in the binary dataset format.
func Save(path string, m *distance.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeTo(w, m); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeTo(w io.Writer, m *distance.Matrix) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.Len()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.Stride))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4*m.Stride)
	for i := 0; i < m.Len(); i++ {
		row := m.Row(i)
		for j, v := range row {
			binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(float32(v)))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a matrix from a file in the binary dataset format.
func Load(path string) (*distance.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readFrom(bufio.NewReaderSize(f, 1<<20))
}

func readFrom(r io.Reader) (*distance.Matrix, error) {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("dataset: bad magic %q (not a SOFA dataset file)", got)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[0:])
	length := binary.LittleEndian.Uint64(hdr[8:])
	if count == 0 || length == 0 {
		return nil, fmt.Errorf("dataset: empty dataset (count=%d, length=%d)", count, length)
	}
	const maxElems = 1 << 31 // ~17 GB of f64; refuse obviously corrupt headers
	if count*length > maxElems {
		return nil, fmt.Errorf("dataset: implausible size %dx%d", count, length)
	}
	m := distance.NewMatrix(int(count), int(length))
	buf := make([]byte, 4*length)
	for i := 0; i < int(count); i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("dataset: reading row %d: %w", i, err)
		}
		row := m.Row(i)
		for j := range row {
			row[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:])))
		}
	}
	return m, nil
}
