package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/distance"
)

// UCRSpec describes one synthetic UCR-archive-like dataset used by the TLB
// ablation (paper Table V / Fig. 14 left, which uses ~120 UCR datasets).
// Each has a train split (used to learn the SFA representation and as the
// search collection) and a test split (used as queries).
type UCRSpec struct {
	Name      string
	TrainSize int
	TestSize  int
	Length    int
	Shape     UCRShape
	NoiseStd  float64
}

// UCRShape selects the base waveform family of a UCR-like dataset.
type UCRShape int

const (
	// ShapeSine: class-dependent sinusoids with phase jitter.
	ShapeSine UCRShape = iota
	// ShapeWalk: random walks.
	ShapeWalk
	// ShapeECG: quasi-periodic spike trains.
	ShapeECG
	// ShapeStep: piecewise-constant level shifts.
	ShapeStep
	// ShapeChirp: frequency sweeps (energy spread over many coefficients).
	ShapeChirp
	// ShapeNoiseBurst: white noise with localized bursts.
	ShapeNoiseBurst
)

func (s UCRShape) String() string {
	switch s {
	case ShapeSine:
		return "sine"
	case ShapeWalk:
		return "walk"
	case ShapeECG:
		return "ecg"
	case ShapeStep:
		return "step"
	case ShapeChirp:
		return "chirp"
	case ShapeNoiseBurst:
		return "burst"
	default:
		return fmt.Sprintf("UCRShape(%d)", int(s))
	}
}

// UCRCatalog returns 24 synthetic UCR-like datasets covering the shape
// families above at several lengths and noise levels.
func UCRCatalog() []UCRSpec {
	shapes := []UCRShape{ShapeSine, ShapeWalk, ShapeECG, ShapeStep, ShapeChirp, ShapeNoiseBurst}
	lengths := []int{64, 128, 256, 500}
	var out []UCRSpec
	for si, sh := range shapes {
		for li, n := range lengths {
			noise := 0.05 + 0.15*float64((si+li)%3)
			out = append(out, UCRSpec{
				Name:      fmt.Sprintf("ucr-%s-%d", sh, n),
				TrainSize: 300,
				TestSize:  60,
				Length:    n,
				Shape:     sh,
				NoiseStd:  noise,
			})
		}
	}
	return out
}

// GenerateUCR produces the train and test matrices of a UCR-like dataset.
func GenerateUCR(spec UCRSpec, seed int64) (train, test *distance.Matrix, err error) {
	if spec.TrainSize < 1 || spec.TestSize < 1 {
		return nil, nil, fmt.Errorf("dataset: UCR sizes must be >= 1")
	}
	if spec.Length < 16 {
		return nil, nil, fmt.Errorf("dataset: UCR length must be >= 16, got %d", spec.Length)
	}
	train = ucrMatrix(spec, spec.TrainSize, seed)
	test = ucrMatrix(spec, spec.TestSize, seed^0x7E57)
	return train, test, nil
}

func ucrMatrix(spec UCRSpec, count int, seed int64) *distance.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := distance.NewMatrix(count, spec.Length)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		class := i % 4 // four latent classes per dataset
		switch spec.Shape {
		case ShapeSine:
			f := float64(2+class*2) * (0.95 + rng.Float64()*0.1)
			ph := rng.Float64() * 0.5
			for j := range row {
				row[j] = math.Sin(2*math.Pi*f*float64(j)/float64(spec.Length) + ph)
			}
		case ShapeWalk:
			v := 0.0
			for j := range row {
				v += rng.NormFloat64()
				row[j] = v
			}
		case ShapeECG:
			period := spec.Length / (4 + class)
			for j := range row {
				p := j % period
				switch {
				case p == period/2:
					row[j] = 3
				case p == period/2+1:
					row[j] = -1.5
				default:
					row[j] = 0.1 * math.Sin(2*math.Pi*float64(p)/float64(period))
				}
			}
		case ShapeStep:
			level := rng.NormFloat64()
			steps := 2 + class
			for j := range row {
				if j%(spec.Length/steps+1) == 0 {
					level = rng.NormFloat64() * 2
				}
				row[j] = level
			}
		case ShapeChirp:
			f0 := 1 + float64(class)
			f1 := f0 * (6 + rng.Float64()*4)
			for j := range row {
				x := float64(j) / float64(spec.Length)
				// Linear chirp: instantaneous frequency sweeps f0 -> f1
				// cycles over the series.
				row[j] = math.Sin(2 * math.Pi * (f0*x + (f1-f0)*x*x/2))
			}
		case ShapeNoiseBurst:
			for j := range row {
				row[j] = 0.2 * rng.NormFloat64()
			}
			onset := rng.Intn(spec.Length - spec.Length/8)
			for j := onset; j < onset+spec.Length/8; j++ {
				row[j] += rng.NormFloat64() * float64(2+class)
			}
		}
		for j := range row {
			row[j] += spec.NoiseStd * rng.NormFloat64()
		}
	}
	m.ZNormalizeAll()
	return m
}
