// Package distance implements the Euclidean distance kernels used by every
// search method in the SOFA reproduction: z-normalization, full squared
// Euclidean distance, and the chunked, SIMD-style early-abandoning variant
// that the GEMINI refinement step and the UCR-suite baseline rely on.
//
// All distances in this codebase are squared Euclidean distances; square
// roots are taken only at reporting boundaries. This matches the paper's
// implementation (and MESSI's), where pruning compares squared values.
package distance

import (
	"fmt"
	"math"

	"repro/internal/simd"
)

// ZNormalize z-normalizes x in place (mean 0, standard deviation 1). A
// constant series (zero variance) becomes all zeros rather than NaN, the
// convention used by the UCR suite.
//
// The variance is computed two-pass (mean first, then squared deviations)
// rather than as sumSq/n − mean²: the one-pass form cancels catastrophically
// when the mean dominates the spread (e.g. a sensor series around 1e8 with
// unit oscillation loses all significant digits of its variance).
func ZNormalize(x []float64) {
	if len(x) == 0 {
		return
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	n := float64(len(x))
	mean := sum / n
	var variance float64
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= n
	if variance < 1e-12 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	inv := 1 / math.Sqrt(variance)
	for i := range x {
		x[i] = (x[i] - mean) * inv
	}
}

// ZNormalized returns a z-normalized copy of x.
func ZNormalized(x []float64) []float64 {
	out := append([]float64(nil), x...)
	ZNormalize(out)
	return out
}

// SquaredED returns the squared Euclidean distance between equal-length
// series a and b. It panics if the lengths differ (callers index flat
// buffers with a fixed stride, so a mismatch is a programming error).
func SquaredED(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SquaredEDEarlyAbandon computes the squared ED between a and b but returns
// early — with a partial sum already exceeding bound — as soon as the
// accumulated distance passes bound. The returned value is only guaranteed
// to be the exact distance when it is <= bound; otherwise it is a certificate
// that the true distance exceeds bound.
//
// The kernel is simd.SquaredEDEA: 16-element blocks of fused
// multiply-accumulate with the abandon test after each block — AVX2+FMA
// assembly where the hardware supports it, the bit-identical portable
// reference everywhere else (paper Section IV-H).
func SquaredEDEarlyAbandon(a, b []float64, bound float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: length mismatch %d vs %d", len(a), len(b)))
	}
	return simd.SquaredEDEA(a, b, bound)
}

// ED returns the (non-squared) Euclidean distance between a and b.
func ED(a, b []float64) float64 {
	return math.Sqrt(SquaredED(a, b))
}

// Matrix is a flat row-major collection of N series of fixed length Stride.
// It is the in-memory layout shared by the index, the scan baseline and the
// flat (FAISS-like) baseline: one contiguous allocation, cache-friendly
// sequential access, no per-series slice headers.
type Matrix struct {
	Data   []float64
	Stride int
}

// NewMatrix allocates a matrix for n series of length stride.
func NewMatrix(n, stride int) *Matrix {
	return &Matrix{Data: make([]float64, n*stride), Stride: stride}
}

// FromRows builds a Matrix by copying the given equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("distance: FromRows needs at least one row")
	}
	stride := len(rows[0])
	if stride == 0 {
		return nil, fmt.Errorf("distance: zero-length series")
	}
	m := NewMatrix(len(rows), stride)
	for i, r := range rows {
		if len(r) != stride {
			return nil, fmt.Errorf("distance: row %d has length %d, want %d", i, len(r), stride)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Len returns the number of series stored.
func (m *Matrix) Len() int {
	if m.Stride == 0 {
		return 0
	}
	return len(m.Data) / m.Stride
}

// Row returns the i-th series as a slice aliasing the underlying buffer.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Stride : (i+1)*m.Stride : (i+1)*m.Stride]
}

// ZNormalizeAll z-normalizes every row in place.
func (m *Matrix) ZNormalizeAll() {
	for i := 0; i < m.Len(); i++ {
		ZNormalize(m.Row(i))
	}
}

// SquaredNorms returns the squared L2 norm of every row; the flat baseline
// precomputes these for the ‖a‖²−2a·b+‖b‖² decomposition.
func (m *Matrix) SquaredNorms() []float64 {
	n := m.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		r := m.Row(i)
		var s float64
		for _, v := range r {
			s += v * v
		}
		out[i] = s
	}
	return out
}

// Dot returns the dot product of equal-length a and b (blocked FMA kernel,
// dispatched to AVX2 assembly when available).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: length mismatch %d vs %d", len(a), len(b)))
	}
	return simd.Dot(a, b)
}

// PartitionRoundRobin splits the matrix into s shard matrices: shard i
// receives rows i, i+s, i+2s, ... (so global row g lives in shard g % s at
// local row g / s, and shard i holds ceil((n-i)/s) rows). This is the one
// partitioning shared by every sharded structure in the repo — the tree
// collection and the flat baseline must slice identically to be comparable.
// With s == 1 the original matrix is returned (aliased, no copy).
func (m *Matrix) PartitionRoundRobin(s int) []*Matrix {
	if s == 1 {
		return []*Matrix{m}
	}
	n := m.Len()
	out := make([]*Matrix, s)
	for i := 0; i < s; i++ {
		out[i] = NewMatrix((n-i+s-1)/s, m.Stride)
	}
	for g := 0; g < n; g++ {
		copy(out[g%s].Row(g/s), m.Row(g))
	}
	return out
}

// Append copies a new row onto the end of the matrix and returns its index.
// It panics on a stride mismatch. Existing Row slices may be invalidated by
// reallocation; callers that hold rows across Append must re-fetch them.
func (m *Matrix) Append(row []float64) int {
	if len(row) != m.Stride {
		panic(fmt.Sprintf("distance: appending row of length %d to stride-%d matrix", len(row), m.Stride))
	}
	m.Data = append(m.Data, row...)
	return m.Len() - 1
}
