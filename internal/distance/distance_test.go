package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZNormalize(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	ZNormalize(x)
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	n := float64(len(x))
	if math.Abs(sum/n) > 1e-12 {
		t.Errorf("mean not 0: %v", sum/n)
	}
	if math.Abs(sumSq/n-1) > 1e-12 {
		t.Errorf("variance not 1: %v", sumSq/n)
	}
}

// Regression: a large offset must not destroy the variance. The one-pass
// sumSq/n − mean² form loses all significant digits at mean ~1e8 (both terms
// are ~1e16 while their difference is 0.5), normalizing the series into
// garbage; the two-pass form keeps full precision.
func TestZNormalizeLargeMean(t *testing.T) {
	const n = 256
	x := make([]float64, n)
	for i := range x {
		x[i] = 1e8 + math.Sin(float64(i))
	}
	ZNormalize(x)
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	// Tolerances reflect float64's inherent rounding when summing 256 values
	// of magnitude 1e8 (~1e-7 absolute); the one-pass form is off by O(1).
	if math.Abs(sum/n) > 1e-6 {
		t.Errorf("mean not 0 after large-offset normalize: %v", sum/n)
	}
	if math.Abs(sumSq/n-1) > 1e-6 {
		t.Errorf("variance not 1 after large-offset normalize: %v", sumSq/n)
	}
	// The shape must survive: normalized values track sin(i) up to the
	// affine map, so consecutive differences must correlate perfectly.
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	ZNormalize(want)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("index %d: offset series normalized to %v, want %v", i, x[i], want[i])
		}
	}
}

func TestZNormalizeConstantSeries(t *testing.T) {
	x := []float64{5, 5, 5, 5}
	ZNormalize(x)
	for _, v := range x {
		if v != 0 {
			t.Errorf("constant series should become zeros, got %v", x)
		}
	}
}

func TestZNormalizeEmpty(t *testing.T) {
	ZNormalize(nil) // must not panic
}

func TestZNormalizedCopies(t *testing.T) {
	x := []float64{1, 2, 3}
	y := ZNormalized(x)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Error("ZNormalized mutated its input")
	}
	if y[0] == x[0] {
		t.Error("output not normalized")
	}
}

func TestSquaredED(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	if got := SquaredED(a, b); got != 9 {
		t.Errorf("got %v, want 9", got)
	}
	if got := SquaredED(a, a); got != 0 {
		t.Errorf("self distance: %v", got)
	}
	if got := ED(a, b); got != 3 {
		t.Errorf("ED: got %v, want 3", got)
	}
}

func TestSquaredEDPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SquaredED([]float64{1}, []float64{1, 2})
}

func TestEarlyAbandonExactWhenUnderBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 8, 9, 16, 100, 256} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want := SquaredED(a, b)
		got := SquaredEDEarlyAbandon(a, b, math.Inf(1))
		if math.Abs(got-want) > 1e-9*(want+1) {
			t.Errorf("n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestEarlyAbandonCertificate(t *testing.T) {
	// With a tiny bound, the returned value must still exceed the bound,
	// certifying that the true distance does.
	a := make([]float64, 64)
	b := make([]float64, 64)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 2
	}
	got := SquaredEDEarlyAbandon(a, b, 1.0)
	if got <= 1.0 {
		t.Errorf("expected certificate > bound, got %v", got)
	}
	want := SquaredED(a, b)
	if got > want {
		t.Errorf("certificate %v exceeds true distance %v", got, want)
	}
}

// Property: early abandoning with any bound never *underestimates* below the
// bound: result <= bound implies result == exact distance.
func TestEarlyAbandonProperty(t *testing.T) {
	f := func(seed int64, boundRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(120)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		bound := math.Abs(boundRaw)
		if math.IsNaN(bound) || math.IsInf(bound, 0) {
			bound = 1
		}
		exact := SquaredED(a, b)
		got := SquaredEDEarlyAbandon(a, b, bound)
		if got <= bound {
			return math.Abs(got-exact) <= 1e-9*(exact+1)
		}
		return exact > bound || math.Abs(got-exact) <= 1e-9*(exact+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Len() != 3 {
		t.Errorf("Len: %d", m.Len())
	}
	copy(m.Row(1), []float64{1, 2, 3, 4})
	if m.Data[4] != 1 || m.Data[7] != 4 {
		t.Error("Row is not aliasing the right region")
	}
	r := m.Row(1)
	if len(r) != 4 {
		t.Errorf("row length %d", len(r))
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || m.Stride != 2 || m.Row(2)[1] != 6 {
		t.Errorf("bad matrix: %+v", m)
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected error on ragged rows")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Error("expected error on zero-length series")
	}
}

func TestZNormalizeAll(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3, 4}, {10, 20, 30, 40}})
	m.ZNormalizeAll()
	for i := 0; i < m.Len(); i++ {
		var sum float64
		for _, v := range m.Row(i) {
			sum += v
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("row %d not centered", i)
		}
	}
}

func TestSquaredNorms(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}, {0, 0}, {1, 1}})
	norms := m.SquaredNorms()
	want := []float64{25, 0, 2}
	for i := range want {
		if norms[i] != want[i] {
			t.Errorf("norm[%d] = %v, want %v", i, norms[i], want[i])
		}
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := []float64{9, 8, 7, 6, 5, 4, 3, 2, 1}
	var want float64
	for i := range a {
		want += a[i] * b[i]
	}
	if got := Dot(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v want %v", got, want)
	}
}

// Property: the dot-product decomposition ‖a−b‖² = ‖a‖² − 2a·b + ‖b‖²
// used by the flat baseline agrees with the direct kernel.
func TestDotDecompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a := make([]float64, n)
		b := make([]float64, n)
		var na, nb float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		direct := SquaredED(a, b)
		decomp := na - 2*Dot(a, b) + nb
		return math.Abs(direct-decomp) <= 1e-8*(direct+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSquaredED256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SquaredED(x, y)
	}
}

func BenchmarkSquaredEDEarlyAbandonTightBound(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SquaredEDEarlyAbandon(x, y, 1.0)
	}
}

func TestMatrixAppend(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Row(0), []float64{1, 2, 3})
	idx := m.Append([]float64{4, 5, 6})
	if idx != 2 || m.Len() != 3 || m.Row(2)[0] != 4 {
		t.Errorf("append: idx=%d len=%d", idx, m.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on stride mismatch")
		}
	}()
	m.Append([]float64{1})
}
