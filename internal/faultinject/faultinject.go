//go:build faultinject

package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Enabled is true under the faultinject build tag: Hook consults the armed
// plans and fires faults.
const Enabled = true

// Mode selects what an armed trigger does when it fires.
type Mode int

const (
	// ModeError makes Hook return an *InjectedError.
	ModeError Mode = iota
	// ModeTransient makes Hook return an *InjectedError marked transient,
	// modelling a fault a bounded retry is expected to clear (the trigger
	// keeps firing, so a retry budget smaller than the remaining trigger
	// count still fails).
	ModeTransient
	// ModePanic makes Hook panic with a Panic value.
	ModePanic
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeTransient:
		return "transient"
	case ModePanic:
		return "panic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Trigger describes when and how one hook site fires. Exactly one of
// OnCall/EveryN/Prob selects the schedule:
//
//   - OnCall n (1-based): fire on the nth Hook call at the site, once.
//   - EveryN n: fire on every nth call (n, 2n, 3n, ...).
//   - Prob p with Seed: fire each call independently with probability p,
//     driven by a seeded splitmix64 stream — the same seed always yields
//     the same firing pattern, which is what makes chaos runs replayable.
//
// Count bounds the total number of firings (0 = unbounded).
type Trigger struct {
	Mode   Mode
	OnCall uint64
	EveryN uint64
	Prob   float64
	Seed   uint64
	Count  uint64
}

// Panic is the value injected panics carry, so recovery layers and tests
// can tell an injected panic from a genuine engine bug.
type Panic struct {
	Site string
}

func (p Panic) String() string { return "faultinject: injected panic at " + p.Site }

// InjectedError is the error returned by error-mode triggers.
type InjectedError struct {
	Site      string
	Transient bool
}

func (e *InjectedError) Error() string {
	kind := "injected error"
	if e.Transient {
		kind = "injected transient error"
	}
	return "faultinject: " + kind + " at " + e.Site
}

// IsInjected reports whether err was produced by an armed fault.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// IsTransient reports whether err is an injected transient fault.
func IsTransient(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie) && ie.Transient
}

// plan is one armed site: its trigger plus mutable firing state.
type plan struct {
	trig  Trigger
	calls atomic.Uint64
	fired atomic.Uint64
	rng   atomic.Uint64 // splitmix64 state for Prob triggers
}

var (
	mu    sync.RWMutex
	plans = map[string]*plan{}
)

// validSite reports whether site is in the allowlist.
func validSite(site string) bool {
	for _, s := range siteList() {
		if s == site {
			return true
		}
	}
	return false
}

// Arm installs a trigger at a hook site, replacing any previous plan for
// that site and resetting its call counters. It panics on a site name
// outside the allowlist — armed-but-never-reached plans are silent holes in
// a chaos schedule.
func Arm(site string, t Trigger) {
	if !validSite(site) {
		panic("faultinject: unknown hook site " + site)
	}
	p := &plan{trig: t}
	p.rng.Store(t.Seed)
	mu.Lock()
	plans[site] = p
	mu.Unlock()
}

// Disarm removes the plan for one site.
func Disarm(site string) {
	mu.Lock()
	delete(plans, site)
	mu.Unlock()
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	plans = map[string]*plan{}
	mu.Unlock()
}

// Calls returns how many times the site's hook has been reached since it
// was armed (0 if not armed).
func Calls(site string) uint64 {
	mu.RLock()
	p := plans[site]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.calls.Load()
}

// Fired returns how many faults the site has injected since it was armed.
func Fired(site string) uint64 {
	mu.RLock()
	p := plans[site]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// splitmix64 advances the per-plan RNG state; the returned value is
// uniformly distributed and the sequence is a pure function of the seed.
func splitmix64(state *atomic.Uint64) uint64 {
	z := state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hook is called at every instrumented site. It returns an *InjectedError
// or panics with a Panic value when the site's armed trigger fires, and
// returns nil otherwise. Safe for concurrent use; nth-call triggers are
// exact under concurrency (each call observes a unique call number).
func Hook(site string) error {
	mu.RLock()
	p := plans[site]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	n := p.calls.Add(1)
	t := &p.trig
	fire := false
	switch {
	case t.OnCall > 0:
		fire = n == t.OnCall
	case t.EveryN > 0:
		fire = n%t.EveryN == 0
	case t.Prob > 0:
		const scale = 1 << 53
		fire = float64(splitmix64(&p.rng)>>11)/scale < t.Prob
	}
	if !fire {
		return nil
	}
	if t.Count > 0 && p.fired.Add(1) > t.Count {
		return nil
	} else if t.Count == 0 {
		p.fired.Add(1)
	}
	switch t.Mode {
	case ModePanic:
		panic(Panic{Site: site})
	case ModeTransient:
		return &InjectedError{Site: site, Transient: true}
	default:
		return &InjectedError{Site: site}
	}
}
