//go:build faultinject

package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNthCallTrigger(t *testing.T) {
	defer Reset()
	Arm(SiteShardSeed, Trigger{Mode: ModeError, OnCall: 3})
	for i := 1; i <= 5; i++ {
		err := Hook(SiteShardSeed)
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err = %v", i, err)
		}
		if i == 3 && !IsInjected(err) {
			t.Fatalf("call 3: not recognized as injected: %v", err)
		}
	}
	if got := Calls(SiteShardSeed); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
	if got := Fired(SiteShardSeed); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestEveryNTrigger(t *testing.T) {
	defer Reset()
	Arm(SiteKernel, Trigger{Mode: ModeTransient, EveryN: 2, Count: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if err := Hook(SiteKernel); err != nil {
			fired++
			if !IsTransient(err) {
				t.Fatalf("transient trigger produced non-transient error %v", err)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("Count=2 bound: fired %d times", fired)
	}
}

func TestPanicTrigger(t *testing.T) {
	defer Reset()
	Arm(SiteStreamWorker, Trigger{Mode: ModePanic, OnCall: 1})
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok || p.Site != SiteStreamWorker {
			t.Fatalf("recovered %v, want faultinject.Panic at %s", r, SiteStreamWorker)
		}
	}()
	Hook(SiteStreamWorker)
	t.Fatal("hook did not panic")
}

// TestProbDeterminism pins that probabilistic triggers are a pure function
// of the seed: same seed, same firing pattern; different seed, (almost
// surely) different pattern.
func TestProbDeterminism(t *testing.T) {
	defer Reset()
	pattern := func(seed uint64) []bool {
		Arm(SitePersistRead, Trigger{Mode: ModeError, Prob: 0.3, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hook(SitePersistRead) != nil
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different firing patterns")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical 64-call firing patterns")
	}
	var fired int
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.3 fired %d/64 times; trigger not probabilistic", fired)
	}
}

func TestArmRejectsUnknownSite(t *testing.T) {
	defer Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("Arm accepted an unknown site")
		}
	}()
	Arm("no/such/site", Trigger{Mode: ModeError, OnCall: 1})
}

// TestConcurrentNthCall pins that nth-call triggers fire exactly once under
// concurrency (the call counter hands each call a unique number).
func TestConcurrentNthCall(t *testing.T) {
	defer Reset()
	Arm(SiteBatchWorker, Trigger{Mode: ModeError, OnCall: 50})
	var wg sync.WaitGroup
	var fired sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := Hook(SiteBatchWorker); err != nil {
					fired.Store(i, err)
				}
			}
		}()
	}
	wg.Wait()
	var n int
	fired.Range(func(any, any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("OnCall trigger fired %d times under concurrency, want 1", n)
	}
}

func TestDisarmAndReset(t *testing.T) {
	Arm(SiteShardFinish, Trigger{Mode: ModeError, EveryN: 1})
	if Hook(SiteShardFinish) == nil {
		t.Fatal("armed site did not fire")
	}
	Disarm(SiteShardFinish)
	if err := Hook(SiteShardFinish); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
	Arm(SiteStreamSubmit, Trigger{Mode: ModeError, EveryN: 1})
	Reset()
	if err := Hook(SiteStreamSubmit); err != nil {
		t.Fatalf("reset site fired: %v", err)
	}
	if IsInjected(errors.New("x")) || IsTransient(errors.New("x")) {
		t.Fatal("foreign error classified as injected")
	}
}
