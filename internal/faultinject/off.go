//go:build !faultinject

package faultinject

// Enabled is false in release builds: every `if faultinject.Enabled` guard
// is dead code, Hook inlines to nothing, and no registry state is linked.
const Enabled = false

// Hook is a no-op without the faultinject build tag.
func Hook(site string) error { return nil }

// IsInjected reports whether err was produced by an armed fault; always
// false without the build tag.
func IsInjected(err error) bool { return false }

// IsTransient reports whether err is an injected transient fault (one a
// bounded retry is expected to clear); always false without the build tag.
func IsTransient(err error) bool { return false }
