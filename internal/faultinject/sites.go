// Package faultinject is the deterministic fault-injection harness behind
// the chaos test suite: named hook sites threaded through the query and
// persistence paths that can be armed to panic or fail on a precise call
// (nth-call triggers) or at a seeded rate (probabilistic triggers).
//
// The package has two build personalities:
//
//   - Under the `faultinject` build tag, Hook consults a registry of armed
//     plans and fires the configured faults. This is the build the chaos CI
//     job and FuzzFaultSchedule run.
//   - Without the tag (every release build), Enabled is the constant false
//     and Hook is an empty inlinable stub, so the `if faultinject.Enabled`
//     guards at every call site compile to nothing and no hook machinery is
//     linked into release binaries (the chaos CI job verifies this with
//     `sofa-vet -release-scan`, which checks both nm symbols and surviving
//     site-name strings).
//
// Hook sites are a closed set: every call site must use one of the Site*
// constants below, and the retention/hooks audit fails when a call site uses
// a name outside the allowlist. Faults are injected only at these
// boundaries, never inside lock-holding critical sections, so panic
// recovery upstream can never strand a mutex.
package faultinject

// The named hook sites. Keep in sync with siteList (every call site is
// audited by the faultguard analyzer in internal/analysis).
const (
	// SiteShardSeed fires at shard-search entry: the seeding stage of one
	// shard's participation in a collection query.
	SiteShardSeed = "shard/seed"
	// SiteShardFinish fires before one shard's exact stage (traversal and
	// leaf refinement).
	SiteShardFinish = "shard/finish"
	// SiteKernel fires at kernel dispatch: immediately before the per-query
	// LBD table build and refinement engine run inside the tree.
	SiteKernel = "index/kernel"
	// SitePersistRead fires on every read the container loader issues
	// against the underlying storage.
	SitePersistRead = "persist/read"
	// SiteStreamSubmit fires in Stream.SubmitPlan before the query is
	// enqueued.
	SiteStreamSubmit = "stream/submit"
	// SiteStreamWorker fires in the stream worker loop before each query
	// executes.
	SiteStreamWorker = "stream/worker"
	// SiteBatchWorker fires in the collection batch engine before each
	// query executes.
	SiteBatchWorker = "batch/worker"
	// SiteWALAppend fires in WAL.Append before the record bytes reach the
	// file. A fatal firing additionally tears the record (half its bytes are
	// written), modelling a crash mid-append.
	SiteWALAppend = "wal/append"
	// SiteWALSync fires in WAL.Sync before the fsync.
	SiteWALSync = "wal/sync"
	// SiteCheckpointRename fires in the atomic container save between the
	// temp file's fsync and the rename that publishes it — the
	// crash-before-commit point of a checkpoint.
	SiteCheckpointRename = "checkpoint/rename"
	// SitePersistWrite fires on every write the container saver issues
	// against the temp file. A fatal firing tears the chunk (half its bytes
	// are written), modelling a crash mid-save.
	SitePersistWrite = "persist/write"
	// SiteTombstone fires in Delete and Upsert after the id resolved but
	// before the tombstone bit is set — the point where a mutation can fail
	// without leaving any partial state.
	SiteTombstone = "mutate/tombstone"
	// SiteCompactSwap fires in shard compaction immediately before the
	// rebuilt shard is swapped in — a failure here discards the rebuild and
	// leaves the old shard state fully intact.
	SiteCompactSwap = "compact/swap"
)

// siteList enumerates every valid hook site; Sites returns a copy for the
// audit and the fuzz harness. A function (rather than an exported var)
// keeps release binaries free of faultinject data symbols.
func siteList() [13]string {
	return [13]string{
		SiteShardSeed,
		SiteShardFinish,
		SiteKernel,
		SitePersistRead,
		SiteStreamSubmit,
		SiteStreamWorker,
		SiteBatchWorker,
		SiteWALAppend,
		SiteWALSync,
		SiteCheckpointRename,
		SitePersistWrite,
		SiteTombstone,
		SiteCompactSwap,
	}
}

// Sites returns the allowlisted hook site names, in stable order.
func Sites() []string {
	l := siteList()
	return l[:]
}
