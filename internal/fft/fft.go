// Package fft implements the discrete Fourier transform used by the SFA
// summarization. It provides an iterative radix-2 Cooley-Tukey FFT for
// power-of-two lengths and Bluestein's chirp-z algorithm for arbitrary
// lengths, plus a real-input convenience layer that returns the half
// spectrum in the interleaved (real, imag, real, imag, ...) layout the SFA
// code consumes.
//
// All transforms are allocation-conscious: callers that transform millions
// of series reuse a Plan, which owns the twiddle tables and scratch buffers.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan precomputes twiddle factors and scratch space for transforms of a
// fixed length n. A Plan is NOT safe for concurrent use; create one per
// goroutine (they are cheap relative to the data being transformed).
type Plan struct {
	n       int
	pow2    bool
	twiddle []complex128 // forward twiddles for radix-2, length n/2
	rev     []int        // bit-reversal permutation, length n

	// Bluestein state (nil when pow2).
	bluM      int          // convolution length, power of two >= 2n-1
	bluChirp  []complex128 // chirp factors w_k = exp(-i pi k^2 / n), length n
	bluBFFT   []complex128 // FFT of the padded reciprocal chirp, length bluM
	bluPlan   *Plan        // radix-2 plan of length bluM
	bluBufA   []complex128
	bluBufB   []complex128
	inputBuf  []complex128 // reused by ForwardReal
	outputBuf []float64
}

// NewPlan creates a transform plan for series of length n. n must be >= 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: length must be >= 1, got %d", n)
	}
	p := &Plan{n: n, pow2: isPow2(n)}
	if p.pow2 {
		p.initRadix2(n)
	} else {
		p.initBluestein(n)
	}
	p.inputBuf = make([]complex128, n)
	p.outputBuf = make([]float64, 2*n)
	return p, nil
}

// MustPlan is NewPlan that panics on error; for use with known-valid lengths.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Len reports the series length this plan transforms.
func (p *Plan) Len() int { return p.n }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func (p *Plan) initRadix2(n int) {
	p.twiddle = make([]complex128, n/2)
	for k := 0; k < n/2; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(angle), math.Sin(angle))
	}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
}

func (p *Plan) initBluestein(n int) {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.bluM = m
	p.bluPlan = MustPlan(m) // m is a power of two; recursion depth 1
	p.bluChirp = make([]complex128, n)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		// Use k^2 mod 2n to keep the angle argument small and precise.
		k2 := (int64(k) * int64(k)) % int64(2*n)
		angle := -math.Pi * float64(k2) / float64(n)
		w := complex(math.Cos(angle), math.Sin(angle))
		p.bluChirp[k] = w
		conj := complex(real(w), -imag(w))
		b[k] = conj
		if k > 0 {
			b[m-k] = conj
		}
	}
	p.bluPlan.forwardInPlace(b)
	p.bluBFFT = b
	p.bluBufA = make([]complex128, m)
	p.bluBufB = make([]complex128, m)
}

// Forward computes the in-place forward DFT of x, which must have length
// Len(). The transform is unnormalized: X[k] = sum_t x[t] exp(-2πi kt/n).
func (p *Plan) Forward(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("fft: input length %d does not match plan length %d", len(x), p.n)
	}
	p.forwardInPlace(x)
	return nil
}

func (p *Plan) forwardInPlace(x []complex128) {
	if p.pow2 {
		p.radix2(x)
		return
	}
	p.bluestein(x)
}

func (p *Plan) radix2(x []complex128) {
	n := p.n
	if n == 1 {
		return
	}
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				t := p.twiddle[tw] * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
				tw += step
			}
		}
	}
}

func (p *Plan) bluestein(x []complex128) {
	n, m := p.n, p.bluM
	a, bf := p.bluBufA, p.bluBFFT
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.bluChirp[k]
	}
	p.bluPlan.forwardInPlace(a)
	for i := 0; i < m; i++ {
		a[i] *= bf[i]
	}
	p.bluPlan.inverseInPlace(a)
	scale := complex(1/float64(m), 0) // unnormalized inverse needs 1/m
	for k := 0; k < n; k++ {
		x[k] = a[k] * p.bluChirp[k] * scale
	}
}

// Inverse computes the in-place unnormalized inverse DFT
// (x[t] = sum_k X[k] exp(+2πi kt/n)); divide by n to invert Forward.
func (p *Plan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("fft: input length %d does not match plan length %d", len(x), p.n)
	}
	p.inverseInPlace(x)
	return nil
}

func (p *Plan) inverseInPlace(x []complex128) {
	// Inverse via conjugation: IDFT(x) = conj(DFT(conj(x))).
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	p.forwardInPlace(x)
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
}

// InverseNormalized computes the inverse DFT including the 1/n factor, so
// that InverseNormalized(Forward(x)) == x.
func (p *Plan) InverseNormalized(x []complex128) error {
	if err := p.Inverse(x); err != nil {
		return err
	}
	s := 1 / float64(p.n)
	for i, v := range x {
		x[i] = complex(real(v)*s, imag(v)*s)
	}
	return nil
}

// ForwardReal transforms the real series x (length Len()) and writes the
// first nCoeffs complex coefficients into dst as interleaved
// (re0, im0, re1, im1, ...). dst must have length >= 2*nCoeffs and nCoeffs
// must be <= Len()/2+1. Coefficients are scaled by 1/sqrt(n) so that
// Parseval's theorem gives the Euclidean lower bound of Eq. 1 directly:
//
//	ed²(A,B) = Σ_k |A'_k - B'_k|²  (over the full spectrum)
//	        ≥ (a'_0-b'_0)² + 2 Σ_{i=1..l} |a'_i-b'_i|²
//
// The returned slice is dst[:2*nCoeffs].
func (p *Plan) ForwardReal(x []float64, nCoeffs int, dst []float64) ([]float64, error) {
	if len(x) != p.n {
		return nil, fmt.Errorf("fft: input length %d does not match plan length %d", len(x), p.n)
	}
	max := p.n/2 + 1
	if nCoeffs < 1 || nCoeffs > max {
		return nil, fmt.Errorf("fft: nCoeffs %d out of range [1,%d]", nCoeffs, max)
	}
	if len(dst) < 2*nCoeffs {
		return nil, fmt.Errorf("fft: dst length %d < %d", len(dst), 2*nCoeffs)
	}
	buf := p.inputBuf
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	p.forwardInPlace(buf)
	scale := 1 / math.Sqrt(float64(p.n))
	for k := 0; k < nCoeffs; k++ {
		dst[2*k] = real(buf[k]) * scale
		dst[2*k+1] = imag(buf[k]) * scale
	}
	return dst[:2*nCoeffs], nil
}

// FullSpectrumReal transforms x and returns all n/2+1 scaled complex
// coefficients interleaved. It allocates the result.
func (p *Plan) FullSpectrumReal(x []float64) ([]float64, error) {
	n := p.n/2 + 1
	dst := make([]float64, 2*n)
	return p.ForwardReal(x, n, dst)
}

// NaiveDFT computes the unnormalized DFT directly in O(n²); used as a
// reference in tests and for tiny inputs.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * complex(math.Cos(angle), math.Sin(angle))
		}
		out[k] = sum
	}
	return out
}
