package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestNewPlanRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d): expected error", n)
		}
	}
}

func TestForwardMatchesNaivePow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		p := MustPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !approxEqual(got[k], want[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestForwardMatchesNaiveArbitraryN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 9, 12, 17, 31, 96, 100, 250} {
		p := MustPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !approxEqual(got[k], want[k], 1e-7*float64(n)) {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 8, 13, 96, 128, 100, 256} {
		p := MustPlan(n)
		orig := make([]complex128, n)
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x := append([]complex128(nil), orig...)
		if err := p.Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := p.InverseNormalized(x); err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if !approxEqual(x[i], orig[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d i=%d: round trip %v != %v", n, i, x[i], orig[i])
			}
		}
	}
}

// Property: round-trip recovers the input for random power-of-two sizes.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		sizes := []int{2, 4, 8, 16, 32, 64, 96, 100, 128}
		n := sizes[int(sizeSel)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		p := MustPlan(n)
		orig := make([]complex128, n)
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x := append([]complex128(nil), orig...)
		p.forwardInPlace(x)
		if err := p.InverseNormalized(x); err != nil {
			return false
		}
		for i := range orig {
			if !approxEqual(x[i], orig[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval's identity holds for the scaled real transform:
// sum x_t^2 == sum |X_k|^2 over the full spectrum (with 1/sqrt(n) scaling,
// accounting for conjugate symmetry).
func TestParsevalScaledRealTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 16, 96, 100, 128, 256} {
		p := MustPlan(n)
		x := make([]float64, n)
		var energyTime float64
		for i := range x {
			x[i] = rng.NormFloat64()
			energyTime += x[i] * x[i]
		}
		spec, err := p.FullSpectrumReal(x)
		if err != nil {
			t.Fatal(err)
		}
		nc := n/2 + 1
		var energyFreq float64
		for k := 0; k < nc; k++ {
			re, im := spec[2*k], spec[2*k+1]
			mag2 := re*re + im*im
			// DC and (for even n) Nyquist appear once; all others twice.
			if k == 0 || (n%2 == 0 && k == n/2) {
				energyFreq += mag2
			} else {
				energyFreq += 2 * mag2
			}
		}
		if math.Abs(energyTime-energyFreq) > 1e-8*energyTime {
			t.Fatalf("n=%d: Parseval violated: time %v freq %v", n, energyTime, energyFreq)
		}
	}
}

func TestForwardRealValidation(t *testing.T) {
	p := MustPlan(16)
	x := make([]float64, 16)
	dst := make([]float64, 64)
	if _, err := p.ForwardReal(x[:8], 4, dst); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := p.ForwardReal(x, 0, dst); err == nil {
		t.Error("expected nCoeffs range error")
	}
	if _, err := p.ForwardReal(x, 10, dst); err == nil {
		t.Error("expected nCoeffs too large error")
	}
	if _, err := p.ForwardReal(x, 4, dst[:3]); err == nil {
		t.Error("expected dst too small error")
	}
}

func TestForwardRealDCComponent(t *testing.T) {
	// A constant series has all energy in coefficient 0.
	n := 64
	p := MustPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 3.0
	}
	spec, err := p.FullSpectrumReal(x)
	if err != nil {
		t.Fatal(err)
	}
	wantDC := 3.0 * float64(n) / math.Sqrt(float64(n))
	if math.Abs(spec[0]-wantDC) > 1e-9 {
		t.Errorf("DC: got %v want %v", spec[0], wantDC)
	}
	for k := 1; k < n/2+1; k++ {
		if math.Abs(spec[2*k]) > 1e-9 || math.Abs(spec[2*k+1]) > 1e-9 {
			t.Errorf("coefficient %d should be ~0, got (%v,%v)", k, spec[2*k], spec[2*k+1])
		}
	}
}

func TestForwardRealPureSinusoid(t *testing.T) {
	// cos(2π f t / n) concentrates energy at coefficient f.
	n := 128
	f := 5
	p := MustPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(f) * float64(i) / float64(n))
	}
	spec, err := p.FullSpectrumReal(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n/2+1; k++ {
		re, im := spec[2*k], spec[2*k+1]
		mag := math.Hypot(re, im)
		if k == f {
			want := float64(n) / 2 / math.Sqrt(float64(n))
			if math.Abs(mag-want) > 1e-8 {
				t.Errorf("bin %d: got magnitude %v want %v", k, mag, want)
			}
		} else if mag > 1e-8 {
			t.Errorf("bin %d: expected ~0 magnitude, got %v", k, mag)
		}
	}
}

func TestInverseLengthValidation(t *testing.T) {
	p := MustPlan(8)
	if err := p.Inverse(make([]complex128, 4)); err == nil {
		t.Error("expected error for wrong length")
	}
	if err := p.Forward(make([]complex128, 4)); err == nil {
		t.Error("expected error for wrong length")
	}
}

func TestLen(t *testing.T) {
	if got := MustPlan(96).Len(); got != 96 {
		t.Errorf("Len() = %d, want 96", got)
	}
}

func BenchmarkForwardReal256(b *testing.B) {
	p := MustPlan(256)
	x := make([]float64, 256)
	rng := rand.New(rand.NewSource(5))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ForwardReal(x, 16, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardReal100Bluestein(b *testing.B) {
	p := MustPlan(100)
	x := make([]float64, 100)
	rng := rand.New(rand.NewSource(6))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ForwardReal(x, 16, dst); err != nil {
			b.Fatal(err)
		}
	}
}
