// Package flat implements the FAISS IndexFlatL2 baseline: exact k-NN by
// blocked brute-force scan using the ‖q−x‖² = ‖q‖² − 2·q·x + ‖x‖²
// decomposition with precomputed data norms — the same computation FAISS's
// CPU flat index performs with MKL GEMM kernels.
//
// Following the paper's protocol (Section V-A), queries are processed in
// mini-batches the size of the core count: FAISS cannot parallelize inside
// a single query, so the harness gives it embarrassing parallelism across
// queries instead.
package flat

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distance"
	"repro/internal/index"
)

// Index is an exact flat L2 index over z-normalized series.
type Index struct {
	data    *distance.Matrix
	norms   []float64
	workers int

	// BuildSeconds is the time spent precomputing norms (the flat analogue
	// of index construction for Fig. 7).
	BuildSeconds float64
}

// Build creates the flat index: it stores the matrix and precomputes the
// squared norm of every row. workers <= 0 selects GOMAXPROCS.
func Build(data *distance.Matrix, workers int) (*Index, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("flat: empty data")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ix := &Index{data: data, workers: workers}
	start := time.Now()
	ix.norms = data.SquaredNorms()
	ix.BuildSeconds = time.Since(start).Seconds()
	return ix, nil
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.data.Len() }

// Search answers a single query exactly (k nearest, ascending squared
// z-normalized ED). A single query runs on one core, as in FAISS; use
// SearchBatch to exploit parallelism.
func (ix *Index) Search(query []float64, k int) ([]index.Result, error) {
	if len(query) != ix.data.Stride {
		return nil, fmt.Errorf("flat: query length %d, want %d", len(query), ix.data.Stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("flat: k must be >= 1, got %d", k)
	}
	q := distance.ZNormalized(query)
	return ix.searchNormalized(q, k, index.NewKNNCollector(k)), nil
}

// searchNormalized scans every row against the already-normalized query,
// collecting into kn (which the caller Resets for reuse across a batch).
func (ix *Index) searchNormalized(q []float64, k int, kn *index.KNNCollector) []index.Result {
	ix.scanInto(q, kn, 1, 0)
	return kn.Results()
}

// scanInto scans every row against the already-normalized query, offering
// row i under id i*idMul + idAdd — the identity for a stand-alone index,
// the round-robin inverse for a shard of Sharded.
func (ix *Index) scanInto(q []float64, kn *index.KNNCollector, idMul, idAdd int32) {
	var qn float64
	for _, v := range q {
		qn += v * v
	}
	n := ix.data.Len()
	for i := 0; i < n; i++ {
		d := qn - 2*distance.Dot(q, ix.data.Row(i)) + ix.norms[i]
		if d < 0 {
			d = 0 // guard rounding for near-identical vectors
		}
		kn.Offer(index.ID(int32(i)*idMul+idAdd), d)
	}
}

// SearchBatch answers a batch of queries, distributing whole queries across
// the configured workers (the paper's FAISS mini-batch protocol). Results
// are returned in query order.
func (ix *Index) SearchBatch(queries *distance.Matrix, k int) ([][]index.Result, error) {
	return batchScan(queries, k, ix.workers, ix.data.Stride, func(q []float64, kn *index.KNNCollector) {
		ix.scanInto(q, kn, 1, 0)
	})
}

// batchScan is the shared mini-batch worker loop of the plain and sharded
// flat indexes: whole queries are distributed across workers, each worker
// reusing its z-normalized query buffer and k-NN collector across the batch
// so the scan loop performs no per-query allocations. scan fills kn with
// the (already normalized) query's candidates.
func batchScan(queries *distance.Matrix, k, workers, stride int, scan func(q []float64, kn *index.KNNCollector)) ([][]index.Result, error) {
	if queries == nil || queries.Len() == 0 {
		return nil, fmt.Errorf("flat: empty query batch")
	}
	if queries.Stride != stride {
		return nil, fmt.Errorf("flat: query length %d, want %d", queries.Stride, stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("flat: k must be >= 1, got %d", k)
	}
	out := make([][]index.Result, queries.Len())
	var cursor atomic.Int64
	var wg sync.WaitGroup
	if workers > queries.Len() {
		workers = queries.Len()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qbuf := make([]float64, stride)
			kn := index.NewKNNCollector(k)
			for {
				i := int(cursor.Add(1) - 1)
				if i >= queries.Len() {
					return
				}
				copy(qbuf, queries.Row(i))
				distance.ZNormalize(qbuf)
				kn.Reset(k)
				scan(qbuf, kn)
				out[i] = kn.Results()
			}
		}()
	}
	wg.Wait()
	return out, nil
}
