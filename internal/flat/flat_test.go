package flat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/distance"
)

func testMatrix(rng *rand.Rand, count, n int) *distance.Matrix {
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	m.ZNormalizeAll()
	return m
}

func bruteDists(m *distance.Matrix, query []float64) []float64 {
	q := distance.ZNormalized(query)
	out := make([]float64, m.Len())
	for i := range out {
		out[i] = distance.SquaredED(m.Row(i), q)
	}
	sort.Float64s(out)
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Error("expected error on nil data")
	}
	if _, err := Build(distance.NewMatrix(0, 8), 4); err == nil {
		t.Error("expected error on empty data")
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := testMatrix(rng, 30, 32)
	ix, err := Build(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 30 {
		t.Errorf("Len: %d", ix.Len())
	}
	if _, err := ix.Search(make([]float64, 16), 1); err == nil {
		t.Error("expected query length error")
	}
	if _, err := ix.Search(make([]float64, 32), 0); err == nil {
		t.Error("expected k error")
	}
	if _, err := ix.SearchBatch(nil, 1); err == nil {
		t.Error("expected empty batch error")
	}
	if _, err := ix.SearchBatch(distance.NewMatrix(2, 16), 1); err == nil {
		t.Error("expected batch stride error")
	}
	if _, err := ix.SearchBatch(distance.NewMatrix(2, 32), 0); err == nil {
		t.Error("expected batch k error")
	}
}

func TestExactnessSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := testMatrix(rng, 400, 64)
	ix, err := Build(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 50} {
		query := make([]float64, 64)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		res, err := ix.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteDists(m, query)[:k]
		for i := range want {
			if math.Abs(res[i].Dist-want[i]) > 1e-6*(want[i]+1) {
				t.Fatalf("k=%d rank %d: got %v want %v", k, i, res[i].Dist, want[i])
			}
		}
	}
}

func TestSelfQueryZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testMatrix(rng, 100, 48)
	ix, _ := Build(m, 2)
	res, err := ix.Search(m.Row(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 7 || res[0].Dist > 1e-6 {
		t.Errorf("self query: %+v", res[0])
	}
}

func TestSearchBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := testMatrix(rng, 300, 32)
	ix, _ := Build(m, 8)
	queries := testMatrix(rng, 25, 32)
	batch, err := ix.SearchBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 25 {
		t.Fatalf("batch size %d", len(batch))
	}
	for qi := 0; qi < queries.Len(); qi++ {
		single, err := ix.Search(queries.Row(qi), 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if batch[qi][i].ID != single[i].ID || batch[qi][i].Dist != single[i].Dist {
				t.Fatalf("query %d rank %d: batch %+v vs single %+v", qi, i, batch[qi][i], single[i])
			}
		}
	}
}

// Property: flat search agrees with the direct-distance brute force within
// floating-point tolerance of the norm decomposition.
func TestExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 10 + rng.Intn(200)
		n := 8 + rng.Intn(100)
		m := testMatrix(rng, count, n)
		ix, err := Build(m, 1+rng.Intn(4))
		if err != nil {
			return false
		}
		query := make([]float64, n)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(5)
		if k > count {
			k = count
		}
		res, err := ix.Search(query, k)
		if err != nil {
			return false
		}
		want := bruteDists(m, query)
		for i := 0; i < k; i++ {
			if math.Abs(res[i].Dist-want[i]) > 1e-6*(want[i]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFlatSearch20k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := testMatrix(rng, 20000, 128)
	ix, _ := Build(m, 0)
	query := make([]float64, 128)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(query, 1); err != nil {
			b.Fatal(err)
		}
	}
}
