package flat

import (
	"fmt"
	"runtime"

	"repro/internal/distance"
	"repro/internal/index"
)

// Sharded is the flat baseline partitioned the same way core.Collection
// partitions the tree index: S sub-indexes over disjoint round-robin slices
// of the series (global id = local*S + shard), answering each query by
// scanning every shard into one shared collector. It exists so sharded-tree
// throughput numbers are compared against a baseline with the identical
// memory partitioning, not against a monolithic scan.
type Sharded struct {
	shards  []*Index
	stride  int
	total   int
	workers int
}

// BuildSharded creates a sharded flat index. shards is clamped to the
// number of series; workers <= 0 selects GOMAXPROCS.
func BuildSharded(data *distance.Matrix, shards, workers int) (*Sharded, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("flat: empty data")
	}
	if shards < 1 {
		return nil, fmt.Errorf("flat: shard count must be >= 1, got %d", shards)
	}
	if shards > data.Len() {
		shards = data.Len()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ix := &Sharded{stride: data.Stride, total: data.Len(), workers: workers}
	for _, m := range data.PartitionRoundRobin(shards) {
		sub, err := Build(m, workers)
		if err != nil {
			return nil, err
		}
		ix.shards = append(ix.shards, sub)
	}
	return ix, nil
}

// Len returns the number of indexed series across all shards.
func (ix *Sharded) Len() int { return ix.total }

// Shards returns the shard count.
func (ix *Sharded) Shards() int { return len(ix.shards) }

// Search answers a single query exactly, scanning the shards sequentially
// on one core (as in the unsharded baseline) into a shared collector.
func (ix *Sharded) Search(query []float64, k int) ([]index.Result, error) {
	if len(query) != ix.stride {
		return nil, fmt.Errorf("flat: query length %d, want %d", len(query), ix.stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("flat: k must be >= 1, got %d", k)
	}
	q := distance.ZNormalized(query)
	kn := index.NewKNNCollector(k)
	ix.scanShards(q, kn)
	return kn.Results(), nil
}

// scanShards scans every shard into kn under the global id mapping.
func (ix *Sharded) scanShards(q []float64, kn *index.KNNCollector) {
	s := int32(len(ix.shards))
	for i, sub := range ix.shards {
		sub.scanInto(q, kn, s, int32(i))
	}
}

// SearchBatch answers a batch of queries, distributing whole queries across
// the configured workers (the FAISS mini-batch protocol); each worker scans
// all shards for its query. Results are returned in query order.
func (ix *Sharded) SearchBatch(queries *distance.Matrix, k int) ([][]index.Result, error) {
	return batchScan(queries, k, ix.workers, ix.stride, ix.scanShards)
}
