package flat

import (
	"math/rand"
	"testing"

	"repro/internal/distance"
)

// The sharded flat baseline must return exactly what the unsharded scan
// returns — same global ids, same distances — for single queries and
// batches.
func TestShardedMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 64
	m := testMatrix(rng, 700, n)
	plain, err := Build(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries := distance.NewMatrix(10, n)
	for i := 0; i < queries.Len(); i++ {
		row := queries.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	const k = 5
	want, err := plain.SearchBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 8} {
		ix, err := BuildSharded(m, shards, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != 700 {
			t.Fatalf("shards=%d: Len=%d", shards, ix.Len())
		}
		got, err := ix.SearchBatch(queries, k)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range want {
			for r := range want[qi] {
				if got[qi][r] != want[qi][r] {
					t.Fatalf("shards=%d query %d rank %d: got %+v want %+v",
						shards, qi, r, got[qi][r], want[qi][r])
				}
			}
		}
		single, err := ix.Search(queries.Row(0), k)
		if err != nil {
			t.Fatal(err)
		}
		for r := range want[0] {
			if single[r] != want[0][r] {
				t.Fatalf("shards=%d single query rank %d: got %+v want %+v",
					shards, r, single[r], want[0][r])
			}
		}
	}
}

func TestShardedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := testMatrix(rng, 20, 32)
	if _, err := BuildSharded(nil, 2, 1); err == nil {
		t.Error("expected error on nil data")
	}
	if _, err := BuildSharded(m, 0, 1); err == nil {
		t.Error("expected error on zero shards")
	}
	ix, err := BuildSharded(m, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Shards() != 20 {
		t.Errorf("shards not clamped: %d", ix.Shards())
	}
	if _, err := ix.Search(make([]float64, 7), 1); err == nil {
		t.Error("expected error on wrong query length")
	}
	if _, err := ix.Search(m.Row(0), 0); err == nil {
		t.Error("expected error on k=0")
	}
	if _, err := ix.SearchBatch(nil, 1); err == nil {
		t.Error("expected error on empty batch")
	}
}
