package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/distance"
	"repro/internal/faultinject"
)

// This file implements the shared query engine plus the approximate-search
// modes the paper lists as future work (Section VI), following the semantics
// established for the iSAX family (Echihabi et al., "Return of the Lernaean
// Hydra"):
//
//   - SearchApproximate: the classical iSAX approximate search — visit only
//     the single most promising leaf and return its best candidates. No
//     guarantee, but empirically high recall at a tiny fraction of the
//     exact cost (it is stage 1 of the exact algorithm).
//   - SearchEpsilon: ε-bounded search — exact machinery, but nodes and
//     series are pruned against bound/(1+ε)². Every returned distance is
//     guaranteed within a factor (1+ε) of the true k-NN distance, and
//     ε = 0 degenerates to exact search.

// prepareQuery z-normalizes the query into the searcher's scratch buffer and
// computes its representation and word. No allocations in steady state.
func (s *Searcher) prepareQuery(query []float64, k int) ([]float64, error) {
	t := s.t
	if len(query) != t.data.Stride {
		return nil, fmt.Errorf("index: query length %d, want %d", len(query), t.data.Stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("index: k must be >= 1, got %d", k)
	}
	copy(s.qbuf, query)
	distance.ZNormalize(s.qbuf)
	if _, err := s.enc.QueryRepr(s.qbuf, s.qr); err != nil {
		return nil, err
	}
	if _, err := s.enc.Word(s.qbuf, s.qword); err != nil {
		return nil, err
	}
	return s.qbuf, nil
}

// finishResults snapshots the collector into the searcher-owned result
// buffer (sorted ascending) and returns it.
func (s *Searcher) finishResults() []Result {
	s.resBuf = s.kn.ResultsAppend(s.resBuf[:0])
	return s.resBuf
}

// SearchApproximate returns up to k approximate nearest neighbors from the
// query's best-matching leaf only, in ascending distance order. The answer
// is a valid upper bound on the true k-NN distances. Like Search, the
// returned slice is owned by the Searcher and reused by its next call.
func (s *Searcher) SearchApproximate(query []float64, k int) ([]Result, error) {
	s.kn.Reset(k)
	if err := s.beginShard(query, k, &s.kn, nil, 1, 0, 1); err != nil {
		return nil, err
	}
	s.seeded = false // approximate mode: the seeding stage is the whole query
	return s.finishResults(), nil
}

// SearchEpsilon returns k neighbors whose distances are each within a
// (1+epsilon) factor of the corresponding exact k-NN distance (in the
// squared domain the guarantee is (1+epsilon)²). epsilon = 0 is exact
// search. Larger epsilon prunes more aggressively and runs faster.
func (s *Searcher) SearchEpsilon(query []float64, k int, epsilon float64) ([]Result, error) {
	if epsilon < 0 {
		return nil, fmt.Errorf("index: epsilon must be >= 0, got %v", epsilon)
	}
	return s.search(query, k, 1/((1+epsilon)*(1+epsilon)))
}

// search is the shared engine: pruneScale multiplies the BSF before every
// pruning comparison (1.0 = exact). A node or series is skipped when its
// lower bound is >= bound*pruneScale; any skipped candidate therefore has
// true distance >= bound*pruneScale, i.e. the reported answers are within
// 1/pruneScale of optimal in the squared domain.
//
// All per-query state lives in Searcher scratch. With one worker (or a
// serial searcher, as in BatchSearch) the engine runs inline — no goroutines,
// no WaitGroups — and performs zero heap allocations in steady state.
//
// The engine runs in two phases shared with the collection-level sharded
// search (see SeedShard/FinishShard): beginShard prepares the query and
// seeds the collector with real distances from the best-matching leaf;
// finishShard traverses the tree and refines the surviving leaves.
func (s *Searcher) search(query []float64, k int, pruneScale float64) ([]Result, error) {
	s.kn.Reset(k)
	if err := s.beginShard(query, k, &s.kn, nil, 1, 0, pruneScale); err != nil {
		return nil, err
	}
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteKernel); err != nil {
			return nil, err
		}
	}
	s.finishShard()
	return s.finishResults(), nil
}

// beginShard is the first engine phase: it prepares the query (normalization,
// representation, word, flat distance table), resets the work counters,
// records the shard-query state (collector, id mapping, prune scale) and
// seeds kn with real distances from the query's best-matching leaf.
// kn must have been Reset with this query's k by the caller.
func (s *Searcher) beginShard(query []float64, k int, kn *KNNCollector, pub []int32, idMul, idAdd ID, pruneScale float64) error {
	q, err := s.prepareQuery(query, k)
	if err != nil {
		return err
	}
	s.nodesVisited.Store(0)
	s.leavesRefined.Store(0)
	s.seriesLBD.Store(0)
	s.seriesED.Store(0)

	s.extKN = kn
	s.pub = pub
	s.idMul = idMul
	s.idAdd = idAdd
	s.pruneScale = pruneScale
	s.approxNode = s.approximateLeaf()
	if s.approxNode != nil {
		if s.t.opts.PerSeriesLBD {
			s.processLeafReal(s.approxNode, q, kn)
		} else {
			// Block path: the flat table must exist before the seed leaf's
			// block LBD prefilter. A fresh build costs one l x alphabet
			// sweep per query (microseconds; a qr-cache hit on repeats);
			// the prefilter pays it back whenever the collector already
			// carries a finite bound (later shards, hot queries).
			s.kern.qr = s.qr
			s.dt.build(&s.kern, s.t.gather.alphabet)
			s.processLeafApprox(s.approxNode, q, kn)
		}
	}
	s.seeded = true
	return nil
}

// finishShard is the second engine phase: tree traversal (pruning against
// the collector recorded by beginShard) and priority-queue leaf refinement.
func (s *Searcher) finishShard() {
	t := s.t
	kn := s.extKN
	scale := s.pruneScale
	approx := s.approxNode
	q := s.qbuf
	s.seeded = false

	// On the default block path beginShard already built the flat LBD table
	// (its seed prefilter needs it) and this is a qr-cache hit; under
	// PerSeriesLBD the approximate mode (seeding only) never pays for the
	// build, so it happens here.
	s.kern.qr = s.qr
	s.dt.build(&s.kern, t.gather.alphabet)

	workers := t.opts.Workers
	if s.serial {
		workers = 1
	}
	set := s.set
	set.Reset()

	if workers == 1 {
		for _, rk := range t.rootKeys {
			s.traverseScaled(t.root[rk], kn, approx, scale)
		}
		s.drainScaled(0, q, kn, scale, &s.scratch)
		return
	}

	// Workers forward panics (value + stack) to this goroutine, which
	// re-panics after the join: a panic below otherwise kills the process
	// (recover only works on the panicking goroutine), and the collection
	// layer's shard recovery sits above this frame. The pointer lives on the
	// parallel path only, so the serial path stays allocation-free.
	var wp atomic.Pointer[WorkerPanic]
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer trapPanic(&wp)
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(t.rootKeys) {
					return
				}
				s.traverseScaled(t.root[t.rootKeys[i]], kn, approx, scale)
			}
		}()
	}
	wg.Wait()
	rethrow(&wp)

	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func(start int) {
			defer wg2.Done()
			defer trapPanic(&wp)
			// Workers share this Searcher, so each gets its own block
			// scratch (the parallel path allocates per query anyway).
			s.drainScaled(start, q, kn, scale, &drainScratch{})
		}(w % set.Size())
	}
	wg2.Wait()
	rethrow(&wp)
}

func (s *Searcher) traverseScaled(n *node, kn *KNNCollector, skip *node, scale float64) {
	if n.count == 0 || n == skip {
		return
	}
	s.nodesVisited.Add(1)
	d := nodeMinDist(s.t.sum, s.qr, n.word, n.cards)
	if d >= kn.Bound()*scale {
		return
	}
	if n.isLeaf() {
		s.set.PushRoundRobin(n, d)
		return
	}
	s.traverseScaled(n.children[0], kn, skip, scale)
	s.traverseScaled(n.children[1], kn, skip, scale)
}

// drainScaled pops surviving leaves in ascending lower-bound order and
// refines them. The default path bounds the whole leaf with ONE block
// kernel call (minDistBlockEA writes every member's exact LBD into the
// pooled scratch) and then walks only the members whose bound beats the
// BSF with real distances; Options.PerSeriesLBD restores the per-series
// early-abandoning kernel call. Both paths make identical pruning
// decisions — the per-series certificate and the full block value land on
// the same side of the prune bound because table entries are nonnegative —
// and read the shared BSF atomic once per boundRefreshInterval series,
// re-reading early only when this worker improves the k-NN set. Under
// Options.NoLeafBlocks leaves carry no contiguous block; the block path
// gathers the rows into scratch first, the per-series path gathers from
// the global buffer per series.
func (s *Searcher) drainScaled(start int, q []float64, kn *KNNCollector, scale float64, ds *drainScratch) {
	t := s.t
	set := s.set
	perSeries := t.opts.PerSeriesLBD
	for qi := 0; qi < set.Size(); qi++ {
		pq := set.Queue((start + qi) % set.Size())
		for {
			it, ok := pq.PopIfBelow(kn.Bound() * scale)
			if !ok {
				break
			}
			leaf := it.Payload
			s.leavesRefined.Add(1)
			if perSeries {
				s.refineLeafPerSeries(leaf, q, kn, scale)
			} else {
				s.refineLeafBlock(leaf, q, kn, scale, ds)
			}
		}
	}
}

// refineLeafBlock is the block-kernel refinement: one kernel call for the
// whole leaf, then a survivor walk computing real distances.
func (s *Searcher) refineLeafBlock(leaf *node, q []float64, kn *KNNCollector, scale float64, ds *drainScratch) {
	n := len(leaf.ids)
	if n == 0 {
		return
	}
	t := s.t
	dead := t.dead
	words := s.leafWords(leaf, ds)
	lbd := ds.lbdFor(n)
	bound := kn.Bound()
	s.dt.minDistBlockEA(words, n, lbd, bound*scale)
	var nED int64
	for i, id := range leaf.ids {
		if i%boundRefreshInterval == 0 {
			bound = kn.Bound()
		}
		if lbd[i] >= bound*scale || deadBit(dead, id) {
			continue
		}
		nED++
		d := distance.SquaredEDEarlyAbandon(t.data.Row(int(id)), q, bound)
		if d < bound && kn.Offer(s.mapID(id), d) {
			bound = kn.Bound()
		}
	}
	s.seriesLBD.Add(int64(n))
	s.seriesED.Add(nED)
}

// refineLeafPerSeries is the pre-block refinement loop (one early-abandoning
// table-lookup kernel call per series), kept verbatim behind
// Options.PerSeriesLBD for the same-binary kernel A/B.
func (s *Searcher) refineLeafPerSeries(leaf *node, q []float64, kn *KNNCollector, scale float64) {
	t := s.t
	dead := t.dead
	l := t.l
	words := leaf.words
	var nLBD, nED int64
	bound := kn.Bound()
	for i, id := range leaf.ids {
		if i%boundRefreshInterval == 0 {
			bound = kn.Bound()
		}
		if deadBit(dead, id) {
			continue
		}
		pruneAt := bound * scale
		nLBD++
		var wrow []byte
		if words != nil {
			wrow = words[i*l : (i+1)*l]
		} else {
			wrow = t.words[int(id)*l : (int(id)+1)*l]
		}
		if lb := s.dt.minDistEA(wrow, pruneAt); lb >= pruneAt {
			continue
		}
		nED++
		d := distance.SquaredEDEarlyAbandon(t.data.Row(int(id)), q, bound)
		if d < bound && kn.Offer(s.mapID(id), d) {
			bound = kn.Bound()
		}
	}
	s.seriesLBD.Add(nLBD)
	s.seriesED.Add(nED)
}
