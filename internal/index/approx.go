package index

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/distance"
	"repro/internal/queue"
)

// This file implements the approximate-search modes the paper lists as
// future work (Section VI), following the semantics established for the
// iSAX family (Echihabi et al., "Return of the Lernaean Hydra"):
//
//   - SearchApproximate: the classical iSAX approximate search — visit only
//     the single most promising leaf and return its best candidates. No
//     guarantee, but empirically high recall at a tiny fraction of the
//     exact cost (it is stage 1 of the exact algorithm).
//   - SearchEpsilon: ε-bounded search — exact machinery, but nodes and
//     series are pruned against bound/(1+ε)². Every returned distance is
//     guaranteed within a factor (1+ε) of the true k-NN distance, and
//     ε = 0 degenerates to exact search.

// SearchApproximate returns up to k approximate nearest neighbors from the
// query's best-matching leaf only, in ascending distance order. The answer
// is a valid upper bound on the true k-NN distances.
func (s *Searcher) SearchApproximate(query []float64, k int) ([]Result, error) {
	t := s.t
	if len(query) != t.data.Stride {
		return nil, fmt.Errorf("index: query length %d, want %d", len(query), t.data.Stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("index: k must be >= 1, got %d", k)
	}
	q := distance.ZNormalized(query)
	if _, err := s.enc.QueryRepr(q, s.qr); err != nil {
		return nil, err
	}
	if _, err := s.enc.Word(q, s.qword); err != nil {
		return nil, err
	}
	kn := NewKNNCollector(k)
	if leaf := s.approximateLeaf(); leaf != nil {
		s.processLeafReal(leaf, q, kn)
	}
	return kn.Results(), nil
}

// SearchEpsilon returns k neighbors whose distances are each within a
// (1+epsilon) factor of the corresponding exact k-NN distance (in the
// squared domain the guarantee is (1+epsilon)²). epsilon = 0 is exact
// search. Larger epsilon prunes more aggressively and runs faster.
func (s *Searcher) SearchEpsilon(query []float64, k int, epsilon float64) ([]Result, error) {
	if epsilon < 0 {
		return nil, fmt.Errorf("index: epsilon must be >= 0, got %v", epsilon)
	}
	return s.search(query, k, 1/((1+epsilon)*(1+epsilon)))
}

// search is the shared engine: pruneScale multiplies the BSF before every
// pruning comparison (1.0 = exact). A node or series is skipped when its
// lower bound is >= bound*pruneScale; any skipped candidate therefore has
// true distance >= bound*pruneScale, i.e. the reported answers are within
// 1/pruneScale of optimal in the squared domain.
func (s *Searcher) search(query []float64, k int, pruneScale float64) ([]Result, error) {
	t := s.t
	if len(query) != t.data.Stride {
		return nil, fmt.Errorf("index: query length %d, want %d", len(query), t.data.Stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("index: k must be >= 1, got %d", k)
	}
	q := distance.ZNormalized(query)
	if _, err := s.enc.QueryRepr(q, s.qr); err != nil {
		return nil, err
	}
	if _, err := s.enc.Word(q, s.qword); err != nil {
		return nil, err
	}
	s.kern.qr = s.qr
	s.nodesVisited.Store(0)
	s.leavesRefined.Store(0)
	s.seriesLBD.Store(0)
	s.seriesED.Store(0)

	kn := NewKNNCollector(k)
	approx := s.approximateLeaf()
	if approx != nil {
		s.processLeafReal(approx, q, kn)
	}

	workers := t.opts.Workers
	set := queue.NewSet(t.opts.Queues)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(t.rootKeys) {
					return
				}
				s.traverseScaled(t.root[t.rootKeys[i]], set, kn, approx, pruneScale)
			}
		}()
	}
	wg.Wait()

	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func(start int) {
			defer wg2.Done()
			s.drainScaled(start, set, q, kn, pruneScale)
		}(w % set.Size())
	}
	wg2.Wait()
	return kn.Results(), nil
}

func (s *Searcher) traverseScaled(n *node, set *queue.Set, kn *KNNCollector, skip *node, scale float64) {
	if n.count == 0 || n == skip {
		return
	}
	s.nodesVisited.Add(1)
	d := nodeMinDist(s.t.sum, s.qr, n.word, n.cards)
	if d >= kn.Bound()*scale {
		return
	}
	if n.isLeaf() {
		set.PushRoundRobin(n, d)
		return
	}
	s.traverseScaled(n.children[0], set, kn, skip, scale)
	s.traverseScaled(n.children[1], set, kn, skip, scale)
}

func (s *Searcher) drainScaled(start int, set *queue.Set, q []float64, kn *KNNCollector, scale float64) {
	t := s.t
	for qi := 0; qi < set.Size(); qi++ {
		pq := set.Queue((start + qi) % set.Size())
		for {
			it, ok := pq.PopIfBelow(scaledBound(kn, scale))
			if !ok {
				break
			}
			leaf := it.Payload.(*node)
			s.leavesRefined.Add(1)
			var nLBD, nED int64
			for _, id := range leaf.ids {
				bound := kn.Bound()
				pruneAt := bound * scale
				word := t.words[int(id)*t.l : (int(id)+1)*t.l]
				nLBD++
				if lb := s.kern.minDistEA(word, pruneAt); lb >= pruneAt {
					continue
				}
				nED++
				d := distance.SquaredEDEarlyAbandon(t.data.Row(int(id)), q, bound)
				if d < bound {
					kn.Offer(id, d)
				}
			}
			s.seriesLBD.Add(nLBD)
			s.seriesED.Add(nED)
		}
	}
}

func scaledBound(kn *KNNCollector, scale float64) float64 {
	b := kn.Bound()
	if math.IsInf(b, 1) {
		return b
	}
	return b * scale
}
