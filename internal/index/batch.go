package index

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/queue"
)

// NewSerialSearcher creates a single-threaded searcher: the query engine
// runs inline with no goroutine fan-out, which is the right building block
// when the caller manages inter-query parallelism itself (BatchSearch, the
// collection's streaming engine). A single-threaded searcher gains nothing
// from the multi-queue split (it exists to spread lock contention between
// workers) and loses refinement order across queues; one queue drains leaves
// in global ascending-LBD order, tightening the BSF fastest.
func (t *Tree) NewSerialSearcher() *Searcher {
	s := t.NewSearcher()
	s.serial = true
	s.set = queue.NewSet[*node](1)
	return s
}

// serialSearcher checks a single-threaded searcher out of the tree's pool
// (BatchSearch workers return them, so repeated batches reuse the same
// scratch — encoders, distance tables, queues, collectors — instead of
// rebuilding it per call).
func (t *Tree) serialSearcher() *Searcher {
	if s, ok := t.searchers.Get().(*Searcher); ok {
		return s
	}
	return t.NewSerialSearcher()
}

// BatchSearch answers many independent queries with inter-query parallelism:
// up to the tree's configured worker count run concurrently, each on a
// pooled single-threaded Searcher (mirroring flat.SearchBatch's mini-batch
// protocol — throughput from embarrassing parallelism across queries rather
// than latency from parallelism inside one). Results are returned in query
// order; unlike Searcher.Search, the returned slices are freshly allocated
// and safe to retain.
func (t *Tree) BatchSearch(queries [][]float64, k int) ([][]Result, error) {
	return t.BatchSearchInto(context.Background(), queries, k, t.opts.Workers, nil)
}

// BatchSearchWorkers is BatchSearch with an explicit concurrency cap
// (workers <= 0 selects the tree's configured worker count).
func (t *Tree) BatchSearchWorkers(queries [][]float64, k, workers int) ([][]Result, error) {
	return t.BatchSearchInto(context.Background(), queries, k, workers, nil)
}

// BatchSearchInto is BatchSearchWorkers with caller-owned output
// scaffolding: the outer slice and every inner result slice of dst are
// reused up to their capacity, so a caller issuing batches in a steady loop
// (the streaming engine's batch mode, benchmark harnesses) pays no per-batch
// allocations once the scaffolding has grown to steady-state size. Pass the
// previous return value as dst on the next call.
//
// Results written into a reused dst are overwritten by the next call with
// the same dst — copy them to retain. A nil dst allocates fresh slices
// (the BatchSearch contract).
//
// With workers == 1 the batch runs inline on this goroutine with no fan-out.
//
// ctx is checked at batch granularity — before every query is started — so
// cancelling it stops a large batch mid-flight with ctx's error. A
// non-cancellable ctx (context.Background()) adds no work to the hot loop.
func (t *Tree) BatchSearchInto(ctx context.Context, queries [][]float64, k, workers int, dst [][]Result) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("index: empty query batch")
	}
	if k < 1 {
		return nil, fmt.Errorf("index: k must be >= 1, got %d", k)
	}
	for i, q := range queries {
		if len(q) != t.data.Stride {
			return nil, fmt.Errorf("index: query %d length %d, want %d", i, len(q), t.data.Stride)
		}
	}
	if workers <= 0 {
		workers = t.opts.Workers
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var out [][]Result
	if cap(dst) < len(queries) {
		out = make([][]Result, len(queries))
		copy(out, dst[:cap(dst)])
	} else {
		out = dst[:len(queries)]
	}

	cancellable := ctx.Done() != nil

	if workers == 1 {
		// Explicit Puts rather than defer: the deferred interface conversion
		// is the one heap allocation this path would otherwise make.
		s := t.serialSearcher()
		for i, q := range queries {
			if cancellable {
				if err := ctx.Err(); err != nil {
					t.searchers.Put(s)
					return nil, err
				}
			}
			res, err := batchSearchOne(s, q, k)
			if err != nil {
				// A panicked searcher has undefined scratch state; only
				// healthy searchers go back to the pool.
				if _, panicked := err.(*PanicError); !panicked {
					t.searchers.Put(s)
				}
				return nil, err
			}
			out[i] = append(out[i][:0], res...)
		}
		t.searchers.Put(s)
		return out, nil
	}

	errs := make([]error, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// out is passed as an argument rather than captured: a captured
		// variable would be moved to the heap at its declaration, charging
		// the serial path (which never spawns these goroutines) one
		// allocation per call.
		go func(w int, out [][]Result) {
			defer wg.Done()
			s := t.serialSearcher()
			healthy := true
			defer func() {
				// A panicked searcher has undefined scratch state; only
				// healthy searchers go back to the pool.
				if healthy {
					t.searchers.Put(s)
				}
			}()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(queries) {
					return
				}
				if cancellable {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
				}
				res, err := batchSearchOne(s, queries[i], k)
				if err != nil {
					if _, panicked := err.(*PanicError); panicked {
						healthy = false
					}
					errs[w] = err
					return
				}
				// res aliases the pooled searcher's buffer; copy it out.
				out[i] = append(out[i][:0], res...)
			}
		}(w, out)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// batchSearchOne runs one pooled-searcher query with panic containment: a
// panic anywhere in the engine comes back as a *PanicError instead of
// killing the process, and the caller keeps the corrupted searcher out of
// the pool. The deferred recover is open-coded by the compiler (single
// static defer), so the zero-allocation batch contract is preserved.
func batchSearchOne(s *Searcher, q []float64, k int) (res []Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, stack := recoveredPanic(r)
			err = &PanicError{Op: "batch search", Value: v, Stack: stack}
		}
	}()
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteBatchWorker); err != nil {
			return nil, err
		}
	}
	return s.Search(q, k)
}
