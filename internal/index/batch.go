package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/queue"
)

// serialSearchers is a reusable pool of single-threaded searchers used by
// BatchSearch: each worker checks one out for the duration of the batch, so
// repeated batches reuse the same scratch (encoders, distance tables,
// queues, collectors) instead of rebuilding it per call.
func (t *Tree) serialSearcher() *Searcher {
	if s, ok := t.searchers.Get().(*Searcher); ok {
		return s
	}
	s := t.NewSearcher()
	s.serial = true
	// A single-threaded searcher gains nothing from the multi-queue split
	// (it exists to spread lock contention between workers) and loses
	// refinement order across queues; one queue drains leaves in global
	// ascending-LBD order, tightening the BSF fastest.
	s.set = queue.NewSet[*node](1)
	return s
}

// BatchSearch answers many independent queries with inter-query parallelism:
// up to the tree's configured worker count run concurrently, each on a
// pooled single-threaded Searcher (mirroring flat.SearchBatch's mini-batch
// protocol — throughput from embarrassing parallelism across queries rather
// than latency from parallelism inside one). Results are returned in query
// order; unlike Searcher.Search, the returned slices are freshly allocated
// and safe to retain.
func (t *Tree) BatchSearch(queries [][]float64, k int) ([][]Result, error) {
	return t.BatchSearchWorkers(queries, k, t.opts.Workers)
}

// BatchSearchWorkers is BatchSearch with an explicit concurrency cap
// (workers <= 0 selects the tree's configured worker count).
func (t *Tree) BatchSearchWorkers(queries [][]float64, k, workers int) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("index: empty query batch")
	}
	if k < 1 {
		return nil, fmt.Errorf("index: k must be >= 1, got %d", k)
	}
	for i, q := range queries {
		if len(q) != t.data.Stride {
			return nil, fmt.Errorf("index: query %d length %d, want %d", i, len(q), t.data.Stride)
		}
	}
	if workers <= 0 {
		workers = t.opts.Workers
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([][]Result, len(queries))
	errs := make([]error, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := t.serialSearcher()
			defer t.searchers.Put(s)
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(queries) {
					return
				}
				res, err := s.Search(queries[i], k)
				if err != nil {
					errs[w] = err
					return
				}
				// res aliases the pooled searcher's buffer; copy it out.
				out[i] = append([]Result(nil), res...)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
