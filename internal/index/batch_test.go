package index

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/sfa"
)

func TestBatchSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := randomWalkMatrix(rng, 100, 64)
	tr, err := Build(m, newSAXSum(t, 64, 8, 8), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.BatchSearch(nil, 1); err == nil {
		t.Error("expected error on empty batch")
	}
	if _, err := tr.BatchSearch([][]float64{make([]float64, 64)}, 0); err == nil {
		t.Error("expected error on k=0")
	}
	if _, err := tr.BatchSearch([][]float64{make([]float64, 32)}, 1); err == nil {
		t.Error("expected error on wrong query length")
	}
}

// BatchSearch must return exactly what per-query Search returns, in query
// order, across worker counts — and the returned slices must be safe to
// retain (no aliasing of pooled searcher buffers).
func TestBatchSearchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 96
	m := mixedMatrix(rng, 600, n)
	sum := newSFASum(t, m, sfa.Options{SampleRate: 0.2})
	tr, err := Build(m, sum, Options{LeafCapacity: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 30)
	for i := range queries {
		q := make([]float64, n)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	const k = 5
	want := make([][]Result, len(queries))
	s := tr.NewSearcher()
	for i, q := range queries {
		res, err := s.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]Result(nil), res...) // Search reuses its buffer
	}
	for _, workers := range []int{1, 3, 16} {
		got, err := tr.BatchSearchWorkers(queries, k, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d results, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for r := range want[i] {
				if got[i][r] != want[i][r] {
					t.Fatalf("workers=%d query %d rank %d: got %+v want %+v",
						workers, i, r, got[i][r], want[i][r])
				}
			}
		}
	}
	// Second batch on the same tree reuses the pooled searchers and must
	// not corrupt the first batch's retained results.
	again, err := tr.BatchSearch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		for r := range want[i] {
			if again[i][r] != want[i][r] {
				t.Fatalf("second batch query %d rank %d diverged", i, r)
			}
		}
	}
}

// BenchmarkBatchSearchQPS measures end-to-end batched query throughput —
// the first throughput-oriented (many queries per second) benchmark, as
// opposed to the latency-oriented BenchmarkSearch1NN.
func BenchmarkBatchSearchQPS(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	m := mixedMatrix(rng, 20000, 128)
	q, err := sfa.Learn(m, sfa.Options{SampleRate: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Build(m, sfaSum{q}, Options{LeafCapacity: 256})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 4*runtime.GOMAXPROCS(0))
	for i := range queries {
		qv := make([]float64, 128)
		for j := range qv {
			qv[j] = rng.NormFloat64()
		}
		queries[i] = qv
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.BatchSearch(queries, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(queries))/secs, "queries/s")
	}
}
