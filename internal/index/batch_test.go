package index

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/sfa"
)

func TestBatchSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := randomWalkMatrix(rng, 100, 64)
	tr, err := Build(m, newSAXSum(t, 64, 8, 8), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.BatchSearch(nil, 1); err == nil {
		t.Error("expected error on empty batch")
	}
	if _, err := tr.BatchSearch([][]float64{make([]float64, 64)}, 0); err == nil {
		t.Error("expected error on k=0")
	}
	if _, err := tr.BatchSearch([][]float64{make([]float64, 32)}, 1); err == nil {
		t.Error("expected error on wrong query length")
	}
}

// BatchSearch must return exactly what per-query Search returns, in query
// order, across worker counts — and the returned slices must be safe to
// retain (no aliasing of pooled searcher buffers).
func TestBatchSearchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 96
	m := mixedMatrix(rng, 600, n)
	sum := newSFASum(t, m, sfa.Options{SampleRate: 0.2})
	tr, err := Build(m, sum, Options{LeafCapacity: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 30)
	for i := range queries {
		q := make([]float64, n)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	const k = 5
	want := make([][]Result, len(queries))
	s := tr.NewSearcher()
	for i, q := range queries {
		res, err := s.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]Result(nil), res...) // Search reuses its buffer
	}
	for _, workers := range []int{1, 3, 16} {
		got, err := tr.BatchSearchWorkers(queries, k, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d results, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for r := range want[i] {
				if got[i][r] != want[i][r] {
					t.Fatalf("workers=%d query %d rank %d: got %+v want %+v",
						workers, i, r, got[i][r], want[i][r])
				}
			}
		}
	}
	// Second batch on the same tree reuses the pooled searchers and must
	// not corrupt the first batch's retained results.
	again, err := tr.BatchSearch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		for r := range want[i] {
			if again[i][r] != want[i][r] {
				t.Fatalf("second batch query %d rank %d diverged", i, r)
			}
		}
	}
}

// BatchSearchInto must reuse caller scaffolding across calls: the same dst
// (outer slice and inner result slices) serves successive batches with
// correct, freshly-overwritten contents — and with workers == 1 the reused
// path performs zero steady-state allocations.
func TestBatchSearchIntoReusesScaffolding(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n := 96
	m := mixedMatrix(rng, 600, n)
	tr, err := Build(m, newSAXSum(t, n, 16, 8), Options{LeafCapacity: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	mkBatch := func(seed int64, count int) [][]float64 {
		r := rand.New(rand.NewSource(seed))
		qs := make([][]float64, count)
		for i := range qs {
			q := make([]float64, n)
			for j := range q {
				q[j] = r.NormFloat64()
			}
			qs[i] = q
		}
		return qs
	}
	const k = 5
	batchA, batchB := mkBatch(1, 12), mkBatch(2, 8)
	wantB, err := tr.BatchSearch(batchB, k)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := tr.BatchSearchInto(context.Background(), batchA, k, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	outerA := &dst[0]
	// Second batch (smaller) into the same scaffolding: contents must equal
	// the fresh-allocation answer, and the outer backing array must be the
	// same one.
	dst2, err := tr.BatchSearchInto(context.Background(), batchB, k, 2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &dst2[0] != outerA {
		t.Error("BatchSearchInto reallocated the outer scaffolding")
	}
	for i := range wantB {
		for r := range wantB[i] {
			if dst2[i][r] != wantB[i][r] {
				t.Fatalf("reused dst query %d rank %d: got %+v want %+v", i, r, dst2[i][r], wantB[i][r])
			}
		}
	}
	// Steady-state reuse with one worker allocates nothing.
	if raceEnabled {
		return // the race detector's sync.Pool instrumentation allocates
	}
	for i := 0; i < 3; i++ {
		if dst2, err = tr.BatchSearchInto(context.Background(), batchB, k, 1, dst2); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		var err error
		dst2, err = tr.BatchSearchInto(context.Background(), batchB, k, 1, dst2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state serial BatchSearchInto allocates %v allocs/op, want 0", avg)
	}
}

// BenchmarkBatchSearchQPS measures end-to-end batched query throughput —
// the first throughput-oriented (many queries per second) benchmark, as
// opposed to the latency-oriented BenchmarkSearch1NN.
func BenchmarkBatchSearchQPS(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	m := mixedMatrix(rng, 20000, 128)
	q, err := sfa.Learn(m, sfa.Options{SampleRate: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Build(m, sfaSum{q}, Options{LeafCapacity: 256})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 4*runtime.GOMAXPROCS(0))
	for i := range queries {
		qv := make([]float64, 128)
		for j := range qv {
			qv[j] = rng.NormFloat64()
		}
		queries[i] = qv
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.BatchSearch(queries, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(queries))/secs, "queries/s")
	}
}
