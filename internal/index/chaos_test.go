//go:build faultinject

package index

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
)

// Tree-level chaos: injected faults at the batch-worker and kernel sites.
// (The collection-level sites are exercised by internal/core's chaos suite.)

func chaosTree(tb testing.TB) (*Tree, [][]float64) {
	tb.Helper()
	faultinject.Reset()
	rng := rand.New(rand.NewSource(841))
	data := mixedMatrix(rng, 500, 48)
	t, err := Build(data, newSAXSum(tb, 48, 16, 8), Options{LeafCapacity: 32})
	if err != nil {
		tb.Fatal(err)
	}
	queries := make([][]float64, 6)
	for i := range queries {
		q := make([]float64, 48)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	return t, queries
}

// TestChaosBatchWorkerPanic: an injected panic inside a batch worker fails
// that batch with a *PanicError instead of killing the process, keeps the
// corrupted searcher out of the pool, and the next batch answers exactly.
func TestChaosBatchWorkerPanic(t *testing.T) {
	tree, queries := chaosTree(t)
	defer faultinject.Reset()
	want, err := tree.BatchSearch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		faultinject.Arm(faultinject.SiteBatchWorker, faultinject.Trigger{Mode: faultinject.ModePanic, OnCall: 2})
		_, err := tree.BatchSearchWorkers(queries, 5, workers)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: batch err = %v, want *PanicError", workers, err)
		}
		if _, ok := pe.Value.(faultinject.Panic); !ok {
			t.Fatalf("workers=%d: recovered value %T, want faultinject.Panic", workers, pe.Value)
		}
		faultinject.Disarm(faultinject.SiteBatchWorker)
		got, err := tree.BatchSearchWorkers(queries, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: batch after fault: %v", workers, err)
		}
		for qi := range want {
			for r := range want[qi] {
				if got[qi][r] != want[qi][r] {
					t.Fatalf("workers=%d q=%d rank %d: %+v != %+v after fault", workers, qi, r, got[qi][r], want[qi][r])
				}
			}
		}
	}
}

// TestChaosBatchWorkerError: error-mode injection fails the batch with the
// injected error itself (no panic machinery involved).
func TestChaosBatchWorkerError(t *testing.T) {
	tree, queries := chaosTree(t)
	defer faultinject.Reset()
	faultinject.Arm(faultinject.SiteBatchWorker, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	if _, err := tree.BatchSearch(queries, 5); !faultinject.IsInjected(err) {
		t.Fatalf("batch err = %v, want injected", err)
	}
}

// TestChaosKernelError: the kernel-dispatch site surfaces injected errors
// through Search's error return.
func TestChaosKernelError(t *testing.T) {
	tree, queries := chaosTree(t)
	defer faultinject.Reset()
	s := tree.NewSearcher()
	faultinject.Arm(faultinject.SiteKernel, faultinject.Trigger{Mode: faultinject.ModeError, OnCall: 1})
	if _, err := s.Search(queries[0], 5); !faultinject.IsInjected(err) {
		t.Fatalf("search err = %v, want injected", err)
	}
	faultinject.Reset()
	if _, err := s.Search(queries[0], 5); err != nil {
		t.Fatalf("search after injected error: %v", err)
	}
}
