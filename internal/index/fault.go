package index

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/distance"
)

// This file is the tree's fault-containment layer. The query engine fans out
// across goroutines in two places — finishShard's traversal/drain workers and
// BatchSearchInto's per-query workers — and a panic in any of them would kill
// the whole process: Go panics do not cross goroutine boundaries, so a
// recover in the caller alone is not enough. Worker goroutines therefore
// trap their own panics and forward them to the goroutine that owns the
// query, which either re-panics (finishShard, whose caller — the collection
// layer — converts the panic to a typed error and quarantines the shard) or
// converts the panic to a *PanicError itself (the batch engine).
//
// A searcher that panicked mid-query has undefined scratch state (queues,
// collector, partially built tables), so it is never returned to a pool:
// recovery paths discard it and respawn a fresh searcher in its place.

// WorkerPanic is the value finishShard re-panics with when one of its
// internal worker goroutines panicked: the original panic value plus the
// worker's stack, so the recovery layer above (which is on a different
// goroutine than the fault) can still report where the panic happened.
type WorkerPanic struct {
	Value any
	Stack []byte
}

// PanicError is a recovered query panic converted to an error, returned by
// the batch engine (and wrapped by the collection layer's shard recovery).
type PanicError struct {
	Op    string // which engine caught it ("batch search", "shard seed", ...)
	Value any    // the original panic value
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("index: panic in %s: %v", e.Op, e.Value)
}

// recoveredPanic normalizes a recover() value into (value, stack),
// unwrapping a forwarded WorkerPanic so the original fault's stack is kept.
func recoveredPanic(r any) (any, []byte) {
	if wp, ok := r.(WorkerPanic); ok {
		return wp.Value, wp.Stack
	}
	return r, debug.Stack()
}

// trapPanic is the deferred guard worker goroutines run: it captures the
// first panic among the workers (value + stack) for the owning goroutine to
// rethrow. Later panics are dropped — one fault is enough to fail the query,
// and the first is the one whose stack matters.
func trapPanic(dst *atomic.Pointer[WorkerPanic]) {
	if r := recover(); r != nil {
		v, stack := recoveredPanic(r)
		dst.CompareAndSwap(nil, &WorkerPanic{Value: v, Stack: stack})
	}
}

// rethrow re-panics a forwarded worker panic on the owning goroutine, after
// all workers have been joined.
func rethrow(p *atomic.Pointer[WorkerPanic]) {
	if wp := p.Load(); wp != nil {
		panic(*wp)
	}
}

// MinRootBound returns the smallest summarization lower bound any series in
// this tree can have against the query representation qr — the min of the
// root children's node bounds. It is the certificate a degraded collection
// query uses for a shard whose search did not complete: every unexamined
// series in the shard has true squared distance >= MinRootBound, so the
// best-so-far over the surviving shards is quantifiably close to the true
// answer (see core's partial-result semantics). An empty tree returns +Inf
// (it constrains nothing).
func (t *Tree) MinRootBound(qr []float64) float64 {
	best := math.Inf(1)
	for _, rk := range t.rootKeys {
		n := t.root[rk]
		if n.count == 0 {
			continue
		}
		if d := nodeMinDist(t.sum, qr, n.word, n.cards); d < best {
			best = d
		}
	}
	return best
}

// QueryRepr computes the real-valued query representation of query (which
// is z-normalized into scratch first) into dst, using enc. It is the
// collection layer's certificate helper: computing the representation with
// independent scratch keeps the certificate valid even when the shard
// searcher that would normally own these buffers died mid-query.
func QueryRepr(enc Encoder, query, scratch, dst []float64) error {
	if len(scratch) != len(query) {
		return fmt.Errorf("index: scratch length %d, want %d", len(scratch), len(query))
	}
	copy(scratch, query)
	distance.ZNormalize(scratch)
	_, err := enc.QueryRepr(scratch, dst)
	return err
}
