package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
	"repro/internal/sfa"
)

// Steady-state exact search must perform zero heap allocations: all scratch
// (query copy, representation, word, flat distance table, collector, queues,
// result buffer) is owned by the Searcher, and the single-worker engine runs
// inline without goroutine fan-out.
func TestSearchZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 128
	m := mixedMatrix(rng, 2000, n)
	for name, sum := range map[string]Summarization{
		"SFA": newSFASum(t, m, sfa.Options{SampleRate: 0.2}),
		"SAX": newSAXSum(t, n, 16, 8),
	} {
		// All three refinement configurations share the zero-alloc contract:
		// the default block-kernel path (pooled LBD scratch), the
		// PerSeriesLBD fallback, and NoLeafBlocks (block path gathers word
		// rows into pooled scratch).
		for _, cfg := range []struct {
			suffix string
			opts   Options
		}{
			{"", Options{LeafCapacity: 64, Workers: 1, Queues: 1}},
			{"/per-series", Options{LeafCapacity: 64, Workers: 1, Queues: 1, PerSeriesLBD: true}},
			{"/no-leaf-blocks", Options{LeafCapacity: 64, Workers: 1, Queues: 1, NoLeafBlocks: true}},
		} {
			t.Run(name+cfg.suffix, func(t *testing.T) {
				tr, err := Build(m, sum, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}
				s := tr.NewSearcher()
				query := make([]float64, n)
				for j := range query {
					query[j] = rng.NormFloat64()
				}
				// Warm up: grow every pooled buffer to its steady-state size.
				for i := 0; i < 3; i++ {
					if _, err := s.Search(query, 10); err != nil {
						t.Fatal(err)
					}
				}
				avg := testing.AllocsPerRun(50, func() {
					if _, err := s.Search(query, 10); err != nil {
						t.Fatal(err)
					}
				})
				if avg != 0 {
					t.Errorf("steady-state Search allocates %v allocs/op, want 0", avg)
				}
			})
		}
	}
}

// The block-kernel refinement path and the PerSeriesLBD fallback must
// return IDENTICAL results — same ids, same distance bits — on the same
// build: the block kernels are bit-identical to the per-series sequential
// kernel and both paths make the same pruning decisions. Single worker
// keeps the comparison deterministic.
func TestBlockRefinementMatchesPerSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 96
	m := mixedMatrix(rng, 1500, n)
	sum := newSFASum(t, m, sfa.Options{SampleRate: 0.2})
	for _, noBlocks := range []bool{false, true} {
		block, err := Build(m, sum, Options{LeafCapacity: 64, Workers: 1, Queues: 1, NoLeafBlocks: noBlocks})
		if err != nil {
			t.Fatal(err)
		}
		perSeries, err := Build(m, sum, Options{LeafCapacity: 64, Workers: 1, Queues: 1, NoLeafBlocks: noBlocks, PerSeriesLBD: true})
		if err != nil {
			t.Fatal(err)
		}
		sb := block.NewSearcher()
		sp := perSeries.NewSearcher()
		query := make([]float64, n)
		for qi := 0; qi < 25; qi++ {
			for j := range query {
				query[j] = rng.NormFloat64()
			}
			k := 1 + qi%10
			got, err := sb.Search(query, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sp.Search(query, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("noBlocks=%v query %d: %d results vs %d", noBlocks, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("noBlocks=%v query %d rank %d: block %+v != per-series %+v", noBlocks, qi, i, got[i], want[i])
				}
			}
			// Identical pruning decisions imply identical work counters.
			if gs, ws := sb.LastStats(), sp.LastStats(); gs != ws {
				t.Fatalf("noBlocks=%v query %d: stats diverged: block %+v != per-series %+v", noBlocks, qi, gs, ws)
			}
			// Approximate mode: the seed prefilter must not change answers.
			ga, err := sb.SearchApproximate(query, k)
			if err != nil {
				t.Fatal(err)
			}
			wa, err := sp.SearchApproximate(query, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(ga) != len(wa) {
				t.Fatalf("noBlocks=%v query %d approx: %d results vs %d", noBlocks, qi, len(ga), len(wa))
			}
			for i := range wa {
				if ga[i] != wa[i] {
					t.Fatalf("noBlocks=%v query %d approx rank %d: %+v != %+v", noBlocks, qi, i, ga[i], wa[i])
				}
			}
		}
	}
}

// The flat per-query distance table is the default refinement kernel; it
// must agree bit-for-bit (not just within tolerance) with the scalar
// reference: both accumulate the identical per-position terms in the same
// order.
func TestFlatTableBitForBitScalar(t *testing.T) {
	sum, g, enc, m := ablationFixture(t)
	dt := &distTable{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		query := make([]float64, 128)
		for j := range query {
			query[j] = r.NormFloat64()
		}
		distance.ZNormalize(query)
		qr := make([]float64, 16)
		if _, err := enc.QueryRepr(query, qr); err != nil {
			return false
		}
		k := kernel{qr: qr, weights: sum.Weights(), g: g, l: 16}
		dt.build(&k, 1<<sum.MaxBits()) // reused across seeds, as in the searcher
		word := make([]byte, 16)
		if _, err := enc.Word(m.Row(r.Intn(m.Len())), word); err != nil {
			return false
		}
		return dt.minDistEA(word, math.Inf(1)) == k.minDistScalar(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Leaf refinement blocks must mirror the global word buffer after build and
// stay consistent through post-build inserts (including leaf splits).
func TestLeafBlocksConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 64
	m := mixedMatrix(rng, 500, n)
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after build: %v", err)
	}
	enc := tr.Encoder()
	for i := 0; i < 200; i++ {
		series := make([]float64, n)
		for j := range series {
			series[j] = rng.NormFloat64()
		}
		distance.ZNormalize(series)
		if _, err := tr.Insert(series, enc); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	// Search over the mutated tree stays exact.
	s := tr.NewSearcher()
	for qi := 0; qi < 10; qi++ {
		query := make([]float64, n)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		res, err := s.Search(query, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(tr.data, query, 3)
		for i := range want {
			if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
				t.Fatalf("query %d rank %d: got %v want %v", qi, i, res[i].Dist, want[i])
			}
		}
	}
}

// The pooled result buffer means consecutive searches on one Searcher reuse
// the same backing array; the documented contract is that results are valid
// until the next call. Verify the values are correct immediately after each
// call even when k varies.
func TestResultBufferReuseAcrossK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 64
	m := mixedMatrix(rng, 300, n)
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewSearcher()
	query := make([]float64, n)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	for _, k := range []int{10, 1, 5, 50, 2} {
		res, err := s.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(m, query, k)
		if len(res) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(res), len(want))
		}
		for i := range want {
			if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
				t.Fatalf("k=%d rank %d: got %v want %v", k, i, res[i].Dist, want[i])
			}
		}
	}
}
