package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/distance"
	"repro/internal/sax"
	"repro/internal/sfa"
)

// Local Summarization adapters (the public ones live in internal/core; the
// index package stays free of sax/sfa imports outside tests).
type saxSum struct{ *sax.Quantizer }

func (s saxSum) NewIndexEncoder() Encoder { return s.Quantizer.NewEncoder() }

type sfaSum struct{ *sfa.Quantizer }

func (s sfaSum) NewIndexEncoder() Encoder { return s.Quantizer.NewTransformer() }

func randomWalkMatrix(rng *rand.Rand, count, n int) *distance.Matrix {
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		v := 0.0
		for j := range row {
			v += rng.NormFloat64()
			row[j] = v
		}
	}
	m.ZNormalizeAll()
	return m
}

func mixedMatrix(rng *rand.Rand, count, n int) *distance.Matrix {
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		switch i % 3 {
		case 0: // random walk
			v := 0.0
			for j := range row {
				v += rng.NormFloat64()
				row[j] = v
			}
		case 1: // high-frequency sinusoid + noise
			f := 3 + rng.Float64()*float64(n/2-4)
			ph := rng.Float64() * 2 * math.Pi
			for j := range row {
				row[j] = math.Sin(2*math.Pi*f*float64(j)/float64(n)+ph) + 0.2*rng.NormFloat64()
			}
		default: // white noise
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
	}
	m.ZNormalizeAll()
	return m
}

func newSAXSum(t testing.TB, n, l, bits int) saxSum {
	q, err := sax.NewQuantizer(n, l, bits)
	if err != nil {
		t.Fatal(err)
	}
	return saxSum{q}
}

func newSFASum(t testing.TB, data *distance.Matrix, opts sfa.Options) sfaSum {
	q, err := sfa.Learn(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sfaSum{q}
}

// bruteKNN returns the exact k smallest squared distances (sorted).
func bruteKNN(data *distance.Matrix, query []float64, k int) []float64 {
	q := distance.ZNormalized(query)
	dists := make([]float64, data.Len())
	for i := range dists {
		dists[i] = distance.SquaredED(data.Row(i), q)
	}
	sort.Float64s(dists)
	if k > len(dists) {
		k = len(dists)
	}
	return dists[:k]
}

func TestBuildValidation(t *testing.T) {
	s := newSAXSum(t, 64, 8, 8)
	if _, err := Build(nil, s, Options{}); err == nil {
		t.Error("expected error on nil data")
	}
	if _, err := Build(distance.NewMatrix(0, 64), s, Options{}); err == nil {
		t.Error("expected error on empty data")
	}
	rng := rand.New(rand.NewSource(1))
	m := randomWalkMatrix(rng, 10, 64)
	if _, err := Build(m, s, Options{LeafCapacity: -1}); err == nil {
		t.Error("expected error on negative leaf capacity")
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomWalkMatrix(rng, 50, 64)
	tr, err := Build(m, newSAXSum(t, 64, 8, 8), Options{LeafCapacity: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewSearcher()
	if _, err := s.Search(make([]float64, 32), 1); err == nil {
		t.Error("expected query length error")
	}
	if _, err := s.Search(make([]float64, 64), 0); err == nil {
		t.Error("expected k error")
	}
}

// The golden invariant: the index returns exactly the brute-force answer.
func TestExactness1NN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 96
	m := mixedMatrix(rng, 600, n)
	sums := map[string]Summarization{
		"SAX": newSAXSum(t, n, 16, 8),
		"SFA": newSFASum(t, m, sfa.Options{SampleRate: 0.2}),
	}
	for name, sum := range sums {
		for _, leaf := range []int{8, 64, 1024} {
			for _, workers := range []int{1, 4} {
				tr, err := Build(m, sum, Options{LeafCapacity: leaf, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				s := tr.NewSearcher()
				for qi := 0; qi < 20; qi++ {
					query := make([]float64, n)
					for j := range query {
						query[j] = rng.NormFloat64()
					}
					res, err := s.Search1(query)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteKNN(m, query, 1)[0]
					if math.Abs(res.Dist-want) > 1e-7*(want+1) {
						t.Fatalf("%s leaf=%d workers=%d query %d: got %v want %v",
							name, leaf, workers, qi, res.Dist, want)
					}
				}
			}
		}
	}
}

func TestExactnessKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 64
	m := mixedMatrix(rng, 400, n)
	sum := newSFASum(t, m, sfa.Options{WordLength: 8, SampleRate: 0.25})
	tr, err := Build(m, sum, Options{LeafCapacity: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewSearcher()
	for _, k := range []int{1, 3, 5, 10, 50, 400, 500} {
		query := make([]float64, n)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		res, err := s.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(m, query, k)
		if len(res) != len(want) {
			t.Fatalf("k=%d: got %d results, want %d", k, len(res), len(want))
		}
		for i := range want {
			if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
				t.Fatalf("k=%d rank %d: got %v want %v", k, i, res[i].Dist, want[i])
			}
		}
		if !sort.SliceIsSorted(res, func(a, b int) bool { return res[a].Dist < res[b].Dist }) {
			t.Fatalf("k=%d: results not sorted", k)
		}
	}
}

// Property: exactness holds across random datasets, seeds, and worker
// counts for SFA-based indexes.
func TestExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + rng.Intn(3)*32
		count := 100 + rng.Intn(300)
		m := mixedMatrix(rng, count, n)
		q, err := sfa.Learn(m, sfa.Options{WordLength: 8, SampleRate: 0.3})
		if err != nil {
			return false
		}
		tr, err := Build(m, sfaSum{q}, Options{
			LeafCapacity: 1 + rng.Intn(64),
			Workers:      1 + rng.Intn(8),
		})
		if err != nil {
			return false
		}
		s := tr.NewSearcher()
		for qi := 0; qi < 5; qi++ {
			query := make([]float64, n)
			for j := range query {
				query[j] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(5)
			res, err := s.Search(query, k)
			if err != nil {
				return false
			}
			want := bruteKNN(m, query, k)
			for i := range want {
				if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchSelfReturnsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	m := randomWalkMatrix(rng, 200, n)
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewSearcher()
	for i := 0; i < 10; i++ {
		res, err := s.Search1(m.Row(i * 7))
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist > 1e-9 {
			t.Errorf("self query %d: dist %v, want 0", i, res.Dist)
		}
	}
}

// Kernel: the SIMD-structured LBD must agree exactly with the scalar
// reference, and must be a valid lower bound at full cardinality.
func TestKernelMatchesScalarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 96
	m := mixedMatrix(rng, 300, n)
	q, err := sfa.Learn(m, sfa.Options{SampleRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sum := sfaSum{q}
	g := newGatherTables(sum)
	enc := sum.NewIndexEncoder()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		query := make([]float64, n)
		for j := range query {
			query[j] = r.NormFloat64()
		}
		distance.ZNormalize(query)
		qr := make([]float64, 16)
		if _, err := enc.QueryRepr(query, qr); err != nil {
			return false
		}
		k := kernel{qr: qr, weights: sum.Weights(), g: g, l: 16}
		word := make([]byte, 16)
		if _, err := enc.Word(m.Row(r.Intn(m.Len())), word); err != nil {
			return false
		}
		want := k.minDistScalar(word)
		got := k.minDistEA(word, math.Inf(1))
		return math.Abs(got-want) <= 1e-9*(want+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Kernel early abandoning: a result <= bsf equals the exact bound; a result
// > bsf certifies the exact bound also exceeds bsf.
func TestKernelEarlyAbandonProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64
	m := mixedMatrix(rng, 200, n)
	q, err := sfa.Learn(m, sfa.Options{WordLength: 12, SampleRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	sum := sfaSum{q}
	g := newGatherTables(sum)
	enc := sum.NewIndexEncoder()
	f := func(seed int64, bsfRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		query := make([]float64, n)
		for j := range query {
			query[j] = r.NormFloat64()
		}
		distance.ZNormalize(query)
		qr := make([]float64, 12)
		enc.QueryRepr(query, qr)
		k := kernel{qr: qr, weights: sum.Weights(), g: g, l: 12}
		word := make([]byte, 12)
		enc.Word(m.Row(r.Intn(m.Len())), word)
		exact := k.minDistScalar(word)
		bsf := math.Mod(math.Abs(bsfRaw), 1000)
		got := k.minDistEA(word, bsf)
		if got <= bsf {
			return math.Abs(got-exact) <= 1e-9*(exact+1)
		}
		return exact > bsf || math.Abs(got-exact) <= 1e-9*(exact+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// nodeMinDist must agree with the summarization's own variable-cardinality
// mindist for SAX (whose implementation is independent).
func TestNodeMinDistMatchesSAX(t *testing.T) {
	n := 64
	sq, err := sax.NewQuantizer(n, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := saxSum{sq}
	rng := rand.New(rand.NewSource(8))
	enc := sum.NewIndexEncoder()
	for trial := 0; trial < 100; trial++ {
		query := make([]float64, n)
		series := make([]float64, n)
		for j := range query {
			query[j] = rng.NormFloat64()
			series[j] = rng.NormFloat64()
		}
		distance.ZNormalize(query)
		distance.ZNormalize(series)
		qr := make([]float64, 8)
		enc.QueryRepr(query, qr)
		full := make([]byte, 8)
		enc.Word(series, full)
		bits := 1 + rng.Intn(8)
		word := make([]byte, 8)
		cards := make([]uint8, 8)
		for j := range word {
			word[j] = full[j] >> (8 - bits)
			cards[j] = uint8(bits)
		}
		want := sq.MinDistVariable(qr, word, cards)
		got := nodeMinDist(sum, qr, word, cards)
		if math.Abs(got-want) > 1e-12*(want+1) {
			t.Fatalf("trial %d bits=%d: got %v want %v", trial, bits, got, want)
		}
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 64
	count := 500
	m := mixedMatrix(rng, count, n)
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Series != count {
		t.Errorf("Series: %d", st.Series)
	}
	if st.Subtrees < 1 || st.Subtrees != len(tr.rootKeys) {
		t.Errorf("Subtrees: %d", st.Subtrees)
	}
	if st.Leaves < 1 || st.AvgLeafSize <= 0 || st.AvgDepth < 1 {
		t.Errorf("degenerate stats: %+v", st)
	}
	// All series accounted for.
	total := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.isLeaf() {
			total += len(nd.ids)
			return
		}
		walk(nd.children[0])
		walk(nd.children[1])
	}
	for _, k := range tr.rootKeys {
		walk(tr.root[k])
	}
	if total != count {
		t.Errorf("leaves hold %d series, want %d", total, count)
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 64
	m := mixedMatrix(rng, 1000, n)
	const cap = 25
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: cap})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.isLeaf() {
			if len(nd.ids) > cap && !nd.noSplit {
				t.Errorf("splittable leaf of size %d exceeds capacity %d", len(nd.ids), cap)
			}
			return
		}
		walk(nd.children[0])
		walk(nd.children[1])
	}
	for _, k := range tr.rootKeys {
		walk(tr.root[k])
	}
}

func TestIdenticalSeriesOverflowLeaf(t *testing.T) {
	// 100 copies of the same series cannot be split; the leaf must absorb
	// them and search must still be exact.
	n := 64
	base := make([]float64, n)
	rng := rand.New(rand.NewSource(11))
	for j := range base {
		base[j] = math.Sin(float64(j)/5) + 0.01*rng.NormFloat64()
	}
	m := distance.NewMatrix(100, n)
	for i := 0; i < 100; i++ {
		copy(m.Row(i), base)
	}
	m.ZNormalizeAll()
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.NewSearcher().Search(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.Dist > 1e-9 {
			t.Errorf("duplicate search distance %v, want 0", r.Dist)
		}
	}
}

func TestKNNSet(t *testing.T) {
	s := NewKNNCollector(3)
	if !math.IsInf(s.Bound(), 1) {
		t.Error("initial bound should be +Inf")
	}
	s.Offer(1, 5)
	s.Offer(2, 3)
	if !math.IsInf(s.Bound(), 1) {
		t.Error("bound should stay +Inf until k results")
	}
	s.Offer(3, 7)
	if s.Bound() != 7 {
		t.Errorf("bound %v, want 7", s.Bound())
	}
	s.Offer(4, 1) // evicts 7
	if s.Bound() != 5 {
		t.Errorf("bound %v, want 5", s.Bound())
	}
	s.Offer(5, 100) // ignored
	res := s.Results()
	if len(res) != 3 || res[0].Dist != 1 || res[1].Dist != 3 || res[2].Dist != 5 {
		t.Errorf("results %+v", res)
	}
}

func TestBuildPhaseTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := mixedMatrix(rng, 300, 64)
	tr, err := Build(m, newSAXSum(t, 64, 8, 8), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TransformSeconds < 0 || tr.TreeSeconds < 0 {
		t.Error("negative phase timings")
	}
	if tr.Len() != 300 || tr.SeriesLen() != 64 {
		t.Error("accessors wrong")
	}
}

func BenchmarkBuildSAX(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	m := mixedMatrix(rng, 20000, 128)
	sum := newSAXSum(b, 128, 16, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(m, sum, Options{LeafCapacity: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch1NN(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	m := mixedMatrix(rng, 20000, 128)
	q, err := sfa.Learn(m, sfa.Options{SampleRate: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Build(m, sfaSum{q}, Options{LeafCapacity: 256})
	if err != nil {
		b.Fatal(err)
	}
	s := tr.NewSearcher()
	query := make([]float64, 128)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search1(query); err != nil {
			b.Fatal(err)
		}
	}
}
