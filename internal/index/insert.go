package index

import (
	"fmt"
	"math/bits"
)

// Insert adds a single (already z-normalized) series to the index and
// returns its id. The series is appended to the underlying data matrix, its
// word computed with enc, and the tree updated along the insertion path —
// splitting the target leaf if it overflows, exactly as during batch
// construction (MESSI's incremental-insert behaviour).
//
// Insert is NOT safe to run concurrently with Search or other Inserts;
// callers own that synchronization (a batch-load-then-query workload, the
// paper's setting, needs none).
func (t *Tree) Insert(series []float64, enc Encoder) (int32, error) {
	if len(series) != t.data.Stride {
		return 0, fmt.Errorf("index: series length %d, want %d", len(series), t.data.Stride)
	}
	word := make([]byte, t.l)
	if _, err := enc.Word(series, word); err != nil {
		return 0, err
	}
	id := int32(t.data.Append(series))
	t.words = append(t.words, word...)

	key := t.rootKey(word)
	root, ok := t.root[key]
	if !ok {
		root = t.newRootChild(key, nil)
		t.root[key] = root
		t.insertRootKey(key)
	}
	// Descend to the leaf, updating subtree counts on the way.
	n := root
	for !n.isLeaf() {
		n.count++
		j := n.split
		childBits := int(n.children[0].cards[j])
		shift := uint(t.maxBits - childBits)
		b := (word[j] >> shift) & 1
		n = n.children[b]
	}
	n.ids = append(n.ids, id)
	if !t.opts.NoLeafBlocks {
		n.words = append(n.words, word...) // keep the leaf refinement block row-aligned with ids
	}
	n.count++
	if len(n.ids) > t.opts.LeafCapacity && !n.noSplit {
		t.splitToCapacity(n)
	}
	return id, nil
}

// insertRootKey keeps rootKeys sorted as new keys appear.
func (t *Tree) insertRootKey(key uint64) {
	lo, hi := 0, len(t.rootKeys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.rootKeys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t.rootKeys = append(t.rootKeys, 0)
	copy(t.rootKeys[lo+1:], t.rootKeys[lo:])
	t.rootKeys[lo] = key
}

// CheckInvariants walks the whole tree and verifies its structural
// invariants; it returns the first violation found. Used by tests and
// available to callers who mutate the index with Insert.
//
// Invariants checked:
//   - every series id appears in exactly one leaf;
//   - each leaf series' word matches every prefix on its path (the symbol
//     prefix of the node at the node's cardinality);
//   - each leaf's contiguous refinement block mirrors the global word
//     buffer row-for-row;
//   - inner node counts equal the sum of their children's;
//   - child prefixes extend their parent's at the split position;
//   - no splittable leaf exceeds the leaf capacity.
func (t *Tree) CheckInvariants() error {
	seen := make([]bool, t.data.Len())
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isLeaf() {
			if len(n.ids) != int(n.count) {
				return fmt.Errorf("leaf count %d != len(ids) %d", n.count, len(n.ids))
			}
			if len(n.ids) > t.opts.LeafCapacity && !n.noSplit {
				return fmt.Errorf("splittable leaf of size %d exceeds capacity %d", len(n.ids), t.opts.LeafCapacity)
			}
			if t.opts.NoLeafBlocks {
				if len(n.words) != 0 {
					return fmt.Errorf("leaf carries a %d-byte block despite NoLeafBlocks", len(n.words))
				}
			} else {
				if len(n.words) != len(n.ids)*t.l {
					return fmt.Errorf("leaf block has %d bytes, want %d", len(n.words), len(n.ids)*t.l)
				}
				for i, id := range n.ids {
					if id < 0 || int(id) >= t.data.Len() {
						return fmt.Errorf("leaf id %d out of range", id)
					}
					blockRow := n.words[i*t.l : (i+1)*t.l]
					globalRow := t.words[int(id)*t.l : (int(id)+1)*t.l]
					for j := range blockRow {
						if blockRow[j] != globalRow[j] {
							return fmt.Errorf("leaf block row %d diverges from global word of series %d", i, id)
						}
					}
				}
			}
			for _, id := range n.ids {
				if id < 0 || int(id) >= t.data.Len() {
					return fmt.Errorf("leaf id %d out of range", id)
				}
				if seen[id] {
					return fmt.Errorf("series %d appears in more than one leaf", id)
				}
				seen[id] = true
				word := t.words[int(id)*t.l : (int(id)+1)*t.l]
				for j := 0; j < t.l; j++ {
					bits := int(n.cards[j])
					if bits == 0 {
						continue
					}
					if word[j]>>(t.maxBits-bits) != n.word[j] {
						return fmt.Errorf("series %d word[%d]=%d violates node prefix %d@%d bits",
							id, j, word[j], n.word[j], bits)
					}
				}
			}
			return nil
		}
		if n.children[0] == nil || n.children[1] == nil {
			return fmt.Errorf("inner node with missing child")
		}
		if n.count != n.children[0].count+n.children[1].count {
			return fmt.Errorf("inner count %d != children %d+%d",
				n.count, n.children[0].count, n.children[1].count)
		}
		j := n.split
		for b := 0; b < 2; b++ {
			c := n.children[b]
			if int(c.cards[j]) != int(n.cards[j])+1 {
				return fmt.Errorf("child cardinality %d != parent %d + 1 at split %d", c.cards[j], n.cards[j], j)
			}
			if c.word[j] != n.word[j]<<1|byte(b) {
				return fmt.Errorf("child prefix %d does not extend parent %d with bit %d", c.word[j], n.word[j], b)
			}
		}
		if err := walk(n.children[0]); err != nil {
			return err
		}
		return walk(n.children[1])
	}
	for _, k := range t.rootKeys {
		if err := walk(t.root[k]); err != nil {
			return err
		}
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("series %d missing from every leaf", id)
		}
	}
	if len(t.dead) > (t.data.Len()+63)/64 {
		return fmt.Errorf("tombstone bitmap has %d words for %d series", len(t.dead), t.data.Len())
	}
	pop := 0
	for w, word := range t.dead {
		pop += bits.OnesCount64(word)
		if word != 0 {
			if hi := w*64 + 63 - bits.LeadingZeros64(word); hi >= t.data.Len() {
				return fmt.Errorf("tombstone bit %d out of range [0,%d)", hi, t.data.Len())
			}
		}
	}
	if pop != t.deadCount {
		return fmt.Errorf("tombstone count %d != bitmap population %d", t.deadCount, pop)
	}
	return nil
}
