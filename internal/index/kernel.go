package index

import (
	"math"

	"repro/internal/simd"
)

// gatherTables holds, for every word position and every full-cardinality
// symbol, the lower and upper interval bounds — the precomputed form of the
// paper's Gather_bound step (Algorithm 3, line 5). They depend only on the
// summarization, so the tree builds them once.
type gatherTables struct {
	lower [][]float64 // [l][alphabet]
	upper [][]float64 // [l][alphabet]
}

func newGatherTables(s Summarizer) *gatherTables {
	l := s.Segments()
	alpha := 1 << s.MaxBits()
	g := &gatherTables{
		lower: make([][]float64, l),
		upper: make([][]float64, l),
	}
	for j := 0; j < l; j++ {
		bps := s.Breakpoints(j)
		lo := make([]float64, alpha)
		hi := make([]float64, alpha)
		for sym := 0; sym < alpha; sym++ {
			if sym == 0 {
				lo[sym] = math.Inf(-1)
			} else {
				lo[sym] = bps[sym-1]
			}
			if sym == alpha-1 {
				hi[sym] = math.Inf(1)
			} else {
				hi[sym] = bps[sym]
			}
		}
		g.lower[j] = lo
		g.upper[j] = hi
	}
	return g
}

// kernel is the per-query SIMD lower-bound distance state: the query
// representation plus the shared gather tables and weights. It implements
// Algorithm 3 — chunked, branchless (mask+blend) LBD computation with early
// abandoning after every simd.Width-lane block.
type kernel struct {
	qr      []float64 // query representation, length l
	weights []float64
	g       *gatherTables
	l       int
}

// minDistEA computes the squared lower-bound distance between the query and
// a full-cardinality word, abandoning as soon as the partial sum exceeds
// bsf. A returned value > bsf is only a certificate; values <= bsf are
// exact.
func (k *kernel) minDistEA(word []byte, bsf float64) float64 {
	var sum float64
	l := k.l
	for c := 0; c < l; c += simd.Width {
		var vq, vlo, vhi, vw simd.Vec
		lanes := l - c
		if lanes > simd.Width {
			lanes = simd.Width
		}
		for i := 0; i < lanes; i++ {
			j := c + i
			sym := word[j]
			vq[i] = k.qr[j]
			vlo[i] = k.g.lower[j][sym]
			vhi[i] = k.g.upper[j][sym]
			vw[i] = k.weights[j]
		}
		for i := lanes; i < simd.Width; i++ {
			vlo[i] = math.Inf(-1) // padding lanes fall inside their interval
			vhi[i] = math.Inf(1)
		}
		// Three-way branchless select (paper Fig. 6): UPPER, LOWER, ZERO.
		below := simd.CmpLT(vq, vlo)
		above := simd.CmpGT(vq, vhi)
		dLo := simd.Sub(vlo, vq)
		dHi := simd.Sub(vq, vhi)
		d := simd.Blend(below, dLo, simd.Blend(above, dHi, simd.Vec{}))
		sum += simd.Sum(simd.Mul(vw, simd.Mul(d, d)))
		if sum > bsf {
			return sum
		}
	}
	return sum
}

// minDistScalar is the reference scalar implementation of the same bound;
// tests assert exact agreement with minDistEA.
func (k *kernel) minDistScalar(word []byte) float64 {
	var sum float64
	for j := 0; j < k.l; j++ {
		sym := word[j]
		lo, hi := k.g.lower[j][sym], k.g.upper[j][sym]
		var d float64
		switch {
		case k.qr[j] < lo:
			d = lo - k.qr[j]
		case k.qr[j] > hi:
			d = k.qr[j] - hi
		}
		sum += k.weights[j] * d * d
	}
	return sum
}

// nodeMinDist computes the squared lower-bound distance between the query
// representation and a variable-cardinality node word (cards[j] bits of
// prefix per position; cards[j] == 0 means the position is unconstrained).
func nodeMinDist(s Summarizer, qr []float64, word []byte, cards []uint8) float64 {
	l := s.Segments()
	maxBits := s.MaxBits()
	weights := s.Weights()
	var sum float64
	for j := 0; j < l; j++ {
		bits := int(cards[j])
		if bits == 0 {
			continue // interval is (-inf, +inf): contributes nothing
		}
		bps := s.Breakpoints(j)
		shift := uint(maxBits - bits)
		loIdx := int(word[j]) << shift
		hiIdx := (int(word[j]) + 1) << shift
		v := qr[j]
		var d float64
		if loIdx > 0 && v < bps[loIdx-1] {
			d = bps[loIdx-1] - v
		} else if hiIdx <= len(bps) && v > bps[hiIdx-1] {
			d = v - bps[hiIdx-1]
		}
		sum += weights[j] * d * d
	}
	return sum
}

// distTable is the ablation alternative to the mask/blend kernel: for one
// query, precompute the weighted squared distance contribution of every
// (position, symbol) pair, reducing the per-series LBD to l table lookups
// plus adds. It trades one l x alphabet build per query for branch-free
// lookups per series; the benchmarks compare it against Algorithm 3.
type distTable struct {
	table [][]float64 // [l][alphabet] weighted squared distances
	l     int
}

func newDistTable(k *kernel, alphabet int) *distTable {
	t := &distTable{table: make([][]float64, k.l), l: k.l}
	for j := 0; j < k.l; j++ {
		row := make([]float64, alphabet)
		v := k.qr[j]
		w := k.weights[j]
		for sym := 0; sym < alphabet; sym++ {
			lo, hi := k.g.lower[j][sym], k.g.upper[j][sym]
			var d float64
			switch {
			case v < lo:
				d = lo - v
			case v > hi:
				d = v - hi
			}
			row[sym] = w * d * d
		}
		t.table[j] = row
	}
	return t
}

// minDistEA computes the same early-abandoning squared lower bound as the
// kernel, via table lookups in chunks of simd.Width positions.
func (t *distTable) minDistEA(word []byte, bsf float64) float64 {
	var sum float64
	for c := 0; c < t.l; c += simd.Width {
		end := c + simd.Width
		if end > t.l {
			end = t.l
		}
		for j := c; j < end; j++ {
			sum += t.table[j][word[j]]
		}
		if sum > bsf {
			return sum
		}
	}
	return sum
}
