package index

import (
	"math"

	"repro/internal/simd"
)

// gatherTables holds, for every word position and every full-cardinality
// symbol, the lower and upper interval bounds — the precomputed form of the
// paper's Gather_bound step (Algorithm 3, line 5). They depend only on the
// summarization, so the tree builds them once.
//
// The tables are stored flat ([l*alphabet], indexed j*alphabet+sym) rather
// than as ragged [][]float64: one allocation, one base pointer, and no
// per-position slice-header load in the kernel inner loop.
type gatherTables struct {
	lower    []float64 // [l*alphabet]
	upper    []float64 // [l*alphabet]
	alphabet int
}

func newGatherTables(s Summarizer) *gatherTables {
	l := s.Segments()
	alpha := 1 << s.MaxBits()
	g := &gatherTables{
		lower:    make([]float64, l*alpha),
		upper:    make([]float64, l*alpha),
		alphabet: alpha,
	}
	for j := 0; j < l; j++ {
		bps := s.Breakpoints(j)
		lo := g.lower[j*alpha : (j+1)*alpha]
		hi := g.upper[j*alpha : (j+1)*alpha]
		for sym := 0; sym < alpha; sym++ {
			if sym == 0 {
				lo[sym] = math.Inf(-1)
			} else {
				lo[sym] = bps[sym-1]
			}
			if sym == alpha-1 {
				hi[sym] = math.Inf(1)
			} else {
				hi[sym] = bps[sym]
			}
		}
	}
	return g
}

// kernel is the per-query SIMD lower-bound distance state: the query
// representation plus the shared gather tables and weights. It implements
// Algorithm 3 — chunked, branchless (mask+blend) LBD computation with early
// abandoning after every simd.Width-lane block. It remains the reference
// gather-style kernel; the default refinement path uses distTable below.
type kernel struct {
	qr      []float64 // query representation, length l
	weights []float64
	g       *gatherTables
	l       int
}

// minDistEA computes the squared lower-bound distance between the query and
// a full-cardinality word, abandoning as soon as the partial sum exceeds
// bsf. A returned value > bsf is only a certificate; values <= bsf are
// exact.
func (k *kernel) minDistEA(word []byte, bsf float64) float64 {
	var sum float64
	l := k.l
	alpha := k.g.alphabet
	for c := 0; c < l; c += simd.Width {
		var vq, vlo, vhi, vw simd.Vec
		lanes := l - c
		if lanes > simd.Width {
			lanes = simd.Width
		}
		for i := 0; i < lanes; i++ {
			j := c + i
			sym := int(word[j])
			vq[i] = k.qr[j]
			vlo[i] = k.g.lower[j*alpha+sym]
			vhi[i] = k.g.upper[j*alpha+sym]
			vw[i] = k.weights[j]
		}
		for i := lanes; i < simd.Width; i++ {
			vlo[i] = math.Inf(-1) // padding lanes fall inside their interval
			vhi[i] = math.Inf(1)
		}
		// Three-way branchless select (paper Fig. 6): UPPER, LOWER, ZERO.
		below := simd.CmpLT(vq, vlo)
		above := simd.CmpGT(vq, vhi)
		dLo := simd.Sub(vlo, vq)
		dHi := simd.Sub(vq, vhi)
		d := simd.Blend(below, dLo, simd.Blend(above, dHi, simd.Vec{}))
		sum += simd.Sum(simd.Mul(vw, simd.Mul(d, d)))
		if sum > bsf {
			return sum
		}
	}
	return sum
}

// minDistScalar is the reference scalar implementation of the same bound;
// tests assert exact agreement with minDistEA and distTable.
func (k *kernel) minDistScalar(word []byte) float64 {
	var sum float64
	alpha := k.g.alphabet
	for j := 0; j < k.l; j++ {
		sym := int(word[j])
		lo, hi := k.g.lower[j*alpha+sym], k.g.upper[j*alpha+sym]
		var d float64
		switch {
		case k.qr[j] < lo:
			d = lo - k.qr[j]
		case k.qr[j] > hi:
			d = k.qr[j] - hi
		}
		sum += k.weights[j] * d * d
	}
	return sum
}

// nodeMinDist computes the squared lower-bound distance between the query
// representation and a variable-cardinality node word (cards[j] bits of
// prefix per position; cards[j] == 0 means the position is unconstrained).
func nodeMinDist(s Summarizer, qr []float64, word []byte, cards []uint8) float64 {
	l := s.Segments()
	maxBits := s.MaxBits()
	weights := s.Weights()
	var sum float64
	for j := 0; j < l; j++ {
		bits := int(cards[j])
		if bits == 0 {
			continue // interval is (-inf, +inf): contributes nothing
		}
		bps := s.Breakpoints(j)
		shift := uint(maxBits - bits)
		loIdx := int(word[j]) << shift
		hiIdx := (int(word[j]) + 1) << shift
		v := qr[j]
		var d float64
		if loIdx > 0 && v < bps[loIdx-1] {
			d = bps[loIdx-1] - v
		} else if hiIdx <= len(bps) && v > bps[hiIdx-1] {
			d = v - bps[hiIdx-1]
		}
		sum += weights[j] * d * d
	}
	return sum
}

// distTable is the default per-series LBD kernel of the refinement loop: for
// one query, precompute the weighted squared distance contribution of every
// (position, symbol) pair, reducing the per-series LBD to l table lookups
// plus adds. It trades one l x alphabet build per query for branch-free
// lookups per series — far cheaper than Algorithm 3's four gathers per lane
// when a query refines thousands of series (the benchmarks quantify it).
//
// The table is one flat []float64 of length l*alphabet indexed
// j*alphabet+sym: with alphabet 256 and l 16 it is 32 KiB, resident in L1/L2
// for the whole refinement phase. build reuses the backing array, so a
// pooled searcher pays zero allocations per query.
type distTable struct {
	flat     []float64 // [l*alphabet] weighted squared distances
	l        int
	alphabet int
}

// build (re)fills the table for the kernel's current query representation.
func (t *distTable) build(k *kernel, alphabet int) {
	need := k.l * alphabet
	if cap(t.flat) < need {
		t.flat = make([]float64, need)
	}
	t.flat = t.flat[:need]
	t.l = k.l
	t.alphabet = alphabet
	for j := 0; j < k.l; j++ {
		row := t.flat[j*alphabet : (j+1)*alphabet]
		v := k.qr[j]
		w := k.weights[j]
		glo := k.g.lower[j*k.g.alphabet:]
		ghi := k.g.upper[j*k.g.alphabet:]
		for sym := 0; sym < alphabet; sym++ {
			lo, hi := glo[sym], ghi[sym]
			var d float64
			switch {
			case v < lo:
				d = lo - v
			case v > hi:
				d = v - hi
			}
			row[sym] = w * d * d
		}
	}
}

// newDistTable builds a fresh table (test/benchmark convenience; the
// searcher reuses one table via build).
func newDistTable(k *kernel, alphabet int) *distTable {
	t := &distTable{}
	t.build(k, alphabet)
	return t
}

// minDistEA computes the same early-abandoning squared lower bound as the
// kernel, via flat table lookups in chunks of simd.Width positions.
func (t *distTable) minDistEA(word []byte, bsf float64) float64 {
	var sum float64
	flat := t.flat
	alpha := t.alphabet
	for c := 0; c < t.l; c += simd.Width {
		end := c + simd.Width
		if end > t.l {
			end = t.l
		}
		for j := c; j < end; j++ {
			sum += flat[j*alpha+int(word[j])]
		}
		if sum > bsf {
			return sum
		}
	}
	return sum
}
