package index

import (
	"math"

	"repro/internal/simd"
)

// gatherTables holds, for every word position and every full-cardinality
// symbol, the lower and upper interval bounds — the precomputed form of the
// paper's Gather_bound step (Algorithm 3, line 5). They depend only on the
// summarization, so the tree builds them once.
//
// The tables are stored flat ([l*alphabet], indexed j*alphabet+sym) rather
// than as ragged [][]float64: one allocation, one base pointer, and no
// per-position slice-header load in the kernel inner loop.
type gatherTables struct {
	lower    []float64 // [l*alphabet]
	upper    []float64 // [l*alphabet]
	alphabet int
}

func newGatherTables(s Summarizer) *gatherTables {
	l := s.Segments()
	alpha := 1 << s.MaxBits()
	g := &gatherTables{
		lower:    make([]float64, l*alpha),
		upper:    make([]float64, l*alpha),
		alphabet: alpha,
	}
	for j := 0; j < l; j++ {
		bps := s.Breakpoints(j)
		lo := g.lower[j*alpha : (j+1)*alpha]
		hi := g.upper[j*alpha : (j+1)*alpha]
		for sym := 0; sym < alpha; sym++ {
			if sym == 0 {
				lo[sym] = math.Inf(-1)
			} else {
				lo[sym] = bps[sym-1]
			}
			if sym == alpha-1 {
				hi[sym] = math.Inf(1)
			} else {
				hi[sym] = bps[sym]
			}
		}
	}
	return g
}

// kernel is the per-query SIMD lower-bound distance state: the query
// representation plus the shared gather tables and weights. minDistEA is
// Algorithm 3 — per-symbol bound gathers, mask/blend three-way select and
// early abandoning per 8-lane block — dispatched through internal/simd to
// VGATHERQPD/VCMPPD/VBLENDVPD assembly on AVX2 hardware and to the
// bit-identical portable reference elsewhere. It remains the reference
// gather-style kernel; the default refinement path uses distTable below.
type kernel struct {
	qr      []float64 // query representation, length l
	weights []float64
	g       *gatherTables
	l       int
}

// minDistEA computes the squared lower-bound distance between the query and
// a full-cardinality word, abandoning as soon as the partial sum exceeds
// bsf. A returned value > bsf is only a certificate; values <= bsf are
// exact.
func (k *kernel) minDistEA(word []byte, bsf float64) float64 {
	return simd.LBDGatherEA(word[:k.l], k.qr, k.g.lower, k.g.upper, k.weights, k.g.alphabet, bsf)
}

// minDistEAEmulated is the pre-PR-3 Vec-emulated formulation of the same
// kernel, kept so the ablation benchmarks can report how much of the gather
// kernel's cost was emulation overhead versus intrinsic gather cost.
func (k *kernel) minDistEAEmulated(word []byte, bsf float64) float64 {
	return simd.LBDGatherEAEmulated(word[:k.l], k.qr, k.g.lower, k.g.upper, k.weights, k.g.alphabet, bsf)
}

// minDistScalar is the reference scalar implementation of the same bound;
// tests assert exact agreement with minDistEA and distTable.
func (k *kernel) minDistScalar(word []byte) float64 {
	var sum float64
	alpha := k.g.alphabet
	for j := 0; j < k.l; j++ {
		sym := int(word[j])
		lo, hi := k.g.lower[j*alpha+sym], k.g.upper[j*alpha+sym]
		var d float64
		switch {
		case k.qr[j] < lo:
			d = lo - k.qr[j]
		case k.qr[j] > hi:
			d = k.qr[j] - hi
		}
		sum += k.weights[j] * d * d
	}
	return sum
}

// nodeMinDist computes the squared lower-bound distance between the query
// representation and a variable-cardinality node word (cards[j] bits of
// prefix per position; cards[j] == 0 means the position is unconstrained).
func nodeMinDist(s Summarizer, qr []float64, word []byte, cards []uint8) float64 {
	l := s.Segments()
	maxBits := s.MaxBits()
	weights := s.Weights()
	var sum float64
	for j := 0; j < l; j++ {
		bits := int(cards[j])
		if bits == 0 {
			continue // interval is (-inf, +inf): contributes nothing
		}
		bps := s.Breakpoints(j)
		shift := uint(maxBits - bits)
		loIdx := int(word[j]) << shift
		hiIdx := (int(word[j]) + 1) << shift
		v := qr[j]
		var d float64
		if loIdx > 0 && v < bps[loIdx-1] {
			d = bps[loIdx-1] - v
		} else if hiIdx <= len(bps) && v > bps[hiIdx-1] {
			d = v - bps[hiIdx-1]
		}
		sum += weights[j] * d * d
	}
	return sum
}

// distTable is the default per-series LBD kernel of the refinement loop: for
// one query, precompute the weighted squared distance contribution of every
// (position, symbol) pair, reducing the per-series LBD to l table lookups
// plus adds. It trades one l x alphabet build per query for branch-free
// lookups per series — far cheaper than Algorithm 3's four gathers per lane
// when a query refines thousands of series (the benchmarks quantify it).
//
// The table is one flat []float64 of length l*alphabet indexed
// j*alphabet+sym: with alphabet 256 and l 16 it is 32 KiB, resident in L1/L2
// for the whole refinement phase. build reuses the backing array, so a
// pooled searcher pays zero allocations per query — and skips the rebuild
// entirely when the query representation is unchanged (repeated queries,
// batch replays), comparing l cached floats instead of recomputing
// l*alphabet entries.
type distTable struct {
	flat     []float64 // [l*alphabet] weighted squared distances
	qrCache  []float64 // query representation the table was built for
	l        int
	alphabet int
}

// build (re)fills the table for the kernel's current query representation.
func (t *distTable) build(k *kernel, alphabet int) {
	need := k.l * alphabet
	if len(t.flat) == need && t.l == k.l && t.alphabet == alphabet && sameQR(t.qrCache, k.qr) {
		return // repeat query: table already matches (NaN never matches, so it always rebuilds)
	}
	if cap(t.flat) < need {
		t.flat = make([]float64, need)
	}
	t.flat = t.flat[:need]
	t.l = k.l
	t.alphabet = alphabet
	for j := 0; j < k.l; j++ {
		row := t.flat[j*alphabet : (j+1)*alphabet]
		v := k.qr[j]
		w := k.weights[j]
		glo := k.g.lower[j*k.g.alphabet:]
		ghi := k.g.upper[j*k.g.alphabet:]
		for sym := 0; sym < alphabet; sym++ {
			// Max-style select instead of the two-armed switch: d is the
			// positive one of (lo-v, v-hi), or zero when v lies inside the
			// interval (both differences <= 0) or v is NaN (both compares
			// false, matching the switch's default arm).
			dLo := glo[sym] - v
			dHi := v - ghi[sym]
			d := dLo
			if dHi > d {
				d = dHi
			}
			if !(d > 0) {
				d = 0
			}
			row[sym] = w * d * d
		}
	}
	t.qrCache = append(t.qrCache[:0], k.qr[:k.l]...)
}

// sameQR reports whether the cached query representation exactly matches
// qr. Any NaN lane returns false, keeping the cache conservative.
func sameQR(cache, qr []float64) bool {
	if len(cache) != len(qr) {
		return false
	}
	for i, v := range cache {
		if !(v == qr[i]) {
			return false
		}
	}
	return true
}

// newDistTable builds a fresh table (test/benchmark convenience; the
// searcher reuses one table via build).
func newDistTable(k *kernel, alphabet int) *distTable {
	t := &distTable{}
	t.build(k, alphabet)
	return t
}

// minDistEA computes the same early-abandoning squared lower bound as the
// kernel, via flat table lookups in chunks of 8 positions.
//
// It deliberately uses the sequential-order lookup (simd.LookupAccumEASeq),
// not the VGATHERQPD variant: on current AVX2 hardware two 4-lane gathers
// plus the reduction tree measure slower than sixteen L1 loads feeding a
// scalar add chain (see BenchmarkLBDKernels — the honest gather-vs-table
// ablation this repo exists to report), and the sequential order keeps the
// table bit-for-bit against the scalar reference. The vectorized variant
// stays available as simd.LookupAccumEA for hardware where gathers win.
func (t *distTable) minDistEA(word []byte, bsf float64) float64 {
	return simd.LookupAccumEASeq(word[:t.l], t.flat, t.alphabet, bsf)
}

// minDistBlockEA computes the lower bounds of ALL n series of a contiguous
// SoA word block (n rows of l symbols — exactly a leaf's refinement block)
// in one kernel call, writing out[i] for every series and returning the
// survivor count (<= bsf). Each out[i] is exact and bit-identical to
// minDistEA's sequential value when that one is not abandoned; abandoned
// per-series certificates and full block values land on the same side of
// any bound >= bsf because table entries are nonnegative. This is the
// default refinement kernel (Options.PerSeriesLBD restores minDistEA): it
// pays dispatch and bounds checks once per leaf instead of once per series
// and opens the series-across-lanes AVX2/AVX-512 tiers (see BlockImpl).
func (t *distTable) minDistBlockEA(words []byte, n int, out []float64, bsf float64) int {
	return simd.LookupAccumBlockEA(words, n, t.flat, t.alphabet, out, bsf)
}
