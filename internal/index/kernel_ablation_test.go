package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
	"repro/internal/sfa"
)

func ablationFixture(tb testing.TB) (sfaSum, *gatherTables, Encoder, *distance.Matrix) {
	tb.Helper()
	rng := rand.New(rand.NewSource(21))
	m := mixedMatrix(rng, 400, 128)
	q, err := sfa.Learn(m, sfa.Options{SampleRate: 0.5})
	if err != nil {
		tb.Fatal(err)
	}
	sum := sfaSum{q}
	return sum, newGatherTables(sum), sum.NewIndexEncoder(), m
}

// The lookup-table LBD must agree exactly with both the mask/blend kernel
// and the scalar reference for every word and bound.
func TestDistTableMatchesKernelProperty(t *testing.T) {
	sum, g, enc, m := ablationFixture(t)
	f := func(seed int64, bsfRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		query := make([]float64, 128)
		for j := range query {
			query[j] = r.NormFloat64()
		}
		distance.ZNormalize(query)
		qr := make([]float64, 16)
		if _, err := enc.QueryRepr(query, qr); err != nil {
			return false
		}
		k := kernel{qr: qr, weights: sum.Weights(), g: g, l: 16}
		dt := newDistTable(&k, 1<<sum.MaxBits())
		word := make([]byte, 16)
		if _, err := enc.Word(m.Row(r.Intn(m.Len())), word); err != nil {
			return false
		}
		exact := k.minDistScalar(word)
		full := dt.minDistEA(word, math.Inf(1))
		if math.Abs(full-exact) > 1e-9*(exact+1) {
			return false
		}
		bsf := math.Mod(math.Abs(bsfRaw), 500)
		ea := dt.minDistEA(word, bsf)
		if ea <= bsf {
			return math.Abs(ea-exact) <= 1e-9*(exact+1)
		}
		return exact > bsf || math.Abs(ea-exact) <= 1e-9*(exact+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Ablation benches: Algorithm 3 (mask/blend) vs per-query lookup table vs
// scalar reference, per-series cost.
func benchKernel(b *testing.B, run func(k *kernel, dt *distTable, words [][]byte)) {
	sum, g, enc, m := ablationFixture(b)
	rng := rand.New(rand.NewSource(22))
	query := make([]float64, 128)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	distance.ZNormalize(query)
	qr := make([]float64, 16)
	if _, err := enc.QueryRepr(query, qr); err != nil {
		b.Fatal(err)
	}
	k := kernel{qr: qr, weights: sum.Weights(), g: g, l: 16}
	dt := newDistTable(&k, 1<<sum.MaxBits())
	words := make([][]byte, m.Len())
	for i := range words {
		words[i] = make([]byte, 16)
		if _, err := enc.Word(m.Row(i), words[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(&k, dt, words)
	}
}

func BenchmarkLBDKernelMaskBlend(b *testing.B) {
	benchKernel(b, func(k *kernel, _ *distTable, words [][]byte) {
		for _, w := range words {
			k.minDistEA(w, math.Inf(1))
		}
	})
}

func BenchmarkLBDKernelLookupTable(b *testing.B) {
	benchKernel(b, func(k *kernel, dt *distTable, words [][]byte) {
		for _, w := range words {
			dt.minDistEA(w, math.Inf(1))
		}
	})
}

func BenchmarkLBDKernelScalar(b *testing.B) {
	benchKernel(b, func(k *kernel, _ *distTable, words [][]byte) {
		for _, w := range words {
			k.minDistScalar(w)
		}
	})
}
