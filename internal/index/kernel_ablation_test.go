package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
	"repro/internal/sfa"
	"repro/internal/simd"
)

func ablationFixture(tb testing.TB) (sfaSum, *gatherTables, Encoder, *distance.Matrix) {
	tb.Helper()
	rng := rand.New(rand.NewSource(21))
	m := mixedMatrix(rng, 400, 128)
	q, err := sfa.Learn(m, sfa.Options{SampleRate: 0.5})
	if err != nil {
		tb.Fatal(err)
	}
	sum := sfaSum{q}
	return sum, newGatherTables(sum), sum.NewIndexEncoder(), m
}

// The flat lookup-table LBD must agree exactly with both the mask/blend
// kernel and the scalar reference for every word and bound.
func TestDistTableMatchesKernelProperty(t *testing.T) {
	sum, g, enc, m := ablationFixture(t)
	f := func(seed int64, bsfRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		query := make([]float64, 128)
		for j := range query {
			query[j] = r.NormFloat64()
		}
		distance.ZNormalize(query)
		qr := make([]float64, 16)
		if _, err := enc.QueryRepr(query, qr); err != nil {
			return false
		}
		k := kernel{qr: qr, weights: sum.Weights(), g: g, l: 16}
		dt := newDistTable(&k, 1<<sum.MaxBits())
		word := make([]byte, 16)
		if _, err := enc.Word(m.Row(r.Intn(m.Len())), word); err != nil {
			return false
		}
		exact := k.minDistScalar(word)
		full := dt.minDistEA(word, math.Inf(1))
		if math.Abs(full-exact) > 1e-9*(exact+1) {
			return false
		}
		bsf := math.Mod(math.Abs(bsfRaw), 500)
		ea := dt.minDistEA(word, bsf)
		if ea <= bsf {
			return math.Abs(ea-exact) <= 1e-9*(exact+1)
		}
		return exact > bsf || math.Abs(ea-exact) <= 1e-9*(exact+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// lbdFixture prepares one query's kernel, its flat distance table, the words
// as a ragged [][]byte (the seed layout: one allocation per series, gathered
// by pointer) and as one contiguous leaf-style block.
func lbdFixture(b *testing.B) (*kernel, *distTable, [][]byte, []byte, int) {
	sum, g, enc, m := ablationFixture(b)
	rng := rand.New(rand.NewSource(22))
	query := make([]float64, 128)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	distance.ZNormalize(query)
	qr := make([]float64, 16)
	if _, err := enc.QueryRepr(query, qr); err != nil {
		b.Fatal(err)
	}
	k := &kernel{qr: qr, weights: sum.Weights(), g: g, l: 16}
	dt := newDistTable(k, 1<<sum.MaxBits())
	const l = 16
	ragged := make([][]byte, m.Len())
	block := make([]byte, m.Len()*l)
	for i := range ragged {
		ragged[i] = make([]byte, l)
		if _, err := enc.Word(m.Row(i), ragged[i]); err != nil {
			b.Fatal(err)
		}
		copy(block[i*l:(i+1)*l], ragged[i])
	}
	return k, dt, ragged, block, l
}

// BenchmarkLBDKernels compares, per full pass over 400 series, every LBD
// kernel design on the same workload — the paper's Figure-6-style ablation
// measured on real vector units:
//
//   - Gather: Algorithm 3's mask/blend kernel gathering lower/upper bounds
//     per symbol, dispatched (VGATHERQPD/VCMPPD/VBLENDVPD assembly on AVX2
//     hardware, the bit-identical portable reference elsewhere);
//   - GatherEmulated: the same algorithm through the 8-lane Vec emulation
//     (the seed's refinement kernel) — the emulation-overhead baseline;
//   - GatherPortable: the blocked pure-Go reference the assembly is
//     bit-identical to;
//   - Scalar: the branchy scalar reference;
//   - FlatTable: the per-query flat distance table (sequential lookups, the
//     default refinement kernel) over ragged per-series word slices;
//   - FlatTableAsm: the VGATHERQPD lookup-accumulate variant of the table
//     kernel — the honest gather-vs-table comparison on real SIMD;
//   - FlatTableLeafBlock: the flat table streaming one contiguous
//     leaf-style word block — the layout the refinement loop uses.
//
// CI runs this benchmark as a smoke test; the flat-table + leaf-block path
// is the default query kernel and must stay ahead of the Gather variants.
func BenchmarkLBDKernels(b *testing.B) {
	b.Run("Gather-"+simd.Impl(), func(b *testing.B) {
		k, _, ragged, _, _ := lbdFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range ragged {
				k.minDistEA(w, math.Inf(1))
			}
		}
	})
	b.Run("GatherEmulated", func(b *testing.B) {
		k, _, ragged, _, _ := lbdFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range ragged {
				k.minDistEAEmulated(w, math.Inf(1))
			}
		}
	})
	b.Run("GatherPortable", func(b *testing.B) {
		k, _, ragged, _, _ := lbdFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range ragged {
				simd.LBDGatherEAPortable(w[:k.l], k.qr, k.g.lower, k.g.upper, k.weights, k.g.alphabet, math.Inf(1))
			}
		}
	})
	b.Run("Scalar", func(b *testing.B) {
		k, _, ragged, _, _ := lbdFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range ragged {
				k.minDistScalar(w)
			}
		}
	})
	b.Run("FlatTable", func(b *testing.B) {
		_, dt, ragged, _, _ := lbdFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range ragged {
				dt.minDistEA(w, math.Inf(1))
			}
		}
	})
	b.Run("FlatTableAsm-"+simd.Impl(), func(b *testing.B) {
		_, dt, ragged, _, _ := lbdFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range ragged {
				simd.LookupAccumEA(w[:dt.l], dt.flat, dt.alphabet, math.Inf(1))
			}
		}
	})
	b.Run("FlatTableLeafBlock", func(b *testing.B) {
		_, dt, _, block, l := lbdFixture(b)
		rows := len(block) / l
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rows; r++ {
				dt.minDistEA(block[r*l:(r+1)*l], math.Inf(1))
			}
		}
	})
	// Block-granularity contenders: ONE kernel call bounds all 400 series.
	// BlockTable is the default refinement kernel; BlockGather re-runs the
	// gather-vs-table ablation at block granularity (series-across-lanes
	// gathers amortized over a whole leaf — the strongest case gathers get).
	b.Run("BlockTable-"+simd.BlockImpl(), func(b *testing.B) {
		_, dt, _, block, l := lbdFixture(b)
		rows := len(block) / l
		out := make([]float64, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dt.minDistBlockEA(block, rows, out, math.Inf(1))
		}
	})
	b.Run("BlockTablePortable", func(b *testing.B) {
		_, dt, _, block, l := lbdFixture(b)
		rows := len(block) / l
		out := make([]float64, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			simd.LookupAccumBlockEAPortable(block, rows, dt.flat, dt.alphabet, out, math.Inf(1))
		}
	})
	b.Run("BlockGather-"+simd.BlockImpl(), func(b *testing.B) {
		k, _, _, block, l := lbdFixture(b)
		rows := len(block) / l
		out := make([]float64, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			simd.LBDGatherBlockEA(block, rows, k.qr, k.g.lower, k.g.upper, k.weights, k.g.alphabet, out, math.Inf(1))
		}
	})
	b.Run("BlockGatherPortable", func(b *testing.B) {
		k, _, _, block, l := lbdFixture(b)
		rows := len(block) / l
		out := make([]float64, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			simd.LBDGatherBlockEAPortable(block, rows, k.qr, k.g.lower, k.g.upper, k.weights, k.g.alphabet, out, math.Inf(1))
		}
	})
}

// BenchmarkDistTableBuild measures the per-query table build: Cold rebuilds
// for a fresh query representation every iteration; Cached replays the same
// representation, which the qr-cache turns into an l-float compare.
func BenchmarkDistTableBuild(b *testing.B) {
	k, dt, _, _, _ := lbdFixture(b)
	alpha := dt.alphabet
	qrA := append([]float64(nil), k.qr...)
	qrB := append([]float64(nil), k.qr...)
	qrB[0] += 0.25
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				k.qr = qrA
			} else {
				k.qr = qrB
			}
			dt.build(k, alpha)
		}
	})
	b.Run("Cached", func(b *testing.B) {
		k.qr = qrA
		dt.build(k, alpha)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dt.build(k, alpha)
		}
	})
}
