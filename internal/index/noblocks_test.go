package index

import (
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/sfa"
)

// NoLeafBlocks trades the SoA refinement blocks for word memory: the tree
// must carry no per-leaf blocks, pass its invariants, and answer exactly
// what the default build answers — through build, search and insert.
func TestNoLeafBlocksSearchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 96
	m := mixedMatrix(rng, 800, n)
	sum := newSFASum(t, m, sfa.Options{SampleRate: 0.2})
	blocked, err := Build(m, sum, Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	gathered, err := Build(m, sum, Options{LeafCapacity: 32, NoLeafBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := gathered.CheckInvariants(); err != nil {
		t.Fatalf("NoLeafBlocks invariants: %v", err)
	}
	bs, gs := blocked.NewSearcher(), gathered.NewSearcher()
	for qi := 0; qi < 15; qi++ {
		query := make([]float64, n)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		want, err := bs.Search(query, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := gs.Search(query, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("query %d rank %d: got %+v want %+v", qi, r, got[r], want[r])
			}
		}
	}
}

// Inserts into a NoLeafBlocks tree must not start growing blocks.
func TestNoLeafBlocksInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n := 64
	m := mixedMatrix(rng, 300, n)
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: 16, NoLeafBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	enc := tr.Encoder()
	for i := 0; i < 100; i++ {
		series := make([]float64, n)
		for j := range series {
			series[j] = rng.NormFloat64()
		}
		distance.ZNormalize(series)
		if _, err := tr.Insert(series, enc); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	// A search over the mutated tree still answers (exactness is covered by
	// the invariants plus the shared engine; this guards the gather path).
	if _, err := tr.NewSearcher().Search(m.Row(0), 3); err != nil {
		t.Fatal(err)
	}
}
