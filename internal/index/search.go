package index

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/distance"
	"repro/internal/queue"
)

// ID identifies one indexed series in the id space of the caller's query.
// For a stand-alone tree search it is the tree-local id; for a
// collection-level search it is the collection's stable public id, which
// survives deletes, upserts and shard compaction (see ShardQuery). IDs are
// typed so mutation APIs (Delete, Upsert) and query results cannot be mixed
// up with raw offsets.
type ID int64

// Result is one answer of a similarity query. Dist is the squared
// z-normalized Euclidean distance (the library works in squared space
// throughout; take the square root at presentation time).
type Result struct {
	ID   ID
	Dist float64
}

// KNNCollector is the shared k-nearest container: a mutex-protected bounded
// max-heap plus an atomically readable bound (the current k-th best squared
// distance, +Inf while fewer than k results are known). The bound only ever
// decreases, which is what makes concurrent pruning safe.
type KNNCollector struct {
	mu    sync.Mutex
	k     int
	heap  resultMaxHeap
	bound atomic.Uint64
}

// resultMaxHeap is a max-heap by distance with hand-rolled sift operations:
// going through container/heap would box every Result through an interface,
// allocating on each insert of the query hot path.
type resultMaxHeap []Result

func (h resultMaxHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Dist >= h[i].Dist {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h resultMaxHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		max := left
		if right := left + 1; right < n && h[right].Dist > h[left].Dist {
			max = right
		}
		if h[i].Dist >= h[max].Dist {
			return
		}
		h[i], h[max] = h[max], h[i]
		i = max
	}
}

// NewKNNCollector creates a collector for the k nearest results.
func NewKNNCollector(k int) *KNNCollector {
	s := &KNNCollector{}
	s.Reset(k)
	return s
}

// Reset prepares the collector for a fresh query of k results, retaining the
// heap's backing array so pooled collectors add no per-query allocations.
func (s *KNNCollector) Reset(k int) {
	s.k = k
	s.heap = s.heap[:0]
	s.bound.Store(math.Float64bits(math.Inf(1)))
}

// Bound returns the current best-so-far pruning bound.
func (s *KNNCollector) Bound() float64 {
	return math.Float64frombits(s.bound.Load())
}

// Offer inserts a candidate if it improves the k-NN set and reports whether
// it did — callers caching the bound locally re-read it only on improvement.
func (s *KNNCollector) Offer(id ID, d float64) bool {
	if d >= s.Bound() {
		return false
	}
	s.mu.Lock()
	if len(s.heap) < s.k {
		s.heap = append(s.heap, Result{ID: id, Dist: d})
		s.heap.siftUp(len(s.heap) - 1)
		if len(s.heap) == s.k {
			s.bound.Store(math.Float64bits(s.heap[0].Dist))
		}
	} else if d < s.heap[0].Dist {
		s.heap[0] = Result{ID: id, Dist: d}
		s.heap.siftDown(0)
		s.bound.Store(math.Float64bits(s.heap[0].Dist))
	} else {
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()
	return true
}

// Len returns how many results the collector currently holds (at most k).
// The collection layer's partial-result path uses it to tell a degraded
// answer with survivors from one with nothing to return.
func (s *KNNCollector) Len() int {
	s.mu.Lock()
	n := len(s.heap)
	s.mu.Unlock()
	return n
}

// Results returns the collected answers sorted by ascending distance.
func (s *KNNCollector) Results() []Result {
	return s.ResultsAppend(nil)
}

// ResultsAppend appends the collected answers, sorted by ascending distance,
// to dst and returns the extended slice. Appending into a reused buffer
// keeps the steady-state query path allocation-free.
func (s *KNNCollector) ResultsAppend(dst []Result) []Result {
	s.mu.Lock()
	base := len(dst)
	dst = append(dst, s.heap...)
	s.mu.Unlock()
	out := dst[base:]
	slices.SortFunc(out, func(a, b Result) int {
		switch {
		case a.Dist != b.Dist:
			if a.Dist < b.Dist {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		default:
			return 0
		}
	})
	return dst
}

// Searcher answers queries against a Tree. It owns all per-query scratch —
// the encoder, the z-normalized query copy, the query representation and
// word, the flat per-query distance table, the k-NN collector, the leaf
// priority queues and the result buffer — so a steady-state Search performs
// zero heap allocations. It is NOT safe for concurrent use; create one per
// querying goroutine (or use Tree.BatchSearch, which pools them). A single
// Search call internally uses the tree's configured worker parallelism,
// matching the paper's one-query-at-a-time protocol.
type Searcher struct {
	t     *Tree
	enc   Encoder
	qbuf  []float64 // z-normalized query copy
	qr    []float64
	qword []byte
	kern  kernel
	dt    distTable // flat per-query LBD table (default refinement kernel)

	kn     KNNCollector
	set    *queue.Set[*node]
	resBuf []Result

	// scratch is the block-kernel scratch of the SERIAL paths (the seeding
	// stage and single-worker drains). Parallel drains share one Searcher
	// across worker goroutines, so finishShard hands each worker its own
	// drainScratch instead of this field.
	scratch drainScratch

	// Shard-query state, set by beginShard at the start of every search.
	// A stand-alone Search points extKN at the searcher's own collector with
	// the identity id mapping; a collection-level shard search points it at
	// the shared cross-shard collector and maps the tree's local ids to
	// public ids at offer time — through the pub table when the collection
	// has been mutated, or affinely (global = local*idMul + idAdd, the
	// inverse of round-robin partitioning) while ids are still dense — so all
	// shards of a sharded index prune against one global best-so-far.
	extKN      *KNNCollector
	pub        []int32
	idMul      ID
	idAdd      ID
	pruneScale float64
	approxNode *node
	seeded     bool

	// serial forces single-threaded query answering (no goroutine fan-out);
	// BatchSearch sets it so inter-query parallelism is not multiplied by
	// intra-query parallelism.
	serial bool

	// stats for the last Search call (atomic: workers update concurrently).
	nodesVisited  atomic.Int64
	leavesRefined atomic.Int64
	seriesLBD     atomic.Int64
	seriesED      atomic.Int64
}

// SearchStats reports how much work the last Search call did — the paper's
// pruning-power discussion (Section V-E) in concrete counter form.
type SearchStats struct {
	NodesVisited  int64 // tree nodes whose lower bound was evaluated
	LeavesRefined int64 // leaves popped from the priority queues
	SeriesLBD     int64 // per-series word lower bounds computed
	SeriesED      int64 // real (early-abandoning) distances computed
}

// LastStats returns the work counters of the most recent Search call.
func (s *Searcher) LastStats() SearchStats {
	return SearchStats{
		NodesVisited:  s.nodesVisited.Load(),
		LeavesRefined: s.leavesRefined.Load(),
		SeriesLBD:     s.seriesLBD.Load(),
		SeriesED:      s.seriesED.Load(),
	}
}

// NewSearcher creates a searcher over the tree.
func (t *Tree) NewSearcher() *Searcher {
	return &Searcher{
		t:     t,
		enc:   t.sum.NewIndexEncoder(),
		qbuf:  make([]float64, t.data.Stride),
		qr:    make([]float64, t.l),
		qword: make([]byte, t.l),
		kern:  kernel{weights: t.sum.Weights(), g: t.gather, l: t.l},
		set:   queue.NewSet[*node](t.opts.Queues),
		idMul: 1,
	}
}

// mapID translates a tree-local series id to the id space of the current
// query: the pub table when set (compacted or upserted collections), the
// affine mapping global = local*idMul + idAdd otherwise (the identity for
// stand-alone searches).
func (s *Searcher) mapID(id int32) ID {
	if s.pub != nil {
		return ID(s.pub[id])
	}
	return ID(id)*s.idMul + s.idAdd
}

// Search returns the exact k nearest neighbors of query under squared
// z-normalized Euclidean distance, ascending. The query is z-normalized
// internally (a copy; the argument is not modified).
//
// The returned slice is owned by the Searcher and overwritten by its next
// search call; copy it if the results must outlive the next query.
//
// The pipeline is the paper's Section IV-C: (1) an approximate descent to
// the best-matching leaf seeds the BSF with real distances; (2) workers
// traverse the root subtrees in parallel, pruning against the BSF and
// pushing surviving leaves into priority queues ordered by lower bound;
// (3) workers drain the queues — abandoning a queue once its head exceeds
// the BSF — refining each leaf's contiguous word block with the flat
// per-query distance table and with a real early-abandoning distance only
// when the bound survives.
func (s *Searcher) Search(query []float64, k int) ([]Result, error) {
	return s.search(query, k, 1)
}

// Search1 is a convenience wrapper returning the single nearest neighbor.
func (s *Searcher) Search1(query []float64) (Result, error) {
	res, err := s.Search(query, 1)
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// boundRefreshInterval is how many refined series may share one cached read
// of the global BSF atomic. Within a block the cached bound is only ever an
// over-estimate (the true bound monotonically decreases), so pruning with it
// is conservative and exactness is preserved; the cache is refreshed early
// whenever this worker itself improves the k-NN set.
const boundRefreshInterval = 64

// approximateLeaf descends the tree following the query's own word bits,
// preferring the matching child when it is non-empty, to locate the leaf
// most likely to contain near neighbors.
func (s *Searcher) approximateLeaf() *node {
	t := s.t
	if len(t.rootKeys) == 0 {
		return nil
	}
	key := t.rootKey(s.qword)
	n, ok := t.root[key]
	if !ok {
		// No subtree under the query's key: pick the root child with the
		// smallest node lower bound.
		best := math.Inf(1)
		for _, rk := range t.rootKeys {
			c := t.root[rk]
			if d := nodeMinDist(t.sum, s.qr, c.word, c.cards); d < best {
				best = d
				n = c
			}
		}
	}
	for !n.isLeaf() {
		j := n.split
		childBits := int(n.children[0].cards[j])
		shift := uint(t.maxBits - childBits)
		b := (s.qword[j] >> shift) & 1
		child := n.children[b]
		if child.count == 0 {
			child = n.children[1-b]
		}
		n = child
	}
	return n
}

// processLeafReal computes real (early-abandoning) distances for every live
// series in the leaf — used by the approximate stage to establish the BSF.
func (s *Searcher) processLeafReal(leaf *node, q []float64, kn *KNNCollector) {
	t := s.t
	dead := t.dead
	bound := kn.Bound()
	for i, id := range leaf.ids {
		if i%boundRefreshInterval == 0 {
			bound = kn.Bound()
		}
		if deadBit(dead, id) {
			continue
		}
		d := distance.SquaredEDEarlyAbandon(t.data.Row(int(id)), q, bound)
		if d < bound && kn.Offer(s.mapID(id), d) {
			bound = kn.Bound()
		}
	}
}

// drainScratch is the per-drain-call scratch of the block refinement path:
// the pooled LBD output slice and, for NoLeafBlocks trees, a staging buffer
// the leaf's word rows are gathered into so the block kernel still sees one
// contiguous SoA block. Both grow to the largest leaf seen and are then
// reused, keeping the steady-state query path allocation-free.
type drainScratch struct {
	lbd   []float64
	words []byte
}

func (ds *drainScratch) lbdFor(n int) []float64 {
	if cap(ds.lbd) < n {
		ds.lbd = make([]float64, n)
	}
	ds.lbd = ds.lbd[:n]
	return ds.lbd
}

// leafWords returns the leaf's contiguous word block, gathering the rows
// from the global buffer into scratch when the tree carries no per-leaf
// blocks (Options.NoLeafBlocks). The copy is n*l sequential bytes — far
// cheaper than what the per-leaf kernel call saves.
func (s *Searcher) leafWords(leaf *node, ds *drainScratch) []byte {
	if leaf.words != nil {
		return leaf.words
	}
	t := s.t
	need := len(leaf.ids) * t.l
	if cap(ds.words) < need {
		ds.words = make([]byte, need)
	}
	ds.words = ds.words[:need]
	for i, id := range leaf.ids {
		copy(ds.words[i*t.l:(i+1)*t.l], t.words[int(id)*t.l:(int(id)+1)*t.l])
	}
	return ds.words
}

// processLeafApprox is the block-kernel variant of processLeafReal: one
// kernel call bounds every member of the seed leaf, and real distances are
// then computed only for members whose lower bound beats the current BSF.
// With an empty collector (bound +Inf) nothing is skipped and the walk
// degenerates to processLeafReal; with a finite bound — later shards of a
// sharded query, warm repeat queries — most of the leaf's real distances
// vanish. Skipping lb >= bound is exact: the true distance is >= lb, and
// the bound only ever decreases, so such a candidate could never enter the
// k-NN set. The seeding stage stays uncounted in SearchStats either way.
func (s *Searcher) processLeafApprox(leaf *node, q []float64, kn *KNNCollector) {
	n := len(leaf.ids)
	if n == 0 {
		return
	}
	t := s.t
	dead := t.dead
	ds := &s.scratch
	words := s.leafWords(leaf, ds)
	lbd := ds.lbdFor(n)
	bound := kn.Bound()
	s.dt.minDistBlockEA(words, n, lbd, bound)
	for i, id := range leaf.ids {
		if i%boundRefreshInterval == 0 {
			bound = kn.Bound()
		}
		if lbd[i] >= bound || deadBit(dead, id) {
			continue
		}
		d := distance.SquaredEDEarlyAbandon(t.data.Row(int(id)), q, bound)
		if d < bound && kn.Offer(s.mapID(id), d) {
			bound = kn.Bound()
		}
	}
}
