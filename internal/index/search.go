package index

import (
	"container/heap"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/distance"
)

// Result is one answer of a similarity query. Dist is the squared
// z-normalized Euclidean distance (the library works in squared space
// throughout; take the square root at presentation time).
type Result struct {
	ID   int32
	Dist float64
}

// KNNCollector is the shared k-nearest container: a mutex-protected bounded
// max-heap plus an atomically readable bound (the current k-th best squared
// distance, +Inf while fewer than k results are known). The bound only ever
// decreases, which is what makes concurrent pruning safe.
type KNNCollector struct {
	mu    sync.Mutex
	k     int
	heap  resultMaxHeap
	bound atomic.Uint64
}

type resultMaxHeap []Result

func (h resultMaxHeap) Len() int           { return len(h) }
func (h resultMaxHeap) Less(i, j int) bool { return h[i].Dist > h[j].Dist }
func (h resultMaxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultMaxHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultMaxHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewKNNCollector creates a collector for the k nearest results.
func NewKNNCollector(k int) *KNNCollector {
	s := &KNNCollector{k: k}
	s.bound.Store(math.Float64bits(math.Inf(1)))
	return s
}

// Bound returns the current best-so-far pruning bound.
func (s *KNNCollector) Bound() float64 {
	return math.Float64frombits(s.bound.Load())
}

// Offer inserts a candidate if it improves the k-NN set.
func (s *KNNCollector) Offer(id int32, d float64) {
	if d >= s.Bound() {
		return
	}
	s.mu.Lock()
	if len(s.heap) < s.k {
		heap.Push(&s.heap, Result{ID: id, Dist: d})
		if len(s.heap) == s.k {
			s.bound.Store(math.Float64bits(s.heap[0].Dist))
		}
	} else if d < s.heap[0].Dist {
		s.heap[0] = Result{ID: id, Dist: d}
		heap.Fix(&s.heap, 0)
		s.bound.Store(math.Float64bits(s.heap[0].Dist))
	}
	s.mu.Unlock()
}

// Results returns the collected answers sorted by ascending distance.
func (s *KNNCollector) Results() []Result {
	s.mu.Lock()
	out := append([]Result(nil), s.heap...)
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Searcher answers queries against a Tree. It owns per-query scratch (the
// encoder, query representation and word), so it is NOT safe for concurrent
// use; create one per querying goroutine. A single Search call internally
// uses the tree's configured worker parallelism, matching the paper's
// one-query-at-a-time protocol.
type Searcher struct {
	t     *Tree
	enc   Encoder
	qr    []float64
	qword []byte
	kern  kernel

	// stats for the last Search call (atomic: workers update concurrently).
	nodesVisited  atomic.Int64
	leavesRefined atomic.Int64
	seriesLBD     atomic.Int64
	seriesED      atomic.Int64
}

// SearchStats reports how much work the last Search call did — the paper's
// pruning-power discussion (Section V-E) in concrete counter form.
type SearchStats struct {
	NodesVisited  int64 // tree nodes whose lower bound was evaluated
	LeavesRefined int64 // leaves popped from the priority queues
	SeriesLBD     int64 // per-series word lower bounds computed
	SeriesED      int64 // real (early-abandoning) distances computed
}

// LastStats returns the work counters of the most recent Search call.
func (s *Searcher) LastStats() SearchStats {
	return SearchStats{
		NodesVisited:  s.nodesVisited.Load(),
		LeavesRefined: s.leavesRefined.Load(),
		SeriesLBD:     s.seriesLBD.Load(),
		SeriesED:      s.seriesED.Load(),
	}
}

// NewSearcher creates a searcher over the tree.
func (t *Tree) NewSearcher() *Searcher {
	return &Searcher{
		t:     t,
		enc:   t.sum.NewIndexEncoder(),
		qr:    make([]float64, t.l),
		qword: make([]byte, t.l),
		kern:  kernel{weights: t.sum.Weights(), g: t.gather, l: t.l},
	}
}

// Search returns the exact k nearest neighbors of query under squared
// z-normalized Euclidean distance, ascending. The query is z-normalized
// internally (a copy; the argument is not modified).
//
// The pipeline is the paper's Section IV-C: (1) an approximate descent to
// the best-matching leaf seeds the BSF with real distances; (2) workers
// traverse the root subtrees in parallel, pruning against the BSF and
// pushing surviving leaves into priority queues ordered by lower bound;
// (3) workers drain the queues — abandoning a queue once its head exceeds
// the BSF — refining each leaf series word-first (Algorithm 3) and with a
// real early-abandoning distance only when the bound survives.
func (s *Searcher) Search(query []float64, k int) ([]Result, error) {
	return s.search(query, k, 1)
}

// Search1 is a convenience wrapper returning the single nearest neighbor.
func (s *Searcher) Search1(query []float64) (Result, error) {
	res, err := s.Search(query, 1)
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// approximateLeaf descends the tree following the query's own word bits,
// preferring the matching child when it is non-empty, to locate the leaf
// most likely to contain near neighbors.
func (s *Searcher) approximateLeaf() *node {
	t := s.t
	if len(t.rootKeys) == 0 {
		return nil
	}
	key := t.rootKey(s.qword)
	n, ok := t.root[key]
	if !ok {
		// No subtree under the query's key: pick the root child with the
		// smallest node lower bound.
		best := math.Inf(1)
		for _, rk := range t.rootKeys {
			c := t.root[rk]
			if d := nodeMinDist(t.sum, s.qr, c.word, c.cards); d < best {
				best = d
				n = c
			}
		}
	}
	for !n.isLeaf() {
		j := n.split
		childBits := int(n.children[0].cards[j])
		shift := uint(t.maxBits - childBits)
		b := (s.qword[j] >> shift) & 1
		child := n.children[b]
		if child.count == 0 {
			child = n.children[1-b]
		}
		n = child
	}
	return n
}

// processLeafReal computes real (early-abandoning) distances for every
// series in the leaf — used by the approximate stage to establish the BSF.
func (s *Searcher) processLeafReal(leaf *node, q []float64, kn *KNNCollector) {
	t := s.t
	for _, id := range leaf.ids {
		bound := kn.Bound()
		d := distance.SquaredEDEarlyAbandon(t.data.Row(int(id)), q, bound)
		if d < bound {
			kn.Offer(id, d)
		}
	}
}
