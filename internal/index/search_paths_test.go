package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distance"
)

// When the query's root key has no subtree, the approximate stage must fall
// back to the closest root child and search must stay exact.
func TestApproximateLeafFallback(t *testing.T) {
	n := 64
	// A collection of near-identical smooth series: one (or very few) root
	// keys exist.
	rng := rand.New(rand.NewSource(31))
	m := distance.NewMatrix(100, n)
	for i := 0; i < m.Len(); i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = math.Sin(2*math.Pi*3*float64(j)/float64(n)) + 0.01*rng.NormFloat64()
		}
	}
	m.ZNormalizeAll()
	tr, err := Build(m, newSAXSum(t, n, 8, 8), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	// A radically different query (anti-phase, high frequency): its word's
	// root key is almost surely absent.
	query := make([]float64, n)
	for j := range query {
		query[j] = math.Sin(2 * math.Pi * 25 * float64(j) / float64(n) * -1)
	}
	s := tr.NewSearcher()
	res, err := s.Search1(query)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(m, query, 1)[0]
	if math.Abs(res.Dist-want) > 1e-7*(want+1) {
		t.Fatalf("fallback search inexact: got %v want %v", res.Dist, want)
	}
}

func TestLastStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := mixedMatrix(rng, 300, 64)
	tr, err := Build(m, newSAXSum(t, 64, 8, 8), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewSearcher()
	query := make([]float64, 64)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	if _, err := s.Search1(query); err != nil {
		t.Fatal(err)
	}
	st := s.LastStats()
	if st.NodesVisited <= 0 {
		t.Errorf("NodesVisited = %d, want > 0", st.NodesVisited)
	}
	if st.SeriesLBD < st.SeriesED {
		t.Errorf("every real distance needs a prior LBD check: LBD=%d ED=%d", st.SeriesLBD, st.SeriesED)
	}
	// Counters reset between queries.
	first := st
	if _, err := s.Search1(m.Row(0)); err != nil {
		t.Fatal(err)
	}
	st2 := s.LastStats()
	if st2 == first && st2.SeriesED == first.SeriesED && st2.NodesVisited == first.NodesVisited {
		// Identical counters across very different queries would suggest a
		// missing reset; tolerate genuine coincidence by checking reset via
		// a third trivial query on a fresh searcher.
		s3 := tr.NewSearcher()
		if _, err := s3.Search1(m.Row(0)); err != nil {
			t.Fatal(err)
		}
		if s3.LastStats().NodesVisited > st2.NodesVisited*10 {
			t.Error("stats do not appear to reset per query")
		}
	}
}

func TestRootFanoutBits(t *testing.T) {
	cases := []struct {
		n, leaf, l int
		want       int
	}{
		{100, 100, 16, 1},            // tiny: minimum one bit
		{2000, 100, 16, 5},           // 20 subtree target -> 5 bits (32)
		{20000, 256, 16, 7},          // ~78 target -> 7 bits (128)
		{100_000_000, 20000, 16, 13}, // paper scale: 5000 target -> 13 bits
		{1 << 40, 1, 16, 16},         // clamped at l
	}
	for _, c := range cases {
		if got := rootFanoutBits(c.n, c.leaf, c.l); got != c.want {
			t.Errorf("rootFanoutBits(%d,%d,%d) = %d, want %d", c.n, c.leaf, c.l, got, c.want)
		}
	}
}

// Workers exceeding subtree count must not deadlock or miss results.
func TestMoreWorkersThanSubtrees(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := mixedMatrix(rng, 150, 64)
	tr, err := Build(m, newSAXSum(t, 64, 8, 8), Options{LeafCapacity: 64, Workers: 16, Queues: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewSearcher()
	for qi := 0; qi < 5; qi++ {
		query := make([]float64, 64)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		res, err := s.Search(query, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(m, query, 3)
		for i := range want {
			if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
				t.Fatalf("workers>subtrees inexact at rank %d", i)
			}
		}
	}
}
