package index

import (
	"fmt"
	"time"

	"repro/internal/distance"
)

// TreeShape is the serializable form of a finalized tree: the node topology
// and split positions in preorder, leaf membership in tree order, and
// (optionally) the concatenated leaf refinement blocks. Together with the
// global word buffer it reconstructs the exact tree — same nodes, same leaf
// id order — by direct decode, with no re-bucketing and no re-splitting
// (the persistence v3 fast path).
//
// Everything else a node carries is derived: prefixes (word/cards) follow
// from the root key and the split positions on the path, depths from the
// topology, and subtree counts from the leaf sizes. Leaf blocks are a
// permutation of the word buffer, so LeafBlocks may be omitted and gathered
// at decode time; serializing them trades file size for a load that only
// slices one contiguous buffer.
type TreeShape struct {
	// RootBits is the tree's root fan-out width. It is part of the shape,
	// not re-derived from the collection size at decode time: Insert grows
	// the collection without re-fanning the root, so a tree saved after
	// inserts legitimately carries the fan-out of its original build.
	RootBits int
	// RootKeys lists the non-empty root children in ascending key order,
	// exactly as the tree fans out (RootBits bits per key).
	RootKeys []uint64
	// Splits is the preorder node stream over the subtrees in RootKeys
	// order: value >= 0 is an inner node splitting at that word position
	// (its two children follow, bit 0 first); -1 is a leaf.
	Splits []int16
	// LeafCounts and LeafNoSplit describe each leaf in preorder: member
	// count and the cannot-split-further marker.
	LeafCounts  []int32
	LeafNoSplit []bool
	// IDs is the concatenated leaf membership (tree-local series ids) in
	// preorder — the exact in-leaf order of the saved tree.
	IDs []int32
	// LeafBlocks is the preorder concatenation of every leaf's contiguous
	// refinement block (len(IDs) x word-length bytes), or nil when the tree
	// was built with NoLeafBlocks (or the encoder chose to omit them).
	LeafBlocks []byte
}

// Shape exports the finalized tree's shape for serialization. The returned
// slices are fresh copies except IDs rows and blocks, which are copied too;
// the shape is safe to retain after further Inserts into the tree.
func (t *Tree) Shape() TreeShape {
	sh := TreeShape{RootBits: t.rootBits, RootKeys: append([]uint64(nil), t.rootKeys...)}
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			sh.Splits = append(sh.Splits, -1)
			sh.LeafCounts = append(sh.LeafCounts, int32(len(n.ids)))
			sh.LeafNoSplit = append(sh.LeafNoSplit, n.noSplit)
			sh.IDs = append(sh.IDs, n.ids...)
			sh.LeafBlocks = append(sh.LeafBlocks, n.words...)
			return
		}
		sh.Splits = append(sh.Splits, int16(n.split))
		walk(n.children[0])
		walk(n.children[1])
	}
	for _, k := range t.rootKeys {
		walk(t.root[k])
	}
	if t.opts.NoLeafBlocks {
		sh.LeafBlocks = nil
	}
	return sh
}

// shapeCursor tracks consumption of the flat shape streams during decode.
type shapeCursor struct {
	node, leaf, id, blk int
}

// FromShape reconstructs a tree by direct decode of a previously exported
// shape — the persistence v3 load path: no summarization transform, no
// re-bucketing, no re-splitting (SplitCount stays 0). words is the global
// full-cardinality word buffer in tree-local row order, as for
// BuildFromWords; both words and the shape's IDs/LeafBlocks slices are
// retained by the tree.
//
// The shape is fully validated: the preorder streams must be exactly
// consistent (every entry consumed, every series in exactly one leaf), split
// positions and cardinalities in range, and the reconstructed tree must pass
// CheckInvariants — which also verifies every leaf's membership and block
// against the word buffer — so a corrupted container is rejected with an
// error instead of answering queries wrongly.
func FromShape(data *distance.Matrix, sum Summarization, opts Options, words []byte, shape TreeShape) (*Tree, error) {
	if words == nil {
		return nil, fmt.Errorf("index: words must not be nil")
	}
	t, err := newTree(data, sum, opts, words)
	if err != nil {
		return nil, err
	}
	if shape.RootBits < 1 || shape.RootBits > t.l {
		return nil, fmt.Errorf("index: shape root fan-out %d out of range [1, %d]", shape.RootBits, t.l)
	}
	// The saved fan-out, not the rootFanoutBits(data.Len(), ...) default
	// newTree derived: inserts after the original build grow the collection
	// without re-fanning the root, and the decoded tree must keep bucketing
	// new inserts the way the saved one did.
	t.rootBits = shape.RootBits
	start := time.Now()
	if err := t.decodeShape(shape); err != nil {
		return nil, err
	}
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("index: decoded tree violates invariants: %w", err)
	}
	t.TreeSeconds = time.Since(start).Seconds()
	return t, nil
}

// decodeShape rebuilds the node structure from the flat preorder streams.
func (t *Tree) decodeShape(shape TreeShape) error {
	if len(shape.LeafCounts) != len(shape.LeafNoSplit) {
		return fmt.Errorf("index: shape has %d leaf counts but %d no-split flags",
			len(shape.LeafCounts), len(shape.LeafNoSplit))
	}
	if len(shape.IDs) != t.data.Len() {
		return fmt.Errorf("index: shape holds %d ids for %d series", len(shape.IDs), t.data.Len())
	}
	if shape.LeafBlocks != nil {
		if t.opts.NoLeafBlocks {
			return fmt.Errorf("index: shape carries leaf blocks despite NoLeafBlocks")
		}
		if len(shape.LeafBlocks) != len(shape.IDs)*t.l {
			return fmt.Errorf("index: leaf blocks length %d, want %d", len(shape.LeafBlocks), len(shape.IDs)*t.l)
		}
	}
	// Depth is bounded by the total prefix bits a word can absorb; rejecting
	// deeper shapes both catches corruption and bounds the decode recursion.
	maxDepth := 1 + t.l*t.maxBits
	var cur shapeCursor
	var build func(n *node) error
	build = func(n *node) error {
		if cur.node >= len(shape.Splits) {
			return fmt.Errorf("index: shape node stream truncated")
		}
		sp := int(shape.Splits[cur.node])
		cur.node++
		if sp < 0 { // leaf
			if cur.leaf >= len(shape.LeafCounts) {
				return fmt.Errorf("index: shape leaf stream truncated")
			}
			cnt := int(shape.LeafCounts[cur.leaf])
			if cnt < 0 || cnt > len(shape.IDs)-cur.id {
				return fmt.Errorf("index: leaf count %d exceeds remaining ids", cnt)
			}
			n.split = -1
			n.ids = shape.IDs[cur.id : cur.id+cnt : cur.id+cnt]
			n.count = int32(cnt)
			n.noSplit = shape.LeafNoSplit[cur.leaf]
			if !t.opts.NoLeafBlocks {
				if shape.LeafBlocks != nil {
					// Cap the block slice at its own end so a post-load
					// Insert's append reallocates instead of clobbering the
					// next leaf's block in the shared buffer.
					lo, hi := cur.blk, cur.blk+cnt*t.l
					n.words = shape.LeafBlocks[lo:hi:hi]
					cur.blk = hi
				} else {
					// The gather indexes the word buffer by id, so ids must
					// be range-checked here; the blocks path defers that to
					// CheckInvariants, which runs before it touches words.
					for _, id := range n.ids {
						if id < 0 || int(id) >= t.data.Len() {
							return fmt.Errorf("index: leaf id %d out of range", id)
						}
					}
					n.words = t.gatherLeafWords(n.ids)
				}
			}
			cur.leaf++
			cur.id += cnt
			return nil
		}
		if sp >= t.l {
			return fmt.Errorf("index: split position %d out of range (word length %d)", sp, t.l)
		}
		if int(n.cards[sp]) >= t.maxBits {
			return fmt.Errorf("index: split at position %d exceeds %d-bit cardinality", sp, t.maxBits)
		}
		if n.depth >= maxDepth {
			return fmt.Errorf("index: shape deeper than %d levels", maxDepth)
		}
		n.split = sp
		for b := 0; b < 2; b++ {
			word := append([]byte(nil), n.word...)
			cards := append([]uint8(nil), n.cards...)
			word[sp] = word[sp]<<1 | byte(b)
			cards[sp]++
			c := &node{word: word, cards: cards, depth: n.depth + 1, split: -1}
			n.children[b] = c
			if err := build(c); err != nil {
				return err
			}
		}
		n.count = n.children[0].count + n.children[1].count
		return nil
	}

	t.rootKeys = make([]uint64, 0, len(shape.RootKeys))
	var prev uint64
	for i, k := range shape.RootKeys {
		if i > 0 && k <= prev {
			return fmt.Errorf("index: root keys not strictly increasing at %d", i)
		}
		prev = k
		if k>>uint(t.rootBits) != 0 {
			return fmt.Errorf("index: root key %#x exceeds %d fan-out bits", k, t.rootBits)
		}
		root := t.newRootChild(k, nil)
		if err := build(root); err != nil {
			return err
		}
		t.root[k] = root
		t.rootKeys = append(t.rootKeys, k)
	}
	if cur.node != len(shape.Splits) || cur.leaf != len(shape.LeafCounts) ||
		cur.id != len(shape.IDs) || cur.blk != len(shape.LeafBlocks) {
		return fmt.Errorf("index: shape streams not fully consumed (%d/%d nodes, %d/%d leaves, %d/%d ids, %d/%d block bytes)",
			cur.node, len(shape.Splits), cur.leaf, len(shape.LeafCounts),
			cur.id, len(shape.IDs), cur.blk, len(shape.LeafBlocks))
	}
	return nil
}
