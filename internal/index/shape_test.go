package index

import (
	"math/rand"
	"testing"

	"repro/internal/distance"
)

// shapeFixture builds a small tree over random-walk data with a tight leaf
// capacity so the shape has real depth.
func shapeFixture(t *testing.T, n, length int, opts Options) (*Tree, *distance.Matrix, Summarization) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := distance.NewMatrix(n, length)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		v := 0.0
		for j := range row {
			v += rng.NormFloat64()
			row[j] = v
		}
	}
	data.ZNormalizeAll()
	sum := newSAXSum(t, length, 8, 8)
	tree, err := Build(data, sum, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, data, sum
}

func TestShapeRoundTrip(t *testing.T) {
	for _, noBlocks := range []bool{false, true} {
		opts := Options{LeafCapacity: 16, Workers: 2, NoLeafBlocks: noBlocks}
		tree, data, sum := shapeFixture(t, 400, 64, opts)
		if tree.SplitCount() == 0 {
			t.Fatal("build performed no splits; fixture too small to exercise the shape")
		}
		shape := tree.Shape()
		words := append([]byte(nil), tree.Words()...)
		dec, err := FromShape(data, sum, opts, words, shape)
		if err != nil {
			t.Fatalf("noBlocks=%v: FromShape: %v", noBlocks, err)
		}
		if got := dec.SplitCount(); got != 0 {
			t.Errorf("noBlocks=%v: decoded tree performed %d splits, want 0", noBlocks, got)
		}
		so, sd := tree.Stats(), dec.Stats()
		if so != sd {
			t.Errorf("noBlocks=%v: stats diverge: %+v vs %+v", noBlocks, so, sd)
		}
		// The decode must reproduce the exact structure, not just one that
		// validates: re-exporting yields an identical shape.
		re := dec.Shape()
		if len(re.Splits) != len(shape.Splits) || len(re.IDs) != len(shape.IDs) {
			t.Fatalf("noBlocks=%v: re-export shape size diverges", noBlocks)
		}
		for i := range shape.Splits {
			if re.Splits[i] != shape.Splits[i] {
				t.Fatalf("noBlocks=%v: split stream diverges at %d", noBlocks, i)
			}
		}
		for i := range shape.IDs {
			if re.IDs[i] != shape.IDs[i] {
				t.Fatalf("noBlocks=%v: leaf id order diverges at %d", noBlocks, i)
			}
		}
		// Queries agree bit-for-bit: same data, same words, same tree.
		rng := rand.New(rand.NewSource(8))
		for qi := 0; qi < 5; qi++ {
			q := make([]float64, 64)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			a, err := tree.NewSearcher().Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dec.NewSearcher().Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("noBlocks=%v query %d rank %d: %+v vs %+v", noBlocks, qi, i, a[i], b[i])
				}
			}
		}
		// A decoded tree keeps accepting inserts.
		series := make([]float64, 64)
		for j := range series {
			series[j] = rng.NormFloat64()
		}
		distance.ZNormalize(series)
		if _, err := dec.Insert(series, dec.Encoder()); err != nil {
			t.Fatal(err)
		}
		if err := dec.CheckInvariants(); err != nil {
			t.Errorf("noBlocks=%v: invariants after post-load insert: %v", noBlocks, err)
		}
	}
}

// TestShapeSurvivesFanoutGrowth pins the regression where a tree saved
// after Inserts grew the collection across a root-fanout boundary could not
// be decoded: the shape must carry the build-time RootBits, not re-derive
// it from the (now larger) data length.
func TestShapeSurvivesFanoutGrowth(t *testing.T) {
	opts := Options{LeafCapacity: 16, Workers: 1}
	tree, data, sum := shapeFixture(t, 100, 64, opts)
	before := tree.rootBits
	rng := rand.New(rand.NewSource(9))
	enc := tree.Encoder()
	for i := 0; i < 400; i++ {
		series := make([]float64, 64)
		v := 0.0
		for j := range series {
			v += rng.NormFloat64()
			series[j] = v
		}
		distance.ZNormalize(series)
		if _, err := tree.Insert(series, enc); err != nil {
			t.Fatal(err)
		}
	}
	if grown := rootFanoutBits(data.Len(), opts.LeafCapacity, tree.l); grown == before {
		t.Fatalf("fixture does not cross a fan-out boundary (%d bits before and after)", before)
	}
	shape := tree.Shape()
	if shape.RootBits != before {
		t.Fatalf("shape records %d root bits, tree built with %d", shape.RootBits, before)
	}
	dec, err := FromShape(data, sum, opts, tree.Words(), shape)
	if err != nil {
		t.Fatalf("decoding post-insert tree: %v", err)
	}
	if dec.rootBits != before {
		t.Errorf("decoded tree has %d root bits, want %d", dec.rootBits, before)
	}
	if err := dec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And the decoded tree keeps bucketing new inserts like the saved one.
	series := make([]float64, 64)
	for j := range series {
		series[j] = rng.NormFloat64()
	}
	distance.ZNormalize(series)
	if _, err := dec.Insert(series, dec.Encoder()); err != nil {
		t.Fatal(err)
	}
	if err := dec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFromShapeRejectsCorruptShapes drives the decoder through every
// validation branch with targeted mutations of a valid shape.
func TestFromShapeRejectsCorruptShapes(t *testing.T) {
	opts := Options{LeafCapacity: 16, Workers: 1}
	tree, data, sum := shapeFixture(t, 300, 64, opts)
	base := tree.Shape()
	words := tree.Words()

	mutations := map[string]func(s *TreeShape){
		"truncated node stream": func(s *TreeShape) { s.Splits = s.Splits[:len(s.Splits)-1] },
		"extra node":            func(s *TreeShape) { s.Splits = append(s.Splits, -1) },
		"leaf becomes inner":    func(s *TreeShape) { s.Splits[len(s.Splits)-1] = 0 },
		"split out of range":    func(s *TreeShape) { s.Splits[0] = 64 },
		"negative leaf count":   func(s *TreeShape) { s.LeafCounts[0] = -1 },
		"oversized leaf count":  func(s *TreeShape) { s.LeafCounts[0] += 1000 },
		"shifted leaf count":    func(s *TreeShape) { s.LeafCounts[0]++; s.LeafCounts[1]-- },
		"duplicate id":          func(s *TreeShape) { s.IDs[0] = s.IDs[1] },
		"id out of range":       func(s *TreeShape) { s.IDs[0] = int32(len(s.IDs)) },
		"no blocks, id out of range": func(s *TreeShape) {
			// The gather-fallback path must range-check before indexing the
			// word buffer (this combination used to panic, not error).
			s.LeafBlocks = nil
			s.IDs[0] = 1 << 30
		},
		"dropped id":             func(s *TreeShape) { s.IDs = s.IDs[:len(s.IDs)-1] },
		"unsorted root keys":     func(s *TreeShape) { s.RootKeys[0], s.RootKeys[1] = s.RootKeys[1], s.RootKeys[0] },
		"zero root bits":         func(s *TreeShape) { s.RootBits = 0 },
		"oversized root bits":    func(s *TreeShape) { s.RootBits = 65 },
		"oversized root key":     func(s *TreeShape) { s.RootKeys[0] = 1 << 63 },
		"flipped block byte":     func(s *TreeShape) { s.LeafBlocks[3] ^= 0xff },
		"truncated blocks":       func(s *TreeShape) { s.LeafBlocks = s.LeafBlocks[:len(s.LeafBlocks)-1] },
		"missing no-split flags": func(s *TreeShape) { s.LeafNoSplit = s.LeafNoSplit[:len(s.LeafNoSplit)-1] },
	}
	for name, mutate := range mutations {
		s := TreeShape{
			RootBits:    base.RootBits,
			RootKeys:    append([]uint64(nil), base.RootKeys...),
			Splits:      append([]int16(nil), base.Splits...),
			LeafCounts:  append([]int32(nil), base.LeafCounts...),
			LeafNoSplit: append([]bool(nil), base.LeafNoSplit...),
			IDs:         append([]int32(nil), base.IDs...),
			LeafBlocks:  append([]byte(nil), base.LeafBlocks...),
		}
		mutate(&s)
		if _, err := FromShape(data, sum, opts, words, s); err == nil {
			t.Errorf("%s: corrupt shape decoded without error", name)
		}
	}
	// The unmutated control must still decode.
	if _, err := FromShape(data, sum, opts, words, base); err != nil {
		t.Fatalf("control shape failed to decode: %v", err)
	}
	// Blocks present under NoLeafBlocks is a contradiction.
	noBlockOpts := opts
	noBlockOpts.NoLeafBlocks = true
	if _, err := FromShape(data, sum, noBlockOpts, words, base); err == nil {
		t.Error("shape with blocks decoded under NoLeafBlocks")
	}
}
