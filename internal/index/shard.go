package index

import (
	"fmt"

	"repro/internal/faultinject"
)

// This file is the tree's shard-facing query interface: the building blocks
// a sharded collection (core.Collection) uses to run one logical k-NN query
// across S independent trees while keeping the exactness guarantee.
//
// The contract mirrors MESSI's single-tree pipeline, lifted one level up:
//
//  1. The caller owns one KNNCollector shared by every shard. Its atomic
//     bound is the cross-shard best-so-far: any shard improving the global
//     k-NN set immediately tightens the pruning bound of every other shard.
//  2. SeedShard runs each shard's approximate stage (real distances from the
//     query's best-matching leaf) into the shared collector, so every shard
//     starts its exact stage with the best bound any shard could establish.
//  3. FinishShard runs the exact stage — traversal and priority-queue leaf
//     refinement — against the shared collector.
//  4. Tree-local series ids are mapped to the caller's global id space at
//     offer time (global = local*IDMul + IDAdd, the inverse of round-robin
//     partitioning), so the shared collector accumulates global ids and no
//     post-merge is needed: after all shards finish, the collector holds the
//     global top-k directly.
//
// Correctness: the shared bound is always an upper bound on the true global
// k-th nearest distance, so per-shard pruning against it is conservative;
// each candidate the single-tree engine would keep is offered by exactly one
// shard (the partition is disjoint and exhaustive).

// ShardQuery configures one shard's participation in a cross-shard query.
type ShardQuery struct {
	// KN is the shared collector. The caller must Reset it with the query's
	// k before seeding the first shard.
	KN *KNNCollector
	// PubIDs, when non-nil, maps tree-local ids to the caller's stable
	// public ids at offer time (PubIDs[local]); it overrides the affine
	// mapping below. A mutable collection sets it once a shard's local ids
	// no longer follow the round-robin layout (after upserts or compaction).
	PubIDs []int32
	// IDMul and IDAdd map tree-local ids to global ids at offer time when
	// PubIDs is nil: global = local*IDMul + IDAdd (the inverse of
	// round-robin partitioning). IDMul == 0 is treated as the identity
	// mapping (IDMul 1, IDAdd 0).
	IDMul, IDAdd ID
	// Epsilon relaxes pruning for (1+Epsilon)-approximate answers, as in
	// SearchEpsilon. 0 is exact.
	Epsilon float64
}

// SeedShard runs the first phase of a cross-shard query on this shard:
// query preparation plus the approximate stage, offering real distances from
// the shard's best-matching leaf into the shared collector. Call it on every
// shard before any FinishShard so each shard's exact stage starts from the
// tightest bound available (the searchers of distinct shards may seed
// concurrently; the collector is concurrency-safe).
func (s *Searcher) SeedShard(query []float64, k int, sq ShardQuery) error {
	if sq.KN == nil {
		return fmt.Errorf("index: ShardQuery.KN must not be nil")
	}
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteShardSeed); err != nil {
			return err
		}
	}
	if sq.Epsilon < 0 {
		return fmt.Errorf("index: epsilon must be >= 0, got %v", sq.Epsilon)
	}
	mul := sq.IDMul
	var add ID
	if mul == 0 {
		mul = 1
	} else {
		add = sq.IDAdd
	}
	scale := 1.0
	if sq.Epsilon > 0 {
		scale = 1 / ((1 + sq.Epsilon) * (1 + sq.Epsilon))
	}
	return s.beginShard(query, k, sq.KN, sq.PubIDs, mul, add, scale)
}

// FinishShard runs the second phase — exact traversal and leaf refinement —
// using the state prepared by the preceding SeedShard on this searcher.
func (s *Searcher) FinishShard() error {
	if !s.seeded {
		return fmt.Errorf("index: FinishShard without a preceding SeedShard")
	}
	if faultinject.Enabled {
		if err := faultinject.Hook(faultinject.SiteShardFinish); err != nil {
			return err
		}
		if err := faultinject.Hook(faultinject.SiteKernel); err != nil {
			return err
		}
	}
	s.finishShard()
	return nil
}
