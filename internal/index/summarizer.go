// Package index implements the MESSI-style parallel tree index the paper
// adapts for SOFA (Section IV-A/B/C): a variable-cardinality symbolic prefix
// tree built in parallel over in-memory data series, answering exact 1-NN
// and k-NN queries with the GEMINI framework — lower-bound pruning against a
// shared best-so-far distance, priority-queue ordered leaf refinement, and
// SIMD-structured early-abandoning distance kernels.
//
// The tree is generic over the summarization: MESSI instantiates it with
// iSAX (sax.Quantizer), SOFA with SFA (sfa.Quantizer). Both provide
// full-cardinality words per series, a real-valued query-side
// representation, and per-position breakpoint tables whose prefix structure
// defines the variable-cardinality node intervals.
package index

// Summarizer describes a learned or fixed symbolic summarization. The
// methods must be safe for concurrent use (the tables are immutable after
// construction).
type Summarizer interface {
	// Segments returns the word length l.
	Segments() int
	// MaxBits returns the bits per symbol at full cardinality.
	MaxBits() int
	// Weights returns the per-position weight w[j] such that the squared
	// lower-bound distance is sum_j w[j]*d_j^2 (n/l for SAX, the Parseval
	// multiplicity for SFA).
	Weights() []float64
	// Breakpoints returns the sorted full-cardinality interior breakpoint
	// table for position j (length 2^MaxBits-1).
	Breakpoints(j int) []float64
}

// Encoder transforms raw series under a Summarizer. Encoders are
// per-goroutine (they own scratch buffers and FFT plans).
type Encoder interface {
	// Word writes the full-cardinality word of series into dst.
	Word(series []float64, dst []byte) ([]byte, error)
	// QueryRepr writes the real-valued query-side representation (PAA of the
	// query for SAX, selected DFT values for SFA) into dst.
	QueryRepr(query []float64, dst []float64) ([]float64, error)
}

// Summarization couples a Summarizer with an Encoder factory. Both
// sax.Quantizer and the sfa adapter satisfy it.
type Summarization interface {
	Summarizer
	NewIndexEncoder() Encoder
}
