// Package index implements the MESSI-style parallel tree index the paper
// adapts for SOFA (Section IV-A/B/C): a variable-cardinality symbolic prefix
// tree built in parallel over in-memory data series, answering exact 1-NN
// and k-NN queries with the GEMINI framework — lower-bound pruning against a
// shared best-so-far distance, priority-queue ordered leaf refinement, and
// SIMD-structured early-abandoning distance kernels.
//
// The tree is generic over the summarization: MESSI instantiates it with
// iSAX (sax.Quantizer), SOFA with SFA (sfa.Quantizer). Both provide
// full-cardinality words per series, a real-valued query-side
// representation, and per-position breakpoint tables whose prefix structure
// defines the variable-cardinality node intervals.
//
// # Query hot-path layout
//
// The refinement loop (Algorithm 3's role in the pipeline) is built around
// data layout rather than emulated intrinsics:
//
//   - Flat LBD tables. The per-summarization gather tables and the
//     per-query distance table are single flat []float64 slices indexed
//     j*alphabet+sym, not ragged [][]float64: one base pointer, no
//     slice-header loads in the inner loop. The per-query table (distTable)
//     is the default refinement kernel — it folds query position, weights
//     and breakpoint intervals into one lookup per word position, built
//     once per query into Searcher-owned scratch (32 KiB at l=16,
//     alphabet=256; L1/L2-resident for the whole refinement phase) and
//     reused outright when the query representation repeats. The mask/blend
//     gather kernel (kernel.minDistEA) is retained as the Algorithm 3
//     reference, dispatched through internal/simd to real VGATHERQPD
//     assembly on AVX2 hardware; BenchmarkLBDKernels compares every
//     variant. Real Euclidean distances dispatch to AVX2+FMA assembly the
//     same way (internal/distance -> simd.SquaredEDEA).
//
//   - SoA leaf blocks. Every finalized leaf carries its members' words as
//     one contiguous block (node.words, row i belonging to node.ids[i]), so
//     refinement streams sequential memory instead of gathering
//     t.words[id*l:] per series. The global word buffer remains the source
//     of truth; blocks are maintained through splits and inserts and
//     checked by CheckInvariants.
//
//   - Zero-allocation searches. All per-query state — the z-normalized
//     query copy, representation, word, flat table, k-NN collector, leaf
//     priority queues (generic queue.PQ[*node], no interface boxing) and
//     the result buffer — lives in Searcher scratch, and the k-NN heap and
//     queues use hand-rolled sift operations. With one worker the engine
//     runs inline (no goroutine fan-out) and a steady-state Search performs
//     zero heap allocations; the shared BSF atomic is read once per
//     64-series block rather than per series.
//
//   - Batched throughput. Tree.BatchSearch fans independent queries across
//     pooled single-threaded Searchers (the FAISS mini-batch protocol),
//     trading intra-query latency for aggregate queries/second;
//     BatchSearchInto reuses caller-owned output scaffolding for
//     allocation-free steady-state batching.
//
//   - Shard participation. The engine runs in two phases (seed the
//     best-so-far from the best-matching leaf, then traverse and refine)
//     exposed as SeedShard/FinishShard: a sharded collection (core.Collection)
//     points S trees at one shared KNNCollector, seeds all shards first, and
//     lets the shards prune against each other's results; tree-local ids map
//     to collection-global ids at offer time (ShardQuery.IDMul/IDAdd).
package index

// Summarizer describes a learned or fixed symbolic summarization. The
// methods must be safe for concurrent use (the tables are immutable after
// construction).
type Summarizer interface {
	// Segments returns the word length l.
	Segments() int
	// MaxBits returns the bits per symbol at full cardinality.
	MaxBits() int
	// Weights returns the per-position weight w[j] such that the squared
	// lower-bound distance is sum_j w[j]*d_j^2 (n/l for SAX, the Parseval
	// multiplicity for SFA).
	Weights() []float64
	// Breakpoints returns the sorted full-cardinality interior breakpoint
	// table for position j (length 2^MaxBits-1).
	Breakpoints(j int) []float64
}

// Encoder transforms raw series under a Summarizer. Encoders are
// per-goroutine (they own scratch buffers and FFT plans).
type Encoder interface {
	// Word writes the full-cardinality word of series into dst.
	Word(series []float64, dst []byte) ([]byte, error)
	// QueryRepr writes the real-valued query-side representation (PAA of the
	// query for SAX, selected DFT values for SFA) into dst.
	QueryRepr(query []float64, dst []float64) ([]float64, error)
}

// Summarization couples a Summarizer with an Encoder factory. Both
// sax.Quantizer and the sfa adapter satisfy it.
type Summarization interface {
	Summarizer
	NewIndexEncoder() Encoder
}
