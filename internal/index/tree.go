package index

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distance"
)

// Options configures index construction.
type Options struct {
	// LeafCapacity is the maximum number of series a leaf holds before it
	// splits (the paper's leaf-size parameter; default 1024, the harness
	// sweeps it for Fig. 11).
	LeafCapacity int
	// Workers is the parallelism for build and query (default GOMAXPROCS).
	Workers int
	// Queues is the number of priority queues used during query answering
	// (default = Workers, matching the paper's setup).
	Queues int
	// PerSeriesLBD reverts query refinement to the per-series LBD kernel
	// path (one early-abandoning table lookup call per series) instead of
	// the default block kernels (one call per leaf, see
	// simd.LookupAccumBlockEA). Results are identical either way — the
	// block kernels are bit-identical to the per-series sequential path —
	// so the switch exists for the same-binary A/B benchmarks and as an
	// escape hatch.
	PerSeriesLBD bool
	// NoLeafBlocks disables the per-leaf contiguous word blocks (node.words).
	// Blocks roughly double word memory (the global buffer stays the source
	// of truth), so memory-constrained builds — e.g. many shards per machine
	// — can trade the refinement loop's sequential streaming for per-series
	// gathers from the global buffer.
	NoLeafBlocks bool
}

func (o Options) withDefaults() Options {
	if o.LeafCapacity == 0 {
		o.LeafCapacity = 1024
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queues == 0 {
		o.Queues = o.Workers
	}
	return o
}

// node is a tree node. Inner nodes have split >= 0 and two children; leaves
// have split == -1 and hold series ids.
type node struct {
	word  []byte  // per-position symbol prefixes (right-aligned)
	cards []uint8 // per-position prefix widths in bits
	depth int

	split    int // split position; -1 for leaves
	children [2]*node

	ids []int32 // leaf payload
	// words is the leaf's refinement block: the members' full-cardinality
	// words copied contiguously (len(ids) x l, row i belongs to ids[i]), so
	// the refinement loop streams sequential memory instead of gathering
	// t.words[id*l:] per series. The global t.words buffer remains the
	// source of truth; blocks are filled when leaves are finalized during
	// build and maintained through splits and inserts.
	words   []byte
	count   int32 // series in this subtree
	noSplit bool  // leaf whose remaining words are all identical
}

func (n *node) isLeaf() bool { return n.split < 0 }

// Tree is the MESSI-style index over an in-memory, z-normalized series
// matrix. It is immutable (and safe for concurrent queries) after Build.
type Tree struct {
	sum  Summarization
	opts Options
	data *distance.Matrix
	// words holds every series' full-cardinality word, row-major (N x l).
	words    []byte
	l        int
	maxBits  int
	rootBits int // number of word positions contributing to the root key
	root     map[uint64]*node
	rootKeys []uint64
	gather   *gatherTables

	// searchers pools serial Searchers for BatchSearch so repeated batches
	// reuse per-worker scratch.
	searchers sync.Pool

	// dead is the tombstone bitmap (bit id set = series id is deleted) and
	// deadCount its population count. A tombstoned series stays in the data
	// matrix, the word buffer and its leaf — removing it would renumber every
	// id — but the refinement loops skip it before any offer, so it can never
	// reach a result set. The bitmap grows lazily to the highest deleted id;
	// nil means nothing is deleted and costs the hot path one length test.
	// Delete follows the Insert concurrency contract (not safe concurrently
	// with searches); reclaiming the dead rows is the collection layer's
	// compaction, which rebuilds the shard from its survivors.
	dead      []uint64
	deadCount int

	// splits counts successful leaf splits over the tree's lifetime (build,
	// load, inserts). A tree decoded via FromShape performs none — the
	// persistence v3 guarantee tests pin with SplitCount.
	splits atomic.Int64

	// BuildBreakdown records the two build phases for Fig. 7.
	TransformSeconds float64
	TreeSeconds      float64
}

// newTree validates the constructor contract shared by Build,
// BuildFromWords and FromShape, and allocates the tree skeleton they fill.
// words is the full-cardinality word matrix to retain (row-major,
// data.Len() x segments); nil allocates an empty one for Build to compute
// into.
func newTree(data *distance.Matrix, sum Summarization, opts Options, words []byte) (*Tree, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("index: cannot build over empty data")
	}
	o := opts.withDefaults()
	l := sum.Segments()
	if l > 64 {
		return nil, fmt.Errorf("index: word length %d exceeds 64 (root fan-out key)", l)
	}
	if o.LeafCapacity < 1 {
		return nil, fmt.Errorf("index: leaf capacity must be >= 1, got %d", o.LeafCapacity)
	}
	if words == nil {
		words = make([]byte, data.Len()*l)
	} else if len(words) != data.Len()*l {
		return nil, fmt.Errorf("index: words length %d, want %d", len(words), data.Len()*l)
	}
	return &Tree{
		sum:      sum,
		opts:     o,
		data:     data,
		words:    words,
		l:        l,
		maxBits:  sum.MaxBits(),
		rootBits: rootFanoutBits(data.Len(), o.LeafCapacity, l),
		root:     make(map[uint64]*node),
		gather:   newGatherTables(sum),
	}, nil
}

// Build constructs the index over data (which must already be z-normalized;
// Build does not modify it) using the given summarization.
func Build(data *distance.Matrix, sum Summarization, opts Options) (*Tree, error) {
	t, err := newTree(data, sum, opts, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := t.buildWords(); err != nil {
		return nil, err
	}
	t.TransformSeconds = time.Since(start).Seconds()
	start = time.Now()
	t.buildTree()
	t.TreeSeconds = time.Since(start).Seconds()
	return t, nil
}

// buildWords is build phase one: transform every series into its word, in
// parallel over deterministic chunk assignments, and bucket series ids by
// their root key (the vector of per-position top bits).
func (t *Tree) buildWords() error {
	n := t.data.Len()
	workers := t.opts.Workers
	if workers > n {
		workers = n
	}
	chunk := (n + workers*8 - 1) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	numChunks := (n + chunk - 1) / chunk

	buffers := make([]map[uint64][]int32, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			enc := t.sum.NewIndexEncoder()
			buf := make(map[uint64][]int32)
			buffers[w] = buf
			for c := w; c < numChunks; c += workers {
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					word := t.words[i*t.l : (i+1)*t.l]
					if _, err := enc.Word(t.data.Row(i), word); err != nil {
						errs[w] = err
						return
					}
					key := t.rootKey(word)
					buf[key] = append(buf[key], int32(i))
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Merge per-worker buffers in worker order (deterministic for a fixed
	// worker count).
	merged := make(map[uint64][]int32)
	for _, buf := range buffers {
		for k, ids := range buf {
			merged[k] = append(merged[k], ids...)
		}
	}
	t.rootKeys = make([]uint64, 0, len(merged))
	for k := range merged {
		t.rootKeys = append(t.rootKeys, k)
	}
	sort.Slice(t.rootKeys, func(a, b int) bool { return t.rootKeys[a] < t.rootKeys[b] })
	for _, k := range t.rootKeys {
		t.root[k] = t.newRootChild(k, merged[k])
	}
	return nil
}

// rootFanoutBits sizes the root fan-out to the collection: the classic iSAX
// root uses one bit from every position (2^l children), which is right for
// the paper's 10⁸-series datasets but shreds small collections into
// single-series subtrees. We use ceil(log2(n/leafCapacity)) bits (clamped to
// [1, l]), which approaches the paper's layout as n grows and keeps root
// children near leaf capacity for small n.
func rootFanoutBits(n, leafCapacity, l int) int {
	target := n / leafCapacity
	bits := 1
	for bits < l && 1<<bits < target {
		bits++
	}
	return bits
}

// rootKey packs the top bit of the first rootBits positions' symbols into
// the root key. Positions are in word order, which for SFA is descending
// variance — the most discriminative values shape the fan-out.
func (t *Tree) rootKey(word []byte) uint64 {
	var key uint64
	top := uint(t.maxBits - 1)
	for j := 0; j < t.rootBits; j++ {
		key |= uint64((word[j]>>top)&1) << uint(j)
	}
	return key
}

// newRootChild creates the subtree root for a root key: the first rootBits
// positions carry one bit of prefix, the rest are unconstrained (cards 0).
func (t *Tree) newRootChild(key uint64, ids []int32) *node {
	word := make([]byte, t.l)
	cards := make([]uint8, t.l)
	for j := 0; j < t.rootBits; j++ {
		word[j] = byte((key >> uint(j)) & 1)
		cards[j] = 1
	}
	return &node{word: word, cards: cards, depth: 1, split: -1, ids: ids, count: int32(len(ids))}
}

// buildTree is build phase two: split overfull root subtrees, one worker per
// subtree (no synchronization needed inside a subtree, as in MESSI).
func (t *Tree) buildTree() {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := t.opts.Workers
	if workers > len(t.rootKeys) {
		workers = len(t.rootKeys)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(t.rootKeys) {
					return
				}
				root := t.root[t.rootKeys[i]]
				t.splitToCapacity(root)
				if !t.opts.NoLeafBlocks {
					t.fillLeafBlocks(root)
				}
			}
		}()
	}
	wg.Wait()
}

// fillLeafBlocks walks a finalized subtree and materializes every leaf's
// contiguous refinement block from the global word buffer.
func (t *Tree) fillLeafBlocks(n *node) {
	if n.isLeaf() {
		n.words = t.gatherLeafWords(n.ids)
		return
	}
	t.fillLeafBlocks(n.children[0])
	t.fillLeafBlocks(n.children[1])
}

// gatherLeafWords copies the full-cardinality words of ids from the global
// buffer into a fresh contiguous block. Returns nil for an empty leaf.
func (t *Tree) gatherLeafWords(ids []int32) []byte {
	if len(ids) == 0 {
		return nil
	}
	dst := make([]byte, len(ids)*t.l)
	for i, id := range ids {
		copy(dst[i*t.l:(i+1)*t.l], t.words[int(id)*t.l:(int(id)+1)*t.l])
	}
	return dst
}

// splitToCapacity recursively splits a subtree until every leaf fits its
// capacity (or cannot be split further).
func (t *Tree) splitToCapacity(n *node) {
	if n.isLeaf() {
		if len(n.ids) <= t.opts.LeafCapacity || n.noSplit {
			return
		}
		if !t.split(n) {
			n.noSplit = true
			return
		}
	}
	t.splitToCapacity(n.children[0])
	t.splitToCapacity(n.children[1])
}

// split converts a leaf into an inner node by extending one position's
// prefix by one bit, choosing the position that balances the two children
// best (the iSAX2.0 strategy MESSI inherits). It returns false when no
// position can produce two non-empty children.
func (t *Tree) split(leaf *node) bool {
	bestSeg := -1
	bestScore := int(^uint(0) >> 1) // max int
	size := len(leaf.ids)
	for j := 0; j < t.l; j++ {
		bits := int(leaf.cards[j])
		if bits >= t.maxBits {
			continue
		}
		shift := uint(t.maxBits - bits - 1)
		ones := 0
		for _, id := range leaf.ids {
			ones += int((t.words[int(id)*t.l+j] >> shift) & 1)
		}
		if ones == 0 || ones == size {
			continue // degenerate split
		}
		score := ones*2 - size
		if score < 0 {
			score = -score
		}
		// Prefer balance, then lower cardinality, then lower position.
		if score < bestScore || (score == bestScore && bestSeg >= 0 && leaf.cards[j] < leaf.cards[bestSeg]) {
			bestScore = score
			bestSeg = j
		}
	}
	if bestSeg < 0 {
		return false
	}
	j := bestSeg
	shift := uint(t.maxBits - int(leaf.cards[j]) - 1)
	var kids [2]*node
	for b := 0; b < 2; b++ {
		word := append([]byte(nil), leaf.word...)
		cards := append([]uint8(nil), leaf.cards...)
		word[j] = word[j]<<1 | byte(b)
		cards[j]++
		kids[b] = &node{word: word, cards: cards, depth: leaf.depth + 1, split: -1}
	}
	for _, id := range leaf.ids {
		b := (t.words[int(id)*t.l+j] >> shift) & 1
		kids[b].ids = append(kids[b].ids, id)
	}
	kids[0].count = int32(len(kids[0].ids))
	kids[1].count = int32(len(kids[1].ids))
	if leaf.words != nil {
		// The leaf was already finalized (post-build insert path): give the
		// children their own contiguous blocks. During the initial build
		// blocks are filled once per subtree after splitting settles.
		kids[0].words = t.gatherLeafWords(kids[0].ids)
		kids[1].words = t.gatherLeafWords(kids[1].ids)
	}
	leaf.split = j
	leaf.children = [2]*node{kids[0], kids[1]}
	leaf.ids = nil
	leaf.words = nil
	t.splits.Add(1)
	return true
}

// deadBit reports whether id is tombstoned in dead. The length test doubles
// as the bounds check (a nil or short bitmap means live), keeping the
// refinement loops' skip to one branch in the no-deletes steady state.
func deadBit(dead []uint64, id int32) bool {
	w := int(id) >> 6
	return w < len(dead) && dead[w]&(1<<(uint(id)&63)) != 0
}

// Delete tombstones the series with tree-local id: it is skipped by every
// subsequent refinement pass and excluded from Live. The series' row, word
// and leaf slot are retained (ids are stable); compaction at the collection
// layer reclaims them. Same concurrency contract as Insert: not safe to run
// concurrently with searches or other mutations.
func (t *Tree) Delete(id int32) error {
	if id < 0 || int(id) >= t.data.Len() {
		return fmt.Errorf("index: id %d out of range [0,%d)", id, t.data.Len())
	}
	w, bit := int(id)>>6, uint64(1)<<(uint(id)&63)
	if w >= len(t.dead) {
		grown := make([]uint64, (t.data.Len()+63)/64)
		copy(grown, t.dead)
		t.dead = grown
	}
	if t.dead[w]&bit != 0 {
		return fmt.Errorf("index: id %d already tombstoned", id)
	}
	t.dead[w] |= bit
	t.deadCount++
	return nil
}

// Tombstoned reports whether the series with tree-local id carries a
// tombstone.
func (t *Tree) Tombstoned(id int32) bool { return deadBit(t.dead, id) }

// Live returns the number of live (non-tombstoned) series.
func (t *Tree) Live() int { return t.data.Len() - t.deadCount }

// TombstoneCount returns the number of tombstoned series.
func (t *Tree) TombstoneCount() int { return t.deadCount }

// Tombstones returns the tombstone bitmap (aliased; do not modify) and its
// population count. Used by index persistence and compaction.
func (t *Tree) Tombstones() ([]uint64, int) { return t.dead, t.deadCount }

// SetTombstones installs a loaded tombstone bitmap, validating that every
// set bit names an existing series and that count matches the population.
// Used by the persistence loader.
func (t *Tree) SetTombstones(dead []uint64, count int) error {
	n := t.data.Len()
	if len(dead) > (n+63)/64 {
		return fmt.Errorf("index: tombstone bitmap has %d words, want at most %d", len(dead), (n+63)/64)
	}
	pop := 0
	for w, word := range dead {
		pop += bits.OnesCount64(word)
		if word != 0 {
			if hi := w*64 + 63 - bits.LeadingZeros64(word); hi >= n {
				return fmt.Errorf("index: tombstone bit %d out of range [0,%d)", hi, n)
			}
		}
	}
	if pop != count {
		return fmt.Errorf("index: tombstone count %d != bitmap population %d", count, pop)
	}
	t.dead = dead
	t.deadCount = count
	return nil
}

// SplitCount reports how many leaf splits the tree has performed since it
// was created — the test hook behind the persistence contract that a
// shape-decoded load (FromShape) re-splits nothing.
func (t *Tree) SplitCount() int64 { return t.splits.Load() }

// Len returns the number of indexed series.
func (t *Tree) Len() int { return t.data.Len() }

// SeriesLen returns the length of each indexed series.
func (t *Tree) SeriesLen() int { return t.data.Stride }

// Stats summarizes the index structure (paper Fig. 8).
type Stats struct {
	Series      int     // physical rows, live and tombstoned
	Live        int     // series a search can return
	Tombstoned  int     // deleted series awaiting compaction
	Subtrees    int     // number of root children
	Leaves      int     // non-empty leaves
	AvgDepth    float64 // mean depth of non-empty leaves (root = depth 0)
	MaxDepth    int
	AvgLeafSize float64 // mean series per non-empty leaf
}

// Stats walks the tree and reports its structure.
func (t *Tree) Stats() Stats {
	st := Stats{
		Series:     t.data.Len(),
		Live:       t.data.Len() - t.deadCount,
		Tombstoned: t.deadCount,
		Subtrees:   len(t.rootKeys),
	}
	var depthSum, sizeSum int
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			if len(n.ids) == 0 {
				return
			}
			st.Leaves++
			depthSum += n.depth
			sizeSum += len(n.ids)
			if n.depth > st.MaxDepth {
				st.MaxDepth = n.depth
			}
			return
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	for _, k := range t.rootKeys {
		walk(t.root[k])
	}
	if st.Leaves > 0 {
		st.AvgDepth = float64(depthSum) / float64(st.Leaves)
		st.AvgLeafSize = float64(sizeSum) / float64(st.Leaves)
	}
	return st
}

// BuildFromWords constructs the index over data whose full-cardinality
// words were already computed — the persistence fast path: it skips the
// (expensive) summarization transform and only re-buckets and re-splits,
// which is deterministic given the words and options. words is row-major
// (data.Len() x sum.Segments()) and is retained by the tree.
func BuildFromWords(data *distance.Matrix, sum Summarization, opts Options, words []byte) (*Tree, error) {
	if words == nil {
		return nil, fmt.Errorf("index: words must not be nil")
	}
	t, err := newTree(data, sum, opts, words)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	buckets := make(map[uint64][]int32)
	for i := 0; i < data.Len(); i++ {
		key := t.rootKey(t.words[i*t.l : (i+1)*t.l])
		buckets[key] = append(buckets[key], int32(i))
	}
	t.rootKeys = make([]uint64, 0, len(buckets))
	for k := range buckets {
		t.rootKeys = append(t.rootKeys, k)
	}
	sort.Slice(t.rootKeys, func(a, b int) bool { return t.rootKeys[a] < t.rootKeys[b] })
	for _, k := range t.rootKeys {
		t.root[k] = t.newRootChild(k, buckets[k])
	}
	t.buildTree()
	t.TreeSeconds = time.Since(start).Seconds()
	return t, nil
}

// Words returns the full-cardinality word matrix (row-major, aliased; do
// not modify). Used by index persistence.
func (t *Tree) Words() []byte { return t.words }

// Encoder returns a fresh per-goroutine encoder for the tree's
// summarization (used by Insert callers).
func (t *Tree) Encoder() Encoder { return t.sum.NewIndexEncoder() }

// Sum returns the tree's summarization. A compacted shard that re-learned
// its quantization carries its own; the collection's certificate path uses
// this to compute shard-correct query representations.
func (t *Tree) Sum() Summarization { return t.sum }

// Data returns the tree's underlying series matrix (aliased; do not
// modify). Compaction snapshots survivor rows from it.
func (t *Tree) Data() *distance.Matrix { return t.data }
