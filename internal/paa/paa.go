// Package paa implements the Piecewise Aggregate Approximation (Keogh et
// al., 2001): a data series is divided into l segments and each segment is
// represented by its mean. PAA is the real-valued substrate of SAX/iSAX and
// the query-side representation used by the iSAX lower-bounding distance.
package paa

import "fmt"

// Transform computes the l-segment PAA of x into dst (which must have
// length >= l) and returns dst[:l]. Series whose length is not divisible by
// l are handled with the fractional-weight scheme: each PAA frame averages
// the exact window [i*n/l, (i+1)*n/l), splitting boundary points
// proportionally, so the transform is well defined for every (n, l) with
// l <= n.
func Transform(x []float64, l int, dst []float64) ([]float64, error) {
	n := len(x)
	if l < 1 || l > n {
		return nil, fmt.Errorf("paa: segments %d out of range [1,%d]", l, n)
	}
	if len(dst) < l {
		return nil, fmt.Errorf("paa: dst length %d < %d", len(dst), l)
	}
	if n%l == 0 {
		w := n / l
		inv := 1 / float64(w)
		for i := 0; i < l; i++ {
			var s float64
			for _, v := range x[i*w : (i+1)*w] {
				s += v
			}
			dst[i] = s * inv
		}
		return dst[:l], nil
	}
	// Fractional segment boundaries.
	fl := float64(l)
	fn := float64(n)
	segLen := fn / fl
	for i := 0; i < l; i++ {
		start := float64(i) * segLen
		end := start + segLen
		var s float64
		j := int(start)
		pos := start
		for pos < end-1e-12 {
			next := float64(j + 1)
			if next > end {
				next = end
			}
			s += x[j] * (next - pos)
			pos = next
			j++
		}
		dst[i] = s / segLen
	}
	return dst[:l], nil
}

// MustTransform is Transform that panics on error; for hot paths with
// pre-validated parameters.
func MustTransform(x []float64, l int, dst []float64) []float64 {
	out, err := Transform(x, l, dst)
	if err != nil {
		panic(err)
	}
	return out
}

// SegmentLength returns the (possibly fractional) number of points each PAA
// frame covers for a series of length n split into l segments.
func SegmentLength(n, l int) float64 { return float64(n) / float64(l) }
