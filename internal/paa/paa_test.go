package paa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformEvenDivision(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	dst := make([]float64, 4)
	got, err := Transform(x, 4, dst)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("segment %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestTransformSingleSegment(t *testing.T) {
	x := []float64{2, 4, 6}
	dst := make([]float64, 1)
	got, err := Transform(x, 1, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Errorf("got %v, want 4", got[0])
	}
}

func TestTransformIdentity(t *testing.T) {
	// l == n: PAA is the identity.
	x := []float64{3, 1, 4, 1, 5}
	dst := make([]float64, 5)
	got, err := Transform(x, 5, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Errorf("identity violated at %d: %v != %v", i, got[i], x[i])
		}
	}
}

func TestTransformFractional(t *testing.T) {
	// n=5, l=2: segments cover [0,2.5) and [2.5,5).
	x := []float64{1, 1, 1, 3, 3}
	dst := make([]float64, 2)
	got, err := Transform(x, 2, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 0: 1*1 + 1*1 + 1*0.5 = 2.5 over 2.5 -> 1.
	// Segment 1: 1*0.5 + 3 + 3 = 6.5 over 2.5 -> 2.6.
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]-2.6) > 1e-12 {
		t.Errorf("got %v, want [1 2.6]", got)
	}
}

func TestTransformValidation(t *testing.T) {
	x := []float64{1, 2, 3}
	if _, err := Transform(x, 0, make([]float64, 3)); err == nil {
		t.Error("expected error for l=0")
	}
	if _, err := Transform(x, 4, make([]float64, 4)); err == nil {
		t.Error("expected error for l>n")
	}
	if _, err := Transform(x, 2, make([]float64, 1)); err == nil {
		t.Error("expected error for small dst")
	}
}

func TestMustTransformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustTransform([]float64{1}, 2, make([]float64, 2))
}

// Property: PAA preserves the overall mean (the weighted mean of segment
// means equals the series mean), for any length and segment count.
func TestMeanPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		l := 1 + rng.Intn(n)
		x := make([]float64, n)
		var mean float64
		for i := range x {
			x[i] = rng.NormFloat64()
			mean += x[i]
		}
		mean /= float64(n)
		out, err := Transform(x, l, make([]float64, l))
		if err != nil {
			return false
		}
		var paaMean float64
		for _, v := range out {
			paaMean += v
		}
		paaMean /= float64(l)
		return math.Abs(mean-paaMean) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: each PAA value lies within [min(x), max(x)].
func TestRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		l := 1 + rng.Intn(n)
		x := make([]float64, n)
		min, max := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = rng.NormFloat64()
			min = math.Min(min, x[i])
			max = math.Max(max, x[i])
		}
		out, err := Transform(x, l, make([]float64, l))
		if err != nil {
			return false
		}
		for _, v := range out {
			if v < min-1e-9 || v > max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentLength(t *testing.T) {
	if got := SegmentLength(256, 16); got != 16 {
		t.Errorf("got %v", got)
	}
	if got := SegmentLength(100, 16); got != 6.25 {
		t.Errorf("got %v", got)
	}
}

func BenchmarkTransform256x16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustTransform(x, 16, dst)
	}
}
