// Package queue provides the lock-based concurrent min-priority queues that
// MESSI-style query answering uses to order surviving leaf nodes by their
// lower-bound distance (paper Section IV-C). Workers push leaves during the
// tree-traversal phase and pop them in ascending LBD order during the
// refinement phase, abandoning a queue as soon as its minimum exceeds the
// best-so-far distance.
//
// The queues are generic over the payload type: instantiating PQ with a
// concrete type (the index uses PQ[*node]) stores entries inline in the heap
// slice with no interface boxing, so the query hot path performs no
// per-push allocation once the backing arrays have grown to steady-state
// size. Reset empties a queue while keeping its capacity, which lets a
// searcher reuse one Set across queries allocation-free.
package queue

import (
	"math"
	"sync"
	"sync/atomic"
)

// Item is a queue entry: a payload ordered by Priority (the leaf's
// lower-bound distance to the query).
type Item[T any] struct {
	Payload  T
	Priority float64
}

// PQ is a mutex-protected min-heap. The zero value is ready to use. The heap
// operations are hand-rolled over the typed slice (rather than delegating to
// container/heap) so pushes and pops move concrete values without boxing
// through interfaces.
type PQ[T any] struct {
	mu sync.Mutex
	h  []Item[T]
}

// siftUp restores the heap property after appending at index i.
func (q *PQ[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.h[parent].Priority <= q.h[i].Priority {
			break
		}
		q.h[parent], q.h[i] = q.h[i], q.h[parent]
		i = parent
	}
}

// siftDown restores the heap property from the root after a pop.
func (q *PQ[T]) siftDown(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.h[right].Priority < q.h[left].Priority {
			min = right
		}
		if q.h[i].Priority <= q.h[min].Priority {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// popLocked removes and returns the minimum item; callers hold q.mu and
// guarantee the heap is non-empty.
func (q *PQ[T]) popLocked() Item[T] {
	it := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	var zero Item[T]
	q.h[n] = zero // release payload references
	q.h = q.h[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return it
}

// Push inserts an item.
func (q *PQ[T]) Push(payload T, priority float64) {
	q.mu.Lock()
	q.h = append(q.h, Item[T]{Payload: payload, Priority: priority})
	q.siftUp(len(q.h) - 1)
	q.mu.Unlock()
}

// Pop removes and returns the minimum-priority item. ok is false when the
// queue is empty.
func (q *PQ[T]) Pop() (it Item[T], ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return it, false
	}
	return q.popLocked(), true
}

// PopIfBelow pops the minimum item only if its priority is strictly below
// bound. It returns (item, true) on success; (min-priority, false) if the
// head exceeds the bound or the queue is empty (priority is +Inf then).
// This is the single-lock "check head and abandon" operation the MESSI
// refinement loop performs.
func (q *PQ[T]) PopIfBelow(bound float64) (it Item[T], ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		it.Priority = math.Inf(1)
		return it, false
	}
	if q.h[0].Priority >= bound {
		it.Priority = q.h[0].Priority
		return it, false
	}
	return q.popLocked(), true
}

// Drain empties the queue and returns the number of items discarded. The
// backing array is retained for reuse.
func (q *PQ[T]) Drain() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.h)
	var zero Item[T]
	for i := range q.h {
		q.h[i] = zero
	}
	q.h = q.h[:0]
	return n
}

// Len returns the current number of items.
func (q *PQ[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// Set is a fixed collection of queues with a round-robin push cursor, as in
// MESSI: leaves are distributed across queues to reduce lock contention, and
// each worker drains queues starting from its own.
type Set[T any] struct {
	queues []PQ[T]
	cursor atomic.Uint64
}

// NewSet creates a set of n queues (n >= 1).
func NewSet[T any](n int) *Set[T] {
	if n < 1 {
		n = 1
	}
	return &Set[T]{queues: make([]PQ[T], n)}
}

// Size returns the number of queues.
func (s *Set[T]) Size() int { return len(s.queues) }

// Queue returns the i-th queue.
func (s *Set[T]) Queue(i int) *PQ[T] { return &s.queues[i] }

// PushRoundRobin inserts the payload into the next queue in round-robin
// order.
func (s *Set[T]) PushRoundRobin(payload T, priority float64) {
	i := (s.cursor.Add(1) - 1) % uint64(len(s.queues))
	s.queues[i].Push(payload, priority)
}

// TotalLen sums the lengths of all queues.
func (s *Set[T]) TotalLen() int {
	var n int
	for i := range s.queues {
		n += s.queues[i].Len()
	}
	return n
}

// Reset empties every queue (retaining their backing arrays) and rewinds the
// round-robin cursor, preparing the set for reuse by the next query.
func (s *Set[T]) Reset() {
	for i := range s.queues {
		s.queues[i].Drain()
	}
	s.cursor.Store(0)
}
