// Package queue provides the lock-based concurrent min-priority queues that
// MESSI-style query answering uses to order surviving leaf nodes by their
// lower-bound distance (paper Section IV-C). Workers push leaves during the
// tree-traversal phase and pop them in ascending LBD order during the
// refinement phase, abandoning a queue as soon as its minimum exceeds the
// best-so-far distance.
package queue

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"
)

// Item is a queue entry: an opaque payload ordered by Priority (the leaf's
// lower-bound distance to the query).
type Item struct {
	Payload  any
	Priority float64
}

type itemHeap []Item

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return h[i].Priority < h[j].Priority }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)        { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// PQ is a mutex-protected min-heap. The zero value is ready to use.
type PQ struct {
	mu sync.Mutex
	h  itemHeap
}

// Push inserts an item.
func (q *PQ) Push(payload any, priority float64) {
	q.mu.Lock()
	heap.Push(&q.h, Item{Payload: payload, Priority: priority})
	q.mu.Unlock()
}

// Pop removes and returns the minimum-priority item. ok is false when the
// queue is empty.
func (q *PQ) Pop() (it Item, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return Item{}, false
	}
	return heap.Pop(&q.h).(Item), true
}

// PopIfBelow pops the minimum item only if its priority is strictly below
// bound. It returns (item, true) on success; (min-priority, false) if the
// head exceeds the bound or the queue is empty (priority is +Inf then).
// This is the single-lock "check head and abandon" operation the MESSI
// refinement loop performs.
func (q *PQ) PopIfBelow(bound float64) (it Item, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return Item{Priority: inf()}, false
	}
	if q.h[0].Priority >= bound {
		return Item{Priority: q.h[0].Priority}, false
	}
	return heap.Pop(&q.h).(Item), true
}

// Drain empties the queue and returns the number of items discarded.
func (q *PQ) Drain() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.h)
	q.h = q.h[:0]
	return n
}

// Len returns the current number of items.
func (q *PQ) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

func inf() float64 { return math.Inf(1) }

// Set is a fixed collection of queues with a round-robin push cursor, as in
// MESSI: leaves are distributed across queues to reduce lock contention, and
// each worker drains queues starting from its own.
type Set struct {
	queues []PQ
	cursor atomic.Uint64
}

// NewSet creates a set of n queues (n >= 1).
func NewSet(n int) *Set {
	if n < 1 {
		n = 1
	}
	return &Set{queues: make([]PQ, n)}
}

// Size returns the number of queues.
func (s *Set) Size() int { return len(s.queues) }

// Queue returns the i-th queue.
func (s *Set) Queue(i int) *PQ { return &s.queues[i] }

// PushRoundRobin inserts the payload into the next queue in round-robin
// order.
func (s *Set) PushRoundRobin(payload any, priority float64) {
	i := (s.cursor.Add(1) - 1) % uint64(len(s.queues))
	s.queues[i].Push(payload, priority)
}

// TotalLen sums the lengths of all queues.
func (s *Set) TotalLen() int {
	var n int
	for i := range s.queues {
		n += s.queues[i].Len()
	}
	return n
}
