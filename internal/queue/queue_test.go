package queue

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestPQOrdering(t *testing.T) {
	var q PQ[int]
	prios := []float64{5, 1, 3, 2, 4}
	for _, p := range prios {
		q.Push(int(p), p)
	}
	var got []float64
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, it.Priority)
		if it.Payload != int(it.Priority) {
			t.Errorf("payload %v does not match priority %v", it.Payload, it.Priority)
		}
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("pop order not ascending: %v", got)
	}
	if len(got) != len(prios) {
		t.Errorf("popped %d items, want %d", len(got), len(prios))
	}
}

// Property: pops come out in exactly sorted order for random inputs,
// including duplicates.
func TestPQOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var q PQ[int]
		n := 1 + rng.Intn(200)
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(rng.Intn(20)) // force duplicates
			q.Push(i, want[i])
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			it, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d: queue empty after %d of %d pops", trial, i, n)
			}
			if it.Priority != want[i] {
				t.Fatalf("trial %d pop %d: priority %v, want %v", trial, i, it.Priority, want[i])
			}
		}
		if _, ok := q.Pop(); ok {
			t.Fatalf("trial %d: extra items", trial)
		}
	}
}

func TestPopEmpty(t *testing.T) {
	var q PQ[int]
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue should report !ok")
	}
}

func TestPopIfBelow(t *testing.T) {
	var q PQ[string]
	q.Push("a", 10)
	q.Push("b", 5)
	// Head (5) >= bound 5: refuse and report the head priority.
	it, ok := q.PopIfBelow(5)
	if ok || it.Priority != 5 {
		t.Errorf("expected refusal with head priority 5, got %+v ok=%v", it, ok)
	}
	it, ok = q.PopIfBelow(6)
	if !ok || it.Payload != "b" {
		t.Errorf("expected pop of b, got %+v ok=%v", it, ok)
	}
	// Empty queue reports +Inf head.
	q.Drain()
	it, ok = q.PopIfBelow(100)
	if ok || !math.IsInf(it.Priority, 1) {
		t.Errorf("empty: got %+v ok=%v", it, ok)
	}
}

func TestDrainAndLen(t *testing.T) {
	var q PQ[int]
	for i := 0; i < 7; i++ {
		q.Push(i, float64(i))
	}
	if q.Len() != 7 {
		t.Errorf("Len: %d", q.Len())
	}
	if n := q.Drain(); n != 7 {
		t.Errorf("Drain: %d", n)
	}
	if q.Len() != 0 {
		t.Error("queue not empty after drain")
	}
}

func TestConcurrentPushPop(t *testing.T) {
	var q PQ[int]
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				q.Push(i, rng.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	if q.Len() != workers*perWorker {
		t.Fatalf("lost pushes: %d", q.Len())
	}
	var popped int
	var wg2 sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			local := 0
			for {
				if _, ok := q.Pop(); !ok {
					break
				}
				local++
			}
			mu.Lock()
			popped += local
			mu.Unlock()
		}()
	}
	wg2.Wait()
	if popped != workers*perWorker {
		t.Errorf("popped %d, want %d", popped, workers*perWorker)
	}
}

func TestSetRoundRobin(t *testing.T) {
	s := NewSet[int](4)
	if s.Size() != 4 {
		t.Fatalf("Size: %d", s.Size())
	}
	for i := 0; i < 12; i++ {
		s.PushRoundRobin(i, float64(i))
	}
	if s.TotalLen() != 12 {
		t.Errorf("TotalLen: %d", s.TotalLen())
	}
	for i := 0; i < 4; i++ {
		if got := s.Queue(i).Len(); got != 3 {
			t.Errorf("queue %d has %d items, want 3", i, got)
		}
	}
}

func TestNewSetMinimumSize(t *testing.T) {
	if NewSet[int](0).Size() != 1 || NewSet[int](-3).Size() != 1 {
		t.Error("NewSet should clamp to at least one queue")
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet[int](3)
	for i := 0; i < 9; i++ {
		s.PushRoundRobin(i, float64(i))
	}
	s.Reset()
	if s.TotalLen() != 0 {
		t.Errorf("TotalLen after Reset: %d", s.TotalLen())
	}
	// Cursor rewound: pushes distribute round-robin from queue 0 again.
	s.PushRoundRobin(1, 1)
	if s.Queue(0).Len() != 1 {
		t.Error("cursor not rewound by Reset")
	}
}

// Steady state: a drained queue reuses its backing array, so the push/pop
// cycle of a repeated query performs zero allocations.
func TestPQSteadyStateZeroAlloc(t *testing.T) {
	var q PQ[*int]
	payload := new(int)
	cycle := func() {
		for i := 0; i < 64; i++ {
			q.Push(payload, float64(64-i))
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
	cycle() // grow the backing array
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("steady-state push/pop allocates %v allocs/run, want 0", avg)
	}
}
