package sax

// Encoder adapts a Quantizer to the per-goroutine encoder shape shared with
// sfa.Transformer: it owns the PAA scratch buffer so Word/QueryRepr are
// allocation-free. Not safe for concurrent use; create one per worker.
type Encoder struct {
	q       *Quantizer
	scratch []float64
}

// NewEncoder creates an encoder for the quantizer.
func (q *Quantizer) NewEncoder() *Encoder {
	return &Encoder{q: q, scratch: make([]float64, q.l)}
}

// Word computes the full-cardinality SAX word of series into dst.
func (e *Encoder) Word(series []float64, dst []byte) ([]byte, error) {
	return e.q.Word(series, dst, e.scratch)
}

// QueryRepr computes the PAA of the query into dst.
func (e *Encoder) QueryRepr(query []float64, dst []float64) ([]float64, error) {
	return e.q.QueryRepr(query, dst)
}
