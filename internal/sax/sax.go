// Package sax implements the (indexable) Symbolic Aggregate approXimation:
// PAA segmentation followed by a fixed quantization whose breakpoints are
// equal-depth bins of the standard Normal distribution N(0,1). iSAX extends
// SAX words with per-segment variable cardinality, which is what the
// MESSI-style tree exploits for node splits. SAX provides a distance
// (mindist) between a query's PAA and a SAX word that lower-bounds the true
// Euclidean distance — the GEMINI requirement.
package sax

import (
	"fmt"
	"math"

	"repro/internal/paa"
	"repro/internal/stats"
)

// Quantizer holds the fixed N(0,1) breakpoint table for a given series
// length, word length and alphabet. It is immutable after construction and
// safe for concurrent use.
type Quantizer struct {
	n       int       // series length
	l       int       // word length (number of segments)
	bits    int       // bits per symbol; alphabet size is 1<<bits
	bps     []float64 // (1<<bits)-1 interior breakpoints of N(0,1)
	weights []float64 // per-segment squared-distance weight: n/l
}

// NewQuantizer builds a SAX quantizer for series of length n, l segments and
// 2^bits symbols. The paper's default is l=16, bits=8 (alphabet 256).
func NewQuantizer(n, l, bits int) (*Quantizer, error) {
	if n < 1 {
		return nil, fmt.Errorf("sax: series length must be >= 1, got %d", n)
	}
	if l < 1 || l > n {
		return nil, fmt.Errorf("sax: word length %d out of range [1,%d]", l, n)
	}
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("sax: bits %d out of range [1,8]", bits)
	}
	alpha := 1 << bits
	bps := make([]float64, alpha-1)
	for i := range bps {
		bps[i] = stats.NormalQuantile(float64(i+1) / float64(alpha))
	}
	w := make([]float64, l)
	segLen := float64(n) / float64(l)
	for i := range w {
		w[i] = segLen
	}
	return &Quantizer{n: n, l: l, bits: bits, bps: bps, weights: w}, nil
}

// Segments returns the word length l.
func (q *Quantizer) Segments() int { return q.l }

// SeriesLen returns the series length n the quantizer was built for.
func (q *Quantizer) SeriesLen() int { return q.n }

// MaxBits returns the number of bits per symbol at full cardinality.
func (q *Quantizer) MaxBits() int { return q.bits }

// Weights returns the per-segment weights w such that the squared mindist is
// sum_j w[j]*d_j². For SAX every weight is n/l (Lin et al.'s sqrt(n/l)
// factor, squared).
func (q *Quantizer) Weights() []float64 { return q.weights }

// Breakpoints returns the full-cardinality interior breakpoints for segment
// seg. SAX uses the same Normal-distribution table for every segment.
func (q *Quantizer) Breakpoints(seg int) []float64 { return q.bps }

// QueryRepr computes the query-side real-valued representation (the PAA of
// the query) into dst and returns dst[:l].
func (q *Quantizer) QueryRepr(query []float64, dst []float64) ([]float64, error) {
	if len(query) != q.n {
		return nil, fmt.Errorf("sax: query length %d, want %d", len(query), q.n)
	}
	return paa.Transform(query, q.l, dst)
}

// Word computes the full-cardinality SAX word of series into dst (length >=
// l) and returns dst[:l]. The scratch slice must have length >= l and is
// used for the intermediate PAA; pass nil to allocate.
func (q *Quantizer) Word(series []float64, dst []byte, scratch []float64) ([]byte, error) {
	if len(series) != q.n {
		return nil, fmt.Errorf("sax: series length %d, want %d", len(series), q.n)
	}
	if len(dst) < q.l {
		return nil, fmt.Errorf("sax: dst length %d < %d", len(dst), q.l)
	}
	if scratch == nil {
		scratch = make([]float64, q.l)
	}
	means, err := paa.Transform(series, q.l, scratch)
	if err != nil {
		return nil, err
	}
	for j, m := range means {
		dst[j] = byte(stats.BinIndex(q.bps, m))
	}
	return dst[:q.l], nil
}

// SymbolBounds returns the value interval [lo, hi) covered by the given
// symbol prefix of width bits in segment seg. bits == MaxBits() addresses a
// single full-cardinality symbol; fewer bits address the merged interval of
// all symbols sharing that prefix, which is how iSAX variable cardinality
// works. lo may be -Inf and hi may be +Inf at the extremes.
func (q *Quantizer) SymbolBounds(seg int, bits int, prefix byte) (lo, hi float64) {
	return prefixBounds(q.bps, q.bits, bits, prefix)
}

// prefixBounds implements the shared prefix-interval lookup over a
// full-cardinality breakpoint table; sfa reuses it via BoundsFromTable.
func prefixBounds(bps []float64, maxBits, bits int, prefix byte) (lo, hi float64) {
	shift := uint(maxBits - bits)
	loIdx := int(prefix) << shift // first full-card bin in the prefix group
	hiIdx := (int(prefix) + 1) << shift
	if loIdx == 0 {
		lo = math.Inf(-1)
	} else {
		lo = bps[loIdx-1]
	}
	if hiIdx >= len(bps)+1 {
		hi = math.Inf(1)
	} else {
		hi = bps[hiIdx-1]
	}
	return lo, hi
}

// BoundsFromTable exposes prefixBounds for other summarizations (SFA) that
// share the variable-cardinality prefix semantics over their own learned
// breakpoint tables.
func BoundsFromTable(bps []float64, maxBits, bits int, prefix byte) (lo, hi float64) {
	return prefixBounds(bps, maxBits, bits, prefix)
}

// MinDist computes the squared iSAX lower-bounding distance between the
// query PAA qr and a full-cardinality word. It is the scalar reference
// implementation (the index uses the SIMD-structured kernel); both must
// agree exactly.
func (q *Quantizer) MinDist(qr []float64, word []byte) float64 {
	var sum float64
	for j := 0; j < q.l; j++ {
		lo, hi := q.SymbolBounds(j, q.bits, word[j])
		d := breakpointDist(qr[j], lo, hi)
		sum += q.weights[j] * d * d
	}
	return sum
}

// MinDistVariable computes the squared mindist against a word whose j-th
// segment uses cards[j] bits (iSAX variable cardinality); word symbols are
// prefixes right-aligned in the low bits.
func (q *Quantizer) MinDistVariable(qr []float64, word []byte, cards []uint8) float64 {
	var sum float64
	for j := 0; j < q.l; j++ {
		lo, hi := q.SymbolBounds(j, int(cards[j]), word[j])
		d := breakpointDist(qr[j], lo, hi)
		sum += q.weights[j] * d * d
	}
	return sum
}

// breakpointDist is Eq. 2 of the paper: the distance from value v to the
// interval [lo, hi).
func breakpointDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
