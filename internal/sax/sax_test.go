package sax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
)

func TestNewQuantizerValidation(t *testing.T) {
	cases := []struct{ n, l, bits int }{
		{0, 1, 8}, {16, 0, 8}, {16, 32, 8}, {16, 4, 0}, {16, 4, 9},
	}
	for _, c := range cases {
		if _, err := NewQuantizer(c.n, c.l, c.bits); err == nil {
			t.Errorf("NewQuantizer(%d,%d,%d): expected error", c.n, c.l, c.bits)
		}
	}
	if _, err := NewQuantizer(256, 16, 8); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	q, _ := NewQuantizer(256, 16, 8)
	if q.Segments() != 16 || q.SeriesLen() != 256 || q.MaxBits() != 8 {
		t.Error("accessor mismatch")
	}
	if len(q.Breakpoints(0)) != 255 {
		t.Errorf("breakpoints: %d", len(q.Breakpoints(0)))
	}
	for _, w := range q.Weights() {
		if w != 16 { // n/l = 256/16
			t.Errorf("weight %v, want 16", w)
		}
	}
}

func TestBreakpointsSymmetricAndSorted(t *testing.T) {
	q, _ := NewQuantizer(64, 8, 8)
	bps := q.Breakpoints(0)
	for i := 1; i < len(bps); i++ {
		if bps[i] <= bps[i-1] {
			t.Fatalf("breakpoints not strictly increasing at %d", i)
		}
	}
	// Gaussian breakpoints are symmetric about zero.
	for i := 0; i < len(bps)/2; i++ {
		if math.Abs(bps[i]+bps[len(bps)-1-i]) > 1e-9 {
			t.Errorf("breakpoints not symmetric: %v vs %v", bps[i], bps[len(bps)-1-i])
		}
	}
	// Median breakpoint is 0 for even alphabet.
	if math.Abs(bps[127]) > 1e-12 {
		t.Errorf("middle breakpoint %v, want 0", bps[127])
	}
}

func TestWordKnownValues(t *testing.T) {
	// Alphabet 4 (2 bits): N(0,1) breakpoints ~ {-0.6745, 0, +0.6745}.
	q, err := NewQuantizer(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// PAA values: -2, -0.3, 0.3, 2 -> symbols 0, 1, 2, 3.
	series := []float64{-2, -2, -0.3, -0.3, 0.3, 0.3, 2, 2}
	word, err := q.Word(series, make([]byte, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 2, 3}
	for i := range want {
		if word[i] != want[i] {
			t.Errorf("symbol %d: got %d want %d (word %v)", i, word[i], want[i], word)
		}
	}
}

func TestWordValidation(t *testing.T) {
	q, _ := NewQuantizer(16, 4, 8)
	if _, err := q.Word(make([]float64, 8), make([]byte, 4), nil); err == nil {
		t.Error("expected series length error")
	}
	if _, err := q.Word(make([]float64, 16), make([]byte, 2), nil); err == nil {
		t.Error("expected dst length error")
	}
	if _, err := q.QueryRepr(make([]float64, 8), make([]float64, 4)); err == nil {
		t.Error("expected query length error")
	}
}

func TestSymbolBounds(t *testing.T) {
	q, _ := NewQuantizer(16, 4, 2) // alphabet 4, bps {-q, 0, q}
	bps := q.Breakpoints(0)
	// Full cardinality (2 bits).
	lo, hi := q.SymbolBounds(0, 2, 0)
	if !math.IsInf(lo, -1) || hi != bps[0] {
		t.Errorf("symbol 0: (%v,%v)", lo, hi)
	}
	lo, hi = q.SymbolBounds(0, 2, 3)
	if lo != bps[2] || !math.IsInf(hi, 1) {
		t.Errorf("symbol 3: (%v,%v)", lo, hi)
	}
	// 1-bit prefix 0 covers symbols {0,1}: (-inf, bps[1]=0).
	lo, hi = q.SymbolBounds(0, 1, 0)
	if !math.IsInf(lo, -1) || hi != bps[1] {
		t.Errorf("prefix 0@1bit: (%v,%v)", lo, hi)
	}
	lo, hi = q.SymbolBounds(0, 1, 1)
	if lo != bps[1] || !math.IsInf(hi, 1) {
		t.Errorf("prefix 1@1bit: (%v,%v)", lo, hi)
	}
}

func TestPrefixBoundsNest(t *testing.T) {
	// The interval of a (bits)-wide prefix must contain the intervals of
	// both its (bits+1)-wide children, for all levels.
	q, _ := NewQuantizer(64, 8, 8)
	for bits := 1; bits < 8; bits++ {
		for prefix := 0; prefix < 1<<bits; prefix++ {
			plo, phi := q.SymbolBounds(0, bits, byte(prefix))
			for child := 0; child < 2; child++ {
				clo, chi := q.SymbolBounds(0, bits+1, byte(prefix<<1|child))
				if clo < plo || chi > phi {
					t.Fatalf("child [%v,%v) escapes parent [%v,%v) at bits=%d prefix=%d",
						clo, chi, plo, phi, bits, prefix)
				}
			}
		}
	}
}

func randomZNorm(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	distance.ZNormalize(x)
	return x
}

// The GEMINI invariant: mindist(PAA(Q), word(S)) <= ed²(Q, S).
func TestLowerBoundProperty(t *testing.T) {
	q, err := NewQuantizer(96, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		qs := randomZNorm(rng, 96)
		cs := randomZNorm(rng, 96)
		qr, err := q.QueryRepr(qs, make([]float64, 16))
		if err != nil {
			return false
		}
		word, err := q.Word(cs, make([]byte, 16), nil)
		if err != nil {
			return false
		}
		lb := q.MinDist(qr, word)
		ed2 := distance.SquaredED(qs, cs)
		return lb <= ed2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Lower cardinality can only loosen (reduce) the mindist, never raise it.
func TestCardinalityMonotonicityProperty(t *testing.T) {
	q, err := NewQuantizer(64, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		qs := randomZNorm(rng, 64)
		cs := randomZNorm(rng, 64)
		qr, _ := q.QueryRepr(qs, make([]float64, 8))
		word, _ := q.Word(cs, make([]byte, 8), nil)
		prev := math.Inf(1)
		for bits := 8; bits >= 1; bits-- {
			w := make([]byte, 8)
			cards := make([]uint8, 8)
			for j := range w {
				w[j] = word[j] >> (8 - bits)
				cards[j] = uint8(bits)
			}
			d := q.MinDistVariable(qr, w, cards)
			if d > prev+1e-12 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// MinDistVariable at full cardinality equals MinDist.
func TestMinDistVariableMatchesFull(t *testing.T) {
	q, _ := NewQuantizer(64, 8, 8)
	rng := rand.New(rand.NewSource(42))
	qs := randomZNorm(rng, 64)
	cs := randomZNorm(rng, 64)
	qr, _ := q.QueryRepr(qs, make([]float64, 8))
	word, _ := q.Word(cs, make([]byte, 8), nil)
	cards := []uint8{8, 8, 8, 8, 8, 8, 8, 8}
	if d1, d2 := q.MinDist(qr, word), q.MinDistVariable(qr, word, cards); d1 != d2 {
		t.Errorf("full-cardinality mismatch: %v vs %v", d1, d2)
	}
}

func TestMinDistSelfIsZeroish(t *testing.T) {
	// mindist of a series against its own word must be 0: its PAA values lie
	// inside their own bins.
	q, _ := NewQuantizer(128, 16, 8)
	rng := rand.New(rand.NewSource(7))
	s := randomZNorm(rng, 128)
	qr, _ := q.QueryRepr(s, make([]float64, 16))
	word, _ := q.Word(s, make([]byte, 16), nil)
	if d := q.MinDist(qr, word); d != 0 {
		t.Errorf("self mindist %v, want 0", d)
	}
}

// The tightness of the bound must not decrease with alphabet size.
func TestTightnessImprovesWithAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 128
	var prevMean float64 = -1
	for _, bits := range []int{2, 4, 8} {
		q, err := NewQuantizer(n, 16, bits)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const trials = 50
		for i := 0; i < trials; i++ {
			a := randomZNorm(rng, n)
			b := randomZNorm(rng, n)
			qr, _ := q.QueryRepr(a, make([]float64, 16))
			w, _ := q.Word(b, make([]byte, 16), nil)
			sum += q.MinDist(qr, w)
		}
		mean := sum / trials
		if mean < prevMean-1e-9 {
			t.Errorf("bits=%d: mean LBD %v decreased from %v", bits, mean, prevMean)
		}
		prevMean = mean
	}
}

func TestBoundsFromTable(t *testing.T) {
	bps := []float64{1, 2, 3}
	lo, hi := BoundsFromTable(bps, 2, 2, 0)
	if !math.IsInf(lo, -1) || hi != 1 {
		t.Errorf("(%v,%v)", lo, hi)
	}
	lo, hi = BoundsFromTable(bps, 2, 1, 1)
	if lo != 2 || !math.IsInf(hi, 1) {
		t.Errorf("(%v,%v)", lo, hi)
	}
}

func BenchmarkWord256(b *testing.B) {
	q, _ := NewQuantizer(256, 16, 8)
	rng := rand.New(rand.NewSource(1))
	s := randomZNorm(rng, 256)
	dst := make([]byte, 16)
	scratch := make([]float64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Word(s, dst, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinDist(b *testing.B) {
	q, _ := NewQuantizer(256, 16, 8)
	rng := rand.New(rand.NewSource(2))
	qs := randomZNorm(rng, 256)
	cs := randomZNorm(rng, 256)
	qr, _ := q.QueryRepr(qs, make([]float64, 16))
	w, _ := q.Word(cs, make([]byte, 16), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.MinDist(qr, w)
	}
}
