// Package scan implements the UCR Suite-P baseline (paper Section V):
// a parallel sequential scan where each worker owns a contiguous segment of
// the in-memory series array, computes SIMD-structured early-abandoning
// Euclidean distances against a shared best-so-far bound, and synchronizes
// only through that bound and the final merge.
package scan

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/distance"
	"repro/internal/index"
)

// Scanner performs exact k-NN queries by parallel sequential scan.
type Scanner struct {
	data    *distance.Matrix
	workers int
}

// New creates a scanner over z-normalized data. workers <= 0 selects
// GOMAXPROCS.
func New(data *distance.Matrix, workers int) (*Scanner, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("scan: empty data")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > data.Len() {
		workers = data.Len()
	}
	return &Scanner{data: data, workers: workers}, nil
}

// Search returns the exact k nearest neighbors of query under squared
// z-normalized Euclidean distance, ascending. The query is z-normalized
// internally.
func (s *Scanner) Search(query []float64, k int) ([]index.Result, error) {
	if len(query) != s.data.Stride {
		return nil, fmt.Errorf("scan: query length %d, want %d", len(query), s.data.Stride)
	}
	if k < 1 {
		return nil, fmt.Errorf("scan: k must be >= 1, got %d", k)
	}
	q := distance.ZNormalized(query)
	n := s.data.Len()

	// Shared best-so-far set: workers read the bound lock-free and offer
	// improvements under a mutex, exactly like the index's refinement stage.
	kn := index.NewKNNCollector(k)
	chunk := (n + s.workers - 1) / s.workers
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				bound := kn.Bound()
				d := distance.SquaredEDEarlyAbandon(s.data.Row(i), q, bound)
				if d < bound {
					kn.Offer(index.ID(i), d)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return kn.Results(), nil
}

// Search1 returns the exact nearest neighbor.
func (s *Scanner) Search1(query []float64) (index.Result, error) {
	res, err := s.Search(query, 1)
	if err != nil {
		return index.Result{}, err
	}
	return res[0], nil
}
