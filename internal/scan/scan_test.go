package scan

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/distance"
)

func testMatrix(rng *rand.Rand, count, n int) *distance.Matrix {
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	m.ZNormalizeAll()
	return m
}

func bruteDists(m *distance.Matrix, query []float64) []float64 {
	q := distance.ZNormalized(query)
	out := make([]float64, m.Len())
	for i := range out {
		out[i] = distance.SquaredED(m.Row(i), q)
	}
	sort.Float64s(out)
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4); err == nil {
		t.Error("expected error on nil data")
	}
	if _, err := New(distance.NewMatrix(0, 8), 4); err == nil {
		t.Error("expected error on empty data")
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := testMatrix(rng, 20, 32)
	s, err := New(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(make([]float64, 16), 1); err == nil {
		t.Error("expected query length error")
	}
	if _, err := s.Search(make([]float64, 32), 0); err == nil {
		t.Error("expected k error")
	}
}

func TestExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := testMatrix(rng, 500, 64)
	for _, workers := range []int{1, 4, 16, 1000} {
		s, err := New(m, workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 5, 100} {
			query := make([]float64, 64)
			for j := range query {
				query[j] = rng.NormFloat64()
			}
			res, err := s.Search(query, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteDists(m, query)[:k]
			if len(res) != k {
				t.Fatalf("workers=%d k=%d: %d results", workers, k, len(res))
			}
			for i := range want {
				if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
					t.Fatalf("workers=%d k=%d rank %d: got %v want %v", workers, k, i, res[i].Dist, want[i])
				}
			}
		}
	}
}

func TestSearch1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testMatrix(rng, 100, 32)
	s, _ := New(m, 4)
	r, err := s.Search1(m.Row(42))
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != 42 || r.Dist > 1e-9 {
		t.Errorf("self query: %+v", r)
	}
}

// Property: the parallel scan agrees with brute force for random shapes.
func TestExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 20 + rng.Intn(200)
		n := 8 + rng.Intn(120)
		m := testMatrix(rng, count, n)
		s, err := New(m, 1+rng.Intn(8))
		if err != nil {
			return false
		}
		query := make([]float64, n)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(10)
		res, err := s.Search(query, k)
		if err != nil {
			return false
		}
		want := bruteDists(m, query)
		if k > count {
			k = count
		}
		for i := 0; i < k; i++ {
			if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScan20k(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := testMatrix(rng, 20000, 128)
	s, _ := New(m, 0)
	query := make([]float64, 128)
	for j := range query {
		query[j] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search1(query); err != nil {
			b.Fatal(err)
		}
	}
}
