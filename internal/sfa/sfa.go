// Package sfa implements the Symbolic Fourier Approximation and its learned
// quantization, Multiple Coefficient Binning (MCB) — the paper's core
// summarization (Section IV-E):
//
//  1. Transformation: series are mapped to the frequency domain with the DFT
//     (coefficients scaled by 1/sqrt(n) so Parseval yields the Euclidean
//     lower bound of Eq. 1 directly).
//  2. Feature selection: of the first MaxCoeffs complex coefficients, the l
//     real/imaginary values with the highest variance are retained (the
//     paper's novel selection; the classical first-l strategy is kept for
//     the ablation study).
//  3. Learned quantization: each retained value gets its own alphabet-sized
//     bin table learned from a sample of the data, with equi-width
//     (the paper's choice) or equi-depth (original SFA) binning.
//
// The resulting words admit a lower-bounding distance to the true Euclidean
// distance (Eq. 2), which the SOFA index uses for GEMINI-style pruning.
package sfa

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/distance"
	"repro/internal/fft"
	"repro/internal/sax"
	"repro/internal/stats"
)

// Binning selects the MCB bin-learning strategy.
type Binning int

const (
	// EquiWidth bins divide the observed value range evenly — the paper's
	// default, which maximizes interval width and thus the lower bound.
	EquiWidth Binning = iota
	// EquiDepth bins hold equal sample mass — the original SFA strategy,
	// kept for the Section V-E ablation.
	EquiDepth
)

func (b Binning) String() string {
	switch b {
	case EquiWidth:
		return "EW"
	case EquiDepth:
		return "ED"
	default:
		return fmt.Sprintf("Binning(%d)", int(b))
	}
}

// Selection selects the Fourier-value feature-selection strategy.
type Selection int

const (
	// HighestVariance keeps the l values with the largest variance over the
	// sample — the paper's contribution (Section IV-E2).
	HighestVariance Selection = iota
	// FirstCoefficients keeps the first l values (low-pass), the classical
	// SFA strategy, kept for the ablation.
	FirstCoefficients
)

func (s Selection) String() string {
	switch s {
	case HighestVariance:
		return "VAR"
	case FirstCoefficients:
		return "FIRST"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Options configures MCB learning. The zero value is completed by
// (*Options).withDefaults to the paper's defaults.
type Options struct {
	WordLength int       // l: number of real/imag values kept (default 16)
	Bits       int       // bits per symbol; alphabet 2^Bits (default 8)
	Binning    Binning   // default EquiWidth
	Selection  Selection // default HighestVariance
	SampleRate float64   // MCB sampling ratio r (default 0.01)
	MaxCoeffs  int       // candidate pool: first MaxCoeffs complex coefficients (default 16)
	Seed       int64     // sampling seed (default 1)
	// MinSamples floors the MCB sample size (default 2048, capped at the
	// dataset size). The paper's 1% rate targets collections of 10⁶–10⁸
	// series; on laptop-scale datasets a raw 1% would leave too few samples
	// to place 256 bins, so the floor keeps the learned quantization stable
	// without changing behaviour at paper scale. Set to -1 to disable.
	MinSamples int
}

func (o Options) withDefaults(n int) Options {
	if o.WordLength == 0 {
		o.WordLength = 16
	}
	if o.Bits == 0 {
		o.Bits = 8
	}
	if o.SampleRate == 0 {
		o.SampleRate = 0.01
	}
	if o.MaxCoeffs == 0 {
		o.MaxCoeffs = 16
	}
	if max := n / 2; o.MaxCoeffs > max {
		// Never exceed the available non-DC spectrum.
		o.MaxCoeffs = max
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinSamples == 0 {
		o.MinSamples = 2048
	}
	if o.MinSamples < 0 {
		o.MinSamples = 1
	}
	return o
}

// Quantizer is a learned SFA summarization: the selected Fourier-value
// indices and their per-value breakpoint tables. It is immutable after
// Learn and safe for concurrent use; per-goroutine FFT state lives in
// Transformer.
type Quantizer struct {
	n       int     // series length
	l       int     // word length (number of values)
	bits    int     // bits per symbol
	opts    Options // effective options (after defaults)
	indices []int   // selected value indices into the interleaved spectrum,
	// ordered by decreasing variance (early-abandon priority)
	variances []float64   // variance of each selected value, same order
	bps       [][]float64 // l tables of (1<<bits)-1 breakpoints
	weights   []float64   // Parseval weight per value: 2, or 1 for Nyquist
	nCoeffs   int         // complex coefficients a Transformer must compute
}

// Learn runs MCB (Algorithm 1) over the dataset: sample, transform, select
// values, learn bins. The matrix rows are assumed z-normalized (the paper
// indexes z-normalized series; the DC coefficient is then 0 and is excluded
// from the candidate pool).
func Learn(data *distance.Matrix, opts Options) (*Quantizer, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("sfa: cannot learn from empty dataset")
	}
	n := data.Stride
	o := opts.withDefaults(n)
	if o.Bits < 1 || o.Bits > 8 {
		return nil, fmt.Errorf("sfa: bits %d out of range [1,8]", o.Bits)
	}
	// Candidate values: real and imaginary parts of complex coefficients
	// 1..MaxCoeffs (DC excluded).
	candidates := candidateIndices(n, o.MaxCoeffs)
	if len(candidates) < o.WordLength {
		return nil, fmt.Errorf("sfa: word length %d exceeds %d candidate values (series length %d, MaxCoeffs %d)",
			o.WordLength, len(candidates), n, o.MaxCoeffs)
	}

	sample := sampleRows(data, o.SampleRate, o.MinSamples, o.Seed)
	plan, err := fft.NewPlan(n)
	if err != nil {
		return nil, err
	}
	nCoeffs := o.MaxCoeffs + 1 // coefficients 0..MaxCoeffs
	spec := make([]float64, 2*nCoeffs)
	// values[c][s]: value of candidate c for sample s.
	values := make([][]float64, len(candidates))
	for i := range values {
		values[i] = make([]float64, len(sample))
	}
	for s, row := range sample {
		if _, err := plan.ForwardReal(data.Row(row), nCoeffs, spec); err != nil {
			return nil, err
		}
		for c, idx := range candidates {
			values[c][s] = spec[idx]
		}
	}

	// Feature selection (Section IV-E2).
	vars := make([]float64, len(candidates))
	for c := range candidates {
		vars[c] = stats.Variance(values[c])
	}
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	switch o.Selection {
	case HighestVariance:
		sort.SliceStable(order, func(a, b int) bool { return vars[order[a]] > vars[order[b]] })
	case FirstCoefficients:
		// candidates are already in ascending spectral order
	default:
		return nil, fmt.Errorf("sfa: unknown selection strategy %v", o.Selection)
	}
	chosen := order[:o.WordLength]

	q := &Quantizer{
		n:         n,
		l:         o.WordLength,
		bits:      o.Bits,
		opts:      o,
		indices:   make([]int, o.WordLength),
		variances: make([]float64, o.WordLength),
		bps:       make([][]float64, o.WordLength),
		weights:   make([]float64, o.WordLength),
		nCoeffs:   nCoeffs,
	}
	alpha := 1 << o.Bits
	for j, c := range chosen {
		idx := candidates[c]
		q.indices[j] = idx
		q.variances[j] = vars[c]
		q.weights[j] = parsevalWeight(n, idx)
		var bps []float64
		switch o.Binning {
		case EquiWidth:
			bps, err = stats.EquiWidthBreakpoints(values[c], alpha)
		case EquiDepth:
			bps, err = stats.EquiDepthBreakpoints(values[c], alpha)
		default:
			err = fmt.Errorf("sfa: unknown binning strategy %v", o.Binning)
		}
		if err != nil {
			return nil, err
		}
		q.bps[j] = bps
	}
	return q, nil
}

// candidateIndices returns the interleaved-spectrum value indices eligible
// for selection: real and imaginary parts of coefficients 1..maxCoeffs,
// excluding the imaginary Nyquist part (identically zero for even n).
func candidateIndices(n, maxCoeffs int) []int {
	var out []int
	for k := 1; k <= maxCoeffs; k++ {
		out = append(out, 2*k) // real part
		if !(n%2 == 0 && k == n/2) {
			out = append(out, 2*k+1) // imag part (skip Nyquist imag)
		}
	}
	return out
}

// parsevalWeight returns the multiplicity of the value at interleaved index
// idx in Parseval's identity: 2 for all coefficients except DC and (even n)
// Nyquist, which appear once.
func parsevalWeight(n, idx int) float64 {
	k := idx / 2
	if k == 0 || (n%2 == 0 && k == n/2) {
		return 1
	}
	return 2
}

// sampleRows picks max(minSamples, rate*N) distinct row indices uniformly
// without replacement, deterministically for a given seed.
func sampleRows(data *distance.Matrix, rate float64, minSamples int, seed int64) []int {
	n := data.Len()
	k := int(math.Ceil(rate * float64(n)))
	if k < minSamples {
		k = minSamples
	}
	if k < 1 {
		k = 1
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// Segments returns the word length l.
func (q *Quantizer) Segments() int { return q.l }

// SeriesLen returns the series length n.
func (q *Quantizer) SeriesLen() int { return q.n }

// MaxBits returns the bits per symbol at full cardinality.
func (q *Quantizer) MaxBits() int { return q.bits }

// Weights returns the per-value Parseval weights.
func (q *Quantizer) Weights() []float64 { return q.weights }

// Breakpoints returns the learned full-cardinality breakpoint table for the
// j-th word position.
func (q *Quantizer) Breakpoints(j int) []float64 { return q.bps[j] }

// Indices returns the selected interleaved-spectrum value indices in
// priority (descending variance) order.
func (q *Quantizer) Indices() []int { return q.indices }

// Variances returns the sample variance of each selected value.
func (q *Quantizer) Variances() []float64 { return q.variances }

// MeanCoefficientIndex returns the mean complex-coefficient index of the
// selected values — the x-axis of the paper's Fig. 13.
func (q *Quantizer) MeanCoefficientIndex() float64 {
	if len(q.indices) == 0 {
		return 0
	}
	var s float64
	for _, idx := range q.indices {
		s += float64(idx / 2)
	}
	return s / float64(len(q.indices))
}

// SymbolBounds returns the value interval covered by a symbol prefix of
// width bits at word position j (variable-cardinality semantics shared with
// iSAX).
func (q *Quantizer) SymbolBounds(j int, bits int, prefix byte) (lo, hi float64) {
	return sax.BoundsFromTable(q.bps[j], q.bits, bits, prefix)
}

// MinDist computes the squared SFA lower-bounding distance (Eq. 2 summed
// with Parseval weights) between the query's selected DFT values qr and a
// full-cardinality word. Scalar reference implementation.
func (q *Quantizer) MinDist(qr []float64, word []byte) float64 {
	var sum float64
	for j := 0; j < q.l; j++ {
		lo, hi := q.SymbolBounds(j, q.bits, word[j])
		d := breakpointDist(qr[j], lo, hi)
		sum += q.weights[j] * d * d
	}
	return sum
}

// MinDistVariable computes the squared mindist against a variable-
// cardinality word (cards[j] bits per position).
func (q *Quantizer) MinDistVariable(qr []float64, word []byte, cards []uint8) float64 {
	var sum float64
	for j := 0; j < q.l; j++ {
		lo, hi := q.SymbolBounds(j, int(cards[j]), word[j])
		d := breakpointDist(qr[j], lo, hi)
		sum += q.weights[j] * d * d
	}
	return sum
}

func breakpointDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// Transformer owns the per-goroutine FFT plan and scratch buffers needed to
// transform series under a learned Quantizer. Not safe for concurrent use;
// create one per worker.
type Transformer struct {
	q    *Quantizer
	plan *fft.Plan
	spec []float64
}

// NewTransformer creates a transformer for the quantizer.
func (q *Quantizer) NewTransformer() *Transformer {
	return &Transformer{
		q:    q,
		plan: fft.MustPlan(q.n),
		spec: make([]float64, 2*q.nCoeffs),
	}
}

// QueryRepr computes the query-side representation — the selected scaled DFT
// values in priority order — into dst (length >= l), returning dst[:l].
func (t *Transformer) QueryRepr(query []float64, dst []float64) ([]float64, error) {
	if len(query) != t.q.n {
		return nil, fmt.Errorf("sfa: query length %d, want %d", len(query), t.q.n)
	}
	if len(dst) < t.q.l {
		return nil, fmt.Errorf("sfa: dst length %d < %d", len(dst), t.q.l)
	}
	if _, err := t.plan.ForwardReal(query, t.q.nCoeffs, t.spec); err != nil {
		return nil, err
	}
	for j, idx := range t.q.indices {
		dst[j] = t.spec[idx]
	}
	return dst[:t.q.l], nil
}

// Word computes the full-cardinality SFA word of series (Algorithm 2) into
// dst (length >= l), returning dst[:l].
func (t *Transformer) Word(series []float64, dst []byte) ([]byte, error) {
	if len(series) != t.q.n {
		return nil, fmt.Errorf("sfa: series length %d, want %d", len(series), t.q.n)
	}
	if len(dst) < t.q.l {
		return nil, fmt.Errorf("sfa: dst length %d < %d", len(dst), t.q.l)
	}
	if _, err := t.plan.ForwardReal(series, t.q.nCoeffs, t.spec); err != nil {
		return nil, err
	}
	for j, idx := range t.q.indices {
		dst[j] = byte(stats.BinIndex(t.q.bps[j], t.spec[idx]))
	}
	return dst[:t.q.l], nil
}

// State is the serializable form of a learned Quantizer, used by index
// persistence. All slices are deep copies.
type State struct {
	N, L, Bits, NCoeffs int
	Indices             []int
	Variances           []float64
	Weights             []float64
	Breakpoints         [][]float64
}

// State exports the quantizer's learned tables.
func (q *Quantizer) State() State {
	st := State{
		N: q.n, L: q.l, Bits: q.bits, NCoeffs: q.nCoeffs,
		Indices:     append([]int(nil), q.indices...),
		Variances:   append([]float64(nil), q.variances...),
		Weights:     append([]float64(nil), q.weights...),
		Breakpoints: make([][]float64, len(q.bps)),
	}
	for j, bps := range q.bps {
		st.Breakpoints[j] = append([]float64(nil), bps...)
	}
	return st
}

// FromState reconstructs a Quantizer from a serialized State, validating
// structural consistency.
func FromState(st State) (*Quantizer, error) {
	if st.N < 1 || st.L < 1 || st.Bits < 1 || st.Bits > 8 {
		return nil, fmt.Errorf("sfa: invalid state dimensions n=%d l=%d bits=%d", st.N, st.L, st.Bits)
	}
	if len(st.Indices) != st.L || len(st.Weights) != st.L || len(st.Breakpoints) != st.L {
		return nil, fmt.Errorf("sfa: state slice lengths do not match word length %d", st.L)
	}
	if st.NCoeffs < 1 || st.NCoeffs > st.N/2+1 {
		return nil, fmt.Errorf("sfa: invalid coefficient count %d for series length %d", st.NCoeffs, st.N)
	}
	wantBPs := (1 << st.Bits) - 1
	for j, bps := range st.Breakpoints {
		if len(bps) != wantBPs {
			return nil, fmt.Errorf("sfa: position %d has %d breakpoints, want %d", j, len(bps), wantBPs)
		}
		if !sort.Float64sAreSorted(bps) {
			return nil, fmt.Errorf("sfa: position %d breakpoints not sorted", j)
		}
	}
	for _, idx := range st.Indices {
		if idx < 0 || idx >= 2*st.NCoeffs {
			return nil, fmt.Errorf("sfa: value index %d out of range [0,%d)", idx, 2*st.NCoeffs)
		}
	}
	q := &Quantizer{
		n: st.N, l: st.L, bits: st.Bits, nCoeffs: st.NCoeffs,
		indices:   append([]int(nil), st.Indices...),
		variances: append([]float64(nil), st.Variances...),
		weights:   append([]float64(nil), st.Weights...),
		bps:       make([][]float64, st.L),
	}
	for j, bps := range st.Breakpoints {
		q.bps[j] = append([]float64(nil), bps...)
	}
	return q, nil
}
