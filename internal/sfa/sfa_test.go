package sfa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
)

// randomMatrix builds a z-normalized matrix of random-walk series, which
// have energy spread over low frequencies.
func randomMatrix(rng *rand.Rand, n, count int) *distance.Matrix {
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		v := 0.0
		for j := range row {
			v += rng.NormFloat64()
			row[j] = v
		}
	}
	m.ZNormalizeAll()
	return m
}

// highFreqMatrix builds series dominated by high-frequency oscillation, the
// regime where variance selection matters.
func highFreqMatrix(rng *rand.Rand, n, count int) *distance.Matrix {
	m := distance.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		f := float64(n)/2 - 2 - rng.Float64()*3 // near-Nyquist frequency
		phase := rng.Float64() * 2 * math.Pi
		amp := 1 + rng.Float64()
		for j := range row {
			row[j] = amp*math.Sin(2*math.Pi*f*float64(j)/float64(n)+phase) + 0.1*rng.NormFloat64()
		}
	}
	m.ZNormalizeAll()
	return m
}

func TestLearnValidation(t *testing.T) {
	if _, err := Learn(nil, Options{}); err == nil {
		t.Error("expected error on nil data")
	}
	if _, err := Learn(distance.NewMatrix(0, 16), Options{}); err == nil {
		t.Error("expected error on empty data")
	}
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 8, 10)
	// 8-point series: only coefficients 1..4 available = 7 values (Nyquist
	// imag excluded); word length 16 must fail.
	if _, err := Learn(m, Options{WordLength: 16}); err == nil {
		t.Error("expected error when word length exceeds candidates")
	}
	if _, err := Learn(m, Options{WordLength: 4, Bits: 12}); err == nil {
		t.Error("expected error on bits out of range")
	}
}

func TestLearnDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 256, 300)
	q, err := Learn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Segments() != 16 || q.MaxBits() != 8 || q.SeriesLen() != 256 {
		t.Errorf("defaults wrong: l=%d bits=%d n=%d", q.Segments(), q.MaxBits(), q.SeriesLen())
	}
	if len(q.Indices()) != 16 || len(q.Weights()) != 16 {
		t.Error("selection size wrong")
	}
	for j := 0; j < 16; j++ {
		if len(q.Breakpoints(j)) != 255 {
			t.Errorf("position %d: %d breakpoints", j, len(q.Breakpoints(j)))
		}
	}
	// DC (indices 0 and 1) must never be selected.
	for _, idx := range q.Indices() {
		if idx < 2 {
			t.Errorf("DC value %d selected", idx)
		}
	}
	// Priority order: descending variance.
	vars := q.Variances()
	for i := 1; i < len(vars); i++ {
		if vars[i] > vars[i-1]+1e-12 {
			t.Errorf("variances not descending at %d: %v > %v", i, vars[i], vars[i-1])
		}
	}
}

func TestCandidateIndices(t *testing.T) {
	// n=8, maxCoeffs=4: coefficients 1,2,3 give re+im; coefficient 4 is
	// Nyquist (n even) -> real only. 7 values.
	got := candidateIndices(8, 4)
	want := []int{2, 3, 4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Odd n: no Nyquist exclusion.
	got = candidateIndices(9, 4)
	if len(got) != 8 {
		t.Fatalf("odd n: got %v", got)
	}
}

func TestParsevalWeight(t *testing.T) {
	if parsevalWeight(8, 0) != 1 || parsevalWeight(8, 1) != 1 { // DC
		t.Error("DC weight should be 1")
	}
	if parsevalWeight(8, 8) != 1 { // Nyquist real of n=8 (k=4)
		t.Error("Nyquist weight should be 1")
	}
	if parsevalWeight(8, 4) != 2 { // k=2
		t.Error("interior weight should be 2")
	}
	if parsevalWeight(9, 8) != 2 { // odd n has no Nyquist
		t.Error("odd-n weight should be 2")
	}
}

func TestVarianceSelectionPrefersHighFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	m := highFreqMatrix(rng, n, 200)
	qVar, err := Learn(m, Options{WordLength: 8, MaxCoeffs: n / 2, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	qFirst, err := Learn(m, Options{WordLength: 8, MaxCoeffs: n / 2, SampleRate: 1, Selection: FirstCoefficients})
	if err != nil {
		t.Fatal(err)
	}
	if qVar.MeanCoefficientIndex() <= qFirst.MeanCoefficientIndex() {
		t.Errorf("variance selection should pick higher coefficients on high-frequency data: VAR=%v FIRST=%v",
			qVar.MeanCoefficientIndex(), qFirst.MeanCoefficientIndex())
	}
	// The dominant frequency is near n/2-3; variance selection should land
	// in that neighbourhood.
	if qVar.MeanCoefficientIndex() < float64(n)/4 {
		t.Errorf("variance selection mean index %v suspiciously low", qVar.MeanCoefficientIndex())
	}
}

func TestFirstCoefficientsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 64, 100)
	q, err := Learn(m, Options{WordLength: 6, Selection: FirstCoefficients, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4, 5, 6, 7} // re1, im1, re2, im2, re3, im3
	for i, idx := range q.Indices() {
		if idx != want[i] {
			t.Fatalf("got indices %v, want %v", q.Indices(), want)
		}
	}
}

func TestWordSymbolsWithinAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 96, 200)
	for _, bits := range []int{2, 4, 8} {
		q, err := Learn(m, Options{WordLength: 8, Bits: bits, SampleRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		tr := q.NewTransformer()
		word := make([]byte, 8)
		for i := 0; i < m.Len(); i++ {
			w, err := tr.Word(m.Row(i), word)
			if err != nil {
				t.Fatal(err)
			}
			for _, sym := range w {
				if int(sym) >= 1<<bits {
					t.Fatalf("bits=%d: symbol %d out of alphabet", bits, sym)
				}
			}
		}
	}
}

func TestTransformerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(rng, 64, 50)
	q, err := Learn(m, Options{WordLength: 8, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := q.NewTransformer()
	if _, err := tr.Word(make([]float64, 32), make([]byte, 8)); err == nil {
		t.Error("expected series length error")
	}
	if _, err := tr.Word(make([]float64, 64), make([]byte, 4)); err == nil {
		t.Error("expected dst length error")
	}
	if _, err := tr.QueryRepr(make([]float64, 32), make([]float64, 8)); err == nil {
		t.Error("expected query length error")
	}
	if _, err := tr.QueryRepr(make([]float64, 64), make([]float64, 4)); err == nil {
		t.Error("expected query dst error")
	}
}

// The GEMINI invariant for SFA: mindist(DFT(Q), word(S)) <= ed²(Q, S), for
// both binning strategies, both selection strategies, various alphabet
// sizes, and even series NOT drawn from the training distribution.
func TestLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 96
	train := randomMatrix(rng, n, 300)
	configs := []Options{
		{WordLength: 16, Binning: EquiWidth, Selection: HighestVariance, SampleRate: 0.2},
		{WordLength: 16, Binning: EquiDepth, Selection: HighestVariance, SampleRate: 0.2},
		{WordLength: 16, Binning: EquiWidth, Selection: FirstCoefficients, SampleRate: 0.2},
		{WordLength: 8, Bits: 4, Binning: EquiDepth, Selection: FirstCoefficients, SampleRate: 0.2},
	}
	for ci, opt := range configs {
		q, err := Learn(train, opt)
		if err != nil {
			t.Fatal(err)
		}
		tr := q.NewTransformer()
		l := q.Segments()
		f := func(seed int64, outOfDist bool) bool {
			r := rand.New(rand.NewSource(seed))
			var qs, cs []float64
			if outOfDist {
				// White noise + spike: far from the random-walk training set.
				qs = make([]float64, n)
				cs = make([]float64, n)
				for i := range qs {
					qs[i] = r.NormFloat64() * 5
					cs[i] = r.NormFloat64() * 5
				}
				cs[r.Intn(n)] += 50
				distance.ZNormalize(qs)
				distance.ZNormalize(cs)
			} else {
				a := randomMatrix(r, n, 2)
				qs, cs = a.Row(0), a.Row(1)
			}
			qr, err := tr.QueryRepr(qs, make([]float64, l))
			if err != nil {
				return false
			}
			word, err := tr.Word(cs, make([]byte, l))
			if err != nil {
				return false
			}
			lb := q.MinDist(qr, word)
			ed2 := distance.SquaredED(qs, cs)
			return lb <= ed2+1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("config %d (%v/%v): %v", ci, opt.Binning, opt.Selection, err)
		}
	}
}

// Lower cardinality loosens the SFA mindist monotonically, which the tree
// index relies on for node-level pruning.
func TestCardinalityMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 64
	train := randomMatrix(rng, n, 200)
	q, err := Learn(train, Options{WordLength: 8, SampleRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tr := q.NewTransformer()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pair := randomMatrix(r, n, 2)
		qr, _ := tr.QueryRepr(pair.Row(0), make([]float64, 8))
		word, _ := tr.Word(pair.Row(1), make([]byte, 8))
		prev := math.Inf(1)
		for bits := 8; bits >= 1; bits-- {
			w := make([]byte, 8)
			cards := make([]uint8, 8)
			for j := range w {
				w[j] = word[j] >> (8 - bits)
				cards[j] = uint8(bits)
			}
			d := q.MinDistVariable(qr, w, cards)
			if d > prev+1e-12 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMinDistSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 128
	m := randomMatrix(rng, n, 100)
	q, err := Learn(m, Options{SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := q.NewTransformer()
	for i := 0; i < 20; i++ {
		s := m.Row(i)
		qr, _ := tr.QueryRepr(s, make([]float64, 16))
		word, _ := tr.Word(s, make([]byte, 16))
		if d := q.MinDist(qr, word); d != 0 {
			t.Errorf("series %d: self mindist %v, want 0", i, d)
		}
	}
}

// TLB comparison: on high-frequency data, SFA with variance selection must
// produce a tighter average bound than first-coefficient selection. This is
// the paper's central claim (Section IV-E2, validated in Section V-E).
func TestVarianceSelectionTightensBoundOnHighFreqData(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 64
	train := highFreqMatrix(rng, n, 400)
	queries := highFreqMatrix(rng, n, 30)
	var tlb [2]float64
	for si, sel := range []Selection{HighestVariance, FirstCoefficients} {
		q, err := Learn(train, Options{WordLength: 8, MaxCoeffs: n / 2, Selection: sel, SampleRate: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr := q.NewTransformer()
		var sum float64
		var count int
		for qi := 0; qi < queries.Len(); qi++ {
			qr, _ := tr.QueryRepr(queries.Row(qi), make([]float64, 8))
			for ci := 0; ci < 50; ci++ {
				word, _ := tr.Word(train.Row(ci), make([]byte, 8))
				lb := math.Sqrt(q.MinDist(qr, word))
				ed := math.Sqrt(distance.SquaredED(queries.Row(qi), train.Row(ci)))
				if ed > 0 {
					sum += lb / ed
					count++
				}
			}
		}
		tlb[si] = sum / float64(count)
	}
	if tlb[0] <= tlb[1] {
		t.Errorf("TLB: variance selection %v should beat first-coefficients %v on high-frequency data", tlb[0], tlb[1])
	}
}

func TestMeanCoefficientIndex(t *testing.T) {
	q := &Quantizer{indices: []int{16, 17, 18, 19}} // coeffs 8,8,9,9
	if got := q.MeanCoefficientIndex(); got != 8.5 {
		t.Errorf("got %v, want 8.5", got)
	}
	empty := &Quantizer{}
	if empty.MeanCoefficientIndex() != 0 {
		t.Error("empty quantizer should report 0")
	}
}

func TestSampleRows(t *testing.T) {
	m := distance.NewMatrix(1000, 4)
	rows := sampleRows(m, 0.01, 1, 1)
	if len(rows) != 10 {
		t.Errorf("1%% of 1000: got %d rows", len(rows))
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if r < 0 || r >= 1000 || seen[r] {
			t.Fatalf("bad or duplicate row %d", r)
		}
		seen[r] = true
	}
	// Rate >= 1 uses everything.
	if got := sampleRows(m, 2, 1, 1); len(got) != 1000 {
		t.Errorf("full sample: got %d", len(got))
	}
	// Tiny rate still yields at least one row.
	if got := sampleRows(m, 1e-9, 1, 1); len(got) != 1 {
		t.Errorf("minimum sample: got %d", len(got))
	}
	// Determinism.
	a := sampleRows(m, 0.05, 1, 7)
	b := sampleRows(m, 0.05, 1, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic for fixed seed")
		}
	}
}

func TestBinningStrings(t *testing.T) {
	if EquiWidth.String() != "EW" || EquiDepth.String() != "ED" {
		t.Error("Binning strings")
	}
	if HighestVariance.String() != "VAR" || FirstCoefficients.String() != "FIRST" {
		t.Error("Selection strings")
	}
	if Binning(99).String() == "" || Selection(99).String() == "" {
		t.Error("unknown values should still print")
	}
}

func BenchmarkLearn(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := randomMatrix(rng, 256, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(m, Options{SampleRate: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWord(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m := randomMatrix(rng, 256, 100)
	q, err := Learn(m, Options{SampleRate: 1})
	if err != nil {
		b.Fatal(err)
	}
	tr := q.NewTransformer()
	word := make([]byte, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Word(m.Row(i%100), word); err != nil {
			b.Fatal(err)
		}
	}
}
