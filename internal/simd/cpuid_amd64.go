//go:build amd64 && !noasm

package simd

// Hand-written CPUID feature detection (stdlib-only; internal/cpu is not
// importable and x/sys would be a new dependency). The assembly kernels
// need AVX2 and FMA3, and the OS must have enabled YMM state saving
// (OSXSAVE set and XCR0 reporting XMM+YMM), or executing VEX-256
// instructions faults.

// cpuid executes CPUID with EAX=leaf, ECX=sub (cpuid_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0; only valid once CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// detectAVX512 reports AVX512F support with the OS having enabled the
// opmask and ZMM state components (XCR0 bits 5..7 alongside XMM+YMM).
// The block kernels use only foundation instructions (ZMM arithmetic,
// qword gathers, K-masked loads/stores, KMOVW), so F alone suffices —
// no DQ/BW/VL requirement.
func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	xlo, _ := xgetbv()
	if xlo&0xe6 != 0xe6 { // XMM, YMM, opmask, ZMM-hi256, hi16-ZMM state
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	return b7&avx512f != 0
}
