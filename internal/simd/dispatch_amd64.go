//go:build amd64 && !noasm

package simd

import "os"

// useAVX2 gates the assembly kernels. It is established once at init from
// CPUID (see cpuid_amd64.go); setting SOFA_NOSIMD in the environment forces
// the portable reference at runtime, which gives an honest same-binary A/B
// for the asm-vs-portable benchmarks without rebuilding with -tags noasm.
var useAVX2 = os.Getenv("SOFA_NOSIMD") == "" && detectAVX2FMA()

// Impl names the active kernel implementation: "avx2" when the hardware
// kernels are dispatched, "portable" otherwise.
func Impl() string {
	if useAVX2 {
		return "avx2"
	}
	return "portable"
}

func edBlocks16(a, b []float64, bound float64) (float64, int) {
	if useAVX2 {
		return edBlocks16AVX2(a, b, bound)
	}
	return edBlocks16Ref(a, b, bound)
}

func dotBlocks16(a, b []float64) (float64, int) {
	if useAVX2 {
		return dotBlocks16AVX2(a, b)
	}
	return dotBlocks16Ref(a, b)
}

func lbdGatherBlocks8(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) (float64, int) {
	if useAVX2 {
		return lbdGatherBlocks8AVX2(word, qr, lower, upper, weights, alphabet, bsf)
	}
	return lbdGatherBlocks8Ref(word, qr, lower, upper, weights, alphabet, bsf)
}

func lookupBlocks8(word []byte, table []float64, alphabet int, bsf float64) (float64, int) {
	if useAVX2 {
		return lookupBlocks8AVX2(word, table, alphabet, bsf)
	}
	return lookupBlocks8Ref(word, table, alphabet, bsf)
}

// Assembly kernels (kernels_amd64.s). Each processes only the full blocks
// of its input and returns the reduced sum over the processed prefix plus
// the index of the first unprocessed element; the exported wrappers in
// kernels.go finish the tail in shared Go code.

//go:noescape
func edBlocks16AVX2(a, b []float64, bound float64) (sum float64, idx int)

//go:noescape
func dotBlocks16AVX2(a, b []float64) (sum float64, idx int)

//go:noescape
func lbdGatherBlocks8AVX2(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) (sum float64, idx int)

//go:noescape
func lookupBlocks8AVX2(word []byte, table []float64, alphabet int, bsf float64) (sum float64, idx int)
