//go:build amd64 && !noasm

package simd

import "os"

// useAVX2 gates the assembly kernels. It is established once at init from
// CPUID (see cpuid_amd64.go); setting SOFA_NOSIMD in the environment forces
// the portable reference at runtime, which gives an honest same-binary A/B
// for the asm-vs-portable benchmarks without rebuilding with -tags noasm.
var useAVX2 = os.Getenv("SOFA_NOSIMD") == "" && detectAVX2FMA()

// useAVX512 gates the AVX-512 tier of the BLOCK kernels (the per-series
// kernels top out at AVX2 — their per-call overhead, not lane width, is
// the bottleneck, which is what the block kernels exist to fix). It
// requires the AVX2 tier (so SOFA_NOSIMD kills both), AVX512F and the OS
// having enabled opmask+ZMM state. SOFA_NOAVX512 pins the block kernels to
// the AVX2 path for same-binary tier A/Bs.
var useAVX512 = useAVX2 && os.Getenv("SOFA_NOAVX512") == "" && detectAVX512()

// Impl names the active kernel implementation: "avx2" when the hardware
// kernels are dispatched, "portable" otherwise.
func Impl() string {
	if useAVX2 {
		return "avx2"
	}
	return "portable"
}

// BlockImpl names the implementation serving the block kernels: "avx512",
// "avx2" or "portable". It is reported separately from Impl because the
// AVX-512 tier exists only at block granularity.
func BlockImpl() string {
	if useAVX512 {
		return "avx512"
	}
	return Impl()
}

// HasAVX512 reports whether the AVX-512 block tier is active (CI's
// skip-not-fail lane logs it explicitly).
func HasAVX512() bool { return useAVX512 }

func edBlocks16(a, b []float64, bound float64) (float64, int) {
	if useAVX2 {
		return edBlocks16AVX2(a, b, bound)
	}
	return edBlocks16Ref(a, b, bound)
}

func dotBlocks16(a, b []float64) (float64, int) {
	if useAVX2 {
		return dotBlocks16AVX2(a, b)
	}
	return dotBlocks16Ref(a, b)
}

func lbdGatherBlocks8(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) (float64, int) {
	if useAVX2 {
		return lbdGatherBlocks8AVX2(word, qr, lower, upper, weights, alphabet, bsf)
	}
	return lbdGatherBlocks8Ref(word, qr, lower, upper, weights, alphabet, bsf)
}

func lookupBlocks8(word []byte, table []float64, alphabet int, bsf float64) (float64, int) {
	if useAVX2 {
		return lookupBlocks8AVX2(word, table, alphabet, bsf)
	}
	return lookupBlocks8Ref(word, table, alphabet, bsf)
}

// Block kernel bodies: compute every series' partial sum over the full
// 8-position groups (l &^ 7 positions) into out[:n]; the exported wrappers
// in kernels_block.go append position tails and count survivors in shared
// Go code. The AVX-512 bodies cover every series (tail stripes run under a
// K mask); the AVX2 bodies cover the full stripes of 4 and leave the
// remaining <4 series to the reference.

func lookupAccumBlocks(words []byte, n, l int, table []float64, alphabet int, out []float64) {
	if useAVX512 {
		lookupBlockAVX512(words, n, l, table, alphabet, out)
		return
	}
	if useAVX2 {
		if nf := n &^ 3; nf > 0 {
			lookupBlockAVX2(words, nf, l, table, alphabet, out)
			if nf < n {
				lookupAccumBlockRef(words[nf*l:], n-nf, l, table, alphabet, out[nf:])
			}
			return
		}
	}
	lookupAccumBlockRef(words, n, l, table, alphabet, out)
}

func lbdGatherBlocks(words []byte, n, l int, qr, lower, upper, weights []float64, alphabet int, out []float64) {
	if useAVX512 {
		lbdGatherBlockAVX512(words, n, l, qr, lower, upper, weights, alphabet, out)
		return
	}
	if useAVX2 {
		if nf := n &^ 3; nf > 0 {
			lbdGatherBlockAVX2(words, nf, l, qr, lower, upper, weights, alphabet, out)
			if nf < n {
				lbdGatherBlockRef(words[nf*l:], n-nf, l, qr, lower, upper, weights, alphabet, out[nf:])
			}
			return
		}
	}
	lbdGatherBlockRef(words, n, l, qr, lower, upper, weights, alphabet, out)
}

// Assembly kernels (kernels_amd64.s). Each processes only the full blocks
// of its input and returns the reduced sum over the processed prefix plus
// the index of the first unprocessed element; the exported wrappers in
// kernels.go finish the tail in shared Go code.

//go:noescape
func edBlocks16AVX2(a, b []float64, bound float64) (sum float64, idx int)

//go:noescape
func dotBlocks16AVX2(a, b []float64) (sum float64, idx int)

//go:noescape
func lbdGatherBlocks8AVX2(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) (sum float64, idx int)

//go:noescape
func lookupBlocks8AVX2(word []byte, table []float64, alphabet int, bsf float64) (sum float64, idx int)

// Block kernel assembly (kernels_block_amd64.s).

//go:noescape
func lookupBlockAVX2(words []byte, n, l int, table []float64, alphabet int, out []float64)

//go:noescape
func lookupBlockAVX512(words []byte, n, l int, table []float64, alphabet int, out []float64)

//go:noescape
func lbdGatherBlockAVX2(words []byte, n, l int, qr, lower, upper, weights []float64, alphabet int, out []float64)

//go:noescape
func lbdGatherBlockAVX512(words []byte, n, l int, qr, lower, upper, weights []float64, alphabet int, out []float64)
