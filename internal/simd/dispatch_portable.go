//go:build !amd64 || noasm

package simd

// Portable build (non-amd64 architectures, or -tags noasm): every kernel is
// the pure-Go reference. Results are bit-identical to the assembly path by
// construction — the reference defines the canonical semantics.

// Impl names the active kernel implementation.
func Impl() string { return "portable" }

// BlockImpl names the implementation serving the block kernels.
func BlockImpl() string { return "portable" }

// HasAVX512 reports whether the AVX-512 block tier is active (never, on
// the portable build).
func HasAVX512() bool { return false }

func edBlocks16(a, b []float64, bound float64) (float64, int) {
	return edBlocks16Ref(a, b, bound)
}

func dotBlocks16(a, b []float64) (float64, int) {
	return dotBlocks16Ref(a, b)
}

func lbdGatherBlocks8(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) (float64, int) {
	return lbdGatherBlocks8Ref(word, qr, lower, upper, weights, alphabet, bsf)
}

func lookupBlocks8(word []byte, table []float64, alphabet int, bsf float64) (float64, int) {
	return lookupBlocks8Ref(word, table, alphabet, bsf)
}

func lookupAccumBlocks(words []byte, n, l int, table []float64, alphabet int, out []float64) {
	lookupAccumBlockRef(words, n, l, table, alphabet, out)
}

func lbdGatherBlocks(words []byte, n, l int, qr, lower, upper, weights []float64, alphabet int, out []float64) {
	lbdGatherBlockRef(words, n, l, qr, lower, upper, weights, alphabet, out)
}
