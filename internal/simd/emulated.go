package simd

import "math"

// LBDGatherEAEmulated is the pre-PR-3 formulation of Algorithm 3: the same
// mask/blend/reduce structure expressed with the package's 8-lane Vec
// emulation (scalar lane loops the compiler only partially vectorizes). It
// is retained as the ablation baseline the real VGATHERQPD kernel is
// benchmarked against; production code dispatches through LBDGatherEA.
//
// Its numeric semantics differ in rounding from the canonical kernels (the
// terms are w*(d*d) summed through the Vec tree, without the two-register
// lane split), so comparisons against LBDGatherEA are tolerance-based.
func LBDGatherEAEmulated(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) float64 {
	var sum float64
	l := len(word)
	for c := 0; c < l; c += Width {
		var vq, vlo, vhi, vw Vec
		lanes := l - c
		if lanes > Width {
			lanes = Width
		}
		for i := 0; i < lanes; i++ {
			j := c + i
			sym := int(word[j])
			vq[i] = qr[j]
			vlo[i] = lower[j*alphabet+sym]
			vhi[i] = upper[j*alphabet+sym]
			vw[i] = weights[j]
		}
		for i := lanes; i < Width; i++ {
			vlo[i] = math.Inf(-1) // padding lanes fall inside their interval
			vhi[i] = math.Inf(1)
		}
		// Three-way branchless select (paper Fig. 6): UPPER, LOWER, ZERO.
		below := CmpLT(vq, vlo)
		above := CmpGT(vq, vhi)
		dLo := Sub(vlo, vq)
		dHi := Sub(vq, vhi)
		d := Blend(below, dLo, Blend(above, dHi, Vec{}))
		sum += Sum(Mul(vw, Mul(d, d)))
		if sum > bsf {
			return sum
		}
	}
	return sum
}
