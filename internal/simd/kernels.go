package simd

import "math"

// This file defines the dispatched kernel API and the portable reference
// implementations of the four hot-loop kernels:
//
//   - SquaredEDEA:   chunked early-abandoning squared Euclidean distance
//     (paper Section IV-H), 16 elements per block, 16 persistent FMA
//     accumulators, abandon test after every block;
//   - Dot:           blocked FMA dot product (flat baseline's GEMM-style
//     ‖q‖²−2q·x+‖x‖² decomposition);
//   - LBDGatherEA:   Algorithm 3's Gather_bound LBD kernel — per-symbol
//     lower/upper interval gathers, mask/blend three-way select, weighted
//     square, horizontal reduction, early abandon per 8-lane block;
//   - LookupAccumEA: the flat per-query distance-table kernel — one table
//     lookup per word position, 8-lane blocks with the same reduction tree.
//
// Every kernel has exactly one canonical numeric semantics: a fixed block
// width, a fixed accumulation structure (math.FMA where the assembly uses
// VFMADD) and a fixed horizontal reduction tree (the one VEXTRACTF128 /
// VADDPD / VADDSD produce). The portable reference below implements that
// semantics in pure Go and the AVX2 assembly in kernels_amd64.s implements
// it on real vector registers, so the two are BIT-IDENTICAL — not merely
// close — on every input (kernels_parity_test.go enforces this). Results
// therefore do not depend on the platform or on the noasm build tag.
//
// Dispatch: on amd64 (without the noasm tag) package init probes CPUID for
// AVX2+FMA+OSXSAVE and routes the block loops to assembly; everywhere else
// (and under -tags noasm, or with SOFA_NOSIMD set) the reference runs.

// edBlock is the element count per early-abandon block of the ED and dot
// kernels: four 4-lane AVX2 registers, 4x unrolled.
const edBlock = 16

// lbdBlock is the position count per block of the LBD kernels: two 4-lane
// gathers per table, matching the paper's 8-lane formulation.
const lbdBlock = 8

// SquaredEDEA computes the squared Euclidean distance between equal-length
// a and b, returning early — with a partial sum already exceeding bound —
// as soon as the accumulated distance passes bound after any 16-element
// block. A returned value <= bound is the exact distance; a value > bound
// is only a certificate that the true distance exceeds bound.
//
// len(b) must be >= len(a); only the first len(a) elements participate.
func SquaredEDEA(a, b []float64, bound float64) float64 {
	sum, i := edBlocks16(a, b, bound)
	if sum > bound {
		return sum
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// SquaredEDEAPortable is the always-portable reference of SquaredEDEA:
// identical numeric semantics, never dispatched to assembly. Benchmarks and
// parity tests compare the two; production code calls SquaredEDEA.
func SquaredEDEAPortable(a, b []float64, bound float64) float64 {
	sum, i := edBlocks16Ref(a, b, bound)
	if sum > bound {
		return sum
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// edBlocks16Ref processes the full 16-element blocks of a and b: sixteen
// persistent accumulators acc[l] += d*d (fused, single rounding — the lane
// structure of four 4-lane FMA registers), fully re-reduced after every
// block for the abandon test. It returns the reduced sum over the processed
// prefix and the index of the first unprocessed element; sum > bound means
// the scan abandoned early.
func edBlocks16Ref(a, b []float64, bound float64) (float64, int) {
	var acc [edBlock]float64
	n := len(a) &^ (edBlock - 1)
	var sum float64
	i := 0
	for ; i < n; i += edBlock {
		for l := 0; l < edBlock; l++ {
			d := a[i+l] - b[i+l]
			acc[l] = math.FMA(d, d, acc[l])
		}
		sum = reduce16(&acc)
		if sum > bound {
			return sum, i + edBlock
		}
	}
	return sum, i
}

// Dot computes the dot product of a and the first len(a) elements of b with
// the same blocked FMA accumulation as SquaredEDEA (no early abandon).
func Dot(a, b []float64) float64 {
	sum, i := dotBlocks16(a, b)
	for ; i < len(a); i++ {
		sum = math.FMA(a[i], b[i], sum)
	}
	return sum
}

// DotPortable is the always-portable reference of Dot.
func DotPortable(a, b []float64) float64 {
	sum, i := dotBlocks16Ref(a, b)
	for ; i < len(a); i++ {
		sum = math.FMA(a[i], b[i], sum)
	}
	return sum
}

// dotBlocks16Ref mirrors edBlocks16Ref without the subtraction or the
// abandon test: acc[l] = fma(a, b, acc[l]), one tree reduction at the end.
func dotBlocks16Ref(a, b []float64) (float64, int) {
	var acc [edBlock]float64
	n := len(a) &^ (edBlock - 1)
	i := 0
	for ; i < n; i += edBlock {
		for l := 0; l < edBlock; l++ {
			acc[l] = math.FMA(a[i+l], b[i+l], acc[l])
		}
	}
	return reduce16(&acc), i
}

// reduce16 is the canonical horizontal reduction of the 16 ED/dot
// accumulators: lane-wise (acc0+acc1)+(acc2+acc3) down to four values t,
// then the 128-bit fold (t0+t2, t1+t3) and the final scalar add — exactly
// the VADDPD/VEXTRACTF128/VUNPCKHPD/VADDSD sequence of the assembly.
func reduce16(acc *[edBlock]float64) float64 {
	var t [4]float64
	for j := 0; j < 4; j++ {
		t[j] = (acc[j] + acc[4+j]) + (acc[8+j] + acc[12+j])
	}
	return (t[0] + t[2]) + (t[1] + t[3])
}

// LBDGatherEA computes Algorithm 3's early-abandoning squared lower-bound
// distance between a query representation and a full-cardinality word:
// for each position j the word symbol selects a quantization interval
// [lower[j*alphabet+sym], upper[j*alphabet+sym]]; the contribution is
// weights[j] * d² with d the distance from qr[j] to the interval (zero
// inside). Blocks of 8 positions are reduced with the canonical tree and
// the abandon test runs after every block.
//
// Contract: len(qr) and len(weights) >= len(word); len(lower) and
// len(upper) >= len(word)*alphabet; every word symbol < alphabet. The
// bounds are checked once per call (the assembly gathers cannot rely on
// per-element bounds checks).
func LBDGatherEA(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) float64 {
	l := len(word)
	checkLBDBounds(word, len(qr), len(weights), len(lower), len(upper), alphabet)
	sum, c := lbdGatherBlocks8(word, qr, lower, upper, weights, alphabet, bsf)
	if sum > bsf {
		return sum
	}
	if c < l {
		sum += lbdTail8(word, qr, lower, upper, weights, alphabet, c)
	}
	return sum
}

// LBDGatherEAPortable is the always-portable reference of LBDGatherEA.
func LBDGatherEAPortable(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) float64 {
	l := len(word)
	checkLBDBounds(word, len(qr), len(weights), len(lower), len(upper), alphabet)
	sum, c := lbdGatherBlocks8Ref(word, qr, lower, upper, weights, alphabet, bsf)
	if sum > bsf {
		return sum
	}
	if c < l {
		sum += lbdTail8(word, qr, lower, upper, weights, alphabet, c)
	}
	return sum
}

// lbdTerm is one position's weighted squared interval distance, computed
// exactly as the vector lanes do: d selected by (q < lo) / (q > hi) masks
// (both false — including NaN — give zero), squared first, then scaled.
func lbdTerm(word []byte, qr, lower, upper, weights []float64, alphabet, j int) float64 {
	sym := int(word[j])
	lo := lower[j*alphabet+sym]
	hi := upper[j*alphabet+sym]
	v := qr[j]
	var d float64
	switch {
	case v < lo:
		d = lo - v
	case v > hi:
		d = v - hi
	}
	return weights[j] * (d * d)
}

// lbdGatherBlocks8Ref processes the full 8-position blocks: per block the
// eight weighted squared terms are formed lane-wise and reduced with
// blockReduce8 into the running sum, then the abandon test runs.
func lbdGatherBlocks8Ref(word []byte, qr, lower, upper, weights []float64, alphabet int, bsf float64) (float64, int) {
	n := len(word) &^ (lbdBlock - 1)
	var sum float64
	c := 0
	for ; c < n; c += lbdBlock {
		var t [lbdBlock]float64
		for i := 0; i < lbdBlock; i++ {
			t[i] = lbdTerm(word, qr, lower, upper, weights, alphabet, c+i)
		}
		sum += blockReduce8(&t)
		if sum > bsf {
			return sum, c + lbdBlock
		}
	}
	return sum, c
}

// LookupAccumEA computes the early-abandoning flat distance-table lower
// bound: sum over positions j of table[j*alphabet+word[j]], in 8-position
// blocks with the canonical reduction tree and an abandon test per block.
//
// Contract: len(table) >= len(word)*alphabet and every word symbol
// < alphabet (checked once per call).
func LookupAccumEA(word []byte, table []float64, alphabet int, bsf float64) float64 {
	l := len(word)
	checkLookupBounds(word, len(table), alphabet)
	sum, c := lookupBlocks8(word, table, alphabet, bsf)
	if sum > bsf {
		return sum
	}
	if c < l {
		sum += lookupTail8(word, table, alphabet, c)
	}
	return sum
}

// LookupAccumEAPortable is the always-portable reference of LookupAccumEA.
func LookupAccumEAPortable(word []byte, table []float64, alphabet int, bsf float64) float64 {
	l := len(word)
	checkLookupBounds(word, len(table), alphabet)
	sum, c := lookupBlocks8Ref(word, table, alphabet, bsf)
	if sum > bsf {
		return sum
	}
	if c < l {
		sum += lookupTail8(word, table, alphabet, c)
	}
	return sum
}

// LookupAccumEASeq is the PR-1 sequential formulation — one running scalar
// add per position, abandon test per 8 — kept as the benchmark baseline the
// vectorized kernels are judged against (it is NOT bit-identical to the
// blocked tree reduction, only equal to rounding error).
func LookupAccumEASeq(word []byte, table []float64, alphabet int, bsf float64) float64 {
	var sum float64
	l := len(word)
	for c := 0; c < l; c += lbdBlock {
		end := c + lbdBlock
		if end > l {
			end = l
		}
		for j := c; j < end; j++ {
			sum += table[j*alphabet+int(word[j])]
		}
		if sum > bsf {
			return sum
		}
	}
	return sum
}

// lookupBlocks8Ref processes the full 8-position blocks of the table kernel.
func lookupBlocks8Ref(word []byte, table []float64, alphabet int, bsf float64) (float64, int) {
	n := len(word) &^ (lbdBlock - 1)
	var sum float64
	c := 0
	for ; c < n; c += lbdBlock {
		var t [lbdBlock]float64
		for i := 0; i < lbdBlock; i++ {
			t[i] = table[(c+i)*alphabet+int(word[c+i])]
		}
		sum += blockReduce8(&t)
		if sum > bsf {
			return sum, c + lbdBlock
		}
	}
	return sum, c
}

// lbdTail8 computes the final sub-8 positions c..len(word)-1 of the gather
// kernel as one zero-padded block — the single tail implementation shared
// by the dispatched and portable wrappers, so their bit-identity cannot
// drift at the tail.
func lbdTail8(word []byte, qr, lower, upper, weights []float64, alphabet, c int) float64 {
	var t [lbdBlock]float64
	for i := c; i < len(word); i++ {
		t[i-c] = lbdTerm(word, qr, lower, upper, weights, alphabet, i)
	}
	return blockReduce8(&t)
}

// lookupTail8 is lbdTail8's counterpart for the table-lookup kernel.
func lookupTail8(word []byte, table []float64, alphabet, c int) float64 {
	var t [lbdBlock]float64
	for i := c; i < len(word); i++ {
		t[i-c] = table[i*alphabet+int(word[i])]
	}
	return blockReduce8(&t)
}

// blockReduce8 is the canonical 8-lane horizontal reduction shared by the
// LBD kernels (and their sub-8 tails, zero-padded): lane-wise fold of the
// two 4-lane registers, 128-bit fold, scalar add.
func blockReduce8(t *[lbdBlock]float64) float64 {
	y0 := t[0] + t[4]
	y1 := t[1] + t[5]
	y2 := t[2] + t[6]
	y3 := t[3] + t[7]
	return (y0 + y2) + (y1 + y3)
}

func checkLBDBounds(word []byte, nq, nw, nlo, nhi, alphabet int) {
	l := len(word)
	if alphabet <= 0 || nq < l || nw < l || nlo < l*alphabet || nhi < l*alphabet {
		panic("simd: LBDGatherEA slice lengths violate the kernel contract")
	}
	checkSymbols(word, alphabet)
}

func checkLookupBounds(word []byte, nt, alphabet int) {
	if alphabet <= 0 || nt < len(word)*alphabet {
		panic("simd: LookupAccumEA table shorter than len(word)*alphabet")
	}
	checkSymbols(word, alphabet)
}

// checkSymbols rejects word symbols >= alphabet. Without it, a corrupt word
// would index the wrong table row silently in pure Go (the flat j*alphabet+
// sym index stays inside the slice for every position but the last) and
// make the assembly gather read out of bounds. Free for the common
// alphabet=256 (a byte cannot exceed 255).
func checkSymbols(word []byte, alphabet int) {
	if alphabet >= 256 {
		return
	}
	for _, sym := range word {
		if int(sym) >= alphabet {
			panic("simd: word symbol outside the alphabet")
		}
	}
}
