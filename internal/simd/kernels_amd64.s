//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA kernels. Every kernel mirrors, instruction for instruction, the
// canonical semantics defined by the pure-Go references in kernels.go:
// identical block widths, identical FMA placement, identical horizontal
// reduction trees — so asm and portable results are bit-identical.
//
// All kernels process only the FULL blocks of their input and return
// (reduced sum over the processed prefix, index of first unprocessed
// element); the Go wrappers finish sub-block tails. Loads are unaligned
// (VMOVUPD); gathers reset their all-ones mask before every VGATHERQPD
// (the instruction clears it).

// func edBlocks16AVX2(a, b []float64, bound float64) (sum float64, idx int)
//
// Blocked early-abandoning squared Euclidean distance: 16 elements per
// iteration in four 4-lane registers, d = a-b, four persistent FMA
// accumulators acc += d*d, fully re-reduced after every block for the
// abandon test against bound.
TEXT ·edBlocks16AVX2(SB), NOSPLIT, $0-72
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	ANDQ   $-16, CX
	VMOVSD bound+48(FP), X14
	VXORPD X8, X8, X8              // running reduced sum (low lane)
	VXORPD Y0, Y0, Y0              // acc0..acc3
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ   DX, DX
	CMPQ   CX, $0
	JE     ed_done

ed_loop:
	VMOVUPD     (SI)(DX*8), Y4
	VMOVUPD     32(SI)(DX*8), Y5
	VMOVUPD     64(SI)(DX*8), Y6
	VMOVUPD     96(SI)(DX*8), Y7
	VSUBPD      (DI)(DX*8), Y4, Y4     // d = a - b
	VSUBPD      32(DI)(DX*8), Y5, Y5
	VSUBPD      64(DI)(DX*8), Y6, Y6
	VSUBPD      96(DI)(DX*8), Y7, Y7
	VFMADD231PD Y4, Y4, Y0             // acc += d*d (single rounding)
	VFMADD231PD Y5, Y5, Y1
	VFMADD231PD Y6, Y6, Y2
	VFMADD231PD Y7, Y7, Y3
	ADDQ        $16, DX

	// Early-abandon test: reduce the four accumulators with the canonical
	// tree (lane-wise (acc0+acc1)+(acc2+acc3), 128-bit fold, scalar add).
	VADDPD       Y1, Y0, Y9
	VADDPD       Y3, Y2, Y10
	VADDPD       Y10, Y9, Y9
	VEXTRACTF128 $1, Y9, X10
	VADDPD       X10, X9, X9
	VUNPCKHPD    X9, X9, X10
	VADDSD       X10, X9, X8
	VUCOMISD     X14, X8
	JA           ed_done               // sum > bound: abandon
	CMPQ         DX, CX
	JL           ed_loop

ed_done:
	VMOVSD X8, sum+56(FP)
	MOVQ   DX, idx+64(FP)
	VZEROUPPER
	RET

// func dotBlocks16AVX2(a, b []float64) (sum float64, idx int)
//
// Blocked FMA dot product: same accumulator layout and reduction tree as
// edBlocks16AVX2, no subtraction, no abandon test, one reduction at end.
TEXT ·dotBlocks16AVX2(SB), NOSPLIT, $0-64
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	ANDQ   $-16, CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ   DX, DX
	CMPQ   CX, $0
	JE     dot_reduce

dot_loop:
	VMOVUPD     (SI)(DX*8), Y4
	VMOVUPD     32(SI)(DX*8), Y5
	VMOVUPD     64(SI)(DX*8), Y6
	VMOVUPD     96(SI)(DX*8), Y7
	VFMADD231PD (DI)(DX*8), Y4, Y0
	VFMADD231PD 32(DI)(DX*8), Y5, Y1
	VFMADD231PD 64(DI)(DX*8), Y6, Y2
	VFMADD231PD 96(DI)(DX*8), Y7, Y3
	ADDQ        $16, DX
	CMPQ        DX, CX
	JL          dot_loop

dot_reduce:
	VADDPD       Y1, Y0, Y9
	VADDPD       Y3, Y2, Y10
	VADDPD       Y10, Y9, Y9
	VEXTRACTF128 $1, Y9, X10
	VADDPD       X10, X9, X9
	VUNPCKHPD    X9, X9, X10
	VADDSD       X10, X9, X9
	VMOVSD       X9, sum+48(FP)
	MOVQ         DX, idx+56(FP)
	VZEROUPPER
	RET

// func lbdGatherBlocks8AVX2(word []byte, qr, lower, upper, weights []float64,
//                           alphabet int, bsf float64) (sum float64, idx int)
//
// Algorithm 3 (Gather_bound): per block of 8 word positions, zero-extend
// the symbols to qword lane indices j*alphabet+sym, VGATHERQPD the lower
// and upper interval bounds, VCMPPD the (q < lo) / (q > hi) masks, select
// the three-way distance with VANDPD+VBLENDVPD, square, weight, reduce
// with the canonical 8-lane tree and test the running sum against bsf.
//
// Local frame (32 bytes): staging for the {0,a,2a,3a} lane-offset vector.
TEXT ·lbdGatherBlocks8AVX2(SB), NOSPLIT, $32-152
	MOVQ word_base+0(FP), BX
	MOVQ word_len+8(FP), CX
	ANDQ $-8, CX
	MOVQ qr_base+24(FP), SI
	MOVQ lower_base+48(FP), R12
	MOVQ upper_base+72(FP), R13
	MOVQ weights_base+96(FP), DI

	// Lane index bases: Y10 = {0,a,2a,3a}, Y11 = Y10 + 4a, step Y12 = 8a.
	MOVQ         alphabet+120(FP), R8
	XORQ         R9, R9
	MOVQ         R9, 0(SP)
	MOVQ         R8, 8(SP)
	LEAQ         (R8)(R8*1), R10
	MOVQ         R10, 16(SP)
	LEAQ         (R10)(R8*1), R11
	MOVQ         R11, 24(SP)
	VMOVDQU      0(SP), Y10
	MOVQ         R8, R10
	SHLQ         $2, R10
	VMOVQ        R10, X12
	VPBROADCASTQ X12, Y12
	VPADDQ       Y12, Y10, Y11
	VPADDQ       Y12, Y12, Y12

	VMOVSD bsf+128(FP), X14
	VXORPD X15, X15, X15           // running sum
	XORQ   DX, DX
	CMPQ   CX, $0
	JE     lbd_done

lbd_loop:
	// Symbol bytes -> qword lane indices j*alphabet + sym. The shift must
	// precede the first extend: VPMOVZXBQ X4, Y4 writes through X4 (the low
	// half of Y4), destroying the source bytes.
	VMOVQ     (BX)(DX*1), X4
	VPSRLQ    $32, X4, X5
	VPMOVZXBQ X4, Y4               // symbols c..c+3
	VPMOVZXBQ X5, Y5               // symbols c+4..c+7
	VPADDQ    Y10, Y4, Y4
	VPADDQ    Y11, Y5, Y5
	VPADDQ    Y12, Y10, Y10
	VPADDQ    Y12, Y11, Y11

	// Half 0: positions c..c+3 -> weighted squared terms in Y6.
	VPCMPEQD   Y13, Y13, Y13
	VGATHERQPD Y13, (R12)(Y4*8), Y6    // lo
	VPCMPEQD   Y13, Y13, Y13
	VGATHERQPD Y13, (R13)(Y4*8), Y7    // hi
	VMOVUPD    (SI)(DX*8), Y0          // q
	VCMPPD     $0x11, Y6, Y0, Y8       // below = q < lo (LT_OQ)
	VCMPPD     $0x1E, Y7, Y0, Y9       // above = q > hi (GT_OQ)
	VSUBPD     Y0, Y6, Y6              // dLo = lo - q
	VSUBPD     Y7, Y0, Y7              // dHi = q - hi
	VANDPD     Y7, Y9, Y7              // inner = above ? dHi : +0
	VBLENDVPD  Y8, Y6, Y7, Y6          // d = below ? dLo : inner
	VMULPD     Y6, Y6, Y6              // d*d
	VMOVUPD    (DI)(DX*8), Y0          // w
	VMULPD     Y6, Y0, Y6              // T0 = w*(d*d)

	// Half 1: positions c+4..c+7 -> weighted squared terms in Y7.
	VPCMPEQD   Y13, Y13, Y13
	VGATHERQPD Y13, (R12)(Y5*8), Y8
	VPCMPEQD   Y13, Y13, Y13
	VGATHERQPD Y13, (R13)(Y5*8), Y9
	VMOVUPD    32(SI)(DX*8), Y0
	VCMPPD     $0x11, Y8, Y0, Y1
	VCMPPD     $0x1E, Y9, Y0, Y2
	VSUBPD     Y0, Y8, Y8
	VSUBPD     Y9, Y0, Y9
	VANDPD     Y9, Y2, Y9
	VBLENDVPD  Y1, Y8, Y9, Y8
	VMULPD     Y8, Y8, Y8
	VMOVUPD    32(DI)(DX*8), Y0
	VMULPD     Y8, Y0, Y7              // T1

	// blockReduce8: lane-wise T0+T1, 128-bit fold, scalar add into sum.
	VADDPD       Y7, Y6, Y6
	VEXTRACTF128 $1, Y6, X7
	VADDPD       X7, X6, X6
	VUNPCKHPD    X6, X6, X7
	VADDSD       X7, X6, X6
	VADDSD       X6, X15, X15
	ADDQ         $8, DX
	VUCOMISD     X14, X15
	JA           lbd_done              // sum > bsf: abandon
	CMPQ         DX, CX
	JL           lbd_loop

lbd_done:
	VMOVSD X15, sum+136(FP)
	MOVQ   DX, idx+144(FP)
	VZEROUPPER
	RET

// func lookupBlocks8AVX2(word []byte, table []float64, alphabet int,
//                        bsf float64) (sum float64, idx int)
//
// Flat distance-table kernel: the same index pipeline as the gather kernel
// but a single VGATHERQPD per half straight out of the per-query table,
// then the canonical 8-lane reduction and the abandon test.
TEXT ·lookupBlocks8AVX2(SB), NOSPLIT, $32-80
	MOVQ word_base+0(FP), BX
	MOVQ word_len+8(FP), CX
	ANDQ $-8, CX
	MOVQ table_base+24(FP), R12

	MOVQ         alphabet+48(FP), R8
	XORQ         R9, R9
	MOVQ         R9, 0(SP)
	MOVQ         R8, 8(SP)
	LEAQ         (R8)(R8*1), R10
	MOVQ         R10, 16(SP)
	LEAQ         (R10)(R8*1), R11
	MOVQ         R11, 24(SP)
	VMOVDQU      0(SP), Y10
	MOVQ         R8, R10
	SHLQ         $2, R10
	VMOVQ        R10, X12
	VPBROADCASTQ X12, Y12
	VPADDQ       Y12, Y10, Y11
	VPADDQ       Y12, Y12, Y12

	VMOVSD bsf+56(FP), X14
	VXORPD X15, X15, X15
	XORQ   DX, DX
	CMPQ   CX, $0
	JE     lut_done

lut_loop:
	VMOVQ     (BX)(DX*1), X4
	VPSRLQ    $32, X4, X5          // before the extend: VPMOVZXBQ clobbers X4
	VPMOVZXBQ X4, Y4
	VPMOVZXBQ X5, Y5
	VPADDQ    Y10, Y4, Y4
	VPADDQ    Y11, Y5, Y5
	VPADDQ    Y12, Y10, Y10
	VPADDQ    Y12, Y11, Y11

	VPCMPEQD   Y13, Y13, Y13
	VGATHERQPD Y13, (R12)(Y4*8), Y6
	VPCMPEQD   Y13, Y13, Y13
	VGATHERQPD Y13, (R12)(Y5*8), Y7

	VADDPD       Y7, Y6, Y6
	VEXTRACTF128 $1, Y6, X7
	VADDPD       X7, X6, X6
	VUNPCKHPD    X6, X6, X7
	VADDSD       X7, X6, X6
	VADDSD       X6, X15, X15
	ADDQ         $8, DX
	VUCOMISD     X14, X15
	JA           lut_done
	CMPQ         DX, CX
	JL           lut_loop

lut_done:
	VMOVSD X15, sum+64(FP)
	MOVQ   DX, idx+72(FP)
	VZEROUPPER
	RET
