package simd

import (
	"math"
	"math/rand"
	"testing"
)

// Benchmarks pit the dispatched kernels (assembly on amd64) against the
// portable references and the pre-PR-3 formulations on realistic shapes:
// series length 256 for ED/dot, l=16 words over a 256-symbol alphabet for
// the LBD kernels (the default SOFA configuration). The bench CLI's perf
// report runs the same comparisons programmatically.

func benchSeries(n int, seed int64) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func BenchmarkSquaredEDEA(b *testing.B) {
	x, y := benchSeries(256, 1)
	b.Run("dispatched-"+Impl(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SquaredEDEA(x, y, math.Inf(1))
		}
	})
	b.Run("portable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SquaredEDEAPortable(x, y, math.Inf(1))
		}
	})
}

func BenchmarkDot(b *testing.B) {
	x, y := benchSeries(256, 2)
	b.Run("dispatched-"+Impl(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Dot(x, y)
		}
	})
	b.Run("portable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DotPortable(x, y)
		}
	})
}

func benchLBD(b *testing.B) (word []byte, qr, lower, upper, weights []float64, alpha int) {
	rng := rand.New(rand.NewSource(3))
	word, qr, lower, upper, weights = lbdCase(rng, 16, 256)
	return word, qr, lower, upper, weights, 256
}

func BenchmarkLBDGather(b *testing.B) {
	word, qr, lower, upper, weights, alpha := benchLBD(b)
	b.Run("dispatched-"+Impl(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LBDGatherEA(word, qr, lower, upper, weights, alpha, math.Inf(1))
		}
	})
	b.Run("portable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LBDGatherEAPortable(word, qr, lower, upper, weights, alpha, math.Inf(1))
		}
	})
	b.Run("emulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LBDGatherEAEmulated(word, qr, lower, upper, weights, alpha, math.Inf(1))
		}
	})
}

func BenchmarkLookupAccum(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const l, alpha = 16, 256
	word := make([]byte, l)
	table := make([]float64, l*alpha)
	for j := range word {
		word[j] = byte(rng.Intn(alpha))
	}
	for i := range table {
		table[i] = rng.Float64()
	}
	b.Run("dispatched-"+Impl(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LookupAccumEA(word, table, alpha, math.Inf(1))
		}
	})
	b.Run("portable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LookupAccumEAPortable(word, table, alpha, math.Inf(1))
		}
	})
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LookupAccumEASeq(word, table, alpha, math.Inf(1))
		}
	})
}
