package simd

// Block-granularity LBD kernels: one call computes the lower-bound
// distances of an ENTIRE SoA leaf block — n contiguous words of l symbols,
// row-major, exactly the layout of the index's per-leaf refinement blocks —
// writing every series' LBD into a caller-pooled out slice and returning
// how many are <= bsf, so the refinement loop only walks survivors.
//
// The per-series kernels above pay their dispatch, bounds-check and
// early-abandon bookkeeping once PER SERIES; at l=16 that overhead is
// comparable to the arithmetic itself (the checked-in ablation shows AVX2
// gathers losing to scalar lookups on exactly this). The block kernels pay
// it once per LEAF and check the abandon bound per stripe of series
// instead of per series.
//
// Numeric contract: out[i] is the FULL lower bound of series i — the
// kernels never abandon inside a series — and is BIT-IDENTICAL to the
// sequential per-series formulation (LookupAccumEASeq at bsf=+Inf; the
// parity suite pins it). The vector variants achieve this by laying the
// SERIES across lanes: each lane accumulates its own series sequentially
// over positions, so no reduction tree reorders the adds. bsf participates
// only in the survivor classification; because a survivor's value is exact,
// callers can re-check it against a fresher (smaller) bound for free.
//
// Dispatch adds an AVX-512 tier for the block kernels (8 series per
// stripe, K-masked tail stripes — no scalar remainder loop) above the AVX2
// tier (4 series per stripe, remainder series through the reference); see
// BlockImpl. Sub-8 position tails (l not a multiple of 8; never the case
// for the index's l=16) are finished in shared Go code, appended
// sequentially so the per-lane add order is preserved.

// LookupAccumBlockEA computes the flat distance-table lower bounds of all
// n series of a block in one call: out[i] = sum over positions j of
// table[j*alphabet + words[i*l+j]], with l = len(words)/n. It returns the
// number of entries <= bsf (survivors). out[i] is exact (never abandoned)
// and bit-identical to LookupAccumEASeq(words[i*l:(i+1)*l], table,
// alphabet, +Inf).
//
// Contract: n >= 0, len(words) divisible by n, len(out) >= n,
// len(table) >= l*alphabet, every symbol < alphabet (checked once).
func LookupAccumBlockEA(words []byte, n int, table []float64, alphabet int, out []float64, bsf float64) int {
	if n == 0 {
		return 0
	}
	l := checkBlockShape(len(words), n, len(out))
	checkLookupBlockBounds(l, len(table), alphabet)
	checkSymbols(words, alphabet)
	lookupAccumBlocks(words, n, l, table, alphabet, out)
	if nb := l &^ (lbdBlock - 1); nb < l {
		lookupBlockTail(words, n, l, nb, table, alphabet, out)
	}
	return countSurvivors(out[:n], bsf)
}

// LookupAccumBlockEAPortable is the always-portable reference of
// LookupAccumBlockEA (it also serves as the scalar-in-block contender of
// the gather-vs-table ablation at block granularity).
func LookupAccumBlockEAPortable(words []byte, n int, table []float64, alphabet int, out []float64, bsf float64) int {
	if n == 0 {
		return 0
	}
	l := checkBlockShape(len(words), n, len(out))
	checkLookupBlockBounds(l, len(table), alphabet)
	checkSymbols(words, alphabet)
	lookupAccumBlockRef(words, n, l, table, alphabet, out)
	if nb := l &^ (lbdBlock - 1); nb < l {
		lookupBlockTail(words, n, l, nb, table, alphabet, out)
	}
	return countSurvivors(out[:n], bsf)
}

// LBDGatherBlockEA is the gather sibling of LookupAccumBlockEA: the same
// block shape, but each position's contribution is computed from the raw
// quantization intervals (Algorithm 3's Gather_bound) instead of a
// precomputed table: d = max(max(lo-v, v-hi), 0), term = w*(d*d), with the
// max-select lane semantics of VMAXPD (NaN v yields 0, as in the
// per-series kernels). out[i] is exact; the return value counts survivors
// <= bsf.
//
// Contract: the LookupAccumBlockEA shape contract, plus len(qr) and
// len(weights) >= l and len(lower), len(upper) >= l*alphabet.
func LBDGatherBlockEA(words []byte, n int, qr, lower, upper, weights []float64, alphabet int, out []float64, bsf float64) int {
	if n == 0 {
		return 0
	}
	l := checkBlockShape(len(words), n, len(out))
	checkGatherBlockBounds(l, len(qr), len(weights), len(lower), len(upper), alphabet)
	checkSymbols(words, alphabet)
	lbdGatherBlocks(words, n, l, qr, lower, upper, weights, alphabet, out)
	if nb := l &^ (lbdBlock - 1); nb < l {
		lbdGatherBlockTail(words, n, l, nb, qr, lower, upper, weights, alphabet, out)
	}
	return countSurvivors(out[:n], bsf)
}

// LBDGatherBlockEAPortable is the always-portable reference of
// LBDGatherBlockEA.
func LBDGatherBlockEAPortable(words []byte, n int, qr, lower, upper, weights []float64, alphabet int, out []float64, bsf float64) int {
	if n == 0 {
		return 0
	}
	l := checkBlockShape(len(words), n, len(out))
	checkGatherBlockBounds(l, len(qr), len(weights), len(lower), len(upper), alphabet)
	checkSymbols(words, alphabet)
	lbdGatherBlockRef(words, n, l, qr, lower, upper, weights, alphabet, out)
	if nb := l &^ (lbdBlock - 1); nb < l {
		lbdGatherBlockTail(words, n, l, nb, qr, lower, upper, weights, alphabet, out)
	}
	return countSurvivors(out[:n], bsf)
}

// lookupAccumBlockRef is the canonical block body: for every series, a pure
// sequential scalar add chain over the full 8-position groups (the same
// order LookupAccumEASeq uses — each vector lane of the assembly reproduces
// exactly this chain). Position tails are finished by lookupBlockTail.
func lookupAccumBlockRef(words []byte, n, l int, table []float64, alphabet int, out []float64) {
	nb := l &^ (lbdBlock - 1)
	for i := 0; i < n; i++ {
		row := words[i*l : i*l+nb]
		var sum float64
		for j, sym := range row {
			sum += table[j*alphabet+int(sym)]
		}
		out[i] = sum
	}
}

// lookupBlockTail appends the final sub-8 positions nb..l-1 to every
// series' partial sum, sequentially — shared by every dispatch path so the
// tail cannot drift.
func lookupBlockTail(words []byte, n, l, nb int, table []float64, alphabet int, out []float64) {
	for i := 0; i < n; i++ {
		sum := out[i]
		row := words[i*l+nb : (i+1)*l]
		for j, sym := range row {
			sum += table[(nb+j)*alphabet+int(sym)]
		}
		out[i] = sum
	}
}

// lbdBlockTerm is one (series, position) contribution of the gather block
// kernel in max-select form: d = MAX(MAX(lo-v, v-hi), 0) with Intel MAXPD
// semantics (the second operand wins when the compare is false, including
// NaN), then w*(d*d). For well-formed intervals this equals lbdTerm's
// three-way switch; the max form is what a vector lane computes.
func lbdBlockTerm(v, lo, hi, w float64) float64 {
	dLo := lo - v
	dHi := v - hi
	d := dHi
	if dLo > dHi {
		d = dLo
	}
	if !(d > 0) {
		d = 0
	}
	return w * (d * d)
}

// lbdGatherBlockRef is the canonical gather block body (full 8-position
// groups; tails via lbdGatherBlockTail).
func lbdGatherBlockRef(words []byte, n, l int, qr, lower, upper, weights []float64, alphabet int, out []float64) {
	nb := l &^ (lbdBlock - 1)
	for i := 0; i < n; i++ {
		row := words[i*l : i*l+nb]
		var sum float64
		for j, sym := range row {
			sum += lbdBlockTerm(qr[j], lower[j*alphabet+int(sym)], upper[j*alphabet+int(sym)], weights[j])
		}
		out[i] = sum
	}
}

func lbdGatherBlockTail(words []byte, n, l, nb int, qr, lower, upper, weights []float64, alphabet int, out []float64) {
	for i := 0; i < n; i++ {
		sum := out[i]
		row := words[i*l+nb : (i+1)*l]
		for j, sym := range row {
			p := nb + j
			sum += lbdBlockTerm(qr[p], lower[p*alphabet+int(sym)], upper[p*alphabet+int(sym)], weights[p])
		}
		out[i] = sum
	}
}

// countSurvivors classifies the computed LBDs against the abandon bound —
// once per block, after every value is final, instead of once per series.
func countSurvivors(out []float64, bsf float64) int {
	k := 0
	for _, v := range out {
		if v <= bsf {
			k++
		}
	}
	return k
}

// checkBlockShape validates the (words, n, out) block shape and returns the
// word length l = len(words)/n.
func checkBlockShape(nWords, n, nOut int) int {
	if n < 0 || nOut < n || nWords%n != 0 {
		panic("simd: block kernel shape violates the contract (len(words) divisible by n, len(out) >= n)")
	}
	return nWords / n
}

func checkLookupBlockBounds(l, nt, alphabet int) {
	if alphabet <= 0 || nt < l*alphabet {
		panic("simd: LookupAccumBlockEA table shorter than l*alphabet")
	}
}

func checkGatherBlockBounds(l, nq, nw, nlo, nhi, alphabet int) {
	if alphabet <= 0 || nq < l || nw < l || nlo < l*alphabet || nhi < l*alphabet {
		panic("simd: LBDGatherBlockEA slice lengths violate the kernel contract")
	}
}
