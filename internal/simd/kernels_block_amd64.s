//go:build amd64 && !noasm

#include "textflag.h"

// Block-granularity LBD kernel bodies. Layout: SERIES across lanes — each
// vector lane owns one series and accumulates its positions SEQUENTIALLY,
// so every lane reproduces, add for add, the scalar sequential chain of
// the portable reference (bit-identity without any reduction tree).
//
// Per 8-position group, ONE VPGATHERQQ pulls 8 symbol bytes per series as
// a qword (the SoA block rows are contiguous, stride l); each position is
// then extracted with VPSRLQ/VPAND and turned into a table index
// j*alphabet+sym feeding a VGATHERQPD. The per-series kernels pay two
// 4-lane gathers per 8 positions of ONE series; here the same two gathers
// serve 4 (AVX2) or 8 (AVX-512) series.
//
// All bodies compute partial sums over the full 8-position groups
// (l &^ 7 positions) and write out[0:n]; the Go wrappers append position
// tails sequentially. The AVX-512 bodies process tail stripes (< 8
// series) under a K mask, so no scalar series remainder exists; the AVX2
// bodies cover n &^ 3 series and the dispatcher routes the rest through
// the reference.

// One lookup position: extract symbol byte (shift), index j*alphabet+sym,
// gather the table entry, accumulate. Y2=symbol qwords, Y3=running
// j*alphabet broadcast, Y6=0xff, Y7=alphabet, Y13=gather mask scratch.
#define LUT2_POS(shift) \
	VPSRLQ     $shift, Y2, Y4; \
	VPAND      Y6, Y4, Y4; \
	VPADDQ     Y3, Y4, Y4; \
	VPADDQ     Y7, Y3, Y3; \
	VPCMPEQD   Y13, Y13, Y13; \
	VGATHERQPD Y13, (R12)(Y4*8), Y5; \
	VADDPD     Y5, Y0, Y0

// func lookupBlockAVX2(words []byte, n, l int, table []float64,
//                      alphabet int, out []float64)
TEXT ·lookupBlockAVX2(SB), NOSPLIT, $32-96
	MOVQ words_base+0(FP), SI
	MOVQ n+24(FP), CX
	ANDQ $-4, CX
	MOVQ l+32(FP), R15
	MOVQ table_base+40(FP), R12
	MOVQ out_base+72(FP), DI

	MOVQ R15, BX
	ANDQ $-8, BX                   // nb = l &^ 7

	// Constants: Y7 = alphabet, Y8 = 8, Y6 = 0xff (qword lanes).
	MOVQ         alphabet+64(FP), R8
	VMOVQ        R8, X7
	VPBROADCASTQ X7, Y7
	MOVQ         $8, R10
	VMOVQ        R10, X8
	VPBROADCASTQ X8, Y8
	MOVQ         $0xff, R10
	VMOVQ        R10, X6
	VPBROADCASTQ X6, Y6

	// Initial byte offsets Y1 = {0, l, 2l, 3l}; stripe advance Y9 = 4l-nb
	// (the inner loop has already advanced the offsets by nb).
	XORQ    R10, R10
	MOVQ    R10, 0(SP)
	MOVQ    R15, 8(SP)
	LEAQ    (R15)(R15*1), R10
	MOVQ    R10, 16(SP)
	LEAQ    (R10)(R15*1), R10
	MOVQ    R10, 24(SP)
	VMOVDQU 0(SP), Y1

	MOVQ         R15, R10
	SHLQ         $2, R10
	SUBQ         BX, R10
	VMOVQ        R10, X9
	VPBROADCASTQ X9, Y9

	XORQ DX, DX                    // s: stripe base series
	CMPQ CX, $0
	JE   lb2_done

lb2_stripe:
	VXORPD Y0, Y0, Y0              // per-lane accumulators
	VPXOR  Y3, Y3, Y3              // running j*alphabet
	XORQ   R11, R11                // j0
	CMPQ   BX, $0
	JE     lb2_store

lb2_pos:
	// 8 symbol bytes per lane, one qword gather at byte offsets Y1.
	VPCMPEQD   Y13, Y13, Y13
	VPGATHERQQ Y13, (SI)(Y1*1), Y2
	LUT2_POS(0)
	LUT2_POS(8)
	LUT2_POS(16)
	LUT2_POS(24)
	LUT2_POS(32)
	LUT2_POS(40)
	LUT2_POS(48)
	LUT2_POS(56)
	VPADDQ     Y8, Y1, Y1
	ADDQ       $8, R11
	CMPQ       R11, BX
	JL         lb2_pos

lb2_store:
	VMOVUPD Y0, (DI)(DX*8)
	VPADDQ  Y9, Y1, Y1
	ADDQ    $4, DX
	CMPQ    DX, CX
	JL      lb2_stripe

lb2_done:
	VZEROUPPER
	RET

// One gather position: extract symbol, gather lower+upper interval bounds,
// d = MAX(MAX(lo-q, q-hi), 0) with MAXPD lane semantics, accumulate
// w*(d*d) — unfused, matching the reference. disp selects qr[j]/weights[j]
// within the current 8-position group (base+R11*8+disp). Y14 = zeros.
#define GB2_POS(shift, disp) \
	VPSRLQ       $shift, Y2, Y4; \
	VPAND        Y6, Y4, Y4; \
	VPADDQ       Y3, Y4, Y4; \
	VPADDQ       Y7, Y3, Y3; \
	VPCMPEQD     Y13, Y13, Y13; \
	VGATHERQPD   Y13, (R12)(Y4*8), Y5; \
	VPCMPEQD     Y13, Y13, Y13; \
	VGATHERQPD   Y13, (R13)(Y4*8), Y10; \
	VBROADCASTSD disp(R9)(R11*8), Y11; \
	VSUBPD       Y11, Y5, Y5; \
	VSUBPD       Y10, Y11, Y10; \
	VMAXPD       Y10, Y5, Y5; \
	VMAXPD       Y14, Y5, Y5; \
	VMULPD       Y5, Y5, Y5; \
	VBROADCASTSD disp(R14)(R11*8), Y11; \
	VMULPD       Y5, Y11, Y5; \
	VADDPD       Y5, Y0, Y0

// func lbdGatherBlockAVX2(words []byte, n, l int, qr, lower, upper,
//                         weights []float64, alphabet int, out []float64)
TEXT ·lbdGatherBlockAVX2(SB), NOSPLIT, $32-168
	MOVQ words_base+0(FP), SI
	MOVQ n+24(FP), CX
	ANDQ $-4, CX
	MOVQ l+32(FP), R15
	MOVQ qr_base+40(FP), R9
	MOVQ lower_base+64(FP), R12
	MOVQ upper_base+88(FP), R13
	MOVQ weights_base+112(FP), R14
	MOVQ out_base+144(FP), DI

	MOVQ R15, BX
	ANDQ $-8, BX

	MOVQ         alphabet+136(FP), R8
	VMOVQ        R8, X7
	VPBROADCASTQ X7, Y7
	MOVQ         $8, R10
	VMOVQ        R10, X8
	VPBROADCASTQ X8, Y8
	MOVQ         $0xff, R10
	VMOVQ        R10, X6
	VPBROADCASTQ X6, Y6
	VXORPD       Y14, Y14, Y14

	XORQ    R10, R10
	MOVQ    R10, 0(SP)
	MOVQ    R15, 8(SP)
	LEAQ    (R15)(R15*1), R10
	MOVQ    R10, 16(SP)
	LEAQ    (R10)(R15*1), R10
	MOVQ    R10, 24(SP)
	VMOVDQU 0(SP), Y1

	MOVQ         R15, R10
	SHLQ         $2, R10
	SUBQ         BX, R10
	VMOVQ        R10, X9
	VPBROADCASTQ X9, Y9

	XORQ DX, DX
	CMPQ CX, $0
	JE   gb2_done

gb2_stripe:
	VXORPD Y0, Y0, Y0
	VPXOR  Y3, Y3, Y3
	XORQ   R11, R11
	CMPQ   BX, $0
	JE     gb2_store

gb2_pos:
	VPCMPEQD   Y13, Y13, Y13
	VPGATHERQQ Y13, (SI)(Y1*1), Y2
	GB2_POS(0, 0)
	GB2_POS(8, 8)
	GB2_POS(16, 16)
	GB2_POS(24, 24)
	GB2_POS(32, 32)
	GB2_POS(40, 40)
	GB2_POS(48, 48)
	GB2_POS(56, 56)
	VPADDQ     Y8, Y1, Y1
	ADDQ       $8, R11
	CMPQ       R11, BX
	JL         gb2_pos

gb2_store:
	VMOVUPD Y0, (DI)(DX*8)
	VPADDQ  Y9, Y1, Y1
	ADDQ    $4, DX
	CMPQ    DX, CX
	JL      gb2_stripe

gb2_done:
	VZEROUPPER
	RET

// AVX-512 variants: 8 series per stripe in ZMM lanes, the final partial
// stripe fully handled under a K mask (gathers skip masked-off lanes, the
// out store writes only live lanes), so no scalar series remainder exists.
// Gather destinations are pre-zeroed because EVEX gathers merge: masked-off
// lanes must contribute exactly zero to the (dead) lane accumulators.

#define LUT5_POS(shift) \
	VPSRLQ     $shift, Z2, Z4; \
	VPANDQ     Z6, Z4, Z4; \
	VPADDQ     Z3, Z4, Z4; \
	VPADDQ     Z7, Z3, Z3; \
	VPXORQ     Z5, Z5, Z5; \
	KMOVW      K1, K2; \
	VGATHERQPD (R12)(Z4*8), K2, Z5; \
	VADDPD     Z5, Z0, Z0

// func lookupBlockAVX512(words []byte, n, l int, table []float64,
//                        alphabet int, out []float64)
TEXT ·lookupBlockAVX512(SB), NOSPLIT, $64-96
	MOVQ words_base+0(FP), SI
	MOVQ n+24(FP), R13
	MOVQ l+32(FP), R15
	MOVQ table_base+40(FP), R12
	MOVQ out_base+72(FP), DI

	MOVQ R15, BX
	ANDQ $-8, BX

	MOVQ         alphabet+64(FP), R8
	VPBROADCASTQ R8, Z7
	MOVQ         $8, R9
	VPBROADCASTQ R9, Z8
	MOVQ         $0xff, R9
	VPBROADCASTQ R9, Z6

	// Initial byte offsets Z1 = {0, l, ..., 7l}.
	XORQ      R9, R9
	MOVQ      R9, 0(SP)
	ADDQ      R15, R9
	MOVQ      R9, 8(SP)
	ADDQ      R15, R9
	MOVQ      R9, 16(SP)
	ADDQ      R15, R9
	MOVQ      R9, 24(SP)
	ADDQ      R15, R9
	MOVQ      R9, 32(SP)
	ADDQ      R15, R9
	MOVQ      R9, 40(SP)
	ADDQ      R15, R9
	MOVQ      R9, 48(SP)
	ADDQ      R15, R9
	MOVQ      R9, 56(SP)
	VMOVDQU64 0(SP), Z1

	// Stripe advance 8l - nb.
	MOVQ         R15, R9
	SHLQ         $3, R9
	SUBQ         BX, R9
	VPBROADCASTQ R9, Z9

	XORQ DX, DX
	CMPQ R13, $0
	JE   lb5_done

lb5_stripe:
	// K1 = live-lane mask: 0xff for a full stripe, (1<<rem)-1 for the tail.
	MOVQ  R13, R9
	SUBQ  DX, R9
	MOVQ  $0xff, R10
	CMPQ  R9, $8
	JGE   lb5_mask
	MOVQ  R9, CX
	MOVQ  $1, R10
	SHLQ  CX, R10
	DECQ  R10

lb5_mask:
	KMOVW  R10, K1
	VPXORQ Z0, Z0, Z0
	VPXORQ Z3, Z3, Z3
	XORQ   R11, R11
	CMPQ   BX, $0
	JE     lb5_store

lb5_pos:
	KMOVW      K1, K2
	VPGATHERQQ (SI)(Z1*1), K2, Z2
	LUT5_POS(0)
	LUT5_POS(8)
	LUT5_POS(16)
	LUT5_POS(24)
	LUT5_POS(32)
	LUT5_POS(40)
	LUT5_POS(48)
	LUT5_POS(56)
	VPADDQ     Z8, Z1, Z1
	ADDQ       $8, R11
	CMPQ       R11, BX
	JL         lb5_pos

lb5_store:
	VMOVUPD Z0, K1, (DI)(DX*8)
	VPADDQ  Z9, Z1, Z1
	ADDQ    $8, DX
	CMPQ    DX, R13
	JL      lb5_stripe

lb5_done:
	VZEROUPPER
	RET

#define GB5_POS(shift, disp) \
	VPSRLQ       $shift, Z2, Z4; \
	VPANDQ       Z6, Z4, Z4; \
	VPADDQ       Z3, Z4, Z4; \
	VPADDQ       Z7, Z3, Z3; \
	VPXORQ       Z5, Z5, Z5; \
	KMOVW        K1, K2; \
	VGATHERQPD   (R12)(Z4*8), K2, Z5; \
	VPXORQ       Z10, Z10, Z10; \
	KMOVW        K1, K2; \
	VGATHERQPD   (R14)(Z4*8), K2, Z10; \
	VBROADCASTSD disp(R9)(R11*8), Z11; \
	VSUBPD       Z11, Z5, Z5; \
	VSUBPD       Z10, Z11, Z10; \
	VMAXPD       Z10, Z5, Z5; \
	VMAXPD       Z14, Z5, Z5; \
	VMULPD       Z5, Z5, Z5; \
	VBROADCASTSD disp(AX)(R11*8), Z11; \
	VMULPD       Z5, Z11, Z5; \
	VADDPD       Z5, Z0, Z0

// func lbdGatherBlockAVX512(words []byte, n, l int, qr, lower, upper,
//                           weights []float64, alphabet int, out []float64)
TEXT ·lbdGatherBlockAVX512(SB), NOSPLIT, $64-168
	MOVQ words_base+0(FP), SI
	MOVQ n+24(FP), R13
	MOVQ l+32(FP), R15
	MOVQ qr_base+40(FP), R9
	MOVQ lower_base+64(FP), R12
	MOVQ upper_base+88(FP), R14
	MOVQ weights_base+112(FP), AX
	MOVQ out_base+144(FP), DI

	MOVQ R15, BX
	ANDQ $-8, BX

	MOVQ         alphabet+136(FP), R8
	VPBROADCASTQ R8, Z7
	MOVQ         $8, R10
	VPBROADCASTQ R10, Z8
	MOVQ         $0xff, R10
	VPBROADCASTQ R10, Z6
	VPXORQ       Z14, Z14, Z14

	XORQ      R10, R10
	MOVQ      R10, 0(SP)
	ADDQ      R15, R10
	MOVQ      R10, 8(SP)
	ADDQ      R15, R10
	MOVQ      R10, 16(SP)
	ADDQ      R15, R10
	MOVQ      R10, 24(SP)
	ADDQ      R15, R10
	MOVQ      R10, 32(SP)
	ADDQ      R15, R10
	MOVQ      R10, 40(SP)
	ADDQ      R15, R10
	MOVQ      R10, 48(SP)
	ADDQ      R15, R10
	MOVQ      R10, 56(SP)
	VMOVDQU64 0(SP), Z1

	MOVQ         R15, R10
	SHLQ         $3, R10
	SUBQ         BX, R10
	VPBROADCASTQ R10, Z9

	XORQ DX, DX
	CMPQ R13, $0
	JE   gb5_done

gb5_stripe:
	MOVQ  R13, R10
	SUBQ  DX, R10
	MOVQ  $0xff, R8
	CMPQ  R10, $8
	JGE   gb5_mask
	MOVQ  R10, CX
	MOVQ  $1, R8
	SHLQ  CX, R8
	DECQ  R8

gb5_mask:
	KMOVW  R8, K1
	VPXORQ Z0, Z0, Z0
	VPXORQ Z3, Z3, Z3
	XORQ   R11, R11
	CMPQ   BX, $0
	JE     gb5_store

gb5_pos:
	KMOVW      K1, K2
	VPGATHERQQ (SI)(Z1*1), K2, Z2
	GB5_POS(0, 0)
	GB5_POS(8, 8)
	GB5_POS(16, 16)
	GB5_POS(24, 24)
	GB5_POS(32, 32)
	GB5_POS(40, 40)
	GB5_POS(48, 48)
	GB5_POS(56, 56)
	VPADDQ     Z8, Z1, Z1
	ADDQ       $8, R11
	CMPQ       R11, BX
	JL         gb5_pos

gb5_store:
	VMOVUPD Z0, K1, (DI)(DX*8)
	VPADDQ  Z9, Z1, Z1
	ADDQ    $8, DX
	CMPQ    DX, R13
	JL      gb5_stripe

gb5_done:
	VZEROUPPER
	RET
